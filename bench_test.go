// Package repro's root benchmarks regenerate every table and figure of
// the paper's evaluation (§IV). Each benchmark runs its experiment once
// per iteration and reports the headline quantities as custom metrics;
// the full formatted tables print via b.Log on the first iteration (run
// with -v to see them) and through cmd/sodbench.
//
//	go test -bench=. -benchmem -benchtime=1x
//
// is the intended invocation: every experiment is a macro-benchmark with
// internal repetition where averaging matters.
package repro_test

import (
	"testing"

	"repro/internal/experiments"
	"repro/internal/sodee"
)

// logOnce prints a rendered table on the first iteration only.
func logOnce(b *testing.B, i int, s string) {
	b.Helper()
	if i == 0 {
		b.Log("\n" + s)
	}
}

// BenchmarkTable1Characteristics regenerates Table I (program
// characteristics: n, stack height h, field footprint F).
func BenchmarkTable1Characteristics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1()
		if err != nil {
			b.Fatal(err)
		}
		logOnce(b, i, experiments.RenderTable1(rows))
		var maxH int
		for _, r := range rows {
			if r.H > maxH {
				maxH = r.H
			}
		}
		b.ReportMetric(float64(maxH), "max-stack-h")
	}
}

// BenchmarkTable2ExecutionTime regenerates Table II (execution time on
// JDK vs the four migration systems, with and without migration) and, as
// derived views, Table III (migration overhead) and Table IV (latency
// breakdown).
func BenchmarkTable2ExecutionTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t2, err := experiments.Table2()
		if err != nil {
			b.Fatal(err)
		}
		logOnce(b, i, experiments.RenderTable2(t2))
		logOnce(b, i, experiments.RenderTable3(experiments.Table3(t2)))
		logOnce(b, i, experiments.RenderTable4(experiments.Table4(t2)))

		// Headline shape: SOD migration overhead vs the others on Fib.
		for _, r := range t2 {
			if r.App != "Fib" {
				continue
			}
			sod := r.Cells[sodee.SysSODEE]
			xen := r.Cells[sodee.SysXen]
			b.ReportMetric(float64((sod.Mig - sod.NoMig).Milliseconds()), "fib-sod-overhead-ms")
			b.ReportMetric(float64((xen.Mig - xen.NoMig).Milliseconds()), "fib-xen-overhead-ms")
		}
	}
}

// BenchmarkTable3Overhead regenerates Table III standalone (single
// workload, quick shape check: SOD's overhead must undercut Xen's).
func BenchmarkTable3Overhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w := quickKernel()
		sod, err := migOverhead(sodee.SysSODEE, w)
		if err != nil {
			b.Fatal(err)
		}
		xen, err := migOverhead(sodee.SysXen, w)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(sod, "sod-overhead-ms")
		b.ReportMetric(xen, "xen-overhead-ms")
	}
}

// BenchmarkTable4LatencyBreakdown regenerates Table IV standalone for the
// quick kernel: capture/transfer/restore of SOD vs G-JavaMPI.
func BenchmarkTable4LatencyBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w := quickKernel()
		sod, err := experiments.RunKernel(sodee.SysSODEE, w, w.DefaultN, true)
		if err != nil {
			b.Fatal(err)
		}
		gj, err := experiments.RunKernel(sodee.SysGJavaMPI, w, w.DefaultN, true)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(sod.Metrics.Latency.Microseconds())/1000, "sod-latency-ms")
		b.ReportMetric(float64(gj.Metrics.Latency.Microseconds())/1000, "gjavampi-latency-ms")
		b.ReportMetric(float64(sod.Metrics.StateBytes), "sod-state-bytes")
		b.ReportMetric(float64(gj.Metrics.StateBytes), "gjavampi-state-bytes")
	}
}

// BenchmarkTable5ObjectFaulting regenerates Table V (object faulting vs
// status checking on local objects).
func BenchmarkTable5ObjectFaulting(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table5(3_000_000)
		if err != nil {
			b.Fatal(err)
		}
		logOnce(b, i, experiments.RenderTable5(rows))
		for _, r := range rows {
			if r.Access == "Field Read" {
				b.ReportMetric(r.FaultSlowdown, "fault-read-slowdown-%")
				b.ReportMetric(r.CheckSlowdown, "check-read-slowdown-%")
			}
		}
	}
}

// BenchmarkTable6LocalityGain regenerates Table VI (locality gain of the
// NFS text search under SODEE / JESSICA2 / Xen migration).
func BenchmarkTable6LocalityGain(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table6()
		if err != nil {
			b.Fatal(err)
		}
		logOnce(b, i, experiments.RenderTable6(rows))
		for _, r := range rows {
			switch r.System {
			case sodee.SysSODEE:
				b.ReportMetric(r.Gain, "sodee-gain-%")
			case sodee.SysJessica2:
				b.ReportMetric(r.Gain, "jessica2-gain-%")
			case sodee.SysXen:
				b.ReportMetric(r.Gain, "xen-gain-%")
			}
		}
	}
}

// BenchmarkRoamingSpeedup regenerates the §IV.C ten-server roaming
// experiment (paper speedup: 3.39×).
func BenchmarkRoamingSpeedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Roaming()
		if err != nil {
			b.Fatal(err)
		}
		logOnce(b, i, experiments.RenderRoaming(r))
		b.ReportMetric(r.Speedup, "speedup-x")
	}
}

// BenchmarkTable7Bandwidth regenerates Table VII (migration latency vs
// available bandwidth for device offload).
func BenchmarkTable7Bandwidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table7All()
		if err != nil {
			b.Fatal(err)
		}
		logOnce(b, i, experiments.RenderTable7(rows))
		b.ReportMetric(float64(rows[0].Latency.Microseconds())/1000, "latency-50kbps-ms")
		b.ReportMetric(float64(rows[len(rows)-1].Latency.Microseconds())/1000, "latency-764kbps-ms")
	}
}

// BenchmarkFig5CodeSize regenerates the Fig 5 code-size comparison.
func BenchmarkFig5CodeSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := experiments.Fig5()
		if err != nil {
			b.Fatal(err)
		}
		logOnce(b, i, experiments.RenderFig5(f))
		b.ReportMetric(float64(f.Original), "orig-bytes")
		b.ReportMetric(float64(f.Checking), "check-bytes")
		b.ReportMetric(float64(f.Faulting), "fault-bytes")
	}
}
