// Distributed: the cluster runtime over real TCP sockets. Three sodd
// node daemons boot in-process on loopback ports — exactly what the
// sodd binary runs, minus the process boundary — and join into one
// cluster: a weak one-core node and two strong peers. A burst of jobs
// lands on the weak node; AutoBalance watches the heartbeat-borne load
// gossip and spills the burst outward as whole-stack SOD migrations over
// the sockets. Then one strong node is killed mid-run with no goodbye:
// the survivors' failure detectors notice on their own (there is no
// SetNodeDown here — this is not the simulated fabric), a migration
// aimed at the corpse falls back to local execution, and every job still
// returns the right answer.
//
// The same scenario runs as separate OS processes with cmd/sodd and
// cmd/sodctl; see README "Running a real cluster".
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/daemon"
	"repro/internal/membership"
	"repro/internal/workloads"
)

const (
	jobs  = 6
	iters = 200_000
)

func boot(id, cores, slow int) *daemon.Daemon {
	d, err := daemon.New(daemon.Config{
		ID: id, Cores: cores, Slow: slow,
		Policy: "threshold", Interval: 2 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	return d
}

func main() {
	// Boot a seed and two joiners; the join protocol spreads the roster
	// so nodes 2 and 3 find each other through node 1.
	d1 := boot(1, 1, 16) // the weak device
	d2 := boot(2, 0, 0)
	d3 := boot(3, 0, 0)
	defer d1.Stop()
	defer d2.Stop()
	for _, d := range []*daemon.Daemon{d2, d3} {
		if err := d.Join(d1.Addr()); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("cluster up: node 1 @ %s, node 2 @ %s, node 3 @ %s\n",
		d1.Addr(), d2.Addr(), d3.Addr())

	// Wait for full mutual discovery.
	deadline := time.Now().Add(10 * time.Second)
	for d1.Node().Members.State(2) != membership.Alive ||
		d1.Node().Members.State(3) != membership.Alive ||
		d2.Node().Members.State(3) != membership.Alive {
		if time.Now().After(deadline) {
			log.Fatal("membership never converged")
		}
		time.Sleep(5 * time.Millisecond)
	}
	fmt.Println("membership converged: every node sees every peer alive")

	// Drive the burst through the control plane, like sodctl would.
	ctl, err := daemon.Dial(d1.Addr())
	if err != nil {
		log.Fatal(err)
	}
	defer ctl.Close()

	start := time.Now()
	ids := make([]uint64, jobs)
	for i := range ids {
		id, err := ctl.Submit("main", int64(1000+i), iters)
		if err != nil {
			log.Fatal(err)
		}
		ids[i] = id
	}

	// Kill node 3 mid-run: from the survivors' point of view it simply
	// stops answering.
	time.Sleep(50 * time.Millisecond)
	d3.Stop()
	fmt.Println("node 3 killed mid-run (no goodbye sent)")

	for i, id := range ids {
		res, done, errMsg, err := ctl.Wait(id, time.Minute)
		if err != nil || !done || errMsg != "" {
			log.Fatalf("job %d: done=%v errMsg=%q err=%v", i, done, errMsg, err)
		}
		if want := workloads.CruncherExpected(int64(1000+i), iters); res != want {
			log.Fatalf("job %d: result %d, want %d", i, res, want)
		}
	}
	makespan := time.Since(start)

	// The survivors must have declared node 3 dead purely by heartbeat.
	deadline = time.Now().Add(20 * time.Second)
	for d1.Node().Members.State(3) != membership.Dead {
		if time.Now().After(deadline) {
			log.Fatal("node 1 never detected the crash")
		}
		time.Sleep(5 * time.Millisecond)
	}

	st, _, err := ctl.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("burst of %d jobs done in %s: %d migrations over TCP",
		jobs, makespan.Round(time.Millisecond), st.Migrations)
	for dest, n := range st.MigrationsTo {
		fmt.Printf(", %d→node %d", n, dest)
	}
	fmt.Printf(" (%d failed in flight, recovered locally)\n", st.FailedMigrations)
	fmt.Println("node 3 detected dead by heartbeats; all results correct")
	if st.Migrations == 0 {
		log.Fatal("the balancer never spilled the burst over TCP")
	}
}
