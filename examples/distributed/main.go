// Distributed: the cluster runtime over real TCP sockets, driven through
// the unified client API. Three sodd node daemons boot in-process on
// loopback ports — exactly what the sodd binary runs, minus the process
// boundary — and join into one cluster: a weak one-core node and two
// strong peers. The driver then connects a sod.Dial client (the same
// sod.Client interface an in-process cluster serves), submits a burst of
// jobs onto the weak node, and *watches* every job live: each migration
// prints as it happens, with its direction, its reason (pushed / stolen /
// rebalanced) and its hop count — the stream sodctl surfaces as
// "sodctl watch -job N".
//
// Mid-run one strong node is killed with no goodbye: the survivors'
// failure detectors notice on their own (there is no SetNodeDown here —
// this is not the simulated fabric), a migration aimed at the corpse
// falls back to local execution, and every job still returns the right
// answer.
//
// The same scenario runs as separate OS processes with cmd/sodd and
// cmd/sodctl; see README "Running a real cluster".
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"repro/internal/daemon"
	"repro/internal/membership"
	"repro/internal/workloads"
	"repro/sod"
)

const (
	jobs  = 6
	iters = 200_000
)

func boot(id, cores, slow int) *daemon.Daemon {
	d, err := daemon.New(daemon.Config{
		ID: id, Cores: cores, Slow: slow,
		Policy: "threshold", Interval: 2 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	return d
}

func printEvents(wg *sync.WaitGroup, ch <-chan sod.JobEvent) {
	defer wg.Done()
	for ev := range ch {
		fmt.Printf("  %s\n", ev)
	}
}

func main() {
	// Boot a seed and two joiners; the join protocol spreads the roster
	// so nodes 2 and 3 find each other through node 1.
	d1 := boot(1, 1, 16) // the weak device
	d2 := boot(2, 0, 0)
	d3 := boot(3, 0, 0)
	defer d1.Stop()
	defer d2.Stop()
	for _, d := range []*daemon.Daemon{d2, d3} {
		if err := d.Join(d1.Addr()); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("cluster up: node 1 @ %s, node 2 @ %s, node 3 @ %s\n",
		d1.Addr(), d2.Addr(), d3.Addr())

	// Wait for full mutual discovery.
	deadline := time.Now().Add(10 * time.Second)
	for d1.Node().Members.State(2) != membership.Alive ||
		d1.Node().Members.State(3) != membership.Alive ||
		d2.Node().Members.State(3) != membership.Alive {
		if time.Now().After(deadline) {
			log.Fatal("membership never converged")
		}
		time.Sleep(5 * time.Millisecond)
	}
	fmt.Println("membership converged: every node sees every peer alive")

	// One client API: sod.Dial serves the same sod.Client an in-process
	// cluster.Client() does — submit, wait, stats, and live job watching.
	// The deadline is the scenario's failure alarm: a job wedged by the
	// mid-run crash must abort the example loudly, not hang it.
	ctx, cancelCtx := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancelCtx()
	cl, err := sod.Dial(d1.Addr())
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close() //nolint:errcheck

	start := time.Now()
	handles := make([]sod.JobHandle, jobs)
	var watchers sync.WaitGroup
	for i := range handles {
		h, err := cl.Submit(ctx, "main", sod.Int(int64(1000+i)), sod.Int(iters))
		if err != nil {
			log.Fatal(err)
		}
		handles[i] = h
		ch, err := cl.Watch(ctx, h.ID())
		if err != nil {
			log.Fatal(err)
		}
		watchers.Add(1)
		go printEvents(&watchers, ch)
	}

	// Kill node 3 mid-run: from the survivors' point of view it simply
	// stops answering.
	time.Sleep(50 * time.Millisecond)
	d3.Stop()
	fmt.Println("node 3 killed mid-run (no goodbye sent)")

	for i, h := range handles {
		res, err := h.Wait(ctx)
		if err != nil {
			log.Fatalf("job %d: %v", i, err)
		}
		if want := workloads.CruncherExpected(int64(1000+i), iters); res.I != want {
			log.Fatalf("job %d: result %d, want %d", i, res.I, want)
		}
	}
	makespan := time.Since(start)
	watchers.Wait() // every stream ends at its job's completion event

	// The survivors must have declared node 3 dead purely by heartbeat.
	deadline = time.Now().Add(20 * time.Second)
	for d1.Node().Members.State(3) != membership.Dead {
		if time.Now().After(deadline) {
			log.Fatal("node 1 never detected the crash")
		}
		time.Sleep(5 * time.Millisecond)
	}

	st, err := cl.Stats(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("burst of %d jobs done in %s: %d migrations over TCP",
		jobs, makespan.Round(time.Millisecond), st.Balance.Migrations)
	for dest, n := range st.Balance.MigrationsTo {
		fmt.Printf(", %d→node %d", n, dest)
	}
	fmt.Printf(" (%d failed in flight, recovered locally)\n", st.Balance.FailedMigrations)
	fmt.Println("node 3 detected dead by heartbeats; all results correct")
	if st.Balance.Migrations == 0 {
		log.Fatal("the balancer never spilled the burst over TCP")
	}
}
