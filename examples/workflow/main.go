// Workflow: the paper's Fig 1c multi-domain execution path. A three-frame
// computation starts on node 1; the top frame migrates to node 2 while
// the residual stack is planted on node 3 in parallel. When the segment
// pops on node 2, its return value is forwarded straight to node 3 —
// control never returns to node 1 until the job completes, and the
// restore of the residual overlaps with the segment's execution ("freeze
// time between multiple hops is fully or partially hidden", §II.A).
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"repro/sod"
	"repro/sodasm"
)

func buildProgram() *sod.Program {
	pb := sodasm.NewProgram()
	pb.Native("pause", 0, false)
	pb.Native("whereami", 0, true) // returns the executing node id

	// stage2: the top frame (frame 1 in Fig 1), compute-heavy.
	s2 := pb.Func("stage2", true, "x")
	s2.Line().CallNat("pause", 0)
	s2.Line().Int(0).Store("acc")
	s2.Line().Int(0).Store("i")
	s2.Label("loop")
	s2.Line().Load("i").Int(200000).Ge().Jnz("done")
	s2.Line().Load("acc").Load("i").Load("x").Mul().Add().Store("acc")
	s2.Line().Load("i").Int(1).Add().Store("i")
	s2.Line().Jmp("loop")
	s2.Label("done")
	s2.Line().Load("acc").Int(10000).Mod().Store("acc") // keep below the location markers
	s2.Line().CallNat("whereami", 0).Store("loc")
	s2.Line().Load("acc").Load("loc").Int(1000000).Mul().Add().RetV()

	// stage1: frame 2 — post-processes stage2's result.
	s1 := pb.Func("stage1", true, "x")
	s1.Line().Load("x").Call("stage2", 1).Store("r")
	s1.Line().CallNat("whereami", 0).Store("loc")
	s1.Line().Load("r").Load("loc").Int(100000000).Mul().Add().RetV()

	// main: frame 3.
	mn := pb.Func("main", true, "x")
	mn.Line().Load("x").Call("stage1", 1).RetV()

	return pb.MustBuild()
}

func main() {
	app := sod.Compile(buildProgram())
	cluster, err := sod.NewCluster(app, sod.Gigabit,
		sod.Node{ID: 1}, sod.Node{ID: 2}, sod.Node{ID: 3})
	if err != nil {
		log.Fatal(err)
	}

	var once sync.Once
	paused := make(chan struct{})
	resume := make(chan struct{})
	for id := 1; id <= 3; id++ {
		h := cluster.On(id)
		nodeID := int64(id)
		h.BindNative("whereami", func(args []sod.Value) (sod.Value, error) {
			return sod.Int(nodeID), nil
		})
		h.BindNative("pause", func(args []sod.Value) (sod.Value, error) {
			once.Do(func() {
				close(paused)
				<-resume
			})
			return sod.Value{}, nil
		})
	}

	home := cluster.On(1)
	job, err := home.Start("main", sod.Int(3))
	if err != nil {
		log.Fatal(err)
	}
	<-paused
	done := make(chan *sod.Metrics, 1)
	go func() {
		m, merr := home.Migrate(job, sod.Migration{
			Frames: 1, Dest: 2, // segment (stage2) to node 2...
			Flow: sod.Forward, ForwardTo: 3, // ...residual (stage1+main) to node 3
		})
		if merr != nil {
			log.Fatal(merr)
		}
		done <- m
	}()
	time.Sleep(time.Millisecond)
	close(resume)
	m := <-done

	result, err := job.Wait()
	if err != nil {
		log.Fatal(err)
	}
	// Decode the location stamps: stage2 ran on node 2, stage1 on node 3.
	stage1Loc := result.I / 100000000
	stage2Loc := (result.I % 100000000) / 1000000
	fmt.Printf("workflow result = %d\n", result.I)
	fmt.Printf("stage2 (segment) executed on node %d; stage1 (residual) resumed on node %d\n",
		stage2Loc, stage1Loc)
	fmt.Printf("migration latency %v (%d state bytes)\n",
		m.Latency.Round(time.Microsecond), m.StateBytes)
	if stage2Loc != 2 || stage1Loc != 3 {
		log.Fatal("unexpected execution placement!")
	}
}
