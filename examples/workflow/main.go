// Workflow: the paper's Fig 1c multi-domain execution path, driven
// entirely by policy. A three-stage pipeline (main → stage1 → stage2) is
// submitted as a *chained* job on node 1; the balancer's chain planner
// inspects the parked stack — per-frame instruction counts, pinning,
// live load and RTT — and splits it on its own: the hot stage2 segment
// ships to one idle peer while the stage1+main residual is planted on
// another ahead of execution. When stage2 pops, its value is forwarded
// straight to the planted link — control never returns to node 1 until
// the final result flushes home ("freeze time between multiple hops is
// fully or partially hidden", §II.A). Nobody names a destination
// anywhere in this file.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/workloads"
	"repro/sod"
)

func main() {
	app := sod.Compile(workloads.Workflow())
	cluster, err := sod.NewCluster(app, sod.Gigabit,
		sod.Node{ID: 1, Cores: 1, Slow: 16}, // weak submit node
		sod.Node{ID: 2},                     // idle strong peers:
		sod.Node{ID: 3})                     // the planner picks among them
	if err != nil {
		log.Fatal(err)
	}

	// Chain-only balancer: nothing pushes; the planner owns chained jobs.
	bal := cluster.AutoBalance(sod.NeverPolicy(), sod.BalanceOptions{
		Interval: time.Millisecond,
		Chain:    true,
	})
	defer bal.Stop()

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	cl := cluster.Client()

	const seed, iters = 3, 600_000
	job, err := cl.SubmitChain(ctx, "main", sod.Int(seed), sod.Int(iters))
	if err != nil {
		log.Fatal(err)
	}
	events, err := cl.Watch(ctx, job.ID())
	if err != nil {
		log.Fatal(err)
	}

	// Narrate the chain as it happens.
	var planted, forwarded, chained int
	for ev := range events {
		fmt.Println("  " + ev.String())
		switch ev.Kind {
		case sod.JobSegmentPlanted:
			planted++
		case sod.JobSegmentForwarded:
			forwarded++
		case sod.JobMigrated:
			if ev.Reason == sod.MigrateChained {
				chained++
			}
		}
	}

	result, err := job.Wait(ctx)
	if err != nil {
		log.Fatal(err)
	}
	want := workloads.WorkflowExpected(seed, iters)
	fmt.Printf("workflow result = %d (want %d)\n", result.I, want)
	fmt.Printf("chain: %d executing segment(s) shipped, %d residual link(s) planted ahead, %d forward(s)\n",
		chained, planted, forwarded)
	if result.I != want {
		log.Fatal("wrong result!")
	}
	if chained == 0 || planted == 0 || forwarded == 0 {
		log.Fatal("the planner never chained the job!")
	}
}
