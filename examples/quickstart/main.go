// Quickstart: assemble a recursive Fibonacci program, run it on a
// two-node SOD cluster, and migrate the hot frame to the second node
// mid-computation (the paper's Fig 1a flow). The result is identical to a
// local run; the migration metrics show the stack-on-demand cost
// breakdown (capture / transfer / restore).
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"repro/sod"
	"repro/sodasm"
)

func buildProgram() *sod.Program {
	pb := sodasm.NewProgram()
	pb.Native("pause", 0, false) // lets the driver align the migration

	fib := pb.Func("fib", true, "n")
	fib.Line().Load("n").Int(2).Lt().Jnz("base")
	fib.Line().Load("n").Int(25).Eq().Jz("go") // pause once, deep in the recursion
	fib.Line().CallNat("pause", 0)
	fib.Label("go")
	fib.Line().Load("n").Int(1).Sub().Call("fib", 1).Store("a")
	fib.Line().Load("n").Int(2).Sub().Call("fib", 1).Store("b")
	fib.Line().Load("a").Load("b").Add().RetV()
	fib.Label("base")
	fib.Line().Load("n").RetV()

	return pb.MustBuild()
}

func main() {
	// Compile injects migration-safe points, object fault handlers and
	// restoration handlers (the paper's class preprocessor).
	app := sod.Compile(buildProgram())

	cluster, err := sod.NewCluster(app, sod.Gigabit,
		sod.Node{ID: 1},             // home
		sod.Node{ID: 2, Cold: true}, // worker: classes ship on demand (see below)
	)
	if err != nil {
		log.Fatal(err)
	}

	// The pause native blocks once, when fib(25) is first entered, so the
	// migration happens at a known point of the recursion.
	var once sync.Once
	paused := make(chan struct{})
	resume := make(chan struct{})
	for _, id := range []int{1, 2} {
		cluster.On(id).BindNative("pause", func(args []sod.Value) (sod.Value, error) {
			once.Do(func() {
				close(paused)
				<-resume
			})
			return sod.Value{}, nil
		})
	}

	home := cluster.On(1)
	job, err := home.Start("fib", sod.Int(30))
	if err != nil {
		log.Fatal(err)
	}

	<-paused
	type out struct {
		m   *sod.Metrics
		err error
	}
	done := make(chan out, 1)
	go func() {
		m, merr := home.Migrate(job, sod.Migration{Frames: 1, Dest: 2, Flow: sod.ReturnHome})
		done <- out{m, merr}
	}()
	time.Sleep(time.Millisecond) // let the suspend request land
	close(resume)
	o := <-done
	if o.err != nil {
		log.Fatal(o.err)
	}

	result, err := job.Wait()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fib(30) = %d (computed across two nodes)\n", result.I)
	fmt.Printf("SOD migration: capture %v + transfer %v + restore %v = %v, %d state bytes\n",
		o.m.Capture.Round(time.Microsecond), o.m.Transfer.Round(time.Microsecond),
		o.m.Restore.Round(time.Microsecond), o.m.Latency.Round(time.Microsecond), o.m.StateBytes)
	if result.I != 832040 {
		log.Fatal("wrong result!")
	}
}
