// Elastic: the adaptive half of Stack-on-Demand. A burst of CPU-bound
// jobs lands on a weak one-core node while strong nodes idle; the
// AutoBalance engine watches the gossiped load signals and spills jobs
// outward with whole-stack SOD migrations — "load can spill from weak
// devices to strong nodes" without the application issuing a single
// Migrate call. The same burst is then replayed with the balancer off to
// show what elasticity bought.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/sod"
	"repro/sodasm"
)

const (
	jobs  = 8
	iters = 100_000
)

// buildProgram assembles crunch(seed, iters): a masked linear recurrence
// — pure CPU, no shared data, ideal for whole-job offload.
func buildProgram() *sod.Program {
	pb := sodasm.NewProgram()
	cr := pb.Func("crunch", true, "seed", "iters")
	cr.Line().Load("seed").Store("acc")
	cr.Line().Int(0).Store("i")
	cr.Label("loop")
	cr.Line().Load("i").Load("iters").Ge().Jnz("done")
	cr.Line().Load("acc").Int(31).Mul().Load("i").Add().Int(0xFFFF).And().Store("acc")
	cr.Line().Load("i").Int(1).Add().Store("i")
	cr.Line().Jmp("loop")
	cr.Label("done")
	cr.Line().Load("acc").RetV()
	mn := pb.Func("main", true, "seed", "iters")
	mn.Line().Load("seed").Load("iters").Call("crunch", 2).RetV()
	return pb.MustBuild()
}

func newCluster(app *sod.Program) *sod.Cluster {
	cluster, err := sod.NewCluster(app, sod.Gigabit,
		sod.Node{ID: 1, Cores: 1, Slow: 24}, // the weak device
		sod.Node{ID: 2, Cores: 2},           // idle strong nodes
		sod.Node{ID: 3, Cores: 2},
		sod.Node{ID: 4, Cores: 2},
	)
	if err != nil {
		log.Fatal(err)
	}
	return cluster
}

// burst starts all jobs on the weak node and waits for every result,
// returning the makespan.
func burst(cluster *sod.Cluster) time.Duration {
	start := time.Now()
	var handles []*sod.Job
	for i := 0; i < jobs; i++ {
		job, err := cluster.On(1).Start("main", sod.Int(int64(1000+i)), sod.Int(iters))
		if err != nil {
			log.Fatal(err)
		}
		handles = append(handles, job)
	}
	for i, job := range handles {
		if _, err := job.Wait(); err != nil {
			log.Fatalf("job %d: %v", i, err)
		}
	}
	return time.Since(start)
}

func main() {
	app := sod.Compile(buildProgram())

	// Round 1: the balancer watches the burst and spills it outward.
	cluster := newCluster(app)
	b := cluster.AutoBalance(sod.ThresholdPolicy(0, 0), sod.BalanceOptions{})
	elastic := burst(cluster)
	b.Stop()
	st := b.Stats()

	// Round 2: the same burst grinds through the weak node alone.
	pinned := burst(newCluster(app))

	fmt.Printf("burst of %d jobs on the weak node:\n", jobs)
	fmt.Printf("  with AutoBalance: %8s  (%d auto-migrations", elastic.Round(time.Millisecond), st.Migrations)
	for dest, nmigr := range st.MigrationsTo {
		fmt.Printf(", %d→node %d", nmigr, dest)
	}
	fmt.Printf(")\n")
	fmt.Printf("  without:          %8s\n", pinned.Round(time.Millisecond))
	if st.Migrations == 0 {
		log.Fatal("the balancer never spilled the burst")
	}
	if elastic >= pinned {
		fmt.Println("note: no speedup this run (loaded host?)")
	} else {
		fmt.Printf("elastic speedup: %.2fx\n", float64(pinned)/float64(elastic))
	}
}
