// Photoshare: the §IV.D iPhone scenario, placed by policy instead of by
// hand. A web server (SODEE node) serves a photo-search request whose
// bottom frame is pinned (it holds the client socket); the photos live
// on a handset (Device node, no tool interface, Java-serialization
// restore) behind a bandwidth-capped link. The request is submitted as a
// *chained* job: the chain planner sees a stack whose top frame is
// movable and whose tail is pinned, ships the search frame to the
// handset, and keeps serveRequest parked at the server as the chain's
// local tail — when the search pops on the phone, its hit count is
// forwarded straight back into the parked frame and the HTTP reply goes
// out from the server. The computation visits the data; the socket never
// moves; nobody names a destination.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/nfs"
	"repro/internal/workloads"
	"repro/sod"
)

const photos = 60 // every 5th is a beach shot

func hostPhotos(fs *nfs.Server) (beach int64) {
	for i := 0; i < photos; i++ {
		name := fmt.Sprintf("User/Media/DCIM/100APPLE/IMG_%04d.jpg", i)
		if i%5 == 0 {
			name = fmt.Sprintf("User/Media/DCIM/100APPLE/beach_%04d.jpg", i)
			beach++
		}
		fs.Host(nfs.File{Name: name, Host: 2, Size: 16 << 10, Seed: uint64(i)})
	}
	return beach
}

func main() {
	w := workloads.PhotoShare()
	app := sod.Compile(w.Prog)

	for _, kbps := range []int64{128, 764} {
		cluster, err := sod.NewCluster(app, sod.Kbps(kbps),
			sod.Node{ID: 1}, // the web server
			sod.Node{ID: 2, System: sod.Device, Cold: true}, // the handset
		)
		if err != nil {
			log.Fatal(err)
		}
		fs := nfs.NewServer(cluster.Network())
		wantBeach := hostPhotos(fs)

		for _, id := range []int{1, 2} {
			h := cluster.On(id)
			nd := h.Inner()
			env := &workloads.PhotoEnv{FS: fs, Location: func() int { return nd.Location() }}
			env.Bind(h.VM())
			// The search's entry checkpoint models the request's server-side
			// prep (parse, auth): it holds the job in its compute phase long
			// enough for the millisecond-tick planner to see the stack. A
			// real server request is long-lived on its own.
			h.BindNative(workloads.CheckpointNative, func(args []sod.Value) (sod.Value, error) {
				time.Sleep(30 * time.Millisecond)
				return sod.Value{}, nil
			})
		}

		// Chain-only balancer. MinGain below zero states the request is
		// data-bound, not compute-bound: shipping the search to the slow
		// handset is worth it even at a throughput loss, because the
		// photos are there.
		bal := cluster.AutoBalance(sod.NeverPolicy(), sod.BalanceOptions{
			Interval: time.Millisecond,
			Chain:    true,
			ChainPlanner: sod.ChainPlanner{
				MinGain: -1,
			},
		})

		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		server := cluster.On(1)
		cl, err := cluster.ClientOn(1)
		if err != nil {
			log.Fatal(err)
		}
		job, err := cl.SubmitChain(ctx, "PhotoApp.serveRequest",
			server.Intern("User/Media/DCIM/100APPLE"), server.Intern("beach"))
		if err != nil {
			log.Fatal(err)
		}
		events, err := cl.Watch(ctx, job.ID())
		if err != nil {
			log.Fatal(err)
		}
		var chained, tailForwarded bool
		for ev := range events {
			fmt.Println("  " + ev.String())
			if ev.Kind == sod.JobMigrated && ev.Reason == sod.MigrateChained && ev.To == 2 {
				chained = true
			}
			if ev.Kind == sod.JobSegmentForwarded && ev.To == 1 {
				tailForwarded = true
			}
		}

		res, err := job.Wait(ctx)
		if err != nil {
			log.Fatal(err)
		}
		m := server.Runtime().LastMigration()
		fmt.Printf("[%4d kbps] found %d beach photos on the phone (want %d); search frame shipped in %v (%d state bytes)\n",
			kbps, res.I, wantBeach, m.Latency.Round(time.Microsecond), m.StateBytes)
		if res.I != wantBeach {
			log.Fatal("wrong hit count!")
		}
		if !chained || !tailForwarded {
			log.Fatal("the planner did not chain the request to the handset!")
		}
		bal.Stop()
		cancel()
	}
	fmt.Println("note: the serveRequest frame is pinned (it holds the socket); the planner kept it home as the chain's local tail.")
}
