// Photoshare: the §IV.D iPhone scenario. A web server (SODEE node) holds
// the client connection in a pinned frame and pushes its photo-search
// frame to a handset (Device node, no tool interface, Java-serialization
// restore, slow CPU) over a bandwidth-capped link. The photos never need
// a web server installed on the phone — the computation visits the data.
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"repro/internal/nfs"
	"repro/internal/workloads"
	"repro/sod"
)

func main() {
	w := workloads.PhotoShare()
	app := sod.Compile(w.Prog)

	for _, kbps := range []int64{128, 764} {
		cluster, err := sod.NewCluster(app, sod.Kbps(kbps),
			sod.Node{ID: 1},                           // the web server
			sod.Node{ID: 2, System: sod.Device, Cold: true}, // the handset
		)
		if err != nil {
			log.Fatal(err)
		}
		fs := nfs.NewServer(cluster.Network())
		for i := 0; i < 9; i++ {
			name := fmt.Sprintf("User/Media/DCIM/100APPLE/IMG_%04d.jpg", i)
			if i%3 == 0 {
				name = fmt.Sprintf("User/Media/DCIM/100APPLE/beach_%04d.jpg", i)
			}
			fs.Host(nfs.File{Name: name, Host: 2, Size: 16 << 10, Seed: uint64(i)})
		}

		var once sync.Once
		paused := make(chan struct{})
		resume := make(chan struct{})
		for _, id := range []int{1, 2} {
			h := cluster.On(id)
			nd := h.Inner()
			env := &workloads.PhotoEnv{FS: fs, Location: func() int { return nd.Location() }}
			env.Bind(h.VM())
			h.BindNative(workloads.CheckpointNative, func(args []sod.Value) (sod.Value, error) {
				once.Do(func() {
					close(paused)
					<-resume
				})
				return sod.Value{}, nil
			})
		}

		server := cluster.On(1)
		job, err := server.Start("PhotoApp.serveRequest",
			server.Intern("User/Media/DCIM/100APPLE"), server.Intern("beach"))
		if err != nil {
			log.Fatal(err)
		}
		<-paused
		done := make(chan *sod.Metrics, 1)
		go func() {
			m, merr := server.Migrate(job, sod.Migration{Frames: 1, Dest: 2, Flow: sod.ReturnHome})
			if merr != nil {
				log.Fatal(merr)
			}
			done <- m
		}()
		time.Sleep(time.Millisecond)
		close(resume)
		m := <-done

		res, err := job.Wait()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("[%4d kbps] found %d beach photos on the phone; migration latency %v "+
			"(capture %v, transfer %v, restore %v)\n",
			kbps, res.I, m.Latency.Round(time.Millisecond),
			m.Capture.Round(time.Microsecond), m.Transfer.Round(time.Millisecond),
			m.Restore.Round(time.Microsecond))
	}
	fmt.Println("note: the serveRequest frame is pinned (it holds the socket) and never migrates.")
}
