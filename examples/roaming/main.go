// Roaming: the §IV.C autonomous-task-roaming scenario. A text-search
// job visits five data servers; with SOD the searchFile frame migrates to
// each file's host and only the verdicts cross the (slow) network, versus
// pulling every byte over NFS without migration.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/netsim"
	"repro/internal/nfs"
	"repro/internal/workloads"
	"repro/sod"
)

const (
	servers  = 5
	fileSize = 2 << 20 // scaled from the paper's 300 MB per server
)

func buildCluster() (*sod.Cluster, *nfs.Server, *gate, []string) {
	w := workloads.TextSearch()
	app := sod.Compile(w.Prog)
	nodes := []sod.Node{{ID: 1}}
	for i := 0; i < servers; i++ {
		nodes = append(nodes, sod.Node{ID: 2 + i})
	}
	cluster, err := sod.NewCluster(app,
		netsim.LinkSpec{BandwidthBps: 100_000_000, Latency: 2 * time.Millisecond}, // WAN-ish
		nodes...)
	if err != nil {
		log.Fatal(err)
	}
	fs := nfs.NewServer(cluster.Network())
	var names []string
	for i := 0; i < servers; i++ {
		name := fmt.Sprintf("grid/f%d.dat", i)
		fs.Host(nfs.File{Name: name, Host: 2 + i, Size: fileSize, Seed: uint64(i + 1),
			Needle: "sodneedle", NeedleOff: int64(fileSize / 2)})
		names = append(names, name)
	}
	g := newGate()
	for _, n := range nodes {
		h := cluster.On(n.ID)
		nd := h.Inner()
		env := &workloads.SearchEnv{FS: fs, Location: func() int { return nd.Location() }}
		env.Bind(h.VM())
		h.BindNative(workloads.CheckpointNative, g.native())
	}
	return cluster, fs, g, names
}

type gate struct {
	armed   bool
	reached chan struct{}
	release chan struct{}
}

func newGate() *gate {
	return &gate{reached: make(chan struct{}, 64), release: make(chan struct{}, 64)}
}

func (g *gate) native() func(args []sod.Value) (sod.Value, error) {
	return func(args []sod.Value) (sod.Value, error) {
		if g.armed {
			g.reached <- struct{}{}
			<-g.release
		}
		return sod.Value{}, nil
	}
}

func run(roam bool) time.Duration {
	cluster, fs, g, names := buildCluster()
	fs.ClearCaches()
	g.armed = roam
	home := cluster.On(1)
	arr, err := workloads.MakeNameArray(home.VM(), names)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	job, err := home.Start("searchMain", sod.RefVal(arr), home.Intern("sodneedle"))
	if err != nil {
		log.Fatal(err)
	}
	if roam {
		for i := 0; i < servers; i++ {
			<-g.reached
			host := 2 + i
			done := make(chan error, 1)
			go func() {
				_, merr := home.Migrate(job, sod.Migration{Frames: 1, Dest: host, Flow: sod.ReturnHome})
				done <- merr
			}()
			time.Sleep(time.Millisecond)
			g.release <- struct{}{}
			if merr := <-done; merr != nil {
				log.Fatal(merr)
			}
		}
	}
	res, err := job.Wait()
	if err != nil {
		log.Fatal(err)
	}
	if res.I != servers {
		log.Fatalf("found needle in %d files, want %d", res.I, servers)
	}
	return time.Since(start)
}

func main() {
	noMig := run(false)
	roam := run(true)
	fmt.Printf("search %d servers without migration: %v\n", servers, noMig.Round(time.Millisecond))
	fmt.Printf("search %d servers with SOD roaming:   %v\n", servers, roam.Round(time.Millisecond))
	fmt.Printf("speedup: %.2fx (paper: 3.39x over 10 servers)\n", float64(noMig)/float64(roam))
}
