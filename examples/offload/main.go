// Offload: the §II.B exception-driven offload scenario. A memory-hungry
// computation runs on a resource-poor "device" node with a tight heap
// limit. When allocation fails, the program's catch block for
// OutOfMemoryError calls an offload native that re-executes the
// computation on the cloud node with plenty of memory — "the exception
// handler will capture the execution state and rocket it into the Cloud
// that has wider library base and memory capacity for retrying the
// execution".
package main

import (
	"fmt"
	"log"

	"repro/sod"
	"repro/sodasm"
)

func buildProgram() *sod.Program {
	pb := sodasm.NewProgram()
	pb.Native("offload_retry", 1, true)

	// buildTable(n): allocates an n×n int table and folds it — needs
	// n*n*8 bytes of heap.
	bt := pb.Func("buildTable", true, "n")
	bt.Line().Load("n").Load("n").Mul().NewArr(sodasm.ArrInt).Store("t")
	bt.Line().Int(0).Store("i")
	bt.Label("fill")
	bt.Line().Load("i").Load("n").Load("n").Mul().Ge().Jnz("sum")
	bt.Line().Load("t").Load("i").Load("i").Load("i").Mul().AStore()
	bt.Line().Load("i").Int(1).Add().Store("i")
	bt.Line().Jmp("fill")
	bt.Label("sum")
	bt.Line().Int(0).Store("acc")
	bt.Line().Int(0).Store("i")
	bt.Label("fold")
	bt.Line().Load("i").Load("n").Load("n").Mul().Ge().Jnz("done")
	bt.Line().Load("acc").Load("t").Load("i").ALoad().Add().Store("acc")
	bt.Line().Load("i").Int(1).Add().Store("i")
	bt.Line().Jmp("fold")
	bt.Label("done")
	bt.Line().Load("acc").RetV()

	// main(n): try locally; on OutOfMemoryError, retry in the cloud.
	mn := pb.Func("main", true, "n")
	mn.Label("try")
	mn.Line().Load("n").Call("buildTable", 1).Store("r")
	mn.Line().Load("r").RetV()
	mn.Label("endtry")
	mn.Label("catch")
	mn.Store("e") // the OutOfMemoryError object
	mn.Line().Load("n").CallNat("offload_retry", 1).Store("r")
	mn.Line().Load("r").Int(1).Add().RetV() // +1 marks the offloaded path
	mn.Try("try", "endtry", "catch", sodasm.OutOfMemoryError)

	return pb.MustBuild()
}

func main() {
	app := sod.Compile(buildProgram())
	cluster, err := sod.NewCluster(app, sod.Gigabit,
		sod.Node{ID: 1, HeapLimit: 64 << 10}, // the "device": 64 KiB heap
		sod.Node{ID: 2},                      // the cloud
	)
	if err != nil {
		log.Fatal(err)
	}
	device, cloud := cluster.On(1), cluster.On(2)

	offloads := 0
	for _, h := range []*sod.NodeHandle{device, cloud} {
		h.BindNative("offload_retry", func(args []sod.Value) (sod.Value, error) {
			offloads++
			job, err := cloud.Start("buildTable", args[0])
			if err != nil {
				return sod.Value{}, err
			}
			res, err := job.Wait()
			return res, err
		})
	}

	// Small n fits the device heap; big n trips OOM and offloads.
	for _, n := range []int64{20, 400} {
		job, err := device.Start("main", sod.Int(n))
		if err != nil {
			log.Fatal(err)
		}
		res, err := job.Wait()
		if err != nil {
			log.Fatal(err)
		}
		where := "on the device"
		if res.I%10 == 1 && n == 400 {
			where = "offloaded to the cloud (OutOfMemoryError caught)"
		}
		fmt.Printf("buildTable(%d) = %d — %s\n", n, res.I, where)
	}
	if offloads != 1 {
		log.Fatalf("expected exactly one offload, got %d", offloads)
	}
	fmt.Println("exception-driven offload demonstrated.")
}
