// Work stealing: migration initiated from the idle side of the link. A
// burst lands on a weak node whose push policy is deliberately cautious
// (a high watermark avoids migration thrash) — so push alone leaves work
// stranded there. Arming Steal in BalanceOptions lets the idle strong
// nodes pull jobs over with steal requests instead of waiting to be
// pushed to, and the stats split shows who moved what: pushed by the
// loaded node, stolen by idle ones, re-balanced onward after arrival.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/sod"
	"repro/sodasm"
)

const (
	jobs      = 8
	iters     = 100_000
	highWater = 4 // conservative push watermark: sheds load only above this
)

// buildProgram assembles crunch(seed, iters): a masked linear recurrence
// — pure CPU, ideal for whole-job offload.
func buildProgram() *sod.Program {
	pb := sodasm.NewProgram()
	cr := pb.Func("crunch", true, "seed", "iters")
	cr.Line().Load("seed").Store("acc")
	cr.Line().Int(0).Store("i")
	cr.Label("loop")
	cr.Line().Load("i").Load("iters").Ge().Jnz("done")
	cr.Line().Load("acc").Int(31).Mul().Load("i").Add().Int(0xFFFF).And().Store("acc")
	cr.Line().Load("i").Int(1).Add().Store("i")
	cr.Line().Jmp("loop")
	cr.Label("done")
	cr.Line().Load("acc").RetV()
	mn := pb.Func("main", true, "seed", "iters")
	mn.Line().Load("seed").Load("iters").Call("crunch", 2).RetV()
	return pb.MustBuild()
}

func newCluster(app *sod.Program) *sod.Cluster {
	cluster, err := sod.NewCluster(app, sod.Gigabit,
		sod.Node{ID: 1, Cores: 1, Slow: 24}, // the weak loaded node
		sod.Node{ID: 2, Cores: 2},           // idle strong nodes
		sod.Node{ID: 3, Cores: 2},
		sod.Node{ID: 4, Cores: 2},
	)
	if err != nil {
		log.Fatal(err)
	}
	return cluster
}

// burst starts all jobs on the weak node and waits, returning makespan.
func burst(cluster *sod.Cluster) time.Duration {
	start := time.Now()
	var handles []*sod.Job
	for i := 0; i < jobs; i++ {
		job, err := cluster.On(1).Start("main", sod.Int(int64(3000+i)), sod.Int(iters))
		if err != nil {
			log.Fatal(err)
		}
		handles = append(handles, job)
	}
	for i, job := range handles {
		if _, err := job.Wait(); err != nil {
			log.Fatalf("job %d: %v", i, err)
		}
	}
	return time.Since(start)
}

func run(app *sod.Program, steal bool) (time.Duration, sod.BalanceStats) {
	cluster := newCluster(app)
	b := cluster.AutoBalance(sod.ThresholdPolicy(highWater, 0), sod.BalanceOptions{
		Steal: steal,
	})
	makespan := burst(cluster)
	b.Stop()
	return makespan, b.Stats()
}

func main() {
	app := sod.Compile(buildProgram())

	pushOnly, pushStats := run(app, false)
	withSteal, stealStats := run(app, true)

	fmt.Printf("burst of %d jobs on the weak node (push watermark %d):\n", jobs, highWater)
	fmt.Printf("  push-only:  %8s  (pushed %d, stolen %d, rebalanced %d)\n",
		pushOnly.Round(time.Millisecond), pushStats.Pushed, pushStats.Stolen, pushStats.Rebalanced)
	fmt.Printf("  push+steal: %8s  (pushed %d, stolen %d, rebalanced %d)\n",
		withSteal.Round(time.Millisecond), stealStats.Pushed, stealStats.Stolen, stealStats.Rebalanced)
	if stealStats.Stolen == 0 {
		log.Fatal("the idle nodes never stole")
	}
	if withSteal >= pushOnly {
		fmt.Println("note: no speedup this run (loaded host?)")
	} else {
		fmt.Printf("steal speedup: %.2fx\n", float64(pushOnly)/float64(withSteal))
	}
}
