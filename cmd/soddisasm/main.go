// Command soddisasm shows what the class preprocessor does to a program:
// it disassembles a built-in workload before and after preprocessing, so
// the injected migration-safe points, fault handlers and restoration
// handlers (Fig 4 and Fig 5 of the paper) can be inspected.
//
//	soddisasm -workload fib
//	soddisasm -workload tsp -mode check
//	soddisasm -workload fft -mode fault -method FFT.finish
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bytecode"
	"repro/internal/preprocess"
	"repro/internal/workloads"
)

func main() {
	name := flag.String("workload", "fib", "workload: fib, nq, fft, tsp, search, photo, bench")
	mode := flag.String("mode", "fault", "instrumentation: none, fault, check")
	method := flag.String("method", "", "disassemble only this qualified method")
	orig := flag.Bool("orig", false, "show the original (untransformed) program too")
	flag.Parse()

	var w *workloads.Workload
	switch strings.ToLower(*name) {
	case "fib":
		w = workloads.Fib()
	case "nq":
		w = workloads.NQueens()
	case "fft":
		w = workloads.FFT()
	case "tsp":
		w = workloads.TSP()
	case "search":
		w = workloads.TextSearch()
	case "photo":
		w = workloads.PhotoShare()
	case "bench":
		w = workloads.FieldBench()
	default:
		fmt.Fprintf(os.Stderr, "soddisasm: unknown workload %q\n", *name)
		os.Exit(2)
	}

	var m preprocess.Mode
	switch strings.ToLower(*mode) {
	case "none":
		m = preprocess.ModeNone
	case "fault":
		m = preprocess.ModeFaulting
	case "check":
		m = preprocess.ModeStatusCheck
	default:
		fmt.Fprintf(os.Stderr, "soddisasm: unknown mode %q\n", *mode)
		os.Exit(2)
	}

	show := func(title string, p *bytecode.Program) {
		fmt.Printf("=== %s ===\n", title)
		if *method != "" {
			mid := p.MethodByName(*method)
			if mid < 0 {
				fmt.Fprintf(os.Stderr, "soddisasm: no method %q\n", *method)
				os.Exit(1)
			}
			fmt.Print(bytecode.Disassemble(p, p.Methods[mid]))
			return
		}
		fmt.Print(bytecode.DisassembleProgram(p))
	}

	if *orig {
		show("original", w.Prog)
	}
	pp, rep, err := preprocess.Preprocess(w.Prog, preprocess.Options{Mode: m, Restore: true})
	if err != nil {
		fmt.Fprintf(os.Stderr, "soddisasm: %v\n", err)
		os.Exit(1)
	}
	show(fmt.Sprintf("preprocessed (%v, restore handlers)", m), pp)
	fmt.Println("=== transformation report ===")
	for _, mr := range rep.Methods {
		status := "lifted"
		if !mr.Lifted {
			status = "as-is: " + mr.Reason
		}
		fmt.Printf("%-30s %-10s stmts=%-4d handlers=%-3d size %dB -> %dB\n",
			mr.Name, status, mr.Stmts, mr.FaultHandlers, mr.OrigSize, mr.NewSize)
	}
}
