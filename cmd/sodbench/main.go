// Command sodbench regenerates the paper's evaluation tables and figures
// on demand:
//
//	sodbench -table all          # everything (several minutes)
//	sodbench -table 2            # Table II (+ derived III & IV)
//	sodbench -table 5            # the object-faulting microbenchmark
//	sodbench -table roam         # the §IV.C roaming experiment
//	sodbench -table fig5         # the code-size comparison
//	sodbench -table elastic      # adaptive offload vs no-migration vs hand placement
//	sodbench -table transport    # migration cost: simulated fabric vs TCP loopback
//	sodbench -table steal        # work stealing: push-only vs push+steal makespan
//	sodbench -table workflow     # forward chains vs return-home on WAN links
//	sodbench -table swarm        # control-plane load: 1k clients, crash mid-load
//	sodbench -table wire         # migration wire format: full-state vs delta+streaming
//
// The swarm table also writes BENCH_swarm.json (see -json/-out) and can
// gate CI: -baseline FILE exits non-zero when sustained jobs/sec drops
// more than 30% below the committed baseline. The wire table does the
// same with BENCH_wire.json (-wire-out), gating on warm-hop bytes and
// capture→resume latency.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	table := flag.String("table", "all", "which table to regenerate: 1,2,3,4,5,6,7,roam,fig5,elastic,transport,steal,workflow,all")
	elasticJobs := flag.Int("elastic-jobs", 0, "elastic: burst size (0 = default 8)")
	elasticIters := flag.Int64("elastic-iters", 0, "elastic: iterations per job (0 = default)")
	transportTrips := flag.Int("transport-trips", 0, "transport: migrations per fabric (0 = default 12)")
	stealJobs := flag.Int("steal-jobs", 0, "steal: burst size (0 = default 8)")
	stealIters := flag.Int64("steal-iters", 0, "steal: iterations per job (0 = default)")
	wfJobs := flag.Int("workflow-jobs", 0, "workflow: burst size (0 = default 6)")
	wfIters := flag.Int64("workflow-iters", 0, "workflow: stage2 iterations per job (0 = default)")
	wfLatency := flag.Int("workflow-latency", 0, "workflow: one-way WAN latency in ms (0 = default 8)")
	swarmWorkers := flag.Int("swarm-workers", 0, "swarm: concurrent clients (0 = default 1000, -short 200)")
	swarmJobs := flag.Int("swarm-jobs", 0, "swarm: jobs per client (0 = default 3)")
	swarmIters := flag.Int64("swarm-iters", 0, "swarm: iterations per job (0 = default 8000)")
	short := flag.Bool("short", false, "swarm: CI smoke scale")
	jsonOut := flag.Bool("json", false, "swarm: write the report to -out and print it as JSON")
	outPath := flag.String("out", "BENCH_swarm.json", "swarm: report path for -json")
	baseline := flag.String("baseline", "", "swarm: committed baseline report; exit non-zero when jobs/sec drops >30% below it")
	metricsOut := flag.String("metrics-out", "", "swarm: write each run's metrics-registry snapshot (per fabric) to this JSON file")
	wireTrips := flag.Int("wire-trips", 0, "wire: migrations per (fabric, mode) run (0 = default 12, -short 6)")
	wireIters := flag.Int64("wire-iters", 0, "wire: crunch iterations per job (0 = default)")
	wireOut := flag.String("wire-out", "BENCH_wire.json", "wire: report path for -json")
	flag.Parse()

	run := func(name string, fn func() error) {
		if *table != "all" && *table != name {
			return
		}
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "sodbench: table %s: %v\n", name, err)
			os.Exit(1)
		}
	}

	run("1", func() error {
		rows, err := experiments.Table1()
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderTable1(rows))
		return nil
	})

	// Tables II, III and IV share the same measured runs.
	wantT2 := *table == "all" || *table == "2" || *table == "3" || *table == "4"
	if wantT2 {
		t2, err := experiments.Table2()
		if err != nil {
			fmt.Fprintf(os.Stderr, "sodbench: table 2: %v\n", err)
			os.Exit(1)
		}
		if *table == "all" || *table == "2" {
			fmt.Print(experiments.RenderTable2(t2))
		}
		if *table == "all" || *table == "3" {
			fmt.Print(experiments.RenderTable3(experiments.Table3(t2)))
		}
		if *table == "all" || *table == "4" {
			fmt.Print(experiments.RenderTable4(experiments.Table4(t2)))
		}
	}

	run("5", func() error {
		rows, err := experiments.Table5(3_000_000)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderTable5(rows))
		return nil
	})
	run("6", func() error {
		rows, err := experiments.Table6()
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderTable6(rows))
		return nil
	})
	run("roam", func() error {
		r, err := experiments.Roaming()
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderRoaming(r))
		return nil
	})
	run("7", func() error {
		rows, err := experiments.Table7All()
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderTable7(rows))
		return nil
	})
	run("fig5", func() error {
		f, err := experiments.Fig5()
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderFig5(f))
		return nil
	})
	run("transport", func() error {
		rows, err := experiments.Transport(experiments.TransportConfig{
			Trips: *transportTrips,
		})
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderTransport(rows))
		return nil
	})
	run("steal", func() error {
		rows, err := experiments.Steal(experiments.StealConfig{
			Jobs: *stealJobs, Iters: *stealIters,
		})
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderSteal(rows))
		return nil
	})
	run("workflow", func() error {
		rows, err := experiments.Workflow(experiments.WorkflowConfig{
			Jobs: *wfJobs, Iters: *wfIters, LatencyMs: *wfLatency,
		})
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderWorkflow(rows))
		return nil
	})
	run("elastic", func() error {
		rows, err := experiments.Elastic(experiments.ElasticConfig{
			Jobs: *elasticJobs, Iters: *elasticIters,
		})
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderElastic(rows))
		return nil
	})
	// The swarm benchmark is opt-in ("-table swarm"), not part of "all":
	// it holds a thousand clients open and is a load test, not a paper
	// table.
	// The wire benchmark is opt-in like swarm: it is a regression gate for
	// the migration fast path, not a paper table.
	if *table == "wire" {
		rep, err := experiments.Wire(experiments.WireConfig{
			Trips: *wireTrips, Iters: *wireIters, Short: *short,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "sodbench: table wire: %v\n", err)
			os.Exit(1)
		}
		if *jsonOut {
			if err := experiments.WriteWireJSON(rep, *wireOut); err != nil {
				fmt.Fprintf(os.Stderr, "sodbench: write %s: %v\n", *wireOut, err)
				os.Exit(1)
			}
			data, _ := json.MarshalIndent(rep, "", "  ")
			fmt.Println(string(data))
		} else {
			fmt.Print(experiments.RenderWire(rep))
		}
		if *baseline != "" {
			if err := experiments.CheckWireRegression(rep, *baseline, 0.30); err != nil {
				fmt.Fprintf(os.Stderr, "sodbench: %v\n", err)
				os.Exit(1)
			}
		}
	}

	if *table == "swarm" {
		rep, err := experiments.Swarm(experiments.SwarmConfig{
			Workers:       *swarmWorkers,
			JobsPerWorker: *swarmJobs,
			Iters:         *swarmIters,
			Short:         *short,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "sodbench: table swarm: %v\n", err)
			os.Exit(1)
		}
		if *jsonOut {
			if err := experiments.WriteSwarmJSON(rep, *outPath); err != nil {
				fmt.Fprintf(os.Stderr, "sodbench: write %s: %v\n", *outPath, err)
				os.Exit(1)
			}
			data, _ := json.MarshalIndent(rep, "", "  ")
			fmt.Println(string(data))
		} else {
			fmt.Print(experiments.RenderSwarm(rep))
		}
		if *metricsOut != "" {
			// One snapshot per run, keyed the way the table labels rows —
			// the instrumentation view of the same load the report curves.
			snaps := make(map[string]any, len(rep.Rows))
			for _, row := range rep.Rows {
				if row.Load == nil || row.Load.Metrics == nil {
					continue
				}
				key := row.Fabric
				if row.Crashed != 0 {
					key += "+crash"
				}
				snaps[key] = row.Load.Metrics
			}
			data, err := json.MarshalIndent(snaps, "", "  ")
			if err == nil {
				err = os.WriteFile(*metricsOut, append(data, '\n'), 0o644)
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "sodbench: write %s: %v\n", *metricsOut, err)
				os.Exit(1)
			}
		}
		if *baseline != "" {
			if err := experiments.CheckSwarmRegression(rep, *baseline, 0.30); err != nil {
				fmt.Fprintf(os.Stderr, "sodbench: %v\n", err)
				os.Exit(1)
			}
		}
	}
}
