// Command sodctl drives a running sodd cluster: submit workload jobs,
// query membership and load, and watch migrations happen.
//
//	sodctl -addr 127.0.0.1:7101 members
//	sodctl -addr 127.0.0.1:7101 submit -method main -args 42,200000
//	sodctl -addr 127.0.0.1:7101 run -method main -args 42,200000
//	sodctl -addr 127.0.0.1:7101 stats
//	sodctl -addr 127.0.0.1:7101 load
//	sodctl -addr 127.0.0.1:7101 watch -job 3
//	sodctl -addr 127.0.0.1:7101 watch -every 1s -for 10s
//
// "watch -job N" streams job N's lifecycle live — where it started,
// every migration with its direction and reason (pushed / stolen /
// rebalanced) and hop count, the result flushing home, completion — and
// exits when the job does. Without -job, watch falls back to polling the
// cluster-wide membership and stats tables.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/daemon"
)

func usage() {
	fmt.Fprintln(os.Stderr, "usage: sodctl -addr HOST:PORT <members|submit|run|wait|stats|load|watch> [options]")
	flag.PrintDefaults()
	os.Exit(2)
}

func parseArgs(s string) []int64 {
	if s == "" {
		return nil
	}
	var out []int64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64)
		if err != nil {
			log.Fatalf("bad -args value %q: %v", part, err)
		}
		out = append(out, v)
	}
	return out
}

func printMembers(c *daemon.Client) {
	self, members, err := c.Members()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("node %d members (%d):\n", self, len(members))
	for _, m := range members {
		fmt.Printf("  %3d  %-7s  heard %6s ago  %s\n",
			m.Node, m.State, m.SinceHeard.Round(time.Millisecond), m.Addr)
	}
}

func printStats(c *daemon.Client) {
	st, ss, err := c.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ticks %d  decisions %d  migrations %d (pushed %d, stolen %d, rebalanced %d, chained %d)  failed %d\n",
		st.Ticks, st.Decisions, st.Migrations, st.Pushed, st.Stolen, st.Rebalanced, st.Chained, st.FailedMigrations)
	if st.Chained > 0 {
		fmt.Printf("chains: %d executed, %d segments placed\n", st.Chained, st.ChainSegments)
	}
	if ss.RequestsSent+ss.RequestsServed > 0 {
		fmt.Printf("steal: sent %d (won %d)  served %d (granted %d, denied %d, failed transfers %d)\n",
			ss.RequestsSent, ss.Won, ss.RequestsServed, ss.Granted, ss.Denied, ss.FailedTransfers)
	}
	dests := make([]int, 0, len(st.MigrationsTo))
	for d := range st.MigrationsTo {
		dests = append(dests, d)
	}
	sort.Ints(dests)
	for _, d := range dests {
		fmt.Printf("  → node %d: %d\n", d, st.MigrationsTo[d])
	}
}

func printLoad(c *daemon.Client) {
	info, err := c.Load()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("local : node %d  runnable %d  cores %d  speed %.2f  rate %.0f/s\n",
		info.Local.Node, info.Local.Runnable, info.Local.Cores, info.Local.Speed, info.Local.StepRate)
	for _, p := range info.Peers {
		fmt.Printf("peer  : node %d  runnable %d  cores %d  speed %.2f  rate %.0f/s\n",
			p.Node, p.Runnable, p.Cores, p.Speed, p.StepRate)
	}
	dests := make([]int, 0, len(info.WireLatency))
	for d := range info.WireLatency {
		dests = append(dests, d)
	}
	sort.Ints(dests)
	for _, d := range dests {
		fmt.Printf("link  : → node %d  measured %s (EWMA)\n", d, info.WireLatency[d].Round(time.Microsecond))
	}
}

// watchJob streams one job's lifecycle events until its stream ends
// (completion, or losing the daemon).
func watchJob(c *daemon.Client, job uint64) {
	ch, cancel, err := c.Watch(job)
	if err != nil {
		log.Fatal(err)
	}
	defer cancel()
	sawTerminal := false
	for ev := range ch {
		fmt.Printf("%s  %s\n", ev.Time.Format("15:04:05.000"), ev)
		if ev.Terminal() {
			sawTerminal = true
		}
	}
	if !sawTerminal {
		log.Fatal("watch stream ended before the job completed (daemon lost?)")
	}
}

func main() {
	addr := flag.String("addr", "", "daemon control address")
	flag.Usage = usage
	flag.Parse()
	if *addr == "" || flag.NArg() == 0 {
		usage()
	}
	cmd, rest := flag.Arg(0), flag.Args()[1:]

	c, err := daemon.Dial(*addr)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	switch cmd {
	case "members":
		printMembers(c)

	case "stats":
		printStats(c)

	case "load":
		printLoad(c)

	case "submit":
		fs := flag.NewFlagSet("submit", flag.ExitOnError)
		method := fs.String("method", "main", "entry method")
		args := fs.String("args", "", "comma-separated integer arguments")
		chain := fs.Bool("chain", false, "chain-owned: let the planner split the stack into a forward pipeline (daemon must run -chain)")
		fs.Parse(rest) //nolint:errcheck
		submit := c.Submit
		if *chain {
			submit = c.SubmitChain
		}
		id, err := submit(*method, parseArgs(*args)...)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("job %d submitted\n", id)

	case "wait":
		fs := flag.NewFlagSet("wait", flag.ExitOnError)
		job := fs.Uint64("job", 0, "job id")
		timeout := fs.Duration("timeout", time.Minute, "wait deadline")
		fs.Parse(rest) //nolint:errcheck
		res, done, errMsg, err := c.Wait(*job, *timeout)
		if err != nil {
			log.Fatal(err)
		}
		switch {
		case !done:
			fmt.Printf("job %d still running\n", *job)
		case errMsg != "":
			fmt.Printf("job %d failed: %s\n", *job, errMsg)
		default:
			fmt.Printf("job %d = %d\n", *job, res)
		}

	case "run":
		fs := flag.NewFlagSet("run", flag.ExitOnError)
		method := fs.String("method", "main", "entry method")
		args := fs.String("args", "", "comma-separated integer arguments")
		timeout := fs.Duration("timeout", time.Minute, "wait deadline")
		fs.Parse(rest) //nolint:errcheck
		res, err := c.Run(*method, *timeout, parseArgs(*args)...)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("result: %d\n", res)

	case "watch":
		fs := flag.NewFlagSet("watch", flag.ExitOnError)
		job := fs.Uint64("job", 0, "job id to stream (0 = poll cluster tables instead)")
		every := fs.Duration("every", time.Second, "poll interval (table mode)")
		dur := fs.Duration("for", 10*time.Second, "total watch duration (table mode)")
		fs.Parse(rest) //nolint:errcheck
		if *job != 0 {
			watchJob(c, *job)
			return
		}
		end := time.Now().Add(*dur)
		for {
			printMembers(c)
			printStats(c)
			fmt.Println()
			if time.Now().After(end) {
				return
			}
			time.Sleep(*every)
		}

	default:
		usage()
	}
}
