// Command sodctl drives a running sodd cluster: submit workload jobs,
// query membership and load, and watch migrations happen.
//
//	sodctl -addr 127.0.0.1:7101 members
//	sodctl -addr 127.0.0.1:7101 submit -method main -args 42,200000
//	sodctl -addr 127.0.0.1:7101 run -method main -args 42,200000
//	sodctl -addr 127.0.0.1:7101 stats
//	sodctl -addr 127.0.0.1:7101 load
//	sodctl -addr 127.0.0.1:7101 watch -job 3
//	sodctl -addr 127.0.0.1:7101 watch -every 1s -for 10s
//	sodctl -addr 127.0.0.1:7101 top -every 1s -for 10s
//	sodctl -addr 127.0.0.1:7101 metrics
//	sodctl -addr 127.0.0.1:7101 trace -job 3
//
// "watch -job N" streams job N's lifecycle live — where it started,
// every migration with its direction and reason (pushed / stolen /
// rebalanced) and hop count, the result flushing home, completion — and
// exits when the job does. Without -job, watch falls back to polling the
// cluster-wide membership and stats tables.
//
// "top" is event-driven, not polled: one cluster-wide WatchAll stream
// (every node's event bus, fanned through the dialed daemon) feeds
// per-origin counters, redrawn every interval — submissions starting,
// jobs completing and failing, migrations, and lagged markers when this
// very stream falls behind and the daemon coalesces on it. -for 0 runs
// until interrupted.
//
// "metrics" dumps the dialed node's metrics registry in Prometheus text
// form (the same payload its -obs endpoint serves); "trace -job N"
// renders job N's migration timeline — capture/transfer/restore per
// hop, chain plants and forwards — as recorded at the job's origin
// node, which is the daemon to dial.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/daemon"
	"repro/internal/obs"
	"repro/internal/sodee"
)

func usage() {
	fmt.Fprintln(os.Stderr, "usage: sodctl -addr HOST:PORT <members|submit|run|wait|stats|load|watch|top|metrics|trace> [options]")
	flag.PrintDefaults()
	os.Exit(2)
}

func parseArgs(s string) []int64 {
	if s == "" {
		return nil
	}
	var out []int64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64)
		if err != nil {
			log.Fatalf("bad -args value %q: %v", part, err)
		}
		out = append(out, v)
	}
	return out
}

func printMembers(c *daemon.Client) {
	self, members, err := c.Members()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("node %d members (%d):\n", self, len(members))
	for _, m := range members {
		fmt.Printf("  %3d  %-7s  heard %6s ago  %s\n",
			m.Node, m.State, m.SinceHeard.Round(time.Millisecond), m.Addr)
	}
}

func printStats(c *daemon.Client) {
	st, ss, err := c.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ticks %d  decisions %d  migrations %d (pushed %d, stolen %d, rebalanced %d, chained %d)  failed %d\n",
		st.Ticks, st.Decisions, st.Migrations, st.Pushed, st.Stolen, st.Rebalanced, st.Chained, st.FailedMigrations)
	if st.Chained > 0 {
		fmt.Printf("chains: %d executed, %d segments placed\n", st.Chained, st.ChainSegments)
	}
	if ss.RequestsSent+ss.RequestsServed > 0 {
		fmt.Printf("steal: sent %d (won %d)  served %d (granted %d, denied %d, failed transfers %d)\n",
			ss.RequestsSent, ss.Won, ss.RequestsServed, ss.Granted, ss.Denied, ss.FailedTransfers)
	}
	dests := make([]int, 0, len(st.MigrationsTo))
	for d := range st.MigrationsTo {
		dests = append(dests, d)
	}
	sort.Ints(dests)
	for _, d := range dests {
		fmt.Printf("  → node %d: %d\n", d, st.MigrationsTo[d])
	}
}

func printLoad(c *daemon.Client) {
	info, err := c.Load()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("local : node %d  runnable %d  cores %d  speed %.2f  rate %.0f/s\n",
		info.Local.Node, info.Local.Runnable, info.Local.Cores, info.Local.Speed, info.Local.StepRate)
	for _, p := range info.Peers {
		fmt.Printf("peer  : node %d  runnable %d  cores %d  speed %.2f  rate %.0f/s\n",
			p.Node, p.Runnable, p.Cores, p.Speed, p.StepRate)
	}
	dests := make([]int, 0, len(info.WireLatency))
	for d := range info.WireLatency {
		dests = append(dests, d)
	}
	sort.Ints(dests)
	for _, d := range dests {
		fmt.Printf("link  : → node %d  measured %s (EWMA)\n", d, info.WireLatency[d].Round(time.Microsecond))
	}
}

// watchJob streams one job's lifecycle events until its stream ends
// (completion, or losing the daemon).
func watchJob(c *daemon.Client, job uint64) {
	ch, cancel, err := c.Watch(job)
	if err != nil {
		log.Fatal(err)
	}
	defer cancel()
	sawTerminal := false
	for ev := range ch {
		fmt.Printf("%s  %s\n", ev.Time.Format("15:04:05.000"), ev)
		if ev.Terminal() {
			sawTerminal = true
		}
	}
	if !sawTerminal {
		log.Fatal("watch stream ended before the job completed (daemon lost?)")
	}
}

// topRow accumulates one origin node's event counts for the current
// interval.
type topRow struct {
	events, started, completed, failed int
	migrated, lagged                   int
	dropped                            int64 // events coalesced away under this stream
}

func (r *topRow) count(ev sodee.JobEvent) {
	r.events++
	switch ev.Kind {
	case sodee.EvStarted:
		r.started++
	case sodee.EvCompleted:
		if ev.Err != "" {
			r.failed++
		} else {
			r.completed++
		}
	case sodee.EvMigrated:
		r.migrated++
	case sodee.EvLagged:
		r.lagged++
		r.dropped += ev.Result
	}
}

// topCluster renders cluster-wide activity from a single WatchAll
// stream: per-origin event rates over each interval, no polling.
func topCluster(c *daemon.Client, every, dur time.Duration) {
	ch, cancel, err := c.WatchAll()
	if err != nil {
		log.Fatal(err)
	}
	defer cancel()
	rows := make(map[int]*topRow)
	ticker := time.NewTicker(every)
	defer ticker.Stop()
	var end <-chan time.Time
	if dur > 0 {
		end = time.After(dur)
	}
	render := func() {
		origins := make([]int, 0, len(rows))
		for o := range rows {
			origins = append(origins, o)
		}
		sort.Ints(origins)
		secs := every.Seconds()
		fmt.Printf("%s  %-6s %8s %8s %8s %6s %6s %7s\n",
			time.Now().Format("15:04:05"), "origin", "ev/s", "start/s", "done/s", "fail", "migr", "lagged")
		var tot topRow
		for _, o := range origins {
			r := rows[o]
			fmt.Printf("          %-6d %8.0f %8.0f %8.0f %6d %6d %7d\n",
				o, float64(r.events)/secs, float64(r.started)/secs,
				float64(r.completed)/secs, r.failed, r.migrated, r.lagged)
			tot.events += r.events
			tot.started += r.started
			tot.completed += r.completed
			tot.failed += r.failed
			tot.migrated += r.migrated
			tot.lagged += r.lagged
			tot.dropped += r.dropped
		}
		if len(origins) != 1 {
			fmt.Printf("          %-6s %8.0f %8.0f %8.0f %6d %6d %7d\n",
				"total", float64(tot.events)/secs, float64(tot.started)/secs,
				float64(tot.completed)/secs, tot.failed, tot.migrated, tot.lagged)
		}
		if tot.dropped > 0 {
			fmt.Printf("          (stream lagging: %d events coalesced away this interval)\n", tot.dropped)
		}
		rows = make(map[int]*topRow)
	}
	for {
		select {
		case ev, ok := <-ch:
			if !ok {
				render()
				log.Fatal("cluster stream closed (daemon lost, or this watcher was evicted for lagging)")
			}
			r := rows[ev.Origin]
			if r == nil {
				r = &topRow{}
				rows[ev.Origin] = r
			}
			r.count(ev)
		case <-ticker.C:
			render()
		case <-end:
			render()
			return
		}
	}
}

func main() {
	addr := flag.String("addr", "", "daemon control address")
	flag.Usage = usage
	flag.Parse()
	if *addr == "" || flag.NArg() == 0 {
		usage()
	}
	cmd, rest := flag.Arg(0), flag.Args()[1:]

	c, err := daemon.Dial(*addr)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	switch cmd {
	case "members":
		printMembers(c)

	case "stats":
		printStats(c)

	case "load":
		printLoad(c)

	case "submit":
		fs := flag.NewFlagSet("submit", flag.ExitOnError)
		method := fs.String("method", "main", "entry method")
		args := fs.String("args", "", "comma-separated integer arguments")
		chain := fs.Bool("chain", false, "chain-owned: let the planner split the stack into a forward pipeline (daemon must run -chain)")
		fs.Parse(rest) //nolint:errcheck
		submit := c.Submit
		if *chain {
			submit = c.SubmitChain
		}
		id, err := submit(*method, parseArgs(*args)...)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("job %d submitted\n", id)

	case "wait":
		fs := flag.NewFlagSet("wait", flag.ExitOnError)
		job := fs.Uint64("job", 0, "job id")
		timeout := fs.Duration("timeout", time.Minute, "wait deadline")
		fs.Parse(rest) //nolint:errcheck
		res, done, errMsg, err := c.Wait(*job, *timeout)
		if err != nil {
			log.Fatal(err)
		}
		switch {
		case !done:
			fmt.Printf("job %d still running\n", *job)
		case errMsg != "":
			fmt.Printf("job %d failed: %s\n", *job, errMsg)
		default:
			fmt.Printf("job %d = %d\n", *job, res)
		}

	case "run":
		fs := flag.NewFlagSet("run", flag.ExitOnError)
		method := fs.String("method", "main", "entry method")
		args := fs.String("args", "", "comma-separated integer arguments")
		timeout := fs.Duration("timeout", time.Minute, "wait deadline")
		fs.Parse(rest) //nolint:errcheck
		res, err := c.Run(*method, *timeout, parseArgs(*args)...)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("result: %d\n", res)

	case "watch":
		fs := flag.NewFlagSet("watch", flag.ExitOnError)
		job := fs.Uint64("job", 0, "job id to stream (0 = poll cluster tables instead)")
		every := fs.Duration("every", time.Second, "poll interval (table mode)")
		dur := fs.Duration("for", 10*time.Second, "total watch duration (table mode)")
		fs.Parse(rest) //nolint:errcheck
		if *job != 0 {
			watchJob(c, *job)
			return
		}
		end := time.Now().Add(*dur)
		for {
			printMembers(c)
			printStats(c)
			fmt.Println()
			if time.Now().After(end) {
				return
			}
			time.Sleep(*every)
		}

	case "top":
		fs := flag.NewFlagSet("top", flag.ExitOnError)
		every := fs.Duration("every", time.Second, "redraw interval")
		dur := fs.Duration("for", 10*time.Second, "total duration (0 = until interrupted)")
		fs.Parse(rest) //nolint:errcheck
		topCluster(c, *every, *dur)

	case "metrics":
		snap, err := c.Metrics()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(snap.RenderPrometheus())

	case "trace":
		fs := flag.NewFlagSet("trace", flag.ExitOnError)
		job := fs.Uint64("job", 0, "job id (dial the daemon the job was submitted to)")
		fs.Parse(rest) //nolint:errcheck
		if *job == 0 {
			log.Fatal("trace: -job is required")
		}
		spans, err := c.Trace(*job)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("job %d: %d spans\n", *job, len(spans))
		fmt.Print(obs.RenderTrace(spans))

	default:
		usage()
	}
}
