// Command sodrun runs one of the built-in workloads on a simulated SOD
// cluster, optionally migrating it mid-run, and reports the result and
// migration metrics:
//
//	sodrun -workload fib -n 24
//	sodrun -workload nq -n 8 -migrate -frames 1 -flow return
//	sodrun -workload tsp -n 9 -migrate -flow total
//	sodrun -workload fft -n 32 -migrate -system gjavampi
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/sodee"
	"repro/internal/workloads"
)

func main() {
	name := flag.String("workload", "fib", "workload: fib, nq, fft, tsp")
	n := flag.Int64("n", 0, "problem size (0 = workload default)")
	migrate := flag.Bool("migrate", false, "migrate once at the workload checkpoint")
	system := flag.String("system", "sodee", "system: sodee, gjavampi, jessica2, xen, jdk")
	flag.Parse()

	var w *workloads.Workload
	switch strings.ToLower(*name) {
	case "fib":
		w = workloads.Fib()
	case "nq", "nqueens":
		w = workloads.NQueens()
	case "fft":
		w = workloads.FFT()
	case "tsp":
		w = workloads.TSP()
	default:
		fmt.Fprintf(os.Stderr, "sodrun: unknown workload %q\n", *name)
		os.Exit(2)
	}
	if *n > 0 {
		w.DefaultN = *n
	}

	var sys sodee.System
	switch strings.ToLower(*system) {
	case "sodee":
		sys = sodee.SysSODEE
	case "gjavampi", "g-javampi":
		sys = sodee.SysGJavaMPI
	case "jessica2":
		sys = sodee.SysJessica2
	case "xen":
		sys = sodee.SysXen
	case "jdk":
		sys = sodee.SysJDK
	default:
		fmt.Fprintf(os.Stderr, "sodrun: unknown system %q\n", *system)
		os.Exit(2)
	}

	start := time.Now()
	var (
		kr  *experiments.KernelRun
		err error
	)
	if sys == sodee.SysJDK {
		kr, err = experiments.RunJDKReference(w, w.DefaultN)
	} else {
		kr, err = experiments.RunKernel(sys, w, w.DefaultN, *migrate)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "sodrun: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("%s(n=%d) on %v: result=%v in %v\n", w.Name, w.DefaultN, sys, kr.Result, time.Since(start).Round(time.Millisecond))
	if *migrate && sys != sodee.SysJDK {
		m := kr.Metrics
		fmt.Printf("migration: capture=%v transfer=%v restore=%v latency=%v state=%dB classes=%dB\n",
			m.Capture.Round(time.Microsecond), m.Transfer.Round(time.Microsecond),
			m.Restore.Round(time.Microsecond), m.Latency.Round(time.Microsecond),
			m.StateBytes, m.ClassBytes)
	}
}
