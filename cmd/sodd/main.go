// Command sodd is the SOD node daemon: one cluster node listening on
// TCP, running workloads, gossiping load, detecting peer failures by
// heartbeat, and participating in AutoBalance. Start a seed node, then
// point further nodes at it:
//
//	sodd -id 1 -listen 127.0.0.1:7101 -cores 1 -slow 16 &
//	sodd -id 2 -listen 127.0.0.1:7102 -join 127.0.0.1:7101 &
//	sodd -id 3 -listen 127.0.0.1:7103 -join 127.0.0.1:7101 &
//
// then drive it with sodctl (submit jobs, watch membership and
// migrations). Every daemon in a cluster must run the same -workload.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/daemon"
)

func main() {
	id := flag.Int("id", 0, "cluster-unique node id (positive)")
	listen := flag.String("listen", "127.0.0.1:0", "TCP listen address")
	join := flag.String("join", "", "comma-separated seed addresses to join")
	workload := flag.String("workload", "cruncher", "workload program: cruncher, fib, nq, tsp")
	cores := flag.Int("cores", 0, "modeled CPU width (0 = unlimited)")
	slow := flag.Int("slow", 0, "per-instruction throttle (0 = full speed)")
	pol := flag.String("policy", "threshold", "offload policy: threshold, cost, rr, none")
	steal := flag.Bool("steal", false, "work stealing: pull jobs from loaded peers while idle, serve steal requests while loaded")
	chain := flag.Bool("chain", false, "workflow chains: place chain-submitted jobs as multi-segment forward pipelines")
	hopBudget := flag.Int("hop-budget", 0, "lifetime migration cap per job (0 = default, negative = unlimited)")
	cooldown := flag.Duration("cooldown", 0, "quarantine before a job may revisit a node it left (0 = default)")
	interval := flag.Duration("interval", 10*time.Millisecond, "balance/heartbeat interval")
	obsAddr := flag.String("obs", "", "observability HTTP listen address: Prometheus text at /metrics, pprof under /debug/pprof/ (empty = off)")
	quiet := flag.Bool("quiet", false, "suppress progress logging")
	flag.Parse()

	logf := log.Printf
	if *quiet {
		logf = func(string, ...any) {}
	}
	d, err := daemon.New(daemon.Config{
		ID: *id, Listen: *listen, Workload: *workload,
		Cores: *cores, Slow: *slow,
		Policy: *pol, Steal: *steal, Chain: *chain,
		HopBudget: *hopBudget, Cooldown: *cooldown,
		Interval: *interval,
		Logf:     logf,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sodd: node %d listening on %s (workload %s, policy %s, control protocol v%d)\n",
		d.ID(), d.Addr(), *workload, *pol, daemon.ProtocolVersion)
	if *obsAddr != "" {
		bound, err := d.StartObs(*obsAddr)
		if err != nil {
			d.Stop()
			log.Fatal(err)
		}
		fmt.Printf("sodd: obs endpoint on http://%s/metrics (pprof under /debug/pprof/)\n", bound)
	}

	for _, seed := range strings.Split(*join, ",") {
		seed = strings.TrimSpace(seed)
		if seed == "" {
			continue
		}
		if err := d.Join(seed); err != nil {
			d.Stop()
			log.Fatalf("join %s: %v", seed, err)
		}
		fmt.Printf("sodd: joined cluster via %s\n", seed)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("sodd: shutting down")
	d.Stop()
}
