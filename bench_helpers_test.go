package repro_test

import (
	"repro/internal/experiments"
	"repro/internal/sodee"
	"repro/internal/workloads"
)

// quickKernel returns a reduced-size Fib for the standalone Table III/IV
// shape benchmarks (the full Table II benchmark covers all kernels).
func quickKernel() *workloads.Workload {
	w := workloads.Fib()
	w.DefaultN = 24
	return w
}

// migOverhead returns (mig − no-mig) in milliseconds for one system.
func migOverhead(sys sodee.System, w *workloads.Workload) (float64, error) {
	noMig, err := experiments.RunKernel(sys, w, w.DefaultN, false)
	if err != nil {
		return 0, err
	}
	mig, err := experiments.RunKernel(sys, w, w.DefaultN, true)
	if err != nil {
		return 0, err
	}
	ov := mig.Elapsed - noMig.Elapsed
	if ov < 0 {
		ov = 0
	}
	return float64(ov.Microseconds()) / 1000, nil
}
