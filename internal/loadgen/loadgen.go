// Package loadgen is the swarm-scale load generator: it drives thousands
// of concurrent Submit/Watch/Wait clients against a SOD cluster through
// the public sod.Client interface — so the same harness loads the
// in-process fabric and real TCP daemons — and measures what the control
// plane sustains: jobs/sec, watch-events/sec, and tail latency, bucketed
// over time so a mid-run fault shows up as a dent in the curve rather
// than a vanished average.
//
// The harness doubles as a stress-correctness test. Every job's argument
// seed is deterministic, every result is checked against the workload's
// Go mirror, and two independent observers enforce the event contract:
// each job's own Watch stream must deliver exactly one terminal event
// (always last), and a cluster-wide WatchAll consumer must see at most
// one terminal per (origin, job) — under load, under coalescing, and
// through a node crash.
package loadgen

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/workloads"
	"repro/sod"
)

// Config scripts one load run.
type Config struct {
	// Workers is how many concurrent clients submit (each runs its jobs
	// sequentially: submit → watch → wait → verify, like a real caller).
	Workers int
	// JobsPerWorker is each worker's sequential job count.
	JobsPerWorker int
	// Iters sizes each job (cruncher iterations). Small values measure
	// control-plane overhead; large values measure compute spread.
	Iters int64
	// Seed derives every job's argument seed deterministically:
	// Seed*1e6 + worker*JobsPerWorker + jobIndex + 1.
	Seed int64
	// Watch subscribes a per-job Watch to every submission and verifies
	// the stream: terminal event exactly once, always last.
	Watch bool
	// BucketWidth is the curve's resolution (default 250ms).
	BucketWidth time.Duration
	// Timeout bounds one job's wait (default 90s); a job that misses it
	// counts as lost and fails the run.
	Timeout time.Duration

	// Crash, when non-nil, fires once after CrashAfter jobs have
	// completed cluster-wide — kill a node mid-load. Rejoin, when
	// non-nil, fires RejoinAfter later (the cluster's crash convention:
	// a rejoining node flushes the results it was holding, so every job
	// still completes exactly once).
	Crash       func()
	CrashAfter  int
	Rejoin      func()
	RejoinAfter time.Duration
}

func (c *Config) defaults() {
	if c.Workers <= 0 {
		c.Workers = 64
	}
	if c.JobsPerWorker <= 0 {
		c.JobsPerWorker = 4
	}
	if c.Iters <= 0 {
		c.Iters = 10_000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.BucketWidth <= 0 {
		c.BucketWidth = 250 * time.Millisecond
	}
	if c.Timeout <= 0 {
		c.Timeout = 90 * time.Second
	}
	if c.RejoinAfter <= 0 {
		c.RejoinAfter = 500 * time.Millisecond
	}
}

// BucketPoint is one slice of the load curve.
type BucketPoint struct {
	TSec         float64 `json:"t_sec"`          // bucket end, seconds from start
	JobsPerSec   float64 `json:"jobs_per_sec"`   // completions in the bucket / width
	EventsPerSec float64 `json:"events_per_sec"` // WatchAll events in the bucket / width
	Crash        bool    `json:"crash,omitempty"`
	Rejoin       bool    `json:"rejoin,omitempty"`
}

// Latency summarizes job submit→complete latency in milliseconds.
type Latency struct {
	P50 float64 `json:"p50_ms"`
	P90 float64 `json:"p90_ms"`
	P99 float64 `json:"p99_ms"`
	Max float64 `json:"max_ms"`
}

// Result is one run's measurements plus its correctness verdicts.
type Result struct {
	Workers     int     `json:"workers"`
	Jobs        int     `json:"jobs"`
	DurationSec float64 `json:"duration_sec"`

	JobsPerSec   float64       `json:"jobs_per_sec"`
	EventsPerSec float64       `json:"events_per_sec"`
	Latency      Latency       `json:"latency"`
	Curve        []BucketPoint `json:"curve"`

	// WatchEvents counts per-job Watch deliveries; AllEvents counts the
	// cluster-wide WatchAll consumer's deliveries. LaggedMarkers and
	// CoalescedEvents report backpressure activity across both.
	WatchEvents     int64 `json:"watch_events"`
	AllEvents       int64 `json:"all_events"`
	LaggedMarkers   int64 `json:"lagged_markers"`
	CoalescedEvents int64 `json:"coalesced_events"`

	// Correctness: all four must be zero for a clean run.
	WrongResults     int `json:"wrong_results"`
	DupTerminals     int `json:"dup_terminals"`
	MissingTerminals int `json:"missing_terminals"`
	Failed           int `json:"failed"`

	CrashAtSec  float64 `json:"crash_at_sec,omitempty"`
	RejoinAtSec float64 `json:"rejoin_at_sec,omitempty"`

	// Metrics is the submission node's metrics-registry snapshot taken
	// after the run drained (migration phase histograms, bus counters,
	// steal activity) — the instrumentation view of the same run the
	// counters above measure externally. Nil if the client predates the
	// observability plane or the snapshot failed; never load-bearing.
	Metrics *sod.MetricsSnapshot `json:"metrics,omitempty"`
}

// termKey identifies one job cluster-wide.
type termKey struct {
	origin int
	job    uint64
}

// Run executes one load run: Workers concurrent clients submitting
// round-robin through clients, one cluster-wide WatchAll consumer fed by
// watchAllFrom (nil to skip), and the optional crash schedule. The error
// reports harness failures (a client that cannot submit at all);
// correctness violations land in the Result's counters so callers can
// both render and assert on them.
func Run(cfg Config, clients []sod.Client, watchAllFrom sod.Client) (*Result, error) {
	cfg.defaults()
	if len(clients) == 0 {
		return nil, fmt.Errorf("loadgen: no clients")
	}
	totalJobs := cfg.Workers * cfg.JobsPerWorker

	res := &Result{Workers: cfg.Workers, Jobs: totalJobs}
	start := time.Now()

	// The cluster-wide observer: counts every event, tallies terminals
	// per (origin, job), and tracks coalescing markers. It drains as fast
	// as it can — the harness measures the cluster, not a slow consumer.
	var allEvents, allLagged, allCoalesced atomic.Int64
	allTerms := make(map[termKey]int)
	var allTermsMu sync.Mutex
	eventTimes := &bucketCounter{width: cfg.BucketWidth, start: start}
	var watchAllDone chan struct{}
	var watchAllCancel context.CancelFunc
	if watchAllFrom != nil {
		ctx, cancel := context.WithCancel(context.Background())
		watchAllCancel = cancel
		ch, err := watchAllFrom.WatchAll(ctx)
		if err != nil {
			cancel()
			return nil, fmt.Errorf("loadgen: WatchAll: %w", err)
		}
		watchAllDone = make(chan struct{})
		go func() {
			defer close(watchAllDone)
			for ev := range ch {
				allEvents.Add(1)
				eventTimes.add(time.Now())
				switch {
				case ev.Kind == sod.JobLagged:
					allLagged.Add(1)
					allCoalesced.Add(ev.Result)
				case ev.Terminal():
					allTermsMu.Lock()
					allTerms[termKey{ev.Origin, ev.Job}]++
					allTermsMu.Unlock()
				}
			}
		}()
	}

	// The crash schedule, triggered by cluster-wide completion count.
	var completed atomic.Int64
	var crashAt, rejoinAt atomic.Int64 // ns from start; 0 = did not fire
	crashArmed := cfg.Crash != nil && cfg.CrashAfter > 0
	crashFire := make(chan struct{}, 1)
	var crashWG sync.WaitGroup
	if crashArmed {
		crashWG.Add(1)
		go func() {
			defer crashWG.Done()
			<-crashFire
			crashAt.Store(int64(time.Since(start)) | 1)
			cfg.Crash()
			if cfg.Rejoin != nil {
				time.Sleep(cfg.RejoinAfter)
				rejoinAt.Store(int64(time.Since(start)) | 1)
				cfg.Rejoin()
			}
		}()
	}

	// The swarm.
	var (
		wg           sync.WaitGroup
		mu           sync.Mutex // guards latencies + counters below
		latencies    []time.Duration
		watchEvents  int64
		watchLagged  int64
		watchCoal    int64
		wrong        int
		dupTerm      int
		missingTerm  int
		failed       int
		firstHarness error
	)
	jobTimes := &bucketCounter{width: cfg.BucketWidth, start: start}
	harnessFail := func(err error) {
		mu.Lock()
		if firstHarness == nil {
			firstHarness = err
		}
		failed++
		mu.Unlock()
	}

	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl := clients[w%len(clients)]
			for j := 0; j < cfg.JobsPerWorker; j++ {
				seed := cfg.Seed*1_000_000 + int64(w*cfg.JobsPerWorker+j) + 1
				ctx, cancel := context.WithTimeout(context.Background(), cfg.Timeout)
				submitted := time.Now()
				h, err := cl.Submit(ctx, "main", sod.Int(seed), sod.Int(cfg.Iters))
				if err != nil {
					cancel()
					harnessFail(fmt.Errorf("worker %d submit: %w", w, err))
					continue
				}
				var events <-chan sod.JobEvent
				if cfg.Watch {
					events, err = cl.Watch(ctx, h.ID())
					if err != nil {
						cancel()
						harnessFail(fmt.Errorf("worker %d watch job %d: %w", w, h.ID(), err))
						continue
					}
				}
				v, err := h.Wait(ctx)
				waited := time.Now()
				if err != nil {
					cancel()
					harnessFail(fmt.Errorf("worker %d wait job %d: %w", w, h.ID(), err))
					continue
				}
				want := workloads.CruncherExpected(seed, cfg.Iters)
				lat := waited.Sub(submitted)
				jobTimes.add(waited)
				if n := completed.Add(1); crashArmed && n == int64(cfg.CrashAfter) {
					crashFire <- struct{}{}
				}
				var terms, evs, lagged int
				var coalesced int64
				if cfg.Watch {
					// Drain the stream to its close; the terminal must come
					// exactly once, and nothing may follow it.
					sawAfterTerm := false
					for ev := range events {
						evs++
						if ev.Kind == sod.JobLagged {
							lagged++
							coalesced += ev.Result
							continue
						}
						if terms > 0 {
							sawAfterTerm = true
						}
						if ev.Terminal() {
							terms++
						}
					}
					if sawAfterTerm {
						terms++ // count ordering violations as duplicates
					}
				}
				cancel()
				mu.Lock()
				latencies = append(latencies, lat)
				if v.I != want {
					wrong++
				}
				if cfg.Watch {
					watchEvents += int64(evs)
					watchLagged += int64(lagged)
					watchCoal += coalesced
					if terms > 1 {
						dupTerm++
					}
					if terms == 0 {
						missingTerm++
					}
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	wall := time.Since(start)
	if crashArmed {
		// A run too short to reach CrashAfter leaves the scheduler parked.
		select {
		case crashFire <- struct{}{}:
		default:
		}
		if crashAt.Load() == 0 {
			close(crashFire)
		}
		crashWG.Wait()
	}

	// Give late event forwarding a moment, then detach the observer.
	if watchAllCancel != nil {
		time.Sleep(100 * time.Millisecond)
		watchAllCancel()
		<-watchAllDone
	}

	res.DurationSec = wall.Seconds()
	res.JobsPerSec = float64(totalJobs-failed) / wall.Seconds()
	res.WatchEvents = watchEvents
	res.AllEvents = allEvents.Load()
	res.EventsPerSec = float64(res.AllEvents) / wall.Seconds()
	res.LaggedMarkers = watchLagged + allLagged.Load()
	res.CoalescedEvents = watchCoal + allCoalesced.Load()
	res.WrongResults = wrong
	res.DupTerminals = dupTerm
	res.MissingTerminals = missingTerm
	res.Failed = failed
	if t := crashAt.Load(); t != 0 {
		res.CrashAtSec = time.Duration(t).Seconds()
	}
	if t := rejoinAt.Load(); t != 0 {
		res.RejoinAtSec = time.Duration(t).Seconds()
	}

	// The WatchAll observer's verdicts: more than one terminal per
	// (origin, job) is a duplicate wherever it is observed. (Missing
	// terminals are only judged from per-job watches: WatchAll legally
	// loses whole streams when its consumer is evicted, and sees nothing
	// from jobs completing before it attached.)
	allTermsMu.Lock()
	for _, n := range allTerms {
		if n > 1 {
			res.DupTerminals++
		}
	}
	allTermsMu.Unlock()

	res.Latency = summarizeLatency(latencies)
	res.Curve = mergeCurve(jobTimes, eventTimes, wall, cfg.BucketWidth, res.CrashAtSec, res.RejoinAtSec)
	{
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		if snap, err := clients[0].Metrics(ctx); err == nil {
			res.Metrics = snap
		}
		cancel()
	}
	return res, firstHarness
}

// bucketCounter tallies timestamps into fixed-width buckets.
type bucketCounter struct {
	width time.Duration
	start time.Time
	mu    sync.Mutex
	n     []int64
}

func (b *bucketCounter) add(at time.Time) {
	i := int(at.Sub(b.start) / b.width)
	if i < 0 {
		i = 0
	}
	b.mu.Lock()
	for len(b.n) <= i {
		b.n = append(b.n, 0)
	}
	b.n[i]++
	b.mu.Unlock()
}

func (b *bucketCounter) counts() []int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]int64, len(b.n))
	copy(out, b.n)
	return out
}

func mergeCurve(jobs, events *bucketCounter, wall time.Duration, width time.Duration, crashSec, rejoinSec float64) []BucketPoint {
	jc, ec := jobs.counts(), events.counts()
	n := len(jc)
	if len(ec) > n {
		n = len(ec)
	}
	if max := int(wall/width) + 1; n > max {
		n = max
	}
	sec := width.Seconds()
	out := make([]BucketPoint, 0, n)
	for i := 0; i < n; i++ {
		p := BucketPoint{TSec: float64(i+1) * sec}
		if i < len(jc) {
			p.JobsPerSec = float64(jc[i]) / sec
		}
		if i < len(ec) {
			p.EventsPerSec = float64(ec[i]) / sec
		}
		lo, hi := float64(i)*sec, float64(i+1)*sec
		p.Crash = crashSec > 0 && crashSec >= lo && crashSec < hi
		p.Rejoin = rejoinSec > 0 && rejoinSec >= lo && rejoinSec < hi
		out = append(out, p)
	}
	return out
}

func summarizeLatency(lats []time.Duration) Latency {
	if len(lats) == 0 {
		return Latency{}
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pick := func(q float64) float64 {
		i := int(q * float64(len(lats)-1))
		return float64(lats[i]) / float64(time.Millisecond)
	}
	return Latency{
		P50: pick(0.50),
		P90: pick(0.90),
		P99: pick(0.99),
		Max: float64(lats[len(lats)-1]) / float64(time.Millisecond),
	}
}
