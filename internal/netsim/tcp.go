package netsim

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
)

// TCPTransport implements Transport over real TCP sockets (loopback in
// tests, any network in principle). It exists to demonstrate that the
// runtime layers are genuinely message-oriented: the same migration
// protocol that runs over the simulated fabric runs unchanged over
// sockets. Bandwidth is whatever the kernel gives; experiments that need
// controlled bandwidth use the simulated Network.
//
// Framing: every message is
//
//	[1B kind][1B flags][8B correlation id][4B length][payload]
//
// flags bit0 = reply, bit1 = error-reply (payload is the error string).
type TCPTransport struct {
	id int

	mu       sync.Mutex
	handlers map[MsgKind]Handler
	peers    map[int]*tcpPeer
	listener net.Listener
	waiting  map[uint64]chan tcpReply
	corr     atomic.Uint64
	closed   atomic.Bool
}

type tcpPeer struct {
	mu   sync.Mutex // serializes writes
	conn net.Conn
}

type tcpReply struct {
	payload []byte
	err     string
}

// NewTCPTransport starts a transport listening on addr ("127.0.0.1:0"
// for an ephemeral port). Peers are added explicitly with Connect.
func NewTCPTransport(id int, addr string) (*TCPTransport, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	t := &TCPTransport{
		id:       id,
		handlers: make(map[MsgKind]Handler),
		peers:    make(map[int]*tcpPeer),
		waiting:  make(map[uint64]chan tcpReply),
		listener: ln,
	}
	go t.acceptLoop()
	return t, nil
}

// Addr returns the listen address.
func (t *TCPTransport) Addr() string { return t.listener.Addr().String() }

// NodeID returns the transport's node id.
func (t *TCPTransport) NodeID() int { return t.id }

// Handle registers a handler.
func (t *TCPTransport) Handle(kind MsgKind, h Handler) {
	t.mu.Lock()
	t.handlers[kind] = h
	t.mu.Unlock()
}

// Connect dials a peer and registers it under peerID. The first message
// on a fresh connection is a hello frame carrying our node id, so the
// peer can route replies and requests back.
func (t *TCPTransport) Connect(peerID int, addr string) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	hello := make([]byte, 8)
	binary.LittleEndian.PutUint64(hello, uint64(t.id))
	if _, err := conn.Write(hello); err != nil {
		conn.Close() //nolint:errcheck
		return err
	}
	p := &tcpPeer{conn: conn}
	t.mu.Lock()
	t.peers[peerID] = p
	t.mu.Unlock()
	go t.readLoop(conn)
	return nil
}

// Close shuts the transport down.
func (t *TCPTransport) Close() error {
	t.closed.Store(true)
	err := t.listener.Close()
	t.mu.Lock()
	for _, p := range t.peers {
		p.conn.Close() //nolint:errcheck
	}
	t.mu.Unlock()
	return err
}

func (t *TCPTransport) acceptLoop() {
	for {
		conn, err := t.listener.Accept()
		if err != nil {
			return
		}
		go func(c net.Conn) {
			hello := make([]byte, 8)
			if _, err := io.ReadFull(c, hello); err != nil {
				c.Close() //nolint:errcheck
				return
			}
			peerID := int(binary.LittleEndian.Uint64(hello))
			t.mu.Lock()
			t.peers[peerID] = &tcpPeer{conn: c}
			t.mu.Unlock()
			t.readLoop(c)
		}(conn)
	}
}

const (
	flagReply = 1 << 0
	flagErr   = 1 << 1
)

func writeFrame(p *tcpPeer, kind MsgKind, flags byte, corr uint64, payload []byte) error {
	hdr := make([]byte, 14)
	hdr[0] = byte(kind)
	hdr[1] = flags
	binary.LittleEndian.PutUint64(hdr[2:], corr)
	binary.LittleEndian.PutUint32(hdr[10:], uint32(len(payload)))
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, err := p.conn.Write(hdr); err != nil {
		return err
	}
	_, err := p.conn.Write(payload)
	return err
}

func (t *TCPTransport) readLoop(conn net.Conn) {
	for {
		hdr := make([]byte, 14)
		if _, err := io.ReadFull(conn, hdr); err != nil {
			return
		}
		kind := MsgKind(hdr[0])
		flags := hdr[1]
		corr := binary.LittleEndian.Uint64(hdr[2:])
		n := binary.LittleEndian.Uint32(hdr[10:])
		payload := make([]byte, n)
		if _, err := io.ReadFull(conn, payload); err != nil {
			return
		}

		if flags&flagReply != 0 {
			t.mu.Lock()
			ch := t.waiting[corr]
			delete(t.waiting, corr)
			t.mu.Unlock()
			if ch != nil {
				rep := tcpReply{payload: payload}
				if flags&flagErr != 0 {
					rep.err = string(payload)
					rep.payload = nil
				}
				ch <- rep
			}
			continue
		}

		t.mu.Lock()
		h := t.handlers[kind]
		t.mu.Unlock()
		go func(kind MsgKind, corr uint64, payload []byte) {
			var reply []byte
			var herr error
			if h == nil {
				herr = fmt.Errorf("tcp: node %d has no handler for kind %d", t.id, kind)
			} else {
				reply, herr = h(-1, payload)
			}
			if corr == 0 {
				return // one-way message
			}
			p := t.peerByConn(conn)
			if p == nil {
				return
			}
			if herr != nil {
				writeFrame(p, kind, flagReply|flagErr, corr, []byte(herr.Error())) //nolint:errcheck
				return
			}
			writeFrame(p, kind, flagReply, corr, reply) //nolint:errcheck
		}(kind, corr, payload)
	}
}

func (t *TCPTransport) peerByConn(conn net.Conn) *tcpPeer {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, p := range t.peers {
		if p.conn == conn {
			return p
		}
	}
	return nil
}

func (t *TCPTransport) peer(to int) (*tcpPeer, error) {
	t.mu.Lock()
	p := t.peers[to]
	t.mu.Unlock()
	if p == nil {
		return nil, fmt.Errorf("tcp: node %d not connected to %d", t.id, to)
	}
	return p, nil
}

// Call performs a blocking request/response round trip.
func (t *TCPTransport) Call(to int, kind MsgKind, payload []byte) ([]byte, error) {
	p, err := t.peer(to)
	if err != nil {
		return nil, err
	}
	corr := t.corr.Add(1)
	ch := make(chan tcpReply, 1)
	t.mu.Lock()
	t.waiting[corr] = ch
	t.mu.Unlock()
	if err := writeFrame(p, kind, 0, corr, payload); err != nil {
		t.mu.Lock()
		delete(t.waiting, corr)
		t.mu.Unlock()
		return nil, err
	}
	rep := <-ch
	if rep.err != "" {
		return nil, fmt.Errorf("tcp: remote %d: %s", to, rep.err)
	}
	return rep.payload, nil
}

// Send delivers a one-way message.
func (t *TCPTransport) Send(to int, kind MsgKind, payload []byte) error {
	p, err := t.peer(to)
	if err != nil {
		return err
	}
	return writeFrame(p, kind, 0, 0, payload)
}

var _ Transport = (*TCPTransport)(nil)
