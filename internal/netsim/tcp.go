package netsim

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// TCPTransport implements Transport over real TCP sockets (loopback in
// tests, any network in principle). It exists so the runtime layers are
// genuinely message-oriented: the same migration protocol that runs over
// the simulated fabric runs unchanged over sockets. Bandwidth is whatever
// the kernel gives; experiments that need controlled bandwidth use the
// simulated Network.
//
// Framing: every message is
//
//	[1B kind][1B flags][8B correlation id][4B length][payload]
//
// flags bit0 = reply, bit1 = error-reply (payload is the error string).
// A fresh connection starts with an 8-byte hello carrying the dialer's
// node id; the accepter answers with its own 8-byte hello, so Connect
// discovers the peer's id from the handshake (daemons join by address,
// not by pre-shared id).
//
// Delivery failures wrap ErrUnreachable so the crash classifiers in the
// runtime layers treat a dead socket exactly like a dead simulated node.
type TCPTransport struct {
	id int

	mu       sync.Mutex
	handlers map[MsgKind]Handler
	peers    map[int]*tcpConn
	waiting  map[uint64]*tcpPending
	listener net.Listener

	corr      atomic.Uint64
	closed    atomic.Bool
	closeOnce sync.Once
	closeErr  error

	// Tunables for Connect's dial retry (fixed; fields so tests can
	// shorten them).
	dialBackoff time.Duration
	dialMax     time.Duration

	// CallTimeout, when non-zero, bounds how long a Call waits for its
	// reply. A connection that *dies* already fails pending calls via
	// dropConn; the timeout covers the remaining case — a peer whose
	// socket stays open but which never answers (stopped process,
	// packet-dropping partition) — so a caller's loop cannot wedge on a
	// zombie. Set it before the transport is shared across goroutines.
	CallTimeout time.Duration

	// peerDown, when set, is invoked (on the dying connection's goroutine)
	// each time an established peer connection is torn down — by the peer
	// closing, a network error, or this transport's own Close. Streaming
	// consumers (the control client's watch channels) use it to end
	// subscriptions that would otherwise wait forever.
	peerDown func(peer int)
}

// SetPeerDownHook registers fn to run whenever an established connection
// dies. Set it before the transport is shared across goroutines.
func (t *TCPTransport) SetPeerDownHook(fn func(peer int)) {
	t.mu.Lock()
	t.peerDown = fn
	t.mu.Unlock()
}

// SetDialWindow tunes Connect's retry backoff and give-up deadline
// (defaults: 10ms doubling, 5s). Control clients probing possibly-dead
// daemons shorten it so a dead address fails fast.
func (t *TCPTransport) SetDialWindow(backoff, max time.Duration) {
	if backoff > 0 {
		t.dialBackoff = backoff
	}
	if max > 0 {
		t.dialMax = max
	}
}

// MaxFrameBytes bounds a single framed message on the TCP transport, in
// both directions: writers refuse to send larger frames and the read loop
// refuses to allocate for a length prefix above it (a corrupt or hostile
// prefix would otherwise make the receiver allocate gigabytes before the
// first payload byte arrives, or — worse — a frame whose length field
// overflowed uint32 would desynchronize the stream and hang every pending
// call). 64 MiB comfortably covers whole-stack migrations with bundled
// classes while still catching garbage prefixes.
const MaxFrameBytes = 64 << 20

// ErrFrameTooLarge: a message exceeded MaxFrameBytes. Deliberately NOT
// wrapped in ErrUnreachable — the peer is fine, the payload is the
// problem, and the crash classifiers must not treat it as a dead node.
var ErrFrameTooLarge = fmt.Errorf("tcp: frame exceeds %d-byte limit", MaxFrameBytes)

// tcpConn wraps one established connection; mu serializes frame writes.
type tcpConn struct {
	mu     sync.Mutex
	conn   net.Conn
	dialed bool // established by this node's Connect (vs accepted inbound)
}

func (c *tcpConn) writeFrame(kind MsgKind, flags byte, corr uint64, payload []byte) error {
	if len(payload) > MaxFrameBytes {
		return fmt.Errorf("refusing %d-byte frame: %w", len(payload), ErrFrameTooLarge)
	}
	hdr := make([]byte, 14)
	hdr[0] = byte(kind)
	hdr[1] = flags
	binary.LittleEndian.PutUint64(hdr[2:], corr)
	binary.LittleEndian.PutUint32(hdr[10:], uint32(len(payload)))
	c.mu.Lock()
	defer c.mu.Unlock()
	// One vectored write: header and payload leave as a unit, so a
	// concurrent writer can never interleave between them (the old
	// two-Write sequence relied on the mutex alone; a partial first write
	// followed by a competing frame would desynchronize the stream).
	buf := net.Buffers{hdr, payload}
	_, err := buf.WriteTo(c.conn)
	return err
}

type tcpReply struct {
	payload []byte
	err     string
	// lost marks a transport-level failure (connection died, transport
	// closed) rather than a remote handler error; Call wraps these in
	// ErrUnreachable for the crash classifiers.
	lost bool
}

// tcpPending is one in-flight Call: the reply channel and the connection
// the request went out on, so the call can be failed fast when that
// connection dies instead of blocking forever.
type tcpPending struct {
	ch chan tcpReply
	c  *tcpConn
}

// NewTCPTransport starts a transport listening on addr ("127.0.0.1:0"
// for an ephemeral port). Peers are added with Connect, or implicitly
// when they dial us.
func NewTCPTransport(id int, addr string) (*TCPTransport, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	t := &TCPTransport{
		id:          id,
		handlers:    make(map[MsgKind]Handler),
		peers:       make(map[int]*tcpConn),
		waiting:     make(map[uint64]*tcpPending),
		listener:    ln,
		dialBackoff: 10 * time.Millisecond,
		dialMax:     5 * time.Second,
	}
	go t.acceptLoop()
	return t, nil
}

// Addr returns the listen address.
func (t *TCPTransport) Addr() string { return t.listener.Addr().String() }

// NodeID returns the transport's node id.
func (t *TCPTransport) NodeID() int { return t.id }

// Handle registers a handler.
func (t *TCPTransport) Handle(kind MsgKind, h Handler) {
	t.mu.Lock()
	t.handlers[kind] = h
	t.mu.Unlock()
}

func putHello(id int) []byte {
	hello := make([]byte, 8)
	binary.LittleEndian.PutUint64(hello, uint64(id))
	return hello
}

// Connect dials a peer, performs the id handshake, registers the
// connection and returns the peer's node id. Daemons race at startup, so
// a refused dial is retried with doubling backoff until the transport's
// dial deadline (~5s) expires.
func (t *TCPTransport) Connect(addr string) (int, error) {
	var conn net.Conn
	var err error
	deadline := time.Now().Add(t.dialMax)
	for backoff := t.dialBackoff; ; backoff *= 2 {
		if t.closed.Load() {
			return 0, fmt.Errorf("tcp: node %d: transport closed: %w", t.id, ErrSelfDown)
		}
		conn, err = net.Dial("tcp", addr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			return 0, fmt.Errorf("tcp: node %d dial %s: %v: %w", t.id, addr, err, ErrUnreachable)
		}
		if remain := time.Until(deadline); backoff > remain {
			backoff = remain
		}
		time.Sleep(backoff)
	}
	if _, err := conn.Write(putHello(t.id)); err != nil {
		conn.Close() //nolint:errcheck
		return 0, fmt.Errorf("tcp: node %d hello to %s: %v: %w", t.id, addr, err, ErrUnreachable)
	}
	hello := make([]byte, 8)
	if _, err := io.ReadFull(conn, hello); err != nil {
		conn.Close() //nolint:errcheck
		return 0, fmt.Errorf("tcp: node %d handshake with %s: %v: %w", t.id, addr, err, ErrUnreachable)
	}
	peerID := int(binary.LittleEndian.Uint64(hello))
	c := &tcpConn{conn: conn, dialed: true}
	t.addPeer(peerID, c)
	go t.readLoop(peerID, c)
	return peerID, nil
}

// addPeer registers c as the connection for peerID. Duplicates happen —
// two daemons discovering each other concurrently dial in both
// directions — and each side must pick the SAME winner, or each keeps
// its own dial, closes the other's, and the pair ends up with no
// connection at all (the transport never redials on its own). The
// canonical connection for a pair is the one dialed by the lower node
// id; a duplicate in the same direction is a redial and replaces its
// predecessor. A replaced or refused conn is closed here: its readLoop
// fails the calls in flight on it (they retry or take their fallback),
// and dropConn sees it unmapped so no "peer down" is announced for a
// pair that stays connected. No connection ever lives outside the map:
// Close only walks the map, and a live-but-untracked socket would keep
// serving requests — a "crashed" node that still answers its peers'
// liveness probes through an orphan can never be declared dead.
func (t *TCPTransport) addPeer(peerID int, c *tcpConn) {
	canonical := (c.dialed && t.id < peerID) || (!c.dialed && peerID < t.id)
	t.mu.Lock()
	old := t.peers[peerID]
	keep := old == nil || canonical || old.dialed == c.dialed
	if keep {
		t.peers[peerID] = c
	}
	closed := t.closed.Load()
	t.mu.Unlock()
	if keep && old != nil {
		old.conn.Close() //nolint:errcheck // replaced by the canonical (or fresher) conn
	}
	if !keep || closed {
		c.conn.Close() //nolint:errcheck // lost the tie-break, or transport already down
	}
}

// dropConn forgets a dead connection: the peer entry is removed (if it
// still points at this connection) and every Call waiting on it fails
// with an unreachable error instead of blocking forever.
func (t *TCPTransport) dropConn(peerID int, c *tcpConn) {
	t.mu.Lock()
	mapped := t.peers[peerID] == c
	if mapped {
		delete(t.peers, peerID)
	}
	var stranded []*tcpPending
	for corr, p := range t.waiting {
		if p.c == c {
			stranded = append(stranded, p)
			delete(t.waiting, corr)
		}
	}
	// The hook fires only for the peer's live connection: a conn that
	// lost a simultaneous-dial race dies without ever carrying traffic,
	// and announcing that as "peer down" would cancel healthy streams.
	var hook func(int)
	if mapped {
		hook = t.peerDown
	}
	t.mu.Unlock()
	c.conn.Close() //nolint:errcheck
	for _, p := range stranded {
		p.ch <- tcpReply{err: fmt.Sprintf("connection to node %d lost", peerID), lost: true}
	}
	if hook != nil {
		hook(peerID)
	}
}

// Close shuts the transport down: the listener stops, every connection
// is closed and every pending Call fails. Safe to call more than once
// and concurrently with Calls.
func (t *TCPTransport) Close() error {
	t.closeOnce.Do(func() {
		t.closed.Store(true)
		t.closeErr = t.listener.Close()
		t.mu.Lock()
		conns := make([]*tcpConn, 0, len(t.peers))
		for _, c := range t.peers {
			conns = append(conns, c)
		}
		t.peers = make(map[int]*tcpConn)
		stranded := make([]*tcpPending, 0, len(t.waiting))
		for _, p := range t.waiting {
			stranded = append(stranded, p)
		}
		t.waiting = make(map[uint64]*tcpPending)
		t.mu.Unlock()
		for _, c := range conns {
			c.conn.Close() //nolint:errcheck
		}
		for _, p := range stranded {
			p.ch <- tcpReply{err: "transport closed", lost: true}
		}
	})
	return t.closeErr
}

func (t *TCPTransport) acceptLoop() {
	for {
		conn, err := t.listener.Accept()
		if err != nil {
			return
		}
		go func(nc net.Conn) {
			hello := make([]byte, 8)
			if _, err := io.ReadFull(nc, hello); err != nil {
				nc.Close() //nolint:errcheck
				return
			}
			if _, err := nc.Write(putHello(t.id)); err != nil {
				nc.Close() //nolint:errcheck
				return
			}
			peerID := int(binary.LittleEndian.Uint64(hello))
			c := &tcpConn{conn: nc}
			t.addPeer(peerID, c)
			t.readLoop(peerID, c)
		}(conn)
	}
}

const (
	flagReply = 1 << 0
	flagErr   = 1 << 1
)

func (t *TCPTransport) readLoop(peerID int, c *tcpConn) {
	defer t.dropConn(peerID, c)
	for {
		hdr := make([]byte, 14)
		if _, err := io.ReadFull(c.conn, hdr); err != nil {
			return
		}
		kind := MsgKind(hdr[0])
		flags := hdr[1]
		corr := binary.LittleEndian.Uint64(hdr[2:])
		n := binary.LittleEndian.Uint32(hdr[10:])
		if n > MaxFrameBytes {
			// An over-limit length prefix means the stream is corrupt or
			// the peer is misbehaving; there is no way to resynchronize a
			// byte stream past an untrusted length, so the connection is
			// dropped (dropConn fails the pending calls) rather than
			// allocating for it or hanging.
			return
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(c.conn, payload); err != nil {
			return
		}

		if flags&flagReply != 0 {
			t.mu.Lock()
			p := t.waiting[corr]
			delete(t.waiting, corr)
			t.mu.Unlock()
			if p != nil {
				rep := tcpReply{payload: payload}
				if flags&flagErr != 0 {
					rep.err = string(payload)
					rep.payload = nil
				}
				p.ch <- rep
			}
			continue
		}

		t.mu.Lock()
		h := t.handlers[kind]
		t.mu.Unlock()
		go func(kind MsgKind, corr uint64, payload []byte) {
			var reply []byte
			var herr error
			if h == nil {
				herr = fmt.Errorf("tcp: node %d has no handler for kind %d", t.id, kind)
			} else {
				reply, herr = h(peerID, payload)
			}
			if corr == 0 {
				return // one-way message
			}
			if t.closed.Load() {
				// The transport died while the handler ran. A crash must be
				// atomic on the wire: every send the handler attempted after
				// the close already failed, so acknowledging the request now
				// would advertise work the node can no longer finish (e.g. a
				// flush ack whose follow-on discharge was refused). Stay
				// silent and let the caller's crash handling take over.
				return
			}
			if herr != nil {
				c.writeFrame(kind, flagReply|flagErr, corr, []byte(herr.Error())) //nolint:errcheck
				return
			}
			if err := c.writeFrame(kind, flagReply, corr, reply); errors.Is(err, ErrFrameTooLarge) {
				// An oversized *reply* must still answer the caller, or its
				// Call would hang until timeout; downgrade to an error reply.
				c.writeFrame(kind, flagReply|flagErr, corr, []byte(err.Error())) //nolint:errcheck
			}
		}(kind, corr, payload)
	}
}

func (t *TCPTransport) peer(to int) (*tcpConn, error) {
	t.mu.Lock()
	c := t.peers[to]
	t.mu.Unlock()
	if t.closed.Load() {
		return nil, fmt.Errorf("tcp: node %d: transport closed: %w", t.id, ErrSelfDown)
	}
	if c == nil {
		return nil, fmt.Errorf("tcp: node %d not connected to %d: %w", t.id, to, ErrUnreachable)
	}
	return c, nil
}

// Call performs a blocking request/response round trip. A connection
// that dies mid-call fails the call, and CallTimeout (when set) bounds
// the wait on a peer that stays connected but silent.
func (t *TCPTransport) Call(to int, kind MsgKind, payload []byte) ([]byte, error) {
	c, err := t.peer(to)
	if err != nil {
		return nil, err
	}
	corr := t.corr.Add(1)
	p := &tcpPending{ch: make(chan tcpReply, 1), c: c}
	t.mu.Lock()
	if t.closed.Load() {
		t.mu.Unlock()
		return nil, fmt.Errorf("tcp: node %d: transport closed: %w", t.id, ErrSelfDown)
	}
	t.waiting[corr] = p
	t.mu.Unlock()
	if err := c.writeFrame(kind, 0, corr, payload); err != nil {
		t.mu.Lock()
		delete(t.waiting, corr)
		t.mu.Unlock()
		if errors.Is(err, ErrFrameTooLarge) {
			// The connection is healthy; only this payload is refused.
			return nil, fmt.Errorf("tcp: node %d call to %d: %w", t.id, to, err)
		}
		return nil, fmt.Errorf("tcp: node %d send to %d: %v: %w", t.id, to, err, ErrUnreachable)
	}
	var rep tcpReply
	if t.CallTimeout > 0 {
		timer := time.NewTimer(t.CallTimeout)
		select {
		case rep = <-p.ch:
			timer.Stop()
		case <-timer.C:
			t.mu.Lock()
			delete(t.waiting, corr)
			t.mu.Unlock()
			// A reply racing the timeout lands in the buffered channel and
			// is dropped with it.
			return nil, fmt.Errorf("tcp: node %d call to %d timed out after %v: %w",
				t.id, to, t.CallTimeout, ErrUnreachable)
		}
	} else {
		rep = <-p.ch
	}
	if rep.lost {
		return nil, fmt.Errorf("tcp: node %d call to %d: %s: %w", t.id, to, rep.err, ErrUnreachable)
	}
	if rep.err != "" {
		return nil, fmt.Errorf("tcp: remote %d: %s", to, rep.err)
	}
	return rep.payload, nil
}

// Send delivers a one-way message.
func (t *TCPTransport) Send(to int, kind MsgKind, payload []byte) error {
	c, err := t.peer(to)
	if err != nil {
		return err
	}
	if err := c.writeFrame(kind, 0, 0, payload); err != nil {
		if errors.Is(err, ErrFrameTooLarge) {
			return fmt.Errorf("tcp: node %d send to %d: %w", t.id, to, err)
		}
		return fmt.Errorf("tcp: node %d send to %d: %v: %w", t.id, to, err, ErrUnreachable)
	}
	return nil
}

var _ Transport = (*TCPTransport)(nil)
