package netsim

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRPCRoundTrip(t *testing.T) {
	net := NewNetwork(Unlimited)
	a := net.Node(1)
	b := net.Node(2)
	b.Handle(KindControl, func(from int, payload []byte) ([]byte, error) {
		if from != 1 {
			t.Errorf("from = %d, want 1", from)
		}
		return append([]byte("echo:"), payload...), nil
	})
	reply, err := a.Call(2, KindControl, []byte("hi"))
	if err != nil {
		t.Fatal(err)
	}
	if string(reply) != "echo:hi" {
		t.Errorf("reply = %q", reply)
	}
}

func TestRPCHandlerError(t *testing.T) {
	net := NewNetwork(Unlimited)
	a := net.Node(1)
	b := net.Node(2)
	b.Handle(KindControl, func(from int, payload []byte) ([]byte, error) {
		return nil, fmt.Errorf("nope")
	})
	if _, err := a.Call(2, KindControl, nil); err == nil {
		t.Fatal("expected remote error")
	}
}

func TestCallUnknownNodeOrHandler(t *testing.T) {
	net := NewNetwork(Unlimited)
	a := net.Node(1)
	if _, err := a.Call(9, KindControl, nil); err == nil {
		t.Fatal("expected unreachable-node error")
	}
	net.Node(2)
	if _, err := a.Call(2, KindControl, nil); err == nil {
		t.Fatal("expected no-handler error")
	}
}

func TestBandwidthShaping(t *testing.T) {
	// 8 Mbps link: 100 KB should take ~100ms.
	net := NewNetwork(LinkSpec{BandwidthBps: 8_000_000, Latency: 0})
	a := net.Node(1)
	b := net.Node(2)
	b.Handle(KindControl, func(from int, payload []byte) ([]byte, error) { return nil, nil })
	payload := make([]byte, 100_000)
	start := time.Now()
	if _, err := a.Call(2, KindControl, payload); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed < 80*time.Millisecond || elapsed > 300*time.Millisecond {
		t.Errorf("100KB over 8Mbps took %v, want ~100ms", elapsed)
	}
}

func TestLinkSerialization(t *testing.T) {
	// Two concurrent transfers on the same link must queue.
	net := NewNetwork(LinkSpec{BandwidthBps: 16_000_000, Latency: 0})
	a := net.Node(1)
	b := net.Node(2)
	b.Handle(KindControl, func(from int, payload []byte) ([]byte, error) { return nil, nil })
	payload := make([]byte, 100_000) // 50ms each at 16 Mbps
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := a.Call(2, KindControl, payload); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if elapsed := time.Since(start); elapsed < 90*time.Millisecond {
		t.Errorf("two queued 50ms transfers finished in %v; link not serializing", elapsed)
	}
}

func TestLatencyApplied(t *testing.T) {
	net := NewNetwork(LinkSpec{BandwidthBps: 0, Latency: 30 * time.Millisecond})
	a := net.Node(1)
	b := net.Node(2)
	b.Handle(KindControl, func(from int, payload []byte) ([]byte, error) { return nil, nil })
	start := time.Now()
	if _, err := a.Call(2, KindControl, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 55*time.Millisecond {
		t.Errorf("round trip %v should include 2×30ms latency", elapsed)
	}
}

func TestPerLinkOverride(t *testing.T) {
	net := NewNetwork(Unlimited)
	net.SetLink(1, 2, Kbps(100))
	spec := net.LinkSpecBetween(1, 2)
	if spec.BandwidthBps != 100_000 {
		t.Errorf("override not applied: %+v", spec)
	}
	if net.LinkSpecBetween(1, 3).BandwidthBps != 0 {
		t.Error("default link should be unlimited")
	}
}

func TestTransferTimeMath(t *testing.T) {
	spec := LinkSpec{BandwidthBps: 1_000_000} // 1 Mbps
	if got := spec.TransferTime(125_000); got < 990*time.Millisecond || got > 1010*time.Millisecond {
		t.Errorf("125KB at 1Mbps = %v, want ~1s", got)
	}
	if Unlimited.TransferTime(1<<30) != 0 {
		t.Error("unlimited link should transfer instantly")
	}
}

func TestStatsAccounting(t *testing.T) {
	net := NewNetwork(Unlimited)
	a := net.Node(1)
	b := net.Node(2)
	b.Handle(KindControl, func(from int, payload []byte) ([]byte, error) { return []byte("ok"), nil })
	if _, err := a.Call(2, KindControl, []byte("abc")); err != nil {
		t.Fatal(err)
	}
	if net.Stats.Messages.Load() != 2 { // request + reply
		t.Errorf("messages = %d, want 2", net.Stats.Messages.Load())
	}
	if net.Stats.RPCRounds.Load() != 1 {
		t.Errorf("rpc rounds = %d, want 1", net.Stats.RPCRounds.Load())
	}
}

func TestSendOneWay(t *testing.T) {
	net := NewNetwork(Unlimited)
	a := net.Node(1)
	b := net.Node(2)
	got := make(chan []byte, 1)
	b.Handle(KindControl, func(from int, payload []byte) ([]byte, error) {
		got <- append([]byte(nil), payload...)
		return nil, nil
	})
	if err := a.Send(2, KindControl, []byte("fire")); err != nil {
		t.Fatal(err)
	}
	select {
	case p := <-got:
		if !bytes.Equal(p, []byte("fire")) {
			t.Errorf("payload = %q", p)
		}
	case <-time.After(time.Second):
		t.Fatal("one-way message never delivered")
	}
}

// --- TCP transport ---

func TestTCPRoundTrip(t *testing.T) {
	a, err := NewTCPTransport(1, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close() //nolint:errcheck
	b, err := NewTCPTransport(2, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close() //nolint:errcheck

	b.Handle(KindControl, func(from int, payload []byte) ([]byte, error) {
		return append([]byte("tcp:"), payload...), nil
	})
	if err := a.Connect(2, b.Addr()); err != nil {
		t.Fatal(err)
	}
	reply, err := a.Call(2, KindControl, []byte("ping"))
	if err != nil {
		t.Fatal(err)
	}
	if string(reply) != "tcp:ping" {
		t.Errorf("reply = %q", reply)
	}
}

func TestTCPBidirectionalAfterSingleConnect(t *testing.T) {
	a, _ := NewTCPTransport(1, "127.0.0.1:0")
	defer a.Close() //nolint:errcheck
	b, _ := NewTCPTransport(2, "127.0.0.1:0")
	defer b.Close() //nolint:errcheck
	a.Handle(KindControl, func(from int, payload []byte) ([]byte, error) {
		return []byte("from-a"), nil
	})
	b.Handle(KindControl, func(from int, payload []byte) ([]byte, error) {
		return []byte("from-b"), nil
	})
	if err := a.Connect(2, b.Addr()); err != nil {
		t.Fatal(err)
	}
	if r, err := a.Call(2, KindControl, nil); err != nil || string(r) != "from-b" {
		t.Fatalf("a→b: %q %v", r, err)
	}
	// The hello frame registered node 1 at b; b can call back on the same
	// connection.
	deadline := time.Now().Add(time.Second)
	for {
		if r, err := b.Call(1, KindControl, nil); err == nil {
			if string(r) != "from-a" {
				t.Fatalf("b→a reply %q", r)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("b never learned a's identity")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestTCPRemoteError(t *testing.T) {
	a, _ := NewTCPTransport(1, "127.0.0.1:0")
	defer a.Close() //nolint:errcheck
	b, _ := NewTCPTransport(2, "127.0.0.1:0")
	defer b.Close() //nolint:errcheck
	b.Handle(KindControl, func(from int, payload []byte) ([]byte, error) {
		return nil, fmt.Errorf("remote boom")
	})
	if err := a.Connect(2, b.Addr()); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Call(2, KindControl, nil); err == nil {
		t.Fatal("expected remote error to propagate")
	}
}

func TestTCPLargePayload(t *testing.T) {
	a, _ := NewTCPTransport(1, "127.0.0.1:0")
	defer a.Close() //nolint:errcheck
	b, _ := NewTCPTransport(2, "127.0.0.1:0")
	defer b.Close() //nolint:errcheck
	b.Handle(KindControl, func(from int, payload []byte) ([]byte, error) {
		sum := byte(0)
		for _, x := range payload {
			sum ^= x
		}
		return []byte{sum}, nil
	})
	if err := a.Connect(2, b.Addr()); err != nil {
		t.Fatal(err)
	}
	big := make([]byte, 4<<20)
	for i := range big {
		big[i] = byte(i * 31)
	}
	want := byte(0)
	for _, x := range big {
		want ^= x
	}
	reply, err := a.Call(2, KindControl, big)
	if err != nil {
		t.Fatal(err)
	}
	if len(reply) != 1 || reply[0] != want {
		t.Errorf("checksum mismatch: got %v want %d", reply, want)
	}
}

func TestSetNodeDown(t *testing.T) {
	net := NewNetwork(Unlimited)
	a := net.Node(1)
	b := net.Node(2)
	echo := func(from int, payload []byte) ([]byte, error) { return payload, nil }
	a.Handle(KindControl, echo)
	b.Handle(KindControl, echo)

	net.SetNodeDown(2, true)
	if !net.NodeDown(2) {
		t.Fatal("node 2 should report down")
	}
	if _, err := a.Call(2, KindControl, []byte("x")); err == nil || !strings.Contains(err.Error(), "unreachable") {
		t.Fatalf("call to a down node should be unreachable, got %v", err)
	}
	if err := a.Send(2, KindControl, []byte("x")); err == nil {
		t.Fatal("send to a down node should fail")
	}
	// A down node cannot originate traffic either.
	if _, err := b.Call(1, KindControl, []byte("x")); err == nil {
		t.Fatal("call from a down node should fail")
	}

	// Recovery: traffic flows again.
	net.SetNodeDown(2, false)
	if reply, err := a.Call(2, KindControl, []byte("y")); err != nil || string(reply) != "y" {
		t.Fatalf("after recovery: reply=%q err=%v", reply, err)
	}
}
