package netsim

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRPCRoundTrip(t *testing.T) {
	net := NewNetwork(Unlimited)
	a := net.Node(1)
	b := net.Node(2)
	b.Handle(KindControl, func(from int, payload []byte) ([]byte, error) {
		if from != 1 {
			t.Errorf("from = %d, want 1", from)
		}
		return append([]byte("echo:"), payload...), nil
	})
	reply, err := a.Call(2, KindControl, []byte("hi"))
	if err != nil {
		t.Fatal(err)
	}
	if string(reply) != "echo:hi" {
		t.Errorf("reply = %q", reply)
	}
}

func TestRPCHandlerError(t *testing.T) {
	net := NewNetwork(Unlimited)
	a := net.Node(1)
	b := net.Node(2)
	b.Handle(KindControl, func(from int, payload []byte) ([]byte, error) {
		return nil, fmt.Errorf("nope")
	})
	if _, err := a.Call(2, KindControl, nil); err == nil {
		t.Fatal("expected remote error")
	}
}

func TestCallUnknownNodeOrHandler(t *testing.T) {
	net := NewNetwork(Unlimited)
	a := net.Node(1)
	if _, err := a.Call(9, KindControl, nil); err == nil {
		t.Fatal("expected unreachable-node error")
	}
	net.Node(2)
	if _, err := a.Call(2, KindControl, nil); err == nil {
		t.Fatal("expected no-handler error")
	}
}

func TestBandwidthShaping(t *testing.T) {
	// 8 Mbps link: 100 KB should take ~100ms.
	net := NewNetwork(LinkSpec{BandwidthBps: 8_000_000, Latency: 0})
	a := net.Node(1)
	b := net.Node(2)
	b.Handle(KindControl, func(from int, payload []byte) ([]byte, error) { return nil, nil })
	payload := make([]byte, 100_000)
	start := time.Now()
	if _, err := a.Call(2, KindControl, payload); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed < 80*time.Millisecond || elapsed > 300*time.Millisecond {
		t.Errorf("100KB over 8Mbps took %v, want ~100ms", elapsed)
	}
}

func TestLinkSerialization(t *testing.T) {
	// Two concurrent transfers on the same link must queue.
	net := NewNetwork(LinkSpec{BandwidthBps: 16_000_000, Latency: 0})
	a := net.Node(1)
	b := net.Node(2)
	b.Handle(KindControl, func(from int, payload []byte) ([]byte, error) { return nil, nil })
	payload := make([]byte, 100_000) // 50ms each at 16 Mbps
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := a.Call(2, KindControl, payload); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if elapsed := time.Since(start); elapsed < 90*time.Millisecond {
		t.Errorf("two queued 50ms transfers finished in %v; link not serializing", elapsed)
	}
}

func TestLatencyApplied(t *testing.T) {
	net := NewNetwork(LinkSpec{BandwidthBps: 0, Latency: 30 * time.Millisecond})
	a := net.Node(1)
	b := net.Node(2)
	b.Handle(KindControl, func(from int, payload []byte) ([]byte, error) { return nil, nil })
	start := time.Now()
	if _, err := a.Call(2, KindControl, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 55*time.Millisecond {
		t.Errorf("round trip %v should include 2×30ms latency", elapsed)
	}
}

func TestPerLinkOverride(t *testing.T) {
	net := NewNetwork(Unlimited)
	net.SetLink(1, 2, Kbps(100))
	spec := net.LinkSpecBetween(1, 2)
	if spec.BandwidthBps != 100_000 {
		t.Errorf("override not applied: %+v", spec)
	}
	if net.LinkSpecBetween(1, 3).BandwidthBps != 0 {
		t.Error("default link should be unlimited")
	}
}

func TestTransferTimeMath(t *testing.T) {
	spec := LinkSpec{BandwidthBps: 1_000_000} // 1 Mbps
	if got := spec.TransferTime(125_000); got < 990*time.Millisecond || got > 1010*time.Millisecond {
		t.Errorf("125KB at 1Mbps = %v, want ~1s", got)
	}
	if Unlimited.TransferTime(1<<30) != 0 {
		t.Error("unlimited link should transfer instantly")
	}
}

func TestStatsAccounting(t *testing.T) {
	net := NewNetwork(Unlimited)
	a := net.Node(1)
	b := net.Node(2)
	b.Handle(KindControl, func(from int, payload []byte) ([]byte, error) { return []byte("ok"), nil })
	if _, err := a.Call(2, KindControl, []byte("abc")); err != nil {
		t.Fatal(err)
	}
	if net.Stats.Messages.Load() != 2 { // request + reply
		t.Errorf("messages = %d, want 2", net.Stats.Messages.Load())
	}
	if net.Stats.RPCRounds.Load() != 1 {
		t.Errorf("rpc rounds = %d, want 1", net.Stats.RPCRounds.Load())
	}
}

func TestSendOneWay(t *testing.T) {
	net := NewNetwork(Unlimited)
	a := net.Node(1)
	b := net.Node(2)
	got := make(chan []byte, 1)
	b.Handle(KindControl, func(from int, payload []byte) ([]byte, error) {
		got <- append([]byte(nil), payload...)
		return nil, nil
	})
	if err := a.Send(2, KindControl, []byte("fire")); err != nil {
		t.Fatal(err)
	}
	select {
	case p := <-got:
		if !bytes.Equal(p, []byte("fire")) {
			t.Errorf("payload = %q", p)
		}
	case <-time.After(time.Second):
		t.Fatal("one-way message never delivered")
	}
}

// --- TCP transport ---

func TestTCPRoundTrip(t *testing.T) {
	a, err := NewTCPTransport(1, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close() //nolint:errcheck
	b, err := NewTCPTransport(2, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close() //nolint:errcheck

	b.Handle(KindControl, func(from int, payload []byte) ([]byte, error) {
		return append([]byte("tcp:"), payload...), nil
	})
	if id, err := a.Connect(b.Addr()); err != nil || id != 2 {
		t.Fatalf("connect: id=%d err=%v", id, err)
	}
	reply, err := a.Call(2, KindControl, []byte("ping"))
	if err != nil {
		t.Fatal(err)
	}
	if string(reply) != "tcp:ping" {
		t.Errorf("reply = %q", reply)
	}
}

func TestTCPBidirectionalAfterSingleConnect(t *testing.T) {
	a, _ := NewTCPTransport(1, "127.0.0.1:0")
	defer a.Close() //nolint:errcheck
	b, _ := NewTCPTransport(2, "127.0.0.1:0")
	defer b.Close() //nolint:errcheck
	a.Handle(KindControl, func(from int, payload []byte) ([]byte, error) {
		return []byte("from-a"), nil
	})
	b.Handle(KindControl, func(from int, payload []byte) ([]byte, error) {
		return []byte("from-b"), nil
	})
	if id, err := a.Connect(b.Addr()); err != nil || id != 2 {
		t.Fatalf("connect: id=%d err=%v", id, err)
	}
	if r, err := a.Call(2, KindControl, nil); err != nil || string(r) != "from-b" {
		t.Fatalf("a→b: %q %v", r, err)
	}
	// The hello frame registered node 1 at b; b can call back on the same
	// connection.
	deadline := time.Now().Add(time.Second)
	for {
		if r, err := b.Call(1, KindControl, nil); err == nil {
			if string(r) != "from-a" {
				t.Fatalf("b→a reply %q", r)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("b never learned a's identity")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestTCPRemoteError(t *testing.T) {
	a, _ := NewTCPTransport(1, "127.0.0.1:0")
	defer a.Close() //nolint:errcheck
	b, _ := NewTCPTransport(2, "127.0.0.1:0")
	defer b.Close() //nolint:errcheck
	b.Handle(KindControl, func(from int, payload []byte) ([]byte, error) {
		return nil, fmt.Errorf("remote boom")
	})
	if id, err := a.Connect(b.Addr()); err != nil || id != 2 {
		t.Fatalf("connect: id=%d err=%v", id, err)
	}
	if _, err := a.Call(2, KindControl, nil); err == nil {
		t.Fatal("expected remote error to propagate")
	}
}

func TestTCPLargePayload(t *testing.T) {
	a, _ := NewTCPTransport(1, "127.0.0.1:0")
	defer a.Close() //nolint:errcheck
	b, _ := NewTCPTransport(2, "127.0.0.1:0")
	defer b.Close() //nolint:errcheck
	b.Handle(KindControl, func(from int, payload []byte) ([]byte, error) {
		sum := byte(0)
		for _, x := range payload {
			sum ^= x
		}
		return []byte{sum}, nil
	})
	if id, err := a.Connect(b.Addr()); err != nil || id != 2 {
		t.Fatalf("connect: id=%d err=%v", id, err)
	}
	big := make([]byte, 4<<20)
	for i := range big {
		big[i] = byte(i * 31)
	}
	want := byte(0)
	for _, x := range big {
		want ^= x
	}
	reply, err := a.Call(2, KindControl, big)
	if err != nil {
		t.Fatal(err)
	}
	if len(reply) != 1 || reply[0] != want {
		t.Errorf("checksum mismatch: got %v want %d", reply, want)
	}
}

func TestSetNodeDown(t *testing.T) {
	net := NewNetwork(Unlimited)
	a := net.Node(1)
	b := net.Node(2)
	echo := func(from int, payload []byte) ([]byte, error) { return payload, nil }
	a.Handle(KindControl, echo)
	b.Handle(KindControl, echo)

	net.SetNodeDown(2, true)
	if !net.NodeDown(2) {
		t.Fatal("node 2 should report down")
	}
	if _, err := a.Call(2, KindControl, []byte("x")); err == nil || !strings.Contains(err.Error(), "unreachable") {
		t.Fatalf("call to a down node should be unreachable, got %v", err)
	}
	if err := a.Send(2, KindControl, []byte("x")); err == nil {
		t.Fatal("send to a down node should fail")
	}
	// A down node cannot originate traffic either.
	if _, err := b.Call(1, KindControl, []byte("x")); err == nil {
		t.Fatal("call from a down node should fail")
	}

	// Recovery: traffic flows again.
	net.SetNodeDown(2, false)
	if reply, err := a.Call(2, KindControl, []byte("y")); err != nil || string(reply) != "y" {
		t.Fatalf("after recovery: reply=%q err=%v", reply, err)
	}
}

// --- TCP transport hardening ---

// TestTCPConnectRetries: daemons race at startup — Connect must keep
// dialing with backoff until the listener appears.
func TestTCPConnectRetries(t *testing.T) {
	// Reserve an address, then free it so the first dials are refused.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() //nolint:errcheck

	a, _ := NewTCPTransport(1, "127.0.0.1:0")
	defer a.Close() //nolint:errcheck

	var late *TCPTransport
	var lateMu sync.Mutex
	go func() {
		time.Sleep(150 * time.Millisecond)
		b, berr := NewTCPTransport(2, addr)
		if berr != nil {
			return // port stolen by another process; Connect will time out
		}
		lateMu.Lock()
		late = b
		lateMu.Unlock()
	}()
	id, err := a.Connect(addr)
	lateMu.Lock()
	b := late
	lateMu.Unlock()
	if b == nil {
		t.Skip("reserved port was taken before the late listener started")
	}
	defer b.Close() //nolint:errcheck
	if err != nil || id != 2 {
		t.Fatalf("connect with retry: id=%d err=%v", id, err)
	}
}

// TestTCPConnectGivesUp: a dial that never succeeds must return an
// ErrUnreachable-wrapped error, not hang.
func TestTCPConnectGivesUp(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() //nolint:errcheck

	a, _ := NewTCPTransport(1, "127.0.0.1:0")
	defer a.Close() //nolint:errcheck
	a.dialMax = 100 * time.Millisecond
	if _, err := a.Connect(addr); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("expected unreachable, got %v", err)
	}
}

// TestTCPPendingCallFailsWhenPeerDies: a Call in flight when the remote
// transport closes must fail promptly with an unreachable error instead
// of blocking forever.
func TestTCPPendingCallFailsWhenPeerDies(t *testing.T) {
	a, _ := NewTCPTransport(1, "127.0.0.1:0")
	defer a.Close() //nolint:errcheck
	b, _ := NewTCPTransport(2, "127.0.0.1:0")
	b.Handle(KindControl, func(from int, payload []byte) ([]byte, error) {
		select {} // never answers
	})
	if _, err := a.Connect(b.Addr()); err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() {
		_, err := a.Call(2, KindControl, []byte("stuck"))
		errCh <- err
	}()
	time.Sleep(20 * time.Millisecond)
	b.Close() //nolint:errcheck
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrUnreachable) {
			t.Fatalf("expected unreachable, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pending call blocked after peer death")
	}
	// Later calls fail fast: the dead peer was dropped.
	if _, err := a.Call(2, KindControl, nil); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("call to dropped peer: %v", err)
	}
}

// TestTCPCloseIdempotentUnderConcurrentCalls: Close must be safe to call
// repeatedly and concurrently with a storm of Calls; every call returns.
func TestTCPCloseIdempotentUnderConcurrentCalls(t *testing.T) {
	a, _ := NewTCPTransport(1, "127.0.0.1:0")
	b, _ := NewTCPTransport(2, "127.0.0.1:0")
	defer b.Close() //nolint:errcheck
	b.Handle(KindControl, func(from int, payload []byte) ([]byte, error) {
		time.Sleep(time.Millisecond)
		return payload, nil
	})
	if _, err := a.Connect(b.Addr()); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				a.Call(2, KindControl, []byte("x")) //nolint:errcheck // success and failure both fine mid-close
			}
		}()
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			time.Sleep(5 * time.Millisecond)
			a.Close() //nolint:errcheck
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("calls or closes deadlocked")
	}
	if err := a.Close(); err != a.Close() { //nolint:staticcheck // idempotency check
		t.Fatal("repeated Close returned different errors")
	}
}

// TestTCPCallTimeout: a peer whose socket stays open but whose handler
// never answers must not wedge the caller when CallTimeout is set.
func TestTCPCallTimeout(t *testing.T) {
	a, _ := NewTCPTransport(1, "127.0.0.1:0")
	defer a.Close() //nolint:errcheck
	b, _ := NewTCPTransport(2, "127.0.0.1:0")
	defer b.Close() //nolint:errcheck
	b.Handle(KindControl, func(from int, payload []byte) ([]byte, error) {
		select {} // zombie: alive connection, no reply ever
	})
	if _, err := a.Connect(b.Addr()); err != nil {
		t.Fatal(err)
	}
	a.CallTimeout = 100 * time.Millisecond
	start := time.Now()
	_, err := a.Call(2, KindControl, []byte("x"))
	if !errors.Is(err, ErrUnreachable) {
		t.Fatalf("expected unreachable on timeout, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("timeout took %v", elapsed)
	}
	// The stale correlation was dropped; the transport keeps working.
	b.Handle(KindControl, func(from int, payload []byte) ([]byte, error) {
		return []byte("ok"), nil
	})
	if r, err := a.Call(2, KindControl, nil); err != nil || string(r) != "ok" {
		t.Fatalf("call after timeout: %q %v", r, err)
	}
}
