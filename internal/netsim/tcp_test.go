package netsim

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

// tcpPair builds two connected transports on loopback and returns them
// with a cleanup.
func tcpPair(t *testing.T) (*TCPTransport, *TCPTransport) {
	t.Helper()
	t1, err := NewTCPTransport(1, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t2, err := NewTCPTransport(2, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { t1.Close(); t2.Close() }) //nolint:errcheck
	if _, err := t1.Connect(t2.Addr()); err != nil {
		t.Fatal(err)
	}
	return t1, t2
}

// TestTCPLargePayloadRoundTrip is the regression test for multi-MB
// migration frames: an 8 MB request with a 16 MB reply must survive the
// framing intact in both directions (the mutex-only two-Write framing
// could interleave under concurrency; the length prefix must describe
// exactly the bytes that follow).
func TestTCPLargePayloadRoundTrip(t *testing.T) {
	t1, t2 := tcpPair(t)

	req := bytes.Repeat([]byte{0xAB}, 8<<20)
	rep := bytes.Repeat([]byte{0xCD}, 16<<20)
	t2.Handle(KindMigrate, func(from int, payload []byte) ([]byte, error) {
		if !bytes.Equal(payload, req) {
			t.Errorf("request corrupted: got %d bytes", len(payload))
		}
		return rep, nil
	})

	got, err := t1.Call(2, KindMigrate, req)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, rep) {
		t.Fatalf("reply corrupted: got %d bytes, want %d", len(got), len(rep))
	}
}

// TestTCPConcurrentLargeFrames hammers one connection with concurrent
// multi-MB calls from both goroutines: any partial-write interleaving
// between a header and its payload desynchronizes the stream and fails
// every subsequent call.
func TestTCPConcurrentLargeFrames(t *testing.T) {
	t1, t2 := tcpPair(t)

	echo := func(from int, payload []byte) ([]byte, error) { return payload, nil }
	t2.Handle(KindMigrate, echo)

	const callers = 4
	errs := make(chan error, callers)
	for i := 0; i < callers; i++ {
		go func(fill byte) {
			payload := bytes.Repeat([]byte{fill}, 2<<20)
			for trip := 0; trip < 4; trip++ {
				got, err := t1.Call(2, KindMigrate, payload)
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(got, payload) {
					errs <- errors.New("echo corrupted")
					return
				}
			}
			errs <- nil
		}(byte(i + 1))
	}
	for i := 0; i < callers; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

// TestTCPOversizeFrameRejected: a frame above MaxFrameBytes must fail the
// Call with a wrapped ErrFrameTooLarge — not ErrUnreachable, and not a
// hung connection — and the connection must remain usable afterwards.
func TestTCPOversizeFrameRejected(t *testing.T) {
	t1, t2 := tcpPair(t)
	t2.Handle(KindMigrate, func(from int, payload []byte) ([]byte, error) {
		return []byte("ok"), nil
	})

	done := make(chan error, 1)
	go func() {
		_, err := t1.Call(2, KindMigrate, make([]byte, MaxFrameBytes+1))
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, ErrFrameTooLarge) {
			t.Fatalf("oversize call: got %v, want ErrFrameTooLarge", err)
		}
		if errors.Is(err, ErrUnreachable) {
			t.Fatalf("oversize call classified as unreachable: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("oversize call hung instead of failing")
	}

	// The refusal happens before any bytes hit the wire, so the same
	// connection still works.
	got, err := t1.Call(2, KindMigrate, []byte("ping"))
	if err != nil {
		t.Fatalf("connection unusable after oversize rejection: %v", err)
	}
	if string(got) != "ok" {
		t.Fatalf("got %q", got)
	}

	// Send takes the same guard.
	if err := t1.Send(2, KindMigrate, make([]byte, MaxFrameBytes+1)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversize send: got %v, want ErrFrameTooLarge", err)
	}
}

// TestTCPOversizeLengthPrefixDropsConn: a corrupt length prefix on the
// wire (beyond MaxFrameBytes) must drop the connection — failing pending
// calls fast — instead of allocating for it or desynchronizing.
func TestTCPOversizeLengthPrefixDropsConn(t *testing.T) {
	t1, t2 := tcpPair(t)
	t2.Handle(KindMigrate, func(from int, payload []byte) ([]byte, error) {
		return nil, nil
	})

	t1.mu.Lock()
	c := t1.peers[2]
	t1.mu.Unlock()
	if c == nil {
		t.Fatal("no connection to peer 2")
	}
	// Forge a header announcing an absurd payload, bypassing writeFrame's
	// own guard — this is the on-the-wire corruption case.
	hdr := make([]byte, 14)
	hdr[0] = byte(KindMigrate)
	hdr[10] = 0xFF
	hdr[11] = 0xFF
	hdr[12] = 0xFF
	hdr[13] = 0xFF // length prefix = ~4 GiB
	c.mu.Lock()
	_, werr := c.conn.Write(hdr)
	c.mu.Unlock()
	if werr != nil {
		t.Fatal(werr)
	}

	// The receiver must tear the connection down promptly; the next call
	// from t1 then fails with unreachable instead of hanging forever.
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, err := t1.Call(2, KindMigrate, []byte("probe"))
		if err != nil {
			if !errors.Is(err, ErrUnreachable) {
				t.Fatalf("got %v, want ErrUnreachable after corrupt frame", err)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("connection survived a corrupt oversize length prefix")
		}
		time.Sleep(10 * time.Millisecond)
	}
}
