// Package netsim provides the cluster interconnect: message endpoints with
// request/response (RPC) semantics, per-link bandwidth shaping and latency.
//
// Shaping is real-time: a transfer of b bytes over a link with bandwidth B
// occupies the link for b/B seconds (enforced with a serializing
// reservation per link, so concurrent transfers queue exactly as they
// would on a wire) and delivery is delayed by the link latency. The
// evaluation uses a 1 Gbps/0.1 ms profile for the cluster (the paper's
// Gigabit Ethernet) and kbps-range profiles for the §IV.D device
// experiments; byte counts come from the real encoded payloads, so
// migration-latency breakdowns are reproducible and workload-dependent
// exactly as in the paper.
//
// A second implementation of the same Transport interface runs over real
// TCP loopback sockets (tcp.go) and is exercised by integration tests and
// the photoshare example.
package netsim

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// MsgKind identifies the protocol family of a message; handlers register
// per kind.
type MsgKind uint8

// Message kinds used by the runtime layers. Centralized here to keep the
// wire protocol auditable in one place.
const (
	KindObjectRequest MsgKind = 1 + iota // objman: fetch object by ref
	KindObjectData                       // objman: reply
	KindMigrate                          // migration manager: captured state
	KindFlush                            // segment results home
	KindClassRequest                     // code shipping: fetch class
	KindClassData                        // code shipping: reply
	KindNFSRead                          // simulated NFS chunk read
	KindStaticRequest                    // objman: fetch static field
	KindControl                          // runtime control (spawn worker, roam, ...)
	KindPage                             // vmmig: memory page batch
	KindHTTP                             // photoshare example traffic
	KindProcMigrate                      // G-JavaMPI eager process migration
	KindThreadMigrate                    // JESSICA2 thread migration
	KindLoadReport                       // policy engine: gossiped load signals
	KindStealRequest                     // work stealing: idle thief asks a loaded victim for a job
	KindStealGrant                       // work stealing: victim announces the job it is shipping
	KindJobEvent                         // job lifecycle event forwarded to the job's origin node
	KindTraceSpan                        // obs: batch of trace spans forwarded to the job's origin node
	KindMigrateData                      // migration manager: streamed object/static payload for an announced migration
	KindPing                             // membership: direct liveness probe (reply carries the target's incarnation)
	KindPingReq                          // membership: indirect probe — ask a relay to ping an unreachable peer
	KindRehome                           // origin re-homing: replicate/discard a job's origin state at its successor
)

// Handler serves a request and returns the reply payload. Handlers run on
// their own goroutine per request and may issue nested calls.
type Handler func(from int, payload []byte) ([]byte, error)

// Sentinel errors for delivery failures; match with errors.Is. The crash
// classifiers in the runtime layers depend on these, not on message text.
var (
	// ErrUnreachable: the destination does not exist or is down.
	ErrUnreachable = fmt.Errorf("netsim: node unreachable")
	// ErrSelfDown: the sending node is itself marked down.
	ErrSelfDown = fmt.Errorf("netsim: sending node is down")
)

// LinkSpec describes one direction of a link.
type LinkSpec struct {
	BandwidthBps int64         // bytes are shaped at this many *bits* per second
	Latency      time.Duration // one-way propagation delay
}

// Gigabit is the cluster-interconnect profile used by the evaluation.
var Gigabit = LinkSpec{BandwidthBps: 1_000_000_000, Latency: 100 * time.Microsecond}

// Unlimited disables shaping (in-memory reference runs).
var Unlimited = LinkSpec{}

// Kbps builds a bandwidth-limited profile (the §IV.D device links).
func Kbps(k int64) LinkSpec {
	return LinkSpec{BandwidthBps: k * 1000, Latency: 2 * time.Millisecond}
}

// TransferTime returns how long size bytes occupy the link.
func (l LinkSpec) TransferTime(size int) time.Duration {
	if l.BandwidthBps <= 0 {
		return 0
	}
	bits := float64(size) * 8
	return time.Duration(bits / float64(l.BandwidthBps) * float64(time.Second))
}

// link carries the shaping state of one directed pair.
type link struct {
	spec     LinkSpec
	mu       sync.Mutex
	nextFree time.Time
}

// reserve blocks until the link can carry size bytes, enforcing FIFO
// serialization, and returns when the last byte has been "sent".
func (l *link) reserve(size int) {
	if l.spec.BandwidthBps <= 0 && l.spec.Latency <= 0 {
		return
	}
	l.mu.Lock()
	now := time.Now()
	start := l.nextFree
	if start.Before(now) {
		start = now
	}
	end := start.Add(l.spec.TransferTime(size))
	l.nextFree = end
	l.mu.Unlock()
	time.Sleep(time.Until(end.Add(l.spec.Latency)))
}

// Stats aggregates network counters.
type Stats struct {
	Messages  atomic.Uint64
	Bytes     atomic.Uint64
	RPCRounds atomic.Uint64
}

// Transport is the node-facing interface; both the in-process simulated
// network and the TCP transport implement it.
type Transport interface {
	// NodeID returns the local node id.
	NodeID() int
	// Handle registers the handler for a message kind.
	Handle(kind MsgKind, h Handler)
	// Call sends a request and blocks for the reply.
	Call(to int, kind MsgKind, payload []byte) ([]byte, error)
	// Send delivers a one-way message (blocking for the transfer time).
	Send(to int, kind MsgKind, payload []byte) error
}

// Network is the in-process simulated cluster fabric.
type Network struct {
	mu          sync.Mutex
	endpoints   map[int]*Endpoint
	links       map[[2]int]*link
	down        map[int]bool
	defaultSpec LinkSpec
	Stats       Stats
}

// NewNetwork builds a fabric whose unspecified links use def.
func NewNetwork(def LinkSpec) *Network {
	return &Network{
		endpoints:   make(map[int]*Endpoint),
		links:       make(map[[2]int]*link),
		down:        make(map[int]bool),
		defaultSpec: def,
	}
}

// SetNodeDown simulates a node crash (or recovery): while down, every Call
// or Send to or from the node fails with an unreachable error. Messages
// already in flight are not interrupted — as on a real network, a crash
// surfaces at the next send attempt.
func (n *Network) SetNodeDown(id int, isDown bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if isDown {
		n.down[id] = true
	} else {
		delete(n.down, id)
	}
}

// NodeDown reports whether id is currently marked crashed.
func (n *Network) NodeDown(id int) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.down[id]
}

// SetLink configures both directions between a and b.
func (n *Network) SetLink(a, b int, spec LinkSpec) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.links[[2]int{a, b}] = &link{spec: spec}
	n.links[[2]int{b, a}] = &link{spec: spec}
}

// SetDirectedLink configures one direction only.
func (n *Network) SetDirectedLink(from, to int, spec LinkSpec) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.links[[2]int{from, to}] = &link{spec: spec}
}

// LinkSpecBetween returns the effective spec from a to b.
func (n *Network) LinkSpecBetween(a, b int) LinkSpec {
	n.mu.Lock()
	defer n.mu.Unlock()
	if l, ok := n.links[[2]int{a, b}]; ok {
		return l.spec
	}
	return n.defaultSpec
}

func (n *Network) linkFor(from, to int) *link {
	n.mu.Lock()
	defer n.mu.Unlock()
	key := [2]int{from, to}
	l, ok := n.links[key]
	if !ok {
		l = &link{spec: n.defaultSpec}
		n.links[key] = l
	}
	return l
}

// Node registers (or returns) the endpoint for id.
func (n *Network) Node(id int) *Endpoint {
	n.mu.Lock()
	defer n.mu.Unlock()
	if ep, ok := n.endpoints[id]; ok {
		return ep
	}
	ep := &Endpoint{
		net:      n,
		id:       id,
		handlers: make(map[MsgKind]Handler),
		waiting:  make(map[uint64]chan rpcReply),
	}
	n.endpoints[id] = ep
	return ep
}

type rpcReply struct {
	payload []byte
	err     string
}

// Endpoint is one node's attachment to the fabric.
type Endpoint struct {
	net *Network
	id  int

	mu       sync.Mutex
	handlers map[MsgKind]Handler
	waiting  map[uint64]chan rpcReply
	corr     atomic.Uint64
}

// NodeID returns the endpoint's node id.
func (e *Endpoint) NodeID() int { return e.id }

// Handle registers h for kind, replacing any previous handler.
func (e *Endpoint) Handle(kind MsgKind, h Handler) {
	e.mu.Lock()
	e.handlers[kind] = h
	e.mu.Unlock()
}

func (e *Endpoint) peer(to int) (*Endpoint, error) {
	e.net.mu.Lock()
	peer, ok := e.net.endpoints[to]
	srcDown, dstDown := e.net.down[e.id], e.net.down[to]
	e.net.mu.Unlock()
	if !ok || dstDown {
		return nil, fmt.Errorf("netsim: node %d from %d: %w", to, e.id, ErrUnreachable)
	}
	if srcDown {
		return nil, fmt.Errorf("netsim: node %d cannot reach %d: %w", e.id, to, ErrSelfDown)
	}
	return peer, nil
}

// transfer pays for the wire and accounts stats.
func (e *Endpoint) transfer(to int, size int) {
	const frameOverhead = 64 // per-message header/framing cost
	l := e.net.linkFor(e.id, to)
	l.reserve(size + frameOverhead)
	e.net.Stats.Messages.Add(1)
	e.net.Stats.Bytes.Add(uint64(size + frameOverhead))
}

// Call performs a blocking RPC to the handler of kind on node to. The
// reply pays for the return path as well.
func (e *Endpoint) Call(to int, kind MsgKind, payload []byte) ([]byte, error) {
	peer, err := e.peer(to)
	if err != nil {
		return nil, err
	}
	peer.mu.Lock()
	h := peer.handlers[kind]
	peer.mu.Unlock()
	if h == nil {
		return nil, fmt.Errorf("netsim: node %d has no handler for kind %d", to, kind)
	}
	e.net.Stats.RPCRounds.Add(1)
	e.transfer(to, len(payload))
	reply, herr := h(e.id, payload)
	peer.transfer(e.id, len(reply))
	if herr != nil {
		return nil, fmt.Errorf("netsim: remote %d: %w", to, herr)
	}
	// A round trip that started before a SetNodeDown completes with its
	// reply intact: netsim "down" models a partition as much as a crash,
	// and a partitioned-but-running node keeps the effects of handlers
	// that already ran (it may rejoin with them). Losing replies here
	// would instead model a crash that forgets nothing and un-acks
	// everything — the worst of both — and non-idempotent protocols
	// (steal's job transfer) would double-execute on rejoin.
	return reply, nil
}

// Send delivers a one-way message, blocking until the bytes are on the
// wire. The remote handler runs asynchronously; its return payload is
// discarded.
func (e *Endpoint) Send(to int, kind MsgKind, payload []byte) error {
	peer, err := e.peer(to)
	if err != nil {
		return err
	}
	peer.mu.Lock()
	h := peer.handlers[kind]
	peer.mu.Unlock()
	if h == nil {
		return fmt.Errorf("netsim: node %d has no handler for kind %d", to, kind)
	}
	e.transfer(to, len(payload))
	go h(e.id, payload) //nolint:errcheck // one-way: delivery errors are the handler's problem
	return nil
}

var _ Transport = (*Endpoint)(nil)
