package value

import (
	"testing"
	"testing/quick"
)

func TestRefEncoding(t *testing.T) {
	r := MakeRef(3, 42)
	if r.Node() != 3 {
		t.Errorf("Node = %d, want 3", r.Node())
	}
	if r.Seq() != 42 {
		t.Errorf("Seq = %d, want 42", r.Seq())
	}
	if r.IsNull() || r.IsStub() {
		t.Error("fresh ref should be non-null, non-stub")
	}
	if !r.Usable() {
		t.Error("fresh ref should be usable")
	}
}

func TestNullRef(t *testing.T) {
	if !NullRef.IsNull() {
		t.Error("NullRef should be null")
	}
	if NullRef.Usable() {
		t.Error("NullRef should not be usable")
	}
	if NullRef.Stub() != NullRef {
		t.Error("stub of null should stay null")
	}
}

func TestStubRoundTrip(t *testing.T) {
	r := MakeRef(7, 99)
	s := r.Stub()
	if !s.IsStub() || s.Usable() {
		t.Error("stub should be flagged and unusable")
	}
	if s.Node() != 7 || s.Seq() != 99 {
		t.Error("stub should preserve node/seq")
	}
	if s.Unstub() != r {
		t.Error("unstub should recover original ref")
	}
}

func TestMakeRefPanics(t *testing.T) {
	for _, tc := range []struct {
		node int
		seq  uint64
	}{{-1, 1}, {MaxNodeID + 1, 1}, {0, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("MakeRef(%d,%d) should panic", tc.node, tc.seq)
				}
			}()
			MakeRef(tc.node, tc.seq)
		}()
	}
}

func TestQuickRefInvariants(t *testing.T) {
	f := func(node uint16, seq uint32) bool {
		n := int(node) % (MaxNodeID + 1)
		s := uint64(seq) + 1
		r := MakeRef(n, s)
		return r.Node() == n && r.Seq() == s && !r.IsNull() &&
			r.Stub().Unstub() == r && r.Stub().Node() == n && r.Stub().Seq() == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestValueConstructorsAndTruthiness(t *testing.T) {
	cases := []struct {
		v      Value
		truthy bool
	}{
		{Int(0), false},
		{Int(5), true},
		{Int(-1), true},
		{Float(0), false},
		{Float(0.1), true},
		{Null(), false},
		{RefVal(MakeRef(1, 1)), true},
		{Bool(true), true},
		{Bool(false), false},
		{Value{}, false},
	}
	for i, c := range cases {
		if c.v.IsTruthy() != c.truthy {
			t.Errorf("case %d (%v): IsTruthy = %v, want %v", i, c.v, c.v.IsTruthy(), c.truthy)
		}
	}
}

func TestConversions(t *testing.T) {
	if Int(7).AsFloat() != 7.0 {
		t.Error("Int→Float")
	}
	if Float(7.9).AsInt() != 7 {
		t.Error("Float→Int should truncate")
	}
	if Float(-7.9).AsInt() != -7 {
		t.Error("negative Float→Int should truncate toward zero")
	}
}

func TestEqual(t *testing.T) {
	if !Int(3).Equal(Int(3)) || Int(3).Equal(Int(4)) {
		t.Error("int equality")
	}
	if Int(3).Equal(Float(3)) {
		t.Error("cross-kind values should not be Equal")
	}
	r := MakeRef(1, 2)
	if !RefVal(r).Equal(RefVal(r)) || RefVal(r).Equal(Null()) {
		t.Error("ref equality")
	}
}

func TestStrings(t *testing.T) {
	if got := Int(42).String(); got != "42" {
		t.Errorf("Int.String = %q", got)
	}
	if got := Null().String(); got != "null" {
		t.Errorf("Null.String = %q", got)
	}
	if got := MakeRef(2, 9).String(); got != "n2#9" {
		t.Errorf("Ref.String = %q", got)
	}
	if got := MakeRef(2, 9).Stub().String(); got != "stub:n2#9" {
		t.Errorf("Stub.String = %q", got)
	}
	if got := KindFloat.String(); got != "float" {
		t.Errorf("Kind.String = %q", got)
	}
}
