// Package value defines the runtime value representation of the SVM (the
// stack-based virtual machine that plays the role of the JVM in the SOD
// paper). Values flow through operand stacks, local variable slots, object
// fields and the wire codecs, so the representation is shared by almost
// every package in the system.
//
// A Value is a small tagged union: 64-bit integers, 64-bit floats and
// references. References identify heap objects and carry their allocating
// node in the high bits so that an object's *home identity* survives
// migration — the destination node of a SOD migration caches objects under
// their home reference, exactly as SODEE's object manager keys remote
// objects by their identity at the home JVM.
//
// A reference may additionally be a *remote stub*: the Go analog of the
// paper's "restore object-typed state as null". A stub names a home object
// but has no local storage; any *use* of a stub (field access, array access,
// virtual dispatch) raises the same NullPointerException the paper's nulled
// references raise, which the injected object-fault handlers catch. Merely
// copying a stub between slots is free, matching the paper's free copying of
// null references.
package value

import "fmt"

// Kind discriminates the payload of a Value.
type Kind uint8

const (
	// KindInvalid is the zero Kind; it marks unset locals and is illegal on
	// operand stacks (the verifier rejects programs that could observe it).
	KindInvalid Kind = iota
	// KindInt is a 64-bit signed integer (also used for booleans: 0/1).
	KindInt
	// KindFloat is a 64-bit IEEE-754 float.
	KindFloat
	// KindRef is an object reference; R == NullRef means null.
	KindRef
)

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	switch k {
	case KindInvalid:
		return "invalid"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindRef:
		return "ref"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Ref identifies a heap object. The bit layout is:
//
//	bit  63     stub flag (remote stub — see package comment)
//	bits 62..48 allocating node id (15 bits)
//	bits 47..0  per-node allocation sequence number (starts at 1)
//
// The zero Ref is null.
type Ref uint64

// NullRef is the null reference.
const NullRef Ref = 0

const (
	stubBit   Ref = 1 << 63
	nodeShift      = 48
	nodeMask  Ref  = (1<<15 - 1) << nodeShift
	seqMask   Ref  = 1<<nodeShift - 1
)

// MaxNodeID is the largest node id a Ref can carry.
const MaxNodeID = 1<<15 - 1

// MakeRef builds a non-stub reference for the given node and sequence
// number. It panics if either component is out of range or seq is zero
// (sequence numbers start at 1 so that the zero Ref stays null).
func MakeRef(node int, seq uint64) Ref {
	if node < 0 || node > MaxNodeID {
		panic(fmt.Sprintf("value: node id %d out of range", node))
	}
	if seq == 0 || seq > uint64(seqMask) {
		panic(fmt.Sprintf("value: sequence number %d out of range", seq))
	}
	return Ref(uint64(node)<<nodeShift) | Ref(seq)
}

// IsNull reports whether r is the null reference.
func (r Ref) IsNull() bool { return r == NullRef }

// IsStub reports whether r is a remote stub.
func (r Ref) IsStub() bool { return r&stubBit != 0 }

// Stub returns the stub form of r: a reference naming the same home object
// but with no local storage. Stubbing null yields null.
func (r Ref) Stub() Ref {
	if r == NullRef {
		return NullRef
	}
	return r | stubBit
}

// Unstub returns the plain (non-stub) form of r.
func (r Ref) Unstub() Ref { return r &^ stubBit }

// Node returns the allocating node id encoded in r.
func (r Ref) Node() int { return int((r & nodeMask) >> nodeShift) }

// Seq returns the per-node sequence number encoded in r.
func (r Ref) Seq() uint64 { return uint64(r & seqMask) }

// Usable reports whether r can be dereferenced locally: it must be neither
// null nor a stub. This is the single check the interpreter performs before
// every object use — the same check a JVM performs for null safety, which
// is exactly the "free ride" the paper's object faulting exploits.
func (r Ref) Usable() bool { return r != NullRef && r&stubBit == 0 }

// String formats the reference for debugging.
func (r Ref) String() string {
	if r == NullRef {
		return "null"
	}
	s := ""
	if r.IsStub() {
		s = "stub:"
	}
	return fmt.Sprintf("%sn%d#%d", s, r.Node(), r.Seq())
}

// Value is the SVM's tagged runtime value.
type Value struct {
	Kind Kind
	I    int64
	F    float64
	R    Ref
}

// Int returns an integer Value.
func Int(i int64) Value { return Value{Kind: KindInt, I: i} }

// Bool returns an integer Value encoding b as 0/1.
func Bool(b bool) Value {
	if b {
		return Value{Kind: KindInt, I: 1}
	}
	return Value{Kind: KindInt}
}

// Float returns a float Value.
func Float(f float64) Value { return Value{Kind: KindFloat, F: f} }

// RefVal returns a reference Value.
func RefVal(r Ref) Value { return Value{Kind: KindRef, R: r} }

// Null returns the null reference Value.
func Null() Value { return Value{Kind: KindRef} }

// IsTruthy reports whether v is a non-zero int, non-zero float, or
// non-null reference; used by conditional jumps.
func (v Value) IsTruthy() bool {
	switch v.Kind {
	case KindInt:
		return v.I != 0
	case KindFloat:
		return v.F != 0
	case KindRef:
		return v.R != NullRef
	default:
		return false
	}
}

// AsFloat converts an int or float Value to float64.
func (v Value) AsFloat() float64 {
	if v.Kind == KindInt {
		return float64(v.I)
	}
	return v.F
}

// AsInt converts an int or float Value to int64 (floats truncate).
func (v Value) AsInt() int64 {
	if v.Kind == KindFloat {
		return int64(v.F)
	}
	return v.I
}

// Equal reports deep equality of two values (kind and payload).
func (v Value) Equal(o Value) bool {
	if v.Kind != o.Kind {
		return false
	}
	switch v.Kind {
	case KindInt:
		return v.I == o.I
	case KindFloat:
		return v.F == o.F
	case KindRef:
		return v.R == o.R
	default:
		return true
	}
}

// String formats the value for debugging and disassembly.
func (v Value) String() string {
	switch v.Kind {
	case KindInt:
		return fmt.Sprintf("%d", v.I)
	case KindFloat:
		return fmt.Sprintf("%g", v.F)
	case KindRef:
		return v.R.String()
	default:
		return "<invalid>"
	}
}
