// Package wire provides the low-level binary encoding primitives shared by
// every codec in the system (state capture, object shipping, class transfer,
// network framing). It is deliberately tiny and allocation-conscious: the
// fast path appends to a caller-owned buffer and the reader is a cursor over
// a byte slice.
//
// Two integer encodings are provided. Uvarint/Varint are the compact
// variable-length forms used by the fast codec. Fixed64 is used where the
// "javaser" codec wants to mimic Java serialization's fixed-width fields.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// ErrShortBuffer is returned when a Reader runs out of bytes mid-value.
var ErrShortBuffer = errors.New("wire: short buffer")

// ErrCorrupt is returned when a decoded value is structurally invalid
// (e.g. a length prefix larger than the remaining payload).
var ErrCorrupt = errors.New("wire: corrupt data")

// Writer accumulates an encoded message. The zero value is ready to use.
type Writer struct {
	buf []byte
}

// NewWriter returns a Writer with the given initial capacity.
func NewWriter(capacity int) *Writer {
	return &Writer{buf: make([]byte, 0, capacity)}
}

// Bytes returns the encoded contents. The slice aliases the Writer's
// internal buffer and is invalidated by further writes.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the number of bytes written so far.
func (w *Writer) Len() int { return len(w.buf) }

// Reset truncates the writer for reuse, retaining capacity.
func (w *Writer) Reset() { w.buf = w.buf[:0] }

// Uvarint appends an unsigned variable-length integer.
func (w *Writer) Uvarint(v uint64) {
	w.buf = binary.AppendUvarint(w.buf, v)
}

// Varint appends a signed variable-length integer (zig-zag encoded).
func (w *Writer) Varint(v int64) {
	w.buf = binary.AppendVarint(w.buf, v)
}

// Fixed64 appends a fixed-width little-endian 64-bit value.
func (w *Writer) Fixed64(v uint64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, v)
}

// Fixed32 appends a fixed-width little-endian 32-bit value.
func (w *Writer) Fixed32(v uint32) {
	w.buf = binary.LittleEndian.AppendUint32(w.buf, v)
}

// Byte appends a single byte.
func (w *Writer) Byte(b byte) { w.buf = append(w.buf, b) }

// Bool appends a boolean as one byte.
func (w *Writer) Bool(b bool) {
	if b {
		w.buf = append(w.buf, 1)
	} else {
		w.buf = append(w.buf, 0)
	}
}

// Float64 appends a float64 by bit pattern.
func (w *Writer) Float64(f float64) { w.Fixed64(math.Float64bits(f)) }

// String appends a length-prefixed UTF-8 string.
func (w *Writer) String(s string) {
	w.Uvarint(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// Blob appends a length-prefixed byte slice.
func (w *Writer) Blob(b []byte) {
	w.Uvarint(uint64(len(b)))
	w.buf = append(w.buf, b...)
}

// Raw appends bytes without a length prefix.
func (w *Writer) Raw(b []byte) { w.buf = append(w.buf, b...) }

// Int64Slice appends a length-prefixed slice of varints.
func (w *Writer) Int64Slice(vs []int64) {
	w.Uvarint(uint64(len(vs)))
	for _, v := range vs {
		w.Varint(v)
	}
}

// Float64Slice appends a length-prefixed slice of fixed-width floats.
func (w *Writer) Float64Slice(vs []float64) {
	w.Uvarint(uint64(len(vs)))
	for _, v := range vs {
		w.Float64(v)
	}
}

// Uint64Slice appends a length-prefixed slice of uvarints.
func (w *Writer) Uint64Slice(vs []uint64) {
	w.Uvarint(uint64(len(vs)))
	for _, v := range vs {
		w.Uvarint(v)
	}
}

// Reader is a cursor over an encoded message.
type Reader struct {
	buf []byte
	pos int
	err error
}

// NewReader returns a Reader over buf. The Reader does not copy buf.
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// Err returns the first error encountered, if any. All getters return zero
// values after an error, so callers may decode a whole message and check
// Err once at the end.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.pos }

// Pos returns the current cursor offset.
func (r *Reader) Pos() int { return r.pos }

func (r *Reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

// Uvarint reads an unsigned variable-length integer.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.pos:])
	if n <= 0 {
		r.fail(ErrShortBuffer)
		return 0
	}
	r.pos += n
	return v
}

// Varint reads a signed variable-length integer.
func (r *Reader) Varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf[r.pos:])
	if n <= 0 {
		r.fail(ErrShortBuffer)
		return 0
	}
	r.pos += n
	return v
}

// Fixed64 reads a fixed-width 64-bit value.
func (r *Reader) Fixed64() uint64 {
	if r.err != nil {
		return 0
	}
	if r.Remaining() < 8 {
		r.fail(ErrShortBuffer)
		return 0
	}
	v := binary.LittleEndian.Uint64(r.buf[r.pos:])
	r.pos += 8
	return v
}

// Fixed32 reads a fixed-width 32-bit value.
func (r *Reader) Fixed32() uint32 {
	if r.err != nil {
		return 0
	}
	if r.Remaining() < 4 {
		r.fail(ErrShortBuffer)
		return 0
	}
	v := binary.LittleEndian.Uint32(r.buf[r.pos:])
	r.pos += 4
	return v
}

// Byte reads a single byte.
func (r *Reader) Byte() byte {
	if r.err != nil {
		return 0
	}
	if r.Remaining() < 1 {
		r.fail(ErrShortBuffer)
		return 0
	}
	b := r.buf[r.pos]
	r.pos++
	return b
}

// Bool reads a boolean byte.
func (r *Reader) Bool() bool { return r.Byte() != 0 }

// Float64 reads a float64 by bit pattern.
func (r *Reader) Float64() float64 { return math.Float64frombits(r.Fixed64()) }

// String reads a length-prefixed UTF-8 string.
func (r *Reader) String() string {
	n := r.Uvarint()
	if r.err != nil {
		return ""
	}
	if uint64(r.Remaining()) < n {
		r.fail(ErrCorrupt)
		return ""
	}
	s := string(r.buf[r.pos : r.pos+int(n)])
	r.pos += int(n)
	return s
}

// Blob reads a length-prefixed byte slice. The returned slice is a copy.
func (r *Reader) Blob() []byte {
	n := r.Uvarint()
	if r.err != nil {
		return nil
	}
	if uint64(r.Remaining()) < n {
		r.fail(ErrCorrupt)
		return nil
	}
	b := make([]byte, n)
	copy(b, r.buf[r.pos:r.pos+int(n)])
	r.pos += int(n)
	return b
}

// BlobView reads a length-prefixed byte slice without copying. The returned
// slice aliases the Reader's buffer.
func (r *Reader) BlobView() []byte {
	n := r.Uvarint()
	if r.err != nil {
		return nil
	}
	if uint64(r.Remaining()) < n {
		r.fail(ErrCorrupt)
		return nil
	}
	b := r.buf[r.pos : r.pos+int(n)]
	r.pos += int(n)
	return b
}

// Int64Slice reads a length-prefixed slice of varints.
func (r *Reader) Int64Slice() []int64 {
	n := r.Uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(r.Remaining()) { // each element is at least one byte
		r.fail(ErrCorrupt)
		return nil
	}
	vs := make([]int64, n)
	for i := range vs {
		vs[i] = r.Varint()
	}
	return vs
}

// Float64Slice reads a length-prefixed slice of fixed-width floats.
func (r *Reader) Float64Slice() []float64 {
	n := r.Uvarint()
	if r.err != nil {
		return nil
	}
	if n*8 > uint64(r.Remaining()) {
		r.fail(ErrCorrupt)
		return nil
	}
	vs := make([]float64, n)
	for i := range vs {
		vs[i] = r.Float64()
	}
	return vs
}

// Uint64Slice reads a length-prefixed slice of uvarints.
func (r *Reader) Uint64Slice() []uint64 {
	n := r.Uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(r.Remaining()) {
		r.fail(ErrCorrupt)
		return nil
	}
	vs := make([]uint64, n)
	for i := range vs {
		vs[i] = r.Uvarint()
	}
	return vs
}

// Expect consumes a single byte and fails the reader if it does not match.
// Used for message-kind tags and codec magic bytes.
func (r *Reader) Expect(b byte) {
	got := r.Byte()
	if r.err == nil && got != b {
		r.fail(fmt.Errorf("%w: expected tag 0x%02x, got 0x%02x", ErrCorrupt, b, got))
	}
}
