package wire

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRoundTripScalars(t *testing.T) {
	w := NewWriter(64)
	w.Uvarint(0)
	w.Uvarint(1 << 60)
	w.Varint(-12345)
	w.Fixed64(0xdeadbeefcafebabe)
	w.Fixed32(0x12345678)
	w.Byte(0x7f)
	w.Bool(true)
	w.Bool(false)
	w.Float64(math.Pi)
	w.String("héllo")
	w.Blob([]byte{1, 2, 3})

	r := NewReader(w.Bytes())
	if got := r.Uvarint(); got != 0 {
		t.Errorf("Uvarint = %d, want 0", got)
	}
	if got := r.Uvarint(); got != 1<<60 {
		t.Errorf("Uvarint = %d, want %d", got, uint64(1)<<60)
	}
	if got := r.Varint(); got != -12345 {
		t.Errorf("Varint = %d, want -12345", got)
	}
	if got := r.Fixed64(); got != 0xdeadbeefcafebabe {
		t.Errorf("Fixed64 = %x", got)
	}
	if got := r.Fixed32(); got != 0x12345678 {
		t.Errorf("Fixed32 = %x", got)
	}
	if got := r.Byte(); got != 0x7f {
		t.Errorf("Byte = %x", got)
	}
	if !r.Bool() || r.Bool() {
		t.Error("Bool round trip failed")
	}
	if got := r.Float64(); got != math.Pi {
		t.Errorf("Float64 = %v", got)
	}
	if got := r.String(); got != "héllo" {
		t.Errorf("String = %q", got)
	}
	b := r.Blob()
	if len(b) != 3 || b[0] != 1 || b[2] != 3 {
		t.Errorf("Blob = %v", b)
	}
	if r.Err() != nil {
		t.Fatalf("Err = %v", r.Err())
	}
	if r.Remaining() != 0 {
		t.Errorf("Remaining = %d, want 0", r.Remaining())
	}
}

func TestShortBuffer(t *testing.T) {
	r := NewReader([]byte{0x80}) // incomplete varint
	r.Uvarint()
	if r.Err() == nil {
		t.Fatal("expected error on truncated uvarint")
	}
	// After an error, all getters return zero values without panicking.
	if r.Fixed64() != 0 || r.String() != "" || r.Blob() != nil {
		t.Error("post-error reads should be zero values")
	}
}

func TestCorruptLengthPrefix(t *testing.T) {
	w := NewWriter(8)
	w.Uvarint(1000) // claims 1000 bytes follow
	w.Raw([]byte("abc"))
	r := NewReader(w.Bytes())
	if r.String() != "" || r.Err() == nil {
		t.Fatal("expected corrupt-length error")
	}
}

func TestExpect(t *testing.T) {
	w := NewWriter(2)
	w.Byte(0x42)
	r := NewReader(w.Bytes())
	r.Expect(0x42)
	if r.Err() != nil {
		t.Fatalf("Expect matched tag: %v", r.Err())
	}
	r2 := NewReader(w.Bytes())
	r2.Expect(0x43)
	if r2.Err() == nil {
		t.Fatal("Expect should fail on mismatched tag")
	}
}

func TestSliceRoundTrips(t *testing.T) {
	w := NewWriter(64)
	is := []int64{-5, 0, 7, 1 << 40}
	fs := []float64{0, -1.5, math.Inf(1)}
	us := []uint64{0, 9, 1 << 50}
	w.Int64Slice(is)
	w.Float64Slice(fs)
	w.Uint64Slice(us)
	r := NewReader(w.Bytes())
	gi, gf, gu := r.Int64Slice(), r.Float64Slice(), r.Uint64Slice()
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
	for i := range is {
		if gi[i] != is[i] {
			t.Errorf("int64[%d] = %d, want %d", i, gi[i], is[i])
		}
	}
	for i := range fs {
		if gf[i] != fs[i] {
			t.Errorf("float64[%d] = %v, want %v", i, gf[i], fs[i])
		}
	}
	for i := range us {
		if gu[i] != us[i] {
			t.Errorf("uint64[%d] = %d, want %d", i, gu[i], us[i])
		}
	}
}

func TestQuickVarintRoundTrip(t *testing.T) {
	f := func(v int64, u uint64, s string, blob []byte) bool {
		w := NewWriter(32)
		w.Varint(v)
		w.Uvarint(u)
		w.String(s)
		w.Blob(blob)
		r := NewReader(w.Bytes())
		gv, gu, gs, gb := r.Varint(), r.Uvarint(), r.String(), r.Blob()
		if r.Err() != nil || gv != v || gu != u || gs != s {
			return false
		}
		if len(gb) != len(blob) {
			return false
		}
		for i := range blob {
			if gb[i] != blob[i] {
				return false
			}
		}
		return r.Remaining() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestBlobViewAliases(t *testing.T) {
	w := NewWriter(16)
	w.Blob([]byte{9, 8, 7})
	r := NewReader(w.Bytes())
	v := r.BlobView()
	if len(v) != 3 || v[1] != 8 {
		t.Fatalf("BlobView = %v", v)
	}
}

func TestWriterReset(t *testing.T) {
	w := NewWriter(8)
	w.Uvarint(7)
	if w.Len() == 0 {
		t.Fatal("Len should be non-zero")
	}
	w.Reset()
	if w.Len() != 0 {
		t.Fatal("Reset should truncate")
	}
}
