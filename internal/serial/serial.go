// Package serial defines the wire formats for migrated state: captured
// stack frames (CapturedState, §III.B), shallow objects shipped by the
// object manager (§III.C), flush messages carrying results and dirty data
// home, and whole classes for on-demand code shipping.
//
// Two codecs implement each format:
//
//   - Fast: the compact binary codec SODEE-style migration uses — ids and
//     varints, no self-description.
//   - JavaSer: a deliberately self-describing codec modelled on Java
//     serialization — class and field *names*, per-value type tags,
//     fixed-width integers, and a stream header per message. The
//     G-JavaMPI baseline uses it ("all objects are exported using Java
//     serialization"), which is a large part of why its eager-copy
//     migration transfers so much and takes so long; the device profile
//     of §IV.D also uses it (JamVM has no JVMTI, so SODEE fell back to
//     Java serialization there).
//
// Both codecs share the same logical structures, so tests can verify they
// round-trip identically.
package serial

import (
	"fmt"

	"repro/internal/bytecode"
	"repro/internal/value"
	"repro/internal/vm"
	"repro/internal/wire"
)

// Codec selects a wire format.
type Codec int

const (
	// Fast is the compact binary codec.
	Fast Codec = iota
	// JavaSer mimics Java serialization (self-describing, verbose).
	JavaSer
)

func (c Codec) String() string {
	if c == JavaSer {
		return "javaser"
	}
	return "fast"
}

// CapturedFrame is one frame of a captured segment, bottom-first in
// CapturedState.Frames. PC is always a statement-start (operand stacks are
// empty there — the migration-safe-point property), so no operand stack is
// captured, exactly as with JVMTI.
type CapturedFrame struct {
	MethodID int32
	// PC is the statement-start pc used by the Fig 4 breakpoint/handler
	// restoration protocol: for the segment's top frame it is the MSP the
	// thread parked at; for every other frame it is the start of the
	// statement containing the pending invoke (re-executing the statement's
	// pure argument loads re-issues the call, which restores the frame
	// above — §III.B.2).
	PC int32
	// ResumePC is the exact continuation pc (one past the pending invoke)
	// used by in-VM direct restoration (the JESSICA2 baseline and the
	// §IV.D device path, which rebuild frames without the debugger).
	ResumePC int32
	Locals   []value.Value
	Pinned   bool
}

// AllocHint describes a static array at the home node, letting a
// JESSICA2-style destination model eager allocation of static arrays at
// class-load time (§IV.A).
type AllocHint struct {
	Kind int32
	Len  int64
}

// ClassStatics carries the static fields of one class.
type ClassStatics struct {
	ClassID int32
	Values  []value.Value
}

// Visit is one entry of a job's migration trace: the node the job left
// and how long ago it left, measured at capture time. Ages rather than
// absolute timestamps keep the anti-ping-pong cooldown immune to clock
// skew between cluster machines — the receiver re-bases each age against
// its own clock on arrival (the transfer latency slightly extends the
// reconstructed quarantine, which errs on the safe side).
type Visit struct {
	Node     int32
	AgeNanos int64 // nanoseconds since the job left Node, as of capture
}

// CapturedState is the migration payload: the exported stack segment plus
// the statics of the classes it references. Object-typed values are home
// references — remote at the destination until faulted in.
type CapturedState struct {
	HomeNode int32
	ThreadID int32
	// Frames are ordered bottom-first: Frames[0] is the segment's lowest
	// frame (restored first, Fig 4b).
	Frames  []CapturedFrame
	Statics []ClassStatics
	// AllocHints lists static arrays for eager-allocation destinations.
	AllocHints []AllocHint
	// Hops counts migrations this state has undergone, this transfer
	// included — 1 for a first migration away from home. The re-balancing
	// hop budget is enforced against it.
	Hops int32
	// Visited is the recent migration trace (nodes this job left, newest
	// entries appended), bounded to MaxVisits at capture time.
	Visited []Visit
}

// MaxVisits bounds the trace shipped with a migration: old entries are far
// outside any cooldown window and only cost wire bytes.
const MaxVisits = 8

// WireObject is a shallowly serialized heap object: reference fields carry
// the *home* references of their targets (fetched on demand later), never
// nested object bodies — the "heap-on-demand" half of SOD.
type WireObject struct {
	Ref     value.Ref // the object's identity at its home node
	Class   int32
	IsArray bool
	AKind   int32
	Fields  []value.Value
	AI      []int64
	AF      []float64
	AB      []byte
	AR      []value.Ref
}

// FlushMessage carries a completed segment's results home: the return
// value, updated (dirty) cached objects keyed by home ref, objects newly
// allocated at the destination that escaped (keyed by their destination
// refs — the home node re-homes them and rewrites references), and
// modified statics.
type FlushMessage struct {
	ThreadID  int32
	HasResult bool
	Result    value.Value
	// Updated are dirty copies of home-mastered objects (Ref is the home ref).
	Updated []WireObject
	// Fresh are destination-allocated escaping objects (Ref is the dest ref).
	Fresh   []WireObject
	Statics []ClassStatics
	// Err carries an uncaught-exception description when the segment
	// terminated exceptionally; the home node re-raises it.
	Err string
}

// message kind tags (first byte of every encoded message).
const (
	tagCaptured byte = 0xC1
	tagObject   byte = 0xC2
	tagFlush    byte = 0xC3
	tagClass    byte = 0xC4
)

// value kind tags
const (
	vtInt   byte = 1
	vtFloat byte = 2
	vtRef   byte = 3
	vtInval byte = 4
)

// --- value encoding ---

func encValue(w *wire.Writer, v value.Value, c Codec) {
	switch v.Kind {
	case value.KindInt:
		w.Byte(vtInt)
		if c == JavaSer {
			w.Fixed64(uint64(v.I))
		} else {
			w.Varint(v.I)
		}
	case value.KindFloat:
		w.Byte(vtFloat)
		w.Float64(v.F)
	case value.KindRef:
		w.Byte(vtRef)
		if c == JavaSer {
			w.Fixed64(uint64(v.R))
		} else {
			w.Uvarint(uint64(v.R))
		}
	default:
		w.Byte(vtInval)
	}
}

func decValue(r *wire.Reader, c Codec) value.Value {
	switch r.Byte() {
	case vtInt:
		if c == JavaSer {
			return value.Int(int64(r.Fixed64()))
		}
		return value.Int(r.Varint())
	case vtFloat:
		return value.Float(r.Float64())
	case vtRef:
		if c == JavaSer {
			return value.RefVal(value.Ref(r.Fixed64()))
		}
		return value.RefVal(value.Ref(r.Uvarint()))
	default:
		return value.Value{}
	}
}

func encValues(w *wire.Writer, vs []value.Value, c Codec) {
	w.Uvarint(uint64(len(vs)))
	for _, v := range vs {
		encValue(w, v, c)
	}
}

func decValues(r *wire.Reader, c Codec) []value.Value {
	n := r.Uvarint()
	if r.Err() != nil || n > uint64(r.Remaining()) {
		return nil
	}
	vs := make([]value.Value, n)
	for i := range vs {
		vs[i] = decValue(r, c)
	}
	return vs
}

// javaSerHeader mimics the ObjectOutputStream stream magic + a class
// descriptor preamble per message.
func javaSerHeader(w *wire.Writer, desc string) {
	w.Fixed32(0xACED0005)
	w.String("sodee.serial." + desc)
	w.Fixed64(0x1234567890ABCDEF) // serialVersionUID
}

func javaSerCheck(r *wire.Reader, desc string) error {
	if r.Fixed32() != 0xACED0005 {
		return fmt.Errorf("serial: bad javaser magic")
	}
	if got := r.String(); got != "sodee.serial."+desc {
		return fmt.Errorf("serial: bad descriptor %q", got)
	}
	r.Fixed64()
	return r.Err()
}

// --- CapturedState ---

// encFrame writes one frame in the codec's per-frame layout; the unit is
// self-delimiting, so the same bytes work inline in a CapturedState or as
// a standalone delta unit (EncodeFrame).
func encFrame(w *wire.Writer, f *CapturedFrame, prog *bytecode.Program, c Codec) {
	if c == JavaSer {
		m := prog.Methods[f.MethodID]
		w.String(prog.QualifiedName(m))
		w.Fixed32(uint32(f.PC))
		w.Uvarint(uint64(len(f.Locals)))
		for slot, lv := range f.Locals {
			w.String(fmt.Sprintf("slot%d", slot)) // variable descriptor
			encValue(w, lv, c)
		}
	} else {
		w.Varint(int64(f.MethodID))
		w.Varint(int64(f.PC))
		encValues(w, f.Locals, c)
	}
	w.Varint(int64(f.ResumePC))
	w.Bool(f.Pinned)
}

func decFrame(r *wire.Reader, prog *bytecode.Program, c Codec) (CapturedFrame, error) {
	var f CapturedFrame
	if c == JavaSer {
		name := r.String()
		mid := prog.MethodByName(name)
		if mid < 0 {
			return f, fmt.Errorf("serial: unknown method %q", name)
		}
		f.MethodID = mid
		f.PC = int32(r.Fixed32())
		n := r.Uvarint()
		if r.Err() != nil || n > uint64(r.Remaining()) {
			return f, fmt.Errorf("serial: corrupt locals count")
		}
		f.Locals = make([]value.Value, n)
		for j := range f.Locals {
			_ = r.String() // descriptor, ignored on decode
			f.Locals[j] = decValue(r, c)
		}
	} else {
		f.MethodID = int32(r.Varint())
		f.PC = int32(r.Varint())
		f.Locals = decValues(r, c)
	}
	f.ResumePC = int32(r.Varint())
	f.Pinned = r.Bool()
	return f, r.Err()
}

// EncodeFrame serializes one frame as a standalone unit — the content the
// delta path hashes and caches per link. The bytes are identical to the
// frame's inline representation inside EncodeCapturedState.
func EncodeFrame(f *CapturedFrame, prog *bytecode.Program, c Codec) []byte {
	w := wire.NewWriter(64)
	encFrame(w, f, prog, c)
	return w.Bytes()
}

// DecodeFrame parses a standalone frame unit produced by EncodeFrame.
func DecodeFrame(buf []byte, prog *bytecode.Program, c Codec) (CapturedFrame, error) {
	r := wire.NewReader(buf)
	f, err := decFrame(r, prog, c)
	if err != nil {
		return f, err
	}
	return f, r.Err()
}

// encClassStatics writes one class's statics block (same inline/standalone
// duality as encFrame).
func encClassStatics(w *wire.Writer, s *ClassStatics, prog *bytecode.Program, c Codec) {
	if c == JavaSer {
		cl := prog.Classes[s.ClassID]
		w.String(cl.Name)
		w.Uvarint(uint64(len(s.Values)))
		for i, sv := range s.Values {
			name := "?"
			if i < len(cl.Statics) {
				name = cl.Statics[i].Name
			}
			w.String(name)
			encValue(w, sv, c)
		}
	} else {
		w.Varint(int64(s.ClassID))
		encValues(w, s.Values, c)
	}
}

func decClassStatics(r *wire.Reader, prog *bytecode.Program, c Codec) (ClassStatics, error) {
	var s ClassStatics
	if c == JavaSer {
		name := r.String()
		cid := prog.ClassByName(name)
		if cid < 0 {
			return s, fmt.Errorf("serial: unknown class %q", name)
		}
		s.ClassID = cid
		n := r.Uvarint()
		if r.Err() != nil || n > uint64(r.Remaining()) {
			return s, fmt.Errorf("serial: corrupt statics")
		}
		s.Values = make([]value.Value, n)
		for j := range s.Values {
			_ = r.String() // field descriptor
			s.Values[j] = decValue(r, c)
		}
	} else {
		s.ClassID = int32(r.Varint())
		s.Values = decValues(r, c)
	}
	return s, r.Err()
}

// EncodeClassStatics serializes one class's statics as a standalone unit.
func EncodeClassStatics(s *ClassStatics, prog *bytecode.Program, c Codec) []byte {
	w := wire.NewWriter(32)
	encClassStatics(w, s, prog, c)
	return w.Bytes()
}

// DecodeClassStatics parses a standalone statics unit.
func DecodeClassStatics(buf []byte, prog *bytecode.Program, c Codec) (ClassStatics, error) {
	r := wire.NewReader(buf)
	return decClassStatics(r, prog, c)
}

// Hash64 is the content hash the delta protocol keys its link caches by:
// 64-bit FNV-1a over the encoded unit bytes. Not cryptographic — peers in
// one cluster are mutually trusted; a collision costs a wrong restore, so
// 64 bits over the handful of live units per link is comfortable.
func Hash64(b []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime64
	}
	return h
}

// EncodeCapturedState serializes cs. The JavaSer form additionally writes
// method names and per-slot descriptors, as the paper's device fallback
// does.
func EncodeCapturedState(cs *CapturedState, prog *bytecode.Program, c Codec) []byte {
	w := wire.NewWriter(256)
	w.Byte(tagCaptured)
	if c == JavaSer {
		javaSerHeader(w, "CapturedState")
	}
	w.Varint(int64(cs.HomeNode))
	w.Varint(int64(cs.ThreadID))
	w.Uvarint(uint64(len(cs.Frames)))
	for i := range cs.Frames {
		encFrame(w, &cs.Frames[i], prog, c)
	}
	w.Uvarint(uint64(len(cs.Statics)))
	for i := range cs.Statics {
		encClassStatics(w, &cs.Statics[i], prog, c)
	}
	w.Uvarint(uint64(len(cs.AllocHints)))
	for _, h := range cs.AllocHints {
		w.Varint(int64(h.Kind))
		w.Varint(h.Len)
	}
	w.Varint(int64(cs.Hops))
	visited := cs.Visited
	if len(visited) > MaxVisits {
		visited = visited[len(visited)-MaxVisits:]
	}
	w.Uvarint(uint64(len(visited)))
	for _, v := range visited {
		w.Varint(int64(v.Node))
		w.Varint(v.AgeNanos)
	}
	return w.Bytes()
}

// DecodeCapturedState parses an encoded CapturedState.
func DecodeCapturedState(buf []byte, prog *bytecode.Program, c Codec) (*CapturedState, error) {
	r := wire.NewReader(buf)
	r.Expect(tagCaptured)
	if c == JavaSer {
		if err := javaSerCheck(r, "CapturedState"); err != nil {
			return nil, err
		}
	}
	cs := &CapturedState{
		HomeNode: int32(r.Varint()),
		ThreadID: int32(r.Varint()),
	}
	nf := r.Uvarint()
	if r.Err() != nil || nf > uint64(r.Remaining())+64 {
		return nil, fmt.Errorf("serial: corrupt frame count")
	}
	for i := uint64(0); i < nf; i++ {
		f, err := decFrame(r, prog, c)
		if err != nil {
			return nil, err
		}
		cs.Frames = append(cs.Frames, f)
	}
	ns := r.Uvarint()
	if r.Err() != nil || ns > uint64(r.Remaining())+64 {
		return nil, fmt.Errorf("serial: corrupt statics count")
	}
	for i := uint64(0); i < ns; i++ {
		s, err := decClassStatics(r, prog, c)
		if err != nil {
			return nil, err
		}
		cs.Statics = append(cs.Statics, s)
	}
	for i, n := 0, int(r.Uvarint()); i < n && r.Err() == nil; i++ {
		cs.AllocHints = append(cs.AllocHints, AllocHint{Kind: int32(r.Varint()), Len: r.Varint()})
	}
	cs.Hops = int32(r.Varint())
	for i, n := 0, int(r.Uvarint()); i < n && r.Err() == nil; i++ {
		cs.Visited = append(cs.Visited, Visit{Node: int32(r.Varint()), AgeNanos: r.Varint()})
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	return cs, nil
}

// --- objects ---

// SnapshotObject builds the shallow wire form of a live object. Reference
// fields are passed through verbatim: on the destination they are remote
// (their node id differs) and fault on use.
func SnapshotObject(ref value.Ref, o *vm.Object) WireObject {
	wo := WireObject{Ref: ref, Class: o.Class, IsArray: o.IsArray, AKind: o.AKind}
	if o.IsArray {
		switch o.AKind {
		case bytecode.ArrKindInt:
			wo.AI = append([]int64(nil), o.AI...)
		case bytecode.ArrKindFloat:
			wo.AF = append([]float64(nil), o.AF...)
		case bytecode.ArrKindByte:
			wo.AB = append([]byte(nil), o.AB...)
		case bytecode.ArrKindRef:
			wo.AR = append([]value.Ref(nil), o.AR...)
		}
		return wo
	}
	wo.Fields = append([]value.Value(nil), o.Fields...)
	return wo
}

// Materialize converts a wire object into a heap object marked as a cached
// copy of its home master (Home = wo.Ref, Status = 1/valid).
func (wo *WireObject) Materialize() *vm.Object {
	o := &vm.Object{
		Class:   wo.Class,
		Home:    wo.Ref,
		Status:  1,
		IsArray: wo.IsArray,
		AKind:   wo.AKind,
	}
	if wo.IsArray {
		o.AI = append([]int64(nil), wo.AI...)
		o.AF = append([]float64(nil), wo.AF...)
		o.AB = append([]byte(nil), wo.AB...)
		o.AR = append([]value.Ref(nil), wo.AR...)
	} else {
		o.Fields = append([]value.Value(nil), wo.Fields...)
	}
	return o
}

func encObjectBody(w *wire.Writer, wo *WireObject, prog *bytecode.Program, c Codec) {
	if c == JavaSer {
		javaSerHeader(w, "Object")
		w.String(prog.Classes[wo.Class].Name)
	}
	w.Uvarint(uint64(wo.Ref))
	w.Varint(int64(wo.Class))
	w.Bool(wo.IsArray)
	w.Varint(int64(wo.AKind))
	if wo.IsArray {
		switch wo.AKind {
		case bytecode.ArrKindInt:
			w.Int64Slice(wo.AI)
		case bytecode.ArrKindFloat:
			w.Float64Slice(wo.AF)
		case bytecode.ArrKindByte:
			w.Blob(wo.AB)
		case bytecode.ArrKindRef:
			us := make([]uint64, len(wo.AR))
			for i, rr := range wo.AR {
				us[i] = uint64(rr)
			}
			w.Uint64Slice(us)
		}
		return
	}
	if c == JavaSer {
		cl := prog.Classes[wo.Class]
		w.Uvarint(uint64(len(wo.Fields)))
		for i, fv := range wo.Fields {
			name := "?"
			if i < len(cl.Fields) {
				name = cl.Fields[i].Name
			}
			w.String(name)
			encValue(w, fv, c)
		}
		return
	}
	encValues(w, wo.Fields, c)
}

func decObjectBody(r *wire.Reader, prog *bytecode.Program, c Codec) (WireObject, error) {
	var wo WireObject
	if c == JavaSer {
		if err := javaSerCheck(r, "Object"); err != nil {
			return wo, err
		}
		_ = r.String() // class name (redundant with id)
	}
	wo.Ref = value.Ref(r.Uvarint())
	wo.Class = int32(r.Varint())
	wo.IsArray = r.Bool()
	wo.AKind = int32(r.Varint())
	if wo.IsArray {
		switch wo.AKind {
		case bytecode.ArrKindInt:
			wo.AI = r.Int64Slice()
		case bytecode.ArrKindFloat:
			wo.AF = r.Float64Slice()
		case bytecode.ArrKindByte:
			wo.AB = r.Blob()
		case bytecode.ArrKindRef:
			us := r.Uint64Slice()
			wo.AR = make([]value.Ref, len(us))
			for i, u := range us {
				wo.AR[i] = value.Ref(u)
			}
		}
		return wo, r.Err()
	}
	if c == JavaSer {
		n := r.Uvarint()
		if r.Err() != nil || n > uint64(r.Remaining()) {
			return wo, fmt.Errorf("serial: corrupt field count")
		}
		wo.Fields = make([]value.Value, n)
		for i := range wo.Fields {
			_ = r.String() // field descriptor
			wo.Fields[i] = decValue(r, c)
		}
		return wo, r.Err()
	}
	wo.Fields = decValues(r, c)
	return wo, r.Err()
}

// EncodeObject serializes one wire object.
func EncodeObject(wo *WireObject, prog *bytecode.Program, c Codec) []byte {
	w := wire.NewWriter(64 + int(approxPayload(wo)))
	w.Byte(tagObject)
	encObjectBody(w, wo, prog, c)
	return w.Bytes()
}

// DecodeObject parses one wire object.
func DecodeObject(buf []byte, prog *bytecode.Program, c Codec) (WireObject, error) {
	r := wire.NewReader(buf)
	r.Expect(tagObject)
	return decObjectBody(r, prog, c)
}

func approxPayload(wo *WireObject) int64 {
	return int64(8*len(wo.AI)+8*len(wo.AF)+len(wo.AB)+8*len(wo.AR)) + int64(10*len(wo.Fields))
}

// --- flush ---

// EncodeFlush serializes a flush message.
func EncodeFlush(fm *FlushMessage, prog *bytecode.Program, c Codec) []byte {
	w := wire.NewWriter(256)
	w.Byte(tagFlush)
	if c == JavaSer {
		javaSerHeader(w, "Flush")
	}
	w.Varint(int64(fm.ThreadID))
	w.Bool(fm.HasResult)
	encValue(w, fm.Result, c)
	w.String(fm.Err)
	w.Uvarint(uint64(len(fm.Updated)))
	for i := range fm.Updated {
		encObjectBody(w, &fm.Updated[i], prog, c)
	}
	w.Uvarint(uint64(len(fm.Fresh)))
	for i := range fm.Fresh {
		encObjectBody(w, &fm.Fresh[i], prog, c)
	}
	w.Uvarint(uint64(len(fm.Statics)))
	for _, s := range fm.Statics {
		w.Varint(int64(s.ClassID))
		encValues(w, s.Values, c)
	}
	return w.Bytes()
}

// DecodeFlush parses a flush message.
func DecodeFlush(buf []byte, prog *bytecode.Program, c Codec) (*FlushMessage, error) {
	r := wire.NewReader(buf)
	r.Expect(tagFlush)
	if c == JavaSer {
		if err := javaSerCheck(r, "Flush"); err != nil {
			return nil, err
		}
	}
	fm := &FlushMessage{ThreadID: int32(r.Varint())}
	fm.HasResult = r.Bool()
	fm.Result = decValue(r, c)
	fm.Err = r.String()
	for i, n := 0, int(r.Uvarint()); i < n && r.Err() == nil; i++ {
		wo, err := decObjectBody(r, prog, c)
		if err != nil {
			return nil, err
		}
		fm.Updated = append(fm.Updated, wo)
	}
	for i, n := 0, int(r.Uvarint()); i < n && r.Err() == nil; i++ {
		wo, err := decObjectBody(r, prog, c)
		if err != nil {
			return nil, err
		}
		fm.Fresh = append(fm.Fresh, wo)
	}
	for i, n := 0, int(r.Uvarint()); i < n && r.Err() == nil; i++ {
		s := ClassStatics{ClassID: int32(r.Varint())}
		s.Values = decValues(r, c)
		fm.Statics = append(fm.Statics, s)
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	return fm, nil
}
