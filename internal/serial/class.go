package serial

import (
	"fmt"
	"sort"

	"repro/internal/bytecode"
	"repro/internal/value"
	"repro/internal/wire"
)

// ClassBundle is the unit of on-demand code shipping: one class with the
// full bodies of its methods. The destination decodes it, verifies it
// matches the program it already indexes (ids are deterministic across
// nodes because every node preprocesses the same program), and marks the
// class loaded. The bytes genuinely cross the network, so code-transfer
// time is accounted exactly like the paper's class shipping.
type ClassBundle struct {
	Class   *bytecode.Class
	Methods []*bytecode.Method
}

// EncodeClass serializes class cid of prog with all its method bodies.
func EncodeClass(prog *bytecode.Program, cid int32) []byte {
	c := prog.Classes[cid]
	w := wire.NewWriter(512)
	w.Byte(tagClass)
	w.String(c.Name)
	w.Varint(int64(c.ID))
	w.Varint(int64(c.Super))
	encFields(w, c.Fields)
	encFields(w, c.Statics)
	// Deterministic method order: the bundle's bytes must be identical
	// across encodings so the delta protocol's content hashes can match a
	// repeat shipment of the same class (map iteration order is not).
	names := make([]string, 0, len(c.Methods))
	for name := range c.Methods {
		names = append(names, name)
	}
	sort.Strings(names)
	w.Uvarint(uint64(len(names)))
	for _, name := range names {
		w.String(name)
		w.Varint(int64(c.Methods[name]))
	}
	// Method bodies, in the same order.
	w.Uvarint(uint64(len(names)))
	for _, name := range names {
		encMethod(w, prog.Methods[c.Methods[name]])
	}
	return w.Bytes()
}

// DecodeClass parses a class bundle.
func DecodeClass(buf []byte) (*ClassBundle, error) {
	r := wire.NewReader(buf)
	r.Expect(tagClass)
	c := &bytecode.Class{Methods: make(map[string]int32)}
	c.Name = r.String()
	c.ID = int32(r.Varint())
	c.Super = int32(r.Varint())
	c.Fields = decFields(r)
	c.Statics = decFields(r)
	for i, n := 0, int(r.Uvarint()); i < n && r.Err() == nil; i++ {
		name := r.String()
		c.Methods[name] = int32(r.Varint())
	}
	b := &ClassBundle{Class: c}
	for i, n := 0, int(r.Uvarint()); i < n && r.Err() == nil; i++ {
		m, err := decMethod(r)
		if err != nil {
			return nil, err
		}
		b.Methods = append(b.Methods, m)
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	return b, nil
}

// VerifyAgainst checks the decoded bundle matches the local program's
// class (the destination's "class loading" consistency check).
func (b *ClassBundle) VerifyAgainst(prog *bytecode.Program) error {
	if b.Class.ID < 0 || int(b.Class.ID) >= len(prog.Classes) {
		return fmt.Errorf("serial: class id %d out of range", b.Class.ID)
	}
	local := prog.Classes[b.Class.ID]
	if local.Name != b.Class.Name || local.Super != b.Class.Super ||
		len(local.Fields) != len(b.Class.Fields) || len(local.Statics) != len(b.Class.Statics) {
		return fmt.Errorf("serial: class %q does not match local definition", b.Class.Name)
	}
	for _, m := range b.Methods {
		if m.ID < 0 || int(m.ID) >= len(prog.Methods) {
			return fmt.Errorf("serial: method id %d out of range", m.ID)
		}
		lm := prog.Methods[m.ID]
		if lm.Name != m.Name || len(lm.Code) != len(m.Code) {
			return fmt.Errorf("serial: method %q does not match local definition", m.Name)
		}
		for i := range m.Code {
			if m.Code[i] != lm.Code[i] {
				return fmt.Errorf("serial: method %q code diverges at pc %d", m.Name, i)
			}
		}
	}
	return nil
}

func encFields(w *wire.Writer, fs []bytecode.Field) {
	w.Uvarint(uint64(len(fs)))
	for _, f := range fs {
		w.String(f.Name)
		w.Byte(byte(f.Kind))
	}
}

func decFields(r *wire.Reader) []bytecode.Field {
	n := r.Uvarint()
	if r.Err() != nil || n > uint64(r.Remaining()) {
		return nil
	}
	fs := make([]bytecode.Field, n)
	for i := range fs {
		fs[i].Name = r.String()
		fs[i].Kind = value.Kind(r.Byte())
	}
	return fs
}

func encMethod(w *wire.Writer, m *bytecode.Method) {
	w.String(m.Name)
	w.Varint(int64(m.ID))
	w.Varint(int64(m.ClassID))
	w.Varint(int64(m.NArgs))
	w.Varint(int64(m.NLocals))
	w.Varint(int64(m.MaxStack))
	w.Bool(m.ReturnsValue)
	w.Bool(m.Virtual)
	w.Uvarint(uint64(len(m.Code)))
	for _, ins := range m.Code {
		w.Byte(byte(ins.Op))
		w.Varint(int64(ins.A))
		w.Varint(int64(ins.B))
	}
	w.Uvarint(uint64(len(m.Consts)))
	for _, cv := range m.Consts {
		encValue(w, cv, Fast)
	}
	w.Uvarint(uint64(len(m.Strings)))
	for _, s := range m.Strings {
		w.String(s)
	}
	w.Uvarint(uint64(len(m.Except)))
	for _, ex := range m.Except {
		w.Varint(int64(ex.From))
		w.Varint(int64(ex.To))
		w.Varint(int64(ex.Handler))
		w.Varint(int64(ex.ClassID))
	}
	w.Uvarint(uint64(len(m.Lines)))
	for _, le := range m.Lines {
		w.Varint(int64(le.PC))
		w.Varint(int64(le.Line))
	}
	w.Uvarint(uint64(len(m.Switches)))
	for _, sw := range m.Switches {
		enc32s(w, sw.Keys)
		enc32s(w, sw.Targets)
		w.Varint(int64(sw.Default))
	}
	enc32s(w, m.MSPs)
}

func decMethod(r *wire.Reader) (*bytecode.Method, error) {
	m := &bytecode.Method{}
	m.Name = r.String()
	m.ID = int32(r.Varint())
	m.ClassID = int32(r.Varint())
	m.NArgs = int(r.Varint())
	m.NLocals = int(r.Varint())
	m.MaxStack = int(r.Varint())
	m.ReturnsValue = r.Bool()
	m.Virtual = r.Bool()
	nc := r.Uvarint()
	if r.Err() != nil || nc > uint64(r.Remaining()) {
		return nil, fmt.Errorf("serial: corrupt code length")
	}
	m.Code = make([]bytecode.Instr, nc)
	for i := range m.Code {
		m.Code[i].Op = bytecode.Op(r.Byte())
		m.Code[i].A = int32(r.Varint())
		m.Code[i].B = int32(r.Varint())
	}
	for i, n := 0, int(r.Uvarint()); i < n && r.Err() == nil; i++ {
		m.Consts = append(m.Consts, decValue(r, Fast))
	}
	for i, n := 0, int(r.Uvarint()); i < n && r.Err() == nil; i++ {
		m.Strings = append(m.Strings, r.String())
	}
	for i, n := 0, int(r.Uvarint()); i < n && r.Err() == nil; i++ {
		m.Except = append(m.Except, bytecode.ExRange{
			From: int32(r.Varint()), To: int32(r.Varint()),
			Handler: int32(r.Varint()), ClassID: int32(r.Varint()),
		})
	}
	for i, n := 0, int(r.Uvarint()); i < n && r.Err() == nil; i++ {
		m.Lines = append(m.Lines, bytecode.LineEntry{PC: int32(r.Varint()), Line: int32(r.Varint())})
	}
	for i, n := 0, int(r.Uvarint()); i < n && r.Err() == nil; i++ {
		m.Switches = append(m.Switches, bytecode.SwitchTable{
			Keys: dec32s(r), Targets: dec32s(r), Default: int32(r.Varint()),
		})
	}
	m.MSPs = dec32s(r)
	if err := r.Err(); err != nil {
		return nil, err
	}
	m.BuildMSPSet()
	return m, nil
}

func enc32s(w *wire.Writer, vs []int32) {
	w.Uvarint(uint64(len(vs)))
	for _, v := range vs {
		w.Varint(int64(v))
	}
}

func dec32s(r *wire.Reader) []int32 {
	n := r.Uvarint()
	if r.Err() != nil || n > uint64(r.Remaining()) {
		return nil
	}
	vs := make([]int32, n)
	for i := range vs {
		vs[i] = int32(r.Varint())
	}
	return vs
}
