package serial_test

import (
	"testing"
	"testing/quick"

	"repro/internal/asm"
	"repro/internal/bytecode"
	"repro/internal/preprocess"
	"repro/internal/serial"
	"repro/internal/value"
	"repro/internal/vm"
	"repro/internal/workloads"
)

func testProgram() *bytecode.Program {
	pb := asm.NewProgram()
	c := pb.Class("Box", "")
	c.Field("v", value.KindInt)
	c.Field("next", value.KindRef)
	c.Static("count", value.KindInt)
	m := c.Method("get", true)
	m.Line().Load("this").GetF("Box", "v").RetV()
	mb := pb.Func("main", true)
	mb.Line().New("Box").CallV("get", 1).RetV()
	return pb.MustBuild()
}

func TestJavaSerIsLargerAndSelfDescribing(t *testing.T) {
	prog := testProgram()
	cs := &serial.CapturedState{
		HomeNode: 1, ThreadID: 5,
		Frames: []serial.CapturedFrame{{
			MethodID: prog.MethodByName("main"), PC: 0, ResumePC: 0,
			Locals: []value.Value{value.Int(1), value.Float(2), value.Null()},
		}},
		Statics: []serial.ClassStatics{{ClassID: prog.ClassByName("Box"), Values: []value.Value{value.Int(3)}}},
	}
	fast := serial.EncodeCapturedState(cs, prog, serial.Fast)
	java := serial.EncodeCapturedState(cs, prog, serial.JavaSer)
	if len(java) <= len(fast)*2 {
		t.Errorf("javaser (%dB) should be much larger than fast (%dB)", len(java), len(fast))
	}
	for _, c := range []serial.Codec{serial.Fast, serial.JavaSer} {
		buf := serial.EncodeCapturedState(cs, prog, c)
		got, err := serial.DecodeCapturedState(buf, prog, c)
		if err != nil {
			t.Fatalf("%v: %v", c, err)
		}
		if len(got.Frames) != 1 || len(got.Frames[0].Locals) != 3 {
			t.Fatalf("%v: bad decode %+v", c, got)
		}
		if !got.Frames[0].Locals[1].Equal(value.Float(2)) {
			t.Errorf("%v: locals mismatch", c)
		}
		if got.Statics[0].Values[0].I != 3 {
			t.Errorf("%v: statics mismatch", c)
		}
	}
}

func TestObjectRoundTripBothCodecs(t *testing.T) {
	prog := testProgram()
	h := vm.NewHeap(3)
	cid := prog.ClassByName("Box")
	ref, _ := h.Alloc(cid, 2)
	o := h.MustGet(ref)
	o.Fields[0] = value.Int(42)
	o.Fields[1] = value.RefVal(value.MakeRef(3, 99))

	for _, c := range []serial.Codec{serial.Fast, serial.JavaSer} {
		wo := serial.SnapshotObject(ref, o)
		buf := serial.EncodeObject(&wo, prog, c)
		got, err := serial.DecodeObject(buf, prog, c)
		if err != nil {
			t.Fatalf("%v: %v", c, err)
		}
		if got.Ref != ref || got.Class != cid {
			t.Errorf("%v: identity lost", c)
		}
		if got.Fields[0].I != 42 || got.Fields[1].R != value.MakeRef(3, 99) {
			t.Errorf("%v: fields lost: %+v", c, got.Fields)
		}
		m := got.Materialize()
		if m.Home != ref || m.Status != 1 {
			t.Errorf("%v: materialized copy should be a valid cached copy", c)
		}
	}
}

func TestArrayObjectsAllKinds(t *testing.T) {
	prog := testProgram()
	h := vm.NewHeap(2)
	objCls := prog.ClassByName(bytecode.ClassObject)
	mk := func(kind int32, n int) value.Ref {
		r, err := h.AllocArray(objCls, kind, n)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	ri := mk(bytecode.ArrKindInt, 3)
	h.MustGet(ri).AI[1] = -7
	rf := mk(bytecode.ArrKindFloat, 2)
	h.MustGet(rf).AF[0] = 1.5
	rb := mk(bytecode.ArrKindByte, 4)
	h.MustGet(rb).AB[3] = 0xEE
	rr := mk(bytecode.ArrKindRef, 2)
	h.MustGet(rr).AR[1] = value.MakeRef(2, 1)

	for _, ref := range []value.Ref{ri, rf, rb, rr} {
		for _, c := range []serial.Codec{serial.Fast, serial.JavaSer} {
			wo := serial.SnapshotObject(ref, h.MustGet(ref))
			got, err := serial.DecodeObject(serial.EncodeObject(&wo, prog, c), prog, c)
			if err != nil {
				t.Fatalf("%v %v: %v", ref, c, err)
			}
			if got.IsArray != true || got.AKind != h.MustGet(ref).AKind {
				t.Errorf("array metadata lost")
			}
		}
	}
}

func TestFlushRoundTrip(t *testing.T) {
	prog := testProgram()
	fm := &serial.FlushMessage{
		ThreadID: 9, HasResult: true, Result: value.Int(1234), Err: "",
		Updated: []serial.WireObject{{Ref: value.MakeRef(1, 1), Class: prog.ClassByName("Box"),
			Fields: []value.Value{value.Int(5), value.Null()}}},
		Fresh: []serial.WireObject{{Ref: value.MakeRef(2, 7), Class: prog.ClassByName("Box"),
			Fields: []value.Value{value.Int(6), value.Null()}}},
		Statics: []serial.ClassStatics{{ClassID: prog.ClassByName("Box"), Values: []value.Value{value.Int(1)}}},
	}
	for _, c := range []serial.Codec{serial.Fast, serial.JavaSer} {
		got, err := serial.DecodeFlush(serial.EncodeFlush(fm, prog, c), prog, c)
		if err != nil {
			t.Fatalf("%v: %v", c, err)
		}
		if got.Result.I != 1234 || len(got.Updated) != 1 || len(got.Fresh) != 1 || len(got.Statics) != 1 {
			t.Errorf("%v: %+v", c, got)
		}
	}
}

func TestFlushCarriesError(t *testing.T) {
	prog := testProgram()
	fm := &serial.FlushMessage{Err: "uncaught ArithmeticException"}
	got, err := serial.DecodeFlush(serial.EncodeFlush(fm, prog, serial.Fast), prog, serial.Fast)
	if err != nil {
		t.Fatal(err)
	}
	if got.Err != fm.Err {
		t.Errorf("error string lost: %q", got.Err)
	}
}

func TestQuickCapturedStateRoundTrip(t *testing.T) {
	prog := testProgram()
	mid := prog.MethodByName("main")
	f := func(ints []int64, floats []float64, pc uint16, pinned bool) bool {
		var locals []value.Value
		for _, i := range ints {
			locals = append(locals, value.Int(i))
		}
		for _, fl := range floats {
			locals = append(locals, value.Float(fl))
		}
		cs := &serial.CapturedState{
			HomeNode: 4, ThreadID: 2,
			Frames: []serial.CapturedFrame{{MethodID: mid, PC: int32(pc), ResumePC: int32(pc), Locals: locals, Pinned: pinned}},
		}
		for _, c := range []serial.Codec{serial.Fast, serial.JavaSer} {
			got, err := serial.DecodeCapturedState(serial.EncodeCapturedState(cs, prog, c), prog, c)
			if err != nil {
				return false
			}
			g := got.Frames[0]
			if g.PC != int32(pc) || g.Pinned != pinned || len(g.Locals) != len(locals) {
				return false
			}
			for i := range locals {
				if !g.Locals[i].Equal(locals[i]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestCapturedStateCarriesHopMetadata: the hop count and visit trace
// added for multi-hop re-balancing survive both codecs, and the wire cap
// keeps the newest visits when the trace overflows.
func TestCapturedStateCarriesHopMetadata(t *testing.T) {
	prog := testProgram()
	mid := prog.MethodByName("main")
	cs := &serial.CapturedState{
		HomeNode: 1, ThreadID: 3, Hops: 2,
		Frames:  []serial.CapturedFrame{{MethodID: mid, PC: 0, ResumePC: 0}},
		Visited: []serial.Visit{{Node: 1, AgeNanos: 2000}, {Node: 4, AgeNanos: 1000}},
	}
	for _, c := range []serial.Codec{serial.Fast, serial.JavaSer} {
		got, err := serial.DecodeCapturedState(serial.EncodeCapturedState(cs, prog, c), prog, c)
		if err != nil {
			t.Fatalf("%v: %v", c, err)
		}
		if got.Hops != 2 {
			t.Errorf("%v: hops = %d, want 2", c, got.Hops)
		}
		if len(got.Visited) != 2 || got.Visited[0] != cs.Visited[0] || got.Visited[1] != cs.Visited[1] {
			t.Errorf("%v: visited = %+v, want %+v", c, got.Visited, cs.Visited)
		}
	}

	// Overflow: only the MaxVisits newest entries ship (they are appended
	// oldest-first — descending age — so the tail survives).
	for i := 0; i < serial.MaxVisits+3; i++ {
		cs.Visited = append(cs.Visited, serial.Visit{Node: int32(10 + i), AgeNanos: int64(900 - i)})
	}
	got, err := serial.DecodeCapturedState(serial.EncodeCapturedState(cs, prog, serial.Fast), prog, serial.Fast)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Visited) != serial.MaxVisits {
		t.Fatalf("visited after overflow = %d entries, want %d", len(got.Visited), serial.MaxVisits)
	}
	if newest := got.Visited[len(got.Visited)-1]; newest != cs.Visited[len(cs.Visited)-1] {
		t.Errorf("overflow dropped the newest visit: %+v", newest)
	}
}

func TestDecodeCorruptData(t *testing.T) {
	prog := testProgram()
	if _, err := serial.DecodeCapturedState([]byte{0x00}, prog, serial.Fast); err == nil {
		t.Error("bad tag should fail")
	}
	if _, err := serial.DecodeObject([]byte{0xC2, 0xFF}, prog, serial.Fast); err == nil {
		t.Error("truncated object should fail")
	}
	if _, err := serial.DecodeFlush(nil, prog, serial.Fast); err == nil {
		t.Error("empty flush should fail")
	}
}

// --- class bundles ---

func TestClassBundleRoundTripAndVerify(t *testing.T) {
	w := workloads.TSP()
	prog := preprocess.MustPreprocess(w.Prog, preprocess.Options{Mode: preprocess.ModeFaulting, Restore: true})
	for cid := range prog.Classes {
		buf := serial.EncodeClass(prog, int32(cid))
		bundle, err := serial.DecodeClass(buf)
		if err != nil {
			t.Fatalf("class %d: %v", cid, err)
		}
		if bundle.Class.Name != prog.Classes[cid].Name {
			t.Errorf("class %d name mismatch", cid)
		}
		if err := bundle.VerifyAgainst(prog); err != nil {
			t.Errorf("class %d: verify: %v", cid, err)
		}
	}
}

func TestClassBundleDetectsTamperedCode(t *testing.T) {
	prog := testProgram()
	cid := prog.ClassByName("Box")
	buf := serial.EncodeClass(prog, cid)
	bundle, err := serial.DecodeClass(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(bundle.Methods) == 0 {
		t.Skip("no methods on class")
	}
	bundle.Methods[0].Code[0].Op = bytecode.OpNop
	if err := bundle.VerifyAgainst(prog); err == nil {
		t.Error("tampered code should fail verification")
	}
}
