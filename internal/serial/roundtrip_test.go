package serial_test

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/asm"
	"repro/internal/bytecode"
	"repro/internal/serial"
	"repro/internal/value"
)

// rtProgram builds a program with two classes (both with statics) so the
// round-trip table can exercise multi-class, allStatics-style captures.
func rtProgram() *bytecode.Program {
	pb := asm.NewProgram()
	c := pb.Class("Box", "")
	c.Field("v", value.KindInt)
	c.Static("count", value.KindInt)
	m := c.Method("get", true)
	m.Line().Load("this").GetF("Box", "v").RetV()
	d := pb.Class("Pair", "")
	d.Field("a", value.KindInt)
	d.Static("seen", value.KindInt)
	d.Static("last", value.KindRef)
	dm := d.Method("sum", true)
	dm.Line().Load("this").GetF("Pair", "a").RetV()
	mb := pb.Func("main", true)
	mb.Line().New("Box").CallV("get", 1).RetV()
	return pb.MustBuild()
}

// diffCapturedState compares two states field by field, treating nil and
// empty slices as equal (the decoder returns nil for zero-length
// sequences). It returns a description of the first mismatch, or "".
func diffCapturedState(a, b *serial.CapturedState) string {
	if a.HomeNode != b.HomeNode {
		return fmt.Sprintf("HomeNode %d != %d", a.HomeNode, b.HomeNode)
	}
	if a.ThreadID != b.ThreadID {
		return fmt.Sprintf("ThreadID %d != %d", a.ThreadID, b.ThreadID)
	}
	if len(a.Frames) != len(b.Frames) {
		return fmt.Sprintf("frame count %d != %d", len(a.Frames), len(b.Frames))
	}
	for i := range a.Frames {
		if d := diffFrame(a.Frames[i], b.Frames[i]); d != "" {
			return fmt.Sprintf("frame %d: %s", i, d)
		}
	}
	if len(a.Statics) != len(b.Statics) {
		return fmt.Sprintf("statics count %d != %d", len(a.Statics), len(b.Statics))
	}
	for i := range a.Statics {
		if d := diffStatics(a.Statics[i], b.Statics[i]); d != "" {
			return fmt.Sprintf("statics %d: %s", i, d)
		}
	}
	if len(a.AllocHints) != len(b.AllocHints) {
		return fmt.Sprintf("alloc hints %d != %d", len(a.AllocHints), len(b.AllocHints))
	}
	for i := range a.AllocHints {
		if a.AllocHints[i] != b.AllocHints[i] {
			return fmt.Sprintf("alloc hint %d: %+v != %+v", i, a.AllocHints[i], b.AllocHints[i])
		}
	}
	if a.Hops != b.Hops {
		return fmt.Sprintf("hops %d != %d", a.Hops, b.Hops)
	}
	if len(a.Visited) != len(b.Visited) {
		return fmt.Sprintf("visited count %d != %d", len(a.Visited), len(b.Visited))
	}
	for i := range a.Visited {
		if a.Visited[i] != b.Visited[i] {
			return fmt.Sprintf("visit %d: %+v != %+v", i, a.Visited[i], b.Visited[i])
		}
	}
	return ""
}

func diffFrame(a, b serial.CapturedFrame) string {
	if a.MethodID != b.MethodID {
		return fmt.Sprintf("method %d != %d", a.MethodID, b.MethodID)
	}
	if a.PC != b.PC {
		return fmt.Sprintf("pc %d != %d", a.PC, b.PC)
	}
	if a.ResumePC != b.ResumePC {
		return fmt.Sprintf("resume pc %d != %d", a.ResumePC, b.ResumePC)
	}
	if a.Pinned != b.Pinned {
		return fmt.Sprintf("pinned %v != %v", a.Pinned, b.Pinned)
	}
	if len(a.Locals) != len(b.Locals) {
		return fmt.Sprintf("locals count %d != %d", len(a.Locals), len(b.Locals))
	}
	for i := range a.Locals {
		if !a.Locals[i].Equal(b.Locals[i]) {
			return fmt.Sprintf("local %d: %v != %v", i, a.Locals[i], b.Locals[i])
		}
	}
	return ""
}

func diffStatics(a, b serial.ClassStatics) string {
	if a.ClassID != b.ClassID {
		return fmt.Sprintf("class %d != %d", a.ClassID, b.ClassID)
	}
	if len(a.Values) != len(b.Values) {
		return fmt.Sprintf("values count %d != %d", len(a.Values), len(b.Values))
	}
	for i := range a.Values {
		if !a.Values[i].Equal(b.Values[i]) {
			return fmt.Sprintf("value %d: %v != %v", i, a.Values[i], b.Values[i])
		}
	}
	return ""
}

// TestCapturedStateRoundTripTable pins the encode/decode edge cases the
// migration fast path leans on: zero-frame states (residual-only
// captures), pinned-frame-only tails, allStatics-style multi-class
// captures, and the trailing alloc-hint/hops/visit metadata. Every case
// must survive both codecs with a field-by-field diff.
func TestCapturedStateRoundTripTable(t *testing.T) {
	prog := rtProgram()
	mainID := prog.MethodByName("main")
	getID := prog.MethodByName("Box.get")
	if getID < 0 {
		getID = prog.MethodByName("get")
	}
	boxID := prog.ClassByName("Box")
	pairID := prog.ClassByName("Pair")

	cases := []struct {
		name string
		cs   *serial.CapturedState
	}{
		{
			name: "empty",
			cs:   &serial.CapturedState{HomeNode: 1, ThreadID: 2},
		},
		{
			// A residual-only capture ships statics but no frames: the
			// frame loop must encode a clean zero count, not choke.
			name: "zero frames with statics",
			cs: &serial.CapturedState{
				HomeNode: 1, ThreadID: 3,
				Statics: []serial.ClassStatics{
					{ClassID: boxID, Values: []value.Value{value.Int(7)}},
				},
			},
		},
		{
			// A tail whose every frame is pinned: the pinned bit must
			// round-trip per frame, not get lost after the first.
			name: "pinned-only tail",
			cs: &serial.CapturedState{
				HomeNode: 2, ThreadID: 4,
				Frames: []serial.CapturedFrame{
					{MethodID: mainID, PC: 0, ResumePC: 1, Pinned: true,
						Locals: []value.Value{value.Int(1)}},
					{MethodID: getID, PC: 0, ResumePC: 0, Pinned: true,
						Locals: []value.Value{value.Null(), value.Float(2.5)}},
				},
			},
		},
		{
			name: "frame with no locals",
			cs: &serial.CapturedState{
				HomeNode: 1, ThreadID: 5,
				Frames: []serial.CapturedFrame{{MethodID: mainID, PC: 0, ResumePC: 0}},
			},
		},
		{
			// allStatics-style: every class's statics ride along, some with
			// refs, plus the eager-alloc hints the device restore consumes.
			name: "all statics with hints",
			cs: &serial.CapturedState{
				HomeNode: 3, ThreadID: 6,
				Frames: []serial.CapturedFrame{{MethodID: mainID, PC: 0, ResumePC: 0,
					Locals: []value.Value{value.Int(-9), value.RefVal(value.MakeRef(3, 12))}}},
				Statics: []serial.ClassStatics{
					{ClassID: boxID, Values: []value.Value{value.Int(41)}},
					{ClassID: pairID, Values: []value.Value{value.Int(8), value.RefVal(value.MakeRef(1, 2))}},
				},
				AllocHints: []serial.AllocHint{
					{Kind: bytecode.ArrKindInt, Len: 128},
					{Kind: bytecode.ArrKindFloat, Len: 64},
				},
				Hops: 3,
				Visited: []serial.Visit{
					{Node: 1, AgeNanos: 1_000_000},
					{Node: 2, AgeNanos: 500},
				},
			},
		},
		{
			name: "empty statics values",
			cs: &serial.CapturedState{
				HomeNode: 1, ThreadID: 7,
				Statics: []serial.ClassStatics{{ClassID: boxID}},
			},
		},
	}

	for _, tc := range cases {
		for _, codec := range []serial.Codec{serial.Fast, serial.JavaSer} {
			t.Run(fmt.Sprintf("%s/%v", tc.name, codec), func(t *testing.T) {
				buf := serial.EncodeCapturedState(tc.cs, prog, codec)
				got, err := serial.DecodeCapturedState(buf, prog, codec)
				if err != nil {
					t.Fatal(err)
				}
				if d := diffCapturedState(tc.cs, got); d != "" {
					t.Fatalf("round-trip mismatch: %s", d)
				}
				// Determinism: re-encoding the same state must reproduce
				// the same bytes — the delta path's content hashes depend
				// on it.
				if again := serial.EncodeCapturedState(tc.cs, prog, codec); !bytes.Equal(buf, again) {
					t.Fatal("encoding is not deterministic")
				}
			})
		}
	}
}

// TestFrameUnitRoundTrip: the standalone frame unit (what the delta path
// hashes) must round-trip and must encode byte-identically to the frame's
// inline form inside a CapturedState.
func TestFrameUnitRoundTrip(t *testing.T) {
	prog := rtProgram()
	mainID := prog.MethodByName("main")
	f := serial.CapturedFrame{
		MethodID: mainID, PC: 0, ResumePC: 1, Pinned: true,
		Locals: []value.Value{value.Int(11), value.Float(0.5), value.RefVal(value.MakeRef(2, 3))},
	}
	for _, codec := range []serial.Codec{serial.Fast, serial.JavaSer} {
		unit := serial.EncodeFrame(&f, prog, codec)
		got, err := serial.DecodeFrame(unit, prog, codec)
		if err != nil {
			t.Fatalf("%v: %v", codec, err)
		}
		if d := diffFrame(f, got); d != "" {
			t.Fatalf("%v: %s", codec, d)
		}
		if h1, h2 := serial.Hash64(unit), serial.Hash64(serial.EncodeFrame(&f, prog, codec)); h1 != h2 {
			t.Fatalf("%v: hash not stable", codec)
		}
	}
	// A one-bit change in a local must change the unit hash.
	g := f
	g.Locals = append([]value.Value(nil), f.Locals...)
	g.Locals[0] = value.Int(12)
	if serial.Hash64(serial.EncodeFrame(&f, prog, serial.Fast)) ==
		serial.Hash64(serial.EncodeFrame(&g, prog, serial.Fast)) {
		t.Fatal("distinct frames hashed equal")
	}
}

// TestClassStaticsUnitRoundTrip mirrors TestFrameUnitRoundTrip for the
// statics unit.
func TestClassStaticsUnitRoundTrip(t *testing.T) {
	prog := rtProgram()
	s := serial.ClassStatics{
		ClassID: prog.ClassByName("Pair"),
		Values:  []value.Value{value.Int(-3), value.RefVal(value.MakeRef(1, 9))},
	}
	for _, codec := range []serial.Codec{serial.Fast, serial.JavaSer} {
		unit := serial.EncodeClassStatics(&s, prog, codec)
		got, err := serial.DecodeClassStatics(unit, prog, codec)
		if err != nil {
			t.Fatalf("%v: %v", codec, err)
		}
		if d := diffStatics(s, got); d != "" {
			t.Fatalf("%v: %s", codec, d)
		}
	}
}
