// Package objman implements the object manager of §III: the component that
// brings remote objects to the local heap on demand ("heap-on-demand"),
// serves object requests on the home side, tracks dirty cached copies, and
// flushes execution results home when a migrated segment completes.
//
// The destination side is driven entirely by the preprocessor-injected
// code: a dereference of a remote reference raises RemoteAccessFault, the
// injected fault handler (or failed status check) calls the sod_bringObj
// native, and BringObj either hits the local cache or performs one RPC to
// the owner node. Fetched objects are shallow: their reference fields
// still carry home references, so nested structures fault in lazily, level
// by level — transferring exactly what the computation touches.
package objman

import (
	"fmt"
	"sync"

	"repro/internal/bytecode"
	"repro/internal/netsim"
	"repro/internal/serial"
	"repro/internal/value"
	"repro/internal/vm"
	"repro/internal/wire"
)

// Stats counts object-manager activity.
type Stats struct {
	Fetches       int   // remote fetch RPCs issued
	CacheHits     int   // faults satisfied from the local cache
	LocalHits     int   // bringObj on already-local refs (no-ops)
	BytesFetched  int64 // payload bytes brought in
	Flushes       int
	BytesFlushed  int64
	ObjectsServed int // home-side requests answered
}

// Manager is one node's object manager. A node uses the same manager for
// both roles: server of its own heap, cache for remote objects.
type Manager struct {
	VM    *vm.VM
	Prog  *bytecode.Program
	EP    netsim.Transport
	Codec serial.Codec

	mu    sync.Mutex
	cache map[value.Ref]value.Ref // home ref -> local cached ref
	Stats Stats
	// fetchesBy counts remote fetches by owner node — the fault-locality
	// signal the offload policies read: a job whose faults concentrate on
	// one peer is touching data mastered there.
	fetchesBy map[int]int64
}

// New creates a manager and registers the home-side request handler on ep.
func New(v *vm.VM, prog *bytecode.Program, ep netsim.Transport, codec serial.Codec) *Manager {
	m := &Manager{VM: v, Prog: prog, EP: ep, Codec: codec,
		cache: make(map[value.Ref]value.Ref), fetchesBy: make(map[int]int64)}
	ep.Handle(netsim.KindObjectRequest, m.serveObject)
	return m
}

// BindNatives wires the preprocessor's helper natives into v. (The restore
// natives live in the sodee runtime; this binds only bringObj.)
func (m *Manager) BindNatives(v *vm.VM) {
	v.BindNativeIfDeclared("sod_bringObj", m.BringObj)
}

// ResetCache drops all cached copies (worker reuse between jobs).
func (m *Manager) ResetCache() {
	m.mu.Lock()
	m.cache = make(map[value.Ref]value.Ref)
	m.mu.Unlock()
}

// BringObj is the sod_bringObj native: resolve a reference to a local,
// usable reference, fetching from the owner node when needed. A true null
// re-raises as an application NullPointerException (§III.C's
// disambiguation rule).
func (m *Manager) BringObj(t *vm.Thread, args []value.Value) (value.Value, *vm.Raised) {
	r := args[0]
	if r.Kind != value.KindRef {
		return r, nil // primitive: nothing to bring
	}
	if r.R == value.NullRef {
		return value.Value{}, &vm.Raised{ExClass: bytecode.ExNullPointer, Message: "null object at home"}
	}
	if m.VM.Heap.IsLocal(r.R) {
		m.mu.Lock()
		m.Stats.LocalHits++
		m.mu.Unlock()
		return r, nil
	}
	local, raised := m.Fetch(r.R)
	if raised != nil {
		return value.Value{}, raised
	}
	return value.RefVal(local), nil
}

// Fetch returns a local cached copy of the remote object ref, fetching it
// from its owner node on a cache miss.
func (m *Manager) Fetch(ref value.Ref) (value.Ref, *vm.Raised) {
	m.mu.Lock()
	if local, ok := m.cache[ref.Unstub()]; ok {
		m.Stats.CacheHits++
		m.mu.Unlock()
		return local, nil
	}
	m.mu.Unlock()

	req := wire.NewWriter(16)
	req.Byte(byte(m.Codec)) // reply must come back in our codec
	req.Uvarint(uint64(ref.Unstub()))
	reply, err := m.EP.Call(ref.Node(), netsim.KindObjectRequest, req.Bytes())
	if err != nil {
		return value.NullRef, &vm.Raised{ExClass: bytecode.ExIllegalState, Message: "object fetch: " + err.Error()}
	}
	wo, derr := serial.DecodeObject(reply, m.Prog, m.Codec)
	if derr != nil {
		return value.NullRef, &vm.Raised{ExClass: bytecode.ExIllegalState, Message: "object decode: " + derr.Error()}
	}
	// Deserializing an instance loads its class (fetching the class file
	// from the home node when this VM is cold) — as in Java.
	if lerr := m.VM.EnsureLoaded(wo.Class); lerr != nil {
		return value.NullRef, &vm.Raised{ExClass: bytecode.ExClassNotFound, Message: lerr.Error()}
	}
	obj := wo.Materialize()
	local, aerr := m.VM.Heap.Adopt(obj)
	if aerr != nil {
		return value.NullRef, &vm.Raised{ExClass: bytecode.ExOutOfMemory, Message: "adopting fetched object"}
	}
	m.mu.Lock()
	m.cache[ref.Unstub()] = local
	m.Stats.Fetches++
	m.Stats.BytesFetched += int64(len(reply))
	m.fetchesBy[ref.Node()]++
	m.mu.Unlock()
	return local, nil
}

// HomeRef rewrites a reference to a locally cached copy into the home
// reference it mirrors; every other value passes through. Migration uses
// it on captured locals and statics so a stack that hops onward keeps
// faulting objects from their true masters, never from an intermediate
// node's cache (which may be gone by the time the next hop runs).
func (m *Manager) HomeRef(v value.Value) value.Value {
	if v.Kind != value.KindRef || v.R == value.NullRef {
		return v
	}
	if o := m.VM.Heap.Get(v.R); o != nil && o.Home != value.NullRef {
		return value.RefVal(o.Home)
	}
	return v
}

// StatsSnapshot returns a consistent copy of the counters, safe to read
// while threads are faulting.
func (m *Manager) StatsSnapshot() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.Stats
}

// FetchesByOwner returns a copy of the per-owner fetch counts.
func (m *Manager) FetchesByOwner() map[int]int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[int]int64, len(m.fetchesBy))
	for n, c := range m.fetchesBy {
		out[n] = c
	}
	return out
}

// serveObject is the home-side handler: snapshot the requested local
// object shallowly and ship it.
func (m *Manager) serveObject(from int, payload []byte) ([]byte, error) {
	r := wire.NewReader(payload)
	codec := serial.Codec(r.Byte()) // requester's codec
	ref := value.Ref(r.Uvarint())
	if err := r.Err(); err != nil {
		return nil, err
	}
	o := m.VM.Heap.Get(ref)
	if o == nil {
		return nil, fmt.Errorf("objman: node %d has no object %v", m.EP.NodeID(), ref)
	}
	wo := serial.SnapshotObject(ref, o)
	m.mu.Lock()
	m.Stats.ObjectsServed++
	m.mu.Unlock()
	return serial.EncodeObject(&wo, m.Prog, codec), nil
}

// --- flush: shipping results and updates home ---

// flusher owns one flush collection pass; translate/snapshot share state.
type flusher struct {
	m       *Manager
	visited map[value.Ref]bool
	queue   []value.Ref
}

func (m *Manager) newFlusher() *flusher {
	return &flusher{m: m, visited: make(map[value.Ref]bool)}
}

// enqueue schedules a locally allocated (fresh) object for shipping.
func (f *flusher) enqueue(rv value.Ref) {
	if rv == value.NullRef || rv.Node() != f.m.VM.Heap.Node() || f.visited[rv] {
		return
	}
	f.visited[rv] = true
	f.queue = append(f.queue, rv)
}

// translate rewrites a reference for a remote consumer: cached copies
// become their home refs; fresh local objects keep their local refs (the
// consumer re-homes them via the Fresh table); remote refs pass through.
func (f *flusher) translate(v value.Value) value.Value {
	if v.Kind != value.KindRef || v.R == value.NullRef {
		return v
	}
	if o := f.m.VM.Heap.Get(v.R); o != nil {
		if o.Home != value.NullRef {
			return value.RefVal(o.Home)
		}
		f.enqueue(v.R)
	}
	return v
}

func (f *flusher) snapshot(ref value.Ref, o *vm.Object, asHome bool) serial.WireObject {
	wo := serial.SnapshotObject(ref, o)
	if asHome {
		wo.Ref = o.Home
	}
	for i := range wo.Fields {
		wo.Fields[i] = f.translate(wo.Fields[i])
	}
	for i := range wo.AR {
		wo.AR[i] = f.translate(value.RefVal(wo.AR[i])).R
	}
	return wo
}

// drainFresh appends the transitive closure of enqueued fresh objects.
func (f *flusher) drainFresh(fm *serial.FlushMessage) {
	for len(f.queue) > 0 {
		ref := f.queue[0]
		f.queue = f.queue[1:]
		o := f.m.VM.Heap.MustGet(ref)
		fm.Fresh = append(fm.Fresh, f.snapshot(ref, o, false))
	}
}

// CollectUpdates gathers dirty cached copies grouped by the node that
// masters them ("updated data will be sent back to the home node,
// reflected in its heap" — §II.A), plus modified statics destined for
// staticsHome (< 0 skips statics). Fresh objects referenced from updates
// ride along in the same message and are re-homed by the receiver.
func (m *Manager) CollectUpdates(staticsHome int) map[int]*serial.FlushMessage {
	out := make(map[int]*serial.FlushMessage)
	get := func(node int) *serial.FlushMessage {
		fm := out[node]
		if fm == nil {
			fm = &serial.FlushMessage{}
			out[node] = fm
		}
		return fm
	}
	flushers := make(map[int]*flusher)
	fl := func(node int) *flusher {
		f := flushers[node]
		if f == nil {
			f = m.newFlusher()
			flushers[node] = f
		}
		return f
	}

	m.VM.Heap.ForEach(func(ref value.Ref, o *vm.Object) bool {
		if o.Home != value.NullRef && o.Dirty {
			home := o.Home.Node()
			fm := get(home)
			fm.Updated = append(fm.Updated, fl(home).snapshot(ref, o, true))
			o.Dirty = false
		}
		return true
	})
	if staticsHome >= 0 {
		for cid, dirty := range m.VM.StaticsDirty {
			if !dirty {
				continue
			}
			f := fl(staticsHome)
			vals := make([]value.Value, len(m.VM.Statics[cid]))
			for i, sv := range m.VM.Statics[cid] {
				vals[i] = f.translate(sv)
			}
			fm := get(staticsHome)
			fm.Statics = append(fm.Statics, serial.ClassStatics{ClassID: int32(cid), Values: vals})
			m.VM.StaticsDirty[cid] = false
		}
	}
	for node, f := range flushers {
		f.drainFresh(out[node])
	}
	m.mu.Lock()
	m.Stats.Flushes += len(out)
	m.mu.Unlock()
	return out
}

// CollectResult builds the flush carrying a completed segment's return
// value (plus any fresh objects it references) to its consumer.
func (m *Manager) CollectResult(result value.Value, hasResult bool, uncaught string) *serial.FlushMessage {
	fm := &serial.FlushMessage{HasResult: hasResult, Result: result, Err: uncaught}
	f := m.newFlusher()
	if hasResult {
		fm.Result = f.translate(result)
	}
	f.drainFresh(fm)
	return fm
}

// ApplyFlush integrates a flush on the home side: re-homes fresh objects,
// applies updates to masters, applies statics, and returns the translated
// result value.
func (m *Manager) ApplyFlush(fm *serial.FlushMessage) (value.Value, error) {
	h := m.VM.Heap

	// Pass 1: allocate a local master for every fresh object.
	remap := make(map[value.Ref]value.Ref, len(fm.Fresh))
	for i := range fm.Fresh {
		wo := &fm.Fresh[i]
		o := wo.Materialize()
		o.Home = value.NullRef // it lives here now
		local, err := h.Adopt(o)
		if err != nil {
			return value.Value{}, fmt.Errorf("objman: re-homing fresh object: %w", err)
		}
		remap[wo.Ref] = local
	}

	translate := func(v value.Value) value.Value {
		if v.Kind != value.KindRef || v.R == value.NullRef {
			return v
		}
		if nr, ok := remap[v.R]; ok {
			return value.RefVal(nr)
		}
		return v
	}

	// Pass 2: rewrite references inside the fresh objects.
	for i := range fm.Fresh {
		o := h.MustGet(remap[fm.Fresh[i].Ref])
		for j := range o.Fields {
			o.Fields[j] = translate(o.Fields[j])
		}
		for j := range o.AR {
			o.AR[j] = translate(value.RefVal(o.AR[j])).R
		}
	}

	// Apply updates to masters.
	for i := range fm.Updated {
		wo := &fm.Updated[i]
		master := h.Get(wo.Ref)
		if master == nil {
			return value.Value{}, fmt.Errorf("objman: update for unknown master %v", wo.Ref)
		}
		if wo.IsArray {
			master.AI = append(master.AI[:0], wo.AI...)
			master.AF = append(master.AF[:0], wo.AF...)
			master.AB = append(master.AB[:0], wo.AB...)
			master.AR = master.AR[:0]
			for _, rr := range wo.AR {
				master.AR = append(master.AR, translate(value.RefVal(rr)).R)
			}
		} else {
			master.Fields = master.Fields[:0]
			for _, fv := range wo.Fields {
				master.Fields = append(master.Fields, translate(fv))
			}
		}
	}

	// Apply statics.
	for _, cs := range fm.Statics {
		m.VM.MarkLoaded(cs.ClassID)
		dst := m.VM.Statics[cs.ClassID]
		for i, sv := range cs.Values {
			if i < len(dst) {
				dst[i] = translate(sv)
			}
		}
	}

	res := fm.Result
	if fm.HasResult {
		res = translate(fm.Result)
	}
	return res, nil
}
