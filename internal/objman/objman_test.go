package objman_test

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/bytecode"
	"repro/internal/netsim"
	"repro/internal/objman"
	"repro/internal/serial"
	"repro/internal/value"
	"repro/internal/vm"
)

// world wires two nodes with object managers over an unshaped fabric.
type world struct {
	prog         *bytecode.Program
	net          *netsim.Network
	vmA, vmB     *vm.VM
	omA, omB     *objman.Manager
	boxClass     int32
}

func newWorld(t *testing.T) *world {
	t.Helper()
	pb := asm.NewProgram()
	c := pb.Class("Box", "")
	c.Field("v", value.KindInt)
	c.Field("next", value.KindRef)
	pb.Func("main", true).Int(0).RetV()
	prog := pb.MustBuild()

	net := netsim.NewNetwork(netsim.Unlimited)
	vmA := vm.New(prog, 1, true)
	vmB := vm.New(prog, 2, true)
	w := &world{
		prog: prog, net: net, vmA: vmA, vmB: vmB,
		omA: objman.New(vmA, prog, net.Node(1), serial.Fast),
		omB: objman.New(vmB, prog, net.Node(2), serial.Fast),
		boxClass: prog.ClassByName("Box"),
	}
	return w
}

func (w *world) newBox(t *testing.T, v *vm.VM, val int64, next value.Ref) value.Ref {
	t.Helper()
	ref, err := v.Heap.Alloc(w.boxClass, 2)
	if err != nil {
		t.Fatal(err)
	}
	o := v.Heap.MustGet(ref)
	o.Fields[0] = value.Int(val)
	o.Fields[1] = value.RefVal(next)
	return ref
}

func TestFetchShallowAndCache(t *testing.T) {
	w := newWorld(t)
	inner := w.newBox(t, w.vmA, 2, value.NullRef)
	outer := w.newBox(t, w.vmA, 1, inner)

	local, raised := w.omB.Fetch(outer)
	if raised != nil {
		t.Fatalf("fetch: %+v", raised)
	}
	o := w.vmB.Heap.MustGet(local)
	if o.Fields[0].I != 1 {
		t.Errorf("value lost")
	}
	// Shallow: the next field still names the home object (remote here).
	if o.Fields[1].R != inner {
		t.Errorf("next = %v, want home ref %v", o.Fields[1].R, inner)
	}
	if w.vmB.Heap.IsLocal(o.Fields[1].R) {
		t.Error("nested object should not have been fetched")
	}
	// Cache: same home ref resolves without another RPC.
	before := w.omB.Stats.Fetches
	local2, _ := w.omB.Fetch(outer)
	if local2 != local {
		t.Error("cache miss on repeated fetch")
	}
	if w.omB.Stats.Fetches != before {
		t.Error("repeated fetch issued an RPC")
	}
	if w.omB.Stats.CacheHits == 0 {
		t.Error("cache hit not counted")
	}
}

func TestBringObjSemantics(t *testing.T) {
	w := newWorld(t)
	box := w.newBox(t, w.vmA, 9, value.NullRef)
	th, _ := w.vmB.NewThread(w.prog.MethodByName("main"))

	// Remote ref → fetched local copy.
	res, raised := w.omB.BringObj(th, []value.Value{value.RefVal(box)})
	if raised != nil {
		t.Fatalf("%+v", raised)
	}
	if !w.vmB.Heap.IsLocal(res.R) {
		t.Error("bringObj should return a local ref")
	}
	// Local ref → identity.
	res2, _ := w.omB.BringObj(th, []value.Value{res})
	if res2.R != res.R {
		t.Error("local bringObj should be identity")
	}
	// Null → application NPE.
	if _, raised := w.omB.BringObj(th, []value.Value{value.Null()}); raised == nil ||
		raised.ExClass != bytecode.ExNullPointer {
		t.Error("null should raise application NPE")
	}
	// Primitive → pass-through.
	if res3, raised := w.omB.BringObj(th, []value.Value{value.Int(5)}); raised != nil || res3.I != 5 {
		t.Error("primitive bringObj should be identity")
	}
}

func TestUpdatesFlushToHomeNode(t *testing.T) {
	w := newWorld(t)
	box := w.newBox(t, w.vmA, 10, value.NullRef)
	local, _ := w.omB.Fetch(box)
	o := w.vmB.Heap.MustGet(local)
	o.Fields[0] = value.Int(99)
	o.Dirty = true

	flushes := w.omB.CollectUpdates(-1)
	fm, ok := flushes[1]
	if !ok || len(fm.Updated) != 1 {
		t.Fatalf("updates not grouped by home: %+v", flushes)
	}
	if _, err := w.omA.ApplyFlush(fm); err != nil {
		t.Fatal(err)
	}
	if got := w.vmA.Heap.MustGet(box).Fields[0].I; got != 99 {
		t.Errorf("master = %d, want 99", got)
	}
	if w.vmB.Heap.MustGet(local).Dirty {
		t.Error("dirty flag should clear after collection")
	}
}

func TestFreshObjectsRehomedWithRewrittenRefs(t *testing.T) {
	w := newWorld(t)
	// Node 2 builds a 2-element list and returns its head.
	head := w.newBox(t, w.vmB, 1, value.NullRef)
	tail := w.newBox(t, w.vmB, 2, value.NullRef)
	w.vmB.Heap.MustGet(head).Fields[1] = value.RefVal(tail)

	fm := w.omB.CollectResult(value.RefVal(head), true, "")
	if len(fm.Fresh) != 2 {
		t.Fatalf("fresh closure = %d objects, want 2", len(fm.Fresh))
	}
	res, err := w.omA.ApplyFlush(fm)
	if err != nil {
		t.Fatal(err)
	}
	ho := w.vmA.Heap.Get(res.R)
	if ho == nil {
		t.Fatal("result not re-homed")
	}
	if ho.Fields[0].I != 1 {
		t.Error("head value lost")
	}
	to := w.vmA.Heap.Get(ho.Fields[1].R)
	if to == nil || to.Fields[0].I != 2 {
		t.Error("tail ref not rewritten to the re-homed copy")
	}
}

func TestUpdateReferencingFreshObject(t *testing.T) {
	w := newWorld(t)
	box := w.newBox(t, w.vmA, 1, value.NullRef)
	local, _ := w.omB.Fetch(box)
	// Node 2 allocates a fresh object and links it from the cached copy.
	fresh := w.newBox(t, w.vmB, 7, value.NullRef)
	lo := w.vmB.Heap.MustGet(local)
	lo.Fields[1] = value.RefVal(fresh)
	lo.Dirty = true

	flushes := w.omB.CollectUpdates(-1)
	fm := flushes[1]
	if fm == nil || len(fm.Fresh) != 1 {
		t.Fatalf("fresh escape not collected: %+v", fm)
	}
	if _, err := w.omA.ApplyFlush(fm); err != nil {
		t.Fatal(err)
	}
	master := w.vmA.Heap.MustGet(box)
	linked := w.vmA.Heap.Get(master.Fields[1].R)
	if linked == nil || linked.Fields[0].I != 7 {
		t.Error("fresh object not re-homed and linked at master")
	}
}

func TestServeUnknownObjectFails(t *testing.T) {
	w := newWorld(t)
	bogus := value.MakeRef(1, 999999)
	if _, raised := w.omB.Fetch(bogus); raised == nil {
		t.Error("fetching a dangling ref should fail")
	}
}

func TestResetCache(t *testing.T) {
	w := newWorld(t)
	box := w.newBox(t, w.vmA, 1, value.NullRef)
	w.omB.Fetch(box) //nolint:errcheck
	w.omB.ResetCache()
	before := w.omB.Stats.Fetches
	w.omB.Fetch(box) //nolint:errcheck
	if w.omB.Stats.Fetches != before+1 {
		t.Error("reset cache should force a refetch")
	}
}
