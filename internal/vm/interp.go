package vm

import (
	"math"

	"repro/internal/bytecode"
	"repro/internal/value"
)

// Run executes the thread until completion (or kill). It must be called by
// exactly one goroutine. On return, Result/Err are populated and the
// thread is unregistered from the VM.
func (t *Thread) Run() {
	if cpu := t.VM.CPU; cpu != nil {
		cpu.Acquire()
		defer cpu.Release()
	}
	t.state.Store(int32(ThreadRunning))
	t.exec()
	t.state.Store(int32(ThreadDone))
	// A suspend request racing with completion must not leave the
	// requester blocked.
	t.mu.Lock()
	if t.pending != nil {
		close(t.pending.ack)
		t.pending = nil
	}
	t.mu.Unlock()
	t.VM.dropThread(t.ID)
}

// CallPC exposes the invoke-site pc of a suspended frame. For every frame
// except the top one, the frame is "inside" the call instruction at
// callPC; exception-range matching and state capture use it.
func (f *Frame) CallPC() int32 { return f.callPC }

// exec is the interpreter loop.
func (t *Thread) exec() {
	v := t.VM
	h := v.Heap
	var localInstr, localCalls, localAllocs uint64
	var flushedInstr uint64 // portion of localInstr already in v.liveInstr
	maxDepth := len(t.Frames)
	defer func() {
		v.liveInstr.Add(localInstr - flushedInstr)
		v.mu.Lock()
		v.Counters.Instructions += localInstr
		v.Counters.Calls += localCalls
		v.Counters.Allocations += localAllocs
		if maxDepth > v.Counters.MaxStack {
			v.Counters.MaxStack = maxDepth
		}
		v.mu.Unlock()
	}()

	if len(t.Frames) <= t.FramesFloor {
		t.Err = nil
		return
	}
	f := t.Frames[len(t.Frames)-1]
	code := f.Method.Code

	// raiseAndContinue dispatches an exception; returns false when the
	// thread must stop (uncaught below the floor).
	raiseAndContinue := func(r *Raised) bool {
		ok := t.dispatchException(r)
		if !ok {
			return false
		}
		f = t.Frames[len(t.Frames)-1]
		code = f.Method.Code
		return true
	}

	for {
		// Safepoint countdown: the only per-instruction bookkeeping beyond
		// the dispatch itself. When a suspension request is pending the
		// counter stays at 1 so the MSP check below runs every instruction.
		t.pollCtr--
		if t.pollCtr <= 0 {
			// Publish retired instructions for load monitors and yield the
			// modeled core so queued sibling threads make progress.
			v.liveInstr.Add(localInstr - flushedInstr)
			flushedInstr = localInstr
			if v.CPU != nil {
				v.CPU.Yield()
			}
			t.safepointPoll()
			if t.parking && f.Method.IsMSP(f.PC) && len(f.Stack) == 0 {
				if !t.park() {
					t.Err = &UncaughtError{ClassName: "Killed"}
					return
				}
				// The migration manager may have rearranged the stack.
				if len(t.Frames) <= t.FramesFloor {
					return
				}
				f = t.Frames[len(t.Frames)-1]
				code = f.Method.Code
				continue
			}
			if t.parking {
				t.pollCtr = 1
			}
		}

		ins := code[f.PC]

		if t.instrHook != nil {
			if r := t.instrHook(t, f, ins); r != nil {
				if !raiseAndContinue(r) {
					return
				}
				continue
			}
			// The hook may have rewritten the pc or frames (breakpoints,
			// forced returns); refetch defensively.
			if len(t.Frames) <= t.FramesFloor {
				return
			}
			if tf := t.Frames[len(t.Frames)-1]; tf != f {
				f = tf
				code = f.Method.Code
				continue
			}
			ins = code[f.PC]
		}

		localInstr++
		f.Instrs++

		switch ins.Op {
		case bytecode.OpNop:
			f.PC++

		case bytecode.OpConst:
			f.push(f.Method.Consts[ins.A])
			f.PC++
		case bytecode.OpIConst:
			f.push(value.Int(int64(ins.A)))
			f.PC++
		case bytecode.OpNull:
			f.push(value.Null())
			f.PC++
		case bytecode.OpSConst:
			f.push(value.RefVal(v.Intern(f.Method.Strings[ins.A])))
			f.PC++
		case bytecode.OpLoad:
			f.push(f.Locals[ins.A])
			f.PC++
		case bytecode.OpStore:
			f.Locals[ins.A] = f.pop()
			f.PC++

		case bytecode.OpPop:
			f.pop()
			f.PC++
		case bytecode.OpDup:
			f.push(f.Stack[len(f.Stack)-1])
			f.PC++
		case bytecode.OpSwap:
			n := len(f.Stack)
			f.Stack[n-1], f.Stack[n-2] = f.Stack[n-2], f.Stack[n-1]
			f.PC++

		case bytecode.OpAdd, bytecode.OpSub, bytecode.OpMul, bytecode.OpDiv, bytecode.OpMod:
			b := f.pop()
			a := f.pop()
			res, r := arith(ins.Op, a, b)
			if r != nil {
				if !raiseAndContinue(r) {
					return
				}
				continue
			}
			f.push(res)
			f.PC++
		case bytecode.OpNeg:
			a := f.pop()
			if a.Kind == value.KindFloat {
				f.push(value.Float(-a.F))
			} else {
				f.push(value.Int(-a.I))
			}
			f.PC++

		case bytecode.OpAnd:
			b, a := f.pop(), f.pop()
			f.push(value.Int(a.AsInt() & b.AsInt()))
			f.PC++
		case bytecode.OpOr:
			b, a := f.pop(), f.pop()
			f.push(value.Int(a.AsInt() | b.AsInt()))
			f.PC++
		case bytecode.OpXor:
			b, a := f.pop(), f.pop()
			f.push(value.Int(a.AsInt() ^ b.AsInt()))
			f.PC++
		case bytecode.OpShl:
			b, a := f.pop(), f.pop()
			f.push(value.Int(a.AsInt() << (uint64(b.AsInt()) & 63)))
			f.PC++
		case bytecode.OpShr:
			b, a := f.pop(), f.pop()
			f.push(value.Int(a.AsInt() >> (uint64(b.AsInt()) & 63)))
			f.PC++
		case bytecode.OpNot:
			a := f.pop()
			f.push(value.Bool(!a.IsTruthy()))
			f.PC++

		case bytecode.OpI2F:
			a := f.pop()
			f.push(value.Float(float64(a.AsInt())))
			f.PC++
		case bytecode.OpF2I:
			a := f.pop()
			f.push(value.Int(a.AsInt()))
			f.PC++

		case bytecode.OpEq, bytecode.OpNe, bytecode.OpLt, bytecode.OpLe, bytecode.OpGt, bytecode.OpGe:
			b := f.pop()
			a := f.pop()
			f.push(value.Bool(compare(ins.Op, a, b)))
			f.PC++

		case bytecode.OpJmp:
			f.PC = ins.A
		case bytecode.OpJz:
			if !f.pop().IsTruthy() {
				f.PC = ins.A
			} else {
				f.PC++
			}
		case bytecode.OpJnz:
			if f.pop().IsTruthy() {
				f.PC = ins.A
			} else {
				f.PC++
			}
		case bytecode.OpTSwitch:
			key := f.pop().AsInt()
			f.PC = f.Method.Switches[ins.A].Lookup(int32(key))

		case bytecode.OpNew:
			if !v.loaded[ins.A].Load() {
				if r := v.ensureLoaded(ins.A); r != nil {
					if !raiseAndContinue(r) {
						return
					}
					continue
				}
			}
			ref, err := h.Alloc(ins.A, v.Prog.NumInstanceFields(ins.A))
			if err != nil {
				if !raiseAndContinue(&Raised{ExClass: bytecode.ExOutOfMemory, Message: "new"}) {
					return
				}
				continue
			}
			localAllocs++
			f.push(value.RefVal(ref))
			f.PC++

		case bytecode.OpGetF:
			ref := f.pop()
			o := h.Get(ref.R)
			if o == nil || ref.Kind != value.KindRef {
				if !raiseAndContinue(t.npe(ref)) {
					return
				}
				continue
			}
			f.push(o.Fields[ins.A])
			f.PC++
		case bytecode.OpPutF:
			val := f.pop()
			ref := f.pop()
			o := h.Get(ref.R)
			if o == nil || ref.Kind != value.KindRef {
				if !raiseAndContinue(t.npe(ref)) {
					return
				}
				continue
			}
			o.Fields[ins.A] = val
			if o.Home != value.NullRef {
				o.Dirty = true
			}
			if h.WriteHook != nil {
				h.WriteHook(ref.R, o)
			}
			f.PC++

		case bytecode.OpGetS:
			if !v.loaded[ins.A].Load() {
				if r := v.ensureLoaded(ins.A); r != nil {
					if !raiseAndContinue(r) {
						return
					}
					continue
				}
			}
			f.push(v.Statics[ins.A][ins.B])
			f.PC++
		case bytecode.OpPutS:
			if !v.loaded[ins.A].Load() {
				if r := v.ensureLoaded(ins.A); r != nil {
					if !raiseAndContinue(r) {
						return
					}
					continue
				}
			}
			v.Statics[ins.A][ins.B] = f.pop()
			v.StaticsDirty[ins.A] = true
			f.PC++

		case bytecode.OpGetStatus:
			val := f.pop()
			switch {
			case val.Kind != value.KindRef || val.R == value.NullRef:
				// Primitives and nulls are always "valid" under the
				// status-check protocol; only object state is managed.
				f.push(value.Int(1))
			default:
				if o := h.Get(val.R); o != nil {
					f.push(value.Int(int64(o.Status)))
				} else {
					// Remote: invalid — the injected check calls bringObj.
					f.push(value.Int(0))
				}
			}
			f.PC++

		case bytecode.OpInstOf:
			ref := f.pop()
			o := h.Get(ref.R)
			if o == nil && ref.Kind == value.KindRef && ref.R != value.NullRef {
				// Remote reference: the class is not known locally, so the
				// test must fault the object in first.
				if !raiseAndContinue(t.npe(ref)) {
					return
				}
				continue
			}
			f.push(value.Bool(o != nil && v.Prog.InstanceOf(o.Class, ins.A)))
			f.PC++
		case bytecode.OpCheckCast:
			ref := f.Stack[len(f.Stack)-1]
			if ref.Kind == value.KindRef && ref.R != value.NullRef {
				o := h.Get(ref.R)
				if o == nil {
					// Remote reference: class unknown locally; raise the
					// fault so the object comes in, then the retried cast
					// checks the real class.
					if !raiseAndContinue(t.npe(ref)) {
						return
					}
					continue
				}
				if !v.Prog.InstanceOf(o.Class, ins.A) {
					if !raiseAndContinue(&Raised{ExClass: bytecode.ExClassCast, Message: v.Prog.Classes[ins.A].Name}) {
						return
					}
					continue
				}
			}
			f.PC++

		case bytecode.OpNewArr:
			length := f.pop().AsInt()
			if length < 0 {
				if !raiseAndContinue(&Raised{ExClass: bytecode.ExIndexOutOfBounds, Message: "negative array size"}) {
					return
				}
				continue
			}
			ref, err := h.AllocArray(v.builtins[bytecode.ClassObject], ins.A, int(length))
			if err != nil {
				if !raiseAndContinue(&Raised{ExClass: bytecode.ExOutOfMemory, Message: "newarr"}) {
					return
				}
				continue
			}
			localAllocs++
			f.push(value.RefVal(ref))
			f.PC++

		case bytecode.OpALoad:
			idx := f.pop().AsInt()
			ref := f.pop()
			o := h.Get(ref.R)
			if o == nil || ref.Kind != value.KindRef {
				if !raiseAndContinue(t.npe(ref)) {
					return
				}
				continue
			}
			res, r := arrayLoad(o, idx)
			if r != nil {
				if !raiseAndContinue(r) {
					return
				}
				continue
			}
			f.push(res)
			f.PC++
		case bytecode.OpAStore:
			val := f.pop()
			idx := f.pop().AsInt()
			ref := f.pop()
			o := h.Get(ref.R)
			if o == nil || ref.Kind != value.KindRef {
				if !raiseAndContinue(t.npe(ref)) {
					return
				}
				continue
			}
			if r := arrayStore(o, idx, val); r != nil {
				if !raiseAndContinue(r) {
					return
				}
				continue
			}
			if o.Home != value.NullRef {
				o.Dirty = true
			}
			if h.WriteHook != nil {
				h.WriteHook(ref.R, o)
			}
			f.PC++
		case bytecode.OpArrLen:
			ref := f.pop()
			o := h.Get(ref.R)
			if o == nil || ref.Kind != value.KindRef {
				if !raiseAndContinue(t.npe(ref)) {
					return
				}
				continue
			}
			f.push(value.Int(int64(o.Len())))
			f.PC++

		case bytecode.OpCall, bytecode.OpCallV:
			var m *bytecode.Method
			if ins.Op == bytecode.OpCall {
				m = v.Prog.Methods[ins.A]
			} else {
				recv := f.Stack[len(f.Stack)-int(ins.B)]
				o := h.Get(recv.R)
				if o == nil || recv.Kind != value.KindRef {
					if !raiseAndContinue(t.npe(recv)) {
						return
					}
					continue
				}
				mid := v.Prog.ResolveVirtual(o.Class, ins.A)
				if mid < 0 {
					if !raiseAndContinue(&Raised{ExClass: bytecode.ExIllegalState,
						Message: "unresolved virtual " + v.Prog.VNames[ins.A]}) {
						return
					}
					continue
				}
				m = v.Prog.Methods[mid]
			}
			if m.ClassID >= 0 && !v.loaded[m.ClassID].Load() {
				if r := v.ensureLoaded(m.ClassID); r != nil {
					if !raiseAndContinue(r) {
						return
					}
					continue
				}
			}
			localCalls++
			nf := t.acquireFrame(m)
			n := int(ins.B)
			base := len(f.Stack) - n
			copy(nf.Locals, f.Stack[base:])
			f.Stack = f.Stack[:base]
			f.callPC = f.PC
			f.PC++ // caller resumes after the invoke
			t.Frames = append(t.Frames, nf)
			if len(t.Frames) > maxDepth {
				maxDepth = len(t.Frames)
			}
			f = nf
			code = f.Method.Code

		case bytecode.OpCallNat:
			impl := v.natives[ins.A]
			if impl == nil {
				if !raiseAndContinue(&Raised{ExClass: bytecode.ExIllegalState,
					Message: "native not bound: " + v.Prog.Natives[ins.A].Name}) {
					return
				}
				continue
			}
			n := int(ins.B)
			base := len(f.Stack) - n
			args := f.Stack[base:]
			res, r := impl(t, args)
			f.Stack = f.Stack[:base]
			if r != nil {
				if !raiseAndContinue(r) {
					return
				}
				continue
			}
			if v.Prog.Natives[ins.A].ReturnsValue {
				f.push(res)
			}
			f.PC++
			// Natives may block for long stretches (gates, I/O); re-poll
			// promptly so suspension requests that arrived meanwhile are
			// honored at the next MSP even in short-lived methods.
			t.pollCtr = 1
			// A native may have mutated the frame stack (restoration
			// drivers do); refetch.
			if len(t.Frames) <= t.FramesFloor {
				return
			}
			if tf := t.Frames[len(t.Frames)-1]; tf != f {
				f = tf
				code = f.Method.Code
			}

		case bytecode.OpRet, bytecode.OpRetV:
			var rv value.Value
			hasVal := ins.Op == bytecode.OpRetV
			if hasVal {
				rv = f.pop()
			}
			t.releaseFrame(f)
			t.Frames = t.Frames[:len(t.Frames)-1]
			if len(t.Frames) <= t.FramesFloor {
				if hasVal {
					t.Result = rv
				}
				t.Err = nil
				return
			}
			f = t.Frames[len(t.Frames)-1]
			code = f.Method.Code
			if hasVal {
				f.push(rv)
			}

		case bytecode.OpThrow:
			ref := f.pop()
			var r *Raised
			if ref.Kind != value.KindRef || h.Get(ref.R) == nil {
				r = t.npe(ref)
			} else {
				r = &Raised{Ref: ref.R}
			}
			if !raiseAndContinue(r) {
				return
			}

		default:
			if !raiseAndContinue(&Raised{ExClass: bytecode.ExIllegalState, Message: "bad opcode"}) {
				return
			}
		}
	}
}

// npe builds the exception for a failed dereference: a RemoteAccessFault
// when the reference names an object on another node (the object-faulting
// event of §III.C, caught by injected fault handlers), or a genuine
// NullPointerException for null (an application error).
func (t *Thread) npe(ref value.Value) *Raised {
	if ref.Kind == value.KindRef && ref.R != value.NullRef {
		t.VM.mu.Lock()
		t.VM.Counters.NPEFaults++
		t.VM.mu.Unlock()
		return &Raised{ExClass: bytecode.ExRemoteFault}
	}
	return &Raised{ExClass: bytecode.ExNullPointer}
}

func arith(op bytecode.Op, a, b value.Value) (value.Value, *Raised) {
	if a.Kind == value.KindFloat || b.Kind == value.KindFloat {
		x, y := a.AsFloat(), b.AsFloat()
		switch op {
		case bytecode.OpAdd:
			return value.Float(x + y), nil
		case bytecode.OpSub:
			return value.Float(x - y), nil
		case bytecode.OpMul:
			return value.Float(x * y), nil
		case bytecode.OpDiv:
			return value.Float(x / y), nil
		case bytecode.OpMod:
			return value.Float(math.Mod(x, y)), nil
		}
	}
	x, y := a.I, b.I
	switch op {
	case bytecode.OpAdd:
		return value.Int(x + y), nil
	case bytecode.OpSub:
		return value.Int(x - y), nil
	case bytecode.OpMul:
		return value.Int(x * y), nil
	case bytecode.OpDiv:
		if y == 0 {
			return value.Value{}, &Raised{ExClass: bytecode.ExArithmetic, Message: "division by zero"}
		}
		return value.Int(x / y), nil
	case bytecode.OpMod:
		if y == 0 {
			return value.Value{}, &Raised{ExClass: bytecode.ExArithmetic, Message: "modulo by zero"}
		}
		return value.Int(x % y), nil
	}
	return value.Value{}, &Raised{ExClass: bytecode.ExIllegalState, Message: "bad arith op"}
}

func compare(op bytecode.Op, a, b value.Value) bool {
	if a.Kind == value.KindRef || b.Kind == value.KindRef {
		eq := a.Kind == b.Kind && a.R == b.R
		if op == bytecode.OpEq {
			return eq
		}
		if op == bytecode.OpNe {
			return !eq
		}
		return false
	}
	if a.Kind == value.KindFloat || b.Kind == value.KindFloat {
		x, y := a.AsFloat(), b.AsFloat()
		switch op {
		case bytecode.OpEq:
			return x == y
		case bytecode.OpNe:
			return x != y
		case bytecode.OpLt:
			return x < y
		case bytecode.OpLe:
			return x <= y
		case bytecode.OpGt:
			return x > y
		case bytecode.OpGe:
			return x >= y
		}
	}
	x, y := a.I, b.I
	switch op {
	case bytecode.OpEq:
		return x == y
	case bytecode.OpNe:
		return x != y
	case bytecode.OpLt:
		return x < y
	case bytecode.OpLe:
		return x <= y
	case bytecode.OpGt:
		return x > y
	case bytecode.OpGe:
		return x >= y
	}
	return false
}

func arrayLoad(o *Object, idx int64) (value.Value, *Raised) {
	if idx < 0 || idx >= int64(o.Len()) {
		return value.Value{}, &Raised{ExClass: bytecode.ExIndexOutOfBounds}
	}
	switch o.AKind {
	case bytecode.ArrKindInt:
		return value.Int(o.AI[idx]), nil
	case bytecode.ArrKindFloat:
		return value.Float(o.AF[idx]), nil
	case bytecode.ArrKindByte:
		return value.Int(int64(o.AB[idx])), nil
	case bytecode.ArrKindRef:
		return value.RefVal(o.AR[idx]), nil
	}
	return value.Value{}, &Raised{ExClass: bytecode.ExIllegalState, Message: "not an array"}
}

func arrayStore(o *Object, idx int64, val value.Value) *Raised {
	if idx < 0 || idx >= int64(o.Len()) {
		return &Raised{ExClass: bytecode.ExIndexOutOfBounds}
	}
	switch o.AKind {
	case bytecode.ArrKindInt:
		o.AI[idx] = val.AsInt()
	case bytecode.ArrKindFloat:
		o.AF[idx] = val.AsFloat()
	case bytecode.ArrKindByte:
		o.AB[idx] = byte(val.AsInt())
	case bytecode.ArrKindRef:
		o.AR[idx] = val.R
	default:
		return &Raised{ExClass: bytecode.ExIllegalState, Message: "not an array"}
	}
	return nil
}

// dispatchException materializes r (allocating the exception object when
// needed) and unwinds frames looking for a matching handler. Returns false
// when the exception escapes the thread's floor, setting t.Err.
func (t *Thread) dispatchException(r *Raised) bool {
	v := t.VM
	v.mu.Lock()
	v.Counters.Exceptions++
	v.mu.Unlock()

	ref := r.Ref
	if ref == value.NullRef {
		ref = v.AllocException(r.ExClass, r.Message)
	}
	obj := v.Heap.MustGet(ref)

	// The raising (top) frame is matched at its current PC; as unwinding
	// pops frames, each newly exposed frame is matched at the pc of its
	// pending invoke (callPC), because its PC has already advanced past
	// the call instruction.
	for len(t.Frames) > t.FramesFloor {
		f := t.Frames[len(t.Frames)-1]
		if handlerPC := matchHandler(v, f, f.PC, obj.Class); handlerPC >= 0 {
			f.Stack = f.Stack[:0]
			f.push(value.RefVal(ref))
			f.PC = handlerPC
			return true
		}
		t.releaseFrame(f)
		t.Frames = t.Frames[:len(t.Frames)-1]
		if len(t.Frames) > t.FramesFloor {
			below := t.Frames[len(t.Frames)-1]
			below.PC = below.callPC // match (and, if caught, resume) at the invoke's statement
		}
	}
	name := r.ExClass
	if name == "" {
		name = v.Prog.Classes[obj.Class].Name
	}
	msg := r.Message
	if msg == "" {
		msg = v.ExceptionMessage(ref)
	}
	t.Err = &UncaughtError{ClassName: name, Message: msg, Ref: ref}
	return false
}

func matchHandler(v *VM, f *Frame, pc int32, excClass int32) int32 {
	for _, ex := range f.Method.Except {
		if pc < ex.From || pc >= ex.To {
			continue
		}
		if ex.ClassID < 0 || v.Prog.InstanceOf(excClass, ex.ClassID) {
			return ex.Handler
		}
	}
	return -1
}
