package vm_test

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/bytecode"
	"repro/internal/value"
	"repro/internal/vm"
)

// buildAndRun assembles a program with a single free function "main",
// runs it and returns the result.
func runMain(t *testing.T, build func(pb *asm.ProgramBuilder)) (value.Value, error) {
	t.Helper()
	pb := asm.NewProgram()
	build(pb)
	prog, err := pb.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	v := vm.New(prog, 1, true)
	return v.RunMain(prog.MethodByName("main"))
}

func TestArithmetic(t *testing.T) {
	res, err := runMain(t, func(pb *asm.ProgramBuilder) {
		mb := pb.Func("main", true)
		// ((10 + 2) * 3 - 4) / 2 % 5 = 32/2 % 5 = 16 % 5 = 1
		mb.Int(10).Int(2).Add().Int(3).Mul().Int(4).Sub().Int(2).Div().Int(5).Mod().RetV()
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.I != 1 {
		t.Errorf("got %v, want 1", res)
	}
}

func TestFloatArithmeticAndConversion(t *testing.T) {
	res, err := runMain(t, func(pb *asm.ProgramBuilder) {
		mb := pb.Func("main", true)
		mb.Float(1.5).Int(2).Add() // mixed → float 3.5
		mb.F2I().RetV()            // 3
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != value.KindInt || res.I != 3 {
		t.Errorf("got %v, want int 3", res)
	}
}

func TestDivisionByZeroRaises(t *testing.T) {
	_, err := runMain(t, func(pb *asm.ProgramBuilder) {
		mb := pb.Func("main", true)
		mb.Int(1).Int(0).Div().RetV()
	})
	var ue *vm.UncaughtError
	if !errors.As(err, &ue) || ue.ClassName != bytecode.ExArithmetic {
		t.Fatalf("err = %v, want uncaught ArithmeticException", err)
	}
}

func TestLocalsAndBranching(t *testing.T) {
	// sum 1..10 with a loop
	res, err := runMain(t, func(pb *asm.ProgramBuilder) {
		mb := pb.Func("main", true)
		mb.Int(0).Store("sum")
		mb.Int(1).Store("i")
		mb.Label("loop")
		mb.Load("i").Int(10).Gt().Jnz("done")
		mb.Load("sum").Load("i").Add().Store("sum")
		mb.Load("i").Int(1).Add().Store("i")
		mb.Jmp("loop")
		mb.Label("done")
		mb.Load("sum").RetV()
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.I != 55 {
		t.Errorf("got %d, want 55", res.I)
	}
}

func TestRecursionFib(t *testing.T) {
	res, err := runMain(t, func(pb *asm.ProgramBuilder) {
		fib := pb.Func("fib", true, "n")
		fib.Load("n").Int(2).Lt().Jnz("base")
		fib.Load("n").Int(1).Sub().Call("fib", 1)
		fib.Load("n").Int(2).Sub().Call("fib", 1)
		fib.Add().RetV()
		fib.Label("base").Load("n").RetV()

		mb := pb.Func("main", true)
		mb.Int(15).Call("fib", 1).RetV()
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.I != 610 {
		t.Errorf("fib(15) = %d, want 610", res.I)
	}
}

func TestObjectsAndFields(t *testing.T) {
	res, err := runMain(t, func(pb *asm.ProgramBuilder) {
		pt := pb.Class("Point", "")
		pt.Field("x", value.KindInt)
		pt.Field("y", value.KindInt)
		getSum := pt.Method("sum", true)
		getSum.Load("this").GetF("Point", "x").Load("this").GetF("Point", "y").Add().RetV()

		mb := pb.Func("main", true)
		mb.New("Point").Store("p")
		mb.Load("p").Int(30).PutF("Point", "x")
		mb.Load("p").Int(12).PutF("Point", "y")
		mb.Load("p").CallV("sum", 1).RetV()
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.I != 42 {
		t.Errorf("got %d, want 42", res.I)
	}
}

func TestVirtualDispatchWithInheritance(t *testing.T) {
	res, err := runMain(t, func(pb *asm.ProgramBuilder) {
		a := pb.Class("Animal", "")
		a.Method("noise", true).Int(1).RetV()
		d := pb.Class("Dog", "Animal")
		d.Method("noise", true).Int(2).RetV()
		pb.Class("Cat", "Animal") // inherits Animal.noise

		mb := pb.Func("main", true)
		mb.New("Dog").CallV("noise", 1)
		mb.New("Cat").CallV("noise", 1)
		mb.Add().RetV() // 2 + 1
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.I != 3 {
		t.Errorf("got %d, want 3", res.I)
	}
}

func TestStatics(t *testing.T) {
	res, err := runMain(t, func(pb *asm.ProgramBuilder) {
		c := pb.Class("Counter", "")
		c.Static("n", value.KindInt)
		mb := pb.Func("main", true)
		mb.Int(7).PutS("Counter", "n")
		mb.GetS("Counter", "n").GetS("Counter", "n").Add().RetV()
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.I != 14 {
		t.Errorf("got %d, want 14", res.I)
	}
}

func TestArraysAllKinds(t *testing.T) {
	res, err := runMain(t, func(pb *asm.ProgramBuilder) {
		mb := pb.Func("main", true)
		// int array
		mb.Int(3).NewArr(bytecode.ArrKindInt).Store("ai")
		mb.Load("ai").Int(0).Int(5).AStore()
		// float array
		mb.Int(2).NewArr(bytecode.ArrKindFloat).Store("af")
		mb.Load("af").Int(1).Float(2.5).AStore()
		// byte array
		mb.Int(4).NewArr(bytecode.ArrKindByte).Store("ab")
		mb.Load("ab").Int(2).Int(300).AStore() // truncates to 44
		// ref array
		mb.Int(1).NewArr(bytecode.ArrKindRef).Store("ar")
		mb.Load("ar").Int(0).New("Object").AStore()

		// ai[0] + int(af[1]*2) + ab[2] + arrlen(ar) = 5 + 5 + 44 + 1 = 55
		mb.Load("ai").Int(0).ALoad()
		mb.Load("af").Int(1).ALoad().Int(2).Mul().F2I().Add()
		mb.Load("ab").Int(2).ALoad().Add()
		mb.Load("ar").ArrLen().Add()
		mb.RetV()
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.I != 55 {
		t.Errorf("got %d, want 55", res.I)
	}
}

func TestIndexOutOfBounds(t *testing.T) {
	_, err := runMain(t, func(pb *asm.ProgramBuilder) {
		mb := pb.Func("main", true)
		mb.Int(2).NewArr(bytecode.ArrKindInt).Store("a")
		mb.Load("a").Int(5).ALoad().RetV()
	})
	var ue *vm.UncaughtError
	if !errors.As(err, &ue) || ue.ClassName != bytecode.ExIndexOutOfBounds {
		t.Fatalf("err = %v, want IndexOutOfBoundsException", err)
	}
}

func TestNullPointerOnNullDeref(t *testing.T) {
	_, err := runMain(t, func(pb *asm.ProgramBuilder) {
		c := pb.Class("C", "")
		c.Field("f", value.KindInt)
		mb := pb.Func("main", true)
		mb.Null().GetF("C", "f").RetV()
	})
	var ue *vm.UncaughtError
	if !errors.As(err, &ue) || ue.ClassName != bytecode.ExNullPointer {
		t.Fatalf("err = %v, want NullPointerException", err)
	}
}

func TestTryCatch(t *testing.T) {
	res, err := runMain(t, func(pb *asm.ProgramBuilder) {
		c := pb.Class("C", "")
		c.Field("f", value.KindInt)
		mb := pb.Func("main", true)
		mb.Label("try")
		mb.Null().GetF("C", "f").Pop()
		mb.Int(0).RetV() // unreachable
		mb.Label("endtry")
		mb.Label("catch")
		mb.Pop() // discard exception object
		mb.Int(99).RetV()
		mb.Try("try", "endtry", "catch", bytecode.ExNullPointer)
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.I != 99 {
		t.Errorf("got %d, want 99", res.I)
	}
}

func TestExceptionUnwindsCallStack(t *testing.T) {
	res, err := runMain(t, func(pb *asm.ProgramBuilder) {
		thrower := pb.Func("thrower", false)
		thrower.ThrowNew(bytecode.ExIllegalState, "boom")
		thrower.Ret()

		mid := pb.Func("mid", false)
		mid.Call("thrower", 0).Ret()

		mb := pb.Func("main", true)
		mb.Label("try")
		mb.Call("mid", 0)
		mb.Int(0).RetV()
		mb.Label("endtry")
		mb.Label("catch")
		mb.GetF(bytecode.ExIllegalState, "message").Store("msg")
		mb.Int(7).RetV()
		mb.Try("try", "endtry", "catch", bytecode.ExIllegalState)
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.I != 7 {
		t.Errorf("got %d, want 7", res.I)
	}
}

func TestCatchByExceptionSuperclass(t *testing.T) {
	// Every builtin exception extends Object; a catch of Object catches all.
	res, err := runMain(t, func(pb *asm.ProgramBuilder) {
		mb := pb.Func("main", true)
		mb.Label("try")
		mb.Int(1).Int(0).Div().Pop()
		mb.Int(0).RetV()
		mb.Label("endtry")
		mb.Label("catch")
		mb.Pop().Int(5).RetV()
		mb.Try("try", "endtry", "catch", bytecode.ClassObject)
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.I != 5 {
		t.Errorf("got %d, want 5", res.I)
	}
}

func TestNativeCall(t *testing.T) {
	pb := asm.NewProgram()
	pb.Native("double", 1, true)
	mb := pb.Func("main", true)
	mb.Int(21).CallNat("double", 1).RetV()
	prog := pb.MustBuild()

	v := vm.New(prog, 1, true)
	v.BindNative("double", func(t *vm.Thread, args []value.Value) (value.Value, *vm.Raised) {
		return value.Int(args[0].I * 2), nil
	})
	res, err := v.RunMain(prog.MethodByName("main"))
	if err != nil {
		t.Fatal(err)
	}
	if res.I != 42 {
		t.Errorf("got %d, want 42", res.I)
	}
}

func TestNativeRaises(t *testing.T) {
	pb := asm.NewProgram()
	pb.Native("boom", 0, false)
	mb := pb.Func("main", true)
	mb.CallNat("boom", 0).Int(0).RetV()
	prog := pb.MustBuild()

	v := vm.New(prog, 1, true)
	v.BindNative("boom", func(t *vm.Thread, args []value.Value) (value.Value, *vm.Raised) {
		return value.Value{}, &vm.Raised{ExClass: bytecode.ExIllegalState, Message: "from native"}
	})
	_, err := v.RunMain(prog.MethodByName("main"))
	var ue *vm.UncaughtError
	if !errors.As(err, &ue) || ue.Message != "from native" {
		t.Fatalf("err = %v, want native-raised IllegalState", err)
	}
}

func TestStringsInterning(t *testing.T) {
	pb := asm.NewProgram()
	mb := pb.Func("main", true)
	mb.Str("hello").Str("hello").Eq().RetV() // interned → same ref
	prog := pb.MustBuild()
	v := vm.New(prog, 1, true)
	res, err := v.RunMain(prog.MethodByName("main"))
	if err != nil {
		t.Fatal(err)
	}
	if res.I != 1 {
		t.Error("identical string literals should intern to the same object")
	}
}

func TestTSwitch(t *testing.T) {
	res, err := runMain(t, func(pb *asm.ProgramBuilder) {
		mb := pb.Func("main", true, "x")
		mb.Load("x")
		mb.TSwitch([]int32{10, 20}, []string{"ten", "twenty"}, "other")
		mb.Label("ten").Int(1).RetV()
		mb.Label("twenty").Int(2).RetV()
		mb.Label("other").Int(3).RetV()
	})
	_ = res
	_ = err
	// runMain passes zero args to a 1-arg main; do it manually instead.
	pb := asm.NewProgram()
	mb := pb.Func("main", true, "x")
	mb.Load("x")
	mb.TSwitch([]int32{10, 20}, []string{"ten", "twenty"}, "other")
	mb.Label("ten").Int(1).RetV()
	mb.Label("twenty").Int(2).RetV()
	mb.Label("other").Int(3).RetV()
	prog := pb.MustBuild()
	for _, tc := range []struct{ in, want int64 }{{10, 1}, {20, 2}, {99, 3}} {
		v := vm.New(prog, 1, true)
		res, err := v.RunMain(prog.MethodByName("main"), value.Int(tc.in))
		if err != nil {
			t.Fatal(err)
		}
		if res.I != tc.want {
			t.Errorf("switch(%d) = %d, want %d", tc.in, res.I, tc.want)
		}
	}
}

func TestInstanceOfAndCheckCast(t *testing.T) {
	res, err := runMain(t, func(pb *asm.ProgramBuilder) {
		pb.Class("A", "")
		pb.Class("B", "A")
		mb := pb.Func("main", true)
		mb.New("B").Store("b")
		mb.Load("b").InstOf("A")  // 1
		mb.Load("b").InstOf("B")  // 1
		mb.New("A").InstOf("B")   // 0
		mb.Add().Add()            // 2
		mb.Load("b").CheckCast("A").Pop()
		mb.RetV()
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.I != 2 {
		t.Errorf("got %d, want 2", res.I)
	}
}

func TestCheckCastFailure(t *testing.T) {
	_, err := runMain(t, func(pb *asm.ProgramBuilder) {
		pb.Class("A", "")
		pb.Class("B", "A")
		mb := pb.Func("main", true)
		mb.New("A").CheckCast("B").Pop()
		mb.Int(0).RetV()
	})
	var ue *vm.UncaughtError
	if !errors.As(err, &ue) || ue.ClassName != bytecode.ExClassCast {
		t.Fatalf("err = %v, want ClassCastException", err)
	}
}

func TestOutOfMemory(t *testing.T) {
	pb := asm.NewProgram()
	mb := pb.Func("main", true)
	mb.Label("loop")
	mb.Int(1 << 16).NewArr(bytecode.ArrKindInt).Pop()
	mb.Jmp("loop")
	prog := pb.MustBuild()
	v := vm.New(prog, 1, true)
	v.Heap.SetLimit(1 << 20)
	_, err := v.RunMain(prog.MethodByName("main"))
	var ue *vm.UncaughtError
	if !errors.As(err, &ue) || ue.ClassName != bytecode.ExOutOfMemory {
		t.Fatalf("err = %v, want OutOfMemoryError", err)
	}
}

func TestVerifierRejectsBadStackDepth(t *testing.T) {
	pb := asm.NewProgram()
	mb := pb.Func("main", true)
	mb.Add().RetV() // pops 2 from empty stack
	if _, err := pb.Build(); err == nil {
		t.Fatal("verifier should reject stack underflow")
	} else if !strings.Contains(err.Error(), "pops") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestVerifierRejectsFallOffEnd(t *testing.T) {
	pb := asm.NewProgram()
	mb := pb.Func("main", false)
	mb.Int(1).Pop() // no ret
	if _, err := pb.Build(); err == nil {
		t.Fatal("verifier should reject falling off code end")
	}
}

func TestVerifierRejectsInconsistentJoin(t *testing.T) {
	pb := asm.NewProgram()
	mb := pb.Func("main", true, "x")
	mb.Load("x").Jnz("push2")
	mb.Int(1).Jmp("join")
	mb.Label("push2").Int(1).Int(2)
	mb.Label("join").RetV() // depth 1 vs 2 at join
	if _, err := pb.Build(); err == nil {
		t.Fatal("verifier should reject inconsistent join depths")
	}
}

func TestVerifierComputesMaxStack(t *testing.T) {
	pb := asm.NewProgram()
	mb := pb.Func("main", true)
	mb.Int(1).Int(2).Int(3).Add().Add().RetV()
	prog := pb.MustBuild()
	m := prog.Methods[prog.MethodByName("main")]
	if m.MaxStack != 3 {
		t.Errorf("MaxStack = %d, want 3", m.MaxStack)
	}
}

func TestDisassembleRoundDoesNotPanic(t *testing.T) {
	pb := asm.NewProgram()
	c := pb.Class("Geometry", "")
	c.Field("x", value.KindInt)
	c.Static("origin", value.KindRef)
	m := c.Method("move", false, "dx")
	m.Line().Load("this").Load("this").GetF("Geometry", "x").Load("dx").Add().PutF("Geometry", "x")
	m.Line().Ret()
	prog := pb.MustBuild()
	out := bytecode.DisassembleProgram(prog)
	if !strings.Contains(out, "Geometry.move") || !strings.Contains(out, "putf") {
		t.Errorf("unexpected disassembly:\n%s", out)
	}
}

func TestThreadSuspendResumeAtMSP(t *testing.T) {
	pb := asm.NewProgram()
	mb := pb.Func("main", true)
	mb.Int(0).Store("i")
	mb.Label("loop").MSP()
	mb.Load("i").Int(5_000_000).Ge().Jnz("done")
	mb.Load("i").Int(1).Add().Store("i")
	mb.Jmp("loop")
	mb.Label("done").Load("i").RetV()
	prog := pb.MustBuild()

	v := vm.New(prog, 1, true)
	v.Profile.AgentLoaded = true
	th, err := v.NewThread(prog.MethodByName("main"))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { th.Run(); close(done) }()

	ack, err := th.RequestSuspend()
	if err != nil {
		t.Fatal(err)
	}
	<-ack
	if th.State() != vm.ThreadParked {
		t.Fatalf("state = %v, want parked", th.State())
	}
	top := th.Top()
	if !top.Method.IsMSP(top.PC) {
		t.Errorf("parked at pc %d which is not an MSP", top.PC)
	}
	if len(top.Stack) != 0 {
		t.Errorf("parked with non-empty operand stack (%d)", len(top.Stack))
	}
	if err := th.Resume(); err != nil {
		t.Fatal(err)
	}
	<-done
	if th.Err != nil {
		t.Fatal(th.Err)
	}
	if th.Result.I != 5_000_000 {
		t.Errorf("result = %d", th.Result.I)
	}
}

func TestThreadKill(t *testing.T) {
	pb := asm.NewProgram()
	mb := pb.Func("main", true)
	mb.Label("loop").MSP()
	mb.Jmp("loop")
	prog := pb.MustBuild()
	v := vm.New(prog, 1, true)
	v.Profile.AgentLoaded = true
	th, _ := v.NewThread(prog.MethodByName("main"))
	done := make(chan struct{})
	go func() { th.Run(); close(done) }()
	ack, err := th.RequestSuspend()
	if err != nil {
		t.Fatal(err)
	}
	<-ack
	if err := th.Kill(); err != nil {
		t.Fatal(err)
	}
	<-done
	if th.Err == nil {
		t.Fatal("killed thread should report an error")
	}
}

func TestSuspendWithoutAgentFails(t *testing.T) {
	pb := asm.NewProgram()
	mb := pb.Func("main", true)
	mb.Int(1).RetV()
	prog := pb.MustBuild()
	v := vm.New(prog, 1, true) // AgentLoaded = false
	th, _ := v.NewThread(prog.MethodByName("main"))
	if _, err := th.RequestSuspend(); err == nil {
		t.Fatal("suspension without agent should fail")
	}
}

func TestRemoteRefRaisesRemoteFault(t *testing.T) {
	pb := asm.NewProgram()
	c := pb.Class("C", "")
	c.Field("f", value.KindInt)
	mb := pb.Func("main", true, "obj")
	mb.Load("obj").GetF("C", "f").RetV()
	prog := pb.MustBuild()
	v := vm.New(prog, 1, true)
	remote := value.MakeRef(2, 99) // node 2 ≠ local node 1
	_, err := v.RunMain(prog.MethodByName("main"), value.RefVal(remote))
	var ue *vm.UncaughtError
	if !errors.As(err, &ue) || ue.ClassName != bytecode.ExRemoteFault {
		t.Fatalf("err = %v, want RemoteAccessFault", err)
	}
	if v.Counters.NPEFaults != 1 {
		t.Errorf("NPEFaults = %d, want 1", v.Counters.NPEFaults)
	}
}

func TestDirtyTrackingOnCachedObject(t *testing.T) {
	pb := asm.NewProgram()
	c := pb.Class("C", "")
	c.Field("f", value.KindInt)
	mb := pb.Func("main", false, "obj")
	mb.Load("obj").Int(9).PutF("C", "f").Ret()
	prog := pb.MustBuild()
	v := vm.New(prog, 1, true)
	cid := prog.ClassByName("C")
	ref, _ := v.Heap.Alloc(cid, 1)
	o := v.Heap.MustGet(ref)
	o.Home = value.MakeRef(2, 5) // pretend it's a cached copy
	if _, err := v.RunMain(prog.MethodByName("main"), value.RefVal(ref)); err != nil {
		t.Fatal(err)
	}
	if !o.Dirty {
		t.Error("write to cached object should set Dirty")
	}
}

func TestPinnedFrameFlagSurvivesCalls(t *testing.T) {
	// Structural check: pinning is per-frame metadata used by SOD
	// segmentation; ensure acquire/release resets it.
	pb := asm.NewProgram()
	inner := pb.Func("inner", true)
	inner.Int(3).RetV()
	mb := pb.Func("main", true)
	mb.Call("inner", 0).RetV()
	prog := pb.MustBuild()
	v := vm.New(prog, 1, true)
	res, err := v.RunMain(prog.MethodByName("main"))
	if err != nil || res.I != 3 {
		t.Fatalf("res=%v err=%v", res, err)
	}
}
