package vm_test

import (
	"sync"
	"testing"

	"repro/internal/asm"
	"repro/internal/value"
	"repro/internal/vm"
)

// loopProgram builds main(iters): a counting loop of ~4 instructions per
// iteration.
func loopProgram(t *testing.T) (*vm.VM, int32) {
	t.Helper()
	pb := asm.NewProgram()
	mb := pb.Func("main", true, "iters")
	mb.Line().Int(0).Store("i")
	mb.Label("loop")
	mb.Line().Load("i").Load("iters").Ge().Jnz("done")
	mb.Line().Load("i").Int(1).Add().Store("i")
	mb.Line().Jmp("loop")
	mb.Label("done")
	mb.Line().Load("i").RetV()
	prog, err := pb.Build()
	if err != nil {
		t.Fatal(err)
	}
	return vm.New(prog, 1, true), prog.MethodByName("main")
}

// TestLiveInstructionsAdvance: the live counter moves while threads run
// and settles at the retired total when they finish.
func TestLiveInstructionsAdvance(t *testing.T) {
	v, mid := loopProgram(t)
	if v.LiveInstructions() != 0 {
		t.Fatal("fresh VM should report zero instructions")
	}
	if _, err := v.RunMain(mid, value.Int(10_000)); err != nil {
		t.Fatal(err)
	}
	if got := v.LiveInstructions(); got < 10_000 {
		t.Errorf("LiveInstructions = %d, want >= 10000", got)
	}
}

// TestNumThreadsTracksLifecycle: registered threads count as load until
// they finish.
func TestNumThreadsTracksLifecycle(t *testing.T) {
	v, mid := loopProgram(t)
	th, err := v.NewThread(mid, value.Int(100))
	if err != nil {
		t.Fatal(err)
	}
	if v.NumThreads() != 1 {
		t.Fatalf("NumThreads = %d before run", v.NumThreads())
	}
	th.Run()
	if v.NumThreads() != 0 {
		t.Fatalf("NumThreads = %d after completion", v.NumThreads())
	}
}

// TestCPUGateConcurrentThreads: many threads on a one-core VM all finish
// with correct results (the gate serializes, never deadlocks).
func TestCPUGateConcurrentThreads(t *testing.T) {
	v, mid := loopProgram(t)
	v.CPU = vm.NewCPUGate(1)
	if v.CPU.Cores() != 1 {
		t.Fatal("gate width")
	}
	const n = 8
	var wg sync.WaitGroup
	results := make([]int64, n)
	for i := 0; i < n; i++ {
		th, err := v.NewThread(mid, value.Int(int64(5_000+i)))
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int, th *vm.Thread) {
			defer wg.Done()
			th.Run()
			results[i] = th.Result.I
		}(i, th)
	}
	wg.Wait()
	for i, r := range results {
		if r != int64(5_000+i) {
			t.Errorf("thread %d: result %d, want %d", i, r, 5_000+i)
		}
	}
}
