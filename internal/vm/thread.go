package vm

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/bytecode"
	"repro/internal/value"
)

// Frame is one activation record: the unit SOD captures and restores. All
// state is explicit — method, pc, locals, operand stack — mirroring a JVM
// frame as exposed through JVMTI.
type Frame struct {
	Method *bytecode.Method
	PC     int32
	Locals []value.Value
	Stack  []value.Value // operand stack; len(Stack) is the current depth

	// Pinned marks frames that must not migrate (e.g. frames holding open
	// sockets — §IV.D pins the web server's connection-holding frames).
	Pinned bool

	// Instrs counts instructions retired while this frame was on top of
	// the stack — the frame's observed weight. The chain planner reads it
	// (through the parked-thread discipline) as a per-frame cost signal.
	Instrs uint64

	// callPC is the pc of the invoke instruction this frame is currently
	// executing a call from. It is valid for every frame except the top
	// one; exception-range matching and state capture use it, because PC
	// has already advanced past the invoke.
	callPC int32
}

func newFrame(m *bytecode.Method) *Frame {
	return &Frame{
		Method: m,
		Locals: make([]value.Value, m.NLocals),
		Stack:  make([]value.Value, 0, m.MaxStack),
		Pinned: m.Pragmas != nil && m.Pragmas["pin"],
	}
}

// push/pop are tiny and used only by the interpreter and toolif.
func (f *Frame) push(v value.Value) { f.Stack = append(f.Stack, v) }
func (f *Frame) pop() value.Value {
	v := f.Stack[len(f.Stack)-1]
	f.Stack = f.Stack[:len(f.Stack)-1]
	return v
}

// Push appends to the operand stack (exported for toolif's forced-return
// value delivery).
func (f *Frame) Push(v value.Value) { f.push(v) }

// ThreadState enumerates the lifecycle of an SVM thread.
type ThreadState int32

const (
	// ThreadNew: created, not yet running.
	ThreadNew ThreadState = iota
	// ThreadRunning: executing bytecode.
	ThreadRunning
	// ThreadParked: suspended at a migration-safe point, frames stable and
	// inspectable by the migration manager.
	ThreadParked
	// ThreadDone: finished (Result/Err populated).
	ThreadDone
)

// suspendRequest asks a running thread to park at its next MSP.
type suspendRequest struct {
	ack chan struct{} // closed when the thread parks
}

// Thread is an SVM thread of control. Exactly one goroutine executes Run;
// other goroutines interact only through RequestSuspend/Resume/Kill and,
// while the thread is parked, through direct frame inspection (the toolif
// layer enforces that discipline).
type Thread struct {
	ID int
	VM *VM

	Frames []*Frame

	// Result and Err are valid once State() == ThreadDone.
	Result value.Value
	Err    error

	state atomic.Int32

	mu      sync.Mutex
	pending *suspendRequest
	resume  chan resumeAction

	// pollCtr counts down instructions between safepoint checks. parking
	// is set once a request is seen so the interpreter checks MSPs on
	// every subsequent instruction until it parks.
	pollCtr int32
	parking bool

	// FramesFloor: frames below this index are "not mine" — a worker
	// thread restoring a migrated segment keeps the floor above zero so a
	// return from the segment's bottom frame completes the thread instead
	// of popping into nothing. The SOD runtime uses this to detect segment
	// completion.
	FramesFloor int

	// Bookkeeping for instrumentation-free loops.
	instrHook InstrHook
	agent     bool

	// UserData lets runtime layers (objman, sodee) attach per-thread
	// context reachable from natives.
	UserData any

	// framePool recycles Frame allocations between calls; Fib-style
	// workloads make millions of calls and the pool keeps allocation out
	// of the dispatch loop.
	framePool []*Frame
}

// acquireFrame returns a frame for m, reusing pooled storage when large
// enough.
func (t *Thread) acquireFrame(m *bytecode.Method) *Frame {
	for i := len(t.framePool) - 1; i >= 0; i-- {
		f := t.framePool[i]
		if cap(f.Locals) >= m.NLocals && cap(f.Stack) >= m.MaxStack {
			t.framePool = append(t.framePool[:i], t.framePool[i+1:]...)
			f.Method = m
			f.PC = 0
			f.callPC = 0
			f.Instrs = 0
			f.Pinned = m.Pragmas != nil && m.Pragmas["pin"]
			f.Locals = f.Locals[:m.NLocals]
			zero := value.Value{}
			for j := range f.Locals {
				f.Locals[j] = zero
			}
			f.Stack = f.Stack[:0]
			return f
		}
	}
	return newFrame(m)
}

// releaseFrame returns a frame to the pool (bounded to avoid hoarding).
func (t *Thread) releaseFrame(f *Frame) {
	if len(t.framePool) < 32 {
		t.framePool = append(t.framePool, f)
	}
}

// AppendRestoredFrame pushes a fully specified frame onto the thread —
// the in-VM restoration path (JESSICA2-style direct frame rebuilding and
// the device profile's Java-level restore). locals shorter than the
// method's slot count are padded with zero values (temp slots).
func (t *Thread) AppendRestoredFrame(m *bytecode.Method, locals []value.Value, pc, callPC int32, pinned bool) {
	f := t.acquireFrame(m)
	copy(f.Locals, locals)
	f.PC = pc
	f.callPC = callPC
	f.Pinned = pinned
	t.Frames = append(t.Frames, f)
}

type resumeAction int

const (
	actionResume resumeAction = iota
	actionKill
)

const pollInterval = 256

func newThread(v *VM, id int) *Thread {
	t := &Thread{
		ID:        id,
		VM:        v,
		resume:    make(chan resumeAction, 1),
		pollCtr:   pollInterval,
		instrHook: v.Profile.InstrHook,
		agent:     v.Profile.AgentLoaded,
	}
	t.state.Store(int32(ThreadNew))
	return t
}

// State returns the thread's lifecycle state.
func (t *Thread) State() ThreadState { return ThreadState(t.state.Load()) }

// Top returns the active frame, or nil when the stack is empty.
func (t *Thread) Top() *Frame {
	if len(t.Frames) == 0 {
		return nil
	}
	return t.Frames[len(t.Frames)-1]
}

// Depth returns the number of frames on the stack.
func (t *Thread) Depth() int { return len(t.Frames) }

// SetInstrHook replaces the per-instruction hook (used by toolif to turn
// breakpoint handling on and off around restoration — the paper's
// "disable all debugging functions before and after a migration event").
func (t *Thread) SetInstrHook(h InstrHook) {
	t.instrHook = h
}

// RequestSuspend asks the thread to park at its next migration-safe point.
// It returns a channel closed when the thread has parked. Calling it on a
// parked thread returns an already-closed channel; on a done thread it
// returns nil. It fails when no agent is loaded (matching the paper: state
// capture requires the JVMTI agent).
func (t *Thread) RequestSuspend() (<-chan struct{}, error) {
	if !t.agent {
		return nil, fmt.Errorf("vm: thread %d: no agent loaded; suspension unsupported", t.ID)
	}
	switch t.State() {
	case ThreadDone:
		return nil, fmt.Errorf("vm: thread %d already done", t.ID)
	case ThreadParked:
		ch := make(chan struct{})
		close(ch)
		return ch, nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.pending == nil {
		t.pending = &suspendRequest{ack: make(chan struct{})}
	}
	return t.pending.ack, nil
}

// Resume unparks a parked thread.
func (t *Thread) Resume() error {
	if t.State() != ThreadParked {
		return fmt.Errorf("vm: thread %d not parked", t.ID)
	}
	t.resume <- actionResume
	return nil
}

// Kill terminates a parked thread without running further bytecode (used
// when the home node discards a fully migrated thread, Fig 1b).
func (t *Thread) Kill() error {
	if t.State() != ThreadParked {
		return fmt.Errorf("vm: thread %d not parked", t.ID)
	}
	t.resume <- actionKill
	return nil
}

// park blocks the interpreter at a safepoint until resumed or killed.
// Returns false when the thread must terminate. The modeled core is
// released for the duration: a suspended thread consumes no CPU.
func (t *Thread) park() bool {
	t.mu.Lock()
	req := t.pending
	t.pending = nil
	t.parking = false
	t.mu.Unlock()
	t.state.Store(int32(ThreadParked))
	if req != nil {
		close(req.ack)
	}
	if cpu := t.VM.CPU; cpu != nil {
		cpu.Release()
		defer cpu.Acquire()
	}
	act := <-t.resume
	t.state.Store(int32(ThreadRunning))
	return act == actionResume
}

// safepointPoll is the slow path of the interpreter's countdown check.
func (t *Thread) safepointPoll() {
	if !t.agent {
		t.pollCtr = pollInterval * 16
		return
	}
	t.mu.Lock()
	hasReq := t.pending != nil
	t.mu.Unlock()
	if hasReq {
		t.parking = true
		t.pollCtr = 1 // check MSP membership every instruction from now on
	} else {
		t.pollCtr = pollInterval
	}
}

// UncaughtError is reported when an exception propagates off the bottom of
// the stack (or below FramesFloor).
type UncaughtError struct {
	ClassName string
	Message   string
	Ref       value.Ref
}

func (e *UncaughtError) Error() string {
	if e.Message != "" {
		return fmt.Sprintf("vm: uncaught %s: %s", e.ClassName, e.Message)
	}
	return fmt.Sprintf("vm: uncaught %s", e.ClassName)
}
