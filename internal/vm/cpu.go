package vm

// CPUGate models a node's execution capacity: a semaphore of core slots
// that interpreter threads hold while executing bytecode. With Cores == 1
// a burst of jobs on one node serializes exactly as it would on a
// single-core machine, which is what makes offloading to an idle node a
// measurable win in the elastic experiments.
//
// Threads acquire a slot when they start running, briefly yield it at
// every safepoint-poll boundary (channel FIFO gives round-robin fairness
// between runnable threads), and release it while parked at a migration
// safe point — a suspended thread consumes no modeled CPU. A thread
// blocked inside a native (an object-fault RPC, a gate) keeps its slot:
// synchronous stalls occupy the core, as they do on real hardware with
// one kernel thread per VM thread.
type CPUGate struct {
	slots chan struct{}
}

// NewCPUGate builds a gate with the given number of cores (minimum 1).
func NewCPUGate(cores int) *CPUGate {
	if cores < 1 {
		cores = 1
	}
	g := &CPUGate{slots: make(chan struct{}, cores)}
	for i := 0; i < cores; i++ {
		g.slots <- struct{}{}
	}
	return g
}

// Cores returns the gate's capacity.
func (g *CPUGate) Cores() int { return cap(g.slots) }

// Acquire blocks until a core is free and claims it.
func (g *CPUGate) Acquire() { <-g.slots }

// Release returns a claimed core.
func (g *CPUGate) Release() { g.slots <- struct{}{} }

// Yield hands the core to a waiting thread, if any, and reclaims one.
// With no waiters it is two uncontended channel operations.
func (g *CPUGate) Yield() {
	g.slots <- struct{}{}
	<-g.slots
}
