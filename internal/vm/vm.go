// Package vm implements the SVM: the stack-based virtual machine substrate
// the SOD reproduction runs on. It provides heaps, threads with explicit
// frame stacks, an interpreter with safepoint-based suspension, exception
// dispatch, native methods, per-class load gating (for on-demand code
// shipping) and the execution-profile hooks the baselines use to model
// slower engines (old JIT, virtualization).
//
// The design keeps every piece of execution state — pc, locals, operand
// stack, statics, heap — explicit and inspectable, which is precisely what
// SOD needs and what Go's own runtime hides; see DESIGN.md §2.
package vm

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/bytecode"
	"repro/internal/value"
)

// Raised describes an in-flight exception a native or the interpreter
// raises. Either Ref names an existing exception object, or ExClass (a
// builtin class name from package bytecode) plus Message describe one to
// allocate.
type Raised struct {
	Ref     value.Ref
	ExClass string
	Message string
}

// InstrHook observes (and may redirect) execution before each instruction.
type InstrHook func(t *Thread, f *Frame, ins bytecode.Instr) *Raised

// NativeImpl is the Go implementation of a declared native function.
// Natives execute inline in the calling frame (no SVM frame is pushed), so
// a thread suspended at a migration-safe point is never "inside" a native —
// the restriction §III.B.1 of the paper imposes.
type NativeImpl func(t *Thread, args []value.Value) (value.Value, *Raised)

// Profile configures the execution engine, modelling the different runtime
// substrates of the paper's comparison systems.
type Profile struct {
	// Name for diagnostics ("jdk", "sodee", "jessica2", "xen", "device").
	Name string
	// InstrHook, when non-nil, runs before every instruction. The JESSICA2
	// profile uses it to model a slower engine; the Xen profile to model
	// periodic hypervisor exits; the toolif layer to implement breakpoints
	// and single-stepping during restoration. A non-nil Raised return is
	// thrown at the current pc (how the restoration protocol injects
	// InvalidStateException at breakpoints, Fig 4b).
	InstrHook InstrHook
	// AgentLoaded models a JVMTI agent being attached at startup (C1):
	// threads then maintain safepoint bookkeeping for suspension requests.
	// Without an agent, suspension requests are not honored.
	AgentLoaded bool
}

// Counters aggregates per-VM execution statistics.
type Counters struct {
	Instructions uint64
	Calls        uint64
	Allocations  uint64
	Exceptions   uint64
	NPEFaults    uint64 // NullPointerExceptions raised on remote refs
	MaxStack     int    // maximum frame-stack height observed (Table I's h)
}

// VM is one virtual machine instance on one node. A node may run several
// (home VM, worker VMs); they share nothing but the network.
type VM struct {
	Prog    *bytecode.Program
	Heap    *Heap
	NodeID  int
	Profile Profile

	// Statics[classID][fieldIdx]. Allocated lazily per class at load time
	// (initialization is ordered before the class's loaded bit, so
	// concurrent threads never see a nil slice). Element reads and writes
	// are NOT synchronized, mirroring the JVM: a program whose threads
	// share mutable statics has an application-level data race there,
	// exactly as the equivalent Java would. Concurrent jobs on one node
	// must not share mutable statics.
	Statics [][]value.Value

	// StaticsDirty[classID] is set on every static write; the object
	// manager reads and clears it when flushing a completed segment's
	// updates home.
	StaticsDirty []bool

	natives []NativeImpl

	// loaded[classID] gates code availability: a VM may only execute code
	// of loaded classes. LoadHook is invoked on first use of an unloaded
	// class (the JVMTI class-file-load-hook analog used for on-demand code
	// shipping); it must arrange for the class to become available and
	// account the transfer. A nil LoadHook means all classes are pre-loaded.
	//
	// The bits are atomic because classes load from network-handler
	// goroutines (migrated-in state, flushes) while resident threads read
	// them on every New/GetS/Call; loadMu serializes the load path itself
	// so statics are initialized exactly once, before the bit flips.
	loaded   []atomic.Bool
	loadMu   sync.Mutex
	LoadHook func(vm *VM, classID int32) error

	// StaticsHook is invoked after a class is loaded, letting runtime
	// profiles implement eager static allocation (JESSICA2 allocates static
	// arrays at class-load time — §IV.A's FFT discussion).
	StaticsHook func(vm *VM, classID int32)

	builtins map[string]int32 // builtin class name -> id

	internMu sync.Mutex
	interned map[string]value.Ref
	strClass int32

	// CPU models the node's execution capacity: when non-nil, at most
	// Cores threads execute bytecode at once; the rest queue. Set it
	// before starting threads.
	CPU *CPUGate

	// liveInstr counts instructions retired across all threads, flushed
	// from the interpreter at safepoint-poll boundaries so load monitors
	// can read an up-to-date step rate without stopping the world.
	liveInstr atomic.Uint64

	mu       sync.Mutex
	threads  map[int]*Thread
	nextTID  int
	Counters Counters
}

// LiveInstructions returns the instructions retired so far, accurate to
// one safepoint-poll interval per running thread. Load monitors diff
// successive readings for a step rate.
func (v *VM) LiveInstructions() uint64 { return v.liveInstr.Load() }

// NumThreads returns the number of registered (created, not yet finished)
// threads — the node's runnable count for load signals. Parked and
// queued-for-CPU threads count: they are demand on this node.
func (v *VM) NumThreads() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.threads)
}

// New creates a VM for prog on the given node. All classes start loaded
// unless preloaded is false.
func New(prog *bytecode.Program, nodeID int, preloaded bool) *VM {
	v := &VM{
		Prog:         prog,
		Heap:         NewHeap(nodeID),
		NodeID:       nodeID,
		Statics:      make([][]value.Value, len(prog.Classes)),
		StaticsDirty: make([]bool, len(prog.Classes)),
		natives:      make([]NativeImpl, len(prog.Natives)),
		loaded:       make([]atomic.Bool, len(prog.Classes)),
		interned:     make(map[string]value.Ref),
		threads:      make(map[int]*Thread),
		builtins:     make(map[string]int32),
	}
	for _, name := range bytecode.BuiltinClassNames {
		v.builtins[name] = prog.ClassByName(name)
	}
	v.strClass = v.builtins[bytecode.ClassString]
	if preloaded {
		for i := range v.loaded {
			v.initStatics(int32(i))
			v.loaded[i].Store(true)
		}
	} else {
		// Builtins are always resident (they ship with the runtime).
		for _, name := range bytecode.BuiltinClassNames {
			id := prog.ClassByName(name)
			if id >= 0 {
				v.initStatics(id)
				v.loaded[id].Store(true)
			}
		}
	}
	return v
}

func (v *VM) initStatics(classID int32) {
	if v.Statics[classID] == nil {
		c := v.Prog.Classes[classID]
		s := make([]value.Value, len(c.Statics))
		for i, f := range c.Statics {
			switch f.Kind {
			case value.KindInt:
				s[i] = value.Int(0)
			case value.KindFloat:
				s[i] = value.Float(0)
			default:
				s[i] = value.Null()
			}
		}
		v.Statics[classID] = s
	}
}

// BindNative installs the implementation of a declared native. It panics
// on unknown names so mis-wired runtimes fail fast at startup.
func (v *VM) BindNative(name string, impl NativeImpl) {
	id := v.Prog.NativeByName(name)
	if id < 0 {
		panic(fmt.Sprintf("vm: BindNative: unknown native %q", name))
	}
	v.natives[id] = impl
}

// BindNativeIfDeclared installs impl when the program declares name;
// missing declarations are ignored (programs declare only what they use).
func (v *VM) BindNativeIfDeclared(name string, impl NativeImpl) {
	if id := v.Prog.NativeByName(name); id >= 0 {
		v.natives[id] = impl
	}
}

// ClassLoaded reports whether classID is loaded in this VM.
func (v *VM) ClassLoaded(classID int32) bool { return v.loaded[classID].Load() }

// MarkLoaded marks a class available (called by the code-shipping layer
// after the class "bytes" arrive). Statics are initialized before the
// loaded bit is published, so a concurrent thread that observes the bit
// always finds them allocated.
func (v *VM) MarkLoaded(classID int32) {
	v.loadMu.Lock()
	defer v.loadMu.Unlock()
	if v.loaded[classID].Load() {
		return
	}
	v.initStatics(classID)
	if v.StaticsHook != nil {
		v.StaticsHook(v, classID)
	}
	v.loaded[classID].Store(true)
}

// EnsureLoaded forces classID to be loaded, invoking the load hook when
// necessary (the runtime analog of class loading during deserialization).
func (v *VM) EnsureLoaded(classID int32) error {
	if r := v.ensureLoaded(classID); r != nil {
		return fmt.Errorf("vm: %s: %s", r.ExClass, r.Message)
	}
	return nil
}

// ensureLoaded triggers the load hook on first use of a class.
func (v *VM) ensureLoaded(classID int32) *Raised {
	if v.loaded[classID].Load() {
		return nil
	}
	if v.LoadHook == nil {
		v.MarkLoaded(classID)
		return nil
	}
	if err := v.LoadHook(v, classID); err != nil {
		return &Raised{ExClass: bytecode.ExClassNotFound, Message: err.Error()}
	}
	v.MarkLoaded(classID)
	return nil
}

// BuiltinClass returns the class id of a builtin by name.
func (v *VM) BuiltinClass(name string) int32 { return v.builtins[name] }

// Intern returns the interned string object for s.
func (v *VM) Intern(s string) value.Ref {
	v.internMu.Lock()
	defer v.internMu.Unlock()
	if ref, ok := v.interned[s]; ok {
		return ref
	}
	ref, err := v.Heap.AllocBytes(v.strClass, []byte(s))
	if err != nil {
		panic(err) // interning tiny strings under OOM limit: treat as fatal
	}
	v.interned[s] = ref
	return ref
}

// NewString allocates a (non-interned) string object.
func (v *VM) NewString(s string) (value.Ref, *Raised) {
	ref, err := v.Heap.AllocBytes(v.strClass, []byte(s))
	if err != nil {
		return value.NullRef, &Raised{ExClass: bytecode.ExOutOfMemory, Message: "string alloc"}
	}
	return ref, nil
}

// FaultOrNPE builds the exception a native should raise when it cannot
// dereference val: RemoteAccessFault for a remote reference (so the
// injected fault handlers fetch it and retry the statement) or
// NullPointerException otherwise — the same discrimination the
// interpreter applies at bytecode dereferences.
func (v *VM) FaultOrNPE(val value.Value) *Raised {
	if val.Kind == value.KindRef && val.R != value.NullRef && v.Heap.Get(val.R) == nil {
		v.mu.Lock()
		v.Counters.NPEFaults++
		v.mu.Unlock()
		return &Raised{ExClass: bytecode.ExRemoteFault}
	}
	return &Raised{ExClass: bytecode.ExNullPointer}
}

// GoString extracts the Go string from a string/byte-array object; ok is
// false when ref is not a local byte array.
func (v *VM) GoString(ref value.Ref) (string, bool) {
	o := v.Heap.Get(ref)
	if o == nil || !o.IsArray || o.AKind != bytecode.ArrKindByte {
		return "", false
	}
	return string(o.AB), true
}

// AllocException builds an exception object of the given builtin class.
func (v *VM) AllocException(exClass, message string) value.Ref {
	cid, ok := v.builtins[exClass]
	if !ok || cid < 0 {
		panic(fmt.Sprintf("vm: unknown builtin exception class %q", exClass))
	}
	// Exception objects are exempt from the heap limit: an OutOfMemoryError
	// must be allocatable exactly when the heap is full.
	ref := v.Heap.AllocExempt(cid, v.Prog.NumInstanceFields(cid))
	o := v.Heap.MustGet(ref)
	if message != "" && len(o.Fields) > bytecode.ExceptionFieldMsg {
		msgRef := v.Heap.AllocBytesExempt(v.strClass, []byte(message))
		o.Fields[bytecode.ExceptionFieldMsg] = value.RefVal(msgRef)
	}
	return ref
}

// ExceptionMessage extracts the message of an exception object, if any.
func (v *VM) ExceptionMessage(ref value.Ref) string {
	o := v.Heap.Get(ref)
	if o == nil || o.IsArray || len(o.Fields) <= bytecode.ExceptionFieldMsg {
		return ""
	}
	msg := o.Fields[bytecode.ExceptionFieldMsg]
	if msg.Kind != value.KindRef {
		return ""
	}
	s, _ := v.GoString(msg.R)
	return s
}

// NewThread creates a thread whose initial frame invokes the given method
// with args. The thread is registered but not started; call Run (usually
// in its own goroutine).
func (v *VM) NewThread(methodID int32, args ...value.Value) (*Thread, error) {
	m := v.Prog.Methods[methodID]
	if len(args) != m.NArgs {
		return nil, fmt.Errorf("vm: method %s takes %d args, got %d", m.Name, m.NArgs, len(args))
	}
	if r := v.ensureLoaded(classOf(m)); r != nil {
		return nil, fmt.Errorf("vm: loading class for %s: %s", m.Name, r.Message)
	}
	v.mu.Lock()
	v.nextTID++
	t := newThread(v, v.nextTID)
	v.threads[t.ID] = t
	v.mu.Unlock()
	f := newFrame(m)
	copy(f.Locals, args)
	t.Frames = append(t.Frames, f)
	return t, nil
}

// Thread returns a registered thread by id, or nil.
func (v *VM) Thread(id int) *Thread {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.threads[id]
}

func (v *VM) dropThread(id int) {
	v.mu.Lock()
	delete(v.threads, id)
	v.mu.Unlock()
}

func classOf(m *bytecode.Method) int32 {
	if m.ClassID >= 0 {
		return m.ClassID
	}
	return 0 // free functions belong to Object's "module"; always loaded
}

// RunMain is the convenience entry point: create a thread on methodID, run
// it to completion and return its result.
func (v *VM) RunMain(methodID int32, args ...value.Value) (value.Value, error) {
	t, err := v.NewThread(methodID, args...)
	if err != nil {
		return value.Value{}, err
	}
	t.Run()
	return t.Result, t.Err
}
