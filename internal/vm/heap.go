package vm

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/bytecode"
	"repro/internal/value"
)

// Object is a heap cell: either a class instance (Fields populated) or an
// array (one of AI/AF/AB/AR populated according to AKind). Strings are byte
// arrays whose Class is the String class.
//
// Distribution metadata: Home is non-null when this object is a locally
// cached copy of an object whose master lives on another node; it holds the
// master's reference. Dirty marks cached copies (and, on the home side,
// master objects) that have been written since the last flush. Status is
// the word read by OpGetStatus — it exists solely for the paper's baseline
// DSM scheme that checks a status field before every access (Fig 5, B1).
type Object struct {
	Class int32
	Home  value.Ref
	Dirty bool
	// Status is 1 when the object is valid/local under the status-check
	// protocol. The object-faulting protocol never reads it.
	Status int32

	Fields []value.Value

	IsArray bool
	AKind   int32
	AI      []int64
	AF      []float64
	AB      []byte
	AR      []value.Ref
}

// Len returns the element count of an array object.
func (o *Object) Len() int {
	switch o.AKind {
	case bytecode.ArrKindInt:
		return len(o.AI)
	case bytecode.ArrKindFloat:
		return len(o.AF)
	case bytecode.ArrKindByte:
		return len(o.AB)
	case bytecode.ArrKindRef:
		return len(o.AR)
	}
	return 0
}

// ByteSize returns the approximate memory footprint of the object payload,
// used for heap accounting, OOM simulation and transfer-size computation.
func (o *Object) ByteSize() int64 {
	if o.IsArray {
		switch o.AKind {
		case bytecode.ArrKindInt:
			return int64(8 * len(o.AI))
		case bytecode.ArrKindFloat:
			return int64(8 * len(o.AF))
		case bytecode.ArrKindByte:
			return int64(len(o.AB))
		case bytecode.ArrKindRef:
			return int64(8 * len(o.AR))
		}
	}
	return int64(16 * len(o.Fields))
}

// Heap is a per-node object store. References allocated by this heap carry
// the heap's node id; the sequence number indexes the object table
// directly, so local dereference is a bounds check plus a slice load — the
// cheap "null check" the object-faulting scheme rides on.
//
// A reference whose node id differs from the heap's is *remote*: it names
// an object mastered elsewhere. Dereferencing it raises
// NullPointerException exactly as the paper's nulled references do; the
// injected object-fault handlers catch it and call the object manager.
//
// A node may run many threads at once (concurrent jobs, migrated-in
// workers), so the heap must tolerate concurrent allocation and
// dereference. The object table is append-only between Resets: writers
// serialize on mu and publish the grown slice through an atomic pointer;
// readers load the snapshot without locking, keeping Get — the
// interpreter's hottest path — free of contention.
type Heap struct {
	node  int
	mu    sync.Mutex                // guards appends to objs, bytes, limit
	objs  []*Object                 // objs[seq-1]; authoritative copy, guarded by mu
	view  atomic.Pointer[[]*Object] // snapshot readers index without locking
	bytes int64
	limit int64 // OOM threshold in bytes; 0 = unlimited

	// WriteHook, when set, observes every object write (used by the Xen
	// baseline's dirty-page tracking). The hook must be cheap.
	WriteHook func(ref value.Ref, o *Object)
}

// NewHeap returns an empty heap for the given node id.
func NewHeap(node int) *Heap {
	if node < 0 || node > value.MaxNodeID {
		panic(fmt.Sprintf("vm: node id %d out of range", node))
	}
	h := &Heap{node: node}
	h.view.Store(new([]*Object))
	return h
}

// snapshot returns the current reader view of the object table.
func (h *Heap) snapshot() []*Object {
	return *h.view.Load()
}

// Node returns the heap's node id.
func (h *Heap) Node() int { return h.node }

// SetLimit sets the OOM threshold in bytes (0 disables).
func (h *Heap) SetLimit(limit int64) {
	h.mu.Lock()
	h.limit = limit
	h.mu.Unlock()
}

// Bytes returns the live payload byte count.
func (h *Heap) Bytes() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.bytes
}

// NumObjects returns the number of allocated objects.
func (h *Heap) NumObjects() int { return len(h.snapshot()) }

// ErrOOM is the sentinel the allocator reports when the heap limit is hit;
// the interpreter converts it to an OutOfMemoryError exception.
var ErrOOM = fmt.Errorf("vm: heap limit exceeded")

func (h *Heap) track(o *Object) (value.Ref, error) {
	sz := o.ByteSize()
	h.mu.Lock()
	if h.limit > 0 && h.bytes+sz > h.limit {
		h.mu.Unlock()
		return value.NullRef, ErrOOM
	}
	ref := h.trackLocked(o, sz)
	h.mu.Unlock()
	return ref, nil
}

// trackLocked inserts o and republishes the reader snapshot. Callers hold mu.
func (h *Heap) trackLocked(o *Object, sz int64) value.Ref {
	h.bytes += sz
	h.objs = append(h.objs, o)
	view := h.objs
	h.view.Store(&view)
	return value.MakeRef(h.node, uint64(len(h.objs)))
}

// trackExempt inserts without consulting the limit (exception objects must
// be allocatable even at the OOM boundary, like the JVM's reserved
// OutOfMemoryError).
func (h *Heap) trackExempt(o *Object, sz int64) value.Ref {
	h.mu.Lock()
	ref := h.trackLocked(o, sz)
	h.mu.Unlock()
	return ref
}

// AllocExempt allocates a class instance ignoring the heap limit. The
// runtime uses it for exception objects and their message strings.
func (h *Heap) AllocExempt(class int32, nfields int) value.Ref {
	o := &Object{Class: class, Status: 1, Fields: make([]value.Value, nfields)}
	for i := range o.Fields {
		o.Fields[i] = value.Null()
	}
	return h.trackExempt(o, o.ByteSize())
}

// AllocBytesExempt allocates a byte-array object ignoring the heap limit.
func (h *Heap) AllocBytesExempt(class int32, b []byte) value.Ref {
	o := &Object{Class: class, Status: 1, IsArray: true, AKind: bytecode.ArrKindByte, AB: b}
	return h.trackExempt(o, o.ByteSize())
}

// Alloc allocates a class instance with nfields zeroed fields. Fields of
// ref kind start null; int/float fields start 0. Status starts 1 (valid):
// locally created objects are always valid under both DSM protocols.
func (h *Heap) Alloc(class int32, nfields int) (value.Ref, error) {
	o := &Object{Class: class, Status: 1, Fields: make([]value.Value, nfields)}
	for i := range o.Fields {
		o.Fields[i] = value.Null() // a uniform zero; kind refined on store
	}
	return h.track(o)
}

// AllocArray allocates an array object of the given element kind.
func (h *Heap) AllocArray(class int32, kind int32, length int) (value.Ref, error) {
	if length < 0 {
		return value.NullRef, fmt.Errorf("vm: negative array length %d", length)
	}
	o := &Object{Class: class, Status: 1, IsArray: true, AKind: kind}
	switch kind {
	case bytecode.ArrKindInt:
		o.AI = make([]int64, length)
	case bytecode.ArrKindFloat:
		o.AF = make([]float64, length)
	case bytecode.ArrKindByte:
		o.AB = make([]byte, length)
	case bytecode.ArrKindRef:
		o.AR = make([]value.Ref, length)
	default:
		return value.NullRef, fmt.Errorf("vm: bad array kind %d", kind)
	}
	return h.track(o)
}

// AllocBytes allocates a byte-array object adopting b (no copy).
func (h *Heap) AllocBytes(class int32, b []byte) (value.Ref, error) {
	o := &Object{Class: class, Status: 1, IsArray: true, AKind: bytecode.ArrKindByte, AB: b}
	return h.track(o)
}

// Adopt inserts a fully-formed object (used by codecs restoring migrated
// state) and returns its new local reference.
func (h *Heap) Adopt(o *Object) (value.Ref, error) { return h.track(o) }

// Get dereferences a local reference. It returns nil when ref is null,
// remote (different node id), or out of range — all the cases that must
// raise NullPointerException at use sites.
func (h *Heap) Get(ref value.Ref) *Object {
	if !ref.Usable() || ref.Node() != h.node {
		return nil
	}
	objs := h.snapshot()
	seq := ref.Seq()
	if seq == 0 || seq > uint64(len(objs)) {
		return nil
	}
	return objs[seq-1]
}

// MustGet is Get that panics on failure; for runtime-internal references
// that are known-local by construction.
func (h *Heap) MustGet(ref value.Ref) *Object {
	o := h.Get(ref)
	if o == nil {
		panic(fmt.Sprintf("vm: dangling local ref %v", ref))
	}
	return o
}

// IsLocal reports whether ref dereferences on this heap.
func (h *Heap) IsLocal(ref value.Ref) bool { return h.Get(ref) != nil }

// ForEach visits every live object with its reference.
func (h *Heap) ForEach(fn func(ref value.Ref, o *Object) bool) {
	for i, o := range h.snapshot() {
		if o == nil {
			continue
		}
		if !fn(value.MakeRef(h.node, uint64(i+1)), o) {
			return
		}
	}
}

// Reset drops all objects (worker VM reuse between jobs). Callers must
// ensure no thread is executing on this heap.
func (h *Heap) Reset() {
	h.mu.Lock()
	h.objs = nil
	h.view.Store(new([]*Object))
	h.bytes = 0
	h.mu.Unlock()
}
