package nfs

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/netsim"
)

// fastIO replaces the sleep seam for tests that check accounting, not
// timing.
func fastIO(t *testing.T) *[]time.Duration {
	t.Helper()
	var slept []time.Duration
	old := sleepFor
	sleepFor = func(d time.Duration) { slept = append(slept, d) }
	t.Cleanup(func() { sleepFor = old })
	return &slept
}

func newFS() *Server {
	return NewServer(netsim.NewNetwork(netsim.LinkSpec{BandwidthBps: 100_000_000, Latency: time.Millisecond}))
}

func TestReadContentDeterministic(t *testing.T) {
	fastIO(t)
	fs := newFS()
	fs.Host(File{Name: "a", Host: 1, Size: 200_000, Seed: 5})
	b1 := make([]byte, 1000)
	b2 := make([]byte, 1000)
	if _, err := fs.Read(1, "a", 12345, b1); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Read(1, "a", 12345, b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Error("content not deterministic")
	}
}

func TestNeedlePlantedAtOffset(t *testing.T) {
	fastIO(t)
	fs := newFS()
	fs.Host(File{Name: "a", Host: 1, Size: 100_000, Seed: 5, Needle: "FINDME", NeedleOff: 50_000})
	buf := make([]byte, 20)
	if _, err := fs.Read(1, "a", 49_995, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf, []byte("FINDME")) {
		t.Errorf("needle missing: %q", buf)
	}
}

func TestNeedleSpansReadBoundary(t *testing.T) {
	fastIO(t)
	fs := newFS()
	fs.Host(File{Name: "a", Host: 1, Size: 300_000, Seed: 5, Needle: "SPANSPAN", NeedleOff: ChunkSize - 4})
	// Read across the chunk boundary in one call.
	buf := make([]byte, 16)
	if _, err := fs.Read(1, "a", int64(ChunkSize-8), buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf, []byte("SPANSPAN")) {
		t.Errorf("spanning needle missing: %q", buf)
	}
}

func TestEOFSemantics(t *testing.T) {
	fastIO(t)
	fs := newFS()
	fs.Host(File{Name: "a", Host: 1, Size: 100, Seed: 1})
	buf := make([]byte, 64)
	n, err := fs.Read(1, "a", 80, buf)
	if err != nil || n != 20 {
		t.Fatalf("short read: n=%d err=%v", n, err)
	}
	n, err = fs.Read(1, "a", 100, buf)
	if err != nil || n != 0 {
		t.Fatalf("EOF read: n=%d err=%v", n, err)
	}
}

func TestLocalVsRemoteAccounting(t *testing.T) {
	fastIO(t)
	fs := newFS()
	fs.Host(File{Name: "a", Host: 2, Size: ChunkSize * 3, Seed: 1})
	buf := make([]byte, ChunkSize)
	// Remote reader (node 1).
	if _, err := fs.Read(1, "a", 0, buf); err != nil {
		t.Fatal(err)
	}
	if fs.RemoteReads != 1 || fs.LocalReads != 0 {
		t.Errorf("remote=%d local=%d after remote read", fs.RemoteReads, fs.LocalReads)
	}
	// Local reader (node 2), different chunk.
	if _, err := fs.Read(2, "a", ChunkSize, buf); err != nil {
		t.Fatal(err)
	}
	if fs.LocalReads != 1 {
		t.Errorf("local=%d", fs.LocalReads)
	}
}

func TestBufferCacheHitsAndClear(t *testing.T) {
	fastIO(t)
	fs := newFS()
	fs.Host(File{Name: "a", Host: 2, Size: ChunkSize, Seed: 1})
	buf := make([]byte, 100)
	fs.Read(1, "a", 0, buf) //nolint:errcheck
	fs.Read(1, "a", 50, buf) //nolint:errcheck // same chunk → cache
	if fs.CacheHits != 1 {
		t.Errorf("cache hits = %d, want 1", fs.CacheHits)
	}
	if fs.RemoteReads != 1 {
		t.Errorf("remote reads = %d, want 1", fs.RemoteReads)
	}
	// Per-node caches: node 3 reading the same chunk pays again.
	fs.Read(3, "a", 0, buf) //nolint:errcheck
	if fs.RemoteReads != 2 {
		t.Errorf("remote reads = %d, want 2 (cache is per node)", fs.RemoteReads)
	}
	fs.ClearCaches()
	fs.Read(1, "a", 0, buf) //nolint:errcheck
	if fs.RemoteReads != 3 {
		t.Errorf("remote reads = %d, want 3 after cache clear", fs.RemoteReads)
	}
}

func TestRemoteReadPaysLinkTime(t *testing.T) {
	slept := fastIO(t)
	fs := newFS()
	fs.Host(File{Name: "a", Host: 2, Size: ChunkSize, Seed: 1})
	buf := make([]byte, ChunkSize)
	if _, err := fs.Read(1, "a", 0, buf); err != nil {
		t.Fatal(err)
	}
	// 64 KiB at 100 Mbps ≈ 5.2 ms (+1ms latency), charged through the
	// debt accumulator (above the quantum, so it sleeps immediately).
	var total time.Duration
	for _, d := range *slept {
		total += d
	}
	if total < 5*time.Millisecond || total > 10*time.Millisecond {
		t.Errorf("remote chunk cost %v, want ~6ms", total)
	}
}

func TestUnknownFile(t *testing.T) {
	fastIO(t)
	fs := newFS()
	if _, err := fs.Read(1, "nope", 0, make([]byte, 8)); err == nil {
		t.Fatal("expected error for unknown file")
	}
}

func TestMetaRoundTrip(t *testing.T) {
	f := File{Name: "x/y.dat", Host: 7, Size: 1 << 30, Seed: 99, Needle: "n", NeedleOff: 12}
	got, err := DecodeMeta(EncodeMeta(f))
	if err != nil {
		t.Fatal(err)
	}
	if got != f {
		t.Errorf("round trip: %+v != %+v", got, f)
	}
}
