// Package nfs simulates the network file system of the paper's locality
// experiments (§IV.C, Table VI): files are hosted by specific nodes; a
// read from the hosting node goes at local-disk speed, a read from any
// other node pays shaped network transfer (the NFS mount). Each node has
// an OS buffer cache that the experiment harness clears between runs,
// matching the paper's methodology ("the OS buffer cache was cleared
// prior to each run to isolate the locality effect").
//
// File contents are deterministic pseudo-random bytes generated from the
// file's seed, so multi-hundred-megabyte corpora cost no memory: a chunk
// is synthesized on first (cold) read and the search workloads still see
// stable, seekable content with plantable needles.
package nfs

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/netsim"
	"repro/internal/wire"
)

// ChunkSize is the read granularity (bytes) — one NFS rsize block.
const ChunkSize = 64 << 10

// localDiskBps models the host's local read bandwidth (SAS RAID-1 in the
// paper's testbed): 300 MB/s.
const localDiskBps = 300 << 20

// File describes one hosted file.
type File struct {
	Name string
	Host int
	Size int64
	Seed uint64
	// Needle, when non-empty, is planted at NeedleOff — the search target
	// of the text-search workloads.
	Needle    string
	NeedleOff int64
}

// Server is the cluster-wide file registry plus per-node buffer caches.
// One Server instance backs all nodes (it plays the role of the shared
// NFS namespace); per-node state is keyed by node id.
type Server struct {
	mu     sync.Mutex
	files  map[string]*File
	caches map[int]map[cacheKey]bool
	net    *netsim.Network
	// debt accumulates per-reader I/O wait so sleeps happen in multi-
	// millisecond quanta; per-chunk sub-millisecond sleeps would otherwise
	// be quantized up by the OS timer, flattening the local/remote cost
	// difference the locality experiments measure.
	debt map[int]time.Duration

	// Stats
	LocalReads  int
	RemoteReads int
	CacheHits   int
}

// sleepQuantum is the minimum accumulated wait that triggers a real sleep.
const sleepQuantum = 2 * time.Millisecond

// addDelay charges a reader for I/O time, sleeping once enough debt has
// accumulated.
func (s *Server) addDelay(reader int, d time.Duration) {
	s.mu.Lock()
	s.debt[reader] += d
	due := s.debt[reader]
	if due < sleepQuantum {
		s.mu.Unlock()
		return
	}
	s.debt[reader] = 0
	s.mu.Unlock()
	sleepFor(due)
}

type cacheKey struct {
	name  string
	chunk int64
}

// NewServer creates an empty registry over the given fabric.
func NewServer(net *netsim.Network) *Server {
	s := &Server{
		files:  make(map[string]*File),
		caches: make(map[int]map[cacheKey]bool),
		net:    net,
		debt:   make(map[int]time.Duration),
	}
	return s
}

// Host registers a file.
func (s *Server) Host(f File) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cp := f
	s.files[f.Name] = &cp
}

// Lookup returns a file's metadata.
func (s *Server) Lookup(name string) (File, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	f, ok := s.files[name]
	if !ok {
		return File{}, false
	}
	return *f, true
}

// Files returns the names of all hosted files (sorted order not
// guaranteed).
func (s *Server) Files() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.files))
	for n := range s.files {
		names = append(names, n)
	}
	return names
}

// ClearCaches drops every node's buffer cache (the paper's pre-run step).
func (s *Server) ClearCaches() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.caches = make(map[int]map[cacheKey]bool)
}

// cacheLookup checks & populates the node's buffer cache for a chunk.
func (s *Server) cacheLookup(node int, key cacheKey) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := s.caches[node]
	if c == nil {
		c = make(map[cacheKey]bool)
		s.caches[node] = c
	}
	if c[key] {
		s.CacheHits++
		return true
	}
	c[key] = true
	return false
}

// Read reads up to len(buf) bytes of file name at off, as observed by
// reader — the node where the computation currently executes. The cost
// model: buffer-cache hit is free; a cold local read pays disk time; a
// cold remote read pays the shaped link between reader and host (the NFS
// transfer). Returns bytes read (0 at EOF).
func (s *Server) Read(reader int, name string, off int64, buf []byte) (int, error) {
	s.mu.Lock()
	f, ok := s.files[name]
	s.mu.Unlock()
	if !ok {
		return 0, fmt.Errorf("nfs: no such file %q", name)
	}
	if off >= f.Size {
		return 0, nil
	}
	n := int64(len(buf))
	if off+n > f.Size {
		n = f.Size - off
	}

	// Pay transfer per chunk touched.
	first := off / ChunkSize
	last := (off + n - 1) / ChunkSize
	for c := first; c <= last; c++ {
		key := cacheKey{f.Name, c}
		if s.cacheLookup(reader, key) {
			continue
		}
		clen := chunkLen(f.Size, c)
		if reader == f.Host {
			s.mu.Lock()
			s.LocalReads++
			s.mu.Unlock()
			s.addDelay(reader, diskTime(clen))
		} else {
			s.mu.Lock()
			s.RemoteReads++
			s.mu.Unlock()
			// The NFS transfer: shaped time to pull the chunk from the host.
			spec := s.net.LinkSpecBetween(f.Host, reader)
			s.addDelay(reader, spec.TransferTime(clen)+spec.Latency)
		}
	}

	fillContent(f, off, buf[:n])
	return int(n), nil
}

func chunkLen(size, chunk int64) int {
	start := chunk * ChunkSize
	end := start + ChunkSize
	if end > size {
		end = size
	}
	return int(end - start)
}

// fillContent synthesizes deterministic content: xorshift bytes restricted
// to lowercase letters/spaces, with the needle substring planted at
// NeedleOff.
func fillContent(f *File, off int64, buf []byte) {
	for i := range buf {
		pos := off + int64(i)
		x := f.Seed ^ uint64(pos)*0x9E3779B97F4A7C15
		x ^= x >> 33
		x *= 0xFF51AFD7ED558CCD
		x ^= x >> 33
		b := byte(x % 27)
		if b == 26 {
			buf[i] = ' '
		} else {
			buf[i] = 'a' + b
		}
	}
	if f.Needle != "" {
		for i := range buf {
			pos := off + int64(i)
			rel := pos - f.NeedleOff
			if rel >= 0 && rel < int64(len(f.Needle)) {
				buf[i] = f.Needle[rel]
			}
		}
	}
}

// EncodeMeta serializes a file's metadata (for control messages).
func EncodeMeta(f File) []byte {
	w := wire.NewWriter(64)
	w.String(f.Name)
	w.Varint(int64(f.Host))
	w.Varint(f.Size)
	w.Uvarint(f.Seed)
	w.String(f.Needle)
	w.Varint(f.NeedleOff)
	return w.Bytes()
}

// DecodeMeta parses EncodeMeta output.
func DecodeMeta(b []byte) (File, error) {
	r := wire.NewReader(b)
	f := File{
		Name:      r.String(),
		Host:      int(r.Varint()),
		Size:      r.Varint(),
		Seed:      r.Uvarint(),
		Needle:    r.String(),
		NeedleOff: r.Varint(),
	}
	return f, r.Err()
}
