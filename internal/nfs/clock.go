package nfs

import "time"

// diskTime returns the local-disk read time of n bytes.
func diskTime(n int) time.Duration {
	return time.Duration(float64(n) / localDiskBps * float64(time.Second))
}

// sleepFor is a seam for tests to intercept simulated I/O waits.
var sleepFor = func(d time.Duration) {
	if d > 0 {
		time.Sleep(d)
	}
}
