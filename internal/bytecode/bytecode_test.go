package bytecode

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/value"
)

func TestOpStringsAndEffects(t *testing.T) {
	for op := Op(0); int(op) < NumOps; op++ {
		if strings.HasPrefix(op.String(), "op(") {
			t.Errorf("opcode %d has no mnemonic", op)
		}
		pops, pushes, variable := op.Effect()
		if !variable && (pops < 0 || pushes < 0 || pops > 3 || pushes > 2) {
			t.Errorf("%s: suspicious effect %d/%d", op, pops, pushes)
		}
	}
}

func TestTerminalAndBranchClassification(t *testing.T) {
	for _, op := range []Op{OpJmp, OpTSwitch, OpRet, OpRetV, OpThrow} {
		if !op.IsTerminal() {
			t.Errorf("%s should be terminal", op)
		}
	}
	for _, op := range []Op{OpJz, OpJnz, OpAdd, OpCall} {
		if op.IsTerminal() {
			t.Errorf("%s should not be terminal", op)
		}
	}
	for _, op := range []Op{OpJmp, OpJz, OpJnz} {
		if !op.IsBranch() {
			t.Errorf("%s should be a branch", op)
		}
	}
}

func TestSwitchTableLookup(t *testing.T) {
	tbl := SwitchTable{Keys: []int32{2, 5, 9}, Targets: []int32{20, 50, 90}, Default: 1}
	cases := map[int32]int32{2: 20, 5: 50, 9: 90, 0: 1, 3: 1, 100: 1}
	for k, want := range cases {
		if got := tbl.Lookup(k); got != want {
			t.Errorf("Lookup(%d) = %d, want %d", k, got, want)
		}
	}
}

func TestQuickSwitchLookupMatchesLinearScan(t *testing.T) {
	f := func(keys []int32, probe int32) bool {
		seen := map[int32]bool{}
		var uniq []int32
		for _, k := range keys {
			if !seen[k] {
				seen[k] = true
				uniq = append(uniq, k)
			}
		}
		for i := 0; i < len(uniq); i++ {
			for j := i + 1; j < len(uniq); j++ {
				if uniq[j] < uniq[i] {
					uniq[i], uniq[j] = uniq[j], uniq[i]
				}
			}
		}
		tbl := SwitchTable{Keys: uniq, Default: -1}
		for _, k := range uniq {
			tbl.Targets = append(tbl.Targets, k*10)
		}
		want := int32(-1)
		for _, k := range uniq {
			if k == probe {
				want = k * 10
			}
		}
		return tbl.Lookup(probe) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMSPBitmap(t *testing.T) {
	m := &Method{Code: make([]Instr, 130)}
	m.MSPs = []int32{0, 64, 65, 129}
	m.BuildMSPSet()
	for pc := int32(0); pc < 130; pc++ {
		want := pc == 0 || pc == 64 || pc == 65 || pc == 129
		if m.IsMSP(pc) != want {
			t.Errorf("IsMSP(%d) = %v", pc, m.IsMSP(pc))
		}
	}
	if m.IsMSP(-1) || m.IsMSP(1000) {
		t.Error("out-of-range pcs are not MSPs")
	}
}

func TestLineTables(t *testing.T) {
	m := &Method{
		Code:  make([]Instr, 20),
		Lines: []LineEntry{{PC: 0, Line: 1}, {PC: 5, Line: 2}, {PC: 12, Line: 3}},
	}
	cases := []struct{ pc, line, start int32 }{
		{0, 1, 0}, {4, 1, 0}, {5, 2, 5}, {11, 2, 5}, {12, 3, 12}, {19, 3, 12},
	}
	for _, c := range cases {
		if got := m.LineAt(c.pc); got != c.line {
			t.Errorf("LineAt(%d) = %d, want %d", c.pc, got, c.line)
		}
		if got := m.LineStart(c.pc); got != c.start {
			t.Errorf("LineStart(%d) = %d, want %d", c.pc, got, c.start)
		}
	}
}

func TestInstanceOfChain(t *testing.T) {
	p := &Program{Classes: []*Class{
		{ID: 0, Name: "A", Super: -1},
		{ID: 1, Name: "B", Super: 0},
		{ID: 2, Name: "C", Super: 1},
		{ID: 3, Name: "D", Super: 0},
	}}
	if !p.InstanceOf(2, 0) || !p.InstanceOf(2, 1) || !p.InstanceOf(2, 2) {
		t.Error("C should be instance of A, B, C")
	}
	if p.InstanceOf(3, 1) || p.InstanceOf(0, 2) {
		t.Error("false positives in instanceOf")
	}
}

func TestResolveVirtualWalksSupers(t *testing.T) {
	p := &Program{
		Classes: []*Class{
			{ID: 0, Name: "A", Super: -1, Methods: map[string]int32{"m": 0}},
			{ID: 1, Name: "B", Super: 0, Methods: map[string]int32{}},
			{ID: 2, Name: "C", Super: 1, Methods: map[string]int32{"m": 1}},
		},
		Methods: []*Method{{ID: 0, Name: "m"}, {ID: 1, Name: "m"}},
		VNames:  []string{"m"},
	}
	if got := p.ResolveVirtual(1, 0); got != 0 {
		t.Errorf("B.m should resolve to A's (id 0), got %d", got)
	}
	if got := p.ResolveVirtual(2, 0); got != 1 {
		t.Errorf("C.m should resolve to the override (id 1), got %d", got)
	}
}

func TestCodeSizeCountsEverything(t *testing.T) {
	m := &Method{
		Code:     make([]Instr, 10),
		Consts:   []value.Value{value.Int(1)},
		Strings:  []string{"abc"},
		Except:   []ExRange{{}},
		Switches: []SwitchTable{{Keys: []int32{1, 2}, Targets: []int32{0, 0}}},
	}
	base := (&Method{Code: make([]Instr, 10)}).CodeSize()
	if m.CodeSize() <= base {
		t.Error("side tables should add to code size")
	}
}
