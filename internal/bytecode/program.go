package bytecode

import (
	"fmt"
	"sort"

	"repro/internal/value"
)

// Field describes an instance or static field of a class.
type Field struct {
	Name string
	Kind value.Kind // KindInt, KindFloat or KindRef
}

// Class is a loaded class: named fields, statics and a method set. Classes
// support single inheritance for dispatch and instanceof; fields of a
// subclass are appended after the superclass's (slot numbering is global
// over the flattened hierarchy, as in most JVM object layouts).
type Class struct {
	ID      int32
	Name    string
	Super   int32 // superclass id, or -1
	Fields  []Field
	Statics []Field
	// Methods maps method name → method id, for methods declared directly
	// on this class. Virtual dispatch walks the superclass chain.
	Methods map[string]int32
}

// ExRange is one exception-table entry: if an exception of class ClassID
// (or any class when ClassID < 0) is raised while From <= pc < To, control
// transfers to Handler with the exception object as the only operand-stack
// value. Entries are matched in order, innermost-first by construction.
type ExRange struct {
	From, To, Handler int32
	ClassID           int32
}

// LineEntry maps a pc to a source line number (used by the preprocessor to
// identify statement boundaries, and by the disassembler).
type LineEntry struct {
	PC   int32
	Line int32
}

// SwitchTable backs an OpTSwitch instruction: the popped key is looked up
// in Keys (sorted); a match jumps to the corresponding Targets entry, a
// miss jumps to Default. This is the analog of the JVM lookupswitch the
// paper's restoration handlers use to jump to the saved pc.
type SwitchTable struct {
	Keys    []int32
	Targets []int32
	Default int32
}

// Lookup returns the jump target for key.
func (s *SwitchTable) Lookup(key int32) int32 {
	i := sort.Search(len(s.Keys), func(i int) bool { return s.Keys[i] >= key })
	if i < len(s.Keys) && s.Keys[i] == key {
		return s.Targets[i]
	}
	return s.Default
}

// Method is a loaded method body plus its side tables.
type Method struct {
	ID      int32
	ClassID int32 // declaring class, or -1 for free functions
	Name    string
	// NArgs is the number of argument slots, receiver included for instance
	// methods. Arguments occupy locals[0..NArgs-1].
	NArgs int
	// NLocals is the total local slot count (>= NArgs).
	NLocals int
	// MaxStack is the verified operand stack bound.
	MaxStack int
	// ReturnsValue reports whether the method returns a value (OpRetV).
	ReturnsValue bool
	// Virtual marks instance methods (receiver in locals[0]).
	Virtual bool

	Code     []Instr
	Consts   []value.Value
	Strings  []string
	Except   []ExRange
	Lines    []LineEntry
	Switches []SwitchTable

	// MSPs lists the migration-safe points: pcs at which the operand stack
	// of this frame is provably empty and execution is not inside a native
	// call. Populated by the preprocessor (§III.B.1 of the paper). Sorted.
	MSPs []int32

	// Pragmas carries assembler markers consumed by later stages, e.g.
	// "nopreprocess" (skip all transforms) or "pin" (frame may not migrate,
	// §IV.D's socket-holding frames). Nil when absent.
	Pragmas map[string]bool

	// mspSet is a bitmap over pcs derived from MSPs, built lazily.
	mspSet []uint64
}

// IsMSP reports whether pc is a migration-safe point of this method.
func (m *Method) IsMSP(pc int32) bool {
	if m.mspSet == nil {
		return false
	}
	if pc < 0 || int(pc) >= len(m.Code) {
		return false
	}
	return m.mspSet[pc>>6]&(1<<(uint(pc)&63)) != 0
}

// BuildMSPSet (re)builds the MSP bitmap from MSPs. Must be called after
// mutating MSPs; the assembler and preprocessor do this automatically.
func (m *Method) BuildMSPSet() {
	if len(m.MSPs) == 0 {
		m.mspSet = nil
		return
	}
	m.mspSet = make([]uint64, (len(m.Code)+63)/64)
	for _, pc := range m.MSPs {
		if pc >= 0 && int(pc) < len(m.Code) {
			m.mspSet[pc>>6] |= 1 << (uint(pc) & 63)
		}
	}
}

// LineAt returns the source line covering pc, or -1.
func (m *Method) LineAt(pc int32) int32 {
	line := int32(-1)
	for _, le := range m.Lines {
		if le.PC > pc {
			break
		}
		line = le.Line
	}
	return line
}

// LineStart returns the pc of the first instruction of the line covering
// pc, or 0 when the method has no line table.
func (m *Method) LineStart(pc int32) int32 {
	start := int32(0)
	for _, le := range m.Lines {
		if le.PC > pc {
			break
		}
		start = le.PC
	}
	return start
}

// CodeSize returns the serialized size of the method body in bytes,
// using the fixed 9-byte instruction encoding (1 op + 2×4 operands). This
// is the figure used for the paper's Fig 5 class-file size comparison.
func (m *Method) CodeSize() int {
	size := len(m.Code) * 9
	size += len(m.Except) * 16
	for _, s := range m.Switches {
		size += 4 + 8*len(s.Keys)
	}
	for _, c := range m.Consts {
		_ = c
		size += 9
	}
	for _, s := range m.Strings {
		size += 2 + len(s)
	}
	return size
}

// NativeSig describes a registered native function: its name and argument
// count. The actual Go implementation is bound per-VM at runtime; the
// program only records the interface, like JNI method declarations.
type NativeSig struct {
	Name         string
	NArgs        int
	ReturnsValue bool
}

// Program is an immutable, fully-resolved program: the unit the class
// preprocessor transforms and the migration managers ship between nodes.
// VMs on all nodes share Program pointers for code they have loaded;
// per-class code shipping is modelled at the sodee layer.
type Program struct {
	Classes []*Class
	Methods []*Method
	Natives []NativeSig
	// VNames is the virtual-dispatch name table: OpCallV's A operand indexes
	// it; dispatch resolves VNames[A] against the receiver's class chain.
	VNames []string

	classByName  map[string]int32
	methodByName map[string]int32 // "Class.method" or plain name
	nativeByName map[string]int32
	vnameIndex   map[string]int32
}

// BuildIndexes (re)builds the name lookup maps. Must be called after
// construction; the assembler does this automatically.
func (p *Program) BuildIndexes() {
	p.classByName = make(map[string]int32, len(p.Classes))
	for _, c := range p.Classes {
		p.classByName[c.Name] = c.ID
	}
	p.methodByName = make(map[string]int32, len(p.Methods))
	for _, m := range p.Methods {
		p.methodByName[p.QualifiedName(m)] = m.ID
	}
	p.nativeByName = make(map[string]int32, len(p.Natives))
	for i, n := range p.Natives {
		p.nativeByName[n.Name] = int32(i)
	}
	p.vnameIndex = make(map[string]int32, len(p.VNames))
	for i, n := range p.VNames {
		p.vnameIndex[n] = int32(i)
	}
}

// QualifiedName returns "Class.method" for class methods and the bare
// method name for free functions.
func (p *Program) QualifiedName(m *Method) string {
	if m.ClassID >= 0 {
		return p.Classes[m.ClassID].Name + "." + m.Name
	}
	return m.Name
}

// ClassByName returns the class id for name, or -1.
func (p *Program) ClassByName(name string) int32 {
	if id, ok := p.classByName[name]; ok {
		return id
	}
	return -1
}

// MethodByName returns the method id for a qualified name, or -1.
func (p *Program) MethodByName(name string) int32 {
	if id, ok := p.methodByName[name]; ok {
		return id
	}
	return -1
}

// NativeByName returns the native id for name, or -1.
func (p *Program) NativeByName(name string) int32 {
	if id, ok := p.nativeByName[name]; ok {
		return id
	}
	return -1
}

// VNameID returns the virtual-name id for name, or -1.
func (p *Program) VNameID(name string) int32 {
	if id, ok := p.vnameIndex[name]; ok {
		return id
	}
	return -1
}

// ResolveVirtual resolves a virtual call of VNames[vname] on class cid,
// walking the superclass chain. Returns the method id or -1.
func (p *Program) ResolveVirtual(cid int32, vname int32) int32 {
	name := p.VNames[vname]
	for cid >= 0 {
		c := p.Classes[cid]
		if mid, ok := c.Methods[name]; ok {
			return mid
		}
		cid = c.Super
	}
	return -1
}

// InstanceOf reports whether class cid is tid or a subclass of tid.
func (p *Program) InstanceOf(cid, tid int32) bool {
	for cid >= 0 {
		if cid == tid {
			return true
		}
		cid = p.Classes[cid].Super
	}
	return false
}

// NumInstanceFields returns the flattened instance-field count of class
// cid including inherited fields. With the assembler's flat field layout
// (subclasses repeat inherited fields), this is len(Fields).
func (p *Program) NumInstanceFields(cid int32) int {
	return len(p.Classes[cid].Fields)
}

// Validate performs cheap structural checks that do not require dataflow
// (the full verifier lives in verify.go): id consistency and table bounds.
func (p *Program) Validate() error {
	for i, c := range p.Classes {
		if c.ID != int32(i) {
			return fmt.Errorf("bytecode: class %q has id %d, want %d", c.Name, c.ID, i)
		}
		if c.Super >= int32(len(p.Classes)) || c.Super == c.ID {
			return fmt.Errorf("bytecode: class %q has invalid super %d", c.Name, c.Super)
		}
		for name, mid := range c.Methods {
			if mid < 0 || int(mid) >= len(p.Methods) {
				return fmt.Errorf("bytecode: class %q method %q has invalid id %d", c.Name, name, mid)
			}
		}
	}
	for i, m := range p.Methods {
		if m.ID != int32(i) {
			return fmt.Errorf("bytecode: method %q has id %d, want %d", m.Name, m.ID, i)
		}
		if m.ClassID >= int32(len(p.Classes)) {
			return fmt.Errorf("bytecode: method %q has invalid class %d", m.Name, m.ClassID)
		}
		if m.NArgs > m.NLocals {
			return fmt.Errorf("bytecode: method %q has NArgs %d > NLocals %d", m.Name, m.NArgs, m.NLocals)
		}
	}
	return nil
}

// Builtin exception class names. The assembler pre-declares these in every
// program (ids are not fixed; look them up by name).
const (
	ExNullPointer = "NullPointerException"
	// ExRemoteFault is raised when a *remote* reference (one whose home is
	// another node) is dereferenced. In the paper both cases raise
	// NullPointerException and the object manager disambiguates by looking
	// the reference up at home; our interpreter can tell null from remote
	// at raise time, so the injected object-fault handlers catch
	// RemoteAccessFault only and genuine application NPEs flow to user
	// code untouched. Behaviour is equivalent, the common path stays
	// zero-overhead, and the home round-trip for bug-NPEs is avoided.
	ExRemoteFault  = "RemoteAccessFault"
	ExInvalidState = "InvalidStateException" // drives frame restoration (Fig 4)
	ExArithmetic        = "ArithmeticException"
	ExIndexOutOfBounds  = "IndexOutOfBoundsException"
	ExClassCast         = "ClassCastException"
	ExOutOfMemory       = "OutOfMemoryError"
	ExClassNotFound     = "ClassNotFoundException"
	ExIllegalState      = "IllegalStateException"
	ClassObject         = "Object"
	ClassString         = "String"
	ClassCapturedState  = "CapturedState" // carrier object used by restoration handlers
	ExceptionFieldMsg   = 0               // field 0 of every exception class: message string ref
	ExceptionFieldExtra = 1               // field 1: auxiliary payload (e.g. faulting stub ref bits)
)

// BuiltinClassNames lists the classes every program declares up front, in
// declaration order.
var BuiltinClassNames = []string{
	ClassObject,
	ClassString,
	ClassCapturedState,
	ExNullPointer,
	ExRemoteFault,
	ExInvalidState,
	ExArithmetic,
	ExIndexOutOfBounds,
	ExClassCast,
	ExOutOfMemory,
	ExClassNotFound,
	ExIllegalState,
}
