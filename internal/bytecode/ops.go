// Package bytecode defines the SVM instruction set, the program model
// (classes, fields, methods, exception tables, line tables, migration-safe
// point tables), a structural verifier that also computes operand-stack
// bounds, and a disassembler.
//
// The instruction set is a compact register-free stack ISA modelled on the
// JVM's: values live on a per-frame operand stack, locals are numbered
// slots, exception handling is table-driven over pc ranges, and method
// invocation pushes a fresh frame. These are exactly the properties the SOD
// paper exploits: a frame is a self-contained activation record (pc, locals,
// operand stack) that can be captured at points where the operand stack is
// empty ("migration-safe points") and restored elsewhere.
package bytecode

import "fmt"

// Op is an SVM opcode.
type Op uint8

// The instruction set. A and B are the two int32 operands of Instr; their
// meaning per opcode is given in the comments.
const (
	OpNop Op = iota

	// Constants and locals.
	OpConst  // push method.Consts[A]
	OpIConst // push Int(A) — fast path for small integers
	OpNull   // push null reference
	OpSConst // push interned string object for method.Strings[A]
	OpLoad   // push locals[A]
	OpStore  // locals[A] = pop

	// Operand-stack shuffling.
	OpPop  // discard top
	OpDup  // duplicate top
	OpSwap // swap top two

	// Arithmetic (polymorphic over int/float; int/int division by zero
	// raises ArithmeticException).
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
	OpNeg

	// Integer bitwise / logical.
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr
	OpNot // logical not: push 1 if pop is zero int, else 0

	// Conversions.
	OpI2F
	OpF2I

	// Comparisons: push Int(0/1). Numeric compare int/float; OpEq/OpNe also
	// compare references.
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe

	// Control flow.
	OpJmp     // pc = A
	OpJz      // if !pop.IsTruthy() { pc = A }
	OpJnz     // if pop.IsTruthy() { pc = A }
	OpTSwitch // pop int key; jump via method.Switches[A]; see SwitchTable

	// Objects and fields.
	OpNew       // push ref to new instance of class A
	OpGetF      // obj = pop; push obj.fields[A]
	OpPutF      // val = pop; obj = pop; obj.fields[A] = val
	OpGetS      // push statics[class A][field B]
	OpPutS      // statics[class A][field B] = pop
	OpGetStatus // obj = pop; push Int(status word) — used by the status-check DSM baseline
	OpInstOf    // obj = pop; push 1 if obj is instance of class A (or subclass)
	OpCheckCast // obj = top of stack; raise ClassCastException unless instance of class A (null passes)

	// Arrays. Element kinds are the ArrKind* constants.
	OpNewArr // len = pop; push ref to new array of elem-kind A
	OpALoad  // idx = pop; arr = pop; push arr[idx]
	OpAStore // val = pop; idx = pop; arr = pop; arr[idx] = val
	OpArrLen // arr = pop; push Int(len)

	// Calls. A = method id (OpCall/OpTail), vtable-name id (OpCallV) or
	// native id (OpCallNat); B = argument count (receiver included for
	// instance methods). Arguments are popped right-to-left into the callee's
	// first B local slots.
	OpCall    // static dispatch
	OpCallV   // virtual dispatch on the class of the receiver (args[0])
	OpCallNat // native function call; executes inline, no frame pushed

	// Returns and exceptions.
	OpRet   // return void
	OpRetV  // return pop to caller
	OpThrow // exc = pop (ref); raise it

	opCount // sentinel — number of opcodes
)

// NumOps is the number of defined opcodes.
const NumOps = int(opCount)

// Array element kinds (operand A of OpNewArr).
const (
	ArrKindInt   = 0 // elements are int64
	ArrKindFloat = 1 // elements are float64
	ArrKindByte  = 2 // elements are bytes (loaded/stored as ints 0..255)
	ArrKindRef   = 3 // elements are references
)

// Instr is a single decoded instruction. Instructions are fixed-size; pc
// values index into a method's Code slice directly.
type Instr struct {
	Op Op
	A  int32
	B  int32
}

var opNames = [...]string{
	OpNop: "nop",
	OpConst: "const", OpIConst: "iconst", OpNull: "null", OpSConst: "sconst",
	OpLoad: "load", OpStore: "store",
	OpPop: "pop", OpDup: "dup", OpSwap: "swap",
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div", OpMod: "mod", OpNeg: "neg",
	OpAnd: "and", OpOr: "or", OpXor: "xor", OpShl: "shl", OpShr: "shr", OpNot: "not",
	OpI2F: "i2f", OpF2I: "f2i",
	OpEq: "eq", OpNe: "ne", OpLt: "lt", OpLe: "le", OpGt: "gt", OpGe: "ge",
	OpJmp: "jmp", OpJz: "jz", OpJnz: "jnz", OpTSwitch: "tswitch",
	OpNew: "new", OpGetF: "getf", OpPutF: "putf", OpGetS: "gets", OpPutS: "puts",
	OpGetStatus: "getstatus", OpInstOf: "instof", OpCheckCast: "checkcast",
	OpNewArr: "newarr", OpALoad: "aload", OpAStore: "astore", OpArrLen: "arrlen",
	OpCall: "call", OpCallV: "callv", OpCallNat: "callnat",
	OpRet: "ret", OpRetV: "retv", OpThrow: "throw",
}

// String returns the mnemonic of the opcode.
func (op Op) String() string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// stackEffect describes how an opcode changes operand-stack depth:
// pops then pushes. Call-like and switch opcodes are handled specially by
// the verifier (variable arity), flagged with varPop.
type stackEffect struct {
	pop, push int
	varPop    bool
}

var effects = [...]stackEffect{
	OpNop:    {0, 0, false},
	OpConst:  {0, 1, false},
	OpIConst: {0, 1, false},
	OpNull:   {0, 1, false},
	OpSConst: {0, 1, false},
	OpLoad:   {0, 1, false},
	OpStore:  {1, 0, false},
	OpPop:    {1, 0, false},
	OpDup:    {1, 2, false},
	OpSwap:   {2, 2, false},
	OpAdd:    {2, 1, false}, OpSub: {2, 1, false}, OpMul: {2, 1, false},
	OpDiv: {2, 1, false}, OpMod: {2, 1, false}, OpNeg: {1, 1, false},
	OpAnd: {2, 1, false}, OpOr: {2, 1, false}, OpXor: {2, 1, false},
	OpShl: {2, 1, false}, OpShr: {2, 1, false}, OpNot: {1, 1, false},
	OpI2F: {1, 1, false}, OpF2I: {1, 1, false},
	OpEq: {2, 1, false}, OpNe: {2, 1, false}, OpLt: {2, 1, false},
	OpLe: {2, 1, false}, OpGt: {2, 1, false}, OpGe: {2, 1, false},
	OpJmp: {0, 0, false}, OpJz: {1, 0, false}, OpJnz: {1, 0, false},
	OpTSwitch:   {1, 0, false},
	OpNew:       {0, 1, false},
	OpGetF:      {1, 1, false},
	OpPutF:      {2, 0, false},
	OpGetS:      {0, 1, false},
	OpPutS:      {1, 0, false},
	OpGetStatus: {1, 1, false},
	OpInstOf:    {1, 1, false},
	OpCheckCast: {1, 1, false},
	OpNewArr:    {1, 1, false},
	OpALoad:     {2, 1, false},
	OpAStore:    {3, 0, false},
	OpArrLen:    {1, 1, false},
	OpCall:      {0, 0, true}, // pops B, pushes 0 or 1 depending on callee
	OpCallV:     {0, 0, true},
	OpCallNat:   {0, 0, true},
	OpRet:       {0, 0, false},
	OpRetV:      {1, 0, false},
	OpThrow:     {1, 0, false},
}

// Effect returns the static stack effect of op. For call-like opcodes the
// varPop flag is set and pops/pushes must be derived from the call target.
func (op Op) Effect() (pops, pushes int, variable bool) {
	e := effects[op]
	return e.pop, e.push, e.varPop
}

// IsTerminal reports whether control never falls through this opcode to
// the next instruction.
func (op Op) IsTerminal() bool {
	switch op {
	case OpJmp, OpTSwitch, OpRet, OpRetV, OpThrow:
		return true
	}
	return false
}

// IsBranch reports whether the opcode's A operand is a jump target.
func (op Op) IsBranch() bool {
	switch op {
	case OpJmp, OpJz, OpJnz:
		return true
	}
	return false
}
