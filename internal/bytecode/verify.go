package bytecode

import (
	"fmt"
	"sort"
)

// VerifyError describes a verification failure at a specific pc.
type VerifyError struct {
	Method string
	PC     int32
	Msg    string
}

func (e *VerifyError) Error() string {
	return fmt.Sprintf("bytecode: verify %s@%d: %s", e.Method, e.PC, e.Msg)
}

// Verify checks every method of p for structural soundness and computes
// MaxStack for each via abstract interpretation of stack depths. It
// enforces the invariants the rest of the system relies on:
//
//   - all jump targets, local slots, constant/string/class/field/method/
//     native indexes are in range;
//   - operand stack depth is consistent at every join point and never
//     negative nor above 2^15;
//   - control never falls off the end of the code;
//   - value-returning methods use retv exclusively, void methods ret,
//     and both require an empty stack after popping the result;
//   - exception handler entry depth is exactly 1 (the thrown object);
//   - every declared migration-safe point is at operand depth 0 — the
//     property SOD capture depends on (§III.B.1 of the paper).
func Verify(p *Program) error {
	if err := p.Validate(); err != nil {
		return err
	}
	for _, m := range p.Methods {
		if err := verifyMethod(p, m); err != nil {
			return err
		}
	}
	return nil
}

// VerifyMethod verifies a single method and sets its MaxStack.
func VerifyMethod(p *Program, m *Method) error { return verifyMethod(p, m) }

type workItem struct {
	pc    int32
	depth int
}

func verifyMethod(p *Program, m *Method) error {
	name := p.QualifiedName(m)
	fail := func(pc int32, format string, args ...any) error {
		return &VerifyError{Method: name, PC: pc, Msg: fmt.Sprintf(format, args...)}
	}
	n := int32(len(m.Code))
	if n == 0 {
		return fail(0, "empty code")
	}

	// depth[pc] is the operand stack depth on entry to pc; -1 = unvisited.
	depth := make([]int, n)
	for i := range depth {
		depth[i] = -1
	}

	work := make([]workItem, 0, 16)
	enqueue := func(pc int32, d int) error {
		if pc < 0 || pc >= n {
			return fail(pc, "jump target out of range")
		}
		switch depth[pc] {
		case -1:
			depth[pc] = d
			work = append(work, workItem{pc, d})
		case d:
			// already scheduled/processed with the same depth
		default:
			return fail(pc, "inconsistent stack depth at join: %d vs %d", depth[pc], d)
		}
		return nil
	}

	if err := enqueue(0, 0); err != nil {
		return err
	}
	for _, ex := range m.Except {
		if ex.From < 0 || ex.To > n || ex.From >= ex.To {
			return fail(ex.From, "bad exception range [%d,%d)", ex.From, ex.To)
		}
		if ex.ClassID >= int32(len(p.Classes)) {
			return fail(ex.Handler, "bad exception class %d", ex.ClassID)
		}
		if err := enqueue(ex.Handler, 1); err != nil {
			return err
		}
	}

	maxDepth := 1 // handlers start at depth 1 even if never verified deeper
	for len(work) > 0 {
		it := work[len(work)-1]
		work = work[:len(work)-1]
		pc, d := it.pc, it.depth

		ins := m.Code[pc]
		pops, pushes, variable := ins.Op.Effect()
		if variable {
			var err error
			pops, pushes, err = callArity(p, m, ins, fail, pc)
			if err != nil {
				return err
			}
		}
		if err := checkOperands(p, m, ins, fail, pc); err != nil {
			return err
		}
		if d < pops {
			return fail(pc, "%s pops %d with stack depth %d", ins.Op, pops, d)
		}
		d = d - pops + pushes
		if d > maxDepth {
			maxDepth = d
		}
		if d > 1<<15 {
			return fail(pc, "stack depth exceeds limit")
		}

		switch ins.Op {
		case OpJmp:
			if err := enqueue(ins.A, d); err != nil {
				return err
			}
		case OpJz, OpJnz:
			if err := enqueue(ins.A, d); err != nil {
				return err
			}
			if pc+1 >= n {
				return fail(pc, "conditional branch falls off end of code")
			}
			if err := enqueue(pc+1, d); err != nil {
				return err
			}
		case OpTSwitch:
			tbl := &m.Switches[ins.A]
			if err := enqueue(tbl.Default, d); err != nil {
				return err
			}
			for _, t := range tbl.Targets {
				if err := enqueue(t, d); err != nil {
					return err
				}
			}
		case OpRet:
			if m.ReturnsValue {
				return fail(pc, "ret in value-returning method")
			}
			if d != 0 {
				return fail(pc, "ret with non-empty stack (depth %d)", d)
			}
		case OpRetV:
			if !m.ReturnsValue {
				return fail(pc, "retv in void method")
			}
			if d != 0 {
				return fail(pc, "retv leaves %d extra operands", d)
			}
		case OpThrow:
			// Stack is discarded by unwinding; any depth is fine.
		default:
			if pc+1 >= n {
				return fail(pc, "control falls off end of code")
			}
			if err := enqueue(pc+1, d); err != nil {
				return err
			}
		}
	}

	// Check MSPs: declared safe points must have empty operand stacks.
	if !sort.SliceIsSorted(m.MSPs, func(i, j int) bool { return m.MSPs[i] < m.MSPs[j] }) {
		return fail(0, "MSP table not sorted")
	}
	for _, pc := range m.MSPs {
		if pc < 0 || pc >= n {
			return fail(pc, "MSP out of range")
		}
		if depth[pc] > 0 {
			return fail(pc, "MSP with non-empty operand stack (depth %d)", depth[pc])
		}
	}

	m.MaxStack = maxDepth
	m.BuildMSPSet()
	return nil
}

// callArity resolves the pop/push counts of call-like instructions.
func callArity(p *Program, m *Method, ins Instr, fail func(int32, string, ...any) error, pc int32) (pops, pushes int, err error) {
	switch ins.Op {
	case OpCall:
		if ins.A < 0 || int(ins.A) >= len(p.Methods) {
			return 0, 0, fail(pc, "call target %d out of range", ins.A)
		}
		callee := p.Methods[ins.A]
		if int(ins.B) != callee.NArgs {
			return 0, 0, fail(pc, "call %s with %d args, want %d", callee.Name, ins.B, callee.NArgs)
		}
		pushes = 0
		if callee.ReturnsValue {
			pushes = 1
		}
		return callee.NArgs, pushes, nil
	case OpCallV:
		if ins.A < 0 || int(ins.A) >= len(p.VNames) {
			return 0, 0, fail(pc, "callv name %d out of range", ins.A)
		}
		if ins.B < 1 {
			return 0, 0, fail(pc, "callv needs at least the receiver")
		}
		// All methods bound to a virtual name must agree on arity and
		// return-ness; check every binding.
		pushes = -1
		for _, c := range p.Classes {
			mid, ok := c.Methods[p.VNames[ins.A]]
			if !ok {
				continue
			}
			callee := p.Methods[mid]
			if callee.NArgs != int(ins.B) {
				return 0, 0, fail(pc, "callv %s: class %s binds arity %d, site passes %d",
					p.VNames[ins.A], c.Name, callee.NArgs, ins.B)
			}
			r := 0
			if callee.ReturnsValue {
				r = 1
			}
			if pushes == -1 {
				pushes = r
			} else if pushes != r {
				return 0, 0, fail(pc, "callv %s: inconsistent return-ness across bindings", p.VNames[ins.A])
			}
		}
		if pushes == -1 {
			return 0, 0, fail(pc, "callv %s: no class binds this name", p.VNames[ins.A])
		}
		return int(ins.B), pushes, nil
	case OpCallNat:
		if ins.A < 0 || int(ins.A) >= len(p.Natives) {
			return 0, 0, fail(pc, "native %d out of range", ins.A)
		}
		sig := p.Natives[ins.A]
		if int(ins.B) != sig.NArgs {
			return 0, 0, fail(pc, "callnat %s with %d args, want %d", sig.Name, ins.B, sig.NArgs)
		}
		pushes = 0
		if sig.ReturnsValue {
			pushes = 1
		}
		return sig.NArgs, pushes, nil
	}
	return 0, 0, fail(pc, "not a call op")
}

// checkOperands validates the non-jump operands of ins.
func checkOperands(p *Program, m *Method, ins Instr, fail func(int32, string, ...any) error, pc int32) error {
	switch ins.Op {
	case OpConst:
		if ins.A < 0 || int(ins.A) >= len(m.Consts) {
			return fail(pc, "const index %d out of range", ins.A)
		}
	case OpSConst:
		if ins.A < 0 || int(ins.A) >= len(m.Strings) {
			return fail(pc, "string index %d out of range", ins.A)
		}
	case OpLoad, OpStore:
		if ins.A < 0 || int(ins.A) >= m.NLocals {
			return fail(pc, "local slot %d out of range (NLocals=%d)", ins.A, m.NLocals)
		}
	case OpNew, OpInstOf, OpCheckCast:
		if ins.A < 0 || int(ins.A) >= len(p.Classes) {
			return fail(pc, "class %d out of range", ins.A)
		}
	case OpGetF, OpPutF:
		if ins.A < 0 {
			return fail(pc, "negative field index")
		}
	case OpGetS, OpPutS:
		if ins.A < 0 || int(ins.A) >= len(p.Classes) {
			return fail(pc, "static class %d out of range", ins.A)
		}
		if ins.B < 0 || int(ins.B) >= len(p.Classes[ins.A].Statics) {
			return fail(pc, "static field %d out of range for class %s", ins.B, p.Classes[ins.A].Name)
		}
	case OpNewArr:
		switch ins.A {
		case ArrKindInt, ArrKindFloat, ArrKindByte, ArrKindRef:
		default:
			return fail(pc, "bad array kind %d", ins.A)
		}
	case OpTSwitch:
		if ins.A < 0 || int(ins.A) >= len(m.Switches) {
			return fail(pc, "switch table %d out of range", ins.A)
		}
		tbl := &m.Switches[ins.A]
		if len(tbl.Keys) != len(tbl.Targets) {
			return fail(pc, "switch table keys/targets length mismatch")
		}
		if !sort.SliceIsSorted(tbl.Keys, func(i, j int) bool { return tbl.Keys[i] < tbl.Keys[j] }) {
			return fail(pc, "switch table keys not sorted")
		}
	}
	return nil
}
