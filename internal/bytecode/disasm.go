package bytecode

import (
	"fmt"
	"strings"
)

// Disassemble renders a method body as human-readable assembly, one
// instruction per line, annotated with line numbers, migration-safe points,
// resolved names and the exception table. The output format is stable and
// used by cmd/soddisasm and by golden tests that compare preprocessed code.
func Disassemble(p *Program, m *Method) string {
	var b strings.Builder
	kind := "func"
	if m.Virtual {
		kind = "method"
	}
	fmt.Fprintf(&b, "%s %s (args=%d locals=%d maxstack=%d", kind, p.QualifiedName(m), m.NArgs, m.NLocals, m.MaxStack)
	if m.ReturnsValue {
		b.WriteString(" returns")
	}
	fmt.Fprintf(&b, " codesize=%dB)\n", m.CodeSize())

	lastLine := int32(-1)
	for pc, ins := range m.Code {
		line := m.LineAt(int32(pc))
		marker := "   "
		if line != lastLine {
			marker = fmt.Sprintf("L%-2d", line)
			lastLine = line
		}
		msp := " "
		if m.IsMSP(int32(pc)) {
			msp = "*" // migration-safe point
		}
		fmt.Fprintf(&b, "  %s %s%4d: %s\n", marker, msp, pc, formatInstr(p, m, ins))
	}
	if len(m.Except) > 0 {
		b.WriteString("  exception table:\n")
		for _, ex := range m.Except {
			cls := "any"
			if ex.ClassID >= 0 {
				cls = p.Classes[ex.ClassID].Name
			}
			fmt.Fprintf(&b, "    [%d,%d) -> %d  %s\n", ex.From, ex.To, ex.Handler, cls)
		}
	}
	for i, tbl := range m.Switches {
		fmt.Fprintf(&b, "  switch table %d: default=%d", i, tbl.Default)
		for j, k := range tbl.Keys {
			fmt.Fprintf(&b, " %d->%d", k, tbl.Targets[j])
		}
		b.WriteString("\n")
	}
	return b.String()
}

func formatInstr(p *Program, m *Method, ins Instr) string {
	switch ins.Op {
	case OpConst:
		return fmt.Sprintf("const %s", m.Consts[ins.A])
	case OpIConst:
		return fmt.Sprintf("iconst %d", ins.A)
	case OpSConst:
		return fmt.Sprintf("sconst %q", m.Strings[ins.A])
	case OpLoad, OpStore:
		return fmt.Sprintf("%s %d", ins.Op, ins.A)
	case OpJmp, OpJz, OpJnz:
		return fmt.Sprintf("%s -> %d", ins.Op, ins.A)
	case OpTSwitch:
		return fmt.Sprintf("tswitch #%d", ins.A)
	case OpNew, OpInstOf, OpCheckCast:
		return fmt.Sprintf("%s %s", ins.Op, p.Classes[ins.A].Name)
	case OpGetF, OpPutF:
		return fmt.Sprintf("%s .%d", ins.Op, ins.A)
	case OpGetS, OpPutS:
		return fmt.Sprintf("%s %s.%s", ins.Op, p.Classes[ins.A].Name, p.Classes[ins.A].Statics[ins.B].Name)
	case OpNewArr:
		kinds := [...]string{"int", "float", "byte", "ref"}
		return fmt.Sprintf("newarr %s", kinds[ins.A])
	case OpCall:
		return fmt.Sprintf("call %s/%d", p.QualifiedName(p.Methods[ins.A]), ins.B)
	case OpCallV:
		return fmt.Sprintf("callv %s/%d", p.VNames[ins.A], ins.B)
	case OpCallNat:
		return fmt.Sprintf("callnat %s/%d", p.Natives[ins.A].Name, ins.B)
	default:
		if ins.A == 0 && ins.B == 0 {
			return ins.Op.String()
		}
		return fmt.Sprintf("%s %d %d", ins.Op, ins.A, ins.B)
	}
}

// DisassembleProgram renders every method of the program.
func DisassembleProgram(p *Program) string {
	var b strings.Builder
	for _, c := range p.Classes {
		fmt.Fprintf(&b, "class %s", c.Name)
		if c.Super >= 0 {
			fmt.Fprintf(&b, " extends %s", p.Classes[c.Super].Name)
		}
		b.WriteString(" {")
		for _, f := range c.Fields {
			fmt.Fprintf(&b, " %s:%s", f.Name, f.Kind)
		}
		for _, f := range c.Statics {
			fmt.Fprintf(&b, " static %s:%s", f.Name, f.Kind)
		}
		b.WriteString(" }\n")
	}
	for _, m := range p.Methods {
		b.WriteString(Disassemble(p, m))
	}
	return b.String()
}
