package membership

import (
	"reflect"
	"sync"
	"testing"
	"time"
)

// clock is a synthetic time source so every transition is deterministic.
type clock struct{ now time.Time }

func newClock() *clock { return &clock{now: time.Unix(1000, 0)} }

func (c *clock) advance(d time.Duration) time.Time {
	c.now = c.now.Add(d)
	return c.now
}

var testOpts = Options{
	SuspectAfter:   100 * time.Millisecond,
	DeadAfter:      300 * time.Millisecond,
	FailuresToDead: 3,
}

// collectEvents subscribes a recorder to t and returns the accessor.
func collectEvents(t *Tracker) func() []Event {
	var mu sync.Mutex
	var evs []Event
	t.OnChange(func(e Event) {
		mu.Lock()
		evs = append(evs, e)
		mu.Unlock()
	})
	return func() []Event {
		mu.Lock()
		defer mu.Unlock()
		return append([]Event(nil), evs...)
	}
}

func TestSilenceEscalatesSuspectThenDead(t *testing.T) {
	ck := newClock()
	tr := New(1, testOpts)
	events := collectEvents(tr)
	tr.Join(2, ck.now)

	if got := tr.State(2); got != Alive {
		t.Fatalf("fresh peer state = %v", got)
	}

	// Sweeps must run often enough that the tracker does not conclude it
	// was itself stalled.
	for i := 0; i < 3; i++ {
		tr.Sweep(ck.advance(50 * time.Millisecond))
	}
	if got := tr.State(2); got != Suspect {
		t.Fatalf("after 150ms of silence state = %v, want suspect", got)
	}
	for i := 0; i < 4; i++ {
		tr.Sweep(ck.advance(50 * time.Millisecond))
	}
	if got := tr.State(2); got != Dead {
		t.Fatalf("after 350ms of silence state = %v, want dead", got)
	}
	want := []Event{{Node: 2, State: Suspect}, {Node: 2, State: Dead}}
	if got := events(); !reflect.DeepEqual(got, want) {
		t.Errorf("events = %+v, want %+v", got, want)
	}
}

func TestHeartbeatKeepsAlive(t *testing.T) {
	ck := newClock()
	tr := New(1, testOpts)
	tr.Join(2, ck.now)
	for i := 0; i < 20; i++ {
		now := ck.advance(50 * time.Millisecond)
		tr.Observe(2, now)
		tr.Sweep(now)
	}
	if got := tr.State(2); got != Alive {
		t.Fatalf("heartbeating peer state = %v", got)
	}
}

func TestRejoinHeals(t *testing.T) {
	ck := newClock()
	tr := New(1, testOpts)
	events := collectEvents(tr)
	tr.Join(2, ck.now)
	for i := 0; i < 8; i++ {
		tr.Sweep(ck.advance(50 * time.Millisecond))
	}
	if got := tr.State(2); got != Dead {
		t.Fatalf("state = %v, want dead", got)
	}
	tr.Observe(2, ck.advance(50*time.Millisecond))
	if got := tr.State(2); got != Alive {
		t.Fatalf("state after rejoin = %v, want alive", got)
	}
	evs := events()
	if last := evs[len(evs)-1]; last != (Event{Node: 2, State: Alive}) {
		t.Errorf("last event = %+v, want alive", last)
	}
}

func TestSendFailuresEscalate(t *testing.T) {
	ck := newClock()
	tr := New(1, testOpts)
	events := collectEvents(tr)
	tr.Join(2, ck.now)

	tr.ObserveFailure(2, ck.advance(time.Millisecond))
	if got := tr.State(2); got != Suspect {
		t.Fatalf("after one failure state = %v, want suspect", got)
	}
	tr.ObserveFailure(2, ck.advance(time.Millisecond))
	tr.ObserveFailure(2, ck.advance(time.Millisecond))
	if got := tr.State(2); got != Dead {
		t.Fatalf("after three failures state = %v, want dead", got)
	}
	want := []Event{{Node: 2, State: Suspect}, {Node: 2, State: Dead}}
	if got := events(); !reflect.DeepEqual(got, want) {
		t.Errorf("events = %+v, want %+v", got, want)
	}

	// A successful heartbeat resets the failure count entirely.
	tr.Observe(2, ck.advance(time.Millisecond))
	tr.ObserveFailure(2, ck.advance(time.Millisecond))
	if got := tr.State(2); got != Suspect {
		t.Fatalf("after heal + one failure state = %v, want suspect", got)
	}
}

func TestStalledSweeperAccusesNoOne(t *testing.T) {
	ck := newClock()
	tr := New(1, testOpts)
	tr.Join(2, ck.now)
	tr.Sweep(ck.advance(10 * time.Millisecond))

	// The sweeper goes silent for far longer than DeadAfter (partition,
	// CPU starvation, suspended process). On resume the stale evidence
	// must be forgiven, not turned into accusations.
	tr.Sweep(ck.advance(2 * time.Second))
	if got := tr.State(2); got != Alive {
		t.Fatalf("state after sweeper stall = %v, want alive", got)
	}
	// Silence from here on still escalates normally.
	for i := 0; i < 8; i++ {
		tr.Sweep(ck.advance(50 * time.Millisecond))
	}
	if got := tr.State(2); got != Dead {
		t.Fatalf("state = %v, want dead", got)
	}
}

func TestUnknownPeerIsDeadAndAutoRegisters(t *testing.T) {
	ck := newClock()
	tr := New(1, testOpts)
	if got := tr.State(9); got != Dead {
		t.Fatalf("unknown peer state = %v, want dead", got)
	}
	tr.Observe(9, ck.now) // gossip outran the join protocol
	if got := tr.State(9); got != Alive {
		t.Fatalf("auto-registered peer state = %v, want alive", got)
	}
	if got := tr.Known(); !reflect.DeepEqual(got, []int{9}) {
		t.Fatalf("known = %v", got)
	}
}

func TestSelfIsNeverTracked(t *testing.T) {
	ck := newClock()
	tr := New(1, testOpts)
	tr.Join(1, ck.now)
	tr.Observe(1, ck.now)
	tr.ObserveFailure(1, ck.now)
	if got := tr.Known(); len(got) != 0 {
		t.Fatalf("tracker tracks itself: %v", got)
	}
}

func TestSnapshotAndAlivePeers(t *testing.T) {
	ck := newClock()
	tr := New(1, testOpts)
	tr.Join(3, ck.now)
	tr.Join(2, ck.now)
	tr.ObserveFailure(3, ck.now)
	snap := tr.Snapshot()
	if len(snap) != 2 || snap[0].Node != 2 || snap[1].Node != 3 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap[1].State != Suspect || snap[1].Failures != 1 {
		t.Fatalf("snapshot row = %+v, want suspect with 1 failure", snap[1])
	}
	if got := tr.AlivePeers(); !reflect.DeepEqual(got, []int{2}) {
		t.Fatalf("alive peers = %v", got)
	}
}

func TestOnChangeCancel(t *testing.T) {
	ck := newClock()
	tr := New(1, testOpts)
	var n int
	cancel := tr.OnChange(func(Event) { n++ })
	tr.Join(2, ck.now)
	tr.ObserveFailure(2, ck.now)
	if n != 1 {
		t.Fatalf("events before cancel = %d, want 1", n)
	}
	cancel()
	tr.ObserveFailure(2, ck.now)
	tr.ObserveFailure(2, ck.now)
	if n != 1 {
		t.Fatalf("events after cancel = %d, want 1", n)
	}
}

// TestConcurrentUse exercises the tracker under -race: evidence,
// sweeps and snapshots from many goroutines at once.
func TestConcurrentUse(t *testing.T) {
	tr := New(1, Options{})
	tr.OnChange(func(Event) {})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				now := time.Now()
				switch i % 4 {
				case 0:
					tr.Observe(2+g, now)
				case 1:
					tr.ObserveFailure(2+g, now)
				case 2:
					tr.Sweep(now)
				case 3:
					tr.Snapshot()
					tr.Known()
					tr.State(2 + g)
				}
			}
		}(g)
	}
	wg.Wait()
}

// --- SWIM: incarnations, probes, dissemination ---

func TestIndirectProbeGatesDeath(t *testing.T) {
	ck := newClock()
	tr := New(1, testOpts)
	tr.Join(2, ck.now)
	// Engage the probe machinery: silence alone may suspect, never kill.
	if _, _, ok := tr.NextProbe(3); !ok {
		t.Fatal("NextProbe found no target")
	}
	for i := 0; i < 10; i++ {
		tr.Sweep(ck.advance(50 * time.Millisecond))
	}
	if got := tr.State(2); got != Suspect {
		t.Fatalf("silent peer without probe round = %v, want suspect", got)
	}
	// A completed-and-failed indirect round unlocks the timeout.
	tr.ProbeMiss(2, ck.now)
	tr.Sweep(ck.advance(50 * time.Millisecond))
	if got := tr.State(2); got != Dead {
		t.Fatalf("after probe miss + timeout = %v, want dead", got)
	}
}

func TestProbeAckRevives(t *testing.T) {
	ck := newClock()
	tr := New(1, testOpts)
	tr.Join(2, ck.now)
	tr.NextProbe(3)
	tr.ProbeMiss(2, ck.now)
	if got := tr.State(2); got != Suspect {
		t.Fatalf("after probe miss = %v, want suspect", got)
	}
	tr.ProbeAck(2, 7, ck.advance(10*time.Millisecond))
	if got := tr.State(2); got != Alive {
		t.Fatalf("after probe ack = %v, want alive", got)
	}
	if inc := tr.Incarnation(2); inc < 7 {
		t.Fatalf("incarnation after ack = %d, want >= 7", inc)
	}
}

func TestNextProbeRotatesDeterministically(t *testing.T) {
	ck := newClock()
	tr := New(1, testOpts)
	for _, n := range []int{4, 2, 3} {
		tr.Join(n, ck.now)
	}
	var got []int
	for i := 0; i < 6; i++ {
		target, relays, ok := tr.NextProbe(2)
		if !ok {
			t.Fatal("no probe target")
		}
		for _, r := range relays {
			if r == target {
				t.Fatalf("target %d listed as its own relay", target)
			}
		}
		got = append(got, target)
	}
	want := []int{2, 3, 4, 2, 3, 4}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("probe rotation = %v, want %v", got, want)
	}
}

func TestAbsorbMergesMonotonically(t *testing.T) {
	ck := newClock()
	tr := New(1, testOpts)
	tr.Join(2, ck.now)

	// Equal incarnation: the harsher verdict wins.
	tr.Absorb(Update{Node: 2, State: Suspect, Inc: 0}, ck.now)
	if got := tr.State(2); got != Suspect {
		t.Fatalf("equal-inc suspect ignored: %v", got)
	}
	// Equal incarnation: a milder verdict does not regress.
	tr.Absorb(Update{Node: 2, State: Alive, Inc: 0}, ck.now)
	if got := tr.State(2); got != Suspect {
		t.Fatalf("equal-inc alive overrode suspect: %v", got)
	}
	// Higher incarnation always wins.
	tr.Absorb(Update{Node: 2, State: Alive, Inc: 1}, ck.now)
	if got := tr.State(2); got != Alive {
		t.Fatalf("higher-inc alive lost: %v", got)
	}
	// Stale incarnation is dropped.
	tr.Absorb(Update{Node: 2, State: Dead, Inc: 0}, ck.now)
	if got := tr.State(2); got != Alive {
		t.Fatalf("stale dead applied: %v", got)
	}
	if inc := tr.Incarnation(2); inc != 1 {
		t.Fatalf("incarnation = %d, want 1", inc)
	}
}

func TestSelfAccusationIsRefuted(t *testing.T) {
	ck := newClock()
	tr := New(1, testOpts)
	tr.Join(2, ck.now)
	tr.Absorb(Update{Node: 1, State: Suspect, Inc: 0}, ck.now)
	if inc := tr.Incarnation(1); inc != 1 {
		t.Fatalf("self incarnation after accusation = %d, want 1", inc)
	}
	ups := tr.Updates(8)
	var refuted bool
	for _, u := range ups {
		if u.Node == 1 && u.State == Alive && u.Inc == 1 {
			refuted = true
		}
	}
	if !refuted {
		t.Fatalf("no refutation queued; updates = %+v", ups)
	}
	// The refutation outranks the accusation at every other observer.
	other := New(3, testOpts)
	other.Join(1, ck.now)
	other.Absorb(Update{Node: 1, State: Suspect, Inc: 0}, ck.now)
	other.Absorb(Update{Node: 1, State: Alive, Inc: 1}, ck.now)
	if got := other.State(1); got != Alive {
		t.Fatalf("refutation lost at observer: %v", got)
	}
}

func TestUpdatesRetransmitBudget(t *testing.T) {
	ck := newClock()
	tr := New(1, testOpts)
	tr.Join(2, ck.now)
	tr.ObserveFailure(2, ck.now) // queues one Suspect verdict
	for i := 0; i < updateRetransmit; i++ {
		if got := tr.Updates(8); len(got) != 1 {
			t.Fatalf("round %d: updates = %+v, want 1", i, got)
		}
	}
	if got := tr.Updates(8); len(got) != 0 {
		t.Fatalf("update outlived its budget: %+v", got)
	}
}

// TestRejoinWithinSuspectWindowIsIncarnationAware is the regression test
// for the stalled-sweeper forgiveness fix: a restarted node that rejoins
// within the suspect window must not inherit its dead predecessor's
// suspect state — stale verdicts about the previous incarnation, still
// circulating in gossip, must bounce off the bumped incarnation.
func TestRejoinWithinSuspectWindowIsIncarnationAware(t *testing.T) {
	ck := newClock()
	tr := New(1, testOpts)
	tr.Join(2, ck.now)

	// Node 2 goes silent and is suspected at incarnation 0.
	for i := 0; i < 3; i++ {
		tr.Sweep(ck.advance(50 * time.Millisecond))
	}
	if got := tr.State(2); got != Suspect {
		t.Fatalf("state = %v, want suspect", got)
	}
	staleInc := tr.Incarnation(2)

	// The sweeper stalls; on resume the node restarts and rejoins within
	// the suspect window.
	tr.Sweep(ck.advance(2 * time.Second))
	tr.Join(2, ck.advance(10*time.Millisecond))
	if got := tr.State(2); got != Alive {
		t.Fatalf("state after rejoin = %v, want alive", got)
	}
	if inc := tr.Incarnation(2); inc <= staleInc {
		t.Fatalf("rejoin did not bump incarnation: %d <= %d", inc, staleInc)
	}

	// The predecessor's suspect/dead verdicts arrive late from gossip:
	// they are about the old incarnation and must not regress the rejoin.
	tr.Absorb(Update{Node: 2, State: Suspect, Inc: staleInc}, ck.now)
	tr.Absorb(Update{Node: 2, State: Dead, Inc: staleInc}, ck.now)
	if got := tr.State(2); got != Alive {
		t.Fatalf("rejoined node inherited predecessor verdict: %v", got)
	}

	// Fresh silence still escalates normally afterwards.
	for i := 0; i < 8; i++ {
		tr.Sweep(ck.advance(50 * time.Millisecond))
	}
	if got := tr.State(2); got != Dead {
		t.Fatalf("state = %v, want dead", got)
	}
}
