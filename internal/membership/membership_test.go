package membership

import (
	"reflect"
	"sync"
	"testing"
	"time"
)

// clock is a synthetic time source so every transition is deterministic.
type clock struct{ now time.Time }

func newClock() *clock { return &clock{now: time.Unix(1000, 0)} }

func (c *clock) advance(d time.Duration) time.Time {
	c.now = c.now.Add(d)
	return c.now
}

var testOpts = Options{
	SuspectAfter:   100 * time.Millisecond,
	DeadAfter:      300 * time.Millisecond,
	FailuresToDead: 3,
}

// collectEvents subscribes a recorder to t and returns the accessor.
func collectEvents(t *Tracker) func() []Event {
	var mu sync.Mutex
	var evs []Event
	t.OnChange(func(e Event) {
		mu.Lock()
		evs = append(evs, e)
		mu.Unlock()
	})
	return func() []Event {
		mu.Lock()
		defer mu.Unlock()
		return append([]Event(nil), evs...)
	}
}

func TestSilenceEscalatesSuspectThenDead(t *testing.T) {
	ck := newClock()
	tr := New(1, testOpts)
	events := collectEvents(tr)
	tr.Join(2, ck.now)

	if got := tr.State(2); got != Alive {
		t.Fatalf("fresh peer state = %v", got)
	}

	// Sweeps must run often enough that the tracker does not conclude it
	// was itself stalled.
	for i := 0; i < 3; i++ {
		tr.Sweep(ck.advance(50 * time.Millisecond))
	}
	if got := tr.State(2); got != Suspect {
		t.Fatalf("after 150ms of silence state = %v, want suspect", got)
	}
	for i := 0; i < 4; i++ {
		tr.Sweep(ck.advance(50 * time.Millisecond))
	}
	if got := tr.State(2); got != Dead {
		t.Fatalf("after 350ms of silence state = %v, want dead", got)
	}
	want := []Event{{Node: 2, State: Suspect}, {Node: 2, State: Dead}}
	if got := events(); !reflect.DeepEqual(got, want) {
		t.Errorf("events = %+v, want %+v", got, want)
	}
}

func TestHeartbeatKeepsAlive(t *testing.T) {
	ck := newClock()
	tr := New(1, testOpts)
	tr.Join(2, ck.now)
	for i := 0; i < 20; i++ {
		now := ck.advance(50 * time.Millisecond)
		tr.Observe(2, now)
		tr.Sweep(now)
	}
	if got := tr.State(2); got != Alive {
		t.Fatalf("heartbeating peer state = %v", got)
	}
}

func TestRejoinHeals(t *testing.T) {
	ck := newClock()
	tr := New(1, testOpts)
	events := collectEvents(tr)
	tr.Join(2, ck.now)
	for i := 0; i < 8; i++ {
		tr.Sweep(ck.advance(50 * time.Millisecond))
	}
	if got := tr.State(2); got != Dead {
		t.Fatalf("state = %v, want dead", got)
	}
	tr.Observe(2, ck.advance(50*time.Millisecond))
	if got := tr.State(2); got != Alive {
		t.Fatalf("state after rejoin = %v, want alive", got)
	}
	evs := events()
	if last := evs[len(evs)-1]; last != (Event{Node: 2, State: Alive}) {
		t.Errorf("last event = %+v, want alive", last)
	}
}

func TestSendFailuresEscalate(t *testing.T) {
	ck := newClock()
	tr := New(1, testOpts)
	events := collectEvents(tr)
	tr.Join(2, ck.now)

	tr.ObserveFailure(2, ck.advance(time.Millisecond))
	if got := tr.State(2); got != Suspect {
		t.Fatalf("after one failure state = %v, want suspect", got)
	}
	tr.ObserveFailure(2, ck.advance(time.Millisecond))
	tr.ObserveFailure(2, ck.advance(time.Millisecond))
	if got := tr.State(2); got != Dead {
		t.Fatalf("after three failures state = %v, want dead", got)
	}
	want := []Event{{Node: 2, State: Suspect}, {Node: 2, State: Dead}}
	if got := events(); !reflect.DeepEqual(got, want) {
		t.Errorf("events = %+v, want %+v", got, want)
	}

	// A successful heartbeat resets the failure count entirely.
	tr.Observe(2, ck.advance(time.Millisecond))
	tr.ObserveFailure(2, ck.advance(time.Millisecond))
	if got := tr.State(2); got != Suspect {
		t.Fatalf("after heal + one failure state = %v, want suspect", got)
	}
}

func TestStalledSweeperAccusesNoOne(t *testing.T) {
	ck := newClock()
	tr := New(1, testOpts)
	tr.Join(2, ck.now)
	tr.Sweep(ck.advance(10 * time.Millisecond))

	// The sweeper goes silent for far longer than DeadAfter (partition,
	// CPU starvation, suspended process). On resume the stale evidence
	// must be forgiven, not turned into accusations.
	tr.Sweep(ck.advance(2 * time.Second))
	if got := tr.State(2); got != Alive {
		t.Fatalf("state after sweeper stall = %v, want alive", got)
	}
	// Silence from here on still escalates normally.
	for i := 0; i < 8; i++ {
		tr.Sweep(ck.advance(50 * time.Millisecond))
	}
	if got := tr.State(2); got != Dead {
		t.Fatalf("state = %v, want dead", got)
	}
}

func TestUnknownPeerIsDeadAndAutoRegisters(t *testing.T) {
	ck := newClock()
	tr := New(1, testOpts)
	if got := tr.State(9); got != Dead {
		t.Fatalf("unknown peer state = %v, want dead", got)
	}
	tr.Observe(9, ck.now) // gossip outran the join protocol
	if got := tr.State(9); got != Alive {
		t.Fatalf("auto-registered peer state = %v, want alive", got)
	}
	if got := tr.Known(); !reflect.DeepEqual(got, []int{9}) {
		t.Fatalf("known = %v", got)
	}
}

func TestSelfIsNeverTracked(t *testing.T) {
	ck := newClock()
	tr := New(1, testOpts)
	tr.Join(1, ck.now)
	tr.Observe(1, ck.now)
	tr.ObserveFailure(1, ck.now)
	if got := tr.Known(); len(got) != 0 {
		t.Fatalf("tracker tracks itself: %v", got)
	}
}

func TestSnapshotAndAlivePeers(t *testing.T) {
	ck := newClock()
	tr := New(1, testOpts)
	tr.Join(3, ck.now)
	tr.Join(2, ck.now)
	tr.ObserveFailure(3, ck.now)
	snap := tr.Snapshot()
	if len(snap) != 2 || snap[0].Node != 2 || snap[1].Node != 3 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap[1].State != Suspect || snap[1].Failures != 1 {
		t.Fatalf("snapshot row = %+v, want suspect with 1 failure", snap[1])
	}
	if got := tr.AlivePeers(); !reflect.DeepEqual(got, []int{2}) {
		t.Fatalf("alive peers = %v", got)
	}
}

func TestOnChangeCancel(t *testing.T) {
	ck := newClock()
	tr := New(1, testOpts)
	var n int
	cancel := tr.OnChange(func(Event) { n++ })
	tr.Join(2, ck.now)
	tr.ObserveFailure(2, ck.now)
	if n != 1 {
		t.Fatalf("events before cancel = %d, want 1", n)
	}
	cancel()
	tr.ObserveFailure(2, ck.now)
	tr.ObserveFailure(2, ck.now)
	if n != 1 {
		t.Fatalf("events after cancel = %d, want 1", n)
	}
}

// TestConcurrentUse exercises the tracker under -race: evidence,
// sweeps and snapshots from many goroutines at once.
func TestConcurrentUse(t *testing.T) {
	tr := New(1, Options{})
	tr.OnChange(func(Event) {})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				now := time.Now()
				switch i % 4 {
				case 0:
					tr.Observe(2+g, now)
				case 1:
					tr.ObserveFailure(2+g, now)
				case 2:
					tr.Sweep(now)
				case 3:
					tr.Snapshot()
					tr.Known()
					tr.State(2 + g)
				}
			}
		}(g)
	}
	wg.Wait()
}
