package membership

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"
)

// This file pins the SWIM state machine with a randomized property test:
// under arbitrary interleavings of probe acks, failed indirect-probe
// rounds, rejoins, sweeps and gossip exchange,
//
//  1. an observer's incarnation for any node never regresses,
//  2. no observer ever declares a node dead unless a completed
//     indirect-probe round failed somewhere in the cluster (no
//     ObserveFailure is issued, so probes are the only path to death),
//  3. once gossip quiesces, every observer converges to the same verdict
//     for every node.
//
// Seeds come from MEMBERSHIP_SEEDS (comma-separated, default "1,7,42")
// so CI can sweep them; each seed is fully deterministic.

func propertySeeds(t *testing.T) []int64 {
	raw := os.Getenv("MEMBERSHIP_SEEDS")
	if raw == "" {
		raw = "1,7,42"
	}
	var seeds []int64
	for _, f := range strings.Split(raw, ",") {
		s, err := strconv.ParseInt(strings.TrimSpace(f), 10, 64)
		if err != nil {
			t.Fatalf("MEMBERSHIP_SEEDS: %v", err)
		}
		seeds = append(seeds, s)
	}
	return seeds
}

func TestSWIMPropertyRandomized(t *testing.T) {
	for _, seed := range propertySeeds(t) {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runSWIMProperty(t, seed)
		})
	}
}

func runSWIMProperty(t *testing.T, seed int64) {
	const (
		nodes = 5
		iters = 600
	)
	rng := rand.New(rand.NewSource(seed))
	now := time.Unix(1000, 0)

	trackers := make(map[int]*Tracker, nodes)
	for id := 1; id <= nodes; id++ {
		trackers[id] = New(id, testOpts)
	}
	for id, tr := range trackers {
		for peer := 1; peer <= nodes; peer++ {
			if peer != id {
				tr.Join(peer, now)
			}
		}
		// Engage the probe machinery everywhere: from here on, silence
		// alone must never kill.
		tr.NextProbe(3)
	}

	// highInc is the per-(observer, node) incarnation high-water mark;
	// missed records nodes with a failed indirect-probe round anywhere.
	highInc := make(map[[2]int]uint64)
	missed := make(map[int]bool)

	checkInvariants := func(step string) {
		for id, tr := range trackers {
			for _, m := range tr.Snapshot() {
				key := [2]int{id, m.Node}
				if m.Inc < highInc[key] {
					t.Fatalf("seed %d %s: observer %d regressed incarnation of %d: %d -> %d",
						seed, step, id, m.Node, highInc[key], m.Inc)
				}
				highInc[key] = m.Inc
				if m.State == Dead && !missed[m.Node] {
					t.Fatalf("seed %d %s: observer %d declared %d dead without a completed indirect-probe round",
						seed, step, id, m.Node)
				}
			}
		}
	}

	pick := func() (*Tracker, int) {
		actor := trackers[1+rng.Intn(nodes)]
		subject := 1 + rng.Intn(nodes)
		for subject == actor.Self() {
			subject = 1 + rng.Intn(nodes)
		}
		return actor, subject
	}

	for i := 0; i < iters; i++ {
		now = now.Add(time.Duration(1+rng.Intn(20)) * time.Millisecond)
		switch rng.Intn(6) {
		case 0: // successful probe (direct or relayed ack)
			a, s := pick()
			a.ProbeAck(s, a.Incarnation(s), now)
		case 1: // completed indirect-probe round failed
			a, s := pick()
			a.ProbeMiss(s, now)
			missed[s] = true
		case 2: // the subject restarted and rejoined
			a, s := pick()
			a.Join(s, now)
		case 3: // gossip exchange: piggybacked updates, bounded batch
			a, _ := pick()
			b := trackers[1+rng.Intn(nodes)]
			for _, u := range a.Updates(8) {
				b.Absorb(u, now)
			}
		case 4: // suspicion clock advances at one observer
			a, _ := pick()
			a.Sweep(now)
		case 5: // heartbeat heard directly
			a, s := pick()
			a.Observe(s, now)
		}
		checkInvariants(fmt.Sprintf("iter %d", i))
	}

	// Quiesce: full anti-entropy exchange (queued updates plus snapshot
	// push) until no observer's table changes. The merge lattice is
	// monotone, so this must reach a fixpoint where all views agree.
	view := func() map[[2]int]Update {
		out := make(map[[2]int]Update)
		for id, tr := range trackers {
			for _, m := range tr.Snapshot() {
				out[[2]int{id, m.Node}] = Update{Node: m.Node, State: m.State, Inc: m.Inc}
			}
		}
		return out
	}
	same := func(a, b map[[2]int]Update) bool {
		if len(a) != len(b) {
			return false
		}
		for k, v := range a {
			if b[k] != v {
				return false
			}
		}
		return true
	}
	converged := false
	for round := 0; round < 200; round++ {
		before := view()
		for _, a := range trackers {
			ups := a.Updates(1024)
			for _, b := range trackers {
				if b == a {
					continue
				}
				for _, u := range ups {
					b.Absorb(u, now)
				}
				for _, m := range a.Snapshot() {
					b.Absorb(Update{Node: m.Node, State: m.State, Inc: m.Inc}, now)
				}
			}
		}
		checkInvariants(fmt.Sprintf("quiesce round %d", round))
		if same(before, view()) {
			converged = true
			break
		}
	}
	if !converged {
		t.Fatalf("seed %d: anti-entropy did not reach a fixpoint in 200 rounds", seed)
	}

	for node := 1; node <= nodes; node++ {
		verdicts := make(map[State][]int)
		for id, tr := range trackers {
			if id == node {
				continue
			}
			verdicts[tr.State(node)] = append(verdicts[tr.State(node)], id)
		}
		if len(verdicts) != 1 {
			t.Fatalf("seed %d: observers disagree about %d: %v", seed, node, verdicts)
		}
	}
}
