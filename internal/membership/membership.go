// Package membership implements SWIM-style failure detection for the
// cluster runtime. Every node runs one Tracker over the peers it knows;
// liveness evidence is piggybacked on the load gossip the balancer already
// exchanges (a received KindLoadReport is a heartbeat), supplemented by
// direct send failures and indirect probe rounds. A peer that stays silent
// past SuspectAfter becomes Suspect, past DeadAfter becomes Dead; any
// fresh evidence of life flips it back to Alive — rejoin heals. State
// transitions are published to subscribers (the balancer feeds them into
// the failure-aware policy.Scheduler), so liveness flows into scheduling
// decisions without anyone calling SetNodeDown: the simulated network
// keeps that switch as a fault-injection hook which this detector must
// *observe*, never be told about.
//
// Three SWIM mechanisms refine the plain heartbeat detector:
//
//   - Incarnation numbers. Every (peer, verdict) pair carries an
//     incarnation; a restart or rejoin bumps it, so a zombie accusation
//     about a previous lifetime can never regress a node that has since
//     come back. Verdicts merge over a monotone lattice: a higher
//     incarnation always wins, and at equal incarnations the harsher
//     verdict wins (Dead > Suspect > Alive).
//
//   - Indirect probes. Once a caller engages the probe machinery
//     (NextProbe / ProbeAck / ProbeMiss), a peer is never declared dead by
//     silence alone: the silence timeout only escalates to Dead after a
//     completed indirect-probe round (ping-req through k relays) has also
//     failed, or direct send failures supplied independent crash
//     evidence. Legacy callers that never probe keep the plain timeout
//     behavior.
//
//   - Bounded-fanout dissemination. Verdict changes are queued as Updates
//     and piggybacked on a constant number of outgoing gossip messages per
//     period (Updates/Absorb), so membership traffic stays O(n) per
//     protocol period instead of the all-pairs O(n²).
//
// The tracker is deliberately transport-agnostic and free of goroutines:
// callers advance it with Sweep from whatever loop already paces their
// gossip (the balancer tick, a daemon's heartbeat loop), which keeps the
// detector deterministic under test.
package membership

import (
	"sort"
	"sync"
	"time"
)

// State is a peer's liveness verdict.
type State int

const (
	// Alive: fresh evidence of life.
	Alive State = iota
	// Suspect: silent past SuspectAfter, a failed send, or a failed
	// indirect-probe round. Not routed to, but not yet given up on.
	Suspect
	// Dead: silent past DeadAfter, or several consecutive sends failed.
	Dead
)

func (s State) String() string {
	switch s {
	case Alive:
		return "alive"
	case Suspect:
		return "suspect"
	case Dead:
		return "dead"
	}
	return "unknown"
}

// Options tunes the detector. Zero values select defaults sized for a
// gossip period in the low tens of milliseconds. SuspectAfter must stay
// well above the sweep/heartbeat period: Sweep treats an inter-sweep gap
// larger than SuspectAfter as the sweeper's own stall and forgives the
// silence, so a detector swept less often than that never times anyone
// out (internal/daemon scales these with its interval automatically).
type Options struct {
	// SuspectAfter: no evidence for this long → Suspect (default 150ms).
	SuspectAfter time.Duration
	// DeadAfter: no evidence for this long → Dead (default 500ms).
	DeadAfter time.Duration
	// FailuresToDead: this many consecutive send failures → Dead without
	// waiting for the timeout (default 3). The first failure always moves
	// the peer to Suspect.
	FailuresToDead int
}

func (o *Options) defaults() {
	if o.SuspectAfter <= 0 {
		o.SuspectAfter = 150 * time.Millisecond
	}
	if o.DeadAfter <= o.SuspectAfter {
		o.DeadAfter = o.SuspectAfter + 350*time.Millisecond
	}
	if o.FailuresToDead <= 0 {
		o.FailuresToDead = 3
	}
}

// Event is one peer's state transition.
type Event struct {
	Node  int
	State State
}

// Member is a snapshot row.
type Member struct {
	Node      int
	State     State
	Inc       uint64 // incarnation the verdict applies to
	LastHeard time.Time
	Failures  int // consecutive send failures
}

// Update is one disseminated verdict: node's state at a given incarnation.
// Updates merge monotonically — higher incarnation wins; at equal
// incarnations the harsher state wins — so any gossip order converges all
// observers to the same view.
type Update struct {
	Node  int
	State State
	Inc   uint64
}

// updateRetransmit is how many gossip rounds a queued update rides before
// it is dropped from the piggyback queue. Constant per update, so each
// verdict change costs O(1) extra messages however large the cluster.
const updateRetransmit = 4

type peerRec struct {
	state     State
	inc       uint64
	lastHeard time.Time
	failures  int // consecutive send failures
	// probeMissed records a completed-and-failed indirect probe round for
	// this incarnation: the gate silence needs to pass before it may
	// escalate to Dead once the probe machinery is in use.
	probeMissed bool
}

type queuedUpdate struct {
	u    Update
	left int
}

// Tracker is one node's view of its peers' liveness.
type Tracker struct {
	self int
	opts Options

	mu        sync.Mutex
	peers     map[int]*peerRec
	subs      map[int]func(Event)
	nextSub   int
	lastSweep time.Time

	// selfInc is this node's own incarnation; bumped to refute stale
	// accusations about itself absorbed from gossip.
	selfInc uint64
	// probesUsed flips once the caller engages the probe machinery; from
	// then on silence alone never declares Dead (see Sweep).
	probesUsed bool
	// probeCursor rotates NextProbe deterministically over the sorted
	// known set.
	probeCursor int
	// updates is the pending dissemination queue, one slot per node (a
	// newer verdict about a node replaces the queued one).
	updates map[int]*queuedUpdate
}

// New builds a tracker for node self.
func New(self int, opts Options) *Tracker {
	opts.defaults()
	return &Tracker{
		self:    self,
		opts:    opts,
		peers:   make(map[int]*peerRec),
		subs:    make(map[int]func(Event)),
		updates: make(map[int]*queuedUpdate),
	}
}

// Self returns the owning node's id.
func (t *Tracker) Self() int { return t.self }

// OnChange subscribes fn to state transitions; the returned cancel
// removes the subscription. fn runs outside the tracker's lock.
func (t *Tracker) OnChange(fn func(Event)) (cancel func()) {
	t.mu.Lock()
	id := t.nextSub
	t.nextSub++
	t.subs[id] = fn
	t.mu.Unlock()
	return func() {
		t.mu.Lock()
		delete(t.subs, id)
		t.mu.Unlock()
	}
}

// notify delivers events to subscribers; call with t.mu NOT held.
func (t *Tracker) notify(evs []Event) {
	if len(evs) == 0 {
		return
	}
	t.mu.Lock()
	subs := make([]func(Event), 0, len(t.subs))
	for _, fn := range t.subs {
		subs = append(subs, fn)
	}
	t.mu.Unlock()
	for _, ev := range evs {
		for _, fn := range subs {
			fn(ev)
		}
	}
}

// enqueueLocked queues a verdict for piggybacked dissemination; call with
// t.mu held.
func (t *Tracker) enqueueLocked(u Update) {
	t.updates[u.Node] = &queuedUpdate{u: u, left: updateRetransmit}
}

// Join registers a peer as Alive with a fresh grace period. Joining an
// already-known peer is a new lifetime: the record is fully reset and its
// incarnation bumped past the predecessor's, so stale Suspect/Dead
// verdicts about the old lifetime still circulating in gossip can never
// regress the rejoined node (a rejoin heals, incarnation-aware).
func (t *Tracker) Join(node int, now time.Time) {
	if node == t.self {
		return
	}
	t.mu.Lock()
	var evs []Event
	p, ok := t.peers[node]
	if !ok {
		t.peers[node] = &peerRec{state: Alive, lastHeard: now}
	} else {
		p.inc++
		if p.state != Alive {
			evs = []Event{{Node: node, State: Alive}}
		}
		p.state = Alive
		p.failures = 0
		p.probeMissed = false
		if p.lastHeard.Before(now) {
			p.lastHeard = now
		}
		t.enqueueLocked(Update{Node: node, State: Alive, Inc: p.inc})
	}
	t.mu.Unlock()
	t.notify(evs)
}

// Forget drops a peer from the view entirely (it left on purpose).
func (t *Tracker) Forget(node int) {
	t.mu.Lock()
	delete(t.peers, node)
	delete(t.updates, node)
	t.mu.Unlock()
}

// Observe records evidence that node is alive (a heartbeat or load report
// arrived, an RPC answered). Unknown peers are auto-registered: gossip
// can outrun the join protocol. Direct evidence of life on a non-Alive
// peer bumps its incarnation — a heard-from node outranks any circulating
// accusation about its previous incarnation.
func (t *Tracker) Observe(node int, now time.Time) {
	if node == t.self {
		return
	}
	t.mu.Lock()
	evs := t.observeLocked(node, now)
	t.mu.Unlock()
	t.notify(evs)
}

func (t *Tracker) observeLocked(node int, now time.Time) []Event {
	p, ok := t.peers[node]
	if !ok {
		p = &peerRec{state: Alive, lastHeard: now}
		t.peers[node] = p
		return nil
	}
	p.failures = 0
	p.probeMissed = false
	if p.lastHeard.Before(now) {
		p.lastHeard = now
	}
	if p.state != Alive {
		p.state = Alive
		p.inc++
		t.enqueueLocked(Update{Node: node, State: Alive, Inc: p.inc})
		return []Event{{Node: node, State: Alive}}
	}
	return nil
}

// ObserveFailure records a failed send to node. The first failure makes
// the peer Suspect immediately (cheap safety: one bad RPC stops routing
// until the next heartbeat clears it); FailuresToDead consecutive
// failures make it Dead without waiting for the silence timeout.
func (t *Tracker) ObserveFailure(node int, now time.Time) {
	if node == t.self {
		return
	}
	t.mu.Lock()
	p, ok := t.peers[node]
	if !ok {
		p = &peerRec{state: Alive, lastHeard: now}
		t.peers[node] = p
	}
	p.failures++
	var evs []Event
	switch {
	case p.failures >= t.opts.FailuresToDead && p.state != Dead:
		p.state = Dead
		t.enqueueLocked(Update{Node: node, State: Dead, Inc: p.inc})
		evs = []Event{{Node: node, State: Dead}}
	case p.failures < t.opts.FailuresToDead && p.state == Alive:
		p.state = Suspect
		t.enqueueLocked(Update{Node: node, State: Suspect, Inc: p.inc})
		evs = []Event{{Node: node, State: Suspect}}
	}
	t.mu.Unlock()
	t.notify(evs)
}

// Sweep advances the suspicion clocks: peers silent past SuspectAfter
// become Suspect, past DeadAfter become Dead. If the sweeper itself was
// stalled (the gap since the previous sweep exceeds SuspectAfter — the
// node was partitioned, suspended, or starved of CPU), the staleness is
// the sweeper's fault, not the peers': every peer's evidence clock is
// refreshed — and pre-stall probe verdicts cleared, they are as stale as
// the evidence — and no one is accused this round.
//
// Once the probe machinery is in use, silence alone never kills: the
// DeadAfter timeout only escalates a peer whose indirect-probe round
// completed and failed, or that has direct send failures on record.
func (t *Tracker) Sweep(now time.Time) {
	t.mu.Lock()
	gap := now.Sub(t.lastSweep)
	stalled := !t.lastSweep.IsZero() && gap > t.opts.SuspectAfter
	t.lastSweep = now
	var evs []Event
	if stalled {
		for _, p := range t.peers {
			if p.lastHeard.Before(now) {
				p.lastHeard = now
			}
			p.probeMissed = false
		}
		t.mu.Unlock()
		return
	}
	for node, p := range t.peers {
		silent := now.Sub(p.lastHeard)
		switch {
		case silent > t.opts.DeadAfter && p.state != Dead:
			if t.probesUsed && !p.probeMissed && p.failures == 0 {
				// No completed indirect-probe round and no crash evidence:
				// hold at Suspect until the probes weigh in.
				if p.state == Alive {
					p.state = Suspect
					t.enqueueLocked(Update{Node: node, State: Suspect, Inc: p.inc})
					evs = append(evs, Event{Node: node, State: Suspect})
				}
				continue
			}
			p.state = Dead
			t.enqueueLocked(Update{Node: node, State: Dead, Inc: p.inc})
			evs = append(evs, Event{Node: node, State: Dead})
		case silent > t.opts.SuspectAfter && p.state == Alive:
			p.state = Suspect
			t.enqueueLocked(Update{Node: node, State: Suspect, Inc: p.inc})
			evs = append(evs, Event{Node: node, State: Suspect})
		}
	}
	t.mu.Unlock()
	t.notify(evs)
}

// --- SWIM probe machinery ---

// NextProbe picks the next probe target by deterministic rotation over
// the sorted known set, plus up to k alive relays (excluding the target)
// for the indirect ping-req round. ok is false when no peers are known.
// Calling NextProbe engages the probe machinery: from then on, Sweep
// requires a completed indirect-probe round (or direct send failures)
// before declaring a silent peer Dead.
func (t *Tracker) NextProbe(k int) (target int, relays []int, ok bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.probesUsed = true
	ids := make([]int, 0, len(t.peers))
	for id := range t.peers {
		ids = append(ids, id)
	}
	if len(ids) == 0 {
		return 0, nil, false
	}
	sort.Ints(ids)
	t.probeCursor %= len(ids)
	target = ids[t.probeCursor]
	t.probeCursor++
	for _, id := range ids {
		if len(relays) >= k {
			break
		}
		if id != target && t.peers[id].state == Alive {
			relays = append(relays, id)
		}
	}
	return target, relays, true
}

// ProbeAck records a successful probe of node (direct or relayed): the
// peer is alive at incarnation inc. Engages the probe machinery.
func (t *Tracker) ProbeAck(node int, inc uint64, now time.Time) {
	if node == t.self {
		return
	}
	t.mu.Lock()
	t.probesUsed = true
	p, ok := t.peers[node]
	if !ok {
		p = &peerRec{state: Alive, lastHeard: now}
		t.peers[node] = p
	}
	if inc > p.inc {
		p.inc = inc
	}
	evs := t.observeLocked(node, now)
	t.mu.Unlock()
	t.notify(evs)
}

// ProbeMiss records a completed-and-failed indirect probe round for node:
// neither a direct probe nor any relay could reach it. The peer becomes
// Suspect immediately and is eligible for the Dead timeout. Engages the
// probe machinery.
func (t *Tracker) ProbeMiss(node int, now time.Time) {
	if node == t.self {
		return
	}
	t.mu.Lock()
	t.probesUsed = true
	p, ok := t.peers[node]
	if !ok {
		t.mu.Unlock()
		return
	}
	p.probeMissed = true
	var evs []Event
	if p.state == Alive {
		p.state = Suspect
		t.enqueueLocked(Update{Node: node, State: Suspect, Inc: p.inc})
		evs = []Event{{Node: node, State: Suspect}}
	}
	t.mu.Unlock()
	t.notify(evs)
}

// --- dissemination ---

// Updates drains up to max pending verdicts for piggybacking on outgoing
// gossip. Each queued verdict rides a bounded number of rounds
// (updateRetransmit) before it is dropped, so dissemination traffic per
// verdict change is O(1) whatever the cluster size. Deterministic order
// (ascending node id).
func (t *Tracker) Updates(max int) []Update {
	t.mu.Lock()
	defer t.mu.Unlock()
	if max <= 0 || len(t.updates) == 0 {
		return nil
	}
	nodes := make([]int, 0, len(t.updates))
	for id := range t.updates {
		nodes = append(nodes, id)
	}
	sort.Ints(nodes)
	out := make([]Update, 0, len(nodes))
	for _, id := range nodes {
		if len(out) >= max {
			break
		}
		q := t.updates[id]
		out = append(out, q.u)
		if q.left--; q.left <= 0 {
			delete(t.updates, id)
		}
	}
	return out
}

// PendingUpdates reports how many verdicts await dissemination.
func (t *Tracker) PendingUpdates() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.updates)
}

// Absorb merges one gossiped verdict into the local view. The merge is
// monotone: a higher incarnation always wins; at equal incarnations the
// harsher state wins (Dead > Suspect > Alive), so observers converge
// whatever the gossip order. An accusation about the tracker's own node
// is refuted by bumping the self incarnation and queueing an Alive
// verdict that outranks it.
func (t *Tracker) Absorb(u Update, now time.Time) {
	t.mu.Lock()
	if u.Node == t.self {
		if u.State == Alive {
			if u.Inc > t.selfInc {
				t.selfInc = u.Inc
			}
		} else if u.Inc >= t.selfInc {
			t.selfInc = u.Inc + 1
			t.enqueueLocked(Update{Node: t.self, State: Alive, Inc: t.selfInc})
		}
		t.mu.Unlock()
		return
	}
	var evs []Event
	p, ok := t.peers[u.Node]
	if !ok {
		p = &peerRec{state: u.State, inc: u.Inc, lastHeard: now}
		t.peers[u.Node] = p
		if u.State != Alive {
			t.enqueueLocked(u)
			evs = []Event{{Node: u.Node, State: u.State}}
		}
		t.mu.Unlock()
		t.notify(evs)
		return
	}
	switch {
	case u.Inc > p.inc:
		p.inc = u.Inc
		if u.State == Alive {
			p.failures = 0
			p.probeMissed = false
			if p.lastHeard.Before(now) {
				p.lastHeard = now
			}
		}
		if p.state != u.State {
			p.state = u.State
			evs = []Event{{Node: u.Node, State: u.State}}
		}
		t.enqueueLocked(Update{Node: u.Node, State: p.state, Inc: p.inc})
	case u.Inc == p.inc:
		if u.State > p.state {
			p.state = u.State
			t.enqueueLocked(u)
			evs = []Event{{Node: u.Node, State: u.State}}
		} else if u.State == Alive && p.state == Alive {
			// Corroborating evidence: some observer heard from the peer
			// this period. Indirect heartbeats are what let the bounded
			// fanout keep every pairwise clock fresh.
			p.failures = 0
			if p.lastHeard.Before(now) {
				p.lastHeard = now
			}
		}
	default:
		// Stale incarnation: drop. Our fresher verdict is already queued
		// (or was already disseminated).
	}
	t.mu.Unlock()
	t.notify(evs)
}

// Incarnation returns the current incarnation the tracker holds for node
// (its own self-incarnation when node is the tracker's id).
func (t *Tracker) Incarnation(node int) uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if node == t.self {
		return t.selfInc
	}
	if p, ok := t.peers[node]; ok {
		return p.inc
	}
	return 0
}

// --- views ---

// State returns the peer's current verdict (Dead for unknown peers:
// never route to a node you have no evidence about).
func (t *Tracker) State(node int) State {
	t.mu.Lock()
	defer t.mu.Unlock()
	if p, ok := t.peers[node]; ok {
		return p.state
	}
	return Dead
}

// Alive reports whether node is currently considered alive.
func (t *Tracker) Alive(node int) bool { return t.State(node) == Alive }

// Known returns all registered peer ids in ascending order, whatever
// their state — the gossip fan-out set (dead peers keep receiving
// heartbeats so a rejoin is noticed).
func (t *Tracker) Known() []int {
	t.mu.Lock()
	out := make([]int, 0, len(t.peers))
	for id := range t.peers {
		out = append(out, id)
	}
	t.mu.Unlock()
	sort.Ints(out)
	return out
}

// AlivePeers returns the ids currently in the Alive state, ascending.
func (t *Tracker) AlivePeers() []int {
	t.mu.Lock()
	out := make([]int, 0, len(t.peers))
	for id, p := range t.peers {
		if p.state == Alive {
			out = append(out, id)
		}
	}
	t.mu.Unlock()
	sort.Ints(out)
	return out
}

// Snapshot returns a copy of the full view, sorted by node id.
func (t *Tracker) Snapshot() []Member {
	t.mu.Lock()
	out := make([]Member, 0, len(t.peers))
	for id, p := range t.peers {
		out = append(out, Member{Node: id, State: p.state, Inc: p.inc, LastHeard: p.lastHeard, Failures: p.failures})
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}
