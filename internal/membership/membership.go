// Package membership implements heartbeat-based failure detection for the
// cluster runtime. Every node runs one Tracker over the peers it knows;
// liveness evidence is piggybacked on the load gossip the balancer already
// exchanges (a received KindLoadReport is a heartbeat), supplemented by
// direct send failures. A peer that stays silent past SuspectAfter becomes
// Suspect, past DeadAfter becomes Dead; any fresh evidence of life flips
// it back to Alive — rejoin heals. State transitions are published to
// subscribers (the balancer feeds them into the failure-aware
// policy.Scheduler), so liveness flows into scheduling decisions without
// anyone calling SetNodeDown: the simulated network keeps that switch as a
// fault-injection hook which this detector must *observe*, never be told
// about.
//
// The tracker is deliberately transport-agnostic and free of goroutines:
// callers advance it with Sweep from whatever loop already paces their
// gossip (the balancer tick, a daemon's heartbeat loop), which keeps the
// detector deterministic under test.
package membership

import (
	"sort"
	"sync"
	"time"
)

// State is a peer's liveness verdict.
type State int

const (
	// Alive: fresh evidence of life.
	Alive State = iota
	// Suspect: silent past SuspectAfter, or one send to it failed. Not
	// routed to, but not yet given up on.
	Suspect
	// Dead: silent past DeadAfter, or several consecutive sends failed.
	Dead
)

func (s State) String() string {
	switch s {
	case Alive:
		return "alive"
	case Suspect:
		return "suspect"
	case Dead:
		return "dead"
	}
	return "unknown"
}

// Options tunes the detector. Zero values select defaults sized for a
// gossip period in the low tens of milliseconds. SuspectAfter must stay
// well above the sweep/heartbeat period: Sweep treats an inter-sweep gap
// larger than SuspectAfter as the sweeper's own stall and forgives the
// silence, so a detector swept less often than that never times anyone
// out (internal/daemon scales these with its interval automatically).
type Options struct {
	// SuspectAfter: no evidence for this long → Suspect (default 150ms).
	SuspectAfter time.Duration
	// DeadAfter: no evidence for this long → Dead (default 500ms).
	DeadAfter time.Duration
	// FailuresToDead: this many consecutive send failures → Dead without
	// waiting for the timeout (default 3). The first failure always moves
	// the peer to Suspect.
	FailuresToDead int
}

func (o *Options) defaults() {
	if o.SuspectAfter <= 0 {
		o.SuspectAfter = 150 * time.Millisecond
	}
	if o.DeadAfter <= o.SuspectAfter {
		o.DeadAfter = o.SuspectAfter + 350*time.Millisecond
	}
	if o.FailuresToDead <= 0 {
		o.FailuresToDead = 3
	}
}

// Event is one peer's state transition.
type Event struct {
	Node  int
	State State
}

// Member is a snapshot row.
type Member struct {
	Node      int
	State     State
	LastHeard time.Time
	Failures  int // consecutive send failures
}

type peerRec struct {
	state     State
	lastHeard time.Time
	failures  int
}

// Tracker is one node's view of its peers' liveness.
type Tracker struct {
	self int
	opts Options

	mu        sync.Mutex
	peers     map[int]*peerRec
	subs      map[int]func(Event)
	nextSub   int
	lastSweep time.Time
}

// New builds a tracker for node self.
func New(self int, opts Options) *Tracker {
	opts.defaults()
	return &Tracker{
		self:  self,
		opts:  opts,
		peers: make(map[int]*peerRec),
		subs:  make(map[int]func(Event)),
	}
}

// Self returns the owning node's id.
func (t *Tracker) Self() int { return t.self }

// OnChange subscribes fn to state transitions; the returned cancel
// removes the subscription. fn runs outside the tracker's lock.
func (t *Tracker) OnChange(fn func(Event)) (cancel func()) {
	t.mu.Lock()
	id := t.nextSub
	t.nextSub++
	t.subs[id] = fn
	t.mu.Unlock()
	return func() {
		t.mu.Lock()
		delete(t.subs, id)
		t.mu.Unlock()
	}
}

// notify delivers events to subscribers; call with t.mu NOT held.
func (t *Tracker) notify(evs []Event) {
	if len(evs) == 0 {
		return
	}
	t.mu.Lock()
	subs := make([]func(Event), 0, len(t.subs))
	for _, fn := range t.subs {
		subs = append(subs, fn)
	}
	t.mu.Unlock()
	for _, ev := range evs {
		for _, fn := range subs {
			fn(ev)
		}
	}
}

// Join registers a peer as Alive with a fresh grace period. Joining an
// already-known peer refreshes its evidence (a rejoin heals).
func (t *Tracker) Join(node int, now time.Time) {
	if node == t.self {
		return
	}
	t.mu.Lock()
	evs := t.observeLocked(node, now)
	t.mu.Unlock()
	t.notify(evs)
}

// Forget drops a peer from the view entirely (it left on purpose).
func (t *Tracker) Forget(node int) {
	t.mu.Lock()
	delete(t.peers, node)
	t.mu.Unlock()
}

// Observe records evidence that node is alive (a heartbeat or load report
// arrived, an RPC answered). Unknown peers are auto-registered: gossip
// can outrun the join protocol.
func (t *Tracker) Observe(node int, now time.Time) {
	if node == t.self {
		return
	}
	t.mu.Lock()
	evs := t.observeLocked(node, now)
	t.mu.Unlock()
	t.notify(evs)
}

func (t *Tracker) observeLocked(node int, now time.Time) []Event {
	p, ok := t.peers[node]
	if !ok {
		p = &peerRec{state: Alive, lastHeard: now}
		t.peers[node] = p
		return nil
	}
	p.failures = 0
	if p.lastHeard.Before(now) {
		p.lastHeard = now
	}
	if p.state != Alive {
		p.state = Alive
		return []Event{{Node: node, State: Alive}}
	}
	return nil
}

// ObserveFailure records a failed send to node. The first failure makes
// the peer Suspect immediately (cheap safety: one bad RPC stops routing
// until the next heartbeat clears it); FailuresToDead consecutive
// failures make it Dead without waiting for the silence timeout.
func (t *Tracker) ObserveFailure(node int, now time.Time) {
	if node == t.self {
		return
	}
	t.mu.Lock()
	p, ok := t.peers[node]
	if !ok {
		p = &peerRec{state: Alive, lastHeard: now}
		t.peers[node] = p
	}
	p.failures++
	var evs []Event
	switch {
	case p.failures >= t.opts.FailuresToDead && p.state != Dead:
		p.state = Dead
		evs = []Event{{Node: node, State: Dead}}
	case p.failures < t.opts.FailuresToDead && p.state == Alive:
		p.state = Suspect
		evs = []Event{{Node: node, State: Suspect}}
	}
	t.mu.Unlock()
	t.notify(evs)
}

// Sweep advances the suspicion clocks: peers silent past SuspectAfter
// become Suspect, past DeadAfter become Dead. If the sweeper itself was
// stalled (the gap since the previous sweep exceeds SuspectAfter — the
// node was partitioned, suspended, or starved of CPU), the staleness is
// the sweeper's fault, not the peers': every peer's evidence clock is
// refreshed instead and no one is accused this round.
func (t *Tracker) Sweep(now time.Time) {
	t.mu.Lock()
	gap := now.Sub(t.lastSweep)
	stalled := !t.lastSweep.IsZero() && gap > t.opts.SuspectAfter
	t.lastSweep = now
	var evs []Event
	if stalled {
		for _, p := range t.peers {
			if p.lastHeard.Before(now) {
				p.lastHeard = now
			}
		}
		t.mu.Unlock()
		return
	}
	for node, p := range t.peers {
		silent := now.Sub(p.lastHeard)
		switch {
		case silent > t.opts.DeadAfter && p.state != Dead:
			p.state = Dead
			evs = append(evs, Event{Node: node, State: Dead})
		case silent > t.opts.SuspectAfter && p.state == Alive:
			p.state = Suspect
			evs = append(evs, Event{Node: node, State: Suspect})
		}
	}
	t.mu.Unlock()
	t.notify(evs)
}

// State returns the peer's current verdict (Dead for unknown peers:
// never route to a node you have no evidence about).
func (t *Tracker) State(node int) State {
	t.mu.Lock()
	defer t.mu.Unlock()
	if p, ok := t.peers[node]; ok {
		return p.state
	}
	return Dead
}

// Alive reports whether node is currently considered alive.
func (t *Tracker) Alive(node int) bool { return t.State(node) == Alive }

// Known returns all registered peer ids in ascending order, whatever
// their state — the gossip fan-out set (dead peers keep receiving
// heartbeats so a rejoin is noticed).
func (t *Tracker) Known() []int {
	t.mu.Lock()
	out := make([]int, 0, len(t.peers))
	for id := range t.peers {
		out = append(out, id)
	}
	t.mu.Unlock()
	sort.Ints(out)
	return out
}

// AlivePeers returns the ids currently in the Alive state, ascending.
func (t *Tracker) AlivePeers() []int {
	t.mu.Lock()
	out := make([]int, 0, len(t.peers))
	for id, p := range t.peers {
		if p.state == Alive {
			out = append(out, id)
		}
	}
	t.mu.Unlock()
	sort.Ints(out)
	return out
}

// Snapshot returns a copy of the full view, sorted by node id.
func (t *Tracker) Snapshot() []Member {
	t.mu.Lock()
	out := make([]Member, 0, len(t.peers))
	for id, p := range t.peers {
		out = append(out, Member{Node: id, State: p.state, LastHeard: p.lastHeard, Failures: p.failures})
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}
