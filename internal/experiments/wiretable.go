package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/netsim"
	"repro/internal/preprocess"
	"repro/internal/sodee"
	"repro/internal/value"
	"repro/internal/workloads"
)

// The wire experiment measures what the migration fast path buys: the
// same job ping-pongs between two nodes with whole-stack return-home
// migrations, once with the wire capabilities forced to zero (every hop a
// self-contained full-state message) and once with delta capture and
// statics streaming on (the default). The first hop of a run is the cold
// cost — it seeds the link's snapshot cache — and every later hop is the
// warm repeat-hop cost the delta path exists to shrink. Both modes run on
// the simulated Gigabit fabric and on real TCP loopback sockets.

// WireRow is one (fabric, mode) cell of the comparison.
type WireRow struct {
	Fabric    string        // "sim" or "tcp"
	Mode      string        // "full" or "delta"
	Trips     int           // migrations measured
	ColdBytes int64         // first hop: cache empty, everything ships
	WarmBytes int64         // median of the repeat hops
	ColdLat   time.Duration // first hop capture→resume latency
	WarmLat   time.Duration // median repeat-hop capture→resume latency
	DeltaHits int64         // units sent as cache references (delta mode)
	Streamed  int64         // migrations whose statics streamed
}

// WireReport is the committed benchmark artifact (BENCH_wire.json).
type WireReport struct {
	Config WireConfig
	Rows   []WireRow
	// WarmReduction is 1 - delta/full warm bytes on the sim fabric — the
	// headline number, and what the regression gate tracks.
	WarmReduction float64
}

// WireConfig sizes the experiment.
type WireConfig struct {
	Trips int   // migrations per (fabric, mode) run (default 12)
	Iters int64 // crunch iterations — must outlive all the hops (default 12M)
	Short bool  // CI smoke scale
}

func (c *WireConfig) defaults() {
	if c.Short && c.Trips <= 0 {
		c.Trips = 6
	}
	if c.Trips <= 2 {
		c.Trips = 12
	}
	if c.Iters <= 0 {
		c.Iters = 12_000_000
		if c.Short {
			c.Iters = 6_000_000
		}
	}
}

// wireTrips runs one (cluster, mode) measurement: start one job on node
// 1, ping-pong it cfg.Trips times, and summarize the per-hop wire bytes
// and capture→resume latency.
func wireTrips(c *sodee.Cluster, fabric, mode string, cfg WireConfig) (WireRow, error) {
	n1, n2 := c.Nodes[1], c.Nodes[2]
	if mode == "full" {
		n1.Mgr.SetWireCaps(0)
		n2.Mgr.SetWireCaps(0)
	}
	// Negotiate capabilities (and liveness) before the first hop; load
	// reports are fire-and-forget, so wait until both sides have heard.
	for deadline := time.Now().Add(5 * time.Second); ; {
		n1.Mgr.PublishLoad()
		n2.Mgr.PublishLoad()
		if len(n1.Mgr.PeerSignals()) > 0 && len(n2.Mgr.PeerSignals()) > 0 {
			break
		}
		if time.Now().After(deadline) {
			return WireRow{}, fmt.Errorf("%s/%s: capability gossip never converged", fabric, mode)
		}
		time.Sleep(time.Millisecond)
	}

	job, err := n1.Mgr.StartJob("Hot.crunch", value.Int(3), value.Int(cfg.Iters))
	if err != nil {
		return WireRow{}, err
	}
	mgrs := map[int]*sodee.Manager{1: n1.Mgr, 2: n2.Mgr}
	var bytesPer []int64
	var lats []time.Duration
	cur := 1
	for trip := 0; trip < cfg.Trips; trip++ {
		m := mgrs[cur]
		// Locate the migratable handle at the job's current host: the
		// origin handle on hop one, the migrated-in wrapper afterwards.
		var hostJob *sodee.Job
		for deadline := time.Now().Add(10 * time.Second); ; {
			if js := m.RunningJobs(); len(js) > 0 {
				hostJob = js[0]
				break
			}
			if job.Done() {
				return WireRow{}, fmt.Errorf("%s/%s: job finished after %d trips; raise -wire-iters", fabric, mode, trip)
			}
			if time.Now().After(deadline) {
				return WireRow{}, fmt.Errorf("%s/%s trip %d: no migratable job on node %d", fabric, mode, trip, cur)
			}
			time.Sleep(200 * time.Microsecond)
		}
		dest := 3 - cur
		mm, err := m.MigrateSOD(hostJob, sodee.SODOptions{
			NFrames: sodee.WholeStack, Dest: dest, Flow: sodee.FlowReturnHome,
		})
		if err != nil {
			return WireRow{}, fmt.Errorf("%s/%s trip %d (%d→%d): %w", fabric, mode, trip, cur, dest, err)
		}
		bytesPer = append(bytesPer, mm.StateBytes+mm.ClassBytes)
		lats = append(lats, mm.Latency)
		cur = dest
	}
	res, err := job.Wait()
	if err != nil {
		return WireRow{}, err
	}
	if want := workloads.HotClassExpected(3, cfg.Iters); res.I != want {
		return WireRow{}, fmt.Errorf("%s/%s: result %d, want %d", fabric, mode, res.I, want)
	}

	row := WireRow{
		Fabric: fabric, Mode: mode, Trips: cfg.Trips,
		ColdBytes: bytesPer[0], ColdLat: lats[0],
		WarmBytes: medianInt64(bytesPer[1:]), WarmLat: medianDur(lats[1:]),
	}
	for _, n := range []*sodee.Node{n1, n2} {
		row.DeltaHits += n.Obs.Counter("sod_delta_hits_total").Value()
		row.Streamed += n.Obs.Counter("sod_streamed_migrations_total").Value()
	}
	return row, nil
}

func medianInt64(xs []int64) int64 {
	s := append([]int64(nil), xs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[len(s)/2]
}

func medianDur(xs []time.Duration) time.Duration {
	s := append([]time.Duration(nil), xs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[len(s)/2]
}

// wireSimCluster builds a fresh two-node simulated cluster.
func wireSimCluster() (*sodee.Cluster, error) {
	prog := preprocess.MustPreprocess(workloads.HotClass(),
		preprocess.Options{Mode: preprocess.ModeFaulting, Restore: true})
	c, err := sodee.NewCluster(prog, netsim.Gigabit,
		sodee.NodeConfig{ID: 1, Preloaded: true},
		sodee.NodeConfig{ID: 2, Preloaded: true},
	)
	if err != nil {
		return nil, err
	}
	workloads.SeedHotClass(c.Nodes[1].VM, c.Prog)
	return c, nil
}

// wireTCPCluster builds a fresh two-node cluster over TCP loopback. The
// returned closer shuts both transports down.
func wireTCPCluster() (*sodee.Cluster, func(), error) {
	prog := preprocess.MustPreprocess(workloads.HotClass(),
		preprocess.Options{Mode: preprocess.ModeFaulting, Restore: true})
	c := sodee.NewTransportCluster(prog)
	tr1, err := netsim.NewTCPTransport(1, "127.0.0.1:0")
	if err != nil {
		return nil, nil, err
	}
	tr2, err := netsim.NewTCPTransport(2, "127.0.0.1:0")
	if err != nil {
		tr1.Close() //nolint:errcheck
		return nil, nil, err
	}
	closer := func() {
		tr1.Close() //nolint:errcheck
		tr2.Close() //nolint:errcheck
	}
	if _, err := tr1.Connect(tr2.Addr()); err != nil {
		closer()
		return nil, nil, err
	}
	n1, err := c.AddNodeOn(sodee.NodeConfig{ID: 1, Preloaded: true}, tr1)
	if err != nil {
		closer()
		return nil, nil, err
	}
	n2, err := c.AddNodeOn(sodee.NodeConfig{ID: 2, Preloaded: true}, tr2)
	if err != nil {
		closer()
		return nil, nil, err
	}
	now := time.Now()
	n1.Members.Join(2, now)
	n2.Members.Join(1, now)
	workloads.SeedHotClass(n1.VM, c.Prog)
	return c, closer, nil
}

// Wire runs the full×delta comparison on both fabrics. Each cell gets a
// fresh cluster so one mode's link caches cannot leak into the other's
// measurement.
func Wire(cfg WireConfig) (*WireReport, error) {
	cfg.defaults()
	rep := &WireReport{Config: cfg}
	for _, mode := range []string{"full", "delta"} {
		sim, err := wireSimCluster()
		if err != nil {
			return nil, err
		}
		row, err := wireTrips(sim, "sim", mode, cfg)
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, row)

		tcp, closeTCP, err := wireTCPCluster()
		if err != nil {
			return nil, err
		}
		row, err = wireTrips(tcp, "tcp", mode, cfg)
		closeTCP()
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, row)
	}
	full, delta := rep.row("sim", "full"), rep.row("sim", "delta")
	if full != nil && delta != nil && full.WarmBytes > 0 {
		rep.WarmReduction = 1 - float64(delta.WarmBytes)/float64(full.WarmBytes)
	}
	// The delta path must earn its keep: warm repeat hops at or above 60%
	// of the full-state cost mean the snapshot cache is not eliding the
	// unchanged units, which is a bug, not a tuning matter.
	if full != nil && delta != nil && delta.WarmBytes*10 >= full.WarmBytes*6 {
		return nil, fmt.Errorf("wire: warm delta hop ships %dB vs %dB full — delta cache ineffective",
			delta.WarmBytes, full.WarmBytes)
	}
	return rep, nil
}

func (r *WireReport) row(fabric, mode string) *WireRow {
	for i := range r.Rows {
		if r.Rows[i].Fabric == fabric && r.Rows[i].Mode == mode {
			return &r.Rows[i]
		}
	}
	return nil
}

// RenderWire formats the comparison table.
func RenderWire(rep *WireReport) string {
	var b strings.Builder
	b.WriteString("\nWire — bytes per migration and capture→resume latency, full vs delta\n")
	b.WriteString("(cold = first hop on an empty link cache; warm = median repeat hop)\n\n")
	fmt.Fprintf(&b, "%-6s %-6s %6s %10s %10s %12s %12s %8s %8s\n",
		"fabric", "mode", "trips", "cold", "warm", "cold lat", "warm lat", "hits", "stream")
	for _, r := range rep.Rows {
		fmt.Fprintf(&b, "%-6s %-6s %6d %9dB %9dB %12s %12s %8d %8d\n",
			r.Fabric, r.Mode, r.Trips, r.ColdBytes, r.WarmBytes,
			r.ColdLat.Round(time.Microsecond), r.WarmLat.Round(time.Microsecond),
			r.DeltaHits, r.Streamed)
	}
	fmt.Fprintf(&b, "\nwarm-hop reduction (sim, delta vs full): %.1f%%\n\n", rep.WarmReduction*100)
	return b.String()
}

// WriteWireJSON writes the report to path (the BENCH_wire.json artifact).
func WriteWireJSON(rep *WireReport, path string) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	return os.WriteFile(path, data, 0o644)
}

// CheckWireRegression compares the report's warm-hop cost against a
// committed baseline: warm delta bytes on the sim fabric may not grow
// more than maxGrow above the baseline, and warm latency gets the same
// bound plus a 5ms absolute floor (scheduler noise on loaded CI runners).
// A missing baseline passes — the first run creates it.
func CheckWireRegression(rep *WireReport, baselinePath string, maxGrow float64) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	var base WireReport
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", baselinePath, err)
	}
	cur, want := rep.row("sim", "delta"), base.row("sim", "delta")
	if cur == nil || want == nil {
		return nil
	}
	if want.WarmBytes > 0 && float64(cur.WarmBytes) > float64(want.WarmBytes)*(1+maxGrow) {
		return fmt.Errorf("wire regression: warm delta hop ships %dB, more than %.0f%% above baseline %dB (%s)",
			cur.WarmBytes, maxGrow*100, want.WarmBytes, baselinePath)
	}
	lat, floor := cur.WarmLat, want.WarmLat
	if floor > 0 && lat > floor+5*time.Millisecond &&
		float64(lat) > float64(floor)*(1+maxGrow) {
		return fmt.Errorf("wire regression: warm capture→resume %s, more than %.0f%% above baseline %s (%s)",
			lat.Round(time.Microsecond), maxGrow*100, floor.Round(time.Microsecond), baselinePath)
	}
	return nil
}
