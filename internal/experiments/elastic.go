package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/netsim"
	"repro/internal/policy"
	"repro/internal/preprocess"
	"repro/internal/sodee"
	"repro/internal/value"
	"repro/internal/workloads"
)

// The elastic experiment measures the adaptive half of Stack-on-Demand:
// a burst of CPU-bound jobs lands on a weak one-core node while three
// strong nodes sit idle, and we compare the batch makespan under (a) no
// migration, (b) the threshold auto-offload policy, (c) the round-robin
// auto-offload baseline, and (d) ideal hand placement. The paper's §II.B
// pitch is exactly (b) beating (a): load spilling from a weak device
// into the cloud without the application lifting a finger.

// ElasticRow is one scheme's outcome on the burst workload.
type ElasticRow struct {
	Scheme     string
	Makespan   time.Duration
	Migrations int
	Correct    bool
}

// ElasticConfig sizes the experiment.
type ElasticConfig struct {
	Jobs  int   // burst size (default 8)
	Iters int64 // crunch iterations per job (default 120k)
	Slow  int   // weak-node spin throttle (default 24)
}

func (c *ElasticConfig) defaults() {
	if c.Jobs <= 0 {
		c.Jobs = 8
	}
	if c.Iters <= 0 {
		c.Iters = 120_000
	}
	if c.Slow <= 0 {
		c.Slow = 24
	}
}

// elasticExpected mirrors the crunch program in Go.
func elasticExpected(seed, iters int64) int64 {
	return workloads.CruncherExpected(seed, iters)
}

// Elastic runs the burst under all four schemes and returns one row per
// scheme, no-migration first.
func Elastic(cfg ElasticConfig) ([]ElasticRow, error) {
	cfg.defaults()
	var rows []ElasticRow

	run := func(scheme string, bal func(c *sodee.Cluster) *sodee.Balancer, placed bool) error {
		c, err := elasticCluster(cfg)
		if err != nil {
			return err
		}
		var b *sodee.Balancer
		if bal != nil {
			b = bal(c)
		}
		makespan, correct, err := elasticBurst(c, cfg, placed)
		migrations := 0
		if b != nil {
			b.Stop()
			migrations = b.Stats().Migrations
		}
		if err != nil {
			return err
		}
		rows = append(rows, ElasticRow{Scheme: scheme, Makespan: makespan, Migrations: migrations, Correct: correct})
		return nil
	}

	if err := run("no migration", nil, false); err != nil {
		return nil, err
	}
	if err := run("auto threshold", func(c *sodee.Cluster) *sodee.Balancer {
		return c.AutoBalance(policy.Threshold{}, sodee.BalanceOptions{Interval: 300 * time.Microsecond})
	}, false); err != nil {
		return nil, err
	}
	if err := run("auto round-robin", func(c *sodee.Cluster) *sodee.Balancer {
		return c.AutoBalance(&policy.RoundRobin{}, sodee.BalanceOptions{Interval: 300 * time.Microsecond})
	}, false); err != nil {
		return nil, err
	}
	if err := run("hand-placed", nil, true); err != nil {
		return nil, err
	}
	return rows, nil
}

// elasticCluster builds the 1-weak + 3-strong cluster running the shared
// cruncher workload (workloads.Cruncher): a CPU-bound masked linear
// recurrence two frames deep.
func elasticCluster(cfg ElasticConfig) (*sodee.Cluster, error) {
	prog := preprocess.MustPreprocess(workloads.Cruncher(),
		preprocess.Options{Mode: preprocess.ModeFaulting, Restore: true})

	return sodee.NewCluster(prog, netsim.Gigabit,
		sodee.NodeConfig{ID: 1, Preloaded: true, Cores: 1, Slow: cfg.Slow},
		sodee.NodeConfig{ID: 2, Preloaded: true, Cores: 2},
		sodee.NodeConfig{ID: 3, Preloaded: true, Cores: 2},
		sodee.NodeConfig{ID: 4, Preloaded: true, Cores: 2},
	)
}

// elasticBurst fires the job burst (all on node 1, or spread across the
// cluster when placed) and waits for every result.
func elasticBurst(c *sodee.Cluster, cfg ElasticConfig, placed bool) (time.Duration, bool, error) {
	nodeIDs := []int{1, 2, 3, 4}
	start := time.Now()
	jobs := make([]*sodee.Job, cfg.Jobs)
	seeds := make([]int64, cfg.Jobs)
	for i := range jobs {
		seeds[i] = int64(1000 + i)
		home := c.Nodes[1]
		if placed && i > 0 {
			// Ideal placement: the weak node keeps one job, the rest
			// spread over the strong nodes.
			home = c.Nodes[nodeIDs[1+(i-1)%(len(nodeIDs)-1)]]
		}
		j, err := home.Mgr.StartJob("main", value.Int(seeds[i]), value.Int(cfg.Iters))
		if err != nil {
			return 0, false, err
		}
		jobs[i] = j
	}
	correct := true
	for i, j := range jobs {
		res, err := j.Wait()
		if err != nil {
			return 0, false, fmt.Errorf("elastic job %d: %w", i, err)
		}
		if res.I != elasticExpected(seeds[i], cfg.Iters) {
			correct = false
		}
	}
	return time.Since(start), correct, nil
}

// RenderElastic formats the elastic rows with speedups over the
// no-migration baseline.
func RenderElastic(rows []ElasticRow) string {
	var b strings.Builder
	b.WriteString("\nElastic offload — burst makespan by scheme\n")
	b.WriteString("(weak 1-core node vs 3 idle strong nodes)\n\n")
	var base time.Duration
	if len(rows) > 0 {
		base = rows[0].Makespan
	}
	fmt.Fprintf(&b, "%-18s %12s %10s %8s %8s\n", "scheme", "makespan", "speedup", "migr", "correct")
	for _, r := range rows {
		speedup := "—"
		if base > 0 && r.Makespan > 0 && r.Scheme != rows[0].Scheme {
			speedup = fmt.Sprintf("%.2fx", float64(base)/float64(r.Makespan))
		}
		fmt.Fprintf(&b, "%-18s %12s %10s %8d %8v\n",
			r.Scheme, r.Makespan.Round(time.Millisecond), speedup, r.Migrations, r.Correct)
	}
	b.WriteString("\n")
	return b.String()
}
