package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/netsim"
	"repro/internal/policy"
	"repro/internal/preprocess"
	"repro/internal/sodee"
	"repro/internal/value"
	"repro/internal/workloads"
)

// The steal experiment measures what the pull half of elasticity buys on
// an idle-heavy cluster. Push policies are tuned conservatively in
// practice (a high watermark avoids migration thrash), which leaves idle
// capacity unclaimed: the loaded node sheds work only down to its
// watermark and grinds through the rest alone. Work stealing attacks the
// same gap from the other side — idle nodes pull — so the combination
// drains the burst regardless of how cautious the push policy is. The
// table compares the burst makespan under push-only and push+steal with
// an identical (conservative) push policy.

// StealRow is one scheme's outcome.
type StealRow struct {
	Scheme     string
	Makespan   time.Duration
	Pushed     int
	Stolen     int
	Rebalanced int
	Correct    bool
}

// StealConfig sizes the experiment.
type StealConfig struct {
	Jobs  int   // burst size (default 8)
	Iters int64 // crunch iterations per job (default 120k)
	Slow  int   // weak-node spin throttle (default 24)
	// HighWater is the push policy's watermark (default 4 — deliberately
	// conservative, so push alone leaves the weak node loaded).
	HighWater int
}

func (c *StealConfig) defaults() {
	if c.Jobs <= 0 {
		c.Jobs = 8
	}
	if c.Iters <= 0 {
		c.Iters = 120_000
	}
	if c.Slow <= 0 {
		c.Slow = 24
	}
	if c.HighWater <= 0 {
		c.HighWater = 4
	}
}

// stealCluster builds the idle-heavy cluster: one weak loaded node,
// three idle strong ones.
func stealCluster(cfg StealConfig) (*sodee.Cluster, error) {
	prog := preprocess.MustPreprocess(workloads.Cruncher(),
		preprocess.Options{Mode: preprocess.ModeFaulting, Restore: true})
	return sodee.NewCluster(prog, netsim.Gigabit,
		sodee.NodeConfig{ID: 1, Preloaded: true, Cores: 1, Slow: cfg.Slow},
		sodee.NodeConfig{ID: 2, Preloaded: true, Cores: 2},
		sodee.NodeConfig{ID: 3, Preloaded: true, Cores: 2},
		sodee.NodeConfig{ID: 4, Preloaded: true, Cores: 2},
	)
}

// stealBurst fires the burst on node 1 and waits for every result.
func stealBurst(c *sodee.Cluster, cfg StealConfig) (time.Duration, bool, error) {
	start := time.Now()
	jobs := make([]*sodee.Job, cfg.Jobs)
	seeds := make([]int64, cfg.Jobs)
	for i := range jobs {
		seeds[i] = int64(2000 + i)
		j, err := c.Nodes[1].Mgr.StartJob("main", value.Int(seeds[i]), value.Int(cfg.Iters))
		if err != nil {
			return 0, false, err
		}
		jobs[i] = j
	}
	correct := true
	for i, j := range jobs {
		res, err := j.Wait()
		if err != nil {
			return 0, false, fmt.Errorf("steal job %d: %w", i, err)
		}
		if res.I != workloads.CruncherExpected(seeds[i], cfg.Iters) {
			correct = false
		}
	}
	return time.Since(start), correct, nil
}

// Steal runs the burst under push-only and push+steal and returns one
// row per scheme, push-only first.
func Steal(cfg StealConfig) ([]StealRow, error) {
	cfg.defaults()
	var rows []StealRow

	run := func(scheme string, steal bool) error {
		c, err := stealCluster(cfg)
		if err != nil {
			return err
		}
		b := c.AutoBalance(policy.Threshold{HighWater: cfg.HighWater}, sodee.BalanceOptions{
			Interval: 300 * time.Microsecond,
			Steal:    steal,
		})
		makespan, correct, err := stealBurst(c, cfg)
		b.Stop()
		if err != nil {
			return err
		}
		st := b.Stats()
		rows = append(rows, StealRow{
			Scheme: scheme, Makespan: makespan,
			Pushed: st.Pushed, Stolen: st.Stolen, Rebalanced: st.Rebalanced,
			Correct: correct,
		})
		return nil
	}

	if err := run("push-only", false); err != nil {
		return nil, err
	}
	if err := run("push+steal", true); err != nil {
		return nil, err
	}
	return rows, nil
}

// RenderSteal formats the comparison with the speedup of push+steal over
// push-only.
func RenderSteal(rows []StealRow) string {
	var b strings.Builder
	b.WriteString("\nWork stealing — burst makespan, push-only vs push+steal\n")
	b.WriteString("(idle-heavy cluster: weak loaded node, 3 idle strong nodes,\n")
	b.WriteString(" conservative push watermark leaves work stranded without steal)\n\n")
	var base time.Duration
	if len(rows) > 0 {
		base = rows[0].Makespan
	}
	fmt.Fprintf(&b, "%-12s %12s %10s %8s %8s %12s %8s\n",
		"scheme", "makespan", "speedup", "pushed", "stolen", "rebalanced", "correct")
	for i, r := range rows {
		speedup := "—"
		if i > 0 && base > 0 && r.Makespan > 0 {
			speedup = fmt.Sprintf("%.2fx", float64(base)/float64(r.Makespan))
		}
		fmt.Fprintf(&b, "%-12s %12s %10s %8d %8d %12d %8v\n",
			r.Scheme, r.Makespan.Round(time.Millisecond), speedup,
			r.Pushed, r.Stolen, r.Rebalanced, r.Correct)
	}
	b.WriteString("\n")
	return b.String()
}
