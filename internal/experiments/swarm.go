package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/daemon"
	"repro/internal/loadgen"
	"repro/internal/workloads"
	"repro/sod"
)

// The swarm benchmark: how much concurrent Submit/Watch/Wait traffic the
// control plane sustains, and whether the curve holds through a node
// crash. Two fabrics run the same loadgen harness — the in-process
// cluster at full swarm scale (a thousand concurrent clients, with a
// mid-load crash and rejoin), and a real 3-daemon TCP cluster at a scale
// that respects socket limits. The report serializes to BENCH_swarm.json
// so CI can track the trajectory and fail on regression.

// SwarmConfig sizes the run.
type SwarmConfig struct {
	// Workers is the in-process fabric's concurrent client count
	// (default 1000; Short: 200).
	Workers int
	// JobsPerWorker is each client's sequential submission count
	// (default 3; Short: 2).
	JobsPerWorker int
	// Iters sizes each job (default 8000 — small on purpose: the swarm
	// measures the control plane, not the interpreter).
	Iters int64
	// Nodes is the in-process cluster size (default 3). The highest node
	// id is the crash target; the others take submissions.
	Nodes int
	// Seed pins the deterministic argument derivation (default 1).
	Seed int64
	// Short shrinks everything for CI smoke runs.
	Short bool
	// SkipTCP drops the TCP-daemon row (the -race stress test uses the
	// in-process fabric only).
	SkipTCP bool
}

func (c *SwarmConfig) defaults() {
	if c.Workers <= 0 {
		if c.Short {
			c.Workers = 200
		} else {
			c.Workers = 1000
		}
	}
	if c.JobsPerWorker <= 0 {
		if c.Short {
			c.JobsPerWorker = 2
		} else {
			c.JobsPerWorker = 3
		}
	}
	if c.Iters <= 0 {
		c.Iters = 8_000
	}
	if c.Nodes < 3 {
		c.Nodes = 3
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// SwarmRow is one fabric's measurements.
type SwarmRow struct {
	Fabric  string          `json:"fabric"` // "inprocess" | "tcp"
	Nodes   int             `json:"nodes"`
	Crashed int             `json:"crashed_node,omitempty"`
	Load    *loadgen.Result `json:"load"`
}

// SwarmReport is the benchmark artifact (BENCH_swarm.json).
type SwarmReport struct {
	Bench         string     `json:"bench"`
	Short         bool       `json:"short"`
	Workers       int        `json:"workers"`
	JobsPerWorker int        `json:"jobs_per_worker"`
	Iters         int64      `json:"iters"`
	Rows          []SwarmRow `json:"rows"`
}

// Swarm runs the benchmark.
func Swarm(cfg SwarmConfig) (*SwarmReport, error) {
	cfg.defaults()
	rep := &SwarmReport{
		Bench:         "swarm",
		Short:         cfg.Short,
		Workers:       cfg.Workers,
		JobsPerWorker: cfg.JobsPerWorker,
		Iters:         cfg.Iters,
	}
	inproc, err := swarmInProcess(cfg)
	if err != nil {
		return nil, fmt.Errorf("swarm inprocess: %w", err)
	}
	rep.Rows = append(rep.Rows, inproc)
	if !cfg.SkipTCP {
		tcp, err := swarmTCP(cfg)
		if err != nil {
			return nil, fmt.Errorf("swarm tcp: %w", err)
		}
		rep.Rows = append(rep.Rows, tcp)
	}
	return rep, nil
}

// swarmInProcess is the full-scale run: Nodes nodes on the simulated
// gigabit fabric, submissions spread over every node except the crash
// target, which is killed mid-load and rejoined half a second later.
func swarmInProcess(cfg SwarmConfig) (SwarmRow, error) {
	prog, err := daemon.BuildWorkload("cruncher")
	if err != nil {
		return SwarmRow{}, err
	}
	nodes := make([]sod.Node, cfg.Nodes)
	for i := range nodes {
		nodes[i] = sod.Node{ID: i + 1}
	}
	cluster, err := sod.NewCluster(prog, sod.Gigabit, nodes...)
	if err != nil {
		return SwarmRow{}, err
	}
	for i := range nodes {
		workloads.BindCommon(cluster.On(i + 1).VM())
	}
	bal := cluster.AutoBalance(sod.ThresholdPolicy(0, 0),
		sod.BalanceOptions{Interval: 2 * time.Millisecond, Steal: true})
	defer bal.Stop()

	crashNode := cfg.Nodes
	clients := make([]sod.Client, 0, cfg.Nodes-1)
	for id := 1; id < cfg.Nodes; id++ {
		cl, cerr := cluster.ClientOn(id)
		if cerr != nil {
			return SwarmRow{}, cerr
		}
		clients = append(clients, cl)
	}
	totalJobs := cfg.Workers * cfg.JobsPerWorker
	res, err := loadgen.Run(loadgen.Config{
		Workers:       cfg.Workers,
		JobsPerWorker: cfg.JobsPerWorker,
		Iters:         cfg.Iters,
		Seed:          cfg.Seed,
		Watch:         true,
		Crash:         func() { cluster.Network().SetNodeDown(crashNode, true) },
		CrashAfter:    totalJobs * 2 / 5,
		Rejoin:        func() { cluster.Network().SetNodeDown(crashNode, false) },
		RejoinAfter:   500 * time.Millisecond,
	}, clients, clients[0])
	if err != nil {
		return SwarmRow{}, err
	}
	return SwarmRow{Fabric: "inprocess", Nodes: cfg.Nodes, Crashed: crashNode, Load: res}, nil
}

// swarmTCP runs the same harness against three real daemons over TCP
// loopback. Worker goroutines share a pool of dialed control
// connections (sockets are the scarce resource, not clients), and no
// crash is injected — a stopped daemon never rejoins, so the
// exactly-once accounting would have nothing to converge to.
func swarmTCP(cfg SwarmConfig) (SwarmRow, error) {
	workers := cfg.Workers
	if workers > 128 {
		workers = 128
	}
	mk := func(id int) (*daemon.Daemon, error) {
		return daemon.New(daemon.Config{
			ID: id, Policy: "threshold", Steal: true,
			Interval: 2 * time.Millisecond,
		})
	}
	d1, err := mk(1)
	if err != nil {
		return SwarmRow{}, err
	}
	defer d1.Stop()
	d2, err := mk(2)
	if err != nil {
		return SwarmRow{}, err
	}
	defer d2.Stop()
	d3, err := mk(3)
	if err != nil {
		return SwarmRow{}, err
	}
	defer d3.Stop()
	if err := d2.Join(d1.Addr()); err != nil {
		return SwarmRow{}, err
	}
	if err := d3.Join(d1.Addr()); err != nil {
		return SwarmRow{}, err
	}
	addrs := []string{d1.Addr(), d2.Addr(), d3.Addr()}
	const pool = 12
	clients := make([]sod.Client, 0, pool)
	for i := 0; i < pool; i++ {
		cl, cerr := sod.Dial(addrs[i%len(addrs)])
		if cerr != nil {
			return SwarmRow{}, cerr
		}
		defer cl.Close() //nolint:errcheck
		clients = append(clients, cl)
	}
	res, err := loadgen.Run(loadgen.Config{
		Workers:       workers,
		JobsPerWorker: cfg.JobsPerWorker,
		Iters:         cfg.Iters,
		Seed:          cfg.Seed + 1,
		Watch:         true,
	}, clients, clients[0])
	if err != nil {
		return SwarmRow{}, err
	}
	return SwarmRow{Fabric: "tcp", Nodes: 3, Load: res}, nil
}

// RenderSwarm formats the report as the human-readable table sodbench
// prints.
func RenderSwarm(rep *SwarmReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "\nSwarm: %d clients x %d jobs (iters %d)\n",
		rep.Workers, rep.JobsPerWorker, rep.Iters)
	fmt.Fprintf(&b, "%-10s %6s %9s %11s %9s %9s %9s %8s %7s\n",
		"fabric", "nodes", "jobs/s", "events/s", "p50 ms", "p99 ms", "max ms", "lagged", "dirty")
	for _, row := range rep.Rows {
		l := row.Load
		dirty := l.WrongResults + l.DupTerminals + l.MissingTerminals + l.Failed
		fmt.Fprintf(&b, "%-10s %6d %9.0f %11.0f %9.1f %9.1f %9.1f %8d %7d\n",
			row.Fabric, row.Nodes, l.JobsPerSec, l.EventsPerSec,
			l.Latency.P50, l.Latency.P99, l.Latency.Max, l.LaggedMarkers, dirty)
		if row.Crashed != 0 {
			fmt.Fprintf(&b, "  node %d crashed at %.2fs, rejoined at %.2fs; curve:\n",
				row.Crashed, l.CrashAtSec, l.RejoinAtSec)
			for _, p := range l.Curve {
				mark := ""
				if p.Crash {
					mark = "  <- crash"
				}
				if p.Rejoin {
					mark += "  <- rejoin"
				}
				fmt.Fprintf(&b, "    %6.2fs %8.0f jobs/s %10.0f events/s%s\n",
					p.TSec, p.JobsPerSec, p.EventsPerSec, mark)
			}
		}
	}
	return b.String()
}

// WriteSwarmJSON writes the report to path (the BENCH_swarm.json
// artifact).
func WriteSwarmJSON(rep *SwarmReport, path string) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	return os.WriteFile(path, data, 0o644)
}

// CheckSwarmRegression compares the in-process row's sustained jobs/sec
// against a committed baseline report and errors when it dropped by more
// than maxDrop (a fraction: 0.3 = 30%). A missing baseline passes — the
// first run creates it.
func CheckSwarmRegression(rep *SwarmReport, baselinePath string, maxDrop float64) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	var base SwarmReport
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", baselinePath, err)
	}
	cur := swarmInprocRate(rep)
	want := swarmInprocRate(&base)
	if cur == 0 || want == 0 {
		return nil
	}
	if cur < want*(1-maxDrop) {
		return fmt.Errorf("swarm regression: in-process jobs/sec %.0f is more than %.0f%% below baseline %.0f (%s)",
			cur, maxDrop*100, want, baselinePath)
	}
	return nil
}

func swarmInprocRate(rep *SwarmReport) float64 {
	for _, row := range rep.Rows {
		if row.Fabric == "inprocess" && row.Load != nil {
			return row.Load.JobsPerSec
		}
	}
	return 0
}
