package experiments

import (
	"strings"
	"testing"
)

// TestElasticSmall: every scheme computes correct results and the
// adaptive threshold policy actually migrates work off the weak node.
func TestElasticSmall(t *testing.T) {
	rows, err := Elastic(ElasticConfig{Jobs: 4, Iters: 40_000})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	byScheme := map[string]ElasticRow{}
	for _, r := range rows {
		if !r.Correct {
			t.Errorf("%s produced wrong results", r.Scheme)
		}
		byScheme[r.Scheme] = r
	}
	if byScheme["auto threshold"].Migrations == 0 {
		t.Error("threshold policy never migrated off the weak node")
	}
	if byScheme["no migration"].Migrations != 0 || byScheme["hand-placed"].Migrations != 0 {
		t.Error("static schemes must not migrate")
	}
	out := RenderElastic(rows)
	if !strings.Contains(out, "auto threshold") || !strings.Contains(out, "speedup") {
		t.Errorf("render missing fields:\n%s", out)
	}
}

// TestElasticThresholdBeatsNoMigration is the acceptance shape: on the
// full burst, spilling load off the weak node must be measurably faster
// than computing everything there. The margin is generous (1.5× where
// the typical run shows 3-4×) to stay robust on loaded CI hardware.
func TestElasticThresholdBeatsNoMigration(t *testing.T) {
	if testing.Short() {
		t.Skip("elastic comparison is seconds-long; skipping in short mode")
	}
	rows, err := Elastic(ElasticConfig{})
	if err != nil {
		t.Fatal(err)
	}
	byScheme := map[string]ElasticRow{}
	for _, r := range rows {
		byScheme[r.Scheme] = r
		if !r.Correct {
			t.Fatalf("%s produced wrong results", r.Scheme)
		}
	}
	base := byScheme["no migration"].Makespan
	auto := byScheme["auto threshold"].Makespan
	if base == 0 || auto == 0 {
		t.Fatalf("missing rows: %+v", rows)
	}
	if float64(base) < 1.5*float64(auto) {
		t.Errorf("threshold makespan %v not measurably faster than no-migration %v", auto, base)
	}
}
