package experiments

import (
	"testing"
)

// TestSwarmStressExactlyOnce is the swarm benchmark as a correctness
// gate: a thousand concurrent clients on the 3-node in-process fabric,
// a node killed mid-load and rejoined, and every invariant the harness
// tracks held to zero — right results, exactly one terminal event per
// watched job, no stream delivering past its terminal. Run under -race
// this is the acceptance check for the whole fan-out path: sharded job
// tables, ring-buffered subscriptions, coalescing, and crash recovery.
func TestSwarmStressExactlyOnce(t *testing.T) {
	cfg := SwarmConfig{SkipTCP: true, Iters: 2_000, JobsPerWorker: 2}
	if testing.Short() {
		cfg.Workers = 150
	}
	rep, err := Swarm(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 1 || rep.Rows[0].Fabric != "inprocess" {
		t.Fatalf("rows = %+v, want one inprocess row", rep.Rows)
	}
	l := rep.Rows[0].Load
	t.Logf("swarm: %d workers, %.0f jobs/s, %.0f events/s, p99 %.1fms, lagged %d (coalesced %d), crash %.2fs rejoin %.2fs",
		rep.Workers, l.JobsPerSec, l.EventsPerSec, l.Latency.P99,
		l.LaggedMarkers, l.CoalescedEvents, l.CrashAtSec, l.RejoinAtSec)

	if l.Failed != 0 {
		t.Errorf("%d jobs failed (submit/wait errors)", l.Failed)
	}
	if l.WrongResults != 0 {
		t.Errorf("%d jobs returned wrong results", l.WrongResults)
	}
	if l.DupTerminals != 0 {
		t.Errorf("%d jobs delivered a terminal event more than once (or past it)", l.DupTerminals)
	}
	if l.MissingTerminals != 0 {
		t.Errorf("%d watched jobs never delivered a terminal event", l.MissingTerminals)
	}
	if l.CrashAtSec == 0 {
		t.Error("crash never fired: the run ended before reaching the trigger count")
	}
	if l.WatchEvents == 0 || l.AllEvents == 0 {
		t.Errorf("observers saw nothing: watch=%d all=%d", l.WatchEvents, l.AllEvents)
	}

	// The load curve holds through the crash: some bucket at or after the
	// crash point still completes jobs (the swarm keeps running on the
	// surviving nodes while the detector reroutes around the corpse).
	if l.CrashAtSec > 0 {
		held := false
		for _, p := range l.Curve {
			if p.TSec > l.CrashAtSec && p.JobsPerSec > 0 {
				held = true
				break
			}
		}
		if !held {
			t.Errorf("no completions after the crash at %.2fs; curve = %+v", l.CrashAtSec, l.Curve)
		}
	}
}
