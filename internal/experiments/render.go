package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/sodee"
)

// ms renders a duration as milliseconds with two decimals.
func ms(d time.Duration) string {
	return fmt.Sprintf("%.2f", float64(d.Microseconds())/1000)
}

// sec renders a duration as seconds with three decimals.
func sec(d time.Duration) string {
	return fmt.Sprintf("%.3f", d.Seconds())
}

// RenderTable1 formats Table I in the paper's layout.
func RenderTable1(rows []Table1Row) string {
	var b strings.Builder
	b.WriteString("TABLE I: PROGRAM CHARACTERISTICS (sizes scaled; paper n in brackets)\n")
	fmt.Fprintf(&b, "%-5s %-50s %10s %4s %12s\n", "App", "Description", "n (paper)", "h", "F (bytes)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-5s %-50s %5d (%3d) %4d %12d\n", r.App, r.Descr, r.N, r.PaperN, r.H, r.F)
	}
	return b.String()
}

// RenderTable2 formats Table II.
func RenderTable2(rows []Table2Row) string {
	var b strings.Builder
	b.WriteString("TABLE II: EXECUTION TIME TAKEN ON DIFFERENT SYSTEMS (seconds)\n")
	fmt.Fprintf(&b, "%-5s %8s |", "App", "JDK")
	for _, sys := range AllSystems {
		fmt.Fprintf(&b, " %9s: %8s %8s |", sys, "no mig", "mig")
	}
	b.WriteString("\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-5s %8s |", r.App, sec(r.JDK))
		for _, sys := range AllSystems {
			c := r.Cells[sys]
			fmt.Fprintf(&b, " %9s: %8s %8s |", "", sec(c.NoMig), sec(c.Mig))
		}
		fmt.Fprintf(&b, "  C0=%.2f%% C1=%.2f%%\n", r.C0, r.C1)
	}
	return b.String()
}

// RenderTable3 formats Table III.
func RenderTable3(rows []Table3Row) string {
	var b strings.Builder
	b.WriteString("TABLE III: MIGRATION OVERHEAD OF DIFFERENT SYSTEMS (ms, % of no-mig time)\n")
	fmt.Fprintf(&b, "%-5s", "App")
	for _, sys := range AllSystems {
		fmt.Fprintf(&b, " %22s", sys)
	}
	b.WriteString("\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-5s", r.App)
		for _, sys := range AllSystems {
			fmt.Fprintf(&b, " %12s (%6.2f%%)", ms(r.Overhead[sys]), r.Percent[sys])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// RenderTable4 formats Table IV.
func RenderTable4(rows []Table4Row) string {
	var b strings.Builder
	b.WriteString("TABLE IV: MIGRATION LATENCY IN DIFFERENT SYSTEMS (ms: capture / transfer / restore = total)\n")
	systems := []sodee.System{sodee.SysSODEE, sodee.SysGJavaMPI, sodee.SysJessica2}
	fmt.Fprintf(&b, "%-5s", "App")
	for _, sys := range systems {
		fmt.Fprintf(&b, " %34s", sys)
	}
	b.WriteString("\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-5s", r.App)
		for _, sys := range systems {
			m := r.Parts[sys]
			fmt.Fprintf(&b, "   %7s /%8s /%7s =%8s",
				ms(m.Capture), ms(m.Transfer), ms(m.Restore), ms(m.Latency))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// RenderTable5 formats Table V.
func RenderTable5(rows []Table5Row) string {
	var b strings.Builder
	b.WriteString("TABLE V: COMPARISON OF OBJECT FAULTING METHODS (ns per access)\n")
	fmt.Fprintf(&b, "%-13s %10s %10s %10s %12s %12s\n",
		"Access Type", "Original", "Faulting", "Checking", "Fault slow%", "Check slow%")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-13s %10.2f %10.2f %10.2f %11.2f%% %11.2f%%\n",
			r.Access, r.OriginalNs, r.FaultingNs, r.CheckingNs, r.FaultSlowdown, r.CheckSlowdown)
	}
	return b.String()
}

// RenderTable6 formats Table VI.
func RenderTable6(rows []Table6Row) string {
	var b strings.Builder
	b.WriteString("TABLE VI: PERFORMANCE GAIN ON MIGRATION SYSTEMS (NFS text search)\n")
	fmt.Fprintf(&b, "%-10s %12s %12s %14s %10s\n", "System", "no mig (s)", "mig (s)", "on server (s)", "gain")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10v %12s %12s %14s %9.2f%%\n", r.System, sec(r.NoMig), sec(r.Mig), sec(r.OnServer), r.Gain)
	}
	return b.String()
}

// RenderRoaming formats the §IV.C roaming result.
func RenderRoaming(r *RoamResult) string {
	return fmt.Sprintf("ROAMING (§IV.C): %d servers, %d migrations: no-mig %s s -> roaming %s s, speedup %.2fx\n",
		r.Servers, r.Migrations, sec(r.NoMig), sec(r.Roaming), r.Speedup)
}

// RenderTable7 formats Table VII.
func RenderTable7(rows []Table7Row) string {
	var b strings.Builder
	b.WriteString("TABLE VII: MIGRATION LATENCY VS AVAILABLE BANDWIDTH (device offload, ms)\n")
	fmt.Fprintf(&b, "%-10s %10s %12s %12s %10s %12s\n",
		"kbps", "capture", "t2 (state)", "t3 (class)", "restore", "latency")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10d %10s %12s %12s %10s %12s\n",
			r.BandwidthKbps, ms(r.Capture), ms(r.TransferState), ms(r.TransferClass), ms(r.Restore), ms(r.Latency))
	}
	return b.String()
}

// RenderFig5 formats the code-size comparison.
func RenderFig5(f Fig5Sizes) string {
	return fmt.Sprintf("FIG 5: CODE SIZE of %s: original %d B, status checks %d B, fault handlers %d B (+%.0f%% over checks)\n",
		f.Method, f.Original, f.Checking, f.Faulting,
		float64(f.Faulting-f.Checking)/float64(f.Checking)*100)
}
