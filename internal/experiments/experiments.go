// Package experiments reproduces every table and figure of the paper's
// evaluation (§IV). Each driver builds the cluster(s) its experiment
// needs, runs the workload(s) with and without migration, and returns
// structured rows; bench_test.go and cmd/sodbench render them.
//
// Absolute durations differ from the paper (interpreter vs 2009 JIT,
// scaled problem and data sizes — see EXPERIMENTS.md), but the comparative
// shapes — which system wins where, by roughly what factor — are the
// reproduction targets.
package experiments

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/bytecode"
	"repro/internal/netsim"
	"repro/internal/preprocess"
	"repro/internal/sodee"
	"repro/internal/value"
	"repro/internal/vm"
	"repro/internal/workloads"
)

// progFor preprocesses a workload for a system, mirroring what each
// paper system's toolchain does to application code.
func progFor(sys sodee.System, w *workloads.Workload) *bytecode.Program {
	switch sys {
	case sodee.SysSODEE, sodee.SysDevice:
		return preprocess.MustPreprocess(w.Prog, preprocess.Options{Mode: preprocess.ModeFaulting, Restore: true})
	case sodee.SysGJavaMPI:
		return preprocess.MustPreprocess(w.Prog, preprocess.Options{Mode: preprocess.ModeNone, Restore: true})
	case sodee.SysJessica2:
		return preprocess.MustPreprocess(w.Prog, preprocess.Options{Mode: preprocess.ModeStatusCheck, Restore: false})
	default: // JDK, Xen run the original code
		return w.Prog
	}
}

// checkpointGate blocks the workload at its wl_checkpoint and hands
// control to the driver, which aligns migration with the compute phase.
type checkpointGate struct {
	mu      sync.Mutex
	reached chan struct{}
	release chan struct{}
	armed   bool
}

func newCheckpointGate(armed bool) *checkpointGate {
	return &checkpointGate{
		reached: make(chan struct{}, 16),
		release: make(chan struct{}, 16),
		armed:   armed,
	}
}

func (g *checkpointGate) native(t *vm.Thread, args []value.Value) (value.Value, *vm.Raised) {
	g.mu.Lock()
	armed := g.armed
	g.mu.Unlock()
	if armed {
		g.reached <- struct{}{}
		<-g.release
	}
	return value.Value{}, nil
}

func (g *checkpointGate) disarm() {
	g.mu.Lock()
	g.armed = false
	g.mu.Unlock()
}

// KernelRun is the outcome of one measured kernel execution.
type KernelRun struct {
	System   sodee.System
	Migrated bool
	Elapsed  time.Duration
	Result   value.Value
	Metrics  sodee.MigrationMetrics
}

// migrator issues the system's migration primitive during a gated run.
type migrator func(mgr *sodee.Manager, job *sodee.Job, w *workloads.Workload) (*sodee.MigrationMetrics, error)

func migratorFor(sys sodee.System) migrator {
	switch sys {
	case sodee.SysSODEE:
		return func(mgr *sodee.Manager, job *sodee.Job, w *workloads.Workload) (*sodee.MigrationMetrics, error) {
			return mgr.MigrateSOD(job, sodee.SODOptions{
				NFrames: w.MigrateFrames, Dest: 2, Flow: sodee.FlowReturnHome,
			})
		}
	case sodee.SysGJavaMPI:
		return func(mgr *sodee.Manager, job *sodee.Job, w *workloads.Workload) (*sodee.MigrationMetrics, error) {
			return mgr.MigrateProcess(job, 2)
		}
	case sodee.SysJessica2:
		return func(mgr *sodee.Manager, job *sodee.Job, w *workloads.Workload) (*sodee.MigrationMetrics, error) {
			return mgr.MigrateThread(job, 2)
		}
	case sodee.SysXen:
		return func(mgr *sodee.Manager, job *sodee.Job, w *workloads.Workload) (*sodee.MigrationMetrics, error) {
			return mgr.MigrateVM(job, sodee.VMMigrateOptions{Dest: 2})
		}
	}
	return nil
}

// RunKernel executes workload w once on a two-node cluster of the given
// system, optionally migrating once at the workload's checkpoint.
func RunKernel(sys sodee.System, w *workloads.Workload, n int64, migrate bool) (*KernelRun, error) {
	prog := progFor(sys, w)
	cluster, err := sodee.NewCluster(prog, netsim.Gigabit,
		sodee.NodeConfig{ID: 1, System: sys, Preloaded: true, ImageBytes: 16 << 20},
		sodee.NodeConfig{ID: 2, System: sys, Preloaded: sys != sodee.SysSODEE, ImageBytes: 16 << 20},
	)
	if err != nil {
		return nil, err
	}
	gate := newCheckpointGate(migrate)
	for _, node := range cluster.Nodes {
		workloads.BindCommon(node.VM)
		node.VM.BindNativeIfDeclared(workloads.CheckpointNative, gate.native)
	}
	home := cluster.Nodes[1]

	start := time.Now()
	job, err := home.Mgr.StartJob(w.Entry, w.Args(n)...)
	if err != nil {
		return nil, err
	}

	var mm *sodee.MigrationMetrics
	if migrate {
		mig := migratorFor(sys)
		if mig == nil {
			return nil, fmt.Errorf("experiments: system %v has no migration primitive", sys)
		}
		<-gate.reached
		gate.disarm()
		done := make(chan error, 1)
		go func() {
			var merr error
			mm, merr = mig(home.Mgr, job, w)
			done <- merr
		}()
		if sys != sodee.SysXen {
			// Give the suspend request a moment to land before the thread
			// leaves the checkpoint (Xen migrates live; no ordering needed).
			time.Sleep(time.Millisecond)
		}
		gate.release <- struct{}{}
		if merr := <-done; merr != nil {
			return nil, merr
		}
	}

	res, err := job.Wait()
	if err != nil {
		return nil, err
	}
	kr := &KernelRun{System: sys, Migrated: migrate, Elapsed: time.Since(start), Result: res}
	if mm != nil {
		kr.Metrics = *mm
	}
	return kr, nil
}

// RunJDKReference runs the original (unpreprocessed) program on a bare VM
// with no agent — the paper's "JDK" column.
func RunJDKReference(w *workloads.Workload, n int64) (*KernelRun, error) {
	v := vm.New(w.Prog, 1, true)
	workloads.BindCommon(v)
	start := time.Now()
	res, err := v.RunMain(w.Prog.MethodByName(w.Entry), w.Args(n)...)
	if err != nil {
		return nil, err
	}
	return &KernelRun{System: sodee.SysJDK, Elapsed: time.Since(start), Result: res}, nil
}

// AllSystems lists the comparison systems in paper order.
var AllSystems = []sodee.System{sodee.SysSODEE, sodee.SysGJavaMPI, sodee.SysJessica2, sodee.SysXen}
