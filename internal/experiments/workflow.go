package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/netsim"
	"repro/internal/policy"
	"repro/internal/preprocess"
	"repro/internal/sodee"
	"repro/internal/value"
	"repro/internal/workloads"
)

// The workflow experiment measures what policy-driven FlowForward chains
// buy on a WAN-shaped cluster. The workload is the three-stage pipeline
// (main → stage1 → stage2); the cluster is a weak submit node and two
// strong peers joined by slow, high-latency links. Under return-home
// balancing, every stage boundary crosses the slow link twice (segment
// out, result back) and the residual stages execute on the weak origin.
// Under forward chains, the planner plants each residual on a strong
// node ahead of execution, so a stage boundary crosses the wire once,
// the restore overlaps the stage above (the paper's hidden freeze time,
// §II.A), and no stage ever runs on the weak node.

// WorkflowRow is one scheme's outcome.
type WorkflowRow struct {
	Scheme        string
	Makespan      time.Duration
	Pushed        int
	Chained       int
	ChainSegments int
	Correct       bool
}

// WorkflowConfig sizes the experiment.
type WorkflowConfig struct {
	Jobs  int   // burst size (default 6)
	Iters int64 // stage2 iterations per job (default 300k)
	// LatencyMs shapes the WAN links (one-way, default 8ms).
	LatencyMs int
}

func (c *WorkflowConfig) defaults() {
	if c.Jobs <= 0 {
		c.Jobs = 6
	}
	if c.Iters <= 0 {
		c.Iters = 300_000
	}
	if c.LatencyMs <= 0 {
		c.LatencyMs = 8
	}
}

// workflowCluster builds the WAN-shaped cluster: a weak submit node and
// two strong peers behind slow links.
func workflowCluster(cfg WorkflowConfig) (*sodee.Cluster, error) {
	prog := preprocess.MustPreprocess(workloads.Workflow(),
		preprocess.Options{Mode: preprocess.ModeFaulting, Restore: true})
	wan := netsim.LinkSpec{
		BandwidthBps: 50_000_000,
		Latency:      time.Duration(cfg.LatencyMs) * time.Millisecond,
	}
	return sodee.NewCluster(prog, wan,
		sodee.NodeConfig{ID: 1, Preloaded: true, Cores: 1, Slow: 16},
		sodee.NodeConfig{ID: 2, Preloaded: true},
		sodee.NodeConfig{ID: 3, Preloaded: true},
	)
}

// workflowBurst fires the burst on node 1 and waits for every result.
func workflowBurst(c *sodee.Cluster, cfg WorkflowConfig) (time.Duration, bool, error) {
	start := time.Now()
	jobs := make([]*sodee.Job, cfg.Jobs)
	seeds := make([]int64, cfg.Jobs)
	for i := range jobs {
		seeds[i] = int64(3000 + i)
		j, err := c.Nodes[1].Mgr.StartJob("main", value.Int(seeds[i]), value.Int(cfg.Iters))
		if err != nil {
			return 0, false, err
		}
		jobs[i] = j
	}
	correct := true
	for i, j := range jobs {
		res, err := j.Wait()
		if err != nil {
			return 0, false, fmt.Errorf("workflow job %d: %w", i, err)
		}
		if res.I != workloads.WorkflowExpected(seeds[i], cfg.Iters) {
			correct = false
		}
	}
	return time.Since(start), correct, nil
}

// Workflow runs the burst under three schemes — no migration, per-stage
// return-home balancing, and planner-driven forward chains — and returns
// one row per scheme in that order.
func Workflow(cfg WorkflowConfig) ([]WorkflowRow, error) {
	cfg.defaults()
	var rows []WorkflowRow

	run := func(scheme string, balance func(c *sodee.Cluster) *sodee.Balancer) error {
		c, err := workflowCluster(cfg)
		if err != nil {
			return err
		}
		var b *sodee.Balancer
		if balance != nil {
			b = balance(c)
		}
		makespan, correct, err := workflowBurst(c, cfg)
		var st sodee.BalanceStats
		if b != nil {
			b.Stop()
			st = b.Stats()
		}
		if err != nil {
			return err
		}
		rows = append(rows, WorkflowRow{
			Scheme: scheme, Makespan: makespan,
			Pushed: st.Pushed, Chained: st.Chained, ChainSegments: st.ChainSegments,
			Correct: correct,
		})
		return nil
	}

	if err := run("no-migration", nil); err != nil {
		return nil, err
	}
	if err := run("return-home", func(c *sodee.Cluster) *sodee.Balancer {
		// Per-stage offload, results bouncing through the origin: the top
		// frame migrates whenever the threshold fires, its value returns
		// home, and the next stage resumes on the weak node until the
		// policy pushes it out again.
		return c.AutoBalance(policy.Threshold{}, sodee.BalanceOptions{
			Interval: time.Millisecond,
			Frames:   1,
			Flow:     sodee.FlowReturnHome,
		})
	}); err != nil {
		return nil, err
	}
	if err := run("forward-chain", func(c *sodee.Cluster) *sodee.Balancer {
		return c.AutoBalance(policy.Never{}, sodee.BalanceOptions{
			Interval: time.Millisecond,
			Chain:    true,
			ChainAll: true,
		})
	}); err != nil {
		return nil, err
	}
	return rows, nil
}

// RenderWorkflow formats the comparison with each scheme's speedup over
// the no-migration baseline.
func RenderWorkflow(rows []WorkflowRow) string {
	var b strings.Builder
	b.WriteString("\nWorkflow chains — burst makespan on a WAN-shaped cluster\n")
	b.WriteString("(weak submit node, 2 strong peers, slow high-latency links;\n")
	b.WriteString(" return-home crosses the WAN twice per stage and resumes residuals\n")
	b.WriteString(" on the weak node; forward chains plant residuals ahead on strong\n")
	b.WriteString(" nodes and forward each value exactly once)\n\n")
	var base time.Duration
	if len(rows) > 0 {
		base = rows[0].Makespan
	}
	fmt.Fprintf(&b, "%-14s %12s %10s %8s %8s %10s %8s\n",
		"scheme", "makespan", "speedup", "pushed", "chained", "segments", "correct")
	for i, r := range rows {
		speedup := "—"
		if i > 0 && base > 0 && r.Makespan > 0 {
			speedup = fmt.Sprintf("%.2fx", float64(base)/float64(r.Makespan))
		}
		fmt.Fprintf(&b, "%-14s %12s %10s %8d %8d %10d %8v\n",
			r.Scheme, r.Makespan.Round(time.Millisecond), speedup,
			r.Pushed, r.Chained, r.ChainSegments, r.Correct)
	}
	b.WriteString("\n")
	return b.String()
}
