package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/netsim"
	"repro/internal/preprocess"
	"repro/internal/sodee"
	"repro/internal/value"
	"repro/internal/workloads"
)

// The transport experiment tracks what the real wire costs: the same
// whole-stack SOD migration round trip is timed over the simulated
// Gigabit fabric and over real TCP loopback sockets, so the transport
// overhead (kernel socket path, framing, goroutine wakeups versus the
// model's shaped latency) stays visible in the perf trajectory as the
// runtime grows.

// TransportRow is one fabric's migration cost summary.
type TransportRow struct {
	Fabric     string
	Trips      int
	Median     time.Duration // median end-to-end migration latency
	P90        time.Duration
	Transfer   time.Duration // median wire time (capture/restore excluded)
	StateBytes int64         // per-migration payload
	PerSec     float64       // sequential migration round trips per second
}

// TransportConfig sizes the experiment.
type TransportConfig struct {
	Trips int   // migration round trips per fabric (default 12)
	Iters int64 // cruncher iterations per job — must outlive the migration (default 400k)
}

func (c *TransportConfig) defaults() {
	if c.Trips <= 0 {
		c.Trips = 12
	}
	if c.Iters <= 0 {
		c.Iters = 400_000
	}
}

// transportTrips runs cfg.Trips sequential whole-stack migrations on a
// two-node cluster and summarizes their metrics.
func transportTrips(c *sodee.Cluster, fabric string, cfg TransportConfig) (TransportRow, error) {
	home := c.Nodes[1]
	var latencies, transfers []time.Duration
	var stateBytes int64
	start := time.Now()
	for trip := 0; trip < cfg.Trips; trip++ {
		job, err := home.Mgr.StartJob("main", value.Int(int64(trip)), value.Int(cfg.Iters))
		if err != nil {
			return TransportRow{}, err
		}
		mm, err := home.Mgr.MigrateSOD(job, sodee.SODOptions{
			NFrames: sodee.WholeStack, Dest: 2, Flow: sodee.FlowReturnHome,
		})
		if err != nil {
			return TransportRow{}, fmt.Errorf("%s trip %d: %w", fabric, trip, err)
		}
		if _, err := job.Wait(); err != nil {
			return TransportRow{}, err
		}
		latencies = append(latencies, mm.Latency)
		transfers = append(transfers, mm.Transfer)
		stateBytes += mm.StateBytes
	}
	elapsed := time.Since(start)
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	sort.Slice(transfers, func(i, j int) bool { return transfers[i] < transfers[j] })
	row := TransportRow{
		Fabric:     fabric,
		Trips:      cfg.Trips,
		Median:     latencies[len(latencies)/2],
		P90:        latencies[len(latencies)*9/10],
		Transfer:   transfers[len(transfers)/2],
		StateBytes: stateBytes / int64(cfg.Trips),
	}
	if elapsed > 0 {
		row.PerSec = float64(cfg.Trips) / elapsed.Seconds()
	}
	return row, nil
}

// Transport measures migration latency/throughput over the simulated
// fabric and over TCP loopback.
func Transport(cfg TransportConfig) ([]TransportRow, error) {
	cfg.defaults()
	prog := preprocess.MustPreprocess(workloads.Cruncher(),
		preprocess.Options{Mode: preprocess.ModeFaulting, Restore: true})

	var rows []TransportRow

	// Simulated Gigabit fabric (the paper's cluster interconnect).
	sim, err := sodee.NewCluster(prog, netsim.Gigabit,
		sodee.NodeConfig{ID: 1, Preloaded: true},
		sodee.NodeConfig{ID: 2, Preloaded: true},
	)
	if err != nil {
		return nil, err
	}
	simRow, err := transportTrips(sim, "netsim gigabit", cfg)
	if err != nil {
		return nil, err
	}
	rows = append(rows, simRow)

	// Real TCP loopback sockets.
	tcp := sodee.NewTransportCluster(prog)
	tr1, err := netsim.NewTCPTransport(1, "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer tr1.Close() //nolint:errcheck
	tr2, err := netsim.NewTCPTransport(2, "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer tr2.Close() //nolint:errcheck
	if _, err := tr1.Connect(tr2.Addr()); err != nil {
		return nil, err
	}
	n1, err := tcp.AddNodeOn(sodee.NodeConfig{ID: 1, Preloaded: true}, tr1)
	if err != nil {
		return nil, err
	}
	n2, err := tcp.AddNodeOn(sodee.NodeConfig{ID: 2, Preloaded: true}, tr2)
	if err != nil {
		return nil, err
	}
	now := time.Now()
	n1.Members.Join(2, now)
	n2.Members.Join(1, now)
	tcpRow, err := transportTrips(tcp, "tcp loopback", cfg)
	if err != nil {
		return nil, err
	}
	rows = append(rows, tcpRow)
	return rows, nil
}

// RenderTransport formats the comparison.
func RenderTransport(rows []TransportRow) string {
	var b strings.Builder
	b.WriteString("\nTransport — whole-stack migration cost by fabric\n")
	b.WriteString("(same protocol, simulated Gigabit vs real TCP loopback)\n\n")
	fmt.Fprintf(&b, "%-16s %6s %12s %12s %12s %10s %10s\n",
		"fabric", "trips", "median", "p90", "wire(med)", "state", "migr/s")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s %6d %12s %12s %12s %9dB %10.1f\n",
			r.Fabric, r.Trips,
			r.Median.Round(time.Microsecond), r.P90.Round(time.Microsecond),
			r.Transfer.Round(time.Microsecond), r.StateBytes, r.PerSec)
	}
	b.WriteString("\n")
	return b.String()
}
