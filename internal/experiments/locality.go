package experiments

import (
	"fmt"
	"time"

	"repro/internal/netsim"
	"repro/internal/nfs"
	"repro/internal/sodee"
	"repro/internal/value"
	"repro/internal/workloads"
)

// Table VI / §IV.C configuration. File sizes are scaled from the paper's
// 600 MB (Table VI) and 300 MB (roaming) — shapes depend on the ratio of
// NFS transfer time to local read time, which shaping preserves.
const (
	Table6FileSize = 8 << 20 // per file, ×3 files
	Table6XenImage = 24 << 20
	RoamFileSize   = 2 << 20
	RoamServers    = 10
	jessicaChunkIO = 10 * time.Millisecond // per-64KiB-chunk I/O-library cost
)

// Table6Row is one system's locality measurement.
type Table6Row struct {
	System   sodee.System
	NoMig    time.Duration // started and finished on the NFS client
	Mig      time.Duration // migrated to the NFS server before reading
	OnServer time.Duration // started on the NFS server (reference)
	Gain     float64       // (NoMig - Mig) / NoMig × 100
}

// localitySetup builds a fresh 2-node cluster + corpus for one run.
func localitySetup(sys sodee.System) (*sodee.Cluster, *nfs.Server, *checkpointGate, error) {
	w := workloads.TextSearch()
	prog := progFor(sys, w)
	cluster, err := sodee.NewCluster(prog, netsim.Gigabit,
		sodee.NodeConfig{ID: 1, System: sys, Preloaded: true, ImageBytes: Table6XenImage},
		sodee.NodeConfig{ID: 2, System: sys, Preloaded: true, ImageBytes: Table6XenImage},
	)
	if err != nil {
		return nil, nil, nil, err
	}
	fs := nfs.NewServer(cluster.Net)
	for i := 0; i < 3; i++ {
		fs.Host(nfs.File{
			Name: fmt.Sprintf("corpus/f%d.txt", i), Host: 2,
			Size: Table6FileSize, Seed: uint64(100 + i),
		})
	}
	gate := newCheckpointGate(false)
	for _, node := range cluster.Nodes {
		workloads.BindCommon(node.VM)
		node.VM.BindNativeIfDeclared(workloads.CheckpointNative, gate.native)
		nd := node
		env := &workloads.SearchEnv{FS: fs, Location: func() int { return nd.Location() }}
		if sys == sodee.SysJessica2 {
			env.ChunkPenalty = jessicaChunkIO
		}
		env.Bind(node.VM)
	}
	return cluster, fs, gate, nil
}

// searchArgs prepares (names, needle) on a node's VM.
func searchArgs(n *sodee.Node) []value.Value {
	names, err := workloads.MakeNameArray(n.VM, []string{"corpus/f0.txt", "corpus/f1.txt", "corpus/f2.txt"})
	if err != nil {
		panic(err)
	}
	return []value.Value{value.RefVal(names), value.RefVal(n.VM.Intern("zzqneverpresentzzq"))}
}

func runSearch(cluster *sodee.Cluster, fs *nfs.Server, startOn int) (time.Duration, error) {
	fs.ClearCaches()
	n := cluster.Nodes[startOn]
	start := time.Now()
	job, err := n.Mgr.StartJob("searchMain", searchArgs(n)...)
	if err != nil {
		return 0, err
	}
	if _, err := job.Wait(); err != nil {
		return 0, err
	}
	return time.Since(start), nil
}

func runSearchMigrated(sys sodee.System, cluster *sodee.Cluster, fs *nfs.Server, gate *checkpointGate) (time.Duration, error) {
	fs.ClearCaches()
	home := cluster.Nodes[1]
	gate.mu.Lock()
	gate.armed = true
	gate.mu.Unlock()
	start := time.Now()
	job, err := home.Mgr.StartJob("searchMain", searchArgs(home)...)
	if err != nil {
		return 0, err
	}
	<-gate.reached // first searchFile entered, before any read
	gate.disarm()
	done := make(chan error, 1)
	go func() {
		var merr error
		switch sys {
		case sodee.SysSODEE:
			// Move the whole execution to the server (Fig 1b: total
			// migration), as the paper's run does.
			_, merr = home.Mgr.MigrateSOD(job, sodee.SODOptions{NFrames: 2, Dest: 2, Flow: sodee.FlowTotal})
		case sodee.SysJessica2:
			_, merr = home.Mgr.MigrateThread(job, 2)
		case sodee.SysXen:
			_, merr = home.Mgr.MigrateVM(job, sodee.VMMigrateOptions{Dest: 2})
		default:
			merr = fmt.Errorf("unsupported system %v", sys)
		}
		done <- merr
	}()
	if sys != sodee.SysXen {
		time.Sleep(time.Millisecond)
	}
	gate.release <- struct{}{}
	if merr := <-done; merr != nil {
		return 0, merr
	}
	if _, err := job.Wait(); err != nil {
		return 0, err
	}
	return time.Since(start), nil
}

// Table6 reproduces the locality-gain comparison for the NFS text search.
func Table6() ([]Table6Row, error) {
	var rows []Table6Row
	for _, sys := range []sodee.System{sodee.SysJessica2, sodee.SysXen, sodee.SysSODEE} {
		cluster, fs, _, err := localitySetup(sys)
		if err != nil {
			return nil, err
		}
		noMig, err := runSearch(cluster, fs, 1)
		if err != nil {
			return nil, fmt.Errorf("table6 %v nomig: %w", sys, err)
		}
		onServer, err := runSearch(cluster, fs, 2)
		if err != nil {
			return nil, fmt.Errorf("table6 %v onserver: %w", sys, err)
		}
		// Fresh cluster for the migrated run (heaps/threads were consumed).
		cluster2, fs2, gate2, err := localitySetup(sys)
		if err != nil {
			return nil, err
		}
		mig, err := runSearchMigrated(sys, cluster2, fs2, gate2)
		if err != nil {
			return nil, fmt.Errorf("table6 %v mig: %w", sys, err)
		}
		rows = append(rows, Table6Row{
			System: sys, NoMig: noMig, Mig: mig, OnServer: onServer,
			Gain: float64(noMig-mig) / float64(noMig) * 100,
		})
	}
	return rows, nil
}

// RoamResult is the §IV.C autonomous-task-roaming measurement.
type RoamResult struct {
	Servers    int
	NoMig      time.Duration
	Roaming    time.Duration
	Speedup    float64
	Migrations int
}

// Roaming reproduces the WAN-grid roaming experiment: ten files on ten
// servers; without migration all data crosses the (slow) links, with SOD
// roaming the searchFile frame visits each server in turn.
func Roaming() (*RoamResult, error) {
	build := func() (*sodee.Cluster, *nfs.Server, *checkpointGate, []string, error) {
		w := workloads.TextSearch()
		prog := progFor(sodee.SysSODEE, w)
		cfgs := []sodee.NodeConfig{{ID: 1, System: sodee.SysSODEE, Preloaded: true}}
		for i := 0; i < RoamServers; i++ {
			cfgs = append(cfgs, sodee.NodeConfig{ID: 2 + i, System: sodee.SysSODEE, Preloaded: true})
		}
		// WAN-ish links: 200 Mbps, 2 ms.
		cluster, err := sodee.NewCluster(prog, netsim.LinkSpec{BandwidthBps: 200_000_000, Latency: 2 * time.Millisecond}, cfgs...)
		if err != nil {
			return nil, nil, nil, nil, err
		}
		fs := nfs.NewServer(cluster.Net)
		var names []string
		for i := 0; i < RoamServers; i++ {
			name := fmt.Sprintf("grid/f%d.dat", i)
			fs.Host(nfs.File{Name: name, Host: 2 + i, Size: RoamFileSize, Seed: uint64(500 + i)})
			names = append(names, name)
		}
		gate := newCheckpointGate(false)
		for _, node := range cluster.Nodes {
			workloads.BindCommon(node.VM)
			node.VM.BindNativeIfDeclared(workloads.CheckpointNative, gate.native)
			nd := node
			env := &workloads.SearchEnv{FS: fs, Location: func() int { return nd.Location() }}
			env.Bind(node.VM)
		}
		return cluster, fs, gate, names, nil
	}

	runJob := func(cluster *sodee.Cluster, names []string) (*sodee.Job, error) {
		home := cluster.Nodes[1]
		arr, err := workloads.MakeNameArray(home.VM, names)
		if err != nil {
			return nil, err
		}
		return home.Mgr.StartJob("searchMain",
			value.RefVal(arr), value.RefVal(home.VM.Intern("zzqneverpresentzzq")))
	}

	// Run A: no migration.
	clusterA, fsA, _, namesA, err := build()
	if err != nil {
		return nil, err
	}
	fsA.ClearCaches()
	start := time.Now()
	jobA, err := runJob(clusterA, namesA)
	if err != nil {
		return nil, err
	}
	if _, err := jobA.Wait(); err != nil {
		return nil, err
	}
	noMig := time.Since(start)

	// Run B: roam the searchFile frame to each hosting server.
	cluster, fs, gate, names, err := build()
	if err != nil {
		return nil, err
	}
	fs.ClearCaches()
	gate.mu.Lock()
	gate.armed = true
	gate.mu.Unlock()
	home := cluster.Nodes[1]
	start = time.Now()
	job, err := runJob(cluster, names)
	if err != nil {
		return nil, err
	}
	migrations := 0
	for i := 0; i < RoamServers; i++ {
		<-gate.reached
		host := 2 + i
		done := make(chan error, 1)
		go func() {
			_, merr := home.Mgr.MigrateSOD(job, sodee.SODOptions{
				NFrames: 1, Dest: host, Flow: sodee.FlowReturnHome,
			})
			done <- merr
		}()
		time.Sleep(time.Millisecond)
		gate.release <- struct{}{}
		if merr := <-done; merr != nil {
			return nil, fmt.Errorf("roam hop %d: %w", i, merr)
		}
		migrations++
	}
	if _, err := job.Wait(); err != nil {
		return nil, err
	}
	roam := time.Since(start)

	return &RoamResult{
		Servers: RoamServers, NoMig: noMig, Roaming: roam,
		Speedup: float64(noMig) / float64(roam), Migrations: migrations,
	}, nil
}
