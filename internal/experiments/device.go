package experiments

import (
	"fmt"
	"time"

	"repro/internal/netsim"
	"repro/internal/nfs"
	"repro/internal/sodee"
	"repro/internal/value"
	"repro/internal/workloads"
)

// Table7Row is one bandwidth point of the §IV.D device experiment.
type Table7Row struct {
	BandwidthKbps int64
	Capture       time.Duration
	TransferState time.Duration // t2: captured state
	TransferClass time.Duration // t3: class files
	Restore       time.Duration
	Latency       time.Duration
	Found         int64 // photos found on the device (sanity)
}

// Table7Bandwidths are the paper's router settings (764 = "unlimited" as
// measured over their Wi-Fi).
var Table7Bandwidths = []int64{50, 128, 384, 764}

// Table7 reproduces the migration-latency-vs-bandwidth experiment: a
// photo-sharing server (SODEE, node 1) pushes its listPhotos frame to an
// iPhone-class device (node 2) over a bandwidth-capped link. The device
// profile has no tool interface: restoration happens at "Java level" with
// Java serialization, on a slow CPU — both captured in the Device system
// model.
func Table7(bandwidthKbps int64) (*Table7Row, error) {
	w := workloads.PhotoShare()
	prog := progFor(sodee.SysSODEE, w)
	cluster, err := sodee.NewCluster(prog, netsim.Kbps(bandwidthKbps),
		sodee.NodeConfig{ID: 1, System: sodee.SysSODEE, Preloaded: true},
		sodee.NodeConfig{ID: 2, System: sodee.SysDevice, Preloaded: false},
	)
	if err != nil {
		return nil, err
	}
	// The cluster fabric link between server and device is capped; the
	// device's photos live on the device.
	fs := nfs.NewServer(cluster.Net)
	for i := 0; i < 12; i++ {
		name := fmt.Sprintf("User/Media/DCIM/100APPLE/IMG_%04d.jpg", i)
		if i%3 == 0 {
			name = fmt.Sprintf("User/Media/DCIM/100APPLE/beach_%04d.jpg", i)
		}
		fs.Host(nfs.File{Name: name, Host: 2, Size: 24 << 10, Seed: uint64(900 + i)})
	}
	gate := newCheckpointGate(true)
	for _, node := range cluster.Nodes {
		workloads.BindCommon(node.VM)
		node.VM.BindNativeIfDeclared(workloads.CheckpointNative, gate.native)
		nd := node
		env := &workloads.PhotoEnv{FS: fs, Location: func() int { return nd.Location() }}
		env.Bind(node.VM)
	}
	server := cluster.Nodes[1]

	job, err := server.Mgr.StartJob("PhotoApp.serveRequest",
		value.RefVal(server.VM.Intern("User/Media/DCIM/100APPLE")),
		value.RefVal(server.VM.Intern("beach")))
	if err != nil {
		return nil, err
	}
	<-gate.reached // listPhotos entered
	gate.disarm()
	done := make(chan error, 1)
	var mm *sodee.MigrationMetrics
	go func() {
		var merr error
		mm, merr = server.Mgr.MigrateSOD(job, sodee.SODOptions{
			NFrames: 1, Dest: 2, Flow: sodee.FlowReturnHome,
		})
		done <- merr
	}()
	time.Sleep(time.Millisecond)
	gate.release <- struct{}{}
	if merr := <-done; merr != nil {
		return nil, merr
	}
	res, err := job.Wait()
	if err != nil {
		return nil, err
	}

	// Split the measured transfer between state and class bytes by their
	// share of the payload (the paper reports t2 and t3 separately; our
	// migrate message carries both back-to-back on the same link).
	total := mm.StateBytes + mm.ClassBytes
	stateShare := float64(mm.StateBytes) / float64(total)
	row := &Table7Row{
		BandwidthKbps: bandwidthKbps,
		Capture:       mm.Capture,
		TransferState: time.Duration(float64(mm.Transfer) * stateShare),
		TransferClass: time.Duration(float64(mm.Transfer) * (1 - stateShare)),
		Restore:       mm.Restore,
		Latency:       mm.Latency,
		Found:         res.I,
	}
	return row, nil
}

// Table7All runs every bandwidth point.
func Table7All() ([]Table7Row, error) {
	var rows []Table7Row
	for _, bw := range Table7Bandwidths {
		r, err := Table7(bw)
		if err != nil {
			return nil, fmt.Errorf("table7 %d kbps: %w", bw, err)
		}
		rows = append(rows, *r)
	}
	return rows, nil
}
