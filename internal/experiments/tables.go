package experiments

import (
	"fmt"
	"time"

	"repro/internal/preprocess"
	"repro/internal/sodee"
	"repro/internal/value"
	"repro/internal/vm"
	"repro/internal/workloads"
)

// --- Table I: program characteristics ---

// Table1Row mirrors the paper's Table I.
type Table1Row struct {
	App     string
	Descr   string
	N       int64 // scaled problem size
	PaperN  int64
	H       int   // maximum stack height observed
	F       int64 // accumulated local+static field footprint (bytes)
	Result  value.Value
	Elapsed time.Duration
}

// Table1 measures the characteristics of the four kernels by running them
// on an instrumented VM.
func Table1() ([]Table1Row, error) {
	var rows []Table1Row
	for _, w := range workloads.All() {
		v := vm.New(w.Prog, 1, true)
		workloads.BindCommon(v)
		start := time.Now()
		res, err := v.RunMain(w.Prog.MethodByName(w.Entry), w.Args(w.DefaultN)...)
		if err != nil {
			return nil, fmt.Errorf("table1 %s: %w", w.Name, err)
		}
		// F: statics (following ref statics into their arrays/objects) plus
		// the locals of the deepest stack.
		var f int64
		for cid, vals := range v.Statics {
			if !v.ClassLoaded(int32(cid)) {
				continue
			}
			for _, sv := range vals {
				f += 8
				if sv.Kind == value.KindRef {
					if o := v.Heap.Get(sv.R); o != nil {
						f += o.ByteSize()
					}
				}
			}
		}
		h := v.Counters.MaxStack
		f += int64(h) * 8 * 8 // h frames × ~8 local slots × 8 bytes
		rows = append(rows, Table1Row{
			App: w.Name, Descr: w.Descr,
			N: w.DefaultN, PaperN: w.PaperN,
			H: h, F: f, Result: res, Elapsed: time.Since(start),
		})
	}
	return rows, nil
}

// --- Tables II & III: execution times and migration overhead ---

// Table2Cell is one (system, mig?) measurement.
type Table2Cell struct {
	NoMig time.Duration
	Mig   time.Duration
	// Metrics of the migration performed in the Mig run.
	Metrics sodee.MigrationMetrics
}

// Table2Row covers one application across all systems.
type Table2Row struct {
	App   string
	JDK   time.Duration
	Cells map[sodee.System]*Table2Cell
	// C0: side effect of code instrumentation (preprocessed vs original,
	// no agent); C1: cost of the attached agent (SODEE no-mig vs JDK).
	C0 float64
	C1 float64
}

// Table2 runs every kernel on every system with and without migration.
func Table2() ([]Table2Row, error) {
	var rows []Table2Row
	for _, w := range workloads.All() {
		row := Table2Row{App: w.Name, Cells: make(map[sodee.System]*Table2Cell)}

		jdk, err := RunJDKReference(w, w.DefaultN)
		if err != nil {
			return nil, err
		}
		row.JDK = jdk.Elapsed

		// C0: preprocessed code on a bare VM.
		ppProg := progFor(sodee.SysSODEE, w)
		v := vm.New(ppProg, 1, true)
		workloads.BindCommon(v)
		t0 := time.Now()
		if _, err := v.RunMain(ppProg.MethodByName(w.Entry), w.Args(w.DefaultN)...); err != nil {
			return nil, err
		}
		c0run := time.Since(t0)
		row.C0 = float64(c0run-jdk.Elapsed) / float64(jdk.Elapsed) * 100

		for _, sys := range AllSystems {
			cell := &Table2Cell{}
			noMig, err := RunKernel(sys, w, w.DefaultN, false)
			if err != nil {
				return nil, fmt.Errorf("table2 %s/%v nomig: %w", w.Name, sys, err)
			}
			cell.NoMig = noMig.Elapsed
			mig, err := RunKernel(sys, w, w.DefaultN, true)
			if err != nil {
				return nil, fmt.Errorf("table2 %s/%v mig: %w", w.Name, sys, err)
			}
			cell.Mig = mig.Elapsed
			cell.Metrics = mig.Metrics
			row.Cells[sys] = cell
		}
		row.C1 = float64(row.Cells[sodee.SysSODEE].NoMig-c0run) / float64(jdk.Elapsed) * 100
		rows = append(rows, row)
	}
	return rows, nil
}

// Table3Row is the migration overhead derived from Table II.
type Table3Row struct {
	App      string
	Overhead map[sodee.System]time.Duration
	Percent  map[sodee.System]float64
}

// Table3 derives migration overheads (mig − no-mig) from Table II rows.
func Table3(t2 []Table2Row) []Table3Row {
	var rows []Table3Row
	for _, r := range t2 {
		row := Table3Row{
			App:      r.App,
			Overhead: make(map[sodee.System]time.Duration),
			Percent:  make(map[sodee.System]float64),
		}
		for sys, c := range r.Cells {
			ov := c.Mig - c.NoMig
			if ov < 0 {
				ov = 0
			}
			row.Overhead[sys] = ov
			row.Percent[sys] = float64(ov) / float64(c.NoMig) * 100
		}
		rows = append(rows, row)
	}
	return rows
}

// Table4Row is the migration latency breakdown (capture/transfer/restore)
// for the lightweight systems.
type Table4Row struct {
	App   string
	Parts map[sodee.System]sodee.MigrationMetrics
}

// Table4 extracts latency breakdowns from Table II's migrated runs for
// SOD, G-JavaMPI and JESSICA2 (Xen is excluded, as in the paper: its
// latency is not freeze time).
func Table4(t2 []Table2Row) []Table4Row {
	var rows []Table4Row
	for _, r := range t2 {
		row := Table4Row{App: r.App, Parts: make(map[sodee.System]sodee.MigrationMetrics)}
		for _, sys := range []sodee.System{sodee.SysSODEE, sodee.SysGJavaMPI, sodee.SysJessica2} {
			row.Parts[sys] = r.Cells[sys].Metrics
		}
		rows = append(rows, row)
	}
	return rows
}

// --- Table V: remote-object detection microbenchmark ---

// Table5Row is one access type's cost across the three program variants.
type Table5Row struct {
	Access        string
	OriginalNs    float64
	FaultingNs    float64
	CheckingNs    float64
	FaultSlowdown float64 // percent
	CheckSlowdown float64 // percent
}

// Table5 measures field/static read/write loop costs on the original,
// fault-handler and status-check variants of the microbenchmark. All
// objects are local — this is the paper's point: status checks penalize
// even fully local execution, object faulting does not.
func Table5(iters int64) ([]Table5Row, error) {
	w := workloads.FieldBench()
	variants := map[string]*vmProg{
		"orig":  newVMProg(w, preprocess.Mode(-1)),
		"fault": newVMProg(w, preprocess.ModeFaulting),
		"check": newVMProg(w, preprocess.ModeStatusCheck),
	}
	type bench struct {
		name  string
		entry string
		objed bool
	}
	benches := []bench{
		{"Field Read", "fieldRead", true},
		{"Field Write", "fieldWrite", true},
		{"Static Read", "staticRead", false},
		{"Static Write", "staticWrite", false},
	}
	var rows []Table5Row
	for _, b := range benches {
		times := map[string]float64{}
		for name, vp := range variants {
			ns, err := vp.measure(b.entry, b.objed, iters)
			if err != nil {
				return nil, fmt.Errorf("table5 %s/%s: %w", b.name, name, err)
			}
			times[name] = ns
		}
		rows = append(rows, Table5Row{
			Access:        b.name,
			OriginalNs:    times["orig"],
			FaultingNs:    times["fault"],
			CheckingNs:    times["check"],
			FaultSlowdown: (times["fault"] - times["orig"]) / times["orig"] * 100,
			CheckSlowdown: (times["check"] - times["orig"]) / times["orig"] * 100,
		})
	}
	return rows, nil
}

type vmProg struct {
	w    *workloads.Workload
	mode preprocess.Mode
}

func newVMProg(w *workloads.Workload, mode preprocess.Mode) *vmProg {
	return &vmProg{w: w, mode: mode}
}

// measure times one loop entry and returns ns per iteration, taking the
// best of three runs.
func (vp *vmProg) measure(entry string, withObj bool, iters int64) (float64, error) {
	prog := vp.w.Prog
	if vp.mode != preprocess.Mode(-1) {
		prog = preprocess.MustPreprocess(prog, preprocess.Options{Mode: vp.mode, Restore: false})
	}
	best := 0.0
	for rep := 0; rep < 3; rep++ {
		v := vm.New(prog, 1, true)
		workloads.BindCommon(v)
		v.BindNativeIfDeclared(preprocess.NatBringObj, func(t *vm.Thread, a []value.Value) (value.Value, *vm.Raised) {
			return a[0], nil // all-local microbench: identity
		})
		args := []value.Value{value.Int(iters)}
		if withObj {
			cid := prog.ClassByName("Bench")
			obj, err := v.Heap.Alloc(cid, prog.NumInstanceFields(cid))
			if err != nil {
				return 0, err
			}
			args = []value.Value{value.RefVal(obj), value.Int(iters)}
		}
		start := time.Now()
		if _, err := v.RunMain(prog.MethodByName(entry), args...); err != nil {
			return 0, err
		}
		ns := float64(time.Since(start).Nanoseconds()) / float64(iters)
		if best == 0 || ns < best {
			best = ns
		}
	}
	return best, nil
}

// --- Fig 5: code-size comparison ---

// Fig5Sizes reports the serialized size of the Geometry-style method under
// the three treatments (original / status checks / fault handlers).
type Fig5Sizes struct {
	Method   string
	Original int
	Checking int
	Faulting int
}

// Fig5 measures code sizes on the FieldBench program's fieldRead method
// (the closest analog of the paper's displaceX example with one object
// access per statement).
func Fig5() (Fig5Sizes, error) {
	w := workloads.FieldBench()
	const method = "fieldRead"
	orig := w.Prog.Methods[w.Prog.MethodByName(method)].CodeSize()
	_, repC, err := preprocess.Preprocess(w.Prog, preprocess.Options{Mode: preprocess.ModeStatusCheck})
	if err != nil {
		return Fig5Sizes{}, err
	}
	_, repF, err := preprocess.Preprocess(w.Prog, preprocess.Options{Mode: preprocess.ModeFaulting})
	if err != nil {
		return Fig5Sizes{}, err
	}
	return Fig5Sizes{
		Method:   method,
		Original: orig,
		Checking: repC.SizeOf(method),
		Faulting: repF.SizeOf(method),
	}, nil
}
