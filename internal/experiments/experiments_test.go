package experiments_test

import (
	"fmt"
	"testing"

	"repro/internal/experiments"
	"repro/internal/sodee"
	"repro/internal/workloads"
)

// The experiment drivers are exercised at reduced problem sizes here; the
// benchmark harness runs them at the full scaled sizes.

func TestRunKernelAllSystemsAgree(t *testing.T) {
	w := workloads.Fib()
	jdk, err := experiments.RunJDKReference(w, 18)
	if err != nil {
		t.Fatal(err)
	}
	for _, sys := range experiments.AllSystems {
		for _, mig := range []bool{false, true} {
			kr, err := experiments.RunKernel(sys, w, 18, mig)
			if err != nil {
				t.Fatalf("%v mig=%v: %v", sys, mig, err)
			}
			if !kr.Result.Equal(jdk.Result) {
				t.Errorf("%v mig=%v: result %v, want %v", sys, mig, kr.Result, jdk.Result)
			}
			if mig && sys != sodee.SysXen && kr.Metrics.StateBytes == 0 {
				t.Errorf("%v: migrated run should record state bytes", sys)
			}
		}
	}
}

func TestTable1Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("runs all kernels")
	}
	rows, err := experiments.Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("want 4 rows, got %d", len(rows))
	}
	byApp := map[string]experiments.Table1Row{}
	for _, r := range rows {
		byApp[r.App] = r
	}
	// Fib and NQ recurse: h scales with n. FFT/TSP have shallow stacks but
	// FFT carries the big static footprint.
	if byApp["Fib"].H < int(byApp["Fib"].N) {
		t.Errorf("Fib h=%d should be at least n=%d", byApp["Fib"].H, byApp["Fib"].N)
	}
	if byApp["FFT"].F < workloads.FFTExtraStaticFloats*8 {
		t.Errorf("FFT F=%d should include the %d-byte static workspace",
			byApp["FFT"].F, workloads.FFTExtraStaticFloats*8)
	}
	if byApp["FFT"].F <= byApp["TSP"].F || byApp["FFT"].F <= byApp["Fib"].F {
		t.Error("FFT should have the largest footprint")
	}
	if byApp["TSP"].H >= byApp["Fib"].H {
		t.Error("TSP stack should be shallower than Fib's")
	}
}

func TestTable5Shapes(t *testing.T) {
	// The shape assertions compare nanosecond-scale slowdowns, which CPU
	// contention (e.g. sibling packages compiling during `go test ./...`
	// on a small machine) can transiently invert. Re-measuring gives the
	// claim a quiet window; the shape itself must still hold there.
	var lastErrs []string
	for attempt := 0; attempt < 3; attempt++ {
		rows, err := experiments.Table5(2_000_000)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 4 {
			t.Fatalf("want 4 rows, got %d", len(rows))
		}
		lastErrs = nil
		for _, r := range rows {
			// The paper's claim: status checking is markedly slower than
			// object faulting on local objects; faulting is near the
			// original.
			if r.CheckingNs <= r.FaultingNs {
				lastErrs = append(lastErrs, fmt.Sprintf("%s: checking (%.2fns) should cost more than faulting (%.2fns)",
					r.Access, r.CheckingNs, r.FaultingNs))
			}
			if r.FaultSlowdown > 25 {
				lastErrs = append(lastErrs, fmt.Sprintf("%s: faulting slowdown %.1f%% too high (paper: 2-8%%)", r.Access, r.FaultSlowdown))
			}
			if r.CheckSlowdown < 10 {
				lastErrs = append(lastErrs, fmt.Sprintf("%s: checking slowdown %.1f%% suspiciously low (paper: 21-254%%)", r.Access, r.CheckSlowdown))
			}
		}
		if len(lastErrs) == 0 {
			return
		}
	}
	for _, e := range lastErrs {
		t.Error(e)
	}
}

func TestFig5Ordering(t *testing.T) {
	f, err := experiments.Fig5()
	if err != nil {
		t.Fatal(err)
	}
	if !(f.Original < f.Checking && f.Checking < f.Faulting) {
		t.Errorf("size ordering violated: %+v", f)
	}
}

func TestTable7SingleBandwidthPoint(t *testing.T) {
	row, err := experiments.Table7(384)
	if err != nil {
		t.Fatal(err)
	}
	if row.Found != 4 {
		t.Errorf("found %d beach photos on device, want 4", row.Found)
	}
	if row.TransferState <= 0 {
		t.Error("state transfer should be non-zero")
	}
	if row.Latency < row.TransferState {
		t.Error("latency should include transfer")
	}
}

func TestTable7BandwidthShape(t *testing.T) {
	if testing.Short() {
		t.Skip("multiple shaped transfers")
	}
	slow, err := experiments.Table7(50)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := experiments.Table7(764)
	if err != nil {
		t.Fatal(err)
	}
	// Lower bandwidth → longer latency, dominated by transfer; capture and
	// restore are bandwidth-independent (Table VII's observation).
	if slow.Latency <= fast.Latency {
		t.Errorf("50kbps latency (%v) should exceed 764kbps (%v)", slow.Latency, fast.Latency)
	}
	if slow.TransferState+slow.TransferClass <= fast.TransferState+fast.TransferClass {
		t.Error("transfer time should grow as bandwidth shrinks")
	}
}

func TestRoamingSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node shaped run")
	}
	r, err := experiments.Roaming()
	if err != nil {
		t.Fatal(err)
	}
	if r.Migrations != experiments.RoamServers {
		t.Errorf("performed %d migrations, want %d", r.Migrations, experiments.RoamServers)
	}
	if r.Speedup < 1.5 {
		t.Errorf("roaming speedup %.2f should be well above 1 (paper: 3.39)", r.Speedup)
	}
}

func TestRenderersDoNotPanic(t *testing.T) {
	rows5, err := experiments.Table5(100_000)
	if err != nil {
		t.Fatal(err)
	}
	_ = experiments.RenderTable5(rows5)
	f, err := experiments.Fig5()
	if err != nil {
		t.Fatal(err)
	}
	_ = experiments.RenderFig5(f)
}
