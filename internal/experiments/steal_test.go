package experiments

import (
	"strings"
	"testing"
)

// TestStealSmall: both schemes compute correct results, push+steal
// actually steals, and push-only never does.
func TestStealSmall(t *testing.T) {
	rows, err := Steal(StealConfig{Jobs: 4, Iters: 40_000, HighWater: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if !r.Correct {
			t.Errorf("%s produced wrong results", r.Scheme)
		}
	}
	if rows[0].Stolen != 0 {
		t.Errorf("push-only stole %d jobs", rows[0].Stolen)
	}
	if rows[1].Stolen == 0 {
		t.Error("push+steal never stole")
	}
	out := RenderSteal(rows)
	if !strings.Contains(out, "push+steal") || !strings.Contains(out, "stolen") {
		t.Errorf("render missing fields:\n%s", out)
	}
}

// TestStealBeatsPushOnly is the acceptance shape: with a conservative
// push watermark on an idle-heavy cluster, arming work stealing must
// measurably shorten the burst makespan. The margin is generous (1.3×
// where the typical run shows ~2×) to stay robust on loaded CI hardware.
func TestStealBeatsPushOnly(t *testing.T) {
	if testing.Short() {
		t.Skip("steal comparison is seconds-long; skipping in short mode")
	}
	rows, err := Steal(StealConfig{})
	if err != nil {
		t.Fatal(err)
	}
	pushOnly, pushSteal := rows[0], rows[1]
	if !pushOnly.Correct || !pushSteal.Correct {
		t.Fatalf("wrong results: %+v", rows)
	}
	if pushOnly.Makespan == 0 || pushSteal.Makespan == 0 {
		t.Fatalf("missing makespans: %+v", rows)
	}
	if float64(pushOnly.Makespan) < 1.3*float64(pushSteal.Makespan) {
		t.Errorf("push+steal makespan %v not measurably faster than push-only %v",
			pushSteal.Makespan, pushOnly.Makespan)
	}
}
