package shard

import (
	"sync"
	"testing"
)

func TestMapBasicOps(t *testing.T) {
	m := NewMap[string]()
	if _, ok := m.Get(1); ok {
		t.Fatal("empty map reported a hit")
	}
	m.Set(1, "a")
	m.Set(2, "b")
	if v, ok := m.Get(1); !ok || v != "a" {
		t.Fatalf("Get(1) = %q,%v", v, ok)
	}
	if n := m.Len(); n != 2 {
		t.Fatalf("Len = %d, want 2", n)
	}
	if !m.SetIfAbsent(3, "c") {
		t.Fatal("SetIfAbsent of a fresh key reported present")
	}
	if m.SetIfAbsent(3, "x") {
		t.Fatal("SetIfAbsent of an existing key reported absent")
	}
	if v, ok := m.TakeDelete(3); !ok || v != "c" {
		t.Fatalf("TakeDelete(3) = %q,%v", v, ok)
	}
	if _, ok := m.TakeDelete(3); ok {
		t.Fatal("second TakeDelete of one key succeeded")
	}
	m.Delete(2)
	if n := m.Len(); n != 1 {
		t.Fatalf("Len after deletes = %d, want 1", n)
	}
	seen := 0
	m.Range(func(k uint64, v string) bool {
		seen++
		return true
	})
	if seen != 1 {
		t.Fatalf("Range visited %d entries, want 1", seen)
	}
	if vs := m.Values(); len(vs) != 1 || vs[0] != "a" {
		t.Fatalf("Values = %v", vs)
	}
	m.Clear()
	if n := m.Len(); n != 0 {
		t.Fatalf("Len after Clear = %d", n)
	}
}

// TestMapShardSpread: sequential ids — the common case, since job ids
// are a counter — must not pile into one shard, or the sharding buys
// nothing under swarm load.
func TestMapShardSpread(t *testing.T) {
	m := NewMap[int]()
	const n = 1024
	counts := make(map[*mapShard[int]]int)
	for i := uint64(1); i <= n; i++ {
		m.Set(i, int(i))
		counts[m.shardFor(i)]++
	}
	if len(counts) != numShards {
		t.Fatalf("sequential keys landed in %d of %d shards", len(counts), numShards)
	}
	for _, c := range counts {
		if c > 4*n/numShards {
			t.Errorf("one shard holds %d of %d keys; the hash is clumping", c, n)
		}
	}
}

func TestMapConcurrent(t *testing.T) {
	m := NewMap[int]()
	var wg sync.WaitGroup
	const workers, per = 8, 500
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			base := uint64(w * per)
			for i := uint64(0); i < per; i++ {
				m.Set(base+i, w)
			}
			for i := uint64(0); i < per; i++ {
				if v, ok := m.Get(base + i); !ok || v != w {
					t.Errorf("key %d = %d,%v, want %d", base+i, v, ok, w)
					return
				}
			}
			for i := uint64(0); i < per; i += 2 {
				m.Delete(base + i)
			}
		}()
	}
	wg.Wait()
	if n := m.Len(); n != workers*per/2 {
		t.Fatalf("Len after concurrent churn = %d, want %d", n, workers*per/2)
	}
}
