// Package shard provides a lock-sharded hash map keyed by uint64 — the
// table shape behind the runtime's hot job and route registries. A single
// mutex around one big map serializes every Submit/complete/flush in the
// process; splitting the key space over independently locked shards lets
// thousands of concurrent clients touch disjoint jobs without queueing on
// one lock, while keeping the simple map semantics the callers had.
package shard

import (
	"sync"
	"sync/atomic"
)

// numShards is the shard count (power of two, so the index is a mask).
// 32 shards keep worst-case contention at 1/32nd of a single mutex while
// costing ~32 empty maps per table — noise next to one job's state.
const numShards = 32

// Map is a sharded map[uint64]V safe for concurrent use. The zero value
// is not usable; call NewMap.
type Map[V any] struct {
	shards [numShards]mapShard[V]
}

type mapShard[V any] struct {
	mu sync.Mutex
	m  map[uint64]V
}

// NewMap returns an empty sharded map.
func NewMap[V any]() *Map[V] {
	s := &Map[V]{}
	for i := range s.shards {
		s.shards[i].m = make(map[uint64]V)
	}
	return s
}

// shardFor picks the shard for a key. Keys are typically sequential
// tokens, so a multiplicative mix spreads runs of neighbors evenly even
// if the shard count ever stops dividing the allocation stride.
func (s *Map[V]) shardFor(k uint64) *mapShard[V] {
	return &s.shards[(k*0x9E3779B97F4A7C15)>>(64-5)&(numShards-1)]
}

// Get returns the value for k.
func (s *Map[V]) Get(k uint64) (V, bool) {
	sh := s.shardFor(k)
	sh.mu.Lock()
	v, ok := sh.m[k]
	sh.mu.Unlock()
	return v, ok
}

// Set stores v under k.
func (s *Map[V]) Set(k uint64, v V) {
	sh := s.shardFor(k)
	sh.mu.Lock()
	sh.m[k] = v
	sh.mu.Unlock()
}

// SetIfAbsent stores v under k only if the key is free; it reports
// whether the store happened — an atomic test-and-set (the migration
// in-flight guard needs exactly this).
func (s *Map[V]) SetIfAbsent(k uint64, v V) bool {
	sh := s.shardFor(k)
	sh.mu.Lock()
	_, exists := sh.m[k]
	if !exists {
		sh.m[k] = v
	}
	sh.mu.Unlock()
	return !exists
}

// Delete removes k.
func (s *Map[V]) Delete(k uint64) {
	sh := s.shardFor(k)
	sh.mu.Lock()
	delete(sh.m, k)
	sh.mu.Unlock()
}

// TakeDelete removes k and returns what was stored there — the
// consume-once shape route dispatch needs (two racing flushes for one
// token must resolve to one winner).
func (s *Map[V]) TakeDelete(k uint64) (V, bool) {
	sh := s.shardFor(k)
	sh.mu.Lock()
	v, ok := sh.m[k]
	if ok {
		delete(sh.m, k)
	}
	sh.mu.Unlock()
	return v, ok
}

// Len counts all entries (locking shard by shard; the total is a
// snapshot, not a linearizable count).
func (s *Map[V]) Len() int {
	n := 0
	for i := range s.shards {
		s.shards[i].mu.Lock()
		n += len(s.shards[i].m)
		s.shards[i].mu.Unlock()
	}
	return n
}

// Range calls fn for every entry until it returns false. Each shard is
// snapshotted under its own lock before fn runs, so fn may freely call
// back into the map; entries added or removed concurrently may or may
// not be seen.
func (s *Map[V]) Range(fn func(k uint64, v V) bool) {
	type kv struct {
		k uint64
		v V
	}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		snap := make([]kv, 0, len(sh.m))
		for k, v := range sh.m {
			snap = append(snap, kv{k, v})
		}
		sh.mu.Unlock()
		for _, e := range snap {
			if !fn(e.k, e.v) {
				return
			}
		}
	}
}

// Values snapshots every stored value (unordered).
func (s *Map[V]) Values() []V {
	out := make([]V, 0, 64)
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for _, v := range sh.m {
			out = append(out, v)
		}
		sh.mu.Unlock()
	}
	return out
}

// Clear drops every entry.
func (s *Map[V]) Clear() {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		sh.m = make(map[uint64]V)
		sh.mu.Unlock()
	}
}

// Striped is a sharded int64 counter: increments land on one of 32
// cache-line-padded cells picked by the caller's key (job token,
// destination id — whatever naturally spreads the writers), so hot-path
// Add calls from many goroutines never contend on one cache line. Reads
// sum all cells and are approximate under concurrent writes, which is
// exactly what a metrics counter needs. The zero value is ready to use.
type Striped struct {
	cells [numShards]stripedCell
}

// stripedCell pads each counter to its own cache line (64B line; the
// int64 plus 56 bytes of padding fills it).
type stripedCell struct {
	n atomic.Int64
	_ [56]byte
}

// Add adds delta to the cell selected by key (same multiplicative mix as
// Map, so sequential tokens spread evenly).
func (s *Striped) Add(key uint64, delta int64) {
	s.cells[(key*0x9E3779B97F4A7C15)>>(64-5)&(numShards-1)].n.Add(delta)
}

// Sum returns the total across all cells (a snapshot, not linearizable).
func (s *Striped) Sum() int64 {
	var t int64
	for i := range s.cells {
		t += s.cells[i].n.Load()
	}
	return t
}

// Reset zeroes every cell.
func (s *Striped) Reset() {
	for i := range s.cells {
		s.cells[i].n.Store(0)
	}
}
