package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("sod_test_total")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.IncKeyed(uint64(g*1000 + i))
			}
		}(g)
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	// Idempotent registration: same name, same instrument.
	if r.Counter("sod_test_total") != c {
		t.Fatal("re-registration returned a different counter")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("sod_lat_seconds", []float64{0.001, 0.01, 0.1})
	h.Observe(0.0005) // bucket 0
	h.Observe(0.005)  // bucket 1
	h.Observe(0.05)   // bucket 2
	h.Observe(5)      // +Inf
	h.Observe(0.001)  // boundary: le=0.001 → bucket 0
	s := r.Snapshot()
	hs := s.Histograms["sod_lat_seconds"]
	want := []int64{2, 1, 1, 1}
	if len(hs.Counts) != len(want) {
		t.Fatalf("counts len = %d, want %d", len(hs.Counts), len(want))
	}
	for i, w := range want {
		if hs.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (%v)", i, hs.Counts[i], w, hs.Counts)
		}
	}
	if hs.Count != 5 {
		t.Fatalf("count = %d, want 5", hs.Count)
	}
	if hs.Sum < 5.056 || hs.Sum > 5.058 {
		t.Fatalf("sum = %g, want ~5.0565", hs.Sum)
	}
}

func TestSnapshotWireRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("sod_migrations_total").Add(7)
	r.Counter(Label("sod_migration_bytes_total", "dest", "3")).Add(4096)
	r.Gauge("sod_jobs_running").Set(2)
	h := r.Histogram("sod_migration_latency_seconds", DurationBuckets)
	h.ObserveDuration(int64(3 * time.Millisecond))
	s := r.Snapshot()

	got, err := DecodeSnapshot(EncodeSnapshot(s))
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(s)
	b, _ := json.Marshal(got)
	if string(a) != string(b) {
		t.Fatalf("round trip mismatch:\n%s\n%s", a, b)
	}
}

func TestRenderPrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("sod_migrations_total").Add(3)
	r.Counter(Label("sod_migration_bytes_total", "dest", "2")).Add(100)
	r.Gauge("sod_jobs_running").Set(1)
	r.Histogram("sod_lat_seconds", []float64{0.01, 0.1}).Observe(0.05)
	text := r.Snapshot().RenderPrometheus()

	for _, want := range []string{
		"# TYPE sod_migrations_total counter",
		"sod_migrations_total 3",
		`sod_migration_bytes_total{dest="2"} 100`,
		"# TYPE sod_jobs_running gauge",
		"# TYPE sod_lat_seconds histogram",
		`sod_lat_seconds_bucket{le="0.01"} 0`,
		`sod_lat_seconds_bucket{le="0.1"} 1`,
		`sod_lat_seconds_bucket{le="+Inf"} 1`,
		"sod_lat_seconds_sum 0.05",
		"sod_lat_seconds_count 1",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("prometheus text missing %q:\n%s", want, text)
		}
	}
}

func TestSnapshotMerge(t *testing.T) {
	a := &Snapshot{Counters: map[string]int64{"x_total": 1}}
	b := &Snapshot{
		Counters: map[string]int64{"x_total": 2, "y_total": 5},
		Histograms: map[string]HistSnapshot{
			"h_seconds": {Bounds: []float64{1}, Counts: []int64{1, 0}, Sum: 0.5, Count: 1},
		},
	}
	a.Merge(b)
	a.Merge(b)
	if a.Counters["x_total"] != 5 || a.Counters["y_total"] != 10 {
		t.Fatalf("merged counters = %v", a.Counters)
	}
	h := a.Histograms["h_seconds"]
	if h.Count != 2 || h.Counts[0] != 2 || h.Sum != 1.0 {
		t.Fatalf("merged hist = %+v", h)
	}
}

func TestTraceStoreUpsertAndEvict(t *testing.T) {
	ts := NewTraceStore()
	base := time.Unix(0, 1_000_000)
	ts.Add(Span{ID: RootSpanID, Job: 9, Node: 1, Name: "job", Start: base})
	ts.Add(Span{ID: 5, Parent: RootSpanID, Job: 9, Node: 1, Name: "migrate", Start: base.Add(time.Millisecond)})
	// Upsert: root re-emitted closed.
	ts.Add(Span{ID: RootSpanID, Job: 9, Node: 1, Name: "job", Start: base, Dur: 3 * time.Millisecond})
	spans := ts.Get(9)
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2: %+v", len(spans), spans)
	}
	if spans[0].ID != RootSpanID || spans[0].Dur != 3*time.Millisecond {
		t.Fatalf("root not upserted: %+v", spans[0])
	}
	if ts.Get(404) != nil {
		t.Fatal("unknown job should return nil")
	}

	// FIFO eviction past maxTraceJobs.
	for j := uint64(100); j < 100+maxTraceJobs; j++ {
		ts.Add(Span{ID: RootSpanID, Job: j, Name: "job", Start: base})
	}
	if ts.Len() != maxTraceJobs {
		t.Fatalf("store len = %d, want %d", ts.Len(), maxTraceJobs)
	}
	if ts.Get(9) != nil {
		t.Fatal("oldest trace should have been evicted")
	}
}

func TestSpanWireRoundTrip(t *testing.T) {
	in := []Span{
		{ID: 1, Job: 4, Node: 1, Name: "job", Start: time.Unix(0, 123456789)},
		{ID: 8589934593, Parent: 1, Job: 4, Node: 2, Dest: 3, Name: "migrate",
			Start: time.Unix(0, 123456999), Dur: 250 * time.Microsecond,
			Bytes: 2048, Detail: "pushed"},
	}
	out, err := DecodeSpans(EncodeSpans(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("got %d spans, want %d", len(out), len(in))
	}
	for i := range in {
		if !out[i].Start.Equal(in[i].Start) {
			t.Fatalf("span %d start mismatch", i)
		}
		out[i].Start = in[i].Start
		if out[i] != in[i] {
			t.Fatalf("span %d mismatch: %+v vs %+v", i, out[i], in[i])
		}
	}
}

func TestRenderTrace(t *testing.T) {
	base := time.Unix(0, 0)
	spans := []Span{
		{ID: 1, Job: 7, Node: 1, Name: "job", Start: base, Dur: 10 * time.Millisecond},
		{ID: 2, Parent: 1, Job: 7, Node: 1, Dest: 2, Name: "migrate", Start: base.Add(time.Millisecond), Dur: 4 * time.Millisecond, Bytes: 512, Detail: "pushed"},
		{ID: 3, Parent: 2, Job: 7, Node: 1, Name: "capture", Start: base.Add(time.Millisecond), Dur: time.Millisecond},
	}
	text := RenderTrace(spans)
	for _, want := range []string{"job", "migrate", "node 1 -> 2", "512 B", "(pushed)", "capture"} {
		if !strings.Contains(text, want) {
			t.Fatalf("trace render missing %q:\n%s", want, text)
		}
	}
	if RenderTrace(nil) != "" {
		t.Fatal("empty trace should render empty")
	}
}
