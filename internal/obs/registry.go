// Package obs is the runtime's observability plane: a dependency-free
// metrics registry (counters, gauges, fixed-bucket histograms) plus
// per-job trace spans (span.go). One Registry lives on each node — tests
// and the in-process cluster run many nodes per OS process, so nothing
// here is global. Hot paths hold pre-registered *Counter/*Histogram
// pointers and pay one striped atomic add per event; name lookups happen
// only at registration and snapshot time.
//
// Snapshots serialize three ways: Go struct (loadgen reports), JSON
// (benchmark artifacts), and Prometheus text exposition (the sodd -obs
// HTTP endpoint and sodctl metrics). Metric keys follow Prometheus
// conventions: `family_total` or `family_seconds`, with optional labels
// baked into the key as `family{label="v"}`.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/shard"
	"repro/internal/wire"
)

// Counter is a monotonically increasing striped counter. Increments from
// many goroutines spread over cache-padded cells keyed by whatever id the
// caller has at hand (job token, destination node), so hot-path Inc calls
// never share a cache line.
type Counter struct {
	s shard.Striped
}

// Inc adds one (unkeyed — fine for low-rate counters).
func (c *Counter) Inc() { c.s.Add(0, 1) }

// Add adds delta (unkeyed).
func (c *Counter) Add(delta int64) { c.s.Add(0, delta) }

// IncKeyed adds one on the cell picked by key — use on hot paths where a
// natural spreading key exists.
func (c *Counter) IncKeyed(key uint64) { c.s.Add(key, 1) }

// AddKeyed adds delta on the cell picked by key.
func (c *Counter) AddKeyed(key uint64, delta int64) { c.s.Add(key, delta) }

// Value sums the cells (approximate under concurrent writes).
func (c *Counter) Value() int64 { return c.s.Sum() }

// Gauge is a settable instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bound histogram. Bounds are upper-inclusive bucket
// edges; observations above the last bound land in an implicit +Inf
// bucket. Buckets and the count are plain atomic adds; the sum is a CAS
// float add — all wait-free enough for the migration path, which observes
// a handful of values per migration, not per instruction.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is +Inf
	sum    atomic.Uint64  // math.Float64bits
	count  atomic.Int64
}

// DurationBuckets are the default bounds (seconds) for latency
// histograms: exponential 100µs → 10s, covering LAN migrations through
// kbps-link device experiments.
var DurationBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// ByteBuckets are the default bounds for payload-size histograms.
var ByteBuckets = []float64{
	256, 1024, 4096, 16384, 65536, 262144, 1048576, 4194304,
}

// Observe records v.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(ns int64) { h.Observe(float64(ns) / 1e9) }

// Registry holds one node's metrics, keyed by full metric name
// (labels baked in). Registration is idempotent: the same name always
// returns the same instrument.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns (registering on first use) the counter named name.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (registering on first use) the gauge named name.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (registering on first use) the histogram named name
// with the given bucket bounds. Bounds are fixed at first registration;
// later calls with different bounds get the original instrument.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{
			bounds: append([]float64(nil), bounds...),
			counts: make([]atomic.Int64, len(bounds)+1),
		}
		r.hists[name] = h
	}
	return h
}

// Label bakes a single label into a metric name: Label("x_total", "dest",
// "3") → `x_total{dest="3"}`.
func Label(name, key, val string) string {
	return name + "{" + key + `="` + val + `"}`
}

// HistSnapshot is one histogram's frozen state. Counts are per-bucket
// (not cumulative), length len(Bounds)+1 with the overflow bucket last.
type HistSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Sum    float64   `json:"sum"`
	Count  int64     `json:"count"`
}

// Snapshot is a point-in-time copy of a registry, safe to serialize.
type Snapshot struct {
	Counters   map[string]int64        `json:"counters,omitempty"`
	Gauges     map[string]int64        `json:"gauges,omitempty"`
	Histograms map[string]HistSnapshot `json:"histograms,omitempty"`
}

// Snapshot freezes the registry's current state.
func (r *Registry) Snapshot() *Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := &Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		hs := HistSnapshot{
			Bounds: append([]float64(nil), h.bounds...),
			Counts: make([]int64, len(h.counts)),
			Sum:    math.Float64frombits(h.sum.Load()),
			Count:  h.count.Load(),
		}
		for i := range h.counts {
			hs.Counts[i] = h.counts[i].Load()
		}
		s.Histograms[name] = hs
	}
	return s
}

// Merge adds other's values into s (counters and histogram buckets sum;
// gauges sum too, which reads as a cluster total). Used to aggregate
// per-node snapshots into one cluster view.
func (s *Snapshot) Merge(other *Snapshot) {
	if other == nil {
		return
	}
	for k, v := range other.Counters {
		if s.Counters == nil {
			s.Counters = make(map[string]int64)
		}
		s.Counters[k] += v
	}
	for k, v := range other.Gauges {
		if s.Gauges == nil {
			s.Gauges = make(map[string]int64)
		}
		s.Gauges[k] += v
	}
	for k, v := range other.Histograms {
		if s.Histograms == nil {
			s.Histograms = make(map[string]HistSnapshot)
		}
		cur, ok := s.Histograms[k]
		if !ok || len(cur.Counts) != len(v.Counts) {
			cp := HistSnapshot{
				Bounds: append([]float64(nil), v.Bounds...),
				Counts: append([]int64(nil), v.Counts...),
				Sum:    v.Sum,
				Count:  v.Count,
			}
			s.Histograms[k] = cp
			continue
		}
		for i := range cur.Counts {
			cur.Counts[i] += v.Counts[i]
		}
		cur.Sum += v.Sum
		cur.Count += v.Count
		s.Histograms[k] = cur
	}
}

// splitName separates `family{labels}` into family and the braced label
// body ("" when unlabeled).
func splitName(key string) (family, labels string) {
	if i := strings.IndexByte(key, '{'); i >= 0 {
		return key[:i], strings.TrimSuffix(key[i+1:], "}")
	}
	return key, ""
}

// fmtFloat renders a float the way Prometheus text format expects.
func fmtFloat(v float64) string {
	if v == math.Inf(1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// RenderPrometheus renders the snapshot in Prometheus text exposition
// format, deterministically ordered (sorted by key) so tests and diffs
// are stable.
func (s *Snapshot) RenderPrometheus() string {
	var b strings.Builder
	typed := make(map[string]bool)
	emitType := func(family, typ string) {
		if !typed[family] {
			fmt.Fprintf(&b, "# TYPE %s %s\n", family, typ)
			typed[family] = true
		}
	}
	for _, key := range sortedKeys(s.Counters) {
		family, _ := splitName(key)
		emitType(family, "counter")
		fmt.Fprintf(&b, "%s %d\n", key, s.Counters[key])
	}
	for _, key := range sortedKeys(s.Gauges) {
		family, _ := splitName(key)
		emitType(family, "gauge")
		fmt.Fprintf(&b, "%s %d\n", key, s.Gauges[key])
	}
	histKeys := make([]string, 0, len(s.Histograms))
	for k := range s.Histograms {
		histKeys = append(histKeys, k)
	}
	sort.Strings(histKeys)
	for _, key := range histKeys {
		h := s.Histograms[key]
		family, labels := splitName(key)
		emitType(family, "histogram")
		cum := int64(0)
		for i := range h.Counts {
			cum += h.Counts[i]
			bound := math.Inf(1)
			if i < len(h.Bounds) {
				bound = h.Bounds[i]
			}
			le := `le="` + fmtFloat(bound) + `"`
			if labels != "" {
				le = labels + "," + le
			}
			fmt.Fprintf(&b, "%s_bucket{%s} %d\n", family, le, cum)
		}
		suffix := ""
		if labels != "" {
			suffix = "{" + labels + "}"
		}
		fmt.Fprintf(&b, "%s_sum%s %s\n", family, suffix, fmtFloat(h.Sum))
		fmt.Fprintf(&b, "%s_count%s %d\n", family, suffix, h.Count)
	}
	return b.String()
}

func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// EncodeSnapshot serializes a snapshot for the control protocol
// (opMetrics reply).
func EncodeSnapshot(s *Snapshot) []byte {
	w := wire.NewWriter(512)
	w.Uvarint(uint64(len(s.Counters)))
	for _, k := range sortedKeys(s.Counters) {
		w.String(k)
		w.Varint(s.Counters[k])
	}
	w.Uvarint(uint64(len(s.Gauges)))
	for _, k := range sortedKeys(s.Gauges) {
		w.String(k)
		w.Varint(s.Gauges[k])
	}
	histKeys := make([]string, 0, len(s.Histograms))
	for k := range s.Histograms {
		histKeys = append(histKeys, k)
	}
	sort.Strings(histKeys)
	w.Uvarint(uint64(len(histKeys)))
	for _, k := range histKeys {
		h := s.Histograms[k]
		w.String(k)
		w.Float64Slice(h.Bounds)
		w.Int64Slice(h.Counts)
		w.Float64(h.Sum)
		w.Varint(h.Count)
	}
	return w.Bytes()
}

// DecodeSnapshot parses EncodeSnapshot's output.
func DecodeSnapshot(buf []byte) (*Snapshot, error) {
	r := wire.NewReader(buf)
	s := &Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]int64),
		Histograms: make(map[string]HistSnapshot),
	}
	nc := r.Uvarint()
	for i := uint64(0); i < nc && r.Err() == nil; i++ {
		k := r.String()
		s.Counters[k] = r.Varint()
	}
	ng := r.Uvarint()
	for i := uint64(0); i < ng && r.Err() == nil; i++ {
		k := r.String()
		s.Gauges[k] = r.Varint()
	}
	nh := r.Uvarint()
	for i := uint64(0); i < nh && r.Err() == nil; i++ {
		k := r.String()
		h := HistSnapshot{
			Bounds: r.Float64Slice(),
			Counts: r.Int64Slice(),
			Sum:    r.Float64(),
			Count:  r.Varint(),
		}
		s.Histograms[k] = h
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("obs: decode snapshot: %w", err)
	}
	return s, nil
}
