package obs

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/wire"
)

// Span is one timed interval in a job's lifetime. The migration source
// emits a "migrate" span per hop with "capture"/"transfer"/"restore"
// children (it learns the remote restore duration from the migrate
// reply, so no destination-side reporting is needed); chain execution
// adds "plant" and "forward" spans; the origin owns the single "job"
// root. IDs are unique within one (origin, job) trace — migration spans
// derive theirs from the hop's unique token so concurrent hops from
// different sources cannot collide.
type Span struct {
	ID     uint64        `json:"id"`
	Parent uint64        `json:"parent"` // 0 = root
	Job    uint64        `json:"job"`
	Node   int           `json:"node"`             // node that did the work
	Dest   int           `json:"dest,omitempty"`   // migration destination, 0 if n/a
	Name   string        `json:"name"`             // job|migrate|capture|transfer|restore|plant|forward
	Start  time.Time     `json:"start"`
	Dur    time.Duration `json:"dur"`
	Bytes  int64         `json:"bytes,omitempty"`
	Detail string        `json:"detail,omitempty"` // migrate reason, segment position, ...
}

// RootSpanID is the id of every trace's "job" root span.
const RootSpanID uint64 = 1

// Trace-store bounds: a long-lived origin must not accumulate spans
// forever. Oldest traces evict FIFO past maxTraceJobs; within one trace,
// spans past maxSpansPerJob are dropped (a pathological hop count, not a
// normal workload).
const (
	maxTraceJobs   = 256
	maxSpansPerJob = 512
)

// TraceStore collects spans at a job's origin node, keyed by job id.
// Spans arrive asynchronously and possibly twice (the root is emitted
// open at start and again closed at completion), so Add upserts by span
// ID.
type TraceStore struct {
	mu   sync.Mutex
	jobs map[uint64]*jobTrace
	fifo []uint64
}

type jobTrace struct {
	spans map[uint64]Span
}

// NewTraceStore returns an empty store.
func NewTraceStore() *TraceStore {
	return &TraceStore{jobs: make(map[uint64]*jobTrace)}
}

// Add upserts spans into their jobs' traces.
func (ts *TraceStore) Add(spans ...Span) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	for _, sp := range spans {
		jt, ok := ts.jobs[sp.Job]
		if !ok {
			if len(ts.fifo) >= maxTraceJobs {
				evict := ts.fifo[0]
				ts.fifo = ts.fifo[1:]
				delete(ts.jobs, evict)
			}
			jt = &jobTrace{spans: make(map[uint64]Span, 8)}
			ts.jobs[sp.Job] = jt
			ts.fifo = append(ts.fifo, sp.Job)
		}
		if _, exists := jt.spans[sp.ID]; !exists && len(jt.spans) >= maxSpansPerJob {
			continue
		}
		jt.spans[sp.ID] = sp
	}
}

// Get returns the job's spans sorted by start time (root first on ties),
// or nil if the job is unknown.
func (ts *TraceStore) Get(job uint64) []Span {
	ts.mu.Lock()
	jt, ok := ts.jobs[job]
	if !ok {
		ts.mu.Unlock()
		return nil
	}
	out := make([]Span, 0, len(jt.spans))
	for _, sp := range jt.spans {
		out = append(out, sp)
	}
	ts.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start.Equal(out[j].Start) {
			return out[i].ID < out[j].ID
		}
		return out[i].Start.Before(out[j].Start)
	})
	return out
}

// Len reports how many jobs have traces (for tests).
func (ts *TraceStore) Len() int {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return len(ts.jobs)
}

// EncodeSpans serializes a span batch for KindTraceSpan frames and the
// opTrace reply.
func EncodeSpans(spans []Span) []byte {
	w := wire.NewWriter(64 * len(spans))
	w.Uvarint(uint64(len(spans)))
	for _, sp := range spans {
		w.Uvarint(sp.ID)
		w.Uvarint(sp.Parent)
		w.Uvarint(sp.Job)
		w.Varint(int64(sp.Node))
		w.Varint(int64(sp.Dest))
		w.String(sp.Name)
		w.Fixed64(uint64(sp.Start.UnixNano()))
		w.Uvarint(uint64(sp.Dur))
		w.Uvarint(uint64(sp.Bytes))
		w.String(sp.Detail)
	}
	return w.Bytes()
}

// DecodeSpans parses EncodeSpans output.
func DecodeSpans(buf []byte) ([]Span, error) {
	r := wire.NewReader(buf)
	n := r.Uvarint()
	spans := make([]Span, 0, n)
	for i := uint64(0); i < n && r.Err() == nil; i++ {
		sp := Span{
			ID:     r.Uvarint(),
			Parent: r.Uvarint(),
			Job:    r.Uvarint(),
			Node:   int(r.Varint()),
			Dest:   int(r.Varint()),
			Name:   r.String(),
		}
		sp.Start = time.Unix(0, int64(r.Fixed64()))
		sp.Dur = time.Duration(r.Uvarint())
		sp.Bytes = int64(r.Uvarint())
		sp.Detail = r.String()
		spans = append(spans, sp)
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("obs: decode spans: %w", err)
	}
	return spans, nil
}

// RenderTrace formats a job's spans as an indented timeline: offset from
// the root start, name, node (and destination for migrations), duration,
// payload bytes. Children indent under their parent. Returns "" for an
// empty trace.
func RenderTrace(spans []Span) string {
	if len(spans) == 0 {
		return ""
	}
	depth := make(map[uint64]int, len(spans))
	byID := make(map[uint64]Span, len(spans))
	for _, sp := range spans {
		byID[sp.ID] = sp
	}
	var depthOf func(id uint64) int
	depthOf = func(id uint64) int {
		if d, ok := depth[id]; ok {
			return d
		}
		sp, ok := byID[id]
		if !ok || sp.Parent == 0 || sp.Parent == sp.ID {
			depth[id] = 0
			return 0
		}
		depth[id] = -1 // cycle guard
		d := depthOf(sp.Parent) + 1
		depth[id] = d
		return d
	}
	t0 := spans[0].Start
	for _, sp := range spans {
		if sp.Parent == 0 {
			t0 = sp.Start
			break
		}
	}
	var b []byte
	for _, sp := range spans {
		d := depthOf(sp.ID)
		if d < 0 {
			d = 0
		}
		loc := fmt.Sprintf("node %d", sp.Node)
		if sp.Dest != 0 {
			loc = fmt.Sprintf("node %d -> %d", sp.Node, sp.Dest)
		}
		line := fmt.Sprintf("%10.3fms %s%-10s %-16s %10.3fms",
			float64(sp.Start.Sub(t0))/float64(time.Millisecond),
			indent(d), sp.Name, loc,
			float64(sp.Dur)/float64(time.Millisecond))
		if sp.Bytes > 0 {
			line += fmt.Sprintf("  %d B", sp.Bytes)
		}
		if sp.Detail != "" {
			line += "  (" + sp.Detail + ")"
		}
		b = append(b, line...)
		b = append(b, '\n')
	}
	return string(b)
}

func indent(d int) string {
	const pad = "  "
	s := ""
	for i := 0; i < d; i++ {
		s += pad
	}
	return s
}
