package sodee_test

import (
	"sort"
	"testing"

	"repro/internal/netsim"
	"repro/internal/sodee"
	"repro/internal/workloads"
)

// TestMembershipTrafficScalesLinearly is the acceptance check for the
// bounded-fanout dissemination: one heartbeat round on a 64-node fabric
// must cost O(n) messages, not the all-pairs detector's O(n²). Each node
// reports to a rotating gossipFanout-wide window, so a full protocol
// period is n·fanout sends cluster-wide; the all-pairs baseline would be
// n·(n-1). State still reaches everyone because membership updates
// piggyback on every report — the rotation test below shows the windows
// cover the whole cluster within a few rounds.
func TestMembershipTrafficScalesLinearly(t *testing.T) {
	const n = 64
	cfgs := make([]sodee.NodeConfig, n)
	for i := range cfgs {
		cfgs[i] = sodee.NodeConfig{ID: i + 1, Preloaded: true}
	}
	c, err := sodee.NewCluster(workloads.Cruncher(), netsim.Gigabit, cfgs...)
	if err != nil {
		t.Fatal(err)
	}

	before := c.Net.Stats.Messages.Load()
	for _, node := range c.Nodes {
		node.Mgr.GossipTick()
	}
	sent := c.Net.Stats.Messages.Load() - before

	allPairs := uint64(n * (n - 1)) // 4032: every node reporting to every peer
	if sent == 0 {
		t.Fatal("gossip round sent no messages")
	}
	// The exact per-round cost is n·gossipFanout = 256; leave headroom for
	// indirect-probe traffic without ever letting it near quadratic.
	if budget := uint64(8 * n); sent > budget {
		t.Errorf("one gossip round sent %d messages, budget %d (all-pairs would be %d)", sent, budget, allPairs)
	}
	if sent*8 > allPairs {
		t.Errorf("round cost %d is not well under the all-pairs baseline %d", sent, allPairs)
	}
	t.Logf("64-node gossip round: %d messages (all-pairs baseline %d)", sent, allPairs)

	// The rotating window must cover every peer within a full rotation:
	// ceil((n-1)/fanout) rounds, here 16. Give it one extra and require
	// node 1 to have reported to every other node at least once.
	recipients := make(map[int]bool)
	for round := 0; round < 17; round++ {
		_, errs := c.Nodes[1].Mgr.PublishLoad()
		if len(errs) > 0 {
			t.Fatalf("round %d: unexpected send errors %v", round, errs)
		}
	}
	// Count what actually arrived: every peer must have heard from node 1.
	for id, node := range c.Nodes {
		if id == 1 {
			continue
		}
		for _, s := range node.Mgr.PeerSignals() {
			if s.Node == 1 {
				recipients[id] = true
			}
		}
	}
	var missed []int
	for id := range c.Nodes {
		if id != 1 && !recipients[id] {
			missed = append(missed, id)
		}
	}
	sort.Ints(missed)
	if len(missed) > 0 {
		t.Errorf("after a full rotation, nodes %v never heard from node 1", missed)
	}
}
