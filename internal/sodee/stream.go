package sodee

import (
	"fmt"
	"time"

	"repro/internal/serial"
	"repro/internal/wire"
)

// Streamed migrations split one migration into two wire messages: the
// control message (KindMigrate: frames, routing, classes) and a data
// message (KindMigrateData: the statics payload) sent just before it.
// The destination restores the stack while the statics are still in
// flight — capture→resume latency overlaps the bulk of the payload
// transfer — and only releases the restored thread once the statics have
// been applied. The restored job is held non-migratable (waiting) for
// that window: a steal or re-balance mid-stream would ship a stack whose
// statics never arrived.

// streamTimeout bounds how long a destination waits for a data message
// announced by a control message. The sender transmits data before
// control, so on a healthy fabric the wait is near zero; the timeout only
// fires when the sender died in between, and the sender-side Call error
// handling has long recovered the job locally by then.
const streamTimeout = 5 * time.Second

// streamStaleAfter bounds how long an unclaimed data message is stashed.
// Data normally arrives just before its control message; an entry this
// old belongs to a migration whose control message never came (sender
// died between the two sends).
const streamStaleAfter = 30 * time.Second

type streamKey struct {
	from int
	id   uint64
}

type streamEntry struct {
	ch chan []byte
	at time.Time
}

// getStream returns (creating if needed) the rendezvous entry for one
// announced stream, sweeping stale entries while it holds the lock.
func (m *Manager) getStream(from int, id uint64) *streamEntry {
	m.streamMu.Lock()
	defer m.streamMu.Unlock()
	now := time.Now()
	for k, e := range m.streams {
		if now.Sub(e.at) > streamStaleAfter {
			delete(m.streams, k)
		}
	}
	k := streamKey{from: from, id: id}
	e := m.streams[k]
	if e == nil {
		e = &streamEntry{ch: make(chan []byte, 1), at: now}
		m.streams[k] = e
	}
	return e
}

func (m *Manager) dropStream(from int, id uint64) {
	m.streamMu.Lock()
	delete(m.streams, streamKey{from: from, id: id})
	m.streamMu.Unlock()
}

// handleMigrateData receives the data half of a streamed migration and
// parks it for the control half. Data and control race freely — the TCP
// transport dispatches handlers concurrently — so this is a pure
// rendezvous: whichever side arrives first waits for the other.
func (m *Manager) handleMigrateData(from int, payload []byte) ([]byte, error) {
	r := wire.NewReader(payload)
	id := r.Uvarint()
	if err := r.Err(); err != nil {
		return nil, err
	}
	// The transport may reuse payload buffers after the handler returns;
	// the stash outlives this call, so copy.
	body := make([]byte, r.Remaining())
	copy(body, payload[r.Pos():])
	e := m.getStream(from, id)
	select {
	case e.ch <- body:
	default:
		return nil, fmt.Errorf("sodee: duplicate stream data %d from %d", id, from)
	}
	return nil, nil
}

// awaitStream blocks until the data message for (from, id) arrives.
func (m *Manager) awaitStream(from int, id uint64) ([]byte, error) {
	e := m.getStream(from, id)
	defer m.dropStream(from, id)
	select {
	case body := <-e.ch:
		return body, nil
	case <-time.After(streamTimeout):
		return nil, fmt.Errorf("sodee: stream %d from %d timed out", id, from)
	}
}

// encodeStreamStatics builds the data payload: the stream id followed by
// the statics bundles, delta-encoded against the link cache when a
// session is active.
func encodeStreamStatics(m *Manager, streamID uint64, statics []serial.ClassStatics,
	codec serial.Codec, sess *deltaSession) []byte {

	w := wire.NewWriter(256)
	w.Uvarint(streamID)
	w.Bool(sess != nil)
	w.Uvarint(uint64(len(statics)))
	for i := range statics {
		unit := serial.EncodeClassStatics(&statics[i], m.node.Prog, codec)
		if sess != nil {
			sess.writeUnit(w, unit)
		} else {
			w.Blob(unit)
		}
	}
	return w.Bytes()
}

// decodeStreamStatics parses a data payload body (stream id already
// consumed by handleMigrateData).
func (m *Manager) decodeStreamStatics(body []byte, from int, codec serial.Codec) ([]serial.ClassStatics, error) {
	r := wire.NewReader(body)
	delta := r.Bool()
	n := r.Uvarint()
	if err := r.Err(); err != nil {
		return nil, err
	}
	statics := make([]serial.ClassStatics, 0, n)
	for i := uint64(0); i < n; i++ {
		var unit []byte
		if delta {
			u, err := m.readDeltaUnit(r, from)
			if err != nil {
				return nil, err
			}
			unit = u
		} else {
			unit = r.BlobView()
			if err := r.Err(); err != nil {
				return nil, err
			}
		}
		s, err := serial.DecodeClassStatics(unit, m.node.Prog, codec)
		if err != nil {
			return nil, err
		}
		statics = append(statics, s)
	}
	return statics, nil
}

// restoreStreamed is the destination's restore path for a streamed
// migration: rebuild the stack immediately (the control message carries
// the frames), adopt the job but keep it waiting — invisible to the
// balancer and to steal requests — until the statics stream has been
// applied, then release it to run. Any failure discards the restored
// thread and returns an error to the sender, whose Call error handling
// falls back to running the job locally from the state it still holds.
func (m *Manager) restoreStreamed(from int, msg *migrateMsg, dst, dstFallback completion) (time.Duration, error) {
	n := m.node
	restoreStart := time.Now()
	th, err := RestoreDirect(n, msg.seg)
	if err != nil {
		return 0, err
	}
	job := m.adoptRemote(th, msg.seg, dst, dstFallback, msg.expectValue)
	job.chained, job.evJob, job.evOrigin = msg.chained, msg.chainJob, msg.chainOrigin
	job.mu.Lock()
	job.waiting = true // statics in flight: not capturable yet
	job.mu.Unlock()
	// Register before waiting: the job is visible (observable, countable)
	// for the whole stream window, but the waiting flag keeps it out of
	// every steal/re-balance candidate set.
	m.registerRemote(job)

	discard := func() {
		m.jobs.Delete(job.ID)
		// The restored thread never ran; emptying its frames makes Run
		// return immediately, which unregisters it from the VM.
		th.Frames = th.Frames[:0]
		th.Run()
	}

	body, err := m.awaitStream(from, msg.streamID)
	if err != nil {
		discard()
		return 0, err
	}
	statics, err := m.decodeStreamStatics(body, from, msg.codec)
	if err != nil {
		discard()
		return 0, err
	}
	applyStatics(n.VM, &serial.CapturedState{Statics: statics})
	restoreDur := time.Since(restoreStart)
	job.mu.Lock()
	job.waiting = false
	job.mu.Unlock()
	go m.runRemoteJob(th, job)
	return restoreDur, nil
}
