package sodee_test

import (
	"testing"
	"time"

	"repro/internal/sodee"
	"repro/internal/value"
)

func collectUntilClosed(t *testing.T, ch <-chan sodee.JobEvent, within time.Duration) []sodee.JobEvent {
	t.Helper()
	var out []sodee.JobEvent
	deadline := time.After(within)
	for {
		select {
		case ev, ok := <-ch:
			if !ok {
				return out
			}
			out = append(out, ev)
		case <-deadline:
			t.Fatalf("stream never closed; got %d events: %+v", len(out), out)
		}
	}
}

func TestBusReplayLiveAndTerminal(t *testing.T) {
	b := sodee.NewBus(1)
	b.Publish(sodee.JobEvent{Job: 7, Kind: sodee.EvStarted, From: 1, To: 1})
	b.Publish(sodee.JobEvent{Job: 7, Kind: sodee.EvMigrated, From: 1, To: 2, Hops: 1})
	if !b.Known(7) || b.Known(8) {
		t.Fatalf("Known: got %v/%v, want true/false", b.Known(7), b.Known(8))
	}

	ch, cancel := b.Subscribe(7)
	defer cancel()
	// Replayed history arrives first, in publish order, with seqs.
	first, second := <-ch, <-ch
	if first.Kind != sodee.EvStarted || second.Kind != sodee.EvMigrated {
		t.Fatalf("replay order wrong: %v then %v", first.Kind, second.Kind)
	}
	if first.Seq == 0 || second.Seq <= first.Seq {
		t.Errorf("seqs not increasing: %d, %d", first.Seq, second.Seq)
	}
	// Then live events; the terminal closes the stream.
	b.Publish(sodee.JobEvent{Job: 7, Kind: sodee.EvCompleted, From: 1, To: 1, Result: 42})
	got := collectUntilClosed(t, ch, 5*time.Second)
	if len(got) != 1 || got[0].Kind != sodee.EvCompleted || got[0].Result != 42 {
		t.Fatalf("live events = %+v, want one completion", got)
	}
	// Events after the terminal are dropped.
	b.Publish(sodee.JobEvent{Job: 7, Kind: sodee.EvMigrated, From: 2, To: 3})

	// A fresh subscription replays the full (terminal-capped) history and
	// closes immediately.
	ch2, cancel2 := b.Subscribe(7)
	defer cancel2()
	replay := collectUntilClosed(t, ch2, 5*time.Second)
	if len(replay) != 3 || replay[2].Kind != sodee.EvCompleted {
		t.Fatalf("post-terminal replay = %+v", replay)
	}
}

func TestBusCancelIsIdempotent(t *testing.T) {
	b := sodee.NewBus(1)
	b.Publish(sodee.JobEvent{Job: 1, Kind: sodee.EvStarted})
	ch, cancel := b.Subscribe(1)
	<-ch // replayed start
	cancel()
	cancel() // second cancel must not panic
	if _, ok := <-ch; ok {
		t.Error("canceled subscription should be closed")
	}
	// Publishing after cancel must not panic or deliver.
	b.Publish(sodee.JobEvent{Job: 1, Kind: sodee.EvCompleted})
}

func TestBusEvictsOldestEndedJobs(t *testing.T) {
	b := sodee.NewBus(1)
	const extra = 10
	for i := 0; i < 512+extra; i++ {
		id := uint64(i + 1)
		b.Publish(sodee.JobEvent{Job: id, Kind: sodee.EvStarted})
		b.Publish(sodee.JobEvent{Job: id, Kind: sodee.EvCompleted})
	}
	for i := 0; i < extra; i++ {
		if b.Known(uint64(i + 1)) {
			t.Fatalf("ended job %d should have been evicted", i+1)
		}
	}
	if !b.Known(512 + extra) {
		t.Error("newest job evicted")
	}
}

// TestBusPinsLiveJobs pins the retention contract a submit burst relies
// on: pressure above the tracked-job cap evicts ended streams only, so a
// job still running stays Known — its watcher may not have attached yet —
// however many younger jobs pile in behind it.
func TestBusPinsLiveJobs(t *testing.T) {
	b := sodee.NewBus(1)
	b.Publish(sodee.JobEvent{Job: 1, Kind: sodee.EvStarted}) // live: no terminal
	for i := 0; i < 2*512; i++ {
		id := uint64(1000 + i)
		b.Publish(sodee.JobEvent{Job: id, Kind: sodee.EvStarted})
		b.Publish(sodee.JobEvent{Job: id, Kind: sodee.EvCompleted})
	}
	if !b.Known(1) {
		t.Fatal("live job evicted by ended-stream pressure")
	}
	// Only past the hard pinning ceiling do live streams go too.
	b2 := sodee.NewBus(1)
	const ceiling = 8 * 512
	for i := 0; i < ceiling+100; i++ {
		b2.Publish(sodee.JobEvent{Job: uint64(i + 1), Kind: sodee.EvStarted})
	}
	if b2.Known(1) {
		t.Error("oldest live job should fall to the pinning ceiling")
	}
	if !b2.Known(ceiling + 100) {
		t.Error("newest live job evicted")
	}
}

// TestBusShadowDischargeAndLateSubscriber pins the shadow lifecycle for
// the quiet-discharge path: a subscriber parked on the shadow before the
// origin completes sees one EvLagged marker plus the terminal; one that
// attaches after the discharge replays the retained terminal and closes —
// it must not park forever on a stream nothing will ever promote — and
// Known keeps answering true afterwards.
func TestBusShadowDischargeAndLateSubscriber(t *testing.T) {
	b := sodee.NewBus(2)
	b.RegisterShadow(9)
	if !b.Known(9) {
		t.Fatal("shadow not Known before any event")
	}
	early, cancelEarly := b.Subscribe(9)
	defer cancelEarly()

	term := sodee.JobEvent{Job: 9, Kind: sodee.EvCompleted, Result: 7}
	b.DischargeShadow(9, term)

	got := collectUntilClosed(t, early, 5*time.Second)
	if len(got) != 2 || got[0].Kind != sodee.EvLagged || got[1].Kind != sodee.EvCompleted {
		t.Fatalf("parked subscriber saw %+v, want EvLagged then EvCompleted", got)
	}
	if got[1].Result != 7 || got[1].Origin != 2 {
		t.Errorf("terminal = %+v, want result 7 re-stamped to origin 2", got[1])
	}

	if !b.Known(9) {
		t.Error("discharged shadow no longer Known")
	}
	late, cancelLate := b.Subscribe(9)
	defer cancelLate()
	replay := collectUntilClosed(t, late, 5*time.Second)
	if len(replay) != 1 || replay[0].Kind != sodee.EvCompleted || replay[0].Result != 7 {
		t.Fatalf("late subscriber replay = %+v, want just the terminal", replay)
	}

	// A second discharge is a no-op: the history keeps exactly one terminal.
	b.DischargeShadow(9, term)
	again, cancelAgain := b.Subscribe(9)
	defer cancelAgain()
	if replay := collectUntilClosed(t, again, 5*time.Second); len(replay) != 1 {
		t.Fatalf("after duplicate discharge, replay = %+v, want one terminal", replay)
	}
}

// TestBusSlowWatcherCoalesces pins the backpressure contract for per-job
// subscriptions: a subscriber that never reads may lose intermediate
// events (replaced by a single EvLagged marker carrying the drop count),
// but the terminal event is always delivered, always last, exactly once.
func TestBusSlowWatcherCoalesces(t *testing.T) {
	b := sodee.NewBus(3)
	b.Publish(sodee.JobEvent{Job: 1, Kind: sodee.EvStarted})
	ch, cancel := b.Subscribe(1)
	defer cancel()

	// Publish far more non-terminal events than the subscriber ring holds,
	// without reading a single one.
	const burst = 4096
	for i := 0; i < burst; i++ {
		b.Publish(sodee.JobEvent{Job: 1, Kind: sodee.EvMigrated, From: 1, To: 2})
	}
	b.Publish(sodee.JobEvent{Job: 1, Kind: sodee.EvCompleted, Result: 77})

	got := collectUntilClosed(t, ch, 30*time.Second)
	if len(got) >= burst {
		t.Fatalf("slow watcher saw %d events; coalescing never kicked in", len(got))
	}
	var lagged, terminals int
	var droppedTotal int64
	for i, ev := range got {
		if ev.Origin != 3 {
			t.Fatalf("event %d origin = %d, want bus origin 3", i, ev.Origin)
		}
		switch ev.Kind {
		case sodee.EvLagged:
			lagged++
			droppedTotal += ev.Result
		case sodee.EvCompleted:
			terminals++
		}
	}
	if lagged == 0 {
		t.Error("no EvLagged marker despite overflow")
	}
	if droppedTotal == 0 {
		t.Error("EvLagged markers carry no drop count")
	}
	if terminals != 1 {
		t.Fatalf("terminal delivered %d times, want exactly once", terminals)
	}
	if last := got[len(got)-1]; last.Kind != sodee.EvCompleted || last.Result != 77 {
		t.Fatalf("stream must end with the terminal, ended with %+v", last)
	}
}

// TestBusFirehoseEviction pins the other half of the contract: a
// firehose may coalesce non-terminal events forever, but once its ring
// holds nothing except job *outcomes* and the consumer still is not
// draining, it is evicted (channel closed) rather than silently losing a
// completion or stalling the bus.
func TestBusFirehoseEviction(t *testing.T) {
	b := sodee.NewBus(1)
	ch, cancel := b.SubscribeAll()
	defer cancel()

	// Never read. Flood with terminal events: each is undroppable, so the
	// ring fills with outcomes and the subscriber must be evicted.
	for i := 0; i < 10_000; i++ {
		b.Publish(sodee.JobEvent{Job: uint64(i + 1), Kind: sodee.EvCompleted, Result: int64(i)})
	}

	deadline := time.After(30 * time.Second)
	for {
		select {
		case _, ok := <-ch:
			if !ok {
				return // evicted: channel closed
			}
		case <-deadline:
			t.Fatal("unread firehose was never evicted")
		}
	}
}

// TestBusFirehoseKeepsUpSeesEverything is the positive complement: a
// firehose that drains promptly sees every published event, tagged with
// the bus origin, and cancel ends the stream.
func TestBusFirehoseKeepsUpSeesEverything(t *testing.T) {
	b := sodee.NewBus(2)
	ch, cancel := b.SubscribeAll()

	const n = 200
	done := make(chan []sodee.JobEvent)
	go func() {
		var out []sodee.JobEvent
		for ev := range ch {
			out = append(out, ev)
			if len(out) == n {
				break
			}
		}
		done <- out
	}()
	for i := 0; i < n; i++ {
		b.Publish(sodee.JobEvent{Job: uint64(i + 1), Kind: sodee.EvStarted})
	}
	select {
	case got := <-done:
		for i, ev := range got {
			if ev.Job != uint64(i+1) || ev.Origin != 2 || ev.Kind != sodee.EvStarted {
				t.Fatalf("event %d = %+v", i, ev)
			}
		}
	case <-time.After(30 * time.Second):
		t.Fatal("firehose never delivered all events")
	}
	cancel()
	for {
		if _, ok := <-ch; !ok {
			return
		}
	}
}

func TestJobEventCodecRoundTrip(t *testing.T) {
	in := sodee.JobEvent{
		Job: 9, Origin: 5, Seq: 4, Time: time.Unix(0, 1_234_567_890),
		Kind: sodee.EvMigrated, From: 3, To: -7,
		Reason: sodee.ReasonStolen, Hops: 2,
		Result: -99, Err: "boom",
	}
	out, err := sodee.DecodeJobEvent(sodee.EncodeJobEvent(in))
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip mismatch:\n in  %+v\n out %+v", in, out)
	}
	if _, err := sodee.DecodeJobEvent([]byte{1, 2}); err == nil {
		t.Error("truncated event should fail to decode")
	}
}

// TestManualMigrationEventStream checks the origin-side story of one
// hand-driven whole-stack migration: started → migrated (manual, hop 1)
// → result-flushed home → completed with the right result.
func TestManualMigrationEventStream(t *testing.T) {
	c, g := sodCluster(t, []int{1, 2}, false)
	home := c.Nodes[1]
	d := makeData(t, home)

	job, err := home.Mgr.StartJob("main", value.RefVal(d), value.Int(testIters))
	if err != nil {
		t.Fatal(err)
	}
	ch, cancel := home.Mgr.Events().Subscribe(job.ID)
	defer cancel()

	migrateWhileRunning(t, g, func() (*sodee.MigrationMetrics, error) {
		return home.Mgr.MigrateSOD(job, sodee.SODOptions{
			NFrames: sodee.WholeStack, Dest: 2, Flow: sodee.FlowReturnHome,
		})
	})
	res, err := job.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res.I != expectedResult(testIters) {
		t.Fatalf("result = %d, want %d", res.I, expectedResult(testIters))
	}

	events := collectUntilClosed(t, ch, 30*time.Second)
	kinds := make([]sodee.EventKind, len(events))
	for i, ev := range events {
		kinds[i] = ev.Kind
	}
	want := []sodee.EventKind{sodee.EvStarted, sodee.EvMigrated, sodee.EvResultFlushed, sodee.EvCompleted}
	if len(kinds) != len(want) {
		t.Fatalf("event kinds = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("event kinds = %v, want %v", kinds, want)
		}
	}
	mig := events[1]
	if mig.From != 1 || mig.To != 2 || mig.Hops != 1 || mig.Reason != sodee.ReasonManual {
		t.Errorf("migration event wrong: %+v", mig)
	}
	fl := events[2]
	if fl.From != 2 || fl.To != 1 {
		t.Errorf("flush event wrong: %+v", fl)
	}
	done := events[3]
	if done.Result != expectedResult(testIters) || done.Err != "" {
		t.Errorf("completion event wrong: %+v", done)
	}
}

// TestFailedMigrationEventStream aims a migration at a crashed node and
// checks the watcher sees the whole truth: the announced hop, the
// transfer failure with local recovery, and a clean completion on the
// source node.
func TestFailedMigrationEventStream(t *testing.T) {
	c, g := sodCluster(t, []int{1, 2}, false)
	home := c.Nodes[1]
	d := makeData(t, home)
	c.Net.SetNodeDown(2, true)

	job, err := home.Mgr.StartJob("main", value.RefVal(d), value.Int(testIters))
	if err != nil {
		t.Fatal(err)
	}
	ch, cancel := home.Mgr.Events().Subscribe(job.ID)
	defer cancel()

	<-g.reached
	mig := make(chan error, 1)
	go func() {
		_, merr := home.Mgr.MigrateSOD(job, sodee.SODOptions{
			NFrames: sodee.WholeStack, Dest: 2, Flow: sodee.FlowReturnHome,
		})
		mig <- merr
	}()
	time.Sleep(2 * time.Millisecond)
	close(g.release)
	if merr := <-mig; merr == nil {
		t.Fatal("migration to a downed node should fail")
	}
	res, err := job.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res.I != expectedResult(testIters) {
		t.Fatalf("result = %d, want %d", res.I, expectedResult(testIters))
	}

	events := collectUntilClosed(t, ch, 30*time.Second)
	kinds := make([]sodee.EventKind, len(events))
	for i, ev := range events {
		kinds[i] = ev.Kind
	}
	want := []sodee.EventKind{sodee.EvStarted, sodee.EvMigrated, sodee.EvMigrationFailed, sodee.EvCompleted}
	if len(kinds) != len(want) {
		t.Fatalf("event kinds = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("event kinds = %v, want %v", kinds, want)
		}
	}
	if fail := events[2]; fail.From != 1 || fail.To != 2 {
		t.Errorf("failure event wrong: %+v", fail)
	}
	if done := events[3]; done.From != 1 || done.Err != "" {
		t.Errorf("completion event wrong: %+v", done)
	}
}

// TestMultiHopEventsForwardedToOrigin drives a job through two manual
// hops (1 → 2 → 3) and checks that the second hop — initiated by an
// intermediate node acting on a migrated-in job — still lands in the
// origin's event stream, forwarded over the wire, with the accumulated
// hop count.
func TestMultiHopEventsForwardedToOrigin(t *testing.T) {
	c, g := sodCluster(t, []int{1, 2, 3}, true)
	home := c.Nodes[1]
	d := makeData(t, home)

	const iters = 3_000_000 // long enough to re-migrate mid-flight
	job, err := home.Mgr.StartJob("main", value.RefVal(d), value.Int(iters))
	if err != nil {
		t.Fatal(err)
	}
	ch, cancel := home.Mgr.Events().Subscribe(job.ID)
	defer cancel()

	migrateWhileRunning(t, g, func() (*sodee.MigrationMetrics, error) {
		return home.Mgr.MigrateSOD(job, sodee.SODOptions{
			NFrames: sodee.WholeStack, Dest: 2, Flow: sodee.FlowReturnHome,
		})
	})

	// The migrated-in job surfaces as a remote wrapper at node 2 once its
	// restoration finishes; hop it onward to node 3.
	var hosted *sodee.Job
	deadline := time.Now().Add(20 * time.Second)
	for hosted == nil {
		for _, rj := range c.Nodes[2].Mgr.RunningJobs() {
			if rj.Remote() {
				hosted = rj
			}
		}
		if hosted == nil {
			if time.Now().After(deadline) {
				t.Fatal("node 2 never exposed the migrated-in job")
			}
			time.Sleep(time.Millisecond)
		}
	}
	if _, err := c.Nodes[2].Mgr.MigrateSOD(hosted, sodee.SODOptions{
		NFrames: sodee.WholeStack, Dest: 3, Flow: sodee.FlowReturnHome,
	}); err != nil {
		t.Fatalf("second hop: %v", err)
	}

	res, err := job.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res.I != expectedResult(iters) {
		t.Fatalf("result = %d, want %d", res.I, expectedResult(iters))
	}

	events := collectUntilClosed(t, ch, 30*time.Second)
	var hops []sodee.JobEvent
	for _, ev := range events {
		if ev.Kind == sodee.EvMigrated {
			hops = append(hops, ev)
		}
	}
	if len(hops) != 2 {
		t.Fatalf("migration events = %+v, want 2 hops", hops)
	}
	if hops[0].From != 1 || hops[0].To != 2 || hops[0].Hops != 1 {
		t.Errorf("first hop wrong: %+v", hops[0])
	}
	if hops[1].From != 2 || hops[1].To != 3 || hops[1].Hops != 2 {
		t.Errorf("forwarded second hop wrong: %+v", hops[1])
	}
	last := events[len(events)-1]
	if last.Kind != sodee.EvCompleted || last.Result != expectedResult(iters) {
		t.Errorf("terminal event wrong: %+v", last)
	}
}
