package sodee_test

import (
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/asm"
	"repro/internal/bytecode"
	"repro/internal/netsim"
	"repro/internal/preprocess"
	"repro/internal/sodee"
	"repro/internal/value"
	"repro/internal/vm"
)

// buildWorkload assembles a three-level computation suitable for SOD
// tests: main → level2 → level3, where level3 loops over a Data object's
// fields (so a migrated level3 faults the object in remotely), updates a
// counter field (write-back) and allocates a Result object that escapes
// (re-homing). A test_gate native lets the driver align migration with a
// known stack shape.
func buildWorkload() *bytecode.Program {
	pb := asm.NewProgram()
	pb.Native("test_gate", 0, false)

	data := pb.Class("Data", "")
	data.Field("a", value.KindInt)
	data.Field("b", value.KindInt)
	data.Field("hits", value.KindInt)

	res := pb.Class("Result", "")
	res.Field("total", value.KindInt)

	l3 := pb.Func("level3", true, "d", "iters")
	l3.Line().CallNat("test_gate", 0)
	l3.Line().Int(0).Store("sum")
	l3.Line().Int(0).Store("i")
	l3.Label("loop")
	l3.Line().Load("i").Load("iters").Ge().Jnz("done")
	l3.Line().Load("sum").Load("d").GetF("Data", "a").Add().Store("sum")
	l3.Line().Load("sum").Load("d").GetF("Data", "b").Add().Store("sum")
	l3.Line().Load("i").Int(1).Add().Store("i")
	l3.Line().Jmp("loop")
	l3.Label("done")
	l3.Line().Load("d").Load("d").GetF("Data", "hits").Int(1).Add().PutF("Data", "hits")
	l3.Line().Load("sum").RetV()

	l2 := pb.Func("level2", true, "d", "iters")
	l2.Line().Load("d").Load("iters").Call("level3", 2).Store("s")
	l2.Line().Load("s").Int(1000).Add().RetV()

	mn := pb.Func("main", true, "d", "iters")
	mn.Line().Load("d").Load("iters").Call("level2", 2).Store("s")
	mn.Line().New("Result").Store("r")
	mn.Line().Load("r").Load("s").PutF("Result", "total")
	mn.Line().Load("r").GetF("Result", "total").RetV()

	return pb.MustBuild()
}

// gate coordinates the driver with the workload's execution point.
type gate struct {
	mu      sync.Mutex
	reached chan struct{}
	release chan struct{}
	fired   bool
}

func newGate() *gate {
	return &gate{reached: make(chan struct{}), release: make(chan struct{})}
}

func (g *gate) native(t *vm.Thread, args []value.Value) (value.Value, *vm.Raised) {
	g.mu.Lock()
	first := !g.fired
	g.fired = true
	g.mu.Unlock()
	if first {
		close(g.reached)
		<-g.release
	}
	return value.Value{}, nil
}

// sodCluster builds a SODEE cluster over the faulting-preprocessed
// workload with a gate bound on every node.
func sodCluster(t *testing.T, nodeIDs []int, preloadWorkers bool) (*sodee.Cluster, *gate) {
	t.Helper()
	prog := preprocess.MustPreprocess(buildWorkload(),
		preprocess.Options{Mode: preprocess.ModeFaulting, Restore: true})
	var cfgs []sodee.NodeConfig
	for i, id := range nodeIDs {
		cfgs = append(cfgs, sodee.NodeConfig{
			ID: id, System: sodee.SysSODEE, Preloaded: i == 0 || preloadWorkers,
		})
	}
	c, err := sodee.NewCluster(prog, netsim.Gigabit, cfgs...)
	if err != nil {
		t.Fatal(err)
	}
	g := newGate()
	for _, n := range c.Nodes {
		n.VM.BindNative("test_gate", g.native)
	}
	return c, g
}

// runLocal computes the expected result without migration.
func expectedResult(iters int64) int64 {
	// sum = iters*(3+4); +1000 in level2; Result.total in main.
	return iters*7 + 1000
}

func makeData(t *testing.T, n *sodee.Node) value.Ref {
	t.Helper()
	cid := n.Prog.ClassByName("Data")
	ref, err := n.VM.Heap.Alloc(cid, n.Prog.NumInstanceFields(cid))
	if err != nil {
		t.Fatal(err)
	}
	o := n.VM.Heap.MustGet(ref)
	o.Fields[0] = value.Int(3)
	o.Fields[1] = value.Int(4)
	o.Fields[2] = value.Int(0)
	return ref
}

// migrateWhileRunning starts the job, waits for the gate, issues the
// migration concurrently with releasing the gate, and returns the
// migration metrics.
func migrateWhileRunning(t *testing.T, g *gate, do func() (*sodee.MigrationMetrics, error)) *sodee.MigrationMetrics {
	t.Helper()
	<-g.reached
	type out struct {
		mm  *sodee.MigrationMetrics
		err error
	}
	ch := make(chan out, 1)
	go func() {
		mm, err := do()
		ch <- out{mm, err}
	}()
	time.Sleep(2 * time.Millisecond) // let the suspend request land first
	close(g.release)
	o := <-ch
	if o.err != nil {
		t.Fatalf("migration failed: %v", o.err)
	}
	return o.mm
}

const testIters = 300_000

func TestFig1aReturnHome(t *testing.T) {
	c, g := sodCluster(t, []int{1, 2}, false)
	home := c.Nodes[1]
	d := makeData(t, home)

	job, err := home.Mgr.StartJob("main", value.RefVal(d), value.Int(testIters))
	if err != nil {
		t.Fatal(err)
	}
	mm := migrateWhileRunning(t, g, func() (*sodee.MigrationMetrics, error) {
		return home.Mgr.MigrateSOD(job, sodee.SODOptions{NFrames: 1, Dest: 2, Flow: sodee.FlowReturnHome})
	})
	res, err := job.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res.I != expectedResult(testIters) {
		t.Errorf("result = %d, want %d", res.I, expectedResult(testIters))
	}
	if mm.StateBytes <= 0 || mm.Latency <= 0 {
		t.Errorf("suspicious metrics: %+v", mm)
	}
	// level3 ran remotely: the worker must have faulted Data in.
	worker := c.Nodes[2]
	if worker.ObjMan.Stats.Fetches == 0 {
		t.Error("destination never fetched the Data object")
	}
	// Write-back: hits incremented at the remote node must be visible home.
	if got := home.VM.Heap.MustGet(d).Fields[2].I; got != 1 {
		t.Errorf("Data.hits = %d at home, want 1 (write-back)", got)
	}
}

func TestFig1bTotalMigration(t *testing.T) {
	c, g := sodCluster(t, []int{1, 2}, false)
	home := c.Nodes[1]
	d := makeData(t, home)
	job, err := home.Mgr.StartJob("main", value.RefVal(d), value.Int(testIters))
	if err != nil {
		t.Fatal(err)
	}
	migrateWhileRunning(t, g, func() (*sodee.MigrationMetrics, error) {
		return home.Mgr.MigrateSOD(job, sodee.SODOptions{NFrames: 1, Dest: 2, Flow: sodee.FlowTotal})
	})
	res, err := job.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res.I != expectedResult(testIters) {
		t.Errorf("result = %d, want %d", res.I, expectedResult(testIters))
	}
	if th := job.Thread(); th != nil {
		t.Error("job should have no home thread after total migration")
	}
}

func TestFig1cForwardWorkflow(t *testing.T) {
	c, g := sodCluster(t, []int{1, 2, 3}, false)
	home := c.Nodes[1]
	d := makeData(t, home)
	job, err := home.Mgr.StartJob("main", value.RefVal(d), value.Int(testIters))
	if err != nil {
		t.Fatal(err)
	}
	migrateWhileRunning(t, g, func() (*sodee.MigrationMetrics, error) {
		return home.Mgr.MigrateSOD(job, sodee.SODOptions{
			NFrames: 1, Dest: 2, Flow: sodee.FlowForward, ForwardTo: 3,
		})
	})
	res, err := job.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res.I != expectedResult(testIters) {
		t.Errorf("result = %d, want %d", res.I, expectedResult(testIters))
	}
}

func TestSODSegmentOfTwoFrames(t *testing.T) {
	c, g := sodCluster(t, []int{1, 2}, false)
	home := c.Nodes[1]
	d := makeData(t, home)
	job, err := home.Mgr.StartJob("main", value.RefVal(d), value.Int(testIters))
	if err != nil {
		t.Fatal(err)
	}
	migrateWhileRunning(t, g, func() (*sodee.MigrationMetrics, error) {
		return home.Mgr.MigrateSOD(job, sodee.SODOptions{NFrames: 2, Dest: 2, Flow: sodee.FlowReturnHome})
	})
	res, err := job.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res.I != expectedResult(testIters) {
		t.Errorf("result = %d, want %d", res.I, expectedResult(testIters))
	}
}

func TestClassShippingOnDemand(t *testing.T) {
	c, g := sodCluster(t, []int{1, 2}, false) // worker not preloaded
	home := c.Nodes[1]
	worker := c.Nodes[2]
	d := makeData(t, home)
	dataCID := home.Prog.ClassByName("Data")
	if worker.VM.ClassLoaded(dataCID) {
		t.Fatal("worker should start cold")
	}
	job, err := home.Mgr.StartJob("main", value.RefVal(d), value.Int(testIters))
	if err != nil {
		t.Fatal(err)
	}
	migrateWhileRunning(t, g, func() (*sodee.MigrationMetrics, error) {
		return home.Mgr.MigrateSOD(job, sodee.SODOptions{NFrames: 1, Dest: 2, Flow: sodee.FlowReturnHome})
	})
	if _, err := job.Wait(); err != nil {
		t.Fatal(err)
	}
	if !worker.VM.ClassLoaded(dataCID) {
		t.Error("worker should have loaded Data on demand")
	}
}

func TestPinnedFrameRefusesMigration(t *testing.T) {
	c, g := sodCluster(t, []int{1, 2}, false)
	home := c.Nodes[1]
	d := makeData(t, home)
	job, err := home.Mgr.StartJob("main", value.RefVal(d), value.Int(testIters))
	if err != nil {
		t.Fatal(err)
	}
	<-g.reached
	// Pin the top frame while the thread is blocked in the gate native.
	th := job.Thread()
	th.Top().Pinned = true
	errCh := make(chan error, 1)
	go func() {
		_, merr := home.Mgr.MigrateSOD(job, sodee.SODOptions{NFrames: 1, Dest: 2, Flow: sodee.FlowReturnHome})
		errCh <- merr
	}()
	time.Sleep(2 * time.Millisecond)
	close(g.release)
	if merr := <-errCh; merr == nil || !strings.Contains(merr.Error(), "pinned") {
		t.Fatalf("expected pinned-frame refusal, got %v", merr)
	}
	res, err := job.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res.I != expectedResult(testIters) {
		t.Errorf("job should still complete locally: %d", res.I)
	}
}

func TestProcessMigrationGJavaMPI(t *testing.T) {
	prog := preprocess.MustPreprocess(buildWorkload(),
		preprocess.Options{Mode: preprocess.ModeNone, Restore: true})
	c, err := sodee.NewCluster(prog, netsim.Gigabit,
		sodee.NodeConfig{ID: 1, System: sodee.SysGJavaMPI, Preloaded: true},
		sodee.NodeConfig{ID: 2, System: sodee.SysGJavaMPI, Preloaded: true},
	)
	if err != nil {
		t.Fatal(err)
	}
	g := newGate()
	for _, n := range c.Nodes {
		n.VM.BindNative("test_gate", g.native)
	}
	home := c.Nodes[1]
	d := makeData(t, home)
	job, err := home.Mgr.StartJob("main", value.RefVal(d), value.Int(testIters))
	if err != nil {
		t.Fatal(err)
	}
	mm := migrateWhileRunning(t, g, func() (*sodee.MigrationMetrics, error) {
		return home.Mgr.MigrateProcess(job, 2)
	})
	res, err := job.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res.I != expectedResult(testIters) {
		t.Errorf("result = %d, want %d", res.I, expectedResult(testIters))
	}
	if mm.HeapBytes == 0 {
		t.Error("process migration should report heap bytes")
	}
	// Eager copy: the destination should never fault objects in.
	if c.Nodes[2].ObjMan.Stats.Fetches != 0 {
		t.Errorf("eager process migration should not fault (%d fetches)", c.Nodes[2].ObjMan.Stats.Fetches)
	}
}

func TestThreadMigrationJessica2(t *testing.T) {
	prog := preprocess.MustPreprocess(buildWorkload(),
		preprocess.Options{Mode: preprocess.ModeStatusCheck, Restore: false})
	c, err := sodee.NewCluster(prog, netsim.Gigabit,
		sodee.NodeConfig{ID: 1, System: sodee.SysJessica2, Preloaded: true},
		sodee.NodeConfig{ID: 2, System: sodee.SysJessica2, Preloaded: true},
	)
	if err != nil {
		t.Fatal(err)
	}
	g := newGate()
	for _, n := range c.Nodes {
		n.VM.BindNative("test_gate", g.native)
	}
	home := c.Nodes[1]
	d := makeData(t, home)
	job, err := home.Mgr.StartJob("main", value.RefVal(d), value.Int(testIters/10))
	if err != nil {
		t.Fatal(err)
	}
	migrateWhileRunning(t, g, func() (*sodee.MigrationMetrics, error) {
		return home.Mgr.MigrateThread(job, 2)
	})
	res, err := job.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res.I != expectedResult(testIters/10) {
		t.Errorf("result = %d, want %d", res.I, expectedResult(testIters/10))
	}
	// DSM: the destination fetched the Data object through status checks.
	if c.Nodes[2].ObjMan.Stats.Fetches == 0 {
		t.Error("thread migration should fetch heap objects on demand")
	}
}

func TestVMMigrationXen(t *testing.T) {
	prog := preprocess.MustPreprocess(buildWorkload(),
		preprocess.Options{Mode: preprocess.ModeNone, Restore: false})
	c, err := sodee.NewCluster(prog, netsim.Gigabit,
		sodee.NodeConfig{ID: 1, System: sodee.SysXen, Preloaded: true, ImageBytes: 4 << 20},
		sodee.NodeConfig{ID: 2, System: sodee.SysXen, Preloaded: true, ImageBytes: 4 << 20},
	)
	if err != nil {
		t.Fatal(err)
	}
	g := newGate()
	for _, n := range c.Nodes {
		n.VM.BindNative("test_gate", g.native)
	}
	home := c.Nodes[1]
	d := makeData(t, home)
	job, err := home.Mgr.StartJob("main", value.RefVal(d), value.Int(testIters/10))
	if err != nil {
		t.Fatal(err)
	}
	mm := migrateWhileRunning(t, g, func() (*sodee.MigrationMetrics, error) {
		return home.Mgr.MigrateVM(job, sodee.VMMigrateOptions{Dest: 2})
	})
	res, err := job.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res.I != expectedResult(testIters/10) {
		t.Errorf("result = %d, want %d", res.I, expectedResult(testIters/10))
	}
	if home.Location() != 2 {
		t.Errorf("guest location = %d, want 2 after handover", home.Location())
	}
	if mm.Rounds == 0 {
		t.Error("expected at least one pre-copy round")
	}
	if mm.Freeze <= 0 || mm.Freeze >= mm.Latency {
		t.Errorf("freeze (%v) should be a small part of latency (%v)", mm.Freeze, mm.Latency)
	}
}

func TestMigrationLatencyBreakdownSane(t *testing.T) {
	c, g := sodCluster(t, []int{1, 2}, true)
	home := c.Nodes[1]
	d := makeData(t, home)
	job, err := home.Mgr.StartJob("main", value.RefVal(d), value.Int(testIters))
	if err != nil {
		t.Fatal(err)
	}
	mm := migrateWhileRunning(t, g, func() (*sodee.MigrationMetrics, error) {
		return home.Mgr.MigrateSOD(job, sodee.SODOptions{NFrames: 1, Dest: 2, Flow: sodee.FlowReturnHome})
	})
	if _, err := job.Wait(); err != nil {
		t.Fatal(err)
	}
	if mm.Capture <= 0 || mm.Transfer <= 0 || mm.Restore <= 0 {
		t.Errorf("all breakdown components should be positive: %+v", mm)
	}
	if mm.Latency != mm.Capture+mm.Transfer+mm.Restore {
		t.Error("latency should be the sum of its parts")
	}
}

func TestJobWithoutMigrationRunsLocally(t *testing.T) {
	c, g := sodCluster(t, []int{1, 2}, true)
	close(g.release) // never gate
	home := c.Nodes[1]
	d := makeData(t, home)
	job, err := home.Mgr.StartJob("main", value.RefVal(d), value.Int(1000))
	if err != nil {
		t.Fatal(err)
	}
	res, err := job.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res.I != expectedResult(1000) {
		t.Errorf("result = %d, want %d", res.I, expectedResult(1000))
	}
}
