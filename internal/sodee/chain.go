package sodee

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/serial"
	"repro/internal/wire"
)

// The chain executor: Fig 1c flow-forwarding generalized to N links and
// made crash-tolerant. A chain plan splits a parked stack into
// consecutive segments; the residual links are planted on their nodes
// *before* the top segment ships ("state restored ahead of the passing
// of control", §II.B), each link's completion addressed to the link
// below it, so when a segment pops its return value hops straight to the
// next node — control never bounces through the origin, and each stage
// boundary crosses the wire exactly once.
//
// Failure posture — a crash never wedges the chain:
//
//   - A link whose node is unreachable at plant time degrades to a local
//     plant on the planning node (the FlowReturn-shaped path: the value
//     comes back here and the link runs locally).
//   - A link whose node dies *between* plant and forward is covered by a
//     recovery route: the planning node retains the link's captured
//     frames, and the completion chain carries the recovery token as a
//     fallback address — the node holding the value reroutes it there,
//     the link is rebuilt at the origin and the chain carries on. The
//     orphaned plant on the dead node never receives its value, so the
//     link still runs exactly once.
//   - A link that *has* started executing is an ordinary migrated-in job
//     (see dispatchRoute): re-balance, steal and the crash-fallback paths
//     all apply, and its result flushes with the usual retry patience.
//
// MigrateSOD's FlowForward delegates here (a manual forward is a two-link
// chain), so the hand-driven API and the planner share one code path.

// ErrChainNotPlanned reports that the plan callback declined to chain the
// job — not a failure, just "leave it where it is".
var ErrChainNotPlanned = errors.New("sodee: no chain planned")

// ChainPlanFunc produces the plan for a parked thread, given its frame
// signals top-first. Returning ErrChainNotPlanned resumes the thread
// untouched; any other error aborts the migration.
type ChainPlanFunc func(frames []policy.FrameSignal) (policy.ChainPlan, error)

// validateChainPlan rejects plans the executor cannot run: wrong frame
// total, empty links, a local link anywhere but the tail, a pinned frame
// in a remote link, or fewer than two links.
func validateChainPlan(plan policy.ChainPlan, frames []policy.FrameSignal, local int) error {
	s := len(plan.Segments)
	if s < 2 {
		return fmt.Errorf("sodee: chain plan needs at least 2 segments, got %d", s)
	}
	total := 0
	for i, seg := range plan.Segments {
		if seg.Frames < 1 {
			return fmt.Errorf("sodee: chain segment %d is empty", i)
		}
		if seg.Dest == local && i != s-1 {
			return fmt.Errorf("sodee: chain segment %d/%d placed locally (only the tail may stay)", i, s)
		}
		if seg.Dest != local {
			for k := 0; k < seg.Frames; k++ {
				if total+k < len(frames) && frames[total+k].Pinned {
					return fmt.Errorf("sodee: chain segment %d ships pinned frame %d", i, total+k)
				}
			}
		}
		total += seg.Frames
	}
	if total != len(frames) {
		return fmt.Errorf("sodee: chain plan covers %d frames of depth %d", total, len(frames))
	}
	if plan.Segments[0].Dest == local {
		return fmt.Errorf("sodee: chain's executing segment placed locally")
	}
	return nil
}

// segReturnsValue reports whether a captured segment's bottom frame
// returns a value — i.e. whether the link *below* it should expect one.
func (m *Manager) segReturnsValue(cs *serial.CapturedState) bool {
	return m.node.Prog.Methods[cs.Frames[0].MethodID].ReturnsValue
}

// plantChainLink installs one captured chain link as a parked
// continuation on a remote node; returns the token the link above must
// address its result to.
func (m *Manager) plantChainLink(node int, seg *serial.CapturedState, expectValue bool,
	next, fallback completion, meta chainLinkMeta) (uint64, error) {

	msg := migrateMsg{
		plant:       true,
		resultTo:    next,
		fallback:    fallback,
		homeNode:    int(seg.HomeNode),
		seg:         seg,
		expectValue: expectValue,
		classes:     m.bundleClasses(seg),
		chainJob:    meta.job,
		chainOrigin: meta.origin,
		chainSeg:    meta.seg,
		chainOf:     meta.segOf,
	}
	reply, _, _, err := m.sendMigrate(node, &msg)
	if err != nil {
		return 0, err
	}
	r := wire.NewReader(reply)
	tok := r.Uvarint()
	if err := r.Err(); err != nil {
		return 0, err
	}
	return tok, nil
}

// MigrateChain suspends the job's thread, asks planFn for a chain plan
// over the parked frames (top-first, with per-frame instruction counts
// from the interpreter), and executes it: residual links are planted on
// their nodes bottom-up — each addressed to the link below, each backed
// by a recovery route at the planning node — then the top segment ships
// and runs. The returned metrics describe the top segment's transfer,
// with capture covering the whole stack.
//
// Remote (migrated-in) jobs may chain too: the final value routes to the
// job's origin as usual; recovery routes are registered only when this
// node is the origin (their lifetime is tied to the local job handle).
func (m *Manager) MigrateChain(job *Job, planFn ChainPlanFunc, reason MigrateReason) (*MigrationMetrics, error) {
	if !m.migInFlight.SetIfAbsent(job.ID, struct{}{}) {
		return nil, fmt.Errorf("sodee: job %d already has a migration in flight", job.ID)
	}
	defer m.migInFlight.Delete(job.ID)

	if !job.migratable() {
		return nil, fmt.Errorf("sodee: job has no migratable thread")
	}
	th := job.Thread()
	n := m.node
	if n.Agent == nil {
		return nil, fmt.Errorf("sodee: node %d (%v) cannot capture state", n.ID, n.System)
	}
	t0 := time.Now()
	parked, err := n.Agent.SuspendAtSafePoint(th)
	if err != nil {
		return nil, err
	}
	if !parked {
		return nil, fmt.Errorf("sodee: thread finished before reaching a safe point")
	}
	depth := th.Depth()

	// Frame signals, top-first — the planner's view of the stack.
	signals := make([]policy.FrameSignal, depth)
	for d := 0; d < depth; d++ {
		f := th.Frames[depth-1-d]
		signals[d] = policy.FrameSignal{MethodID: f.Method.ID, Instrs: f.Instrs, Pinned: f.Pinned}
	}
	plan, perr := planFn(signals)
	if perr != nil {
		_ = th.Resume()
		return nil, perr
	}
	if verr := validateChainPlan(plan, signals, n.ID); verr != nil {
		_ = th.Resume()
		return nil, verr
	}
	s := len(plan.Segments)
	localTail := plan.Segments[s-1].Dest == n.ID
	nCapture := s
	if localTail {
		nCapture = s - 1
	}

	// A re-migrated job keeps its original home for statics and classes.
	home := n.ID
	if ctx, ok := th.UserData.(*threadCtx); ok && ctx.homeNode >= 0 {
		home = ctx.homeNode
	}

	// Capture every traveling link, top-first; the local tail (if any)
	// stays in the thread.
	segs := make([]*serial.CapturedState, nCapture)
	skip := 0
	for i := 0; i < nCapture; i++ {
		cs, cerr := CaptureSegment(n.Agent, th, skip, plan.Segments[i].Frames, home)
		if cerr != nil {
			_ = th.Resume()
			return nil, cerr
		}
		segs[i] = cs
		skip += plan.Segments[i].Frames
	}
	captureDone := time.Now()

	// Hop metadata, shared by every link: one more hop taken, this node
	// joins the trace (see MigrateSOD for the age encoding rationale).
	job.mu.Lock()
	hops := int32(job.hops + 1)
	var visits []serial.Visit
	for node, left := range job.visited {
		visits = append(visits, serial.Visit{Node: int32(node), AgeNanos: int64(captureDone.Sub(left))})
	}
	job.mu.Unlock()
	sort.Slice(visits, func(i, j int) bool { return visits[i].AgeNanos > visits[j].AgeNanos })
	visits = append(visits, serial.Visit{Node: int32(n.ID), AgeNanos: 0})
	for _, cs := range segs {
		cs.Hops = hops
		cs.Visited = visits
		m.homeRefs(cs)
	}
	if home != n.ID {
		m.flushUpdates(home, preHopFlushAttempts)
	}

	// finalTo: the chain's terminal consumer — the local job handle, or a
	// migrated-in job's origin. eventTo is the chain's event identity:
	// the origin bus and job id every link publishes under (for a
	// re-chained link, that differs from where its result flows).
	finalTo := completion{node: n.ID, token: job.ID}
	var finalFB completion
	job.mu.Lock()
	if job.remote {
		finalTo = job.resultTo
		finalFB = job.resultFallback
	}
	eventTo := finalTo
	if job.evJob != 0 {
		eventTo = completion{node: job.evOrigin, token: job.evJob}
	}
	jobRemote := job.remote
	job.mu.Unlock()
	origin := eventTo.node
	withRecovery := !jobRemote

	// localVisited re-bases the shared visit trace for links that end up
	// wrapped in local job handles (degraded plants, recovery routes).
	localVisited := func() map[int]time.Time { return rebaseVisits(visits, time.Now()) }

	// Cleanup for abort paths: local routes registered so far are
	// dropped and the thread resumes in place. Remote plants already made
	// stay parked on their nodes — a bounded leak on a path that only
	// fires when our own captured state fails to restore.
	var localTokens []uint64
	var recovTokens []uint64
	abort := func(cause error) error {
		for _, tok := range localTokens {
			m.routes.Delete(tok)
		}
		for _, tok := range recovTokens {
			m.routes.Delete(tok)
		}
		_ = th.Resume()
		return cause
	}

	// Build the chain bottom-up: each link's completion addresses the one
	// below it; `next` and `nextFB` walk upward as links are placed.
	next := finalTo
	nextFB := finalFB
	var tailToken uint64
	if localTail {
		// The tail stays in this thread, truncated below; its route is
		// registered now so the link above can address it.
		expect := m.segReturnsValue(segs[nCapture-1])
		tailToken = m.newToken()
		meta := &chainLinkMeta{
			job: eventTo.token, origin: origin,
			seg: s - 1, segOf: s,
			hops: int(hops) - 1, // the tail never left this node
		}
		m.routes.Set(tailToken, &route{
			kind: routeResume, job: job, th: th,
			expectValue: expect, chain: meta,
		})
		localTokens = append(localTokens, tailToken)
		next = completion{node: n.ID, token: tailToken}
		nextFB = completion{}
		m.publishEvent(origin, JobEvent{
			Job: eventTo.token, Kind: EvSegmentPlanted,
			From: n.ID, To: n.ID,
			Reason: reason, Seg: s - 1, SegOf: s, Hops: int(hops),
		})
		m.observePlant(origin, eventTo.token, n.ID, s-1, s, 0)
	}

	for i := nCapture - 1; i >= 1; i-- {
		dest := plan.Segments[i].Dest
		expect := m.segReturnsValue(segs[i-1])
		meta := chainLinkMeta{
			job: eventTo.token, origin: origin,
			seg: i, segOf: s, hops: int(hops),
		}
		plantStart := time.Now()
		tok, perr := m.plantChainLink(dest, segs[i], expect, next, nextFB, meta)
		if perr == nil {
			m.observePlant(origin, eventTo.token, dest, i, s, time.Since(plantStart))
			arrive := completion{node: dest, token: tok}
			arriveFB := completion{}
			if withRecovery {
				// Retain the link's frames behind a recovery route: if dest
				// dies holding the parked link, the value reroutes here and
				// the link rebuilds at the origin.
				rmeta := meta
				rmeta.visited = localVisited()
				rtok := m.newToken()
				m.routes.Set(rtok, &route{
					kind: routeChainRecover, seg: segs[i],
					expectValue: expect, next: next, fallback: nextFB,
					chain: &rmeta,
				})
				m.mu.Lock()
				m.chainRecov[job.ID] = append(m.chainRecov[job.ID], rtok)
				m.mu.Unlock()
				recovTokens = append(recovTokens, rtok)
				arriveFB = completion{node: n.ID, token: rtok}
			}
			m.publishEvent(origin, JobEvent{
				Job: eventTo.token, Kind: EvSegmentPlanted,
				From: n.ID, To: dest,
				Reason: reason, Seg: i, SegOf: s, Hops: int(hops),
			})
			next, nextFB = arrive, arriveFB
			continue
		}
		// Plant failed: the node is unreachable (or rejected the state).
		// Degrade the link to a local plant — the FlowReturn-shaped path:
		// its value comes back here and the link runs on this node.
		if isUnreachable(perr) {
			n.Members.ObserveFailure(dest, time.Now())
		}
		worker, rerr := RestoreDirect(n, segs[i])
		if rerr != nil {
			return nil, abort(fmt.Errorf("sodee: plant segment %d on node %d: %w; local fallback also failed: %w", i, dest, perr, rerr))
		}
		lmeta := meta
		lmeta.visited = localVisited()
		tok = m.newToken()
		m.routes.Set(tok, &route{
			kind: routePlanted, th: worker,
			expectValue: expect, next: next, fallback: nextFB,
			chain: &lmeta,
		})
		localTokens = append(localTokens, tok)
		m.publishEvent(origin, JobEvent{
			Job: eventTo.token, Kind: EvSegmentPlanted,
			From: n.ID, To: n.ID,
			Reason: reason, Seg: i, SegOf: s, Hops: int(hops),
		})
		m.observePlant(origin, eventTo.token, n.ID, i, s, time.Since(plantStart))
		next, nextFB = completion{node: n.ID, token: tok}, completion{}
	}

	// Detach the shipped frames from the thread: truncate down to the
	// tail, or kill the thread outright when everything travels.
	if localTail {
		keep := plan.Segments[s-1].Frames
		if terr := n.Agent.TruncateTo(th, keep); terr != nil {
			return nil, abort(terr)
		}
		job.mu.Lock()
		job.waiting = true // parked tail is owned by its resume route now
		job.mu.Unlock()
	} else {
		job.mu.Lock()
		job.th = nil
		job.mu.Unlock()
		if kerr := th.Kill(); kerr != nil {
			return nil, kerr
		}
	}

	// Ship the top segment. The hop is announced first (see MigrateSOD on
	// why the event precedes the transfer).
	seg0Expect := m.segReturnsValue(segs[0])
	dest0 := plan.Segments[0].Dest
	msg := migrateMsg{
		resultTo:    next,
		fallback:    nextFB,
		homeNode:    home,
		direct:      n.System == SysJessica2 || n.System == SysDevice,
		seg:         segs[0],
		expectValue: seg0Expect,
		classes:     m.bundleClasses(segs[0]),
		// The executing fragment keeps the chain's event identity for any
		// further moves it takes at its destination.
		chainJob:    eventTo.token,
		chainOrigin: eventTo.node,
	}
	m.publishEvent(origin, JobEvent{
		Job: eventTo.token, Kind: EvMigrated,
		From: n.ID, To: dest0,
		Reason: reason, Hops: int(hops), Seg: 0, SegOf: s,
	})
	sendStart := time.Now()
	reply, wireBytes, classBytes, serr := m.sendMigrate(dest0, &msg)
	if serr != nil {
		// The executing segment's destination is unreachable; run it here
		// instead. Its value still flows into the planted chain — only
		// the first stage's placement is lost.
		if isUnreachable(serr) {
			n.Members.ObserveFailure(dest0, time.Now())
		}
		m.met.migFailures.Inc()
		m.publishEvent(origin, JobEvent{
			Job: eventTo.token, Kind: EvMigrationFailed,
			From: n.ID, To: dest0,
			Reason: reason, Hops: int(hops), Seg: 0, SegOf: s,
		})
		worker, rerr := RestoreDirect(n, segs[0])
		if rerr != nil {
			return nil, fmt.Errorf("sodee: chain segment 0 to %d: %w; local recovery also failed: %w", dest0, serr, rerr)
		}
		if jobRemote && !localTail {
			// The wrapper's stack has fully dissolved into the chain;
			// nothing local completes it anymore.
			m.jobs.Delete(job.ID)
		}
		go m.runWorker(worker, seg0Expect, next, nextFB)
		return nil, fmt.Errorf("sodee: chain segment 0 to %d (recovered locally): %w", dest0, serr)
	}
	arrival, restoreDur, rerr := decodeMigrateReply(reply)
	if rerr != nil {
		return nil, rerr
	}
	if jobRemote && !localTail {
		m.jobs.Delete(job.ID)
	}

	mm := MigrationMetrics{
		System:     n.System,
		Capture:    captureDone.Sub(t0),
		Transfer:   arrival.Sub(sendStart),
		Restore:    restoreDur,
		StateBytes: wireBytes - classBytes,
		ClassBytes: classBytes,
	}
	mm.Latency = mm.Capture + mm.Transfer + mm.Restore
	mm.Freeze = mm.Latency
	m.record(mm)
	m.observeWireLatency(dest0, mm.Transfer)
	m.observeMigration(&mm, reason, dest0, wireBytes)
	// Top-segment span quartet, same shape as MigrateSOD's: capture here
	// covers the whole stack (every link), transfer/restore the executing
	// segment's trip.
	migSpan := m.spanID()
	m.emitSpans(origin,
		obs.Span{ID: migSpan, Parent: obs.RootSpanID, Job: eventTo.token,
			Node: n.ID, Dest: dest0, Name: "migrate", Start: t0,
			Dur: mm.Latency, Bytes: wireBytes,
			Detail: fmt.Sprintf("%s, chain segment 1/%d", reason, s)},
		obs.Span{ID: m.spanID(), Parent: migSpan, Job: eventTo.token,
			Node: n.ID, Dest: dest0, Name: "capture", Start: t0, Dur: mm.Capture},
		obs.Span{ID: m.spanID(), Parent: migSpan, Job: eventTo.token,
			Node: n.ID, Dest: dest0, Name: "transfer", Start: sendStart,
			Dur: mm.Transfer, Bytes: wireBytes},
		obs.Span{ID: m.spanID(), Parent: migSpan, Job: eventTo.token,
			Node: n.ID, Dest: dest0, Name: "restore",
			Start: sendStart.Add(mm.Transfer), Dur: mm.Restore},
	)
	return &mm, nil
}

// observePlant records one chain link's plant — counter plus a span in
// the origin's trace covering the plant round trip (zero for the local
// tail, which never crosses the wire).
func (m *Manager) observePlant(origin int, job uint64, dest, seg, segOf int, rtt time.Duration) {
	m.met.chainPlanted.IncKeyed(job)
	m.emitSpans(origin, obs.Span{
		ID: m.spanID(), Parent: obs.RootSpanID, Job: job,
		Node: m.node.ID, Dest: dest, Name: "plant",
		Start: time.Now().Add(-rtt), Dur: rtt,
		Detail: fmt.Sprintf("segment %d/%d", seg+1, segOf),
	})
}
