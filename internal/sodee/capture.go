package sodee

import (
	"fmt"
	"sort"

	"repro/internal/serial"
	"repro/internal/toolif"
	"repro/internal/value"
	"repro/internal/vm"
)

// appendStatics emits the statics of classes in ascending class-id order.
// Determinism matters: two captures of unchanged state must encode to the
// same bytes, or the delta path's content hashes never repeat and every
// migration pays for a full resend (map-iteration order used to randomize
// the statics sequence between captures).
func appendStatics(cs *serial.CapturedState, statics [][]value.Value, classes map[int32]bool) {
	ids := make([]int32, 0, len(classes))
	for cid := range classes {
		ids = append(ids, cid)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, cid := range ids {
		if int(cid) >= len(statics) {
			continue
		}
		vals := statics[cid]
		if len(vals) == 0 {
			continue
		}
		cs.Statics = append(cs.Statics, serial.ClassStatics{
			ClassID: cid, Values: append([]value.Value(nil), vals...),
		})
	}
}

// CaptureSegment captures the topmost nFrames of a parked thread through
// the tool interface — the Fig 3 code path, paying the per-call JVMTI
// costs (GetFrameLocation is cheap, GetLocal<type> is ~30× dearer), which
// is exactly why SODEE's capture time exceeds JESSICA2's in Table IV.
//
// Frames are emitted bottom-first. Non-top frames record the start of the
// statement containing their pending invoke (PC) and the exact post-invoke
// pc (ResumePC); the top frame records the MSP it parked at. Statics of
// the classes declaring the captured methods are included; object-typed
// values travel as home references.
// skip is the number of topmost frames to leave out: 0 captures the top
// segment, k captures the residual beneath a k-frame segment.
func CaptureSegment(a *toolif.Agent, t *vm.Thread, skip, nFrames int, homeNode int) (*serial.CapturedState, error) {
	depth := a.GetFrameCount(t)
	if skip < 0 || nFrames <= 0 || skip+nFrames > depth {
		return nil, fmt.Errorf("sodee: capture skip=%d n=%d of depth %d", skip, nFrames, depth)
	}
	prog := a.VM.Prog
	cs := &serial.CapturedState{HomeNode: int32(homeNode), ThreadID: int32(t.ID)}
	classes := map[int32]bool{}

	// toolif depth 0 = top; segment bottom is depth skip+nFrames-1.
	for d := skip + nFrames - 1; d >= skip; d-- {
		mid, pc, err := a.GetFrameLocation(t, d)
		if err != nil {
			return nil, err
		}
		m := prog.Methods[mid]
		cf := serial.CapturedFrame{MethodID: mid, Pinned: a.IsFramePinned(t, d)}
		if d == 0 {
			if !m.IsMSP(pc) {
				return nil, fmt.Errorf("sodee: top frame of %s parked at non-MSP pc %d", m.Name, pc)
			}
			cf.PC = pc
			cf.ResumePC = pc
		} else {
			// pc is the pending invoke instruction (JVMTI reports the call
			// site); the restoration protocol re-enters at the statement
			// start, direct restore continues right after the invoke.
			cf.PC = m.LineStart(pc)
			cf.ResumePC = pc + 1
		}
		nl, err := a.NumLocals(t, d)
		if err != nil {
			return nil, err
		}
		cf.Locals = make([]value.Value, nl)
		for slot := 0; slot < nl; slot++ {
			lv, err := a.GetLocal(t, d, slot) // the expensive call
			if err != nil {
				return nil, err
			}
			cf.Locals[slot] = lv
		}
		cs.Frames = append(cs.Frames, cf)
		if m.ClassID >= 0 {
			classes[m.ClassID] = true
		}
	}

	appendStatics(cs, a.VM.Statics, classes)
	return cs, nil
}

// CaptureDirect captures frames by reading the thread structures directly
// — the JESSICA2 path ("state information can be retrieved directly from
// the JVM kernel") and the §IV.D device fallback. No per-call tool costs.
// allStatics ships every loaded class's statics (thread migration moves
// the whole thread context); alloc hints describe static arrays so the
// destination can model JESSICA2's eager allocation at class-load time.
func CaptureDirect(v *vm.VM, t *vm.Thread, nFrames int, homeNode int, allStatics bool) (*serial.CapturedState, error) {
	depth := t.Depth()
	if nFrames <= 0 || nFrames > depth {
		return nil, fmt.Errorf("sodee: capture %d frames of %d", nFrames, depth)
	}
	cs := &serial.CapturedState{HomeNode: int32(homeNode), ThreadID: int32(t.ID)}
	classes := map[int32]bool{}
	for i := depth - nFrames; i < depth; i++ {
		f := t.Frames[i]
		cf := serial.CapturedFrame{
			MethodID: f.Method.ID,
			Pinned:   f.Pinned,
			Locals:   append([]value.Value(nil), f.Locals...),
		}
		if i == depth-1 {
			cf.PC = f.PC
			cf.ResumePC = f.PC
		} else {
			cf.PC = f.Method.LineStart(f.CallPC())
			cf.ResumePC = f.CallPC() + 1
		}
		cs.Frames = append(cs.Frames, cf)
		if f.Method.ClassID >= 0 {
			classes[f.Method.ClassID] = true
		}
	}
	if allStatics {
		for cid := range v.Statics {
			if v.ClassLoaded(int32(cid)) && len(v.Statics[cid]) > 0 {
				classes[int32(cid)] = true
			}
		}
	}
	appendStatics(cs, v.Statics, classes)
	return cs, nil
}

// staticAllocHints describes the static ref arrays reachable from the
// captured statics, letting the JESSICA2 destination model eager
// allocation of static arrays at class-load time (§IV.A's explanation of
// its long FFT restore time).
func staticAllocHints(v *vm.VM, cs *serial.CapturedState) []serial.AllocHint {
	var hints []serial.AllocHint
	for _, st := range cs.Statics {
		for _, sv := range st.Values {
			if sv.Kind != value.KindRef || sv.R == value.NullRef {
				continue
			}
			if o := v.Heap.Get(sv.R); o != nil && o.IsArray {
				hints = append(hints, serial.AllocHint{Kind: o.AKind, Len: int64(o.Len())})
			}
		}
	}
	return hints
}
