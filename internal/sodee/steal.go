package sodee

import (
	"time"

	"repro/internal/netsim"
	"repro/internal/policy"
	"repro/internal/wire"
)

// Work stealing: the pull half of elasticity. The push path (balance.go)
// lets a loaded node decide to shed a job; here an *idle* node takes the
// initiative, asking a loaded victim for work over a two-message
// protocol:
//
//	thief  → victim  KindStealRequest {thief runnable}   (RPC)
//	victim → thief   KindStealGrant   {job id}           (RPC, liveness probe)
//	victim → thief   KindMigrate      {captured stack}   (the ordinary path)
//
// The grant round trip proves the thief is still alive before the victim
// pays for capture; a thief that dies after granting costs only a failed
// transfer — MigrateSOD's crash fallback rebuilds the job locally, so the
// job is never at risk. The steal-request reply carries the final verdict
// (shipped or not), so the thief knows synchronously whether it won work.

// stealConfig is a node's work-stealing posture. A node with no config
// denies all steal requests.
type stealConfig struct {
	pol  policy.Steal
	gate policy.HopGate
}

// StealStats counts one node's work-stealing activity, both sides.
type StealStats struct {
	// Thief side.
	RequestsSent int // steal requests this node issued
	Won          int // requests that ended with a job shipped here
	// Victim side.
	RequestsServed  int // steal requests received
	Granted         int // requests answered with a grant (transfer attempted)
	Denied          int // requests refused: not loaded enough, or no eligible job
	FailedTransfers int // grants whose transfer failed (job recovered locally)
}

// EnableSteal opens this node to the work-stealing protocol: it will
// answer steal requests under pol, with gate bounding which jobs may
// move (hop budget, revisit cooldown). AutoBalance calls this for every
// node when its Steal option is set; tests and embedders may call it
// directly.
func (m *Manager) EnableSteal(pol policy.Steal, gate policy.HopGate) {
	m.mu.Lock()
	m.steal = &stealConfig{pol: pol, gate: gate}
	m.mu.Unlock()
}

// DisableSteal reverts the node to denying steal requests.
func (m *Manager) DisableSteal() {
	m.mu.Lock()
	m.steal = nil
	m.mu.Unlock()
}

// StealStats snapshots the node's steal counters.
func (m *Manager) StealStats() StealStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stealStats
}

// RequestSteal asks victim to hand over one job; thiefRunnable is this
// node's current runnable count, which the victim re-checks its margins
// against (a stale thief view cannot talk a lightly loaded node out of
// its last jobs). Returns whether a job was actually shipped here: by the
// time the call returns true, the stolen stack is restored and running on
// this node.
func (m *Manager) RequestSteal(victim int, thiefRunnable int) (bool, error) {
	m.mu.Lock()
	m.stealStats.RequestsSent++
	m.mu.Unlock()
	m.met.stealReqSent.IncKeyed(uint64(victim))
	w := wire.NewWriter(8)
	w.Varint(int64(thiefRunnable))
	rttStart := time.Now()
	reply, err := m.node.EP.Call(victim, netsim.KindStealRequest, w.Bytes())
	// The round trip covers the victim's whole decision — including, on a
	// win, the capture and transfer of the stolen job (the protocol's
	// reply is the shipped verdict), which is exactly the latency a thief
	// waits before it has work.
	m.met.stealRTTSec.ObserveDuration(int64(time.Since(rttStart)))
	if err != nil {
		return false, err
	}
	r := wire.NewReader(reply)
	won := r.Bool()
	if err := r.Err(); err != nil {
		return false, err
	}
	if won {
		m.mu.Lock()
		m.stealStats.Won++
		m.mu.Unlock()
		m.met.stealWon.IncKeyed(uint64(victim))
	}
	return won, nil
}

// stealDeny encodes a negative steal-request reply.
func stealDeny() []byte {
	w := wire.NewWriter(1)
	w.Bool(false)
	return w.Bytes()
}

// handleStealRequest is the victim side: re-check the margins against the
// live local load, pick the best candidate job the hop gate allows to
// move to the thief, announce the grant, and ship the job with the
// ordinary whole-stack migration path.
func (m *Manager) handleStealRequest(from int, payload []byte) ([]byte, error) {
	r := wire.NewReader(payload)
	thiefRunnable := int(r.Varint())
	if err := r.Err(); err != nil {
		return nil, err
	}
	m.mu.Lock()
	cfg := m.steal
	m.stealStats.RequestsServed++
	m.mu.Unlock()
	m.met.stealReqServed.IncKeyed(uint64(from))
	deny := func() ([]byte, error) {
		m.mu.Lock()
		m.stealStats.Denied++
		m.mu.Unlock()
		m.met.stealDenied.IncKeyed(uint64(from))
		return stealDeny(), nil
	}
	if cfg == nil {
		return deny()
	}
	local := policy.Signals{Node: m.node.ID, Runnable: m.node.VM.NumThreads()}
	if !cfg.pol.Grant(local, thiefRunnable) {
		return deny()
	}
	// Victim selection: fewest hops wins, gated by budget and cooldown
	// (a job that just left the thief is quarantined from bouncing back).
	// Jobs already mid-migration are skipped — two thieves ranking the
	// same candidate would otherwise burn a grant on the in-flight guard
	// (which stays as the correctness backstop for the remaining race).
	now := time.Now()
	jobs := m.RunningJobs()
	infos := make([]policy.JobInfo, 0, len(jobs))
	byID := make(map[uint64]*Job, len(jobs))
	for _, j := range jobs {
		if m.migrationInFlight(j.ID) {
			continue
		}
		infos = append(infos, policy.JobInfo{ID: j.ID, Trace: j.Trace()})
		byID[j.ID] = j
	}
	id, ok := policy.PickStealCandidate(infos, from, cfg.gate, now)
	if !ok {
		return deny()
	}
	job := byID[id]
	m.mu.Lock()
	m.stealStats.Granted++
	m.mu.Unlock()
	m.met.stealGranted.IncKeyed(uint64(from))

	// Announce the grant: one round trip that both tells the thief a job
	// is coming and proves the requester is still alive before the
	// capture cost is paid.
	gw := wire.NewWriter(16)
	gw.Uvarint(job.ID)
	if _, err := m.node.EP.Call(from, netsim.KindStealGrant, gw.Bytes()); err != nil {
		m.mu.Lock()
		m.stealStats.FailedTransfers++
		m.mu.Unlock()
		m.met.stealFailedXfer.IncKeyed(uint64(from))
		return stealDeny(), nil
	}

	// Ship it. A thief that dies between grant and transfer costs only
	// the capture: the migration fails and the job falls back to local
	// execution here, a live owner.
	if _, err := m.MigrateSOD(job, SODOptions{
		NFrames: WholeStack, Dest: from, Flow: FlowReturnHome,
		Reason: ReasonStolen,
	}); err != nil {
		m.mu.Lock()
		m.stealStats.FailedTransfers++
		m.mu.Unlock()
		m.met.stealFailedXfer.IncKeyed(uint64(from))
		return stealDeny(), nil
	}
	w := wire.NewWriter(16)
	w.Bool(true)
	w.Uvarint(job.ID)
	return w.Bytes(), nil
}

// handleStealGrant acknowledges a victim's announcement that a job is on
// its way. The reply is the point: a dead thief fails this RPC, aborting
// the steal before any state is captured.
func (m *Manager) handleStealGrant(from int, payload []byte) ([]byte, error) {
	r := wire.NewReader(payload)
	_ = r.Uvarint() // the victim's job id, diagnostic only
	return nil, r.Err()
}
