package sodee

import (
	"fmt"
	"time"

	"repro/internal/bytecode"
	"repro/internal/serial"
	"repro/internal/value"
	"repro/internal/vm"
)

// threadCtx is attached to worker threads via vm.Thread.UserData; the
// preprocessor-injected natives reach it during restoration.
type threadCtx struct {
	restore *restoreCtx
	// homeNode is the job's home (where modified statics belong); -1 when
	// the thread never migrated.
	homeNode int
}

// restoreCtx drives one breakpoint-based restoration (Fig 4b).
type restoreCtx struct {
	frames []serial.CapturedFrame
	cur    int // frame whose locals the rst_* natives currently serve
	next   int // next frame expecting a breakpoint
	node   *Node
	thread *vm.Thread
	done   chan struct{} // closed when the last frame has resumed
	// restoredAt is stamped just before done closes: the moment execution
	// resumed for real. The waiter may be scheduled much later when the
	// restored thread immediately saturates the CPU, so restore-time
	// measurements must use this, not the waiter's wake-up time.
	restoredAt time.Time
	failed     error
}

// bindRestoreNatives wires the Fig 4 CapturedState.read<Type> analogs.
func bindRestoreNatives(v *vm.VM) {
	v.BindNativeIfDeclared("sod_rst_local", func(t *vm.Thread, args []value.Value) (value.Value, *vm.Raised) {
		ctx, ok := t.UserData.(*threadCtx)
		if !ok || ctx.restore == nil {
			return value.Value{}, &vm.Raised{ExClass: bytecode.ExIllegalState, Message: "rst_local outside restoration"}
		}
		rc := ctx.restore
		slot := int(args[0].AsInt())
		locals := rc.frames[rc.cur].Locals
		if slot < 0 {
			return value.Value{}, &vm.Raised{ExClass: bytecode.ExIllegalState, Message: "bad slot"}
		}
		if slot >= len(locals) {
			// The captured frame may predate temp slots appended by a later
			// preprocessing run; missing slots restore as zero/null.
			return value.Null(), nil
		}
		return locals[slot], nil
	})
	v.BindNativeIfDeclared("sod_rst_pc", func(t *vm.Thread, args []value.Value) (value.Value, *vm.Raised) {
		ctx, ok := t.UserData.(*threadCtx)
		if !ok || ctx.restore == nil {
			return value.Value{}, &vm.Raised{ExClass: bytecode.ExIllegalState, Message: "rst_pc outside restoration"}
		}
		rc := ctx.restore
		cf := rc.frames[rc.cur]
		t.Top().Pinned = cf.Pinned
		if rc.cur == len(rc.frames)-1 {
			// Last frame restored: "disable all debugging functions after a
			// migration event" and hand execution back at full speed.
			if rc.node != nil && rc.node.Agent != nil {
				rc.node.Agent.ClearAllBreakpoints(t)
			}
			ctx.restore = nil
			rc.restoredAt = time.Now()
			close(rc.done)
		}
		return value.Int(int64(cf.PC)), nil
	})
}

// applyStatics installs captured statics into the destination VM. Ref
// values are home references: remote here, faulted in on first use.
func applyStatics(v *vm.VM, cs *serial.CapturedState) {
	for _, st := range cs.Statics {
		v.MarkLoaded(st.ClassID)
		dst := v.Statics[st.ClassID]
		for i, sv := range st.Values {
			if i < len(dst) {
				dst[i] = sv
			}
		}
	}
}

// RestoreByBreakpoints rebuilds the captured segment with the paper's
// protocol: invoke the bottom method with dummy arguments, arm a
// breakpoint at its entry, and on each breakpoint arm the next frame's
// entry and throw InvalidStateException so the injected restoration
// handler reloads the locals and jumps to the saved pc; the re-executed
// invoke then creates the next frame (Fig 4b steps 1-7).
//
// The returned thread is NOT yet running; the caller starts it. The
// returned channel closes when the last frame has resumed real execution
// (restore-time measurement point).
func RestoreByBreakpoints(n *Node, cs *serial.CapturedState) (*vm.Thread, *restoreCtx, error) {
	if n.Agent == nil {
		return nil, nil, fmt.Errorf("sodee: node %d has no tool agent", n.ID)
	}
	if len(cs.Frames) == 0 {
		return nil, nil, fmt.Errorf("sodee: empty captured state")
	}
	applyStatics(n.VM, cs)

	bottom := n.Prog.Methods[cs.Frames[0].MethodID]
	args := make([]value.Value, bottom.NArgs)
	for i := range args {
		args[i] = value.Null() // dummies; the restoration handler overwrites
	}
	th, err := n.VM.NewThread(bottom.ID, args...)
	if err != nil {
		return nil, nil, err
	}
	rc := &restoreCtx{frames: cs.Frames, node: n, thread: th, done: make(chan struct{})}
	th.UserData = &threadCtx{restore: rc, homeNode: int(cs.HomeNode)}

	n.Agent.SetCallback(th, func(t *vm.Thread, f *vm.Frame) *vm.Raised {
		rc.cur = rc.next
		rc.next++
		if rc.next < len(rc.frames) {
			n.Agent.SetBreakpoint(th, rc.frames[rc.next].MethodID, 0)
		}
		// cbBreakpoint throws InvalidStateException in the current method;
		// the injected handler catches it and performs the state reload.
		return &vm.Raised{ExClass: bytecode.ExInvalidState}
	})
	n.Agent.SetBreakpoint(th, bottom.ID, 0)
	return th, rc, nil
}

// RestoreDirect rebuilds frames by writing thread structures directly —
// the in-VM path (JESSICA2) and the §IV.D device path, which pays a
// CPU-profile cost instead of tool-interface costs. The thread is ready
// to run; restoration is complete on return.
func RestoreDirect(n *Node, cs *serial.CapturedState) (*vm.Thread, error) {
	if len(cs.Frames) == 0 {
		return nil, fmt.Errorf("sodee: empty captured state")
	}
	applyStatics(n.VM, cs)

	if n.System == SysJessica2 {
		// JESSICA2 allocates space for static arrays at class loading
		// rather than at access time (§IV.A) — pay the allocation and
		// zeroing now, even though the data itself will still be fetched
		// through the DSM on access.
		for _, h := range cs.AllocHints {
			if _, err := n.VM.Heap.AllocArray(n.VM.BuiltinClass(bytecode.ClassObject), h.Kind, int(h.Len)); err != nil {
				return nil, fmt.Errorf("sodee: eager static allocation: %w", err)
			}
		}
	}
	if n.System == SysDevice {
		// Java-level restoration on a slow handset: reflection-driven frame
		// rebuilding on a 412 MHz ARM (§IV.D: "carrying out restoration at
		// Java code level with rather low processing power of the device
		// makes the restore time much longer"). Cost scales with state size.
		work := 0
		for _, f := range cs.Frames {
			work += 4000 + 2500*len(f.Locals)
		}
		hookSpin(work * deviceSpinPerInstr)
	}

	bottom := n.Prog.Methods[cs.Frames[0].MethodID]
	args := make([]value.Value, bottom.NArgs)
	th, err := n.VM.NewThread(bottom.ID, args...)
	if err != nil {
		return nil, err
	}
	th.UserData = &threadCtx{homeNode: int(cs.HomeNode)}
	// Replace the dummy initial frame with the full restored stack.
	th.Frames = th.Frames[:0]
	appendCapturedFrames(th, n.Prog, cs.Frames)
	return th, nil
}

// appendCapturedFrames rebuilds captured frames onto th, bottom-first.
// Every frame resumes at its exact continuation pc: for frames beneath a
// callee that is also being restored, that is one past the pending
// invoke; for a frame whose callee's *result* will be pushed before the
// thread runs (a planted residual), likewise; for a top frame captured
// at an MSP, ResumePC equals the MSP pc.
func appendCapturedFrames(th *vm.Thread, prog *bytecode.Program, frames []serial.CapturedFrame) {
	for _, cf := range frames {
		m := prog.Methods[cf.MethodID]
		callPC := cf.ResumePC - 1
		if callPC < 0 {
			callPC = 0
		}
		th.AppendRestoredFrame(m, cf.Locals, cf.ResumePC, callPC, cf.Pinned)
	}
}
