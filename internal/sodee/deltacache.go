package sodee

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/serial"
	"repro/internal/wire"
)

// Wire protocol capabilities, negotiated per peer pair. Each node
// advertises its capability byte as a trailing field on the gossip load
// report (see encodeSignalsCaps); a sender only uses a feature when both
// sides advertise it, so a cluster can mix old and new binaries and every
// link degrades to the full-state format.
const (
	// capDelta: the peer understands delta-encoded migration state —
	// frames, statics and class bundles referenced by content hash when
	// unchanged since the last transfer on this link.
	capDelta byte = 1 << 0
	// capStream: the peer understands streamed migrations — the statics
	// payload arrives on a separate KindMigrateData message, concurrent
	// with stack restoration.
	capStream byte = 1 << 1

	capAll = capDelta | capStream
)

// Link-cache bounds. A link cache holds the units last shipped on one
// (src,dst) pair in either direction; when a cache outgrows these caps it
// is cleared wholesale — the next migration pays one full resend and
// rebuilds it, which is always correct (a reference is only emitted for a
// hash present in the cache).
const (
	maxDeltaUnits = 4096
	maxDeltaBytes = 32 << 20
)

// deltaMissMarker is embedded in the error a receiver returns when a
// delta reference does not resolve in its link cache (e.g. the receiver
// restarted and lost the cache, or the sender's view is stale). It must
// survive a trip through the TCP transport, which flattens remote errors
// to strings — hence a marker substring rather than a sentinel value.
const deltaMissMarker = "sodee: delta miss"

// isDeltaMiss reports whether err is a delta-reference resolution failure
// (possibly string-flattened by the transport). The sender reacts by
// evicting the link cache and resending the same migration in full.
func isDeltaMiss(err error) bool {
	return err != nil && strings.Contains(err.Error(), deltaMissMarker)
}

// linkCache is one peer's half of the snapshot cache: content hash → unit
// bytes for every unit that crossed the link (in either direction) since
// the last eviction. Symmetric on purpose: a unit this node sent to the
// peer is also resolvable when the peer later references it on the way
// back, which is exactly the ping-pong/return-home pattern the delta path
// exists for.
type linkCache struct {
	units map[uint64][]byte
	bytes int64
}

// cachedUnit is a unit staged by an in-flight delta session, committed to
// the link cache only after the peer acknowledges the migration.
type cachedUnit struct {
	h uint64
	b []byte
}

// deltaSession accumulates the delta bookkeeping for one outgoing
// migration: units referenced (hits) versus shipped in full (staged in
// pending). Nothing touches the shared link cache until commitDelta — a
// failed send must not poison the cache with units the peer never saw.
type deltaSession struct {
	m       *Manager
	peer    int
	pending []cachedUnit
	hits    int64
	saved   int64
}

// writeUnit emits one unit in delta form: a reference (flag 1 + 8-byte
// hash) when the link cache already holds identical bytes, the full unit
// otherwise. A reference costs 9 bytes regardless of unit size.
func (s *deltaSession) writeUnit(w *wire.Writer, unit []byte) {
	h := serial.Hash64(unit)
	if s.m.linkHas(s.peer, h) {
		w.Byte(1)
		w.Fixed64(h)
		s.hits++
		if saved := int64(len(unit)) - 9; saved > 0 {
			s.saved += saved
		}
		return
	}
	w.Byte(0)
	w.Blob(unit)
	s.pending = append(s.pending, cachedUnit{h: h, b: unit})
}

// linkHas reports whether the cache for peer holds a unit with hash h.
func (m *Manager) linkHas(peer int, h uint64) bool {
	m.deltaMu.Lock()
	defer m.deltaMu.Unlock()
	lc := m.links[peer]
	if lc == nil {
		return false
	}
	_, ok := lc.units[h]
	return ok
}

// resolveUnit returns the cached bytes for hash h on the link to peer, or
// a delta-miss error the sender recognizes across the wire.
func (m *Manager) resolveUnit(peer int, h uint64) ([]byte, error) {
	m.deltaMu.Lock()
	defer m.deltaMu.Unlock()
	if lc := m.links[peer]; lc != nil {
		if b, ok := lc.units[h]; ok {
			return b, nil
		}
	}
	return nil, fmt.Errorf("%s: link %d→%d has no unit %016x", deltaMissMarker, peer, m.node.ID, h)
}

// recordUnit stores unit bytes in the link cache for peer, clearing the
// cache first if it would exceed its bounds (a cleared cache only costs a
// future full resend).
func (m *Manager) recordUnit(peer int, h uint64, b []byte) {
	m.deltaMu.Lock()
	defer m.deltaMu.Unlock()
	m.recordUnitLocked(peer, h, b)
}

func (m *Manager) recordUnitLocked(peer int, h uint64, b []byte) {
	lc := m.links[peer]
	if lc == nil {
		lc = &linkCache{units: make(map[uint64][]byte)}
		m.links[peer] = lc
	}
	if _, ok := lc.units[h]; ok {
		return
	}
	if len(lc.units)+1 > maxDeltaUnits || lc.bytes+int64(len(b)) > maxDeltaBytes {
		lc.units = make(map[uint64][]byte)
		lc.bytes = 0
	}
	lc.units[h] = b
	lc.bytes += int64(len(b))
}

// beginDelta opens a delta session for an outgoing migration to peer.
func (m *Manager) beginDelta(peer int) *deltaSession {
	return &deltaSession{m: m, peer: peer}
}

// commitDelta publishes a successful session's fully-shipped units into
// the link cache, making them referenceable by the next migration on this
// link in either direction.
func (m *Manager) commitDelta(sess *deltaSession) {
	if sess == nil {
		return
	}
	m.deltaMu.Lock()
	defer m.deltaMu.Unlock()
	for _, u := range sess.pending {
		m.recordUnitLocked(sess.peer, u.h, u.b)
	}
}

// dropLink evicts the whole cache for peer. Called on membership
// transitions (a dead or freshly-rejoined peer has no cache, or a new
// empty one) and on a delta miss (the views diverged; resync from
// scratch).
func (m *Manager) dropLink(peer int) {
	m.deltaMu.Lock()
	defer m.deltaMu.Unlock()
	delete(m.links, peer)
}

// deltaCacheLen reports the number of cached units for peer (tests).
func (m *Manager) deltaCacheLen(peer int) int {
	m.deltaMu.Lock()
	defer m.deltaMu.Unlock()
	if lc := m.links[peer]; lc != nil {
		return len(lc.units)
	}
	return 0
}

// SetWireCaps overrides the capabilities this node advertises and uses.
// Zero disables the fast path entirely: every migration is a
// self-contained full-state message, byte-compatible with pre-delta
// builds. Benchmarks use this to measure full versus delta on the same
// binary.
func (m *Manager) SetWireCaps(caps byte) {
	m.deltaMu.Lock()
	defer m.deltaMu.Unlock()
	m.selfCaps = caps
}

// WireCaps returns the capability byte this node advertises.
func (m *Manager) WireCaps() byte {
	m.deltaMu.Lock()
	defer m.deltaMu.Unlock()
	return m.selfCaps
}

// peerWireCaps returns the effective capabilities for talking to peer:
// the intersection of what we support and what the peer last advertised.
// A peer that never advertised (old binary, or no gossip heard yet) gets
// zero — the full-state format.
func (m *Manager) peerWireCaps(peer int) byte {
	m.deltaMu.Lock()
	defer m.deltaMu.Unlock()
	return m.selfCaps & m.peerCaps[peer]
}

// setPeerCaps records the capability byte a peer advertised via gossip.
func (m *Manager) setPeerCaps(peer int, caps byte) {
	m.deltaMu.Lock()
	defer m.deltaMu.Unlock()
	m.peerCaps[peer] = caps
}

// notePiggyback records that dest just received fresh load signals inside
// a data message, letting the next PublishLoad skip the dedicated report.
func (m *Manager) notePiggyback(dest int) {
	m.deltaMu.Lock()
	defer m.deltaMu.Unlock()
	m.lastPiggy[dest] = time.Now()
}

// recentlyPiggybacked reports whether dest got piggybacked signals within
// window.
func (m *Manager) recentlyPiggybacked(dest int, window time.Duration) bool {
	m.deltaMu.Lock()
	defer m.deltaMu.Unlock()
	t, ok := m.lastPiggy[dest]
	return ok && time.Since(t) < window
}

// --- delta-encoded captured state ---

// tagDelta marks a delta-encoded CapturedState. Disjoint from the serial
// package's 0xC1..0xC4 tags so a mis-routed blob fails loudly.
const tagDelta byte = 0xD1

// encodeDeltaState encodes cs with every frame and statics bundle passed
// through sess.writeUnit: unchanged units become 9-byte references into
// the link cache. The scalar envelope (hops, visits, hints) is always
// inline — it changes every hop and is tiny.
func encodeDeltaState(w *wire.Writer, cs *serial.CapturedState, m *Manager, sess *deltaSession, codec serial.Codec) {
	prog := m.node.Prog
	w.Byte(tagDelta)
	w.Varint(int64(cs.HomeNode))
	w.Varint(int64(cs.ThreadID))
	w.Uvarint(uint64(len(cs.Frames)))
	for i := range cs.Frames {
		sess.writeUnit(w, serial.EncodeFrame(&cs.Frames[i], prog, codec))
	}
	w.Uvarint(uint64(len(cs.Statics)))
	for i := range cs.Statics {
		sess.writeUnit(w, serial.EncodeClassStatics(&cs.Statics[i], prog, codec))
	}
	w.Uvarint(uint64(len(cs.AllocHints)))
	for _, h := range cs.AllocHints {
		w.Varint(int64(h.Kind))
		w.Varint(h.Len)
	}
	w.Varint(int64(cs.Hops))
	visited := cs.Visited
	if len(visited) > serial.MaxVisits {
		visited = visited[len(visited)-serial.MaxVisits:]
	}
	w.Uvarint(uint64(len(visited)))
	for _, v := range visited {
		w.Varint(int64(v.Node))
		w.Varint(v.AgeNanos)
	}
}

// readDeltaUnit reads one unit written by deltaSession.writeUnit,
// resolving references against the link cache for peer `from` and
// recording fully-shipped units into it.
func (m *Manager) readDeltaUnit(r *wire.Reader, from int) ([]byte, error) {
	if r.Byte() == 1 {
		h := r.Fixed64()
		if err := r.Err(); err != nil {
			return nil, err
		}
		return m.resolveUnit(from, h)
	}
	b := r.Blob()
	if err := r.Err(); err != nil {
		return nil, err
	}
	m.recordUnit(from, serial.Hash64(b), b)
	return b, nil
}

// decodeDeltaState decodes a blob produced by encodeDeltaState, resolving
// unit references against the link cache for `from`. A reference that
// does not resolve returns a delta-miss error; the sender retries in
// full.
func (m *Manager) decodeDeltaState(buf []byte, from int, codec serial.Codec) (*serial.CapturedState, error) {
	prog := m.node.Prog
	r := wire.NewReader(buf)
	r.Expect(tagDelta)
	cs := &serial.CapturedState{
		HomeNode: int32(r.Varint()),
		ThreadID: int32(r.Varint()),
	}
	nf := r.Uvarint()
	if r.Err() != nil || nf > uint64(r.Remaining())+64 {
		return nil, fmt.Errorf("sodee: corrupt delta frame count")
	}
	for i := uint64(0); i < nf; i++ {
		unit, err := m.readDeltaUnit(r, from)
		if err != nil {
			return nil, err
		}
		f, err := serial.DecodeFrame(unit, prog, codec)
		if err != nil {
			return nil, err
		}
		cs.Frames = append(cs.Frames, f)
	}
	ns := r.Uvarint()
	if r.Err() != nil || ns > uint64(r.Remaining())+64 {
		return nil, fmt.Errorf("sodee: corrupt delta statics count")
	}
	for i := uint64(0); i < ns; i++ {
		unit, err := m.readDeltaUnit(r, from)
		if err != nil {
			return nil, err
		}
		s, err := serial.DecodeClassStatics(unit, prog, codec)
		if err != nil {
			return nil, err
		}
		cs.Statics = append(cs.Statics, s)
	}
	for i, n := 0, int(r.Uvarint()); i < n && r.Err() == nil; i++ {
		cs.AllocHints = append(cs.AllocHints, serial.AllocHint{Kind: int32(r.Varint()), Len: r.Varint()})
	}
	cs.Hops = int32(r.Varint())
	for i, n := 0, int(r.Uvarint()); i < n && r.Err() == nil; i++ {
		cs.Visited = append(cs.Visited, serial.Visit{Node: int32(r.Varint()), AgeNanos: r.Varint()})
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	return cs, nil
}
