package sodee

import (
	"errors"
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/membership"
	"repro/internal/netsim"
	"repro/internal/policy"
	"repro/internal/wire"
)

// This file is the adaptive half of Stack-on-Demand: the engine that
// turns the paper's hand-triggered MigrateSOD into on-demand elasticity.
// Nodes gossip cheap load signals over the fabric (KindLoadReport); a
// Balancer watches every node's running jobs, asks a policy.Scheduler
// when and where each should go, and executes the verdicts as whole-stack
// SOD migrations.
//
// Liveness is heartbeat-driven: every load report doubles as a heartbeat
// into the receiver's membership tracker, and send failures feed it too.
// A node that falls silent is suspected, then declared dead, and the
// tracker's verdicts flow into the failure-aware scheduler — nothing in
// this engine is ever *told* a node died (netsim's SetNodeDown is a
// fault-injection hook the detector observes, not an input).

// --- load signals: sampling and gossip ---

// LocalSignals samples this node's load: registered thread count, the
// interpreter step rate since the previous sample, the fault-locality
// counters, and the node's static capacity hints.
func (m *Manager) LocalSignals() policy.Signals {
	m.mu.Lock()
	// Read the counter under the lock: the sampling cursor and the read
	// must be serialized or a concurrent sampler could compute a negative
	// (wrapped) delta.
	instr := m.node.VM.LiveInstructions()
	now := time.Now()
	var rate float64
	if !m.lastSample.IsZero() {
		if dt := now.Sub(m.lastSample).Seconds(); dt > 0 && instr >= m.lastInstr {
			rate = float64(instr-m.lastInstr) / dt
		}
	}
	m.lastInstr, m.lastSample, m.lastRate = instr, now, rate
	m.mu.Unlock()
	return policy.Signals{
		Node:     m.node.ID,
		Runnable: m.node.VM.NumThreads(),
		Cores:    m.node.Cores,
		Speed:    m.node.Speed,
		StepRate: rate,
		Faults:   m.node.ObjMan.FetchesByOwner(),
	}
}

// piggybackWindow is how recently a peer must have received piggybacked
// signals for PublishLoad to skip its dedicated report. Well under the
// membership tracker's SuspectAfter: suppression must never starve a
// peer's failure detector of heartbeats (the piggybacked report it just
// got was one).
const piggybackWindow = 25 * time.Millisecond

// gossipFanout bounds PublishLoad's per-round report count once the known
// set outgrows gossipFanoutFloor: each round, the node reports to the next
// gossipFanout peers of a rotating window over the known set (dead ones
// included, so a rejoined node is noticed within one rotation). Below the
// floor every peer is reported to, exactly as the all-pairs detector did —
// small clusters keep their one-period detection latency. Per protocol
// period the whole cluster sends n·gossipFanout messages: O(n), not the
// all-pairs O(n²); state changes still reach everyone fast because queued
// membership updates piggyback on every report (see membership.Updates).
const (
	gossipFanout      = 4
	gossipFanoutFloor = 8
	// maxPiggybackUpdates caps the membership-update blob per report.
	maxPiggybackUpdates = 16
)

// gossipTargets picks this round's report recipients: the full known set
// below the fanout floor, otherwise the next gossipFanout ids of the
// rotating window.
func (m *Manager) gossipTargets() []int {
	known := m.node.Members.Known()
	if len(known) <= gossipFanoutFloor {
		return known
	}
	m.mu.Lock()
	start := m.gossipCursor % len(known)
	m.gossipCursor = (start + gossipFanout) % len(known)
	m.mu.Unlock()
	out := make([]int, 0, gossipFanout)
	for i := 0; i < gossipFanout; i++ {
		out = append(out, known[(start+i)%len(known)])
	}
	return out
}

// PublishLoad gossips this node's signals to this round's fanout window
// (see gossipTargets), with any queued membership updates piggybacked. It
// returns the sampled signals and the per-peer send errors (an
// unreachable peer is crash evidence for the failure detector). Peers
// that just received these signals piggybacked on a migration are
// skipped for this round — the report would be redundant traffic.
func (m *Manager) PublishLoad() (policy.Signals, map[int]error) {
	s := m.LocalSignals()
	ups := m.node.Members.Updates(maxPiggybackUpdates)
	if n := len(ups); n > 0 {
		m.met.updatesGossiped.Add(int64(n))
	}
	payload := encodeSignalsCapsUpdates(s, m.WireCaps(), ups)
	errs := make(map[int]error)
	for _, id := range m.gossipTargets() {
		if m.recentlyPiggybacked(id, piggybackWindow) {
			m.met.gossipSuppressed.Inc()
			continue
		}
		if err := m.node.EP.Send(id, netsim.KindLoadReport, payload); err != nil {
			errs[id] = err
		}
	}
	return s, errs
}

// piggybackSignals builds the load report that rides a migration data
// message: a fresh runnable count with the last-sampled step rate. It
// reads — never advances — the gossip loop's sampling cursor, so the
// periodic rate windows stay intact however many migrations fire between
// ticks.
func (m *Manager) piggybackSignals() []byte {
	m.mu.Lock()
	rate := m.lastRate
	m.mu.Unlock()
	return encodeSignalsCapsUpdates(policy.Signals{
		Node:     m.node.ID,
		Runnable: m.node.VM.NumThreads(),
		Cores:    m.node.Cores,
		Speed:    m.node.Speed,
		StepRate: rate,
		Faults:   m.node.ObjMan.FetchesByOwner(),
	}, m.WireCaps(), m.node.Members.Updates(maxPiggybackUpdates))
}

// absorbSignals records a peer's load report however it arrived —
// dedicated gossip or piggybacked on a migration — counts it as a
// heartbeat, and merges any piggybacked membership updates into the local
// view (the bounded fanout's dissemination path).
func (m *Manager) absorbSignals(s policy.Signals, caps byte, ups []membership.Update) {
	m.mu.Lock()
	m.peerLoads[s.Node] = s
	m.mu.Unlock()
	m.setPeerCaps(s.Node, caps)
	now := time.Now()
	m.node.Members.Observe(s.Node, now)
	for _, u := range ups {
		m.node.Members.Absorb(u, now)
	}
}

// GossipTick runs one heartbeat round: publish the local load, feed the
// outcome into the node's failure detector, and advance its suspicion
// clocks. It returns the sampled signals and whether the node considers
// itself connected; a node whose own uplink is gone (netsim marks this
// with ErrSelfDown) accuses nobody — its silence is for the *peers'*
// detectors to notice.
func (m *Manager) GossipTick() (policy.Signals, bool) {
	sig, errs := m.PublishLoad()
	for _, err := range errs {
		if errors.Is(err, netsim.ErrSelfDown) {
			return sig, false
		}
	}
	now := time.Now()
	for id := range errs {
		m.node.Members.ObserveFailure(id, now)
	}
	// SWIM: confirm every direct send failure through an indirect-probe
	// round (ping-req via up to k alive relays) before the detector's
	// silence timeout may escalate the peer to Dead — one slow or
	// asymmetric link must not kill a node the rest of the cluster can
	// still reach. Rounds run off the heartbeat loop: over TCP a call
	// into a dead peer can stall for a dial timeout, and a blocked
	// heartbeat loop looks exactly like a stalled sweeper — the detector
	// would forgive everyone forever.
	for id := range errs {
		m.startIndirectProbe(id)
	}
	m.node.Members.Sweep(time.Now())
	return sig, true
}

// PeerSignals returns the last gossiped report from each peer, sorted by
// node id for deterministic iteration.
func (m *Manager) PeerSignals() []policy.Signals {
	m.mu.Lock()
	out := make([]policy.Signals, 0, len(m.peerLoads))
	for _, s := range m.peerLoads {
		out = append(out, s)
	}
	m.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

// RunningJobs snapshots the jobs whose thread is currently local and
// unfinished — the migratable population, in start order.
func (m *Manager) RunningJobs() []*Job {
	jobs := m.jobs.Values()
	sort.Slice(jobs, func(i, j int) bool { return jobs[i].ID < jobs[j].ID })
	out := jobs[:0]
	for _, j := range jobs {
		if !j.Done() && j.migratable() {
			out = append(out, j)
		}
	}
	return out
}

func (m *Manager) handleLoadReport(from int, payload []byte) ([]byte, error) {
	// Every load report doubles as a heartbeat: the sender is alive. The
	// trailing capability byte (absent from older senders) negotiates the
	// migration wire format per link; the membership-update blob behind it
	// carries the piggybacked SWIM dissemination.
	s, caps, ups, err := decodeSignalsCaps(payload)
	if err != nil {
		return nil, err
	}
	m.absorbSignals(s, caps, ups)
	return nil, nil
}

// EncodeSignals serializes a load report for the wire.
func EncodeSignals(s policy.Signals) []byte {
	w := wire.NewWriter(64)
	w.Varint(int64(s.Node))
	w.Varint(int64(s.Runnable))
	w.Varint(int64(s.Cores))
	w.Fixed64(math.Float64bits(s.Speed))
	w.Fixed64(math.Float64bits(s.StepRate))
	w.Uvarint(uint64(len(s.Faults)))
	for node, c := range s.Faults {
		w.Varint(int64(node))
		w.Varint(c)
	}
	return w.Bytes()
}

// encodeSignalsCapsUpdates appends this node's wire-capability byte and
// any queued membership updates to a load report. Receivers that predate
// the capability field parse the fixed fields and never look at the tail;
// senders that predate it emit no tail and are taken as capability-zero
// with no updates. Either way the link falls back to the full-state
// migration format.
func encodeSignalsCapsUpdates(s policy.Signals, caps byte, ups []membership.Update) []byte {
	buf := append(EncodeSignals(s), caps)
	if len(ups) == 0 {
		return buf
	}
	w := wire.NewWriter(8 + 8*len(ups))
	w.Uvarint(uint64(len(ups)))
	for _, u := range ups {
		w.Varint(int64(u.Node))
		w.Byte(byte(u.State))
		w.Uvarint(u.Inc)
	}
	return append(buf, w.Bytes()...)
}

// readSignals parses the fixed load-report fields from r.
func readSignals(r *wire.Reader) policy.Signals {
	s := policy.Signals{
		Node:     int(r.Varint()),
		Runnable: int(r.Varint()),
		Cores:    int(r.Varint()),
		Speed:    math.Float64frombits(r.Fixed64()),
		StepRate: math.Float64frombits(r.Fixed64()),
	}
	if n := int(r.Uvarint()); n > 0 {
		s.Faults = make(map[int]int64, n)
		for i := 0; i < n && r.Err() == nil; i++ {
			node := int(r.Varint())
			s.Faults[node] = r.Varint()
		}
	}
	return s
}

// DecodeSignals parses a wire-format load report.
func DecodeSignals(payload []byte) (policy.Signals, error) {
	r := wire.NewReader(payload)
	s := readSignals(r)
	return s, r.Err()
}

// decodeSignalsCaps parses a load report plus its optional trailing
// capability byte and membership-update blob.
func decodeSignalsCaps(payload []byte) (policy.Signals, byte, []membership.Update, error) {
	r := wire.NewReader(payload)
	s := readSignals(r)
	var caps byte
	if r.Err() == nil && r.Remaining() > 0 {
		caps = r.Byte()
	}
	var ups []membership.Update
	if r.Err() == nil && r.Remaining() > 0 {
		n := int(r.Uvarint())
		for i := 0; i < n && r.Err() == nil; i++ {
			ups = append(ups, membership.Update{
				Node:  int(r.Varint()),
				State: membership.State(r.Byte()),
				Inc:   r.Uvarint(),
			})
		}
	}
	return s, caps, ups, r.Err()
}

// --- the balancer ---

// BalanceOptions tunes AutoBalance.
type BalanceOptions struct {
	// Interval between gossip-and-decide ticks (default 1ms — a few
	// hundred decision rounds per second, far above the migration rate).
	Interval time.Duration
	// Frames per migration; 0 means WholeStack (offload the entire job).
	Frames int
	// Flow of the issued migrations (default FlowReturnHome: results
	// flow back to the job at its home node).
	Flow Flow
	// Steal enables the pull half: idle nodes issue steal requests to
	// loaded peers, and every node answers them, so migration is initiated
	// from either side of a link. StealPolicy tunes the margins (zero
	// value = defaults matching the Threshold push policy).
	Steal       bool
	StealPolicy policy.Steal
	// HopBudget caps lifetime migrations per job (0 = the policy package
	// default, currently 4; negative = unlimited). Migrated-in jobs are
	// re-balance- and steal-eligible until the budget is spent.
	HopBudget int
	// Cooldown quarantines a job from nodes it recently left (0 = the
	// policy package default; negative = none) — the anti-ping-pong knob.
	Cooldown time.Duration
	// Chain arms the workflow chain planner: jobs submitted chained
	// (StartJobChained / Client.SubmitChain) are placed as multi-segment
	// FlowForward pipelines instead of whole-stack pushes — each stack
	// split across the best nodes, residuals planted ahead of execution,
	// results forwarded node to node. Chain-owned jobs are skipped by the
	// push policy; everything else balances as before.
	Chain bool
	// ChainAll treats every job as chain-owned (benchmarks and clusters
	// dedicated to workflow pipelines).
	ChainAll bool
	// ChainPlanner tunes the planner (zero value = defaults).
	ChainPlanner policy.ChainPlanner
}

// BalanceStats aggregates one balancer's activity. Migrations is the
// total; Pushed/Stolen/Rebalanced split it by direction: pushes of
// home-grown jobs, steals won by this balancer's nodes, and onward moves
// of migrated-in jobs.
type BalanceStats struct {
	Ticks            int
	Decisions        int
	Migrations       int
	FailedMigrations int
	Pushed           int
	Stolen           int
	Rebalanced       int
	// Chained counts chain-plan executions (each moves one job's whole
	// stack as a multi-segment pipeline); ChainSegments counts the links
	// those plans placed, local tails included.
	Chained       int
	ChainSegments int
	// MigrationsTo counts successful migrations by destination.
	MigrationsTo map[int]int
}

// Balancer runs the cluster's adaptive offload loop until stopped.
type Balancer struct {
	c     *Cluster
	sched *policy.Scheduler
	opts  BalanceOptions

	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once

	// unsubscribe detaches the membership subscriptions feeding sched.
	unsubscribe []func()

	mu    sync.Mutex
	stats BalanceStats
	// stealBusy marks nodes with a steal request outstanding. Requests
	// run off the tick goroutine — the victim answers only after the
	// transfer, which can wait arbitrarily long for the stolen thread's
	// next safe point, and the tick also carries every node's heartbeat
	// gossip: blocking it would get healthy nodes declared dead.
	stealBusy map[int]bool
	// chainBusy counts chain executions in flight per node (same
	// off-tick reasoning as steals: planting links is a round of RPCs,
	// and the suspension waits for the thread's next safe point). Capped
	// so a burst of chained jobs pipelines its placements instead of
	// serializing behind one plant round trip per slow link.
	chainBusy map[int]int
	// chainActive marks jobs with a chain attempt in flight, so two
	// ticks cannot double-launch one job.
	chainActive map[chainKey]bool
	// chainSnooze backs off chain attempts per job after the planner
	// declines one, so the tick does not park the same thread every
	// round just to learn nothing changed.
	chainSnooze map[chainKey]time.Time
}

type chainKey struct {
	node int
	job  uint64
}

const (
	// chainSnoozeTicks is how many balance intervals a declined (or
	// failed) chain attempt sleeps before the job is considered again.
	chainSnoozeTicks = 8
	// maxChainPerNode bounds concurrent chain executions per node.
	maxChainPerNode = 4
)

// AutoBalance starts the adaptive offload engine over this cluster: every
// Interval, nodes gossip their load signals (each report doubling as a
// heartbeat) and the given policy decides, per running job, whether to
// stay or migrate and where. Decisions are executed as SOD migrations.
// Liveness flows from the nodes' membership trackers into the
// failure-aware scheduler: a destination that stops heartbeating — or
// fails a send — is excluded from every later verdict until it is heard
// from again, and a migration that fails in flight falls back to local
// execution (the job is never wedged). Call Stop to halt the loop; the
// cluster keeps working.
func (c *Cluster) AutoBalance(p policy.Policy, opts BalanceOptions) *Balancer {
	if opts.Interval <= 0 {
		opts.Interval = time.Millisecond
	}
	if opts.Frames == 0 {
		opts.Frames = WholeStack
	}
	b := &Balancer{
		c:           c,
		sched:       policy.NewScheduler(p),
		opts:        opts,
		stop:        make(chan struct{}),
		done:        make(chan struct{}),
		stealBusy:   make(map[int]bool),
		chainBusy:   make(map[int]int),
		chainActive: make(map[chainKey]bool),
		chainSnooze: make(map[chainKey]time.Time),
	}
	// The hop gate rides inside the scheduler: every per-job verdict is
	// bounded by the budget and the revisit cooldown, whatever the policy.
	gate := policy.HopGate{Budget: opts.HopBudget, Cooldown: opts.Cooldown}
	b.sched.Gate = gate
	if opts.Steal {
		for _, n := range c.Nodes {
			n.Mgr.EnableSteal(opts.StealPolicy, gate)
		}
	}
	b.mu.Lock()
	b.stats.MigrationsTo = make(map[int]int)
	b.mu.Unlock()
	// Membership verdicts drive the scheduler's failed set: any node's
	// tracker declaring a peer suspect/dead bars it as a destination;
	// hearing from it again readmits it.
	for _, n := range c.Nodes {
		cancel := n.Members.OnChange(func(ev membership.Event) {
			if ev.State == membership.Alive {
				b.sched.MarkAlive(ev.Node)
			} else {
				b.sched.MarkFailed(ev.Node)
			}
		})
		b.unsubscribe = append(b.unsubscribe, cancel)
		for _, mem := range n.Members.Snapshot() {
			if mem.State != membership.Alive {
				b.sched.MarkFailed(mem.Node)
			}
		}
	}
	go b.loop()
	return b
}

// Scheduler exposes the failure-aware decision gate (tests and operators
// mark nodes failed/alive through it).
func (b *Balancer) Scheduler() *policy.Scheduler { return b.sched }

// Stats returns a copy of the balancer's counters.
func (b *Balancer) Stats() BalanceStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	s := b.stats
	s.MigrationsTo = make(map[int]int, len(b.stats.MigrationsTo))
	for k, v := range b.stats.MigrationsTo {
		s.MigrationsTo[k] = v
	}
	return s
}

// Stop halts the loop and waits for the in-flight tick to finish. Safe to
// call more than once.
func (b *Balancer) Stop() {
	b.stopOnce.Do(func() { close(b.stop) })
	<-b.done
	b.mu.Lock()
	cancels := b.unsubscribe
	b.unsubscribe = nil
	b.mu.Unlock()
	for _, cancel := range cancels {
		cancel()
	}
}

func (b *Balancer) loop() {
	defer close(b.done)
	ticker := time.NewTicker(b.opts.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-b.stop:
			return
		case <-ticker.C:
			b.tick()
		}
	}
}

// nodeIDs returns the cluster's node ids in ascending order.
func (b *Balancer) nodeIDs() []int {
	ids := make([]int, 0, len(b.c.Nodes))
	for id := range b.c.Nodes {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// staticRTT is the round-trip hint for a link with no measured latency
// yet: the simulated fabric knows its configured propagation delay; a
// real transport starts at zero and relies on measurements.
func (b *Balancer) staticRTT(a, peer int) time.Duration {
	if b.c.Net == nil {
		return 0
	}
	return 2 * b.c.Net.LinkSpecBetween(a, peer).Latency
}

// tick runs one gossip round followed by one decision round.
func (b *Balancer) tick() {
	b.mu.Lock()
	b.stats.Ticks++
	b.mu.Unlock()

	ids := b.nodeIDs()

	// Gossip: every node heartbeats its load signals, and the outcome
	// feeds its failure detector (see GossipTick). A node whose own
	// uplink is gone is skipped for the decision round — its stale view
	// must not issue migrations — and its silence gets it suspected by
	// the peers' detectors, whose verdicts reach the scheduler through
	// the membership subscription.
	localSig := make(map[int]policy.Signals, len(ids))
	connected := make(map[int]bool, len(ids))
	for _, id := range ids {
		n := b.c.Nodes[id]
		sig, ok := n.Mgr.GossipTick()
		localSig[id] = sig
		connected[id] = ok
	}

	// Pull: idle nodes go hunting before the push round, so spare
	// capacity claims work even when every loaded node's policy would
	// hold. One steal attempt per idle node per tick keeps the request
	// traffic bounded.
	if b.opts.Steal {
		for _, id := range ids {
			if !connected[id] {
				continue
			}
			n := b.c.Nodes[id]
			local, ok := localSig[id]
			if !ok {
				local = n.Mgr.LocalSignals()
			}
			local.Runnable = n.VM.NumThreads()
			peers := n.Mgr.PeerSignals()
			alive := peers[:0]
			for _, p := range peers {
				if !b.sched.Failed(p.Node) {
					alive = append(alive, p)
				}
			}
			victim, ok := b.opts.StealPolicy.ShouldSteal(policy.View{Local: local, Peers: alive})
			if !ok {
				continue
			}
			// At most one outstanding request per node, issued off the
			// tick goroutine (see stealBusy).
			b.mu.Lock()
			busy := b.stealBusy[id]
			if !busy {
				b.stealBusy[id] = true
			}
			b.mu.Unlock()
			if busy {
				continue
			}
			go func(n *Node, id, victim, runnable int) {
				defer func() {
					b.mu.Lock()
					delete(b.stealBusy, id)
					b.mu.Unlock()
				}()
				won, err := n.Mgr.RequestSteal(victim, runnable)
				if err != nil {
					if isUnreachable(err) {
						n.Members.ObserveFailure(victim, time.Now())
						b.sched.MarkFailed(victim)
					}
					return
				}
				if won {
					b.mu.Lock()
					b.stats.Migrations++
					b.stats.Stolen++
					b.stats.MigrationsTo[id]++
					b.mu.Unlock()
				}
			}(n, id, victim, local.Runnable)
		}
	}

	// Decide: per node, per running job. The working copies of the local
	// and peer signals are adjusted after every issued migration so one
	// tick does not dump an entire burst onto the same idle destination.
	for _, id := range ids {
		n := b.c.Nodes[id]
		if !connected[id] {
			continue
		}
		jobs := n.Mgr.RunningJobs()
		if len(jobs) == 0 {
			continue
		}
		// Reuse the signals sampled during this tick's gossip: sampling
		// again microseconds later would compute a degenerate step rate
		// over a near-zero window.
		local, ok := localSig[id]
		if !ok {
			local = n.Mgr.LocalSignals()
		}
		// Runnable may have moved since the gossip sample; refresh it.
		local.Runnable = n.VM.NumThreads()
		peers := n.Mgr.PeerSignals()
		// RTT: prefer the EWMA of measured migration wire latencies; fall
		// back to the static link hint until a migration has been timed.
		rtt := make(map[int]time.Duration, len(peers))
		for _, p := range peers {
			if lat, measured := n.Mgr.WireLatency(p.Node); measured {
				rtt[p.Node] = lat
			} else {
				rtt[p.Node] = b.staticRTT(id, p.Node)
			}
		}
		// Chain-owned jobs go to the planner, not the push policy: their
		// stacks are split into forward pipelines, one execution in
		// flight per node (see tryChain for the off-tick reasoning).
		chainOwned := func(job *Job) bool {
			return b.opts.Chain && (b.opts.ChainAll || job.Chained())
		}
		if b.opts.Chain {
			b.tryChain(n, id, jobs, chainOwned)
		}
		for _, job := range jobs {
			if chainOwned(job) {
				continue
			}
			view := policy.View{Local: local, Peers: peers, RTT: rtt}
			// Per-job verdicts run through the hop gate: a migrated-in
			// job is eligible for further moves (re-balancing) until its
			// budget is spent, but never back to a node it just left.
			d := b.sched.DecideJob(view, job.Trace(), time.Now())
			b.mu.Lock()
			b.stats.Decisions++
			b.mu.Unlock()
			if !d.Migrate {
				continue
			}
			remote := job.Remote()
			reason := ReasonPushed
			if remote {
				reason = ReasonRebalanced
			}
			_, err := n.Mgr.MigrateSOD(job, SODOptions{
				NFrames: b.opts.Frames, Dest: d.Dest, Flow: b.opts.Flow,
				Reason: reason,
			})
			if err != nil {
				b.mu.Lock()
				b.stats.FailedMigrations++
				b.mu.Unlock()
				if isUnreachable(err) {
					// Crash evidence for the detector; the scheduler mark
					// follows from the membership event.
					n.Members.ObserveFailure(d.Dest, time.Now())
					b.sched.MarkFailed(d.Dest)
				}
				continue
			}
			b.mu.Lock()
			b.stats.Migrations++
			if remote {
				b.stats.Rebalanced++
			} else {
				b.stats.Pushed++
			}
			b.stats.MigrationsTo[d.Dest]++
			b.mu.Unlock()
			local.Runnable--
			for i := range peers {
				if peers[i].Node == d.Dest {
					peers[i].Runnable++
				}
			}
		}
	}
}

// tryChain starts at most one chain execution on node id: the first
// chain-owned job not inside its snooze window is suspended, planned
// through the scheduler's gate-and-liveness filter, and — when a plan
// comes back — executed as a planted forward pipeline. The work runs off
// the tick goroutine: planting is a round of RPCs and the suspension
// waits for the thread's next safe point, while the tick carries every
// node's heartbeat gossip. A declined or failed attempt snoozes the job
// for a few intervals so the planner is not parking the same thread
// every tick just to learn nothing changed.
func (b *Balancer) tryChain(n *Node, id int, jobs []*Job, owned func(*Job) bool) {
	now := time.Now()
	b.mu.Lock()
	for k, t := range b.chainSnooze {
		if now.After(t) {
			delete(b.chainSnooze, k)
		}
	}
	var picks []*Job
	for _, job := range jobs {
		if b.chainBusy[id] >= maxChainPerNode {
			break
		}
		if !owned(job) {
			continue
		}
		key := chainKey{id, job.ID}
		if b.chainActive[key] {
			continue
		}
		if t, ok := b.chainSnooze[key]; ok && now.Before(t) {
			continue
		}
		b.chainActive[key] = true
		b.chainBusy[id]++
		picks = append(picks, job)
	}
	b.mu.Unlock()

	for _, pick := range picks {
		pick := pick
		go func() {
			defer func() {
				b.mu.Lock()
				delete(b.chainActive, chainKey{id, pick.ID})
				if b.chainBusy[id]--; b.chainBusy[id] <= 0 {
					delete(b.chainBusy, id)
				}
				b.mu.Unlock()
			}()
			var plan policy.ChainPlan
			_, err := n.Mgr.MigrateChain(pick, func(frames []policy.FrameSignal) (policy.ChainPlan, error) {
				// The view is rebuilt *after* the thread has parked:
				// suspension can wait through a long native or a queued
				// core, and planning on the tick-time snapshot would mean
				// planning on data as stale as that wait. Local signals are
				// assembled directly (not via LocalSignals, whose step-rate
				// sampling cursor belongs to the gossip loop); the planner
				// scores on runnable/cores/speed/faults, all fresh here.
				view := policy.View{
					Local: policy.Signals{
						Node:     id,
						Runnable: n.VM.NumThreads(),
						Cores:    n.Cores,
						Speed:    n.Speed,
						Faults:   n.ObjMan.FetchesByOwner(),
					},
					Peers: n.Mgr.PeerSignals(),
				}
				view.RTT = make(map[int]time.Duration, len(view.Peers))
				for _, p := range view.Peers {
					if lat, measured := n.Mgr.WireLatency(p.Node); measured {
						view.RTT[p.Node] = lat
					} else {
						view.RTT[p.Node] = b.staticRTT(id, p.Node)
					}
				}
				p, ok := b.sched.PlanChain(policy.ChainView{
					View: view, Frames: frames, Trace: pick.Trace(),
				}, b.opts.ChainPlanner, time.Now())
				if !ok {
					return policy.ChainPlan{}, ErrChainNotPlanned
				}
				plan = p
				return p, nil
			}, ReasonChained)
			b.mu.Lock()
			defer b.mu.Unlock()
			switch {
			case err == nil:
				b.stats.Migrations++
				b.stats.Chained++
				b.stats.ChainSegments += len(plan.Segments)
				b.stats.MigrationsTo[plan.Segments[0].Dest]++
			case errors.Is(err, ErrChainNotPlanned):
				b.chainSnooze[chainKey{id, pick.ID}] = time.Now().Add(chainSnoozeTicks * b.opts.Interval)
			default:
				// Includes the ship-failed-recovered-locally case: the chain
				// still completes, but the execution did not go as planned.
				b.stats.FailedMigrations++
				b.chainSnooze[chainKey{id, pick.ID}] = time.Now().Add(chainSnoozeTicks * b.opts.Interval)
			}
		}()
	}
}

// isUnreachable classifies a migration error as a destination crash (as
// opposed to a benign race like the job finishing first).
func isUnreachable(err error) bool {
	return errors.Is(err, netsim.ErrUnreachable) || errors.Is(err, netsim.ErrSelfDown)
}
