package sodee_test

import (
	"testing"
	"time"

	"repro/internal/policy"
	"repro/internal/sodee"
	"repro/internal/value"
)

// Work-stealing and multi-hop re-balancing over the simulated fabric.

// TestStealOnlyBalancerDrainsBurst: with the push policy disabled
// (policy.Never) and Steal enabled, idle nodes pull the burst off the
// loaded node entirely on their own initiative — and every job still
// computes the right answer.
func TestStealOnlyBalancerDrainsBurst(t *testing.T) {
	c := cruncherCluster(t,
		sodee.NodeConfig{ID: 1, Preloaded: true, Cores: 1, Slow: 16},
		sodee.NodeConfig{ID: 2, Preloaded: true, Cores: 1},
		sodee.NodeConfig{ID: 3, Preloaded: true, Cores: 1},
	)
	b := c.AutoBalance(policy.Never{}, sodee.BalanceOptions{
		Interval: 500 * time.Microsecond, Steal: true,
	})
	defer b.Stop()

	const njobs = 6
	jobs := make([]*sodee.Job, njobs)
	seeds := make([]int64, njobs)
	for i := range jobs {
		seeds[i] = int64(200 + i)
		j, err := c.Nodes[1].Mgr.StartJob("main", value.Int(seeds[i]), value.Int(crunchIters))
		if err != nil {
			t.Fatal(err)
		}
		jobs[i] = j
	}
	waitAll(t, jobs, seeds)
	b.Stop()

	st := b.Stats()
	if st.Stolen == 0 {
		t.Fatalf("idle nodes never stole: %+v", st)
	}
	if st.Pushed != 0 {
		t.Errorf("the Never policy pushed %d jobs", st.Pushed)
	}
	if st.Migrations != st.Pushed+st.Stolen+st.Rebalanced {
		t.Errorf("direction split %d+%d+%d does not sum to %d migrations",
			st.Pushed, st.Stolen, st.Rebalanced, st.Migrations)
	}
	if remote := c.Nodes[2].VM.LiveInstructions() + c.Nodes[3].VM.LiveInstructions(); remote == 0 {
		t.Error("thieves executed nothing despite winning steals")
	}
	// Node-level counters agree: the victim granted what the thieves won.
	victim := c.Nodes[1].Mgr.StealStats()
	if victim.Granted == 0 || victim.Granted < st.Stolen {
		t.Errorf("victim counters inconsistent with balancer: %+v vs stolen %d", victim, st.Stolen)
	}
}

// TestPushPlusStealSplitsDirections: the default push policy with Steal
// enabled reports every migration under exactly one direction.
func TestPushPlusStealSplitsDirections(t *testing.T) {
	c := cruncherCluster(t,
		sodee.NodeConfig{ID: 1, Preloaded: true, Cores: 1, Slow: 16},
		sodee.NodeConfig{ID: 2, Preloaded: true, Cores: 1},
		sodee.NodeConfig{ID: 3, Preloaded: true, Cores: 1},
	)
	b := c.AutoBalance(policy.Threshold{}, sodee.BalanceOptions{
		Interval: 500 * time.Microsecond, Steal: true,
	})
	defer b.Stop()

	const njobs = 6
	jobs := make([]*sodee.Job, njobs)
	seeds := make([]int64, njobs)
	for i := range jobs {
		seeds[i] = int64(300 + i)
		j, err := c.Nodes[1].Mgr.StartJob("main", value.Int(seeds[i]), value.Int(crunchIters))
		if err != nil {
			t.Fatal(err)
		}
		jobs[i] = j
	}
	waitAll(t, jobs, seeds)
	b.Stop()

	st := b.Stats()
	if st.Migrations == 0 {
		t.Fatalf("burst never moved: %+v", st)
	}
	if st.Migrations != st.Pushed+st.Stolen+st.Rebalanced {
		t.Errorf("direction split %d+%d+%d does not sum to %d migrations",
			st.Pushed, st.Stolen, st.Rebalanced, st.Migrations)
	}
}

// migrateRunningJob whole-stack-migrates a running (ungated) job and
// fails the test on error.
func migrateRunningJob(t *testing.T, c *sodee.Cluster, from int, job *sodee.Job, dest int) {
	t.Helper()
	if _, err := c.Nodes[from].Mgr.MigrateSOD(job, sodee.SODOptions{
		NFrames: sodee.WholeStack, Dest: dest, Flow: sodee.FlowReturnHome,
	}); err != nil {
		t.Fatalf("migrate %d→%d: %v", from, dest, err)
	}
}

// waitRemoteJobs polls until node id hosts want migrated-in jobs (their
// restoration has finished), returning them.
func waitRemoteJobs(t *testing.T, c *sodee.Cluster, id, want int) []*sodee.Job {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		var remote []*sodee.Job
		for _, j := range c.Nodes[id].Mgr.RunningJobs() {
			if j.Remote() {
				remote = append(remote, j)
			}
		}
		if len(remote) >= want {
			return remote
		}
		if time.Now().After(deadline) {
			t.Fatalf("node %d never hosted %d migrated-in jobs", id, want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestMultiHopResultReturnsToOrigin: a job hops 1→2 (push) and then 2→3
// (re-balance of the migrated-in stack); the final result must flush
// straight back to node 1, with the write-back visible at home and the
// hop count accumulated.
func TestMultiHopResultReturnsToOrigin(t *testing.T) {
	c, g := sodCluster(t, []int{1, 2, 3}, true)
	home := c.Nodes[1]
	d := makeData(t, home)
	job, err := home.Mgr.StartJob("main", value.RefVal(d), value.Int(testIters))
	if err != nil {
		t.Fatal(err)
	}
	migrateWhileRunning(t, g, func() (*sodee.MigrationMetrics, error) {
		return home.Mgr.MigrateSOD(job, sodee.SODOptions{
			NFrames: sodee.WholeStack, Dest: 2, Flow: sodee.FlowReturnHome,
		})
	})

	// The migrated-in stack is a first-class job at node 2, carrying its
	// trace.
	remote := waitRemoteJobs(t, c, 2, 1)[0]
	tr := remote.Trace()
	if tr.Hops != 1 {
		t.Errorf("hops after first migration = %d, want 1", tr.Hops)
	}
	if _, ok := tr.Visited[1]; !ok {
		t.Errorf("trace lost the origin node: %+v", tr.Visited)
	}

	// Second hop: re-balance it onward to node 3.
	migrateRunningJob(t, c, 2, remote, 3)
	res, err := job.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res.I != expectedResult(testIters) {
		t.Errorf("result = %d, want %d", res.I, expectedResult(testIters))
	}
	if c.Nodes[3].VM.LiveInstructions() == 0 {
		t.Error("final hop executed nothing")
	}
	// Write-back: the remote increment must land at the data's home.
	if got := home.VM.Heap.MustGet(d).Fields[2].I; got != 1 {
		t.Errorf("Data.hits = %d at home, want 1 (multi-hop write-back)", got)
	}
	// Node 2 no longer tracks the job it passed on.
	if len(c.Nodes[2].Mgr.RunningJobs()) != 0 {
		t.Error("intermediate hop still holds the job wrapper")
	}
}

// TestRebalanceCrashFallbackKeepsLiveOwner: re-balancing a migrated-in
// job toward a dead node must leave it running where it is — the current
// host is its live owner — and the result still reaches the origin.
func TestRebalanceCrashFallbackKeepsLiveOwner(t *testing.T) {
	c, g := sodCluster(t, []int{1, 2, 3}, true)
	home := c.Nodes[1]
	d := makeData(t, home)
	job, err := home.Mgr.StartJob("main", value.RefVal(d), value.Int(testIters))
	if err != nil {
		t.Fatal(err)
	}
	migrateWhileRunning(t, g, func() (*sodee.MigrationMetrics, error) {
		return home.Mgr.MigrateSOD(job, sodee.SODOptions{
			NFrames: sodee.WholeStack, Dest: 2, Flow: sodee.FlowReturnHome,
		})
	})
	remote := waitRemoteJobs(t, c, 2, 1)[0]

	c.Net.SetNodeDown(3, true)
	if _, err := c.Nodes[2].Mgr.MigrateSOD(remote, sodee.SODOptions{
		NFrames: sodee.WholeStack, Dest: 3, Flow: sodee.FlowReturnHome,
	}); err == nil {
		t.Fatal("re-balancing onto a dead node should report failure")
	}
	res, err := job.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res.I != expectedResult(testIters) {
		t.Errorf("result = %d, want %d", res.I, expectedResult(testIters))
	}
	if c.Nodes[3].VM.LiveInstructions() != 0 {
		t.Error("the dead node executed instructions")
	}
}

// TestStealHonorsHopBudget: a victim whose only jobs are already at the
// hop budget denies the steal; raising the budget releases them.
func TestStealHonorsHopBudget(t *testing.T) {
	c := cruncherCluster(t,
		sodee.NodeConfig{ID: 1, Preloaded: true},
		sodee.NodeConfig{ID: 2, Preloaded: true},
		sodee.NodeConfig{ID: 3, Preloaded: true},
	)
	const iters = 3_000_000
	j1, err := c.Nodes[1].Mgr.StartJob("main", value.Int(7), value.Int(iters))
	if err != nil {
		t.Fatal(err)
	}
	j2, err := c.Nodes[1].Mgr.StartJob("main", value.Int(8), value.Int(iters))
	if err != nil {
		t.Fatal(err)
	}
	migrateRunningJob(t, c, 1, j1, 2)
	migrateRunningJob(t, c, 1, j2, 2)
	waitRemoteJobs(t, c, 2, 2)

	// Budget 1: both hosted jobs already took their one hop.
	c.Nodes[2].Mgr.EnableSteal(policy.Steal{}, policy.HopGate{Budget: 1})
	won, err := c.Nodes[3].Mgr.RequestSteal(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if won {
		t.Fatal("steal won a job past its hop budget")
	}
	// Budget 2: eligible again.
	c.Nodes[2].Mgr.EnableSteal(policy.Steal{}, policy.HopGate{Budget: 2})
	won, err = c.Nodes[3].Mgr.RequestSteal(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !won {
		t.Fatal("steal within the hop budget was denied")
	}
	for i, j := range []*sodee.Job{j1, j2} {
		res, werr := j.Wait()
		if werr != nil {
			t.Fatalf("job %d: %v", i, werr)
		}
		if want := crunchExpected(int64(7+i), iters); res.I != want {
			t.Errorf("job %d = %d, want %d", i, res.I, want)
		}
	}
}

// TestStealCooldownBlocksBounceBack: the node a job just left cannot
// steal it straight back, but a third node can take it.
func TestStealCooldownBlocksBounceBack(t *testing.T) {
	c := cruncherCluster(t,
		sodee.NodeConfig{ID: 1, Preloaded: true},
		sodee.NodeConfig{ID: 2, Preloaded: true},
		sodee.NodeConfig{ID: 3, Preloaded: true},
	)
	const iters = 3_000_000
	j1, err := c.Nodes[1].Mgr.StartJob("main", value.Int(9), value.Int(iters))
	if err != nil {
		t.Fatal(err)
	}
	j2, err := c.Nodes[1].Mgr.StartJob("main", value.Int(10), value.Int(iters))
	if err != nil {
		t.Fatal(err)
	}
	migrateRunningJob(t, c, 1, j1, 2)
	migrateRunningJob(t, c, 1, j2, 2)
	waitRemoteJobs(t, c, 2, 2)

	c.Nodes[2].Mgr.EnableSteal(policy.Steal{}, policy.HopGate{Budget: 8, Cooldown: time.Hour})
	// Node 1 is inside both jobs' cooldown window: bounce-back denied.
	won, err := c.Nodes[1].Mgr.RequestSteal(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if won {
		t.Fatal("job bounced straight back to the node it just left")
	}
	// Node 3 never hosted them: eligible.
	won, err = c.Nodes[3].Mgr.RequestSteal(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !won {
		t.Fatal("uninvolved node was denied a legitimate steal")
	}
	for i, j := range []*sodee.Job{j1, j2} {
		res, werr := j.Wait()
		if werr != nil {
			t.Fatalf("job %d: %v", i, werr)
		}
		if want := crunchExpected(int64(9+i), iters); res.I != want {
			t.Errorf("job %d = %d, want %d", i, res.I, want)
		}
	}
}
