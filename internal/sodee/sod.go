package sodee

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bytecode"
	"repro/internal/membership"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/serial"
	"repro/internal/shard"
	"repro/internal/value"
	"repro/internal/vm"
	"repro/internal/wire"
)

// Flow selects the post-completion control path of a SOD migration —
// Fig 1's three scenarios.
type Flow int

const (
	// FlowReturnHome (Fig 1a): the home node keeps the residual stack; the
	// segment's return value flows back and execution resumes at home.
	FlowReturnHome Flow = iota
	// FlowTotal (Fig 1b): the residual frames are pushed to the
	// destination as well; after the segment pops, execution continues
	// locally there — a total migration.
	FlowTotal
	// FlowForward (Fig 1c): the residual is planted on a third node; the
	// segment's return value is forwarded there — multi-domain workflow.
	FlowForward
)

// MigrationMetrics records one migration event's cost breakdown — the
// quantities of Tables III, IV and VII.
type MigrationMetrics struct {
	System     System
	Capture    time.Duration // request received → state ready to transfer
	Transfer   time.Duration // state ready → arrived at destination
	Restore    time.Duration // arrival → execution resumed
	Latency    time.Duration // capture + transfer + restore
	StateBytes int64
	HeapBytes  int64 // eager-copy systems only
	ClassBytes int64
	Rounds     int // pre-copy rounds (Xen)
	Freeze     time.Duration
}

// Job is one top-level computation started on a node — or, when remote is
// set, a migrated-in computation this node is currently hosting. Its
// result arrives locally or via flush messages from wherever the
// computation ended up; a remote job's result is instead routed onward to
// resultTo (usually the job's origin node) when it completes here.
type Job struct {
	ID     uint64
	mgr    *Manager
	mu     sync.Mutex
	th     *vm.Thread // current local thread; nil once fully migrated away
	done   chan struct{}
	result value.Value
	err    error

	// Migration trace (guarded by mu): hops already taken and when the job
	// last left each node. The balancer's hop gate reads it; both fields
	// travel inside the captured state on every further migration.
	hops    int
	visited map[int]time.Time

	// remote marks a migrated-in job: the stack arrived from another node,
	// this Job is the local handle that makes it visible to the balancer
	// (and so eligible for re-balancing and stealing). Its completion is
	// routed to resultTo rather than delivered to a local waiter;
	// resultFallback, when set, is where the result goes instead if the
	// consumer named by resultTo is unreachable (a chain link's recovery
	// route at the chain's origin).
	remote         bool
	resultTo       completion
	resultFallback completion
	expectValue    bool

	// chained marks a job submitted for chain-planned execution: the
	// balancer's chain planner owns its placement (StartJobChained). The
	// mark travels with the stack, so a chained job stolen or pushed
	// before its planner fires stays planner-owned at its new host.
	chained bool

	// evJob/evOrigin, when set, are the job's event identity: lifecycle
	// events publish to evOrigin's bus under id evJob. They diverge from
	// resultTo for activated chain links, whose results flow to the NEXT
	// link's plant token rather than to the origin's job handle.
	evJob    uint64
	evOrigin int

	// waiting marks a job whose local thread is a parked residual holding
	// a resume route — the thread is not executing and must not be
	// captured for migration until its value arrives (the route holds a
	// pointer into it).
	waiting bool

	// started stamps the origin-side submission time; the job's root trace
	// span runs from here to completion. Zero for remote wrappers, whose
	// trace belongs to their origin.
	started time.Time

	// shadowOf marks a re-homing shadow (rehome.go): the origin node whose
	// job this handle stands in for at its successor (0 = not a shadow).
	// quiet suppresses the terminal event publication in complete() — set
	// when the shadow is retired by the origin's normal completion, whose
	// stream already terminated at the origin's bus.
	shadowOf int
	quiet    bool
}

// Thread returns the job's current local thread (nil once fully migrated).
func (j *Job) Thread() *vm.Thread {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.th
}

// Remote reports whether this is a migrated-in job hosted for another
// node (its result routes onward rather than completing a local waiter).
func (j *Job) Remote() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.remote
}

// Chained reports whether the job was submitted for chain-planned
// execution (the balancer's chain planner owns its placement).
func (j *Job) Chained() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.chained
}

// migratable reports whether the job's thread may be captured right now:
// it has one, and it is not a parked residual waiting for a forwarded
// value (capturing that would orphan its resume route).
func (j *Job) migratable() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.th != nil && !j.waiting
}

// Trace snapshots the job's migration history for the policy layer.
func (j *Job) Trace() policy.Trace {
	j.mu.Lock()
	defer j.mu.Unlock()
	tr := policy.Trace{Hops: j.hops}
	if len(j.visited) > 0 {
		tr.Visited = make(map[int]time.Time, len(j.visited))
		for n, t := range j.visited {
			tr.Visited[n] = t
		}
	}
	return tr
}

// Wait blocks for the final result.
func (j *Job) Wait() (value.Value, error) {
	<-j.done
	return j.result, j.err
}

// WaitContext blocks for the final result or the context's end, whichever
// comes first — no goroutine is spawned, so an abandoned wait leaks
// nothing. A ctx error never means the job failed; it is still running.
func (j *Job) WaitContext(ctx context.Context) (value.Value, error) {
	select {
	case <-j.done:
		return j.result, j.err
	case <-ctx.Done():
		return value.Value{}, ctx.Err()
	}
}

// Done reports whether the job has completed.
func (j *Job) Done() bool {
	select {
	case <-j.done:
		return true
	default:
		return false
	}
}

func (j *Job) complete(res value.Value, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	select {
	case <-j.done:
		return
	default:
	}
	j.result = res
	j.err = err
	close(j.done)
	// A remote wrapper's completion is an implementation detail of the
	// hosting node; the origin's handle publishes the terminal event when
	// the flushed result lands there.
	if !j.remote && j.mgr != nil {
		if !j.started.IsZero() {
			// Close the trace's root span (upserting the open one emitted
			// at submission).
			j.mgr.node.Trace.Add(obs.Span{
				ID: obs.RootSpanID, Job: j.ID, Node: j.mgr.node.ID,
				Name: "job", Start: j.started, Dur: time.Since(j.started),
			})
		}
		if !j.quiet {
			ev := JobEvent{
				Job: j.ID, Kind: EvCompleted,
				From: j.mgr.node.ID, To: j.mgr.node.ID,
				Result: res.I,
			}
			if err != nil {
				ev.Err = err.Error()
			}
			j.mgr.bus.Publish(ev)
		}
		if j.shadowOf != 0 {
			j.mgr.retireShadow(j.ID, !j.quiet)
		} else if fb := j.resultFallback; fb != (completion{}) {
			// The origin completed a replicated job normally: retire its
			// shadow at the successor so the dormant copy never resurfaces.
			// Synchronous on purpose: the result usually arrives here by
			// acknowledged flush, and the discharge must be on the wire
			// before that ack — an origin that crashes between the two then
			// also fails the ack, and the executing node re-routes the
			// result to the successor itself.
			j.mgr.sendDischarge(j.ID, fb, res, err)
		}
	}
}

// routeKind discriminates what a flush token resolves to.
type routeKind int

const (
	routeJob          routeKind = iota // complete a job
	routeResume                        // resume a parked residual thread
	routePlanted                       // start a pre-restored continuation
	routeChainRecover                  // rebuild a chain link whose planted node died
)

// chainLinkMeta identifies a planted chain link for eventing and for the
// job wrapper it becomes when control reaches it: which job and origin it
// belongs to, its position in the plan, and the hop metadata its frames
// arrived with (visits re-based to this node's clock).
type chainLinkMeta struct {
	job     uint64
	origin  int
	seg     int
	segOf   int
	hops    int
	visited map[int]time.Time
}

type route struct {
	kind        routeKind
	job         *Job
	th          *vm.Thread
	expectValue bool
	// next is where the routed thread's own completion goes afterwards;
	// fallback is where it goes instead when next is unreachable (a chain
	// recovery route).
	next     completion
	fallback completion
	// chain is set on chain-link routes (planted or recovery): the link
	// publishes segment events and runs as a re-balance-eligible job.
	chain *chainLinkMeta
	// seg holds a recovery route's retained frames (routeChainRecover).
	seg *serial.CapturedState
}

// completion addresses the consumer of a thread's final result.
type completion struct {
	node  int
	token uint64
}

// Manager is a node's migration manager (the paper's "migration manager"
// module, one per node, talking to its peers).
type Manager struct {
	node *Node

	// The hot tables are lock-sharded (see internal/shard): every Submit,
	// flush delivery and remote adoption touches them, and a swarm of
	// concurrent clients must not serialize on one mutex. m.mu below
	// guards only the cold bookkeeping.
	routes *shard.Map[*route]
	jobs   *shard.Map[*Job]
	// nextToken allocates job ids and route tokens lock-free.
	nextToken atomic.Uint64

	// migInFlight guards each job against concurrent migrations: the
	// balancer's push decision and a peer's steal grant can race on the
	// same job, and only one may capture it (SetIfAbsent is the
	// test-and-set).
	migInFlight *shard.Map[struct{}]

	mu          sync.Mutex
	classSource int // node to fetch cold classes from
	classBytes  int64

	// chainRecov tracks the chain recovery routes registered per local
	// job (job id → route tokens), so they can be purged when the job
	// completes without needing them.
	chainRecov map[uint64][]uint64

	// Steal configuration (nil = this node denies steal requests) and the
	// node-local steal counters.
	steal      *stealConfig
	stealStats StealStats

	// Gossiped load state: the last report received from each peer, and
	// the sampling cursor for this node's own step rate. lastRate keeps
	// the most recent sampled rate so piggybacked reports can reuse it
	// without advancing the cursor (see piggybackSignals). gossipCursor
	// rotates PublishLoad's bounded fanout window over the known set.
	peerLoads    map[int]policy.Signals
	lastInstr    uint64
	lastSample   time.Time
	lastRate     float64
	gossipCursor int

	// Origin re-homing (rehome.go): the shadows this node holds as
	// designated successor, keyed by job id.
	rehomeMu   sync.Mutex
	shadowJobs map[uint64]*originShadow
	// probeBusy marks peers with an indirect-probe round in flight, so
	// each heartbeat accusation launches at most one concurrent round.
	probeBusy map[int]bool

	// Delta/streaming wire state (deltacache.go): per-peer link caches of
	// migration units, the capability bytes peers advertised via gossip,
	// this node's own advertised capabilities, and the per-peer timestamp
	// of the last piggybacked load report.
	deltaMu   sync.Mutex
	links     map[int]*linkCache
	peerCaps  map[int]byte
	selfCaps  byte
	lastPiggy map[int]time.Time

	// In-flight streamed-migration data payloads (stream.go): rendezvous
	// between KindMigrateData messages and the control messages that
	// announce them.
	streamMu sync.Mutex
	streams  map[streamKey]*streamEntry

	// Test hooks for the streamed path: testPreStream runs just before the
	// data message is sent; testStreamDelay > 0 sends the data message
	// asynchronously after that delay, widening the restore-waits-for-data
	// window that is nearly zero on a healthy fabric.
	testPreStream   func(dest int)
	testStreamDelay time.Duration

	// wireLat holds an EWMA of the measured per-migration wire latency to
	// each destination — the cost-model calibration source: once a real
	// transfer has been timed, policies score that link by observation
	// instead of by static hint.
	wireLat map[int]time.Duration

	// bus publishes job lifecycle events for jobs that originated on this
	// node; peers acting on a migrated-in job forward their events here.
	bus *Bus

	// met holds the pre-registered hot-path instruments (see mgrMetrics);
	// name lookups happen once, at construction.
	met *mgrMetrics

	// Metrics of migrations this node initiated: a bounded ring (guarded
	// by mu) so a long-lived node retains the most recent migRingCap
	// records instead of appending forever. migNext is the next write
	// slot once the ring is full; migTotal counts lifetime recordings.
	migRing  []MigrationMetrics
	migNext  int
	migTotal uint64
}

// migRingCap bounds the retained per-migration metrics records. 256 is
// plenty for any diagnostic window; older records are summarized by the
// registry's counters and histograms anyway.
const migRingCap = 256

// mgrMetrics is the manager's pre-registered instrument panel. Counters
// and histograms live in the node's Registry under the sod_* names the
// README catalogs; the hot paths hold these pointers so an increment is
// one striped atomic add, never a map lookup.
type mgrMetrics struct {
	migrations  [5]*obs.Counter // sod_migrations_total{reason=...}, indexed by MigrateReason
	migFailures *obs.Counter
	captureSec  *obs.Histogram
	transferSec *obs.Histogram
	restoreSec  *obs.Histogram
	latencySec  *obs.Histogram
	stateBytes  *obs.Histogram

	chainPlanted   *obs.Counter
	chainForwarded *obs.Counter
	flushRetries   *obs.Counter

	stealRTTSec     *obs.Histogram
	stealReqSent    *obs.Counter
	stealWon        *obs.Counter
	stealReqServed  *obs.Counter
	stealGranted    *obs.Counter
	stealDenied     *obs.Counter
	stealFailedXfer *obs.Counter

	deltaHits        *obs.Counter // units sent as cache references
	deltaSaved       *obs.Counter // wire bytes avoided by those references
	deltaMisses      *obs.Counter // full resends after a reference failed
	streamedMig      *obs.Counter // migrations whose statics streamed
	gossipPiggyback  *obs.Counter // load reports that rode a migration
	gossipSuppressed *obs.Counter // dedicated reports skipped as redundant

	probeAcks       *obs.Counter // indirect-probe rounds answered by a relay
	probeMisses     *obs.Counter // completed rounds with no relay reaching the target
	pingReqServed   *obs.Counter // ping-req relays this node performed for peers
	updatesGossiped *obs.Counter // membership verdicts piggybacked on outgoing gossip

	rehomeReplicated *obs.Counter // origin shadows installed at a successor
	rehomeAdopted    *obs.Counter // shadows adopted after the origin died
	rehomeDiscarded  *obs.Counter // shadows retired by the origin's normal completion
	rehomeCompleted  *obs.Counter // re-homed results delivered at the successor
}

func newMgrMetrics(r *obs.Registry) *mgrMetrics {
	mm := &mgrMetrics{
		migFailures: r.Counter("sod_migration_failures_total"),
		captureSec:  r.Histogram("sod_migration_capture_seconds", obs.DurationBuckets),
		transferSec: r.Histogram("sod_migration_transfer_seconds", obs.DurationBuckets),
		restoreSec:  r.Histogram("sod_migration_restore_seconds", obs.DurationBuckets),
		latencySec:  r.Histogram("sod_migration_latency_seconds", obs.DurationBuckets),
		stateBytes:  r.Histogram("sod_migration_state_bytes", obs.ByteBuckets),

		chainPlanted:   r.Counter("sod_chain_links_planted_total"),
		chainForwarded: r.Counter("sod_chain_links_forwarded_total"),
		flushRetries:   r.Counter("sod_flush_retries_total"),

		stealRTTSec:     r.Histogram("sod_steal_round_trip_seconds", obs.DurationBuckets),
		stealReqSent:    r.Counter("sod_steal_requests_sent_total"),
		stealWon:        r.Counter("sod_steal_won_total"),
		stealReqServed:  r.Counter("sod_steal_requests_served_total"),
		stealGranted:    r.Counter("sod_steal_granted_total"),
		stealDenied:     r.Counter("sod_steal_denied_total"),
		stealFailedXfer: r.Counter("sod_steal_failed_transfers_total"),

		deltaHits:        r.Counter("sod_delta_hits_total"),
		deltaSaved:       r.Counter("sod_delta_bytes_saved"),
		deltaMisses:      r.Counter("sod_delta_misses_total"),
		streamedMig:      r.Counter("sod_streamed_migrations_total"),
		gossipPiggyback:  r.Counter("sod_gossip_piggybacked_total"),
		gossipSuppressed: r.Counter("sod_gossip_suppressed_total"),

		probeAcks:       r.Counter(obs.Label("sod_membership_probes_total", "result", "ack")),
		probeMisses:     r.Counter(obs.Label("sod_membership_probes_total", "result", "miss")),
		pingReqServed:   r.Counter("sod_membership_pingreq_total"),
		updatesGossiped: r.Counter("sod_membership_updates_total"),

		rehomeReplicated: r.Counter("sod_rehome_replicated_total"),
		rehomeAdopted:    r.Counter("sod_rehome_adopted_total"),
		rehomeDiscarded:  r.Counter("sod_rehome_discarded_total"),
		rehomeCompleted:  r.Counter("sod_rehome_completed_total"),
	}
	for i := range mm.migrations {
		mm.migrations[i] = r.Counter(obs.Label("sod_migrations_total", "reason", MigrateReason(i).String()))
	}
	return mm
}

// observeMigration feeds one successful migration into the registry:
// per-reason count, phase histograms, and the per-destination byte
// counter (the future `-table wire` baseline).
func (m *Manager) observeMigration(mm *MigrationMetrics, reason MigrateReason, dest int, payloadBytes int64) {
	mt := m.met
	mt.migrations[int(reason)%len(mt.migrations)].IncKeyed(uint64(dest))
	mt.captureSec.ObserveDuration(int64(mm.Capture))
	mt.transferSec.ObserveDuration(int64(mm.Transfer))
	mt.restoreSec.ObserveDuration(int64(mm.Restore))
	mt.latencySec.ObserveDuration(int64(mm.Latency))
	mt.stateBytes.Observe(float64(mm.StateBytes))
	m.node.Obs.Counter(obs.Label("sod_migration_bytes_total", "dest", strconv.Itoa(dest))).
		AddKeyed(uint64(dest), payloadBytes)
}

func newManager(n *Node) *Manager {
	m := &Manager{
		node:        n,
		routes:      shard.NewMap[*route](),
		jobs:        shard.NewMap[*Job](),
		migInFlight: shard.NewMap[struct{}](),
		chainRecov:  make(map[uint64][]uint64),
		peerLoads:   make(map[int]policy.Signals),
		wireLat:     make(map[int]time.Duration),
		links:       make(map[int]*linkCache),
		peerCaps:    make(map[int]byte),
		selfCaps:    capAll,
		lastPiggy:   make(map[int]time.Time),
		streams:     make(map[streamKey]*streamEntry),
		shadowJobs:  make(map[uint64]*originShadow),
		probeBusy:   make(map[int]bool),
		classSource: -1,
		bus:         NewBus(n.ID),
		met:         newMgrMetrics(n.Obs),
	}
	// Job ids double as flush-route tokens and must be cluster-unique —
	// origin re-homing registers a job's id as a route at its successor,
	// so two nodes minting the same id would collide there. Seed the token
	// stream with the node id in the high 32 bits (mirroring spanID's
	// scheme, whose low-bits mask keeps span uniqueness intact).
	m.nextToken.Store(uint64(uint32(n.ID)) << 32)
	// A peer that died or rejoined lost its half of every link cache:
	// referencing units against it would at best miss and at worst (death,
	// restart, re-listen on the same id) resolve against a stale cache.
	// Evict on both transitions; the cache rebuilds on the next migration.
	n.Members.OnChange(func(ev membership.Event) {
		if ev.State == membership.Dead || ev.State == membership.Alive {
			m.dropLink(ev.Node)
		}
		if ev.State == membership.Dead {
			m.adoptOrigin(ev.Node)
		}
	})
	m.bus.SetObs(
		n.Obs.Counter("sod_events_published_total"),
		n.Obs.Counter("sod_events_coalesced_total"),
		n.Obs.Counter("sod_event_subs_evicted_total"),
	)
	n.EP.Handle(netsim.KindMigrate, m.handleMigrate)
	n.EP.Handle(netsim.KindMigrateData, m.handleMigrateData)
	n.EP.Handle(netsim.KindFlush, m.handleFlush)
	n.EP.Handle(netsim.KindClassRequest, m.handleClassRequest)
	n.EP.Handle(netsim.KindProcMigrate, m.handleProcMigrate)
	n.EP.Handle(netsim.KindThreadMigrate, m.handleThreadMigrate)
	n.EP.Handle(netsim.KindPage, m.handlePage)
	n.EP.Handle(netsim.KindLoadReport, m.handleLoadReport)
	n.EP.Handle(netsim.KindStealRequest, m.handleStealRequest)
	n.EP.Handle(netsim.KindStealGrant, m.handleStealGrant)
	n.EP.Handle(netsim.KindJobEvent, m.handleJobEvent)
	n.EP.Handle(netsim.KindTraceSpan, m.handleTraceSpan)
	n.EP.Handle(netsim.KindPing, m.handlePing)
	n.EP.Handle(netsim.KindPingReq, m.handlePingReq)
	n.EP.Handle(netsim.KindRehome, m.handleRehome)
	return m
}

// spanID derives a trace-unique span id from this node's token stream:
// node id in the high 32 bits, a fresh token in the low bits — spans
// emitted concurrently by different source nodes for the same job can
// never collide, and never collide with RootSpanID (token 0 is unused).
func (m *Manager) spanID() uint64 {
	return uint64(uint32(m.node.ID))<<32 | (m.newToken() & 0xFFFFFFFF)
}

// emitSpans delivers spans to the trace store at the job's origin:
// locally when this node is the origin, otherwise forwarded over
// KindTraceSpan. Best effort, like the event stream — a span is
// telemetry, never load-bearing state.
func (m *Manager) emitSpans(origin int, spans ...obs.Span) {
	if origin == m.node.ID {
		m.node.Trace.Add(spans...)
		return
	}
	m.node.EP.Send(origin, netsim.KindTraceSpan, obs.EncodeSpans(spans)) //nolint:errcheck // best effort
}

// handleTraceSpan receives forwarded spans for jobs that originated here.
func (m *Manager) handleTraceSpan(from int, payload []byte) ([]byte, error) {
	spans, err := obs.DecodeSpans(payload)
	if err != nil {
		return nil, err
	}
	m.node.Trace.Add(spans...)
	return nil, nil
}

func (m *Manager) reset() {
	m.routes.Clear()
	m.jobs.Clear()
	m.migInFlight.Clear()
	m.mu.Lock()
	defer m.mu.Unlock()
	m.chainRecov = make(map[uint64][]uint64)
	m.peerLoads = make(map[int]policy.Signals)
	m.wireLat = make(map[int]time.Duration)
	m.lastRate = 0
	m.deltaMu.Lock()
	m.links = make(map[int]*linkCache)
	m.peerCaps = make(map[int]byte)
	m.lastPiggy = make(map[int]time.Time)
	m.deltaMu.Unlock()
	m.streamMu.Lock()
	m.streams = make(map[streamKey]*streamEntry)
	m.streamMu.Unlock()
	m.migRing, m.migNext, m.migTotal = nil, 0, 0
	m.classSource = -1
	m.classBytes = 0
	m.stealStats = StealStats{}
	// The bus is deliberately not replaced: it caps its own retention,
	// and swapping it would race with subscribers held across a Reset.
	// nextToken is not rewound either: stale tokens must never resolve.
}

// LastMigration returns the most recent migration metrics.
func (m *Manager) LastMigration() MigrationMetrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.migTotal == 0 {
		return MigrationMetrics{}
	}
	last := m.migNext - 1
	if last < 0 {
		last = len(m.migRing) - 1
	}
	return m.migRing[last]
}

// RecentMigrations returns the retained migration records, oldest first
// (at most migRingCap; lifetime totals live in MigrationCount and the
// metrics registry).
func (m *Manager) RecentMigrations() []MigrationMetrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]MigrationMetrics, 0, len(m.migRing))
	if m.migTotal > uint64(len(m.migRing)) {
		// Ring has wrapped: oldest record sits at the write cursor.
		out = append(out, m.migRing[m.migNext:]...)
		out = append(out, m.migRing[:m.migNext]...)
	} else {
		out = append(out, m.migRing...)
	}
	return out
}

// MigrationCount returns how many migrations this node has ever
// initiated (not capped by the ring).
func (m *Manager) MigrationCount() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.migTotal
}

func (m *Manager) record(mm MigrationMetrics) {
	m.mu.Lock()
	if len(m.migRing) < migRingCap {
		m.migRing = append(m.migRing, mm)
		m.migNext = len(m.migRing) % migRingCap
	} else {
		m.migRing[m.migNext] = mm
		m.migNext = (m.migNext + 1) % migRingCap
	}
	m.migTotal++
	m.mu.Unlock()
}

// ewmaAlpha weights fresh wire-latency samples against history: heavy
// enough that a link-speed change shows within a few migrations, light
// enough that one outlier does not repaint the picture.
const ewmaAlpha = 0.3

// observeWireLatency folds one measured transfer time into the per-
// destination EWMA the balancer reads as the link's RTT estimate.
func (m *Manager) observeWireLatency(dest int, d time.Duration) {
	if d <= 0 {
		return
	}
	m.mu.Lock()
	if prev, ok := m.wireLat[dest]; ok {
		m.wireLat[dest] = time.Duration(float64(prev)*(1-ewmaAlpha) + float64(d)*ewmaAlpha)
	} else {
		m.wireLat[dest] = d
	}
	m.mu.Unlock()
}

// WireLatency returns the calibrated wire latency toward dest, and
// whether any migration to dest has been measured yet.
func (m *Manager) WireLatency(dest int) (time.Duration, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	d, ok := m.wireLat[dest]
	return d, ok
}

// WireLatencies snapshots the calibrated per-destination latencies.
func (m *Manager) WireLatencies() map[int]time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[int]time.Duration, len(m.wireLat))
	for id, d := range m.wireLat {
		out[id] = d
	}
	return out
}

// codecFor picks the wire codec for talking to a destination: device
// nodes have no tool interface and fall back to Java serialization
// (§IV.D), so any sender must encode accordingly.
func (m *Manager) codecFor(dest int) serial.Codec {
	if m.node.Cluster != nil {
		if dn, ok := m.node.Cluster.Nodes[dest]; ok && dn.System == SysDevice {
			return serial.JavaSer
		}
	}
	return m.node.Codec
}

func (m *Manager) newToken() uint64 {
	return m.nextToken.Add(1)
}

// --- jobs ---

// StartJob launches a thread on the node's VM running the named method
// and returns a handle whose result survives any number of migrations.
func (m *Manager) StartJob(qualifiedMethod string, args ...value.Value) (*Job, error) {
	return m.startJob(qualifiedMethod, false, args...)
}

// StartJobChained is StartJob for a job whose placement the balancer's
// chain planner owns: instead of whole-stack pushes, the job's stack is
// split into a multi-segment FlowForward pipeline when the planner finds
// a plan worth executing (the balancer must run with its Chain option).
func (m *Manager) StartJobChained(qualifiedMethod string, args ...value.Value) (*Job, error) {
	return m.startJob(qualifiedMethod, true, args...)
}

func (m *Manager) startJob(qualifiedMethod string, chained bool, args ...value.Value) (*Job, error) {
	mid := m.node.Prog.MethodByName(qualifiedMethod)
	if mid < 0 {
		return nil, fmt.Errorf("sodee: unknown method %q", qualifiedMethod)
	}
	th, err := m.node.VM.NewThread(mid, args...)
	if err != nil {
		return nil, err
	}
	th.UserData = &threadCtx{homeNode: -1}
	job := &Job{ID: m.newToken(), mgr: m, th: th, done: make(chan struct{}), chained: chained, started: time.Now()}
	m.jobs.Set(job.ID, job)
	m.routes.Set(job.ID, &route{kind: routeJob, job: job})
	// Open the trace's root span; complete() upserts it with the final
	// duration. Every migration/plant/forward span parents under it.
	m.node.Trace.Add(obs.Span{
		ID: obs.RootSpanID, Job: job.ID, Node: m.node.ID,
		Name: "job", Start: job.started,
	})
	m.bus.Publish(JobEvent{Job: job.ID, Kind: EvStarted, From: m.node.ID, To: m.node.ID})
	// Replicate the origin to its successor: should this node die
	// permanently, the successor adopts the waiter and the result flush
	// redirects there (rehome.go). Off the submit path — see
	// replicateOrigin for why it must not serialize a burst.
	go m.replicateOrigin(job)
	go m.runAndWatch(th, job)
	return job, nil
}

// Job returns the handle of a job started on this node (migrated-in
// wrappers are excluded: their identity belongs to their origin).
func (m *Manager) Job(id uint64) (*Job, bool) {
	j, ok := m.jobs.Get(id)
	if !ok || j.Remote() {
		return nil, false
	}
	return j, true
}

// runAndWatch executes a job's local thread and completes the job — but
// only while the job still considers this thread its own. A full
// migration detaches the thread (job.th = nil) before killing it, and a
// failed migration's local recovery attaches a replacement; either way
// the dying original must not write the job's result.
func (m *Manager) runAndWatch(th *vm.Thread, job *Job) {
	th.Run()
	job.mu.Lock()
	owner := job.th == th
	job.mu.Unlock()
	if !owner {
		return
	}
	job.complete(th.Result, th.Err)
	m.purgeChainRecovery(job.ID)
}

// runWorker runs a restored thread to completion and routes its results.
func (m *Manager) runWorker(th *vm.Thread, expectValue bool, dst, fallback completion) {
	th.Run()
	m.routeResult(th, expectValue, dst, fallback)
}

// runRemoteJob executes a migrated-in job's thread and — when this node
// still owns it at completion — routes the result to the job's consumer
// and retires the local wrapper. A further migration detaches the thread
// first (job.th = nil); routing is then the new destination's problem.
func (m *Manager) runRemoteJob(th *vm.Thread, job *Job) {
	th.Run()
	job.mu.Lock()
	owner := job.th == th
	job.mu.Unlock()
	if !owner {
		return
	}
	job.complete(th.Result, th.Err)
	m.jobs.Delete(job.ID)
	m.routeResult(th, job.expectValue, job.resultTo, job.resultFallback)
}

// rebaseVisits converts a wire visit trace (ages) into absolute
// timestamps on this node's clock — the one treatment every migrated-in
// visit trace gets, so the cooldown works across machines with skewed
// wall clocks.
func rebaseVisits(visits []serial.Visit, now time.Time) map[int]time.Time {
	out := make(map[int]time.Time, len(visits))
	for _, v := range visits {
		out[int(v.Node)] = now.Add(-time.Duration(v.AgeNanos))
	}
	return out
}

// newRemoteJob builds the local Job handle for a migrated-in computation
// — the handle that makes it visible to this node's balancer, and so
// eligible for re-balancing and stealing.
func (m *Manager) newRemoteJob(th *vm.Thread, hops int, visited map[int]time.Time,
	resultTo, fallback completion, expectValue bool) *Job {
	job := &Job{
		ID: m.newToken(), mgr: m, th: th, done: make(chan struct{}),
		remote: true, resultTo: resultTo, resultFallback: fallback, expectValue: expectValue,
		hops: hops, visited: make(map[int]time.Time, len(visited)),
	}
	for n, t := range visited {
		job.visited[n] = t
	}
	return job
}

// adoptRemote wraps a migrated-in thread in a local Job handle carrying
// its hop metadata.
func (m *Manager) adoptRemote(th *vm.Thread, cs *serial.CapturedState, resultTo, fallback completion, expectValue bool) *Job {
	return m.newRemoteJob(th, int(cs.Hops), rebaseVisits(cs.Visited, time.Now()), resultTo, fallback, expectValue)
}

// registerRemote publishes an adopted job to the balancer once it is safe
// to migrate it again (i.e., restoration has finished — suspending a
// thread mid-restoration would capture a half-built stack). A job that
// already completed is skipped: its runner may have retired it already.
// The post-Set recheck closes the race where completion (and the
// runner's delete) lands between the Done probe and the Set — the entry
// must not outlive the job.
func (m *Manager) registerRemote(job *Job) {
	if job.Done() {
		return
	}
	m.jobs.Set(job.ID, job)
	if job.Done() {
		m.jobs.Delete(job.ID)
	}
}

// Result flushes survive transient partitions: a completed segment whose
// consumer is briefly unreachable (crashed-and-rejoining, or this node is
// itself cut off) holds the only copy of the result, so dropping the
// flush would lose the job. Retry with a fixed delay; the bound keeps a
// permanently dead consumer from pinning the goroutine forever.
const (
	flushRetryDelay    = 10 * time.Millisecond
	flushRetryAttempts = 300 // × flushRetryDelay ≈ 3 s of patience
	// preHopFlushAttempts bounds the pre-migration update flush: it runs
	// inside the balancer's tick, and the same data flushes again (with
	// full patience) when the segment completes.
	preHopFlushAttempts = 10
)

// sendFlushRetrying delivers one flush frame, retrying up to attempts
// times while either end is unreachable. Non-delivery errors (a handler
// failure at the receiver) are final: the frame arrived, retrying would
// double-apply.
func (m *Manager) sendFlushRetrying(node int, payload []byte, rpc bool, attempts int) error {
	var err error
	for attempt := 0; attempt < attempts; attempt++ {
		if rpc {
			_, err = m.node.EP.Call(node, netsim.KindFlush, payload)
		} else {
			err = m.node.EP.Send(node, netsim.KindFlush, payload)
		}
		if err == nil || !isUnreachable(err) {
			return err
		}
		m.met.flushRetries.Inc()
		time.Sleep(flushRetryDelay)
	}
	return err
}

// flushUpdates sends dirty cached data back to the nodes mastering it
// (self-targeted updates apply locally). It runs at segment completion
// and before a stack leaves an intermediate hop — the departing thread's
// writes must be visible wherever it continues, because the next node
// faults objects from their masters, not from this cache. attempts
// bounds the per-destination retry window.
func (m *Manager) flushUpdates(staticsHome, attempts int) {
	for node, fm := range m.node.ObjMan.CollectUpdates(staticsHome) {
		if node == m.node.ID {
			if _, err := m.node.ObjMan.ApplyFlush(fm); err != nil {
				_ = err
			}
			continue
		}
		payload := encodeFlushMsg(0, fm, m.node.Prog, m.node.Codec)
		// Synchronous: updates must be applied at their home before the
		// result releases any continuation that might read them.
		if err := m.sendFlushRetrying(node, payload, true, attempts); err != nil {
			_ = err
		}
	}
}

// homeRefs rewrites every captured local and static value that points at
// a locally cached copy into its home reference (see objman.HomeRef), so
// the shipped state is location-independent.
func (m *Manager) homeRefs(cs *serial.CapturedState) {
	om := m.node.ObjMan
	for fi := range cs.Frames {
		for li, lv := range cs.Frames[fi].Locals {
			cs.Frames[fi].Locals[li] = om.HomeRef(lv)
		}
	}
	for si := range cs.Statics {
		for vi, sv := range cs.Statics[si].Values {
			cs.Statics[si].Values[vi] = om.HomeRef(sv)
		}
	}
}

// chainFlushAttempts bounds the retry window toward a chain continuation
// when a recovery fallback exists: a shorter patience is safe (the value
// is redirected, never dropped) and gets a crashed mid-chain link rebuilt
// at the origin in about a second instead of wedging for the full window.
const chainFlushAttempts = 100 // × flushRetryDelay ≈ 1 s

func (m *Manager) routeResult(th *vm.Thread, expectValue bool, dst, fallback completion) {
	if dst.node == m.node.ID {
		// Same-node delivery: the consumer shares this heap, so no flush
		// serialization happens and dirty state stays pending until a
		// result eventually leaves the node.
		m.deliverLocal(dst.token, th.Result, th.Err)
		return
	}
	// Updated data goes back to the nodes mastering it (§II.A); modified
	// statics go to the job's home node.
	staticsHome := m.node.ID
	if ctx, ok := th.UserData.(*threadCtx); ok && ctx.homeNode >= 0 {
		staticsHome = ctx.homeNode
	}
	m.flushUpdates(staticsHome, flushRetryAttempts)
	// The return value (with any fresh objects it drags along) goes to the
	// continuation.
	var errStr string
	if th.Err != nil {
		errStr = th.Err.Error()
	}
	fm := m.node.ObjMan.CollectResult(th.Result, expectValue, errStr)
	hasFallback := fallback != completion{}
	attempts := flushRetryAttempts
	if hasFallback {
		attempts = chainFlushAttempts
	}
	payload := encodeFlushMsg(dst.token, fm, m.node.Prog, m.node.Codec)
	// With a fallback route the flush must be *acknowledged*: a one-way
	// send accepted by the wire just before the consumer crashes looks
	// delivered to this node, so the redirect below would never fire and
	// the value would die with the consumer. An RPC only counts as
	// delivered once the consumer's handler ran; an unconfirmed delivery
	// fails unreachable and takes the fallback path. (A retried frame that
	// did land is dropped by the consumed flush route — never re-applied.)
	err := m.sendFlushRetrying(dst.node, payload, hasFallback, attempts)
	if err == nil || !isUnreachable(err) {
		return
	}
	if hasFallback {
		// The consumer is unreachable; reroute the value to the fallback —
		// a chain's recovery route, or a re-homed job's successor shadow —
		// which completes the job there instead of losing it. The fallback
		// can be this very node (a job executing at its own successor).
		if fallback.node == m.node.ID {
			m.deliverLocal(fallback.token, th.Result, th.Err)
			return
		}
		payload = encodeFlushMsg(fallback.token, fm, m.node.Prog, m.node.Codec)
		if ferr := m.sendFlushRetrying(fallback.node, payload, false, flushRetryAttempts); ferr != nil {
			_ = ferr // recovery route unreachable too: nowhere left to go
		}
		return
	}
	// Consumer still unreachable after the retry window and no fallback:
	// the result has nowhere to go.
	_ = err
}

// deliverLocal hands a same-node result to the route its token names.
func (m *Manager) deliverLocal(token uint64, res value.Value, err error) {
	rt, ok := m.routes.TakeDelete(token)
	if !ok {
		return
	}
	m.dispatchRoute(m.node.ID, rt, res, err)
}

// dispatchRoute applies a delivered result (or failure) to a consumed
// route — the one place a value crosses from a finished segment into
// whatever consumes it, shared by local delivery and wire flushes. from
// is the node the value came from (event attribution).
func (m *Manager) dispatchRoute(from int, rt *route, res value.Value, err error) {
	switch rt.kind {
	case routeJob:
		rt.job.complete(res, err)
		m.purgeChainRecovery(rt.job.ID)

	case routeResume:
		rt.job.mu.Lock()
		rt.job.waiting = false
		rt.job.mu.Unlock()
		if err != nil {
			rt.job.complete(value.Value{}, err)
			_ = rt.th.Kill()
			return
		}
		if rt.expectValue {
			rt.th.Top().Push(res)
		}
		if rt.chain != nil {
			m.publishEventSync(rt.chain.origin, JobEvent{
				Job: rt.chain.job, Kind: EvSegmentForwarded,
				From: from, To: m.node.ID,
				Seg: rt.chain.seg, SegOf: rt.chain.segOf,
			})
			m.observeForward(from, rt.chain)
		}
		_ = rt.th.Resume()

	case routePlanted:
		if err != nil {
			m.forwardError(rt.next, rt.fallback, err)
			return
		}
		if rt.expectValue {
			rt.th.Top().Push(res)
		}
		bottomReturns := rt.th.Frames[0].Method.ReturnsValue
		if rt.chain != nil {
			// A chain link becoming live is a first-class citizen of this
			// node: visible to the balancer (it can re-balance onward or be
			// stolen, within its hop budget), its result routed to the next
			// link with the chain's recovery fallback attached.
			m.publishEventSync(rt.chain.origin, JobEvent{
				Job: rt.chain.job, Kind: EvSegmentForwarded,
				From: from, To: m.node.ID,
				Seg: rt.chain.seg, SegOf: rt.chain.segOf,
			})
			m.observeForward(from, rt.chain)
			job := m.adoptChainLink(rt.th, rt.chain, rt.next, rt.fallback, bottomReturns)
			m.registerRemote(job)
			go m.runRemoteJob(rt.th, job)
			return
		}
		go m.runWorker(rt.th, bottomReturns, rt.next, rt.fallback)

	case routeChainRecover:
		if err != nil {
			m.forwardError(rt.next, rt.fallback, err)
			return
		}
		th, rerr := RestoreDirect(m.node, rt.seg)
		if rerr != nil {
			m.forwardError(rt.next, rt.fallback, rerr)
			return
		}
		if rt.expectValue {
			th.Top().Push(res)
		}
		m.publishEventSync(rt.chain.origin, JobEvent{
			Job: rt.chain.job, Kind: EvSegmentForwarded,
			From: from, To: m.node.ID,
			Seg: rt.chain.seg, SegOf: rt.chain.segOf,
		})
		m.observeForward(from, rt.chain)
		bottomReturns := th.Frames[0].Method.ReturnsValue
		job := m.adoptChainLink(th, rt.chain, rt.next, rt.fallback, bottomReturns)
		m.registerRemote(job)
		go m.runRemoteJob(th, job)
	}
}

// observeForward records a chain link's activation — the moment a
// forwarded value reached its planted frames: counter plus a point span
// in the origin's trace.
func (m *Manager) observeForward(from int, meta *chainLinkMeta) {
	m.met.chainForwarded.IncKeyed(meta.job)
	m.emitSpans(meta.origin, obs.Span{
		ID: m.spanID(), Parent: obs.RootSpanID, Job: meta.job,
		Node: m.node.ID, Name: "forward", Start: time.Now(),
		Detail: fmt.Sprintf("segment %d/%d from node %d", meta.seg+1, meta.segOf, from),
	})
}

// adoptChainLink wraps an activated chain link in a remote-flagged Job
// handle carrying the chain's hop metadata, so the link re-balances and
// gets stolen like any migrated-in job and its result flows to the next
// link (with the recovery fallback along for the ride). The link keeps
// the chain's event identity: however far it travels from here, its
// lifecycle events publish into the origin's stream under the job id —
// not to the next link's node under a plant token.
func (m *Manager) adoptChainLink(th *vm.Thread, meta *chainLinkMeta, next, fallback completion, expectValue bool) *Job {
	job := m.newRemoteJob(th, meta.hops, meta.visited, next, fallback, expectValue)
	job.evJob, job.evOrigin = meta.job, meta.origin
	return job
}

// purgeChainRecovery drops the chain recovery routes registered for a
// completed local job: the chain delivered, the retained segments are
// dead weight.
func (m *Manager) purgeChainRecovery(jobID uint64) {
	m.mu.Lock()
	toks := m.chainRecov[jobID]
	delete(m.chainRecov, jobID)
	m.mu.Unlock()
	for _, tok := range toks {
		m.routes.Delete(tok)
	}
}

// forwardError propagates a failure along a completion chain, rerouting
// to the fallback when the primary consumer is unreachable.
func (m *Manager) forwardError(next, fallback completion, err error) {
	if next.node == m.node.ID {
		m.deliverLocal(next.token, value.Value{}, err)
		return
	}
	hasFallback := fallback != completion{}
	attempts := flushRetryAttempts
	if hasFallback {
		attempts = chainFlushAttempts
	}
	efm := &serial.FlushMessage{Err: err.Error()}
	serr := m.sendFlushRetrying(next.node,
		encodeFlushMsg(next.token, efm, m.node.Prog, m.node.Codec), false, attempts)
	if serr != nil && isUnreachable(serr) && hasFallback {
		if fallback.node == m.node.ID {
			m.deliverLocal(fallback.token, value.Value{}, err)
			return
		}
		_ = m.sendFlushRetrying(fallback.node,
			encodeFlushMsg(fallback.token, efm, m.node.Prog, m.node.Codec), false, flushRetryAttempts)
	}
}

// --- SOD migration (the contribution) ---

// WholeStack, as SODOptions.NFrames, exports every frame the thread has
// when it parks. The policy engine uses it: an auto-offloaded job moves in
// full, whatever its depth at the decision instant.
const WholeStack = -1

// SODOptions tunes one SOD migration.
type SODOptions struct {
	// NFrames is the segment size (top frames to export); WholeStack
	// exports the entire stack as measured at suspension time.
	NFrames int
	// Dest executes the segment.
	Dest int
	// Flow selects Fig 1a/b/c.
	Flow Flow
	// ForwardTo hosts the residual under FlowForward.
	ForwardTo int
	// Reason labels the migration in the job's event stream (who
	// initiated it); zero is ReasonManual.
	Reason MigrateReason
}

// migrationInFlight reports whether a capture/transfer is currently
// running for job id.
func (m *Manager) migrationInFlight(id uint64) bool {
	_, ok := m.migInFlight.Get(id)
	return ok
}

// MigrateSOD exports the top segment of the job's thread per opts. The
// thread may be running (it is suspended at its next MSP) or parked.
// Remote (migrated-in) jobs are eligible too: their segment ships with
// the accumulated hop count and the original home node, and their result
// routes straight to the origin — a further hop never lengthens the
// return path.
func (m *Manager) MigrateSOD(job *Job, opts SODOptions) (*MigrationMetrics, error) {
	if opts.Flow == FlowForward {
		// Manual flow-forwarding is a two-link chain: the segment on Dest,
		// the whole residual planted on ForwardTo. One executor serves the
		// hand-driven API and the chain planner — there is no second
		// migration entry point.
		return m.MigrateChain(job, func(frames []policy.FrameSignal) (policy.ChainPlan, error) {
			depth := len(frames)
			k := opts.NFrames
			if k == WholeStack {
				k = depth
			}
			if k <= 0 || k > depth {
				return policy.ChainPlan{}, fmt.Errorf("sodee: segment size %d out of range (depth %d)", opts.NFrames, depth)
			}
			if k == depth {
				return policy.ChainPlan{}, fmt.Errorf("sodee: forward flow needs a residual (depth %d, segment %d)", depth, k)
			}
			return policy.ChainPlan{Segments: []policy.ChainSegment{
				{Frames: k, Dest: opts.Dest, ForwardTo: opts.ForwardTo},
				{Frames: depth - k, Dest: opts.ForwardTo, ForwardTo: m.node.ID},
			}}, nil
		}, opts.Reason)
	}
	// One migration per job at a time: a push decision and a steal grant
	// may race on the same job, and both suspending the thread would wedge
	// it.
	if !m.migInFlight.SetIfAbsent(job.ID, struct{}{}) {
		return nil, fmt.Errorf("sodee: job %d already has a migration in flight", job.ID)
	}
	defer m.migInFlight.Delete(job.ID)

	// migratable, not just th != nil: a parked residual waiting for a
	// forwarded value is owned by its resume route — capturing it would
	// ship the frames while the route still points into the old thread.
	if !job.migratable() {
		return nil, fmt.Errorf("sodee: job has no migratable thread")
	}
	th := job.Thread()
	n := m.node
	if n.Agent == nil {
		return nil, fmt.Errorf("sodee: node %d (%v) cannot capture state", n.ID, n.System)
	}
	t0 := time.Now()
	parked, err := n.Agent.SuspendAtSafePoint(th)
	if err != nil {
		return nil, err
	}
	if !parked {
		return nil, fmt.Errorf("sodee: thread finished before reaching a safe point")
	}
	depth := th.Depth()
	k := opts.NFrames
	if k == WholeStack {
		k = depth
	}
	if k <= 0 || k > depth {
		_ = th.Resume()
		return nil, fmt.Errorf("sodee: segment size %d out of range (depth %d)", k, depth)
	}

	// Pinned frames must stay home (§IV.D: frames holding sockets).
	for d := 0; d < k; d++ {
		if n.Agent.IsFramePinned(th, d) {
			_ = th.Resume()
			return nil, fmt.Errorf("sodee: frame %d is pinned; cannot migrate", d)
		}
	}

	// A re-migrated job keeps its original home: modified statics flush
	// there and cold classes are fetched from there, however many hops the
	// stack takes.
	home := n.ID
	if ctx, ok := th.UserData.(*threadCtx); ok && ctx.homeNode >= 0 {
		home = ctx.homeNode
	}
	seg, err := CaptureSegment(n.Agent, th, 0, k, home)
	if err != nil {
		_ = th.Resume()
		return nil, err
	}
	var residual *serial.CapturedState
	if opts.Flow == FlowTotal && depth > k {
		residual, err = CaptureSegment(n.Agent, th, k, depth-k, home)
		if err != nil {
			_ = th.Resume()
			return nil, err
		}
	}
	captureDone := time.Now()
	// Hop metadata rides in the captured state: one more hop taken, and
	// this node joins the trace as "just left" (age 0). Visits ship as
	// ages so the cooldown survives clock skew between machines, oldest
	// (largest age) first so the wire-size cap drops the entries farthest
	// outside any cooldown.
	job.mu.Lock()
	seg.Hops = int32(job.hops + 1)
	for node, left := range job.visited {
		seg.Visited = append(seg.Visited, serial.Visit{
			Node: int32(node), AgeNanos: int64(captureDone.Sub(left)),
		})
	}
	job.mu.Unlock()
	sort.Slice(seg.Visited, func(i, j int) bool { return seg.Visited[i].AgeNanos > seg.Visited[j].AgeNanos })
	seg.Visited = append(seg.Visited, serial.Visit{Node: int32(n.ID), AgeNanos: 0})
	// Multi-hop hygiene: captured values must reference masters, not this
	// node's caches, and this node's dirty cached writes must reach their
	// masters before the next hop re-faults the data there. The retry
	// window is short — this runs inside the balancer's tick, and the
	// data flushes again at completion anyway.
	m.homeRefs(seg)
	if residual != nil {
		m.homeRefs(residual)
	}
	if home != n.ID {
		m.flushUpdates(home, preHopFlushAttempts)
	}

	segBottom := n.Prog.Methods[seg.Frames[0].MethodID]

	// finalTo is where the job's eventual result belongs: the local job
	// handle, or — for a migrated-in job — the completion it arrived with
	// (its origin), so results never chain back through intermediate hops.
	// eventTo is where its lifecycle events publish: usually the same,
	// but an activated chain link's result goes to the next link's plant
	// token while its events still belong to the origin's job stream.
	finalTo := completion{node: n.ID, token: job.ID}
	job.mu.Lock()
	if job.remote {
		finalTo = job.resultTo
	}
	eventTo := finalTo
	if job.evJob != 0 {
		eventTo = completion{node: job.evOrigin, token: job.evJob}
	}
	job.mu.Unlock()

	// Decide where the segment's return value goes and arrange the stack.
	// partial marks the one shape whose failure undo differs: the residual
	// stays parked here with a local resume route.
	var resultTo completion
	partial := false
	switch {
	case opts.Flow == FlowReturnHome && depth > k:
		// Keep the residual parked here; register a resume route.
		partial = true
		token := m.newToken()
		if err := n.Agent.TruncateTo(th, depth-k); err != nil {
			_ = th.Resume()
			return nil, err
		}
		m.routes.Set(token, &route{kind: routeResume, job: job, th: th, expectValue: segBottom.ReturnsValue})
		job.mu.Lock()
		job.waiting = true // the parked residual is spoken for by its route
		job.mu.Unlock()
		resultTo = completion{node: n.ID, token: token}

	case opts.Flow == FlowReturnHome: // whole stack exported, result = job result
		job.mu.Lock()
		job.th = nil
		job.mu.Unlock()
		if err := th.Kill(); err != nil {
			return nil, err
		}
		resultTo = finalTo

	case opts.Flow == FlowTotal:
		// Residual rides along to the destination; final result flows to
		// the job's consumer.
		job.mu.Lock()
		job.th = nil
		job.mu.Unlock()
		if err := th.Kill(); err != nil {
			return nil, err
		}
		resultTo = finalTo // final consumer; residual runs at dest

	}

	// Ship the segment (classes of its methods ride along, rest on demand).
	// A re-balanced chain link keeps its recovery fallback: wherever the
	// link ends up, an unreachable next link still reroutes to the chain's
	// origin. A home-grown job's re-homing fallback travels the same way:
	// wherever the stack lands, an unreachable (dead) origin redirects the
	// result to the job's successor. Partial exports carry none — their
	// value returns to the residual parked on this node, not to a consumer
	// that could outlive it.
	var fallback completion
	job.mu.Lock()
	if resultTo == finalTo {
		fallback = job.resultFallback
	}
	jobChained := job.chained
	job.mu.Unlock()
	msg := migrateMsg{
		resultTo:    resultTo,
		fallback:    fallback,
		homeNode:    home,
		direct:      n.System == SysJessica2 || n.System == SysDevice,
		seg:         seg,
		residual:    residual, // non-nil only for FlowTotal
		expectValue: segBottom.ReturnsValue,
		classes:     m.bundleClasses(seg, residual),
		// Ownership and identity travel with the stack: a chained job
		// stays planner-owned at its new host, and wherever the stack
		// lands, its lifecycle events keep publishing into the origin's
		// stream under the job's id — never to a resume or plant token.
		chained:     jobChained,
		chainJob:    eventTo.token,
		chainOrigin: eventTo.node,
	}
	// Announce the hop *before* the transfer: a fast destination can run
	// the segment to completion (and flush the result to the origin)
	// before this goroutine is scheduled again, and a migration notice
	// arriving after the terminal event would be dropped. If the transfer
	// fails instead, EvMigrationFailed below tells the watcher the job
	// bounced back.
	m.publishEvent(eventTo.node, JobEvent{
		Job: eventTo.token, Kind: EvMigrated,
		From: n.ID, To: opts.Dest,
		Reason: opts.Reason, Hops: int(seg.Hops),
	})
	sendStart := time.Now()
	reply, wireBytes, classBytes, err := m.sendMigrate(opts.Dest, &msg)
	if err != nil {
		// The destination is unreachable (crashed mid-migration, or never
		// existed). The captured state is still in hand, so fall back to
		// local execution rather than stranding the job: the migration
		// fails, the job does not — this node stays its live owner.
		m.met.migFailures.Inc()
		m.publishEvent(eventTo.node, JobEvent{
			Job: eventTo.token, Kind: EvMigrationFailed,
			From: n.ID, To: opts.Dest,
			Reason: opts.Reason, Hops: int(seg.Hops),
		})
		if rerr := m.recoverLocal(job, th, partial, seg, msg.residual, resultTo); rerr != nil {
			return nil, fmt.Errorf("sodee: migrate to %d: %w; local recovery also failed: %w", opts.Dest, err, rerr)
		}
		return nil, fmt.Errorf("sodee: migrate to %d (job recovered locally): %w", opts.Dest, err)
	}
	arrival, restoreDur, rerr := decodeMigrateReply(reply)
	if rerr != nil {
		return nil, rerr
	}

	// A remote wrapper whose whole stack moved on is finished here: the
	// destination owns the job now and its result flows straight to the
	// origin, so drop the local handle.
	job.mu.Lock()
	dropWrapper := job.remote && job.th == nil
	job.mu.Unlock()
	if dropWrapper {
		m.jobs.Delete(job.ID)
	}

	mm := MigrationMetrics{
		System:     n.System,
		Capture:    captureDone.Sub(t0),
		Transfer:   arrival.Sub(sendStart),
		Restore:    restoreDur,
		StateBytes: wireBytes - classBytes,
		ClassBytes: classBytes,
	}
	mm.Latency = mm.Capture + mm.Transfer + mm.Restore
	mm.Freeze = mm.Latency
	m.record(mm)
	m.observeWireLatency(opts.Dest, mm.Transfer)
	m.observeMigration(&mm, opts.Reason, opts.Dest, wireBytes)
	// The hop's span quartet goes to the origin's trace: the migrate span
	// with its capture/transfer/restore children. The source clock times
	// all four — the remote restore duration came back in the migrate
	// reply, with its start approximated as transfer-end (same clock, no
	// cross-machine skew in the timeline).
	migSpan := m.spanID()
	m.emitSpans(eventTo.node,
		obs.Span{ID: migSpan, Parent: obs.RootSpanID, Job: eventTo.token,
			Node: n.ID, Dest: opts.Dest, Name: "migrate", Start: t0,
			Dur: mm.Latency, Bytes: wireBytes, Detail: opts.Reason.String()},
		obs.Span{ID: m.spanID(), Parent: migSpan, Job: eventTo.token,
			Node: n.ID, Dest: opts.Dest, Name: "capture", Start: t0, Dur: mm.Capture},
		obs.Span{ID: m.spanID(), Parent: migSpan, Job: eventTo.token,
			Node: n.ID, Dest: opts.Dest, Name: "transfer", Start: sendStart,
			Dur: mm.Transfer, Bytes: wireBytes},
		obs.Span{ID: m.spanID(), Parent: migSpan, Job: eventTo.token,
			Node: n.ID, Dest: opts.Dest, Name: "restore",
			Start: sendStart.Add(mm.Transfer), Dur: mm.Restore},
	)
	return &mm, nil
}

// recoverLocal undoes a migration whose transfer failed, resuming the
// job on this node from the already-captured state. The shape of the undo
// depends on how far the flow got before the send:
//
//   - ReturnHome with a residual (partial): the thread is still parked
//     here with its top segment truncated away — drop the pending resume
//     route, rebuild the captured frames in place and resume. The job's
//     original watcher goroutine still owns completion.
//   - ReturnHome of the whole stack, and Total: the local thread was
//     killed and the job detached — rebuild the full stack (residual
//     beneath segment for Total) as a fresh thread and re-attach it. A
//     remote wrapper re-attaches to its routing runner, so the recovered
//     result still flows to the job's origin.
//
// (Forward-flow recovery lives in the chain executor, which owns that
// path end to end.)
func (m *Manager) recoverLocal(job *Job, th *vm.Thread, partial bool,
	seg, residual *serial.CapturedState, resultTo completion) error {

	n := m.node
	switch {
	case partial:
		// Partial export: th is parked on the residual frames.
		m.routes.Delete(resultTo.token)
		job.mu.Lock()
		job.waiting = false
		job.mu.Unlock()
		appendCapturedFrames(th, n.Prog, seg.Frames)
		return th.Resume()

	default: // ReturnHome whole-stack, Total
		frames := seg.Frames
		if residual != nil {
			frames = append(append([]serial.CapturedFrame(nil), residual.Frames...), seg.Frames...)
		}
		worker, err := RestoreDirect(n, &serial.CapturedState{Frames: frames, HomeNode: seg.HomeNode})
		if err != nil {
			return err
		}
		job.mu.Lock()
		job.th = worker
		remote := job.remote
		job.mu.Unlock()
		if remote {
			go m.runRemoteJob(worker, job)
		} else {
			go m.runAndWatch(worker, job)
		}
		return nil
	}
}

// bundleClasses encodes the declaring classes of all captured methods —
// the "current class" shipped with the migration message; everything else
// is fetched through the class-load hook on demand.
func (m *Manager) bundleClasses(states ...*serial.CapturedState) [][]byte {
	seen := map[int32]bool{}
	var bundles [][]byte
	for _, cs := range states {
		if cs == nil {
			continue
		}
		for _, f := range cs.Frames {
			cid := m.node.Prog.Methods[f.MethodID].ClassID
			if cid < 0 || seen[cid] {
				continue
			}
			seen[cid] = true
			bundles = append(bundles, serial.EncodeClass(m.node.Prog, cid))
		}
	}
	return bundles
}

// sendMigrate is the single exit point for migration control messages:
// MigrateSOD, chain plants, chain top-segment ships and steal-granted
// transfers all encode and transmit here, so delta capture, statics
// streaming and gossip piggybacking apply uniformly. It negotiates the
// link's capabilities, encodes (delta when the peer's cache can be
// referenced, full otherwise), optionally streams the statics ahead of
// the control message, and handles the delta-miss resync: a receiver
// whose cache lost a referenced unit fails the call with a marker error,
// and the migration is resent once, fully self-contained.
//
// Returns the peer's reply, the total bytes put on the wire (control +
// data messages) and the on-wire size of the classes section.
func (m *Manager) sendMigrate(dest int, msg *migrateMsg) (reply []byte, wireBytes, classBytes int64, err error) {
	n := m.node
	codec := m.codecFor(dest)
	caps := byte(0)
	if codec == serial.Fast {
		// The JavaSer codec models the paper's device interop path; its
		// consumers predate the delta protocol.
		caps = m.peerWireCaps(dest)
	}
	// Gossip piggybacking: a data message is going out anyway, so a load
	// report rides along for free.
	msg.signals = m.piggybackSignals()

	var sess *deltaSession
	if caps&capDelta != 0 {
		sess = m.beginDelta(dest)
		msg.delta = true
	}
	// Streaming applies when there are statics to overlap and the restore
	// is unconditional: plants and residual-carrying messages park threads
	// for later activation, where overlapping buys nothing but complexity.
	var data []byte
	if caps&capStream != 0 && !msg.plant && msg.residual == nil && len(msg.seg.Statics) > 0 {
		msg.streamed = true
		msg.streamID = m.newToken()
		data = encodeStreamStatics(m, msg.streamID, msg.seg.Statics, codec, sess)
	}
	encoded := func(s *deltaSession) []byte {
		if !msg.streamed {
			return msg.encode(n.Prog, codec, s)
		}
		// The statics travel on the data message; strip them from the
		// control copy of the segment (restored after encoding — the
		// caller's recovery path needs the complete state).
		orig := msg.seg
		stripped := *orig
		stripped.Statics = nil
		msg.seg = &stripped
		p := msg.encode(n.Prog, codec, s)
		msg.seg = orig
		return p
	}
	payload := encoded(sess)
	if data != nil {
		if m.testPreStream != nil {
			m.testPreStream(dest)
		}
		if d := m.testStreamDelay; d > 0 {
			go func() {
				time.Sleep(d)
				n.EP.Send(dest, netsim.KindMigrateData, data) //nolint:errcheck // Call below surfaces the failure
			}()
		} else if serr := n.EP.Send(dest, netsim.KindMigrateData, data); serr != nil {
			// An undeliverable data message fails the whole migration the
			// same way an undeliverable control message would; the caller
			// recovers the job locally.
			return nil, 0, 0, serr
		}
	}
	reply, err = n.EP.Call(dest, netsim.KindMigrate, payload)
	if isDeltaMiss(err) {
		// The peer could not resolve a reference: its cache diverged from
		// this node's view (restart, bound-triggered eviction). Drop the
		// link cache and resend this migration fully self-contained; the
		// caches resync from it.
		m.met.deltaMisses.Inc()
		m.dropLink(dest)
		msg.delta, msg.streamed, msg.streamID = false, false, 0
		sess, data = nil, nil
		payload = encoded(nil)
		reply, err = n.EP.Call(dest, netsim.KindMigrate, payload)
	}
	if err != nil {
		return nil, 0, 0, err
	}
	m.commitDelta(sess)
	if sess != nil {
		if sess.hits > 0 {
			m.met.deltaHits.Add(sess.hits)
		}
		if sess.saved > 0 {
			m.met.deltaSaved.Add(sess.saved)
		}
	}
	if msg.streamed {
		m.met.streamedMig.Inc()
	}
	m.notePiggyback(dest)
	m.met.gossipPiggyback.Inc()
	return reply, int64(len(payload) + len(data)), int64(msg.classWire), nil
}

// --- destination side ---

func (m *Manager) handleMigrate(from int, payload []byte) ([]byte, error) {
	arrival := time.Now()
	n := m.node
	msg, err := m.decodeMigrateMsg(from, payload)
	if err != nil {
		return nil, err
	}
	// Absorb the piggybacked load report (and its heartbeat) exactly as a
	// dedicated KindLoadReport would be.
	if len(msg.signals) > 0 {
		if s, caps, ups, serr := decodeSignalsCaps(msg.signals); serr == nil {
			m.absorbSignals(s, caps, ups)
		}
	}

	// Load the classes that rode along, and point the class-load hook at
	// the home node for the rest.
	m.mu.Lock()
	m.classSource = msg.homeNode
	m.mu.Unlock()
	for _, cb := range msg.classes {
		bundle, err := serial.DecodeClass(cb)
		if err != nil {
			return nil, err
		}
		if err := bundle.VerifyAgainst(n.Prog); err != nil {
			return nil, err
		}
		n.VM.MarkLoaded(bundle.Class.ID)
	}

	if msg.plant {
		// Pre-restore the continuation, parked until its value arrives —
		// "having state restored ahead of the passing of control" (§II.B).
		th, err := RestoreDirect(n, msg.seg)
		if err != nil {
			return nil, err
		}
		rt := &route{
			kind: routePlanted, th: th,
			expectValue: msg.expectValue,
			next:        msg.resultTo,
			fallback:    msg.fallback,
		}
		if msg.chainOf > 0 {
			// A chain link: remember who it belongs to and the hop metadata
			// its frames carried, re-based to this node's clock (the same
			// treatment adoptRemote gives an executing stack), so the link
			// runs as a first-class job when control reaches it.
			rt.chain = &chainLinkMeta{
				job: msg.chainJob, origin: msg.chainOrigin,
				seg: msg.chainSeg, segOf: msg.chainOf,
				hops:    int(msg.seg.Hops),
				visited: rebaseVisits(msg.seg.Visited, time.Now()),
			}
		}
		token := m.newToken()
		m.routes.Set(token, rt)
		w := wire.NewWriter(16)
		w.Uvarint(token)
		return w.Bytes(), nil
	}

	// For FlowTotal: pre-restore the residual first and register it as the
	// local consumer of the segment's return value, so the subsequent
	// execution after the segment pops is purely local (Fig 1b).
	dst := msg.resultTo
	dstFallback := msg.fallback
	if msg.residual != nil {
		resTh, rerr := RestoreDirect(n, msg.residual)
		if rerr != nil {
			return nil, rerr
		}
		token := m.newToken()
		m.routes.Set(token, &route{
			kind: routePlanted, th: resTh,
			expectValue: msg.expectValue,
			next:        msg.resultTo,
			fallback:    msg.fallback,
		})
		// The segment's value is consumed locally; the fallback travels
		// with the planted residual's own onward route instead.
		dst = completion{node: n.ID, token: token}
		dstFallback = completion{}
	}

	// Restore and run the segment, adopted as a local (remote-flagged) job
	// so the balancer sees it: a migrated-in stack is not pinned here — it
	// can be re-balanced onward or stolen like any local job, within its
	// hop budget.
	restoreStart := time.Now()
	var restoreDur time.Duration
	if msg.streamed {
		restoreDur, err = m.restoreStreamed(from, msg, dst, dstFallback)
		if err != nil {
			return nil, err
		}
	} else if msg.direct || n.Agent == nil {
		th, rerr := RestoreDirect(n, msg.seg)
		if rerr != nil {
			return nil, rerr
		}
		restoreDur = time.Since(restoreStart)
		job := m.adoptRemote(th, msg.seg, dst, dstFallback, msg.expectValue)
		job.chained, job.evJob, job.evOrigin = msg.chained, msg.chainJob, msg.chainOrigin
		m.registerRemote(job)
		go m.runRemoteJob(th, job)
	} else {
		th, rc, berr := RestoreByBreakpoints(n, msg.seg)
		if berr != nil {
			return nil, berr
		}
		job := m.adoptRemote(th, msg.seg, dst, dstFallback, msg.expectValue)
		job.chained, job.evJob, job.evOrigin = msg.chained, msg.chainJob, msg.chainOrigin
		go m.runRemoteJob(th, job)
		select {
		case <-rc.done:
			// Use the stamp taken when execution actually resumed: this
			// waiter may be scheduled long after if the restored thread
			// saturates the CPU. Only now does the job become migratable
			// again — a capture during restoration would ship half a stack.
			m.registerRemote(job)
			restoreDur = rc.restoredAt.Sub(restoreStart)
		case <-time.After(10 * time.Second):
			return nil, fmt.Errorf("sodee: restoration timed out")
		}
	}

	w := wire.NewWriter(24)
	w.Fixed64(uint64(arrival.UnixNano()))
	w.Uvarint(uint64(restoreDur))
	return w.Bytes(), nil
}

func (m *Manager) handleFlush(from int, payload []byte) ([]byte, error) {
	r := wire.NewReader(payload)
	codec := serial.Codec(r.Byte())
	token := r.Uvarint()
	body := r.BlobView()
	if err := r.Err(); err != nil {
		return nil, err
	}
	fm, err := serial.DecodeFlush(body, m.node.Prog, codec)
	if err != nil {
		return nil, err
	}
	m.deliverFlush(from, token, fm)
	return nil, nil
}

// deliverFlush applies a flush message (sent by node from) to the route
// its token names. The token travels alongside the message — never through
// FlushMessage.ThreadID, whose int32 would truncate the node-id prefix of
// a cluster-unique token. Token 0 is an apply-only update flush (dirty
// data coming home) with no control transfer attached.
func (m *Manager) deliverFlush(from int, token uint64, fm *serial.FlushMessage) {
	if token == 0 {
		if _, err := m.node.ObjMan.ApplyFlush(fm); err != nil {
			_ = err
		}
		return
	}
	rt, ok := m.routes.TakeDelete(token)
	if !ok {
		return
	}
	if rt.kind == routeJob {
		// The job's final result just crossed the wire home; record it in
		// the event stream before the completion event fires.
		m.bus.Publish(JobEvent{
			Job: token, Kind: EvResultFlushed,
			From: from, To: m.node.ID,
		})
	}
	res, err := m.node.ObjMan.ApplyFlush(fm)
	if fm.Err != "" {
		err = fmt.Errorf("sodee: remote segment failed: %s", fm.Err)
	}
	m.dispatchRoute(from, rt, res, err)
}

// --- class shipping ---

func (m *Manager) classLoadHook(v *vm.VM, classID int32) error {
	m.mu.Lock()
	src := m.classSource
	m.mu.Unlock()
	if src < 0 || src == m.node.ID {
		return nil // nothing to fetch from; treat as locally available
	}
	w := wire.NewWriter(8)
	w.Varint(int64(classID))
	reply, err := m.node.EP.Call(src, netsim.KindClassRequest, w.Bytes())
	if err != nil {
		return err
	}
	bundle, err := serial.DecodeClass(reply)
	if err != nil {
		return err
	}
	if err := bundle.VerifyAgainst(m.node.Prog); err != nil {
		return err
	}
	m.mu.Lock()
	m.classBytes += int64(len(reply))
	m.mu.Unlock()
	return nil
}

func (m *Manager) handleClassRequest(from int, payload []byte) ([]byte, error) {
	r := wire.NewReader(payload)
	cid := int32(r.Varint())
	if err := r.Err(); err != nil {
		return nil, err
	}
	if cid < 0 || int(cid) >= len(m.node.Prog.Classes) {
		return nil, fmt.Errorf("sodee: bad class id %d", cid)
	}
	return serial.EncodeClass(m.node.Prog, cid), nil
}

// --- wire helpers ---

type migrateMsg struct {
	plant       bool
	direct      bool
	codec       serial.Codec
	resultTo    completion
	fallback    completion // where the result goes if resultTo is unreachable
	homeNode    int
	seg         *serial.CapturedState
	residual    *serial.CapturedState
	expectValue bool
	classes     [][]byte
	// Chain identity (chainJob == 0 means none): the job the shipped
	// state belongs to and its origin node — the destination's event
	// publications need them whenever they differ from resultTo (planted
	// links, and chain fragments re-balanced onward). For plants,
	// chainSeg/chainOf add the link's position in its plan.
	chainJob    uint64
	chainOrigin int
	chainSeg    int
	chainOf     int
	// chained marks a chain-owned job (Client.SubmitChain) so planner
	// ownership survives whole-stack migrations to a new host.
	chained bool
	// delta marks the captured states (and class bundles) as
	// delta-encoded against the (src,dst) link cache; streamed announces
	// that the statics travel on a separate KindMigrateData message
	// identified by streamID. Both are only set when the peer advertised
	// the matching capability (see deltacache.go); otherwise the message
	// is the self-contained full-state form.
	delta    bool
	streamed bool
	streamID uint64
	// signals is an optional piggybacked load report (gossip riding the
	// migration; empty = none).
	signals []byte
	// classWire is set by encode: the on-wire size of the classes section,
	// which differs from the raw bundle sizes when delta references
	// replace them.
	classWire int
}

// encode serializes the control message. When sess is non-nil the
// captured states and class bundles are delta-encoded: units unchanged
// since the last transfer on this link ship as 9-byte cache references.
// A streamed message encodes its segment with the statics stripped (the
// caller ships them via KindMigrateData).
func (mm *migrateMsg) encode(prog *bytecode.Program, codec serial.Codec, sess *deltaSession) []byte {
	mm.codec = codec
	w := wire.NewWriter(512)
	w.Byte(byte(codec))
	w.Bool(mm.plant)
	w.Bool(mm.direct)
	w.Varint(int64(mm.resultTo.node))
	w.Uvarint(mm.resultTo.token)
	w.Varint(int64(mm.fallback.node))
	w.Uvarint(mm.fallback.token)
	w.Varint(int64(mm.homeNode))
	w.Bool(mm.expectValue)
	w.Uvarint(mm.chainJob)
	w.Varint(int64(mm.chainOrigin))
	w.Varint(int64(mm.chainSeg))
	w.Varint(int64(mm.chainOf))
	w.Bool(mm.chained)
	w.Bool(mm.delta)
	w.Bool(mm.streamed)
	w.Uvarint(mm.streamID)
	w.Blob(mm.signals)
	encState := func(cs *serial.CapturedState) {
		if mm.delta {
			sub := wire.NewWriter(256)
			encodeDeltaState(sub, cs, sess.m, sess, codec)
			w.Blob(sub.Bytes())
			return
		}
		w.Blob(serial.EncodeCapturedState(cs, prog, codec))
	}
	encState(mm.seg)
	if mm.residual != nil {
		w.Bool(true)
		encState(mm.residual)
	} else {
		w.Bool(false)
	}
	classStart := w.Len()
	w.Uvarint(uint64(len(mm.classes)))
	for _, cb := range mm.classes {
		if mm.delta {
			sess.writeUnit(w, cb)
		} else {
			w.Blob(cb)
		}
	}
	mm.classWire = w.Len() - classStart
	return w.Bytes()
}

// decodeMigrateMsg parses a control message from peer `from`; delta
// references resolve against this manager's link cache for that peer.
func (m *Manager) decodeMigrateMsg(from int, payload []byte) (*migrateMsg, error) {
	prog := m.node.Prog
	r := wire.NewReader(payload)
	mm := &migrateMsg{}
	mm.codec = serial.Codec(r.Byte())
	codec := mm.codec
	mm.plant = r.Bool()
	mm.direct = r.Bool()
	mm.resultTo.node = int(r.Varint())
	mm.resultTo.token = r.Uvarint()
	mm.fallback.node = int(r.Varint())
	mm.fallback.token = r.Uvarint()
	mm.homeNode = int(r.Varint())
	mm.expectValue = r.Bool()
	mm.chainJob = r.Uvarint()
	mm.chainOrigin = int(r.Varint())
	mm.chainSeg = int(r.Varint())
	mm.chainOf = int(r.Varint())
	mm.chained = r.Bool()
	mm.delta = r.Bool()
	mm.streamed = r.Bool()
	mm.streamID = r.Uvarint()
	mm.signals = r.Blob()
	decState := func(buf []byte) (*serial.CapturedState, error) {
		if mm.delta {
			return m.decodeDeltaState(buf, from, codec)
		}
		return serial.DecodeCapturedState(buf, prog, codec)
	}
	segBuf := r.BlobView()
	if err := r.Err(); err != nil {
		return nil, err
	}
	seg, err := decState(segBuf)
	if err != nil {
		return nil, err
	}
	mm.seg = seg
	if r.Bool() {
		resBuf := r.BlobView()
		if err := r.Err(); err != nil {
			return nil, err
		}
		mm.residual, err = decState(resBuf)
		if err != nil {
			return nil, err
		}
	}
	for i, nc := 0, int(r.Uvarint()); i < nc && r.Err() == nil; i++ {
		if mm.delta {
			cb, uerr := m.readDeltaUnit(r, from)
			if uerr != nil {
				return nil, uerr
			}
			mm.classes = append(mm.classes, cb)
		} else {
			mm.classes = append(mm.classes, r.Blob())
		}
	}
	return mm, r.Err()
}

func decodeMigrateReply(reply []byte) (arrival time.Time, restore time.Duration, err error) {
	r := wire.NewReader(reply)
	at := int64(r.Fixed64())
	rd := time.Duration(r.Uvarint())
	if e := r.Err(); e != nil {
		return time.Time{}, 0, e
	}
	return time.Unix(0, at), rd, nil
}

func encodeFlushMsg(token uint64, fm *serial.FlushMessage, prog *bytecode.Program, codec serial.Codec) []byte {
	w := wire.NewWriter(256)
	w.Byte(byte(codec)) // sender's codec; the receiver decodes accordingly
	w.Uvarint(token)
	w.Blob(serial.EncodeFlush(fm, prog, codec))
	return w.Bytes()
}
