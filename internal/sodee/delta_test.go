package sodee

// Internal tests for the migration fast path: delta capture against the
// per-link snapshot cache, statics streaming, capability negotiation and
// the waiting guard that keeps a mid-stream job invisible to stealing.

import (
	"sync"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/policy"
	"repro/internal/preprocess"
	"repro/internal/value"
	"repro/internal/vm"
	"repro/internal/workloads"
)

const (
	deltaIters = int64(4_000_000)
	deltaSeed  = int64(5)
)

func deltaExpected(iters int64) int64 { return workloads.HotClassExpected(deltaSeed, iters) }

// dgate blocks the first thread that reaches the delta_gate native until
// released, so a test can align the first migration with a known stack.
type dgate struct {
	mu      sync.Mutex
	reached chan struct{}
	release chan struct{}
	fired   bool
}

func newDGate() *dgate {
	return &dgate{reached: make(chan struct{}), release: make(chan struct{})}
}

func (g *dgate) native(t *vm.Thread, args []value.Value) (value.Value, *vm.Raised) {
	g.mu.Lock()
	first := !g.fired
	g.fired = true
	g.mu.Unlock()
	if first {
		close(g.reached)
		<-g.release
	}
	return value.Value{}, nil
}

// deltaCluster builds a SODEE cluster over the statics-bearing workload,
// seeds Hot.bias on the first node, and gossips once in each direction so
// every pair has negotiated wire capabilities before the test begins.
func deltaCluster(t *testing.T, ids []int) (*Cluster, *dgate) {
	t.Helper()
	prog := preprocess.MustPreprocess(workloads.HotClassWithMarker("delta_gate"),
		preprocess.Options{Mode: preprocess.ModeFaulting, Restore: true})
	var cfgs []NodeConfig
	for i, id := range ids {
		cfgs = append(cfgs, NodeConfig{ID: id, System: SysSODEE, Preloaded: i == 0})
	}
	c, err := NewCluster(prog, netsim.Gigabit, cfgs...)
	if err != nil {
		t.Fatal(err)
	}
	g := newDGate()
	for _, n := range c.Nodes {
		n.VM.BindNative("delta_gate", g.native)
	}
	workloads.SeedHotClass(c.Nodes[ids[0]].VM, prog)
	return c, g
}

func gossipCaps(t *testing.T, c *Cluster) {
	t.Helper()
	for _, n := range c.Nodes {
		n.Mgr.PublishLoad()
	}
	// Load reports travel as fire-and-forget sends; wait until every node
	// has heard (and so stored the wire capabilities of) every peer.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		heard := true
		for _, n := range c.Nodes {
			if len(n.Mgr.PeerSignals()) < len(c.Nodes)-1 {
				heard = false
			}
		}
		if heard {
			return
		}
		time.Sleep(200 * time.Microsecond)
	}
	t.Fatal("load gossip never reached every peer")
}

// gatedMigrate starts fn once the workload has reached the gate, releases
// the gate just after the suspend request lands, and returns fn's outcome.
func gatedMigrate(t *testing.T, g *dgate, fn func() (*MigrationMetrics, error)) (*MigrationMetrics, error) {
	t.Helper()
	<-g.reached
	type out struct {
		mm  *MigrationMetrics
		err error
	}
	ch := make(chan out, 1)
	go func() {
		mm, err := fn()
		ch <- out{mm, err}
	}()
	time.Sleep(2 * time.Millisecond)
	close(g.release)
	o := <-ch
	return o.mm, o.err
}

// awaitWrapper polls until the manager hosts a migratable job (the
// migrated-in wrapper) and returns it.
func awaitWrapper(t *testing.T, m *Manager) *Job {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if js := m.RunningJobs(); len(js) > 0 {
			return js[0]
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("no migratable wrapper appeared")
	return nil
}

// A warm link repeats itself: after the first full migration has seeded
// both ends of the (src,dst) snapshot cache, repeat hops reference the
// unchanged class bundles and statics by hash and ship a fraction of the
// cold cost.
func TestDeltaWarmLinkReducesBytes(t *testing.T) {
	c, g := deltaCluster(t, []int{1, 2})
	n1, n2 := c.Nodes[1], c.Nodes[2]
	gossipCaps(t, c)
	if caps := n1.Mgr.peerWireCaps(2); caps != capAll {
		t.Fatalf("negotiated caps for node 2 = %#x, want %#x", caps, capAll)
	}

	job, err := n1.Mgr.StartJob("Hot.crunch", value.Int(deltaSeed), value.Int(deltaIters))
	if err != nil {
		t.Fatal(err)
	}
	var trips []int64
	mm, err := gatedMigrate(t, g, func() (*MigrationMetrics, error) {
		return n1.Mgr.MigrateSOD(job, SODOptions{NFrames: WholeStack, Dest: 2, Flow: FlowReturnHome})
	})
	if err != nil {
		t.Fatalf("cold migration: %v", err)
	}
	trips = append(trips, mm.StateBytes+mm.ClassBytes)

	// Ping-pong the job over the now-warm link.
	mgrs := map[int]*Manager{1: n1.Mgr, 2: n2.Mgr}
	cur := 2
	for trip := 2; trip <= 5; trip++ {
		w := awaitWrapper(t, mgrs[cur])
		dest := 3 - cur
		mm, err := mgrs[cur].MigrateSOD(w, SODOptions{NFrames: WholeStack, Dest: dest, Flow: FlowReturnHome})
		if err != nil {
			t.Fatalf("trip %d (%d→%d): %v", trip, cur, dest, err)
		}
		trips = append(trips, mm.StateBytes+mm.ClassBytes)
		cur = dest
	}

	res, err := job.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res.I != deltaExpected(deltaIters) {
		t.Errorf("result = %d, want %d", res.I, deltaExpected(deltaIters))
	}

	cold, warm := trips[0], trips[2] // trip 3: node 1 sending over a warm link
	if warm*10 >= cold*6 {
		t.Errorf("warm trip shipped %d bytes vs cold %d: want < 60%% (trips: %v)", warm, cold, trips)
	}
	if n1.Mgr.met.deltaHits.Value() == 0 {
		t.Error("sender recorded no delta hits over a warm link")
	}
	if n1.Mgr.met.deltaSaved.Value() <= 0 {
		t.Error("sender recorded no bytes saved over a warm link")
	}
	if n1.Mgr.met.streamedMig.Value() == 0 {
		t.Error("no migration used the streaming wire format")
	}
	if n1.Mgr.met.gossipPiggyback.Value() == 0 {
		t.Error("no load report rode a migration")
	}
}

// A peer that never advertised the delta/stream capabilities gets the
// self-contained full-state format, and the link caches stay empty.
func TestWireCapsZeroFullState(t *testing.T) {
	c, g := deltaCluster(t, []int{1, 2})
	n1, n2 := c.Nodes[1], c.Nodes[2]
	n1.Mgr.SetWireCaps(0)
	n2.Mgr.SetWireCaps(0)
	gossipCaps(t, c)
	if caps := n1.Mgr.peerWireCaps(2); caps != 0 {
		t.Fatalf("negotiated caps = %#x, want 0", caps)
	}

	job, err := n1.Mgr.StartJob("Hot.crunch", value.Int(deltaSeed), value.Int(deltaIters))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gatedMigrate(t, g, func() (*MigrationMetrics, error) {
		return n1.Mgr.MigrateSOD(job, SODOptions{NFrames: WholeStack, Dest: 2, Flow: FlowReturnHome})
	}); err != nil {
		t.Fatalf("migration: %v", err)
	}
	w := awaitWrapper(t, n2.Mgr)
	if _, err := n2.Mgr.MigrateSOD(w, SODOptions{NFrames: WholeStack, Dest: 1, Flow: FlowReturnHome}); err != nil {
		t.Fatalf("return migration: %v", err)
	}
	res, err := job.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res.I != deltaExpected(deltaIters) {
		t.Errorf("result = %d, want %d", res.I, deltaExpected(deltaIters))
	}
	for id, n := range map[int]*Node{1: n1, 2: n2} {
		if v := n.Mgr.met.deltaHits.Value(); v != 0 {
			t.Errorf("node %d: deltaHits = %d with caps 0", id, v)
		}
		if v := n.Mgr.met.streamedMig.Value(); v != 0 {
			t.Errorf("node %d: streamedMig = %d with caps 0", id, v)
		}
	}
	if l := n1.Mgr.deltaCacheLen(2); l != 0 {
		t.Errorf("link cache grew to %d units with caps 0", l)
	}
}

// A peer death evicts the snapshot cache for its link; a rejoin does too
// (the restarted process remembers nothing). The surviving side's stale
// cache triggers the delta-miss resync: one full resend, then correct
// execution.
func TestDeltaCacheEvictedOnPeerDeath(t *testing.T) {
	c, g := deltaCluster(t, []int{1, 2})
	n1, n2 := c.Nodes[1], c.Nodes[2]
	gossipCaps(t, c)

	job, err := n1.Mgr.StartJob("Hot.crunch", value.Int(deltaSeed), value.Int(deltaIters))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gatedMigrate(t, g, func() (*MigrationMetrics, error) {
		return n1.Mgr.MigrateSOD(job, SODOptions{NFrames: WholeStack, Dest: 2, Flow: FlowReturnHome})
	}); err != nil {
		t.Fatalf("migration: %v", err)
	}
	if n1.Mgr.deltaCacheLen(2) == 0 || n2.Mgr.deltaCacheLen(1) == 0 {
		t.Fatal("link caches not seeded by the first migration")
	}

	// Node 1 declares node 2 dead: its half of the link cache must go.
	now := time.Now()
	for i := 0; i < 3; i++ {
		n1.Members.ObserveFailure(2, now)
	}
	if n1.Mgr.deltaCacheLen(2) != 0 {
		t.Fatalf("node 1 kept %d cached units for a dead peer", n1.Mgr.deltaCacheLen(2))
	}
	// The peer rejoins (Alive transition) — still evicted, not repopulated.
	n1.Members.Observe(2, time.Now())
	if n1.Mgr.deltaCacheLen(2) != 0 {
		t.Fatalf("rejoin repopulated the link cache")
	}

	// Node 2 still holds its half and will send delta references node 1
	// can no longer resolve: the miss must trigger exactly one full
	// resend, after which the job completes correctly.
	w := awaitWrapper(t, n2.Mgr)
	if _, err := n2.Mgr.MigrateSOD(w, SODOptions{NFrames: WholeStack, Dest: 1, Flow: FlowReturnHome}); err != nil {
		t.Fatalf("post-eviction migration: %v", err)
	}
	if n2.Mgr.met.deltaMisses.Value() == 0 {
		t.Error("stale sender cache produced no delta-miss resync")
	}
	res, err := job.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res.I != deltaExpected(deltaIters) {
		t.Errorf("result = %d, want %d", res.I, deltaExpected(deltaIters))
	}
}

// While a streamed migration's statics are in flight, the restored job is
// registered but not capturable: a concurrent steal request must be
// denied, and the same request granted once the stream has been applied.
func TestStealDeniedDuringStreamingRestore(t *testing.T) {
	c, g := deltaCluster(t, []int{1, 2, 3})
	n1, n2, n3 := c.Nodes[1], c.Nodes[2], c.Nodes[3]
	gossipCaps(t, c)
	n2.Mgr.EnableSteal(policy.Steal{}, policy.HopGate{Budget: 8, Cooldown: -1})
	n1.Mgr.testStreamDelay = 200 * time.Millisecond

	job, err := n1.Mgr.StartJob("Hot.crunch", value.Int(deltaSeed), value.Int(deltaIters))
	if err != nil {
		t.Fatal(err)
	}
	type out struct {
		mm  *MigrationMetrics
		err error
	}
	migDone := make(chan out, 1)
	<-g.reached
	go func() {
		mm, err := n1.Mgr.MigrateSOD(job, SODOptions{NFrames: WholeStack, Dest: 2, Flow: FlowReturnHome})
		migDone <- out{mm, err}
	}()
	time.Sleep(2 * time.Millisecond)
	close(g.release)

	// Wait for the control message to land: the wrapper exists on node 2
	// but is held out of the migratable population while its statics are
	// still in flight.
	deadline := time.Now().Add(5 * time.Second)
	var seen bool
	for time.Now().Before(deadline) {
		if len(n2.Mgr.jobs.Values()) > 0 {
			seen = true
			break
		}
		time.Sleep(500 * time.Microsecond)
	}
	if !seen {
		t.Fatal("wrapper never registered on the destination")
	}
	if js := n2.Mgr.RunningJobs(); len(js) != 0 {
		t.Fatalf("mid-stream job is visible to the balancer: %d running jobs", len(js))
	}

	// A decoy VM thread lifts node 2 over the steal watermarks without
	// entering the job table, so the only possible grant candidate is the
	// mid-stream wrapper.
	prog := c.Prog
	decoy, err := n2.VM.NewThread(prog.MethodByName("Hot.crunch"),
		value.Int(1), value.Int(40_000_000))
	if err != nil {
		t.Fatal(err)
	}
	go decoy.Run()

	won, err := n3.Mgr.RequestSteal(2, 0)
	if err != nil {
		t.Fatalf("steal request: %v", err)
	}
	if won {
		t.Fatal("steal granted a job whose statics are still in flight")
	}

	o := <-migDone
	if o.err != nil {
		t.Fatalf("streamed migration: %v", o.err)
	}
	// Stream applied: the same request must now win the wrapper.
	w := awaitWrapper(t, n2.Mgr)
	if w == nil {
		t.Fatal("wrapper not migratable after stream applied")
	}
	won, err = n3.Mgr.RequestSteal(2, 0)
	if err != nil {
		t.Fatalf("post-stream steal request: %v", err)
	}
	if !won {
		t.Fatal("steal denied after the stream was applied")
	}
	res, err := job.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res.I != deltaExpected(deltaIters) {
		t.Errorf("result = %d, want %d (exactly-once across stream + steal)", res.I, deltaExpected(deltaIters))
	}
}

// A destination that dies between the delta announce and the data stream
// fails the whole migration on the sender, which recovers the job locally
// — exactly once.
func TestStreamDestDiesBeforeData(t *testing.T) {
	c, g := deltaCluster(t, []int{1, 2})
	n1 := c.Nodes[1]
	gossipCaps(t, c)
	n1.Mgr.testPreStream = func(dest int) { c.Net.SetNodeDown(dest, true) }

	job, err := n1.Mgr.StartJob("Hot.crunch", value.Int(deltaSeed), value.Int(deltaIters))
	if err != nil {
		t.Fatal(err)
	}
	_, merr := gatedMigrate(t, g, func() (*MigrationMetrics, error) {
		return n1.Mgr.MigrateSOD(job, SODOptions{NFrames: WholeStack, Dest: 2, Flow: FlowReturnHome})
	})
	if merr == nil {
		t.Fatal("migration to a dead destination reported success")
	}
	res, err := job.Wait()
	if err != nil {
		t.Fatalf("local recovery failed: %v", err)
	}
	if res.I != deltaExpected(deltaIters) {
		t.Errorf("result = %d, want %d", res.I, deltaExpected(deltaIters))
	}
}
