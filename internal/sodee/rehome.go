package sodee

import (
	"errors"
	"time"

	"repro/internal/netsim"
	"repro/internal/value"
	"repro/internal/wire"
)

// Origin re-homing: a job's origin node is its single point of truth — the
// waiter registration, the result-flush target, and the event stream all
// live there. The paper's elastic offload model assumes the origin outlives
// its jobs; a production cluster cannot. So every submitted job replicates
// a minimal origin shadow to a deterministic successor (the next alive node
// on the id ring): a parked Job handle, a flush route under the job's own
// id, and a shadow event stream registered at the successor's bus.
//
// The shadow is dormant while the origin lives. Two things can wake it:
//
//   - The origin completes the job normally and sends a discard: the
//     shadow completes quietly (waiters parked at the successor unblock
//     with the result), parked watch streams get one EvLagged marker plus
//     the terminal, and nothing enters the successor's history or
//     firehose — WatchAll never sees a duplicate terminal.
//
//   - The origin dies permanently. The executing node's result flush gives
//     up on the origin after the short fallback window and redirects to
//     the successor (the PR 5 recovery-route machinery: the fallback
//     completion travels with the stack). The redirected flush hits the
//     shadow route, publishes EvResultFlushed into the successor's bus —
//     promoting parked subscribers with exactly one EvLagged — and
//     completes the shadow job, which publishes the terminal with Origin
//     re-stamped to the successor.
//
// Either way every watch stream sees at most one EvLagged and exactly one
// terminal, and Wait returns the result exactly once.

// Rehome wire ops (first byte of a KindRehome payload).
const (
	rehomeReplicate byte = 1 // Call: origin → successor, create the shadow
	rehomeDiscard   byte = 2 // Send: origin completed normally, retire it
)

// originShadow is the successor-side record of one replicated origin.
type originShadow struct {
	origin  int
	job     *Job
	adopted bool // counted by adoptOrigin once membership declared the origin dead
}

// successorCandidates returns the alive peers in ring order starting just
// past this node's id — the first reachable one is the job's successor.
func (m *Manager) successorCandidates() []int {
	alive := m.node.Members.AlivePeers()
	if len(alive) == 0 {
		return nil
	}
	split := 0
	for split < len(alive) && alive[split] <= m.node.ID {
		split++
	}
	return append(alive[split:], alive[:split]...)
}

// replicateOrigin installs the job's origin shadow at its successor. It
// runs off the submit path (startJob spawns it): the replicate RPC pays
// real wire latency, and a submit burst serialized behind it would change
// the very load profile the balancer is supposed to see. The window is
// one link round-trip — far under any failure-detection timeout — and a
// watcher that races it at the successor sees "unknown job", exactly what
// any non-successor node would say. With no reachable successor the job
// simply runs un-replicated, exactly as every job did before re-homing
// existed.
func (m *Manager) replicateOrigin(job *Job) {
	w := wire.NewWriter(16)
	w.Byte(rehomeReplicate)
	w.Uvarint(job.ID)
	payload := w.Bytes()
	for _, succ := range m.successorCandidates() {
		if _, err := m.node.EP.Call(succ, netsim.KindRehome, payload); err != nil {
			continue
		}
		job.mu.Lock()
		if (job.resultFallback == completion{}) {
			job.resultFallback = completion{node: succ, token: job.ID}
		}
		fb := job.resultFallback
		var res value.Value
		var jerr error
		finished := false
		select {
		case <-job.done:
			finished = true
			res, jerr = job.result, job.err
		default:
		}
		job.mu.Unlock()
		m.met.rehomeReplicated.Inc()
		// complete() holds job.mu and reads resultFallback under it, so
		// exactly one side of this race sees the other: a job that
		// finished before the fallback was set gets its discharge here —
		// complete() saw no fallback and sent none.
		if finished {
			m.sendDischarge(job.ID, fb, res, jerr)
		}
		return
	}
}

func (m *Manager) handleRehome(from int, payload []byte) ([]byte, error) {
	r := wire.NewReader(payload)
	op := r.Byte()
	jobID := r.Uvarint()
	if err := r.Err(); err != nil {
		return nil, err
	}
	m.node.Members.Observe(from, time.Now())
	switch op {
	case rehomeReplicate:
		// The shadow route is registered under the job's own id: the
		// redirected flush names it (fallback.token == job id), and
		// deliverFlush publishes EvResultFlushed under the route token, so
		// any other token would mis-attribute the event. Job ids are
		// node-prefixed, so the origin's id can never collide with a token
		// this node minted.
		shadow := &Job{ID: jobID, mgr: m, done: make(chan struct{}), shadowOf: from}
		m.rehomeMu.Lock()
		if _, dup := m.shadowJobs[jobID]; dup {
			m.rehomeMu.Unlock()
			return nil, nil // replicated twice: keep the first shadow
		}
		m.shadowJobs[jobID] = &originShadow{origin: from, job: shadow}
		m.rehomeMu.Unlock()
		m.routes.Set(jobID, &route{kind: routeJob, job: shadow})
		m.jobs.Set(jobID, shadow)
		m.bus.RegisterShadow(jobID)
		return nil, nil

	case rehomeDiscard:
		evBuf := r.Blob()
		if err := r.Err(); err != nil {
			return nil, err
		}
		ev, err := DecodeJobEvent(evBuf)
		if err != nil {
			return nil, err
		}
		m.rehomeMu.Lock()
		sh, ok := m.shadowJobs[jobID]
		m.rehomeMu.Unlock()
		if !ok {
			return nil, nil
		}
		m.routes.Delete(jobID)
		// Unblock waiters parked on the shadow with the origin's outcome.
		// The event stream carries the result's integer projection only, so
		// that is what a successor-side Wait can return; the terminal is
		// suppressed from this bus's history (quiet) because the stream it
		// belongs to terminated at the origin. The shadow Job stays in
		// m.jobs, like any completed origin job, so late Waits still find
		// the result.
		var jerr error
		if ev.Err != "" {
			jerr = errors.New(ev.Err)
		}
		sh.job.mu.Lock()
		sh.job.quiet = true
		sh.job.mu.Unlock()
		sh.job.complete(value.Int(ev.Result), jerr)
		ev.Origin = m.node.ID // parked subscribers asked this bus for the stream
		m.bus.DischargeShadow(jobID, ev)
		m.met.rehomeDiscarded.Inc()
		return nil, nil
	}
	return nil, errors.New("sodee: unknown rehome op")
}

// sendDischarge tells the job's successor the origin completed it — best
// effort: a lost discard leaves a dormant shadow, which is only ever
// surfaced if the origin later dies, and then delivers this same terminal.
func (m *Manager) sendDischarge(jobID uint64, fb completion, res value.Value, err error) {
	ev := JobEvent{
		Job: jobID, Origin: m.node.ID, Kind: EvCompleted,
		From: m.node.ID, To: m.node.ID, Result: res.I,
	}
	if err != nil {
		ev.Err = err.Error()
	}
	w := wire.NewWriter(64)
	w.Byte(rehomeDiscard)
	w.Uvarint(jobID)
	w.Blob(EncodeJobEvent(ev))
	m.node.EP.Send(fb.node, netsim.KindRehome, w.Bytes()) //nolint:errcheck // best effort
}

// retireShadow drops the successor-side record once the shadow job
// completed; delivered marks the re-homed path (the redirected flush
// arrived here), as opposed to a discard from a healthy origin.
func (m *Manager) retireShadow(jobID uint64, delivered bool) {
	m.rehomeMu.Lock()
	_, ok := m.shadowJobs[jobID]
	delete(m.shadowJobs, jobID)
	m.rehomeMu.Unlock()
	if ok && delivered {
		m.met.rehomeCompleted.Inc()
	}
}

// adoptOrigin records that membership declared dead a node whose jobs this
// node shadows: the shadows are now this node's to deliver. The data path
// needs no kick — the executing nodes' flush fallbacks already point here
// and redirect on their own — so adoption is bookkeeping: each affected
// shadow is counted once, however often the verdict flaps.
func (m *Manager) adoptOrigin(dead int) {
	var n int64
	m.rehomeMu.Lock()
	for _, sh := range m.shadowJobs {
		if sh.origin == dead && !sh.adopted {
			sh.adopted = true
			n++
		}
	}
	m.rehomeMu.Unlock()
	if n > 0 {
		m.met.rehomeAdopted.Add(n)
	}
}

// --- SWIM probe wire protocol ---

// indirectProbeRelays is SWIM's k: how many alive relays a failed direct
// send is confirmed through before the round counts as a miss.
const indirectProbeRelays = 3

// handlePing answers a direct liveness probe with this node's own
// incarnation — the value that outranks any stale accusation about it.
func (m *Manager) handlePing(from int, payload []byte) ([]byte, error) {
	m.node.Members.Observe(from, time.Now())
	w := wire.NewWriter(8)
	w.Uvarint(m.node.Members.Incarnation(m.node.ID))
	return w.Bytes(), nil
}

// handlePingReq relays an indirect probe: ping the target on the
// requester's behalf and pass its incarnation back. A failed relay ping is
// crash evidence for this node's own detector too.
func (m *Manager) handlePingReq(from int, payload []byte) ([]byte, error) {
	r := wire.NewReader(payload)
	target := int(r.Varint())
	if err := r.Err(); err != nil {
		return nil, err
	}
	m.met.pingReqServed.Inc()
	m.node.Members.Observe(from, time.Now())
	reply, err := m.node.EP.Call(target, netsim.KindPing, nil)
	if err != nil {
		m.node.Members.ObserveFailure(target, time.Now())
		return nil, err
	}
	m.node.Members.Observe(target, time.Now())
	return reply, nil
}

// startIndirectProbe launches an indirect-probe round for target on its
// own goroutine, at most one in flight per target — the heartbeat loop
// must never block on relay RPCs, and re-accusing a peer every tick while
// its round is still out would multiply identical traffic.
func (m *Manager) startIndirectProbe(target int) {
	m.rehomeMu.Lock()
	if m.probeBusy[target] {
		m.rehomeMu.Unlock()
		return
	}
	m.probeBusy[target] = true
	m.rehomeMu.Unlock()
	go func() {
		defer func() {
			m.rehomeMu.Lock()
			delete(m.probeBusy, target)
			m.rehomeMu.Unlock()
		}()
		m.indirectProbe(target)
	}()
}

// indirectProbe runs one ping-req round for a peer this node failed to
// reach directly: up to indirectProbeRelays alive relays are asked to ping
// it. Any ack revives the peer (at the incarnation it answered with);
// exhausting the relays — or having none — completes the round as a miss,
// which makes the peer eligible for the detector's Dead timeout.
func (m *Manager) indirectProbe(target int) {
	w := wire.NewWriter(8)
	w.Varint(int64(target))
	payload := w.Bytes()
	tried := 0
	for _, relay := range m.node.Members.AlivePeers() {
		if relay == target {
			continue
		}
		if tried >= indirectProbeRelays {
			break
		}
		tried++
		reply, err := m.node.EP.Call(relay, netsim.KindPingReq, payload)
		if err != nil {
			continue
		}
		r := wire.NewReader(reply)
		inc := r.Uvarint()
		if r.Err() == nil {
			m.met.probeAcks.Inc()
			m.node.Members.ProbeAck(target, inc, time.Now())
			return
		}
	}
	m.met.probeMisses.Inc()
	m.node.Members.ProbeMiss(target, time.Now())
}
