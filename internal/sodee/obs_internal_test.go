package sodee

import (
	"strings"
	"testing"
	"time"
)

// The per-migration metrics table must not grow without bound on a
// long-lived node: record keeps a ring of the most recent migRingCap
// entries while MigrationCount tracks the lifetime total.
func TestMigrationRingBounded(t *testing.T) {
	m := &Manager{}
	total := migRingCap*2 + 7
	for i := 0; i < total; i++ {
		m.record(MigrationMetrics{StateBytes: int64(i)})
	}
	if got := m.MigrationCount(); got != uint64(total) {
		t.Fatalf("MigrationCount = %d, want %d", got, total)
	}
	if got := len(m.RecentMigrations()); got != migRingCap {
		t.Fatalf("retained %d records, want %d", got, migRingCap)
	}
	// LastMigration keeps its pre-ring semantics: the most recent record.
	if got := m.LastMigration().StateBytes; got != int64(total-1) {
		t.Fatalf("LastMigration.StateBytes = %d, want %d", got, total-1)
	}
	// RecentMigrations is oldest-first across the wrap point.
	recent := m.RecentMigrations()
	for i, mm := range recent {
		want := int64(total - migRingCap + i)
		if mm.StateBytes != want {
			t.Fatalf("RecentMigrations[%d].StateBytes = %d, want %d", i, mm.StateBytes, want)
		}
	}
}

// Below the cap the ring behaves like the old append-only slice.
func TestMigrationRingPartial(t *testing.T) {
	m := &Manager{}
	for i := 0; i < 3; i++ {
		m.record(MigrationMetrics{StateBytes: int64(i)})
	}
	if got := m.MigrationCount(); got != 3 {
		t.Fatalf("MigrationCount = %d, want 3", got)
	}
	recent := m.RecentMigrations()
	if len(recent) != 3 {
		t.Fatalf("retained %d records, want 3", len(recent))
	}
	for i, mm := range recent {
		if mm.StateBytes != int64(i) {
			t.Fatalf("RecentMigrations[%d].StateBytes = %d, want %d", i, mm.StateBytes, i)
		}
	}
	if got := m.LastMigration().StateBytes; got != 2 {
		t.Fatalf("LastMigration.StateBytes = %d, want 2", got)
	}
	if m.migNext != 3 {
		t.Fatalf("migNext = %d, want 3", m.migNext)
	}
}

// The watch renderer must surface backpressure: an EvLagged marker names
// the job (when per-job) and carries the coalesced-drop count, so a
// sodctl watch reader can tell "events were dropped" from "nothing
// happened".
func TestEvLaggedRendering(t *testing.T) {
	ev := JobEvent{Kind: EvLagged, Job: 42, Result: 17, Time: time.Now()}
	s := ev.String()
	if !strings.Contains(s, "job 42") || !strings.Contains(s, "17 events dropped") {
		t.Fatalf("per-job EvLagged rendering %q: want job id and drop count", s)
	}
	// Firehose (WatchAll) lag markers carry no job id; the rendering must
	// not claim "job 0".
	fan := JobEvent{Kind: EvLagged, Result: 9, Time: time.Now()}
	s = fan.String()
	if strings.Contains(s, "job 0") {
		t.Fatalf("firehose EvLagged rendering %q: must not name job 0", s)
	}
	if !strings.Contains(s, "9 events dropped") {
		t.Fatalf("firehose EvLagged rendering %q: want drop count", s)
	}
}
