package sodee_test

import (
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bytecode"
	"repro/internal/netsim"
	"repro/internal/policy"
	"repro/internal/preprocess"
	"repro/internal/sodee"
	"repro/internal/value"
	"repro/internal/vm"
	"repro/internal/workloads"
)

// The chaos harness: seeded, scripted scenarios that slow nodes down,
// crash them and rejoin them mid-run over the simulated fabric, while the
// balancer pushes, steals and re-balances a burst of jobs across the
// cluster. The invariant under every scenario is exactly-once execution:
// every submitted job completes, with the right answer, and its final
// statement runs exactly one time — a migration that both succeeded and
// "failed" would run it twice; a lost flush would complete it zero times.
//
// The seed matrix comes from CHAOS_SEEDS (comma-separated, default "1");
// `make chaos` runs the full matrix under -race.

// buildChaosProgram is the shared cruncher kernel with the chaos_done
// terminal marker — the exactly-once probe. workloads.CruncherExpected
// remains its Go mirror.
func buildChaosProgram() *bytecode.Program {
	return workloads.CruncherWithMarker("chaos_done")
}

// chaosMarker counts chaos_done firings per job seed, cluster-wide.
type chaosMarker struct {
	mu     sync.Mutex
	counts map[int64]int
}

func newChaosMarker() *chaosMarker {
	return &chaosMarker{counts: make(map[int64]int)}
}

func (m *chaosMarker) native(t *vm.Thread, args []value.Value) (value.Value, *vm.Raised) {
	m.mu.Lock()
	m.counts[args[0].AsInt()]++
	m.mu.Unlock()
	return value.Value{}, nil
}

func (m *chaosMarker) count(seed int64) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.counts[seed]
}

// chaosEvent is one scripted fault, fired `after` the burst is submitted.
type chaosEvent struct {
	after time.Duration
	kind  string // "crash" | "rejoin" | "slow" | "fast"
	node  int
	spin  int64 // extra per-instruction spin for "slow"
}

// chaosScenario scripts one run: the cluster shape, the burst, the
// balancer posture and the fault schedule.
type chaosScenario struct {
	name      string
	nodes     []sodee.NodeConfig
	submitTo  []int // job i is submitted to submitTo[i%len]
	jobs      int
	iters     int64
	policy    func() policy.Policy
	steal     bool
	hopBudget int
	cooldown  time.Duration
	events    []chaosEvent
}

// chaosSpin burns CPU like the runtime's own throttle hook.
func chaosSpin(n int64) {
	s := uint64(n)
	for i := int64(0); i < n; i++ {
		s = s*6364136223846793005 + 1442695040888963407
	}
	chaosSink.Store(s)
}

var chaosSink atomic.Uint64

// runChaosScenario executes one scenario at one seed and enforces the
// exactly-once invariant.
func runChaosScenario(t *testing.T, sc chaosScenario, seed int64) {
	t.Helper()
	prog := preprocess.MustPreprocess(buildChaosProgram(),
		preprocess.Options{Mode: preprocess.ModeFaulting, Restore: true})
	c, err := sodee.NewCluster(prog, netsim.Gigabit, sc.nodes...)
	if err != nil {
		t.Fatal(err)
	}
	marker := newChaosMarker()
	slowdown := make(map[int]*atomic.Int64, len(c.Nodes))
	for id, n := range c.Nodes {
		n.VM.BindNative("chaos_done", marker.native)
		// Dynamic slowdown: every thread's instruction hook reads the
		// node's atomic spin knob, so "slow" events throttle threads that
		// are already running.
		sd := &atomic.Int64{}
		slowdown[id] = sd
		base := n.VM.Profile.InstrHook
		n.VM.Profile.InstrHook = func(th *vm.Thread, f *vm.Frame, ins bytecode.Instr) *vm.Raised {
			if s := sd.Load(); s > 0 {
				chaosSpin(s)
			}
			if base != nil {
				return base(th, f, ins)
			}
			return nil
		}
	}

	b := c.AutoBalance(sc.policy(), sodee.BalanceOptions{
		Interval:  500 * time.Microsecond,
		Steal:     sc.steal,
		HopBudget: sc.hopBudget,
		Cooldown:  sc.cooldown,
	})
	defer b.Stop()

	// The burst. Seeds are distinct per job and deterministic per matrix
	// seed, so the marker can attribute every completion.
	jobs := make([]*sodee.Job, sc.jobs)
	seeds := make([]int64, sc.jobs)
	for i := range jobs {
		seeds[i] = seed*100_000 + int64(i) + 1
		home := c.Nodes[sc.submitTo[i%len(sc.submitTo)]]
		j, jerr := home.Mgr.StartJob("main", value.Int(seeds[i]), value.Int(sc.iters))
		if jerr != nil {
			t.Fatal(jerr)
		}
		jobs[i] = j
	}

	// The fault schedule, scripted relative to submission time.
	stopEvents := make(chan struct{})
	var eventWG sync.WaitGroup
	eventWG.Add(1)
	go func() {
		defer eventWG.Done()
		start := time.Now()
		for _, ev := range sc.events {
			select {
			case <-stopEvents:
				return
			case <-time.After(time.Until(start.Add(ev.after))):
			}
			switch ev.kind {
			case "crash":
				c.Net.SetNodeDown(ev.node, true)
			case "rejoin":
				c.Net.SetNodeDown(ev.node, false)
			case "slow":
				slowdown[ev.node].Store(ev.spin)
			case "fast":
				slowdown[ev.node].Store(0)
			}
		}
	}()
	defer func() {
		close(stopEvents)
		eventWG.Wait()
	}()

	// Every job completes — none lost — with the right answer.
	deadline := time.After(90 * time.Second)
	for i, j := range jobs {
		ch := make(chan struct{})
		go func() { j.Wait(); close(ch) }() //nolint:errcheck // re-read below
		select {
		case <-ch:
		case <-deadline:
			t.Fatalf("job %d (seed %d) lost: never completed", i, seeds[i])
		}
		res, jerr := j.Wait()
		if jerr != nil {
			t.Fatalf("job %d (seed %d): %v", i, seeds[i], jerr)
		}
		if want := workloads.CruncherExpected(seeds[i], sc.iters); res.I != want {
			t.Errorf("job %d (seed %d) = %d, want %d", i, seeds[i], res.I, want)
		}
	}
	b.Stop()

	// ... and exactly once: the terminal marker fired a single time per
	// job, wherever in the cluster the final frame ended up running.
	for i, s := range seeds {
		if n := marker.count(s); n != 1 {
			t.Errorf("job %d (seed %d) executed its final statement %d times, want exactly 1", i, s, n)
		}
	}
	st := b.Stats()
	if st.Migrations != st.Pushed+st.Stolen+st.Rebalanced+st.Chained {
		t.Errorf("direction split %d+%d+%d+%d does not sum to %d migrations",
			st.Pushed, st.Stolen, st.Rebalanced, st.Chained, st.Migrations)
	}
	t.Logf("scenario %s seed %d: migrations=%d (pushed %d, stolen %d, rebalanced %d, chained %d, failed %d)",
		sc.name, seed, st.Migrations, st.Pushed, st.Stolen, st.Rebalanced, st.Chained, st.FailedMigrations)
}

// chaosSeeds reads the seed matrix from CHAOS_SEEDS.
func chaosSeeds(t *testing.T) []int64 {
	raw := os.Getenv("CHAOS_SEEDS")
	if raw == "" {
		return []int64{1}
	}
	var out []int64
	for _, part := range strings.Split(raw, ",") {
		s, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64)
		if err != nil {
			t.Fatalf("bad CHAOS_SEEDS entry %q: %v", part, err)
		}
		out = append(out, s)
	}
	return out
}

// weak / strong node shorthands for scenario tables.
func weakNode(id int) sodee.NodeConfig {
	return sodee.NodeConfig{ID: id, Preloaded: true, Cores: 1, Slow: 16}
}

func strongNode(id int) sodee.NodeConfig {
	return sodee.NodeConfig{ID: id, Preloaded: true, Cores: 1}
}

func chaosScenarios() []chaosScenario {
	threshold := func() policy.Policy { return policy.Threshold{} }
	stealOnly := func() policy.Policy { return policy.Never{} }
	return []chaosScenario{
		{
			// Idle thieves drain a weak node's burst while one of them
			// crashes mid-run and rejoins: steals toward the dead node
			// fail harmlessly, jobs it already stole flush after rejoin.
			name:     "steal-during-crash",
			nodes:    []sodee.NodeConfig{weakNode(1), strongNode(2), strongNode(3)},
			submitTo: []int{1},
			jobs:     8,
			iters:    120_000,
			policy:   stealOnly,
			steal:    true,
			events: []chaosEvent{
				{after: 60 * time.Millisecond, kind: "crash", node: 3},
				{after: 400 * time.Millisecond, kind: "rejoin", node: 3},
			},
		},
		{
			// A node that was dead at submission rejoins mid-run; jobs
			// pushed onto the surviving strong node re-balance onto the
			// rejoined one once its heartbeats readmit it.
			name:     "rebalance-during-rejoin",
			nodes:    []sodee.NodeConfig{weakNode(1), strongNode(2), strongNode(3)},
			submitTo: []int{1},
			jobs:     8,
			iters:    150_000,
			policy:   threshold,
			steal:    true,
			events: []chaosEvent{
				{after: 0, kind: "crash", node: 3},
				{after: 50 * time.Millisecond, kind: "slow", node: 2, spin: 24},
				{after: 150 * time.Millisecond, kind: "rejoin", node: 3},
			},
		},
		{
			// The primary spill destination crashes with migrations in
			// flight: failed transfers fall back locally, the detector
			// reroutes the rest, and the crashed node's hosted jobs
			// deliver their results after it rejoins.
			name:     "crash-primary-destination",
			nodes:    []sodee.NodeConfig{weakNode(1), strongNode(2), strongNode(3)},
			submitTo: []int{1},
			jobs:     8,
			iters:    120_000,
			policy:   threshold,
			steal:    false,
			events: []chaosEvent{
				{after: 40 * time.Millisecond, kind: "crash", node: 2},
				{after: 600 * time.Millisecond, kind: "rejoin", node: 2},
			},
		},
		{
			// Rolling slowdowns shift the fastest node every 100ms; push
			// and steal chase the capacity, bounded by the hop gate.
			name:     "rolling-slowdowns",
			nodes:    []sodee.NodeConfig{weakNode(1), strongNode(2), strongNode(3)},
			submitTo: []int{1, 2},
			jobs:     8,
			iters:    120_000,
			policy:   threshold,
			steal:    true,
			cooldown: 100 * time.Millisecond,
			events: []chaosEvent{
				{after: 80 * time.Millisecond, kind: "slow", node: 2, spin: 30},
				{after: 180 * time.Millisecond, kind: "slow", node: 3, spin: 30},
				{after: 280 * time.Millisecond, kind: "fast", node: 2},
				{after: 380 * time.Millisecond, kind: "fast", node: 3},
			},
		},
		{
			// A node sleeps through the whole submission, rejoins into a
			// loaded cluster and pulls its share by stealing.
			name:     "thundering-rejoin",
			nodes:    []sodee.NodeConfig{weakNode(1), strongNode(2), strongNode(3)},
			submitTo: []int{1},
			jobs:     8,
			iters:    150_000,
			policy:   stealOnly,
			steal:    true,
			events: []chaosEvent{
				{after: 0, kind: "crash", node: 3},
				{after: 200 * time.Millisecond, kind: "rejoin", node: 3},
			},
		},
		{
			// Two-node pressure cooker: a tight hop budget and cooldown
			// keep jobs from ping-ponging while both push and steal are
			// armed and the nodes take turns being the slow one.
			name:      "ping-pong-pressure",
			nodes:     []sodee.NodeConfig{strongNode(1), strongNode(2)},
			submitTo:  []int{1, 2},
			jobs:      6,
			iters:     120_000,
			policy:    threshold,
			steal:     true,
			hopBudget: 3,
			cooldown:  150 * time.Millisecond,
			events: []chaosEvent{
				{after: 50 * time.Millisecond, kind: "slow", node: 1, spin: 24},
				{after: 200 * time.Millisecond, kind: "fast", node: 1},
				{after: 200 * time.Millisecond, kind: "slow", node: 2, spin: 24},
				{after: 350 * time.Millisecond, kind: "fast", node: 2},
			},
		},
	}
}

// TestSwarmChaosWatchedCrash is the swarm-scale chaos scenario: a
// thousand jobs in flight, every one with an active watcher on its
// origin bus, when a node holding stolen work crashes and rejoins. The
// invariants are the chaos harness's exactly-once contract (every
// terminal marker fires a single time, every result is right) plus the
// event-plane one: every surviving watch stream ends cleanly with
// exactly one terminal event, delivered last, and never delivers
// anything after it.
func TestSwarmChaosWatchedCrash(t *testing.T) {
	const jobsN = 1000
	iters := int64(2_000)
	for _, seed := range chaosSeeds(t) {
		seed := seed
		t.Run("seed"+strconv.FormatInt(seed, 10), func(t *testing.T) {
			prog := preprocess.MustPreprocess(buildChaosProgram(),
				preprocess.Options{Mode: preprocess.ModeFaulting, Restore: true})
			// Unthrottled nodes: the swarm stresses the control plane, not
			// the interpreter. Submissions go to nodes 1 and 2; node 3
			// steals its share and is the crash target.
			c, err := sodee.NewCluster(prog, netsim.Gigabit,
				sodee.NodeConfig{ID: 1, Preloaded: true},
				sodee.NodeConfig{ID: 2, Preloaded: true},
				sodee.NodeConfig{ID: 3, Preloaded: true})
			if err != nil {
				t.Fatal(err)
			}
			marker := newChaosMarker()
			for _, n := range c.Nodes {
				n.VM.BindNative("chaos_done", marker.native)
			}
			b := c.AutoBalance(policy.Threshold{}, sodee.BalanceOptions{
				Interval: 500 * time.Microsecond,
				Steal:    true,
			})
			defer b.Stop()

			type watchVerdict struct {
				terminals int
				afterTerm int
				result    int64
				closed    bool
			}
			verdicts := make([]watchVerdict, jobsN)
			var watchWG sync.WaitGroup

			jobs := make([]*sodee.Job, jobsN)
			seeds := make([]int64, jobsN)
			for i := range jobs {
				seeds[i] = seed*1_000_000 + int64(i) + 1
				home := c.Nodes[1+i%2]
				j, jerr := home.Mgr.StartJob("main", value.Int(seeds[i]), value.Int(iters))
				if jerr != nil {
					t.Fatal(jerr)
				}
				jobs[i] = j
				ch, cancel := home.Mgr.Events().Subscribe(j.ID)
				watchWG.Add(1)
				go func(i int, ch <-chan sodee.JobEvent, cancel func()) {
					defer watchWG.Done()
					defer cancel()
					v := &verdicts[i]
					timeout := time.After(90 * time.Second)
					for {
						select {
						case ev, ok := <-ch:
							if !ok {
								v.closed = true
								return
							}
							if v.terminals > 0 {
								v.afterTerm++
							}
							if ev.Terminal() {
								v.terminals++
								v.result = ev.Result
							}
						case <-timeout:
							return // closed stays false: the stream hung
						}
					}
				}(i, ch, cancel)
			}

			// The fault: node 3 crashes with stolen work resident, rejoins
			// half a second later so its stranded jobs flush home.
			time.Sleep(80 * time.Millisecond)
			c.Net.SetNodeDown(3, true)
			time.Sleep(500 * time.Millisecond)
			c.Net.SetNodeDown(3, false)

			deadline := time.After(90 * time.Second)
			for i, j := range jobs {
				ch := make(chan struct{})
				go func() { j.Wait(); close(ch) }() //nolint:errcheck // re-read below
				select {
				case <-ch:
				case <-deadline:
					t.Fatalf("job %d (seed %d) lost: never completed", i, seeds[i])
				}
				res, jerr := j.Wait()
				if jerr != nil {
					t.Fatalf("job %d (seed %d): %v", i, seeds[i], jerr)
				}
				if want := workloads.CruncherExpected(seeds[i], iters); res.I != want {
					t.Errorf("job %d (seed %d) = %d, want %d", i, seeds[i], res.I, want)
				}
			}
			watchWG.Wait()

			for i, s := range seeds {
				if n := marker.count(s); n != 1 {
					t.Errorf("job %d (seed %d) executed its final statement %d times, want exactly 1", i, s, n)
				}
				v := verdicts[i]
				if !v.closed {
					t.Errorf("job %d (seed %d): watch stream never ended", i, seeds[i])
					continue
				}
				if v.terminals != 1 {
					t.Errorf("job %d (seed %d): stream delivered %d terminal events, want exactly 1", i, seeds[i], v.terminals)
				}
				if v.afterTerm != 0 {
					t.Errorf("job %d (seed %d): %d events delivered after the terminal", i, seeds[i], v.afterTerm)
				}
				if want := workloads.CruncherExpected(s, iters); v.terminals == 1 && v.result != want {
					t.Errorf("job %d (seed %d): terminal carried %d, want %d", i, seeds[i], v.result, want)
				}
			}
			st := b.Stats()
			t.Logf("swarm chaos seed %d: migrations=%d (pushed %d, stolen %d, rebalanced %d, failed %d)",
				seed, st.Migrations, st.Pushed, st.Stolen, st.Rebalanced, st.FailedMigrations)
		})
	}
}

// TestChaosOriginPermanentDeath is the origin re-homing chaos scenario:
// every job in a 120-job burst originates at node 1, is watched from its
// successor (node 2), migrates off the origin, and then the origin dies
// permanently — no rejoin, ever. The executing nodes' result flushes give
// up on the origin and redirect to the successor's shadows, which must
// deliver every result exactly once: each watch stream ends with exactly
// one terminal event, nothing after it, and at most one EvLagged marker
// standing in for the events that died with the origin.
func TestChaosOriginPermanentDeath(t *testing.T) {
	const jobsN = 120
	iters := int64(150_000)
	for _, seed := range chaosSeeds(t) {
		seed := seed
		t.Run("seed"+strconv.FormatInt(seed, 10), func(t *testing.T) {
			prog := preprocess.MustPreprocess(buildChaosProgram(),
				preprocess.Options{Mode: preprocess.ModeFaulting, Restore: true})
			// Every node runs a single-slot CPU gate: 120 threads share it
			// round-robin, so no job can finish much before the rest of
			// the burst — the whole burst is still in flight when the
			// evacuation drains the origin and the axe falls. (A faster
			// survivor would finish early jobs — and flush them to the
			// still-living origin — while later ones were still
			// evacuating.)
			c, err := sodee.NewCluster(prog, netsim.Gigabit,
				sodee.NodeConfig{ID: 1, Preloaded: true, Cores: 1},
				sodee.NodeConfig{ID: 2, Preloaded: true, Cores: 1},
				sodee.NodeConfig{ID: 3, Preloaded: true, Cores: 1})
			if err != nil {
				t.Fatal(err)
			}
			marker := newChaosMarker()
			for _, n := range c.Nodes {
				n.VM.BindNative("chaos_done", marker.native)
			}
			jobs := make([]*sodee.Job, jobsN)
			seeds := make([]int64, jobsN)
			for i := range jobs {
				seeds[i] = seed*1_000_000 + int64(i) + 1
				j, jerr := c.Nodes[1].Mgr.StartJob("main", value.Int(seeds[i]), value.Int(iters))
				if jerr != nil {
					t.Fatal(jerr)
				}
				jobs[i] = j
			}

			// Origin replication is asynchronous (one link round-trip
			// behind StartJob); wait for every shadow before watching.
			succ := c.Nodes[2]
			waitUntil := time.Now().Add(30 * time.Second)
			for _, j := range jobs {
				for !succ.Mgr.Events().Known(j.ID) {
					if time.Now().After(waitUntil) {
						t.Fatalf("job %d never replicated to its successor", j.ID)
					}
					time.Sleep(time.Millisecond)
				}
			}

			// Watchers attach at the successor, parked on the shadows,
			// before the origin dies.
			type watchVerdict struct {
				terminals int
				afterTerm int
				lagged    int
				flushed   int
				result    int64
				closed    bool
			}
			verdicts := make([]watchVerdict, jobsN)
			var watchWG sync.WaitGroup
			for i, j := range jobs {
				ch, cancel := succ.Mgr.Events().Subscribe(j.ID)
				watchWG.Add(1)
				go func(i int, ch <-chan sodee.JobEvent, cancel func()) {
					defer watchWG.Done()
					defer cancel()
					v := &verdicts[i]
					timeout := time.After(90 * time.Second)
					for {
						select {
						case ev, ok := <-ch:
							if !ok {
								v.closed = true
								return
							}
							if v.terminals > 0 {
								v.afterTerm++
							}
							switch {
							case ev.Terminal():
								v.terminals++
								v.result = ev.Result
							case ev.Kind == sodee.EvLagged:
								v.lagged++
							case ev.Kind == sodee.EvResultFlushed:
								v.flushed++
							}
						case <-timeout:
							return // closed stays false: the stream hung
						}
					}
				}(i, ch, cancel)
			}

			// Evacuate the origin: every job migrates off node 1, whole
			// stack, each on its own goroutine — MigrateSOD suspends the
			// thread at its next safepoint, and parked threads release
			// their core slot, so the suspends overlap instead of queuing
			// behind each other's quanta. A job that completes at the
			// origin before its migration lands is fine: its discharge
			// wakes the shadow, and the settled gate below waits for it.
			var migrated atomic.Int64
			var evacWG sync.WaitGroup
			for i, j := range jobs {
				evacWG.Add(1)
				go func(j *sodee.Job, dest int) {
					defer evacWG.Done()
					for !j.Done() {
						if time.Now().After(waitUntil) {
							t.Errorf("job %d never evacuated", j.ID)
							return
						}
						_, merr := c.Nodes[1].Mgr.MigrateSOD(j, sodee.SODOptions{
							NFrames: sodee.WholeStack, Dest: dest,
						})
						if merr == nil {
							migrated.Add(1)
							return
						}
						time.Sleep(2 * time.Millisecond)
					}
				}(j, 2+i%2)
			}
			evacWG.Wait()

			// Let the evacuation drain the origin, then kill it for good.
			// "Drained" means no job is resident anymore AND no discharge
			// is pending: a job that completed while the origin lived must
			// have woken its shadow before the axe falls, or the shadow
			// sleeps forever — the flush already succeeded, so no redirect
			// will ever come for it.
			for {
				if time.Now().After(waitUntil) {
					t.Fatalf("origin never drained: %d jobs still resident",
						len(c.Nodes[1].Mgr.RunningJobs()))
				}
				settled := len(c.Nodes[1].Mgr.RunningJobs()) == 0
				for _, j := range jobs {
					if !settled {
						break
					}
					if j.Done() {
						if sj, ok := succ.Mgr.Job(j.ID); !ok || !sj.Done() {
							settled = false
						}
					}
				}
				if settled {
					break
				}
				time.Sleep(time.Millisecond)
			}
			c.Net.SetNodeDown(1, true) // permanent: no rejoin event follows

			// Every result lands at the successor's shadow exactly once.
			deadline := time.After(90 * time.Second)
			for i, j := range jobs {
				sj, ok := succ.Mgr.Job(j.ID)
				if !ok {
					t.Fatalf("job %d (seed %d): successor lost the shadow handle", i, seeds[i])
				}
				ch := make(chan struct{})
				go func() { sj.Wait(); close(ch) }() //nolint:errcheck // re-read below
				select {
				case <-ch:
				case <-deadline:
					delivered := 0
					for _, jj := range jobs {
						if sjj, ok2 := succ.Mgr.Job(jj.ID); ok2 && sjj.Done() {
							delivered++
						}
					}
					t.Fatalf("job %d (seed %d) lost: successor never delivered (marker=%d originDone=%v delivered=%d/%d)",
						i, seeds[i], marker.count(seeds[i]), j.Done(), delivered, jobsN)
				}
				res, jerr := sj.Wait()
				if jerr != nil {
					t.Fatalf("job %d (seed %d): %v", i, seeds[i], jerr)
				}
				if want := workloads.CruncherExpected(seeds[i], iters); res.I != want {
					t.Errorf("job %d (seed %d) = %d, want %d", i, seeds[i], res.I, want)
				}
			}
			watchWG.Wait()

			rehomed := 0
			for i, s := range seeds {
				if n := marker.count(s); n != 1 {
					t.Errorf("job %d (seed %d) executed its final statement %d times, want exactly 1", i, s, n)
				}
				v := verdicts[i]
				if !v.closed {
					t.Errorf("job %d (seed %d): watch stream never ended", i, seeds[i])
					continue
				}
				if v.terminals != 1 {
					t.Errorf("job %d (seed %d): stream delivered %d terminal events, want exactly 1", i, seeds[i], v.terminals)
				}
				if v.afterTerm != 0 {
					t.Errorf("job %d (seed %d): %d events delivered after the terminal", i, seeds[i], v.afterTerm)
				}
				if v.lagged > 1 {
					t.Errorf("job %d (seed %d): %d EvLagged markers, want at most 1", i, seeds[i], v.lagged)
				}
				if want := workloads.CruncherExpected(s, iters); v.terminals == 1 && v.result != want {
					t.Errorf("job %d (seed %d): terminal carried %d, want %d", i, seeds[i], v.result, want)
				}
				if v.flushed > 0 {
					rehomed++
				}
			}
			// The scenario must actually exercise the re-homed delivery
			// path (redirected flush into the shadow route), not just
			// discharges from pre-death completions.
			if rehomed < jobsN/10 {
				t.Errorf("only %d/%d jobs took the re-homed flush path", rehomed, jobsN)
			}
			t.Logf("origin permanent death seed %d: %d/%d re-homed deliveries, %d migrations",
				seed, rehomed, jobsN, migrated.Load())
		})
	}
}

// TestChaosScenarios runs the full scenario table across the seed matrix.
func TestChaosScenarios(t *testing.T) {
	for _, seed := range chaosSeeds(t) {
		for _, sc := range chaosScenarios() {
			sc, seed := sc, seed
			t.Run(sc.name+"/seed"+strconv.FormatInt(seed, 10), func(t *testing.T) {
				runChaosScenario(t, sc, seed)
			})
		}
	}
}
