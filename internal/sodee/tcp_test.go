package sodee_test

import (
	"sync"
	"testing"
	"time"

	"repro/internal/bytecode"
	"repro/internal/membership"
	"repro/internal/netsim"
	"repro/internal/policy"
	"repro/internal/preprocess"
	"repro/internal/sodee"
	"repro/internal/value"
	"repro/internal/vm"
	"repro/internal/workloads"
)

// These tests run the runtime over real TCP loopback sockets instead of
// the simulated fabric: the transport seam means the same Manager code
// paths (gossip, whole-stack migration, result flush, class shipping
// metadata) must work unchanged on both.

// tcpPair builds a two-node cluster where each node rides its own
// TCPTransport, fully meshed, with mutual membership registration.
func tcpPair(t *testing.T, cfg1, cfg2 sodee.NodeConfig) (*sodee.Cluster, func()) {
	t.Helper()
	prog := preprocess.MustPreprocess(workloads.Cruncher(),
		preprocess.Options{Mode: preprocess.ModeFaulting, Restore: true})
	return tcpPairProg(t, prog, cfg1, cfg2)
}

// tcpPairProg is tcpPair over an arbitrary preprocessed program.
func tcpPairProg(t *testing.T, prog *bytecode.Program, cfg1, cfg2 sodee.NodeConfig) (*sodee.Cluster, func()) {
	t.Helper()
	c := sodee.NewTransportCluster(prog)

	tr1, err := netsim.NewTCPTransport(cfg1.ID, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	tr2, err := netsim.NewTCPTransport(cfg2.ID, "127.0.0.1:0")
	if err != nil {
		tr1.Close() //nolint:errcheck
		t.Fatal(err)
	}
	cleanup := func() {
		tr1.Close() //nolint:errcheck
		tr2.Close() //nolint:errcheck
	}
	if id, err := tr1.Connect(tr2.Addr()); err != nil || id != cfg2.ID {
		cleanup()
		t.Fatalf("connect: id=%d err=%v", id, err)
	}
	n1, err := c.AddNodeOn(cfg1, tr1)
	if err != nil {
		cleanup()
		t.Fatal(err)
	}
	n2, err := c.AddNodeOn(cfg2, tr2)
	if err != nil {
		cleanup()
		t.Fatal(err)
	}
	now := time.Now()
	n1.Members.Join(cfg2.ID, now)
	n2.Members.Join(cfg1.ID, now)
	return c, cleanup
}

// TestLoadGossipOverTCP: a KindLoadReport published over real sockets
// lands in the peer's gossip table with the right capacity hints, and
// doubles as a heartbeat into the receiver's membership tracker.
func TestLoadGossipOverTCP(t *testing.T) {
	c, cleanup := tcpPair(t,
		sodee.NodeConfig{ID: 1, Preloaded: true, Cores: 1, Slow: 8},
		sodee.NodeConfig{ID: 2, Preloaded: true, Cores: 2},
	)
	defer cleanup()
	n1, n2 := c.Nodes[1], c.Nodes[2]

	if _, errs := n1.Mgr.PublishLoad(); len(errs) != 0 {
		t.Fatalf("publish over TCP: %v", errs)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		sigs := n2.Mgr.PeerSignals()
		if len(sigs) == 1 {
			s := sigs[0]
			if s.Node != 1 || s.Cores != 1 {
				t.Fatalf("gossiped signals corrupted in transit: %+v", s)
			}
			if s.Speed >= 1 {
				t.Fatalf("throttled node advertised full speed: %+v", s)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("load report never arrived over TCP")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if got := n2.Members.State(1); got != membership.Alive {
		t.Fatalf("report should have heartbeated node 1 alive, state = %v", got)
	}
}

// TestWholeStackMigrationOverTCP: a running job's entire stack migrates
// over real sockets, executes remotely, and its result flushes home —
// the same round trip the simulated-fabric tests cover.
func TestWholeStackMigrationOverTCP(t *testing.T) {
	c, cleanup := tcpPair(t,
		sodee.NodeConfig{ID: 1, Preloaded: true},
		sodee.NodeConfig{ID: 2, Preloaded: true},
	)
	defer cleanup()
	home, dest := c.Nodes[1], c.Nodes[2]

	const seed, iters = 21, 400_000
	job, err := home.Mgr.StartJob("main", value.Int(seed), value.Int(iters))
	if err != nil {
		t.Fatal(err)
	}
	mm, err := home.Mgr.MigrateSOD(job, sodee.SODOptions{
		NFrames: sodee.WholeStack, Dest: 2, Flow: sodee.FlowReturnHome,
	})
	if err != nil {
		t.Fatal(err)
	}
	if mm.StateBytes <= 0 {
		t.Errorf("migration reported no state bytes: %+v", mm)
	}
	res, err := job.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if want := workloads.CruncherExpected(seed, iters); res.I != want {
		t.Errorf("result = %d, want %d", res.I, want)
	}
	// The segment must actually have run at the destination.
	if dest.VM.LiveInstructions() == 0 {
		t.Error("destination executed nothing")
	}
	// The measured transfer calibrated the link estimate (satellite:
	// observed latency replaces static hints).
	if _, ok := home.Mgr.WireLatency(2); !ok {
		t.Error("migration did not record a wire-latency observation")
	}
}

// TestMigrationToDeadTCPNodeRecoversLocally: the destination's transport
// is gone by the time the transfer starts; the captured state is rebuilt
// locally and the job completes — crash fallback over real sockets.
func TestMigrationToDeadTCPNodeRecoversLocally(t *testing.T) {
	c, cleanup := tcpPair(t,
		sodee.NodeConfig{ID: 1, Preloaded: true},
		sodee.NodeConfig{ID: 2, Preloaded: true},
	)
	defer cleanup()
	home := c.Nodes[1]

	const seed, iters = 33, 400_000
	job, err := home.Mgr.StartJob("main", value.Int(seed), value.Int(iters))
	if err != nil {
		t.Fatal(err)
	}
	// Kill the destination process (its whole transport, listener and
	// all), then migrate into the void.
	c.Nodes[2].EP.(*netsim.TCPTransport).Close() //nolint:errcheck
	if _, merr := home.Mgr.MigrateSOD(job, sodee.SODOptions{
		NFrames: sodee.WholeStack, Dest: 2, Flow: sodee.FlowReturnHome,
	}); merr == nil {
		t.Fatal("migration to a closed transport should fail")
	}
	res, err := job.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if want := workloads.CruncherExpected(seed, iters); res.I != want {
		t.Errorf("result after fallback = %d, want %d", res.I, want)
	}
}

// TestStealOverTCP: an idle TCP node pulls a job off a loaded peer with
// the steal protocol — the request, the grant probe and the whole-stack
// transfer all ride real sockets — and the stolen job's result flushes
// back to the victim correctly.
func TestStealOverTCP(t *testing.T) {
	c, cleanup := tcpPair(t,
		sodee.NodeConfig{ID: 1, Preloaded: true, Cores: 1, Slow: 8},
		sodee.NodeConfig{ID: 2, Preloaded: true},
	)
	defer cleanup()
	victim, thief := c.Nodes[1], c.Nodes[2]
	victim.Mgr.EnableSteal(policy.Steal{}, policy.HopGate{})

	const iters = 1_500_000
	seeds := []int64{41, 42}
	jobs := make([]*sodee.Job, len(seeds))
	for i, seed := range seeds {
		j, err := victim.Mgr.StartJob("main", value.Int(seed), value.Int(iters))
		if err != nil {
			t.Fatal(err)
		}
		jobs[i] = j
	}
	won, err := thief.Mgr.RequestSteal(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !won {
		t.Fatalf("steal over TCP denied: victim stats %+v", victim.Mgr.StealStats())
	}
	for i, j := range jobs {
		res, werr := j.Wait()
		if werr != nil {
			t.Fatalf("job %d: %v", i, werr)
		}
		if want := workloads.CruncherExpected(seeds[i], iters); res.I != want {
			t.Errorf("job %d = %d, want %d", i, res.I, want)
		}
	}
	if thief.VM.LiveInstructions() == 0 {
		t.Error("thief won a steal but executed nothing")
	}
	st := thief.Mgr.StealStats()
	if st.RequestsSent != 1 || st.Won != 1 {
		t.Errorf("thief counters: %+v", st)
	}
}

// blockAllGate parks every thread that calls it until released, and
// signals when `want` threads have arrived — unlike the single-shot gate,
// it holds a whole burst at a known execution point.
type blockAllGate struct {
	mu      sync.Mutex
	arrived int
	want    int
	ready   chan struct{}
	release chan struct{}
}

func newBlockAllGate(want int) *blockAllGate {
	return &blockAllGate{want: want, ready: make(chan struct{}), release: make(chan struct{})}
}

func (g *blockAllGate) native(t *vm.Thread, args []value.Value) (value.Value, *vm.Raised) {
	g.mu.Lock()
	g.arrived++
	if g.arrived == g.want {
		close(g.ready)
	}
	g.mu.Unlock()
	<-g.release
	return value.Value{}, nil
}

// TestStealGrantRequesterDiesMidTransferTCP: the thief dies after the
// grant round trip but before the transfer. The victim's capture is
// already committed — the migration RPC fails against the dead socket,
// and the job must fall back to local execution on the victim.
func TestStealGrantRequesterDiesMidTransferTCP(t *testing.T) {
	prog := preprocess.MustPreprocess(buildWorkload(),
		preprocess.Options{Mode: preprocess.ModeFaulting, Restore: true})
	c, cleanup := tcpPairProg(t, prog,
		sodee.NodeConfig{ID: 1, Preloaded: true},
		sodee.NodeConfig{ID: 2, Preloaded: true},
	)
	defer cleanup()
	victim, thief := c.Nodes[1], c.Nodes[2]
	g := newBlockAllGate(2)
	victim.VM.BindNative("test_gate", g.native)
	thief.VM.BindNative("test_gate", g.native)
	victim.Mgr.EnableSteal(policy.Steal{}, policy.HopGate{})

	jobs := make([]*sodee.Job, 2)
	for i := range jobs {
		d := makeData(t, victim)
		j, err := victim.Mgr.StartJob("main", value.RefVal(d), value.Int(testIters))
		if err != nil {
			t.Fatal(err)
		}
		jobs[i] = j
	}
	<-g.ready // both jobs parked in the gate: runnable 2, margin satisfied

	// The steal request: the grant probe succeeds (the thief is alive),
	// then MigrateSOD blocks waiting for a safe point because both
	// threads sit in the gate.
	stealErr := make(chan error, 1)
	go func() {
		_, err := thief.Mgr.RequestSteal(1, 0)
		stealErr <- err
	}()
	deadline := time.Now().Add(10 * time.Second)
	for victim.Mgr.StealStats().Granted == 0 {
		if time.Now().After(deadline) {
			t.Fatal("victim never granted the steal")
		}
		time.Sleep(time.Millisecond)
	}

	// Kill the requester mid-transfer — after the grant, before the
	// capture completes — then let the victim's capture proceed.
	thief.EP.(*netsim.TCPTransport).Close() //nolint:errcheck
	close(g.release)

	for i, j := range jobs {
		res, werr := j.Wait()
		if werr != nil {
			t.Fatalf("job %d after fallback: %v", i, werr)
		}
		if res.I != expectedResult(testIters) {
			t.Errorf("job %d = %d, want %d", i, res.I, expectedResult(testIters))
		}
	}
	st := victim.Mgr.StealStats()
	if st.FailedTransfers != 1 {
		t.Errorf("victim should record the failed transfer: %+v", st)
	}
	// The thief's death surfaced to its own pending call too.
	<-stealErr
}
