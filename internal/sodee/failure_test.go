package sodee_test

import (
	"strings"
	"testing"
	"time"

	"repro/internal/asm"
	"repro/internal/bytecode"
	"repro/internal/netsim"
	"repro/internal/preprocess"
	"repro/internal/sodee"
	"repro/internal/value"
)

// Failure-injection tests: the runtime must degrade cleanly when
// migrations are requested at the wrong time, toward the wrong node, or
// when the migrated code itself crashes.

func TestMigrateAfterJobFinished(t *testing.T) {
	c, g := sodCluster(t, []int{1, 2}, true)
	close(g.release)
	home := c.Nodes[1]
	d := makeData(t, home)
	job, err := home.Mgr.StartJob("main", value.RefVal(d), value.Int(10))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := job.Wait(); err != nil {
		t.Fatal(err)
	}
	if _, merr := home.Mgr.MigrateSOD(job, sodee.SODOptions{NFrames: 1, Dest: 2, Flow: sodee.FlowReturnHome}); merr == nil {
		t.Fatal("migrating a finished job should fail")
	}
}

func TestMigrateToUnknownNode(t *testing.T) {
	c, g := sodCluster(t, []int{1, 2}, true)
	home := c.Nodes[1]
	d := makeData(t, home)
	job, err := home.Mgr.StartJob("main", value.RefVal(d), value.Int(testIters))
	if err != nil {
		t.Fatal(err)
	}
	<-g.reached
	errCh := make(chan error, 1)
	go func() {
		_, merr := home.Mgr.MigrateSOD(job, sodee.SODOptions{NFrames: 1, Dest: 99, Flow: sodee.FlowReturnHome})
		errCh <- merr
	}()
	time.Sleep(2 * time.Millisecond)
	close(g.release)
	if merr := <-errCh; merr == nil || !strings.Contains(merr.Error(), "unreachable") {
		t.Fatalf("expected unreachable-node error, got %v", merr)
	}
	// The thread is stranded parked (its segment was captured and
	// truncated before the send failed); this is a detectable, reported
	// condition rather than silent corruption.
}

func TestSegmentSizeOutOfRange(t *testing.T) {
	c, g := sodCluster(t, []int{1, 2}, true)
	home := c.Nodes[1]
	d := makeData(t, home)
	job, err := home.Mgr.StartJob("main", value.RefVal(d), value.Int(testIters))
	if err != nil {
		t.Fatal(err)
	}
	<-g.reached
	errCh := make(chan error, 1)
	go func() {
		_, merr := home.Mgr.MigrateSOD(job, sodee.SODOptions{NFrames: 99, Dest: 2, Flow: sodee.FlowReturnHome})
		errCh <- merr
	}()
	time.Sleep(2 * time.Millisecond)
	close(g.release)
	if merr := <-errCh; merr == nil || !strings.Contains(merr.Error(), "out of range") {
		t.Fatalf("expected segment-size error, got %v", merr)
	}
	// The thread must have been resumed and the job completes normally.
	res, err := job.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res.I != expectedResult(testIters) {
		t.Errorf("result = %d after refused migration", res.I)
	}
}

// buildCrasher assembles a workload whose migrated frame divides by zero
// remotely; the error must propagate back to the job at home.
func TestRemoteCrashPropagatesHome(t *testing.T) {
	prog := preprocess.MustPreprocess(buildCrasherProgram(),
		preprocess.Options{Mode: preprocess.ModeFaulting, Restore: true})
	c, err := sodee.NewCluster(prog, netsim.Gigabit,
		sodee.NodeConfig{ID: 1, System: sodee.SysSODEE, Preloaded: true},
		sodee.NodeConfig{ID: 2, System: sodee.SysSODEE, Preloaded: true},
	)
	if err != nil {
		t.Fatal(err)
	}
	g := newGate()
	for _, n := range c.Nodes {
		n.VM.BindNative("test_gate", g.native)
	}
	home := c.Nodes[1]
	job, err := home.Mgr.StartJob("main", value.Int(0)) // divisor 0 → crash
	if err != nil {
		t.Fatal(err)
	}
	<-g.reached
	done := make(chan error, 1)
	go func() {
		_, merr := home.Mgr.MigrateSOD(job, sodee.SODOptions{NFrames: 1, Dest: 2, Flow: sodee.FlowReturnHome})
		done <- merr
	}()
	time.Sleep(2 * time.Millisecond)
	close(g.release)
	if merr := <-done; merr != nil {
		t.Fatal(merr)
	}
	_, jerr := job.Wait()
	if jerr == nil || !strings.Contains(jerr.Error(), "Arithmetic") {
		t.Fatalf("remote crash should surface at home, got %v", jerr)
	}
}

func TestDoubleMigrationSequential(t *testing.T) {
	// Migrate, let the segment come home, migrate again: SOD supports
	// repeated hops of the same job (the roaming pattern).
	c, g := sodCluster(t, []int{1, 2, 3}, true)
	home := c.Nodes[1]
	d := makeData(t, home)
	job, err := home.Mgr.StartJob("main", value.RefVal(d), value.Int(testIters))
	if err != nil {
		t.Fatal(err)
	}
	<-g.reached
	done := make(chan error, 1)
	go func() {
		_, e1 := home.Mgr.MigrateSOD(job, sodee.SODOptions{NFrames: 1, Dest: 2, Flow: sodee.FlowReturnHome})
		done <- e1
	}()
	time.Sleep(2 * time.Millisecond)
	close(g.release)
	if e := <-done; e != nil {
		t.Fatal(e)
	}
	res, err := job.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res.I != expectedResult(testIters) {
		t.Errorf("result = %d", res.I)
	}
}

// buildCrasherProgram assembles main(d) → work(d) where work divides by
// its argument after the gate — zero crashes remotely.
func buildCrasherProgram() *bytecode.Program {
	pb := asm.NewProgram()
	pb.Native("test_gate", 0, false)
	wk := pb.Func("work", true, "d")
	wk.Line().CallNat("test_gate", 0)
	wk.Line().Int(0).Store("i")
	wk.Label("loop")
	wk.Line().Load("i").Int(200000).Ge().Jnz("done")
	wk.Line().Load("i").Int(1).Add().Store("i")
	wk.Line().Jmp("loop")
	wk.Label("done")
	wk.Line().Int(100).Load("d").Div().RetV()
	mn := pb.Func("main", true, "d")
	mn.Line().Load("d").Call("work", 1).RetV()
	return pb.MustBuild()
}
