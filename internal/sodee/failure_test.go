package sodee_test

import (
	"strings"
	"testing"
	"time"

	"repro/internal/asm"
	"repro/internal/bytecode"
	"repro/internal/netsim"
	"repro/internal/policy"
	"repro/internal/preprocess"
	"repro/internal/sodee"
	"repro/internal/value"
)

// Failure-injection tests: the runtime must degrade cleanly when
// migrations are requested at the wrong time, toward the wrong node, or
// when the migrated code itself crashes.

func TestMigrateAfterJobFinished(t *testing.T) {
	c, g := sodCluster(t, []int{1, 2}, true)
	close(g.release)
	home := c.Nodes[1]
	d := makeData(t, home)
	job, err := home.Mgr.StartJob("main", value.RefVal(d), value.Int(10))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := job.Wait(); err != nil {
		t.Fatal(err)
	}
	if _, merr := home.Mgr.MigrateSOD(job, sodee.SODOptions{NFrames: 1, Dest: 2, Flow: sodee.FlowReturnHome}); merr == nil {
		t.Fatal("migrating a finished job should fail")
	}
}

func TestMigrateToUnknownNode(t *testing.T) {
	c, g := sodCluster(t, []int{1, 2}, true)
	home := c.Nodes[1]
	d := makeData(t, home)
	job, err := home.Mgr.StartJob("main", value.RefVal(d), value.Int(testIters))
	if err != nil {
		t.Fatal(err)
	}
	<-g.reached
	errCh := make(chan error, 1)
	go func() {
		_, merr := home.Mgr.MigrateSOD(job, sodee.SODOptions{NFrames: 1, Dest: 99, Flow: sodee.FlowReturnHome})
		errCh <- merr
	}()
	time.Sleep(2 * time.Millisecond)
	close(g.release)
	if merr := <-errCh; merr == nil || !strings.Contains(merr.Error(), "unreachable") {
		t.Fatalf("expected unreachable-node error, got %v", merr)
	}
	// The send failed after capture, but the manager rebuilds the
	// captured frames in place and resumes: the migration fails, the job
	// does not.
	res, err := job.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res.I != expectedResult(testIters) {
		t.Errorf("result = %d after failed migration", res.I)
	}
}

func TestSegmentSizeOutOfRange(t *testing.T) {
	c, g := sodCluster(t, []int{1, 2}, true)
	home := c.Nodes[1]
	d := makeData(t, home)
	job, err := home.Mgr.StartJob("main", value.RefVal(d), value.Int(testIters))
	if err != nil {
		t.Fatal(err)
	}
	<-g.reached
	errCh := make(chan error, 1)
	go func() {
		_, merr := home.Mgr.MigrateSOD(job, sodee.SODOptions{NFrames: 99, Dest: 2, Flow: sodee.FlowReturnHome})
		errCh <- merr
	}()
	time.Sleep(2 * time.Millisecond)
	close(g.release)
	if merr := <-errCh; merr == nil || !strings.Contains(merr.Error(), "out of range") {
		t.Fatalf("expected segment-size error, got %v", merr)
	}
	// The thread must have been resumed and the job completes normally.
	res, err := job.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res.I != expectedResult(testIters) {
		t.Errorf("result = %d after refused migration", res.I)
	}
}

// buildCrasher assembles a workload whose migrated frame divides by zero
// remotely; the error must propagate back to the job at home.
func TestRemoteCrashPropagatesHome(t *testing.T) {
	prog := preprocess.MustPreprocess(buildCrasherProgram(),
		preprocess.Options{Mode: preprocess.ModeFaulting, Restore: true})
	c, err := sodee.NewCluster(prog, netsim.Gigabit,
		sodee.NodeConfig{ID: 1, System: sodee.SysSODEE, Preloaded: true},
		sodee.NodeConfig{ID: 2, System: sodee.SysSODEE, Preloaded: true},
	)
	if err != nil {
		t.Fatal(err)
	}
	g := newGate()
	for _, n := range c.Nodes {
		n.VM.BindNative("test_gate", g.native)
	}
	home := c.Nodes[1]
	job, err := home.Mgr.StartJob("main", value.Int(0)) // divisor 0 → crash
	if err != nil {
		t.Fatal(err)
	}
	<-g.reached
	done := make(chan error, 1)
	go func() {
		_, merr := home.Mgr.MigrateSOD(job, sodee.SODOptions{NFrames: 1, Dest: 2, Flow: sodee.FlowReturnHome})
		done <- merr
	}()
	time.Sleep(2 * time.Millisecond)
	close(g.release)
	if merr := <-done; merr != nil {
		t.Fatal(merr)
	}
	_, jerr := job.Wait()
	if jerr == nil || !strings.Contains(jerr.Error(), "Arithmetic") {
		t.Fatalf("remote crash should surface at home, got %v", jerr)
	}
}

func TestDoubleMigrationSequential(t *testing.T) {
	// Migrate, let the segment come home, migrate again: SOD supports
	// repeated hops of the same job (the roaming pattern).
	c, g := sodCluster(t, []int{1, 2, 3}, true)
	home := c.Nodes[1]
	d := makeData(t, home)
	job, err := home.Mgr.StartJob("main", value.RefVal(d), value.Int(testIters))
	if err != nil {
		t.Fatal(err)
	}
	<-g.reached
	done := make(chan error, 1)
	go func() {
		_, e1 := home.Mgr.MigrateSOD(job, sodee.SODOptions{NFrames: 1, Dest: 2, Flow: sodee.FlowReturnHome})
		done <- e1
	}()
	time.Sleep(2 * time.Millisecond)
	close(g.release)
	if e := <-done; e != nil {
		t.Fatal(e)
	}
	res, err := job.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res.I != expectedResult(testIters) {
		t.Errorf("result = %d", res.I)
	}
}

// buildCrasherProgram assembles main(d) → work(d) where work divides by
// its argument after the gate — zero crashes remotely.
func buildCrasherProgram() *bytecode.Program {
	pb := asm.NewProgram()
	pb.Native("test_gate", 0, false)
	wk := pb.Func("work", true, "d")
	wk.Line().CallNat("test_gate", 0)
	wk.Line().Int(0).Store("i")
	wk.Label("loop")
	wk.Line().Load("i").Int(200000).Ge().Jnz("done")
	wk.Line().Load("i").Int(1).Add().Store("i")
	wk.Line().Jmp("loop")
	wk.Label("done")
	wk.Line().Int(100).Load("d").Div().RetV()
	mn := pb.Func("main", true, "d")
	mn.Line().Load("d").Call("work", 1).RetV()
	return pb.MustBuild()
}

// --- node-crash recovery ---

// startGatedJob starts a job on home, waits for it to reach the gate,
// and returns it with the gate still closed.
func startGatedJob(t *testing.T, home *sodee.Node, g *gate, iters int64) *sodee.Job {
	t.Helper()
	d := makeData(t, home)
	job, err := home.Mgr.StartJob("main", value.RefVal(d), value.Int(iters))
	if err != nil {
		t.Fatal(err)
	}
	<-g.reached
	return job
}

// migrateExpectingFailure issues the migration concurrently with the gate
// release and returns its error.
func migrateExpectingFailure(g *gate, do func() (*sodee.MigrationMetrics, error)) error {
	errCh := make(chan error, 1)
	go func() {
		_, merr := do()
		errCh <- merr
	}()
	time.Sleep(2 * time.Millisecond)
	close(g.release)
	return <-errCh
}

// TestCrashedDestPartialSegmentRecoversLocally: the destination dies
// between suspension and transfer of a one-frame segment; the captured
// frames are rebuilt in place and the job finishes at home.
func TestCrashedDestPartialSegmentRecoversLocally(t *testing.T) {
	c, g := sodCluster(t, []int{1, 2}, true)
	home := c.Nodes[1]
	job := startGatedJob(t, home, g, testIters)

	c.Net.SetNodeDown(2, true)
	merr := migrateExpectingFailure(g, func() (*sodee.MigrationMetrics, error) {
		return home.Mgr.MigrateSOD(job, sodee.SODOptions{NFrames: 1, Dest: 2, Flow: sodee.FlowReturnHome})
	})
	if merr == nil || !strings.Contains(merr.Error(), "unreachable") {
		t.Fatalf("expected unreachable error, got %v", merr)
	}
	res, err := job.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res.I != expectedResult(testIters) {
		t.Errorf("result = %d, want %d", res.I, expectedResult(testIters))
	}
}

// TestCrashedDestWholeStackRecoversLocally: a whole-stack export to a
// dead node re-attaches a rebuilt thread to the detached job.
func TestCrashedDestWholeStackRecoversLocally(t *testing.T) {
	c, g := sodCluster(t, []int{1, 2}, true)
	home := c.Nodes[1]
	job := startGatedJob(t, home, g, testIters)

	c.Net.SetNodeDown(2, true)
	merr := migrateExpectingFailure(g, func() (*sodee.MigrationMetrics, error) {
		return home.Mgr.MigrateSOD(job, sodee.SODOptions{
			NFrames: sodee.WholeStack, Dest: 2, Flow: sodee.FlowReturnHome,
		})
	})
	if merr == nil {
		t.Fatal("migration to a dead node should report failure")
	}
	res, err := job.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res.I != expectedResult(testIters) {
		t.Errorf("result = %d, want %d", res.I, expectedResult(testIters))
	}
}

// TestCrashedDestTotalFlowRecoversLocally: FlowTotal ships segment plus
// residual; both must be rebuilt locally when the destination is gone.
func TestCrashedDestTotalFlowRecoversLocally(t *testing.T) {
	c, g := sodCluster(t, []int{1, 2}, true)
	home := c.Nodes[1]
	job := startGatedJob(t, home, g, testIters)

	c.Net.SetNodeDown(2, true)
	merr := migrateExpectingFailure(g, func() (*sodee.MigrationMetrics, error) {
		return home.Mgr.MigrateSOD(job, sodee.SODOptions{NFrames: 1, Dest: 2, Flow: sodee.FlowTotal})
	})
	if merr == nil {
		t.Fatal("migration to a dead node should report failure")
	}
	res, err := job.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res.I != expectedResult(testIters) {
		t.Errorf("result = %d, want %d", res.I, expectedResult(testIters))
	}
}

// TestAutoBalanceAroundCrashedNode is the mid-auto-migration crash case:
// a burst lands on node 1 while node 2 is dead. The balancer's gossip
// marks 2 failed, the scheduler routes every spill to node 3, and no job
// wedges.
func TestAutoBalanceAroundCrashedNode(t *testing.T) {
	c := cruncherCluster(t,
		sodee.NodeConfig{ID: 1, Preloaded: true, Cores: 1, Slow: 16},
		sodee.NodeConfig{ID: 2, Preloaded: true},
		sodee.NodeConfig{ID: 3, Preloaded: true},
	)
	c.Net.SetNodeDown(2, true)

	b := c.AutoBalance(policy.Threshold{}, sodee.BalanceOptions{Interval: 200 * time.Microsecond})
	defer b.Stop()

	const njobs = 5
	jobs := make([]*sodee.Job, njobs)
	seeds := make([]int64, njobs)
	for i := range jobs {
		seeds[i] = int64(40 + i)
		j, err := c.Nodes[1].Mgr.StartJob("main", value.Int(seeds[i]), value.Int(crunchIters))
		if err != nil {
			t.Fatal(err)
		}
		jobs[i] = j
	}
	waitAll(t, jobs, seeds)
	b.Stop()

	if !b.Scheduler().Failed(2) {
		t.Error("gossip should have marked the dead node failed")
	}
	st := b.Stats()
	if st.MigrationsTo[2] != 0 {
		t.Errorf("balancer migrated %d jobs to the dead node", st.MigrationsTo[2])
	}
	if st.Migrations == 0 {
		t.Errorf("balancer should have spilled to the surviving node: %+v", st)
	}
}

// TestAutoBalanceCrashBetweenDecisionAndSend: the destination dies after
// the scheduler has already chosen it (stale gossip still advertises the
// node as idle). The migration fails in flight, the job recovers locally,
// and the node is marked failed for every later verdict.
func TestAutoBalanceCrashBetweenDecisionAndSend(t *testing.T) {
	c := cruncherCluster(t,
		sodee.NodeConfig{ID: 1, Preloaded: true, Cores: 1, Slow: 16},
		sodee.NodeConfig{ID: 2, Preloaded: true},
	)
	home := c.Nodes[1]

	// One gossip round while node 2 is alive: node 1 now holds a fresh
	// report advertising an idle peer. Reports deliver asynchronously, so
	// poll until node 2's lands.
	if _, errs := c.Nodes[2].Mgr.PublishLoad(); len(errs) != 0 {
		t.Fatalf("publish: %v", errs)
	}
	deadline := time.Now().Add(2 * time.Second)
	for len(home.Mgr.PeerSignals()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("gossip report from node 2 never arrived")
		}
		time.Sleep(time.Millisecond)
	}
	// The node dies before any migration is attempted.
	c.Net.SetNodeDown(2, true)

	// Drive the decision loop by hand against the stale view: the policy
	// picks node 2, the transfer fails, the job must recover locally.
	sched := policy.NewScheduler(policy.Threshold{})
	const njobs = 3
	jobs := make([]*sodee.Job, njobs)
	seeds := make([]int64, njobs)
	for i := range jobs {
		seeds[i] = int64(60 + i)
		j, err := home.Mgr.StartJob("main", value.Int(seeds[i]), value.Int(crunchIters))
		if err != nil {
			t.Fatal(err)
		}
		jobs[i] = j
	}
	view := policy.View{Local: home.Mgr.LocalSignals(), Peers: home.Mgr.PeerSignals()}
	d := sched.Decide(view)
	if !d.Migrate || d.Dest != 2 {
		t.Fatalf("stale view should still pick the dead node: %+v", d)
	}
	if _, merr := home.Mgr.MigrateSOD(jobs[0], sodee.SODOptions{
		NFrames: sodee.WholeStack, Dest: d.Dest, Flow: sodee.FlowReturnHome,
	}); merr == nil {
		t.Fatal("migration to the dead node should fail")
	} else {
		sched.MarkFailed(d.Dest)
	}
	// Later verdicts must never pick the dead node again.
	if d2 := sched.Decide(view); d2.Migrate && d2.Dest == 2 {
		t.Fatalf("scheduler re-picked the failed node: %+v", d2)
	}
	waitAll(t, jobs, seeds)
}

// TestAutoBalanceNodeRecoveryHeals: a crashed node that comes back is
// re-admitted as a destination once gossip reaches it again.
func TestAutoBalanceNodeRecoveryHeals(t *testing.T) {
	c := cruncherCluster(t,
		sodee.NodeConfig{ID: 1, Preloaded: true, Cores: 1, Slow: 16},
		sodee.NodeConfig{ID: 2, Preloaded: true},
	)
	c.Net.SetNodeDown(2, true)
	b := c.AutoBalance(policy.Threshold{}, sodee.BalanceOptions{Interval: 200 * time.Microsecond})
	defer b.Stop()

	// Let gossip observe the crash.
	deadline := time.Now().Add(5 * time.Second)
	for !b.Scheduler().Failed(2) {
		if time.Now().After(deadline) {
			t.Fatal("dead node never marked failed")
		}
		time.Sleep(time.Millisecond)
	}

	// Recovery: the node answers again; the next gossip round must heal
	// the mark, and a subsequent burst may spill onto it.
	c.Net.SetNodeDown(2, false)
	deadline = time.Now().Add(5 * time.Second)
	for b.Scheduler().Failed(2) {
		if time.Now().After(deadline) {
			t.Fatal("recovered node never marked alive")
		}
		time.Sleep(time.Millisecond)
	}

	const njobs = 4
	jobs := make([]*sodee.Job, njobs)
	seeds := make([]int64, njobs)
	for i := range jobs {
		seeds[i] = int64(80 + i)
		j, err := c.Nodes[1].Mgr.StartJob("main", value.Int(seeds[i]), value.Int(crunchIters))
		if err != nil {
			t.Fatal(err)
		}
		jobs[i] = j
	}
	waitAll(t, jobs, seeds)
	b.Stop()
	if st := b.Stats(); st.MigrationsTo[2] == 0 {
		t.Errorf("burst never spilled to the recovered node: %+v", st)
	}
}
