package sodee

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/wire"
)

// Job lifecycle events: the client-visible trace of what the runtime does
// to a job — where it started, every migration it took (and why), its
// result coming home, and its completion. Events are published into the
// *origin* node's Bus, keyed by the job id Submit returned there, so one
// subscription sees the whole life of a job however many hops it takes:
// a node acting on a migrated-in job forwards the event to the origin
// over KindJobEvent (one-way, best effort — an event is telemetry, never
// load-bearing state).

// EventKind discriminates job lifecycle events.
type EventKind uint8

const (
	// EvStarted: the job's thread began executing at its origin node.
	EvStarted EventKind = 1 + iota
	// EvMigrated: the job's stack moved From → To (Reason says who
	// initiated it; Hops is the job's lifetime migration count after the
	// move).
	EvMigrated
	// EvResultFlushed: the job's final result arrived at its origin over
	// the wire from the node that finished executing it.
	EvResultFlushed
	// EvCompleted: the job finished; Result/Err carry the outcome. Always
	// the final event of a stream.
	EvCompleted
	// EvMigrationFailed: a migration's transfer failed after EvMigrated
	// was announced (the destination crashed mid-flight) and the job was
	// recovered on the source node — the crash-fallback path, visible.
	EvMigrationFailed
	// EvSegmentPlanted: a chain plan placed one residual segment ahead of
	// execution — the link's frames are restored and parked on node To,
	// waiting for the value of the segment above. Seg/SegOf give the
	// link's position in the plan (0 = the executing top segment).
	EvSegmentPlanted
	// EvSegmentForwarded: control reached a planted link — the value of
	// the segment above arrived from node From and the link's frames
	// resumed on node To. A link whose planted node died recovers on the
	// chain's origin; the event's To then names the origin.
	EvSegmentForwarded
	// EvLagged is a synthetic per-subscription marker, never stored in a
	// job's history: the subscriber fell behind and Result events were
	// coalesced away since its previous delivery. It makes event loss
	// visible instead of silent — terminal events are never dropped while
	// a subscription lives, so a consumer that counts completions stays
	// exact even across lag.
	EvLagged
)

func (k EventKind) String() string {
	switch k {
	case EvStarted:
		return "started"
	case EvMigrated:
		return "migrated"
	case EvResultFlushed:
		return "result-flushed"
	case EvCompleted:
		return "completed"
	case EvMigrationFailed:
		return "migration-failed"
	case EvSegmentPlanted:
		return "segment-planted"
	case EvSegmentForwarded:
		return "segment-forwarded"
	case EvLagged:
		return "lagged"
	}
	return "unknown"
}

// MigrateReason says which side of the elasticity engine moved a job.
type MigrateReason uint8

const (
	// ReasonManual: an explicit MigrateSOD call (the hand-driven API).
	ReasonManual MigrateReason = iota
	// ReasonPushed: the balancer shed a home-grown job.
	ReasonPushed
	// ReasonStolen: an idle peer pulled the job via the steal protocol.
	ReasonStolen
	// ReasonRebalanced: the balancer moved a migrated-in job onward.
	ReasonRebalanced
	// ReasonChained: the chain planner split the job's stack into a
	// multi-segment FlowForward pipeline.
	ReasonChained
)

func (r MigrateReason) String() string {
	switch r {
	case ReasonPushed:
		return "pushed"
	case ReasonStolen:
		return "stolen"
	case ReasonRebalanced:
		return "rebalanced"
	case ReasonChained:
		return "chained"
	}
	return "manual"
}

// JobEvent is one entry of a job's lifecycle stream.
type JobEvent struct {
	// Job is the id Submit returned at the job's origin node.
	Job uint64
	// Origin is the node the job was submitted to — the bus its stream
	// lives on. Job ids are only unique per origin, so cluster-wide
	// consumers (WatchAll, sodctl top) key streams by (Origin, Job).
	Origin int
	// Seq orders events within one bus (assigned at publish).
	Seq uint64
	// Time is when the event happened, on the clock of the node where it
	// happened.
	Time time.Time
	// Kind discriminates the event; the remaining fields are per kind.
	Kind EventKind
	// From and To are the nodes involved: source → destination for
	// EvMigrated and EvResultFlushed, the hosting node (From == To) for
	// EvStarted and EvCompleted.
	From, To int
	// Reason and Hops describe an EvMigrated move.
	Reason MigrateReason
	Hops   int
	// Seg and SegOf locate a chain link within its plan: segment Seg of
	// SegOf, counted from the top of the stack (0 = the segment that
	// executes first). SegOf is zero for non-chain events.
	Seg   int
	SegOf int
	// Result (integer results only) and Err carry an EvCompleted outcome.
	// For EvLagged, Result is the number of coalesced-away events.
	Result int64
	Err    string
}

// Terminal reports whether the event ends its job's stream.
func (e JobEvent) Terminal() bool { return e.Kind == EvCompleted }

// String renders the event as the one-line narration sodctl and the
// examples print — one formatter so every surface tells the same story.
func (e JobEvent) String() string {
	switch e.Kind {
	case EvStarted:
		return fmt.Sprintf("job %d started on node %d", e.Job, e.From)
	case EvMigrated:
		if e.SegOf > 0 {
			return fmt.Sprintf("job %d migrated node %d → node %d (%s, hop %d, segment %d/%d)",
				e.Job, e.From, e.To, e.Reason, e.Hops, e.Seg+1, e.SegOf)
		}
		return fmt.Sprintf("job %d migrated node %d → node %d (%s, hop %d)",
			e.Job, e.From, e.To, e.Reason, e.Hops)
	case EvSegmentPlanted:
		return fmt.Sprintf("job %d segment %d/%d planted on node %d (chain from node %d)",
			e.Job, e.Seg+1, e.SegOf, e.To, e.From)
	case EvSegmentForwarded:
		return fmt.Sprintf("job %d segment %d/%d resumed on node %d (value forwarded from node %d)",
			e.Job, e.Seg+1, e.SegOf, e.To, e.From)
	case EvResultFlushed:
		return fmt.Sprintf("job %d result flushed node %d → node %d", e.Job, e.From, e.To)
	case EvMigrationFailed:
		return fmt.Sprintf("job %d migration to node %d failed; recovered on node %d",
			e.Job, e.To, e.From)
	case EvCompleted:
		if e.Err != "" {
			return fmt.Sprintf("job %d failed: %s", e.Job, e.Err)
		}
		return fmt.Sprintf("job %d completed: %d", e.Job, e.Result)
	case EvLagged:
		// A per-job subscription's marker names its job; a firehose
		// (WatchAll) marker has no single job to blame.
		if e.Job != 0 {
			return fmt.Sprintf("job %d watcher lagged: %d events dropped (coalesced)", e.Job, e.Result)
		}
		return fmt.Sprintf("watcher lagged: %d events dropped (coalesced)", e.Result)
	}
	return fmt.Sprintf("job %d: %s", e.Job, e.Kind)
}

// EncodeJobEvent serializes an event for the wire (node-to-origin
// forwarding and the daemon's control-plane streaming share the format).
func EncodeJobEvent(e JobEvent) []byte {
	w := wire.NewWriter(64)
	w.Uvarint(e.Job)
	w.Varint(int64(e.Origin))
	w.Uvarint(e.Seq)
	w.Fixed64(uint64(e.Time.UnixNano()))
	w.Byte(byte(e.Kind))
	w.Varint(int64(e.From))
	w.Varint(int64(e.To))
	w.Byte(byte(e.Reason))
	w.Varint(int64(e.Hops))
	w.Varint(int64(e.Seg))
	w.Varint(int64(e.SegOf))
	w.Varint(e.Result)
	w.Blob([]byte(e.Err))
	return w.Bytes()
}

// DecodeJobEvent parses a wire-format event. The Seq survives for
// display consumers (sodctl); a bus republishing a forwarded event
// assigns its own publish order regardless.
func DecodeJobEvent(payload []byte) (JobEvent, error) {
	r := wire.NewReader(payload)
	e := JobEvent{
		Job:    r.Uvarint(),
		Origin: int(r.Varint()),
		Seq:    r.Uvarint(),
		Time:   time.Unix(0, int64(r.Fixed64())),
		Kind:   EventKind(r.Byte()),
		From:   int(r.Varint()),
		To:     int(r.Varint()),
		Reason: MigrateReason(r.Byte()),
		Hops:   int(r.Varint()),
		Seg:    int(r.Varint()),
		SegOf:  int(r.Varint()),
		Result: r.Varint(),
	}
	e.Err = string(r.Blob())
	return e, r.Err()
}

// Bus bounds: how many events one job may accumulate (a job's stream is
// naturally short — start, a hop-budget's worth of migrations, flush,
// completion — so the cap only guards against pathological loops), and
// how many jobs' histories stay replayable before the oldest is evicted
// (mirrors the daemon's completed-job retention).
const (
	maxEventsPerJob = 64
	maxTrackedJobs  = 512
	// maxPinnedJobs is the hard ceiling on retained histories. Retention
	// pressure above maxTrackedJobs discards *ended* streams only — a job
	// still running must stay Known, or a submit-heavy burst (more than
	// maxTrackedJobs jobs in flight at one node) would evict live jobs
	// before their watchers attach. Live streams are pinned until the
	// total crosses this ceiling, where memory safety wins and the oldest
	// go regardless.
	maxPinnedJobs = 8 * maxTrackedJobs
	// jobRingCap bounds a per-job subscriber's pending ring. It must
	// exceed maxEventsPerJob so a history replay always fits.
	jobRingCap = 2 * maxEventsPerJob
	// fanRingCap bounds a firehose (SubscribeAll / WatchAll) subscriber's
	// pending ring. Overflow coalesces non-terminal events (announced with
	// EvLagged markers); a subscriber so far behind that even job
	// *outcomes* would be lost is evicted instead — its channel closes
	// without a clean end, telling the consumer to resync.
	fanRingCap = 512
	// subOutBuffer is the delivery channel's buffer: small, because the
	// pending ring is what actually absorbs bursts.
	subOutBuffer = 32
)

// busSub is one subscription's delivery machinery: publishers append to a
// bounded pending ring (never blocking, coalescing on overflow) and a
// dedicated pump goroutine drains the ring into the consumer-facing
// channel. The bus therefore never stalls on a slow consumer, and a
// wedged consumer costs one parked goroutine plus one ring — reclaimed on
// cancel, terminal, or eviction.
type busSub struct {
	out  chan JobEvent
	wake chan struct{} // cap 1: "ring state changed"
	quit chan struct{} // closed on cancel/eviction: pump exits now

	// template stamps synthetic EvLagged markers with the subscription's
	// identity (job + origin for per-job subs, origin only for firehoses).
	template JobEvent
	// endOnTerminal: a per-job stream ends at its job's terminal event; a
	// firehose never ends on its own.
	endOnTerminal bool
	// evictable: firehose subs may be evicted when even terminal events
	// would be lost; per-job subs instead always preserve the terminal.
	evictable bool

	// obsCoalesced/obsEvicted, when set (by the owning Bus before the
	// subscription is published to), feed the node's metrics registry.
	obsCoalesced *obs.Counter
	obsEvicted   *obs.Counter

	mu      sync.Mutex
	ring    []JobEvent
	cap     int
	lagged  uint64 // coalesced since the last emitted marker
	dropped uint64 // lifetime coalesced count (stats)
	done    bool   // no further enqueues; pump drains, then closes out
	stopped bool   // quit has been closed
}

func newBusSub(capacity int, template JobEvent, endOnTerminal, evictable bool) *busSub {
	s := &busSub{
		out:           make(chan JobEvent, subOutBuffer),
		wake:          make(chan struct{}, 1),
		quit:          make(chan struct{}),
		template:      template,
		endOnTerminal: endOnTerminal,
		evictable:     evictable,
		cap:           capacity,
	}
	go s.pump()
	return s
}

func (s *busSub) signal() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// enqueue appends an event to the pending ring without ever blocking.
// On overflow the oldest non-terminal event is coalesced away (counted,
// announced later as an EvLagged marker). It reports whether the
// subscription is still live; false means the caller should drop it
// (closed, ended, or just evicted).
func (s *busSub) enqueue(e JobEvent) bool {
	s.mu.Lock()
	if s.done || s.stopped {
		s.mu.Unlock()
		return false
	}
	if len(s.ring) >= s.cap {
		drop := -1
		for i := range s.ring {
			if !s.ring[i].Terminal() {
				drop = i
				break
			}
		}
		switch {
		case drop >= 0:
			s.ring = append(s.ring[:drop], s.ring[drop+1:]...)
			s.lagged++
			s.dropped++
			if s.obsCoalesced != nil {
				s.obsCoalesced.Inc()
			}
		case s.evictable:
			// The ring holds nothing but job outcomes and the consumer
			// still is not draining: dropping any of them would silently
			// lose a completion. Evict — the closed channel is the signal.
			s.stopped = true
			close(s.quit)
			if s.obsEvicted != nil {
				s.obsEvicted.Inc()
			}
			s.mu.Unlock()
			return false
		case !e.Terminal():
			// Per-job sub, ring full: shed the incoming event instead.
			s.lagged++
			s.dropped++
			if s.obsCoalesced != nil {
				s.obsCoalesced.Inc()
			}
			s.mu.Unlock()
			s.signal()
			return true
		default:
			s.ring = s.ring[1:]
			s.lagged++
			s.dropped++
			if s.obsCoalesced != nil {
				s.obsCoalesced.Inc()
			}
		}
	}
	s.ring = append(s.ring, e)
	if e.Terminal() && s.endOnTerminal {
		s.done = true
	}
	live := !s.done
	s.mu.Unlock()
	s.signal()
	return live
}

// stop ends the subscription immediately (cancel / eviction); pending
// events are discarded and the consumer channel closes. Idempotent.
func (s *busSub) stop() {
	s.mu.Lock()
	if !s.stopped {
		s.stopped = true
		close(s.quit)
	}
	s.mu.Unlock()
}

// noteLag records n events this subscription is known to have missed, so
// the pump emits one EvLagged marker before its next delivery. Used when a
// re-homed stream is promoted: the origin's earlier events are lost with
// the origin, and the marker makes that visible instead of silent.
func (s *busSub) noteLag(n uint64) {
	s.mu.Lock()
	s.lagged += n
	s.dropped += n
	s.mu.Unlock()
}

// Dropped returns how many events this subscription coalesced away.
func (s *busSub) Dropped() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// pump is the subscription's delivery goroutine: drain the ring into the
// consumer channel, emitting an EvLagged marker before the next real
// event whenever coalescing happened since the last delivery.
func (s *busSub) pump() {
	defer close(s.out)
	for {
		var ev JobEvent
		have := false
		s.mu.Lock()
		switch {
		case s.lagged > 0 && len(s.ring) > 0:
			ev = s.template
			ev.Kind = EvLagged
			ev.Result = int64(s.lagged)
			ev.Time = time.Now()
			s.lagged = 0
			have = true
		case len(s.ring) > 0:
			ev = s.ring[0]
			s.ring = s.ring[1:]
			have = true
		case s.done:
			s.mu.Unlock()
			return
		}
		s.mu.Unlock()
		if !have {
			select {
			case <-s.wake:
				continue
			case <-s.quit:
				return
			}
		}
		select {
		case s.out <- ev:
		case <-s.quit:
			return
		}
	}
}

// Bus is one node's job-event hub: publish appends to the per-job history
// and fans out to live subscribers; subscribing replays the history first
// so a watcher attached after submission still sees the whole stream.
// Publishing never blocks on a consumer: each subscription buffers behind
// a bounded ring drained by its own pump goroutine, and overflow
// coalesces rather than stalls (see busSub).
type Bus struct {
	origin int

	// Optional registry hooks (SetObs): published events, events
	// coalesced away by slow subscribers, firehose subscribers evicted.
	obsPublished *obs.Counter
	obsCoalesced *obs.Counter
	obsEvicted   *obs.Counter

	mu   sync.Mutex
	seq  uint64
	hist map[uint64][]JobEvent
	// order is the first-seen order of jobs in hist, for eviction.
	order []uint64
	subs  map[uint64]map[*busSub]struct{}
	// all holds the firehose subscriptions (SubscribeAll): every event
	// published here, whatever its job.
	all map[*busSub]struct{}
	// shadows holds jobs replicated to this node for origin re-homing:
	// Known before any event exists, with subscribers parked until the
	// stream is promoted by its first real event (the redirected result
	// arriving) or discharged by the origin's normal completion. Shadow
	// state never touches hist or the firehose, so a job that completes at
	// its origin leaves no duplicate trace here.
	shadows map[uint64]map[*busSub]struct{}
}

// NewBus returns an empty bus publishing for the given origin node; every
// published event is stamped with it (job ids are only unique per
// origin, so cluster-wide consumers key streams by Origin+Job).
func NewBus(origin int) *Bus {
	return &Bus{
		origin:  origin,
		hist:    make(map[uint64][]JobEvent),
		subs:    make(map[uint64]map[*busSub]struct{}),
		all:     make(map[*busSub]struct{}),
		shadows: make(map[uint64]map[*busSub]struct{}),
	}
}

// SetObs points the bus at its node's registry counters (published /
// coalesced / evicted). Call before the bus is shared across goroutines
// — the manager does it at construction; a bus without counters works
// uncounted.
func (b *Bus) SetObs(published, coalesced, evicted *obs.Counter) {
	b.obsPublished = published
	b.obsCoalesced = coalesced
	b.obsEvicted = evicted
}

// Publish appends e to its job's history and delivers it to subscribers.
// A terminal event closes every per-job subscription on the job; events
// arriving after the terminal one (a late-forwarded migration notice)
// are dropped. Publish never blocks on a slow consumer.
func (b *Bus) Publish(e JobEvent) {
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	if b.obsPublished != nil {
		b.obsPublished.IncKeyed(e.Job)
	}
	e.Origin = b.origin
	b.mu.Lock()
	h, known := b.hist[e.Job]
	if len(h) > 0 && h[len(h)-1].Terminal() {
		b.mu.Unlock()
		return
	}
	b.seq++
	e.Seq = b.seq
	if !known {
		b.order = append(b.order, e.Job)
		if len(b.order) > maxTrackedJobs {
			b.evictLocked()
		}
	}
	if len(h) < maxEventsPerJob || e.Terminal() {
		b.hist[e.Job] = append(h, e)
	}
	// First real event for a re-homed job: promote its shadow. Parked
	// subscribers join the live set with one EvLagged marker — the
	// origin's earlier events died with the origin — and then receive
	// this event and everything after it, terminal included.
	if sh, ok := b.shadows[e.Job]; ok {
		delete(b.shadows, e.Job)
		set := b.subs[e.Job]
		if set == nil {
			set = make(map[*busSub]struct{})
			b.subs[e.Job] = set
		}
		for s := range sh {
			s.noteLag(1)
			set[s] = struct{}{}
		}
	}
	for s := range b.subs[e.Job] {
		if !s.enqueue(e) && !e.Terminal() {
			// Dead subscription discovered mid-publish: forget it.
			delete(b.subs[e.Job], s)
		}
	}
	if e.Terminal() {
		delete(b.subs, e.Job)
	}
	for s := range b.all {
		if !s.enqueue(e) {
			delete(b.all, s)
		}
	}
	b.mu.Unlock()
}

// evictLocked sheds retained histories down to maxTrackedJobs, oldest
// first, skipping streams that have not ended — a live job must stay
// replayable (and Known) however many younger jobs pile in behind it.
// Only past maxPinnedJobs are live streams evicted too. Callers hold b.mu.
func (b *Bus) evictLocked() {
	need := len(b.order) - maxTrackedJobs
	kept := b.order[:0]
	for i, id := range b.order {
		h := b.hist[id]
		ended := len(h) > 0 && h[len(h)-1].Terminal()
		if need > 0 && (ended || len(b.order)-i > maxPinnedJobs) {
			delete(b.hist, id)
			need--
			continue
		}
		kept = append(kept, id)
	}
	b.order = kept
}

// Known reports whether the bus has seen any event for the job (i.e., the
// job was submitted at this node and its history is still retained) or
// holds its re-homing shadow (the job was submitted elsewhere and this
// node is its designated successor).
func (b *Bus) Known(job uint64) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.hist[job]; ok {
		return true
	}
	_, ok := b.shadows[job]
	return ok
}

// RegisterShadow marks job as re-homed here: Known starts answering true
// and subscribers park on the shadow until the stream is promoted (first
// real event published — the redirected result arriving) or discharged
// (the origin completed the job normally). Idempotent.
func (b *Bus) RegisterShadow(job uint64) {
	b.mu.Lock()
	if _, ok := b.shadows[job]; !ok {
		b.shadows[job] = make(map[*busSub]struct{})
	}
	b.mu.Unlock()
}

// DischargeShadow retires job's shadow after the origin completed it
// normally: parked subscribers receive one EvLagged marker (the stream
// they never saw lived at the origin) followed by the terminal event, and
// their channels close. The terminal is retained as the job's entire
// local history, so a watcher attaching after the discharge replays it
// and ends instead of parking on a stream nothing will ever promote —
// and Known keeps answering true, like any other completed job here.
// Nothing reaches the firehose (SubscribeAll replays no history), so
// WatchAll consumers never see a duplicate terminal: the job's real
// stream lived at the origin's bus.
func (b *Bus) DischargeShadow(job uint64, terminal JobEvent) {
	if terminal.Time.IsZero() {
		terminal.Time = time.Now()
	}
	terminal.Origin = b.origin
	b.mu.Lock()
	sh, ok := b.shadows[job]
	delete(b.shadows, job)
	if !ok {
		b.mu.Unlock()
		return
	}
	b.seq++
	terminal.Seq = b.seq
	if _, known := b.hist[job]; !known {
		b.order = append(b.order, job)
		if len(b.order) > maxTrackedJobs {
			b.evictLocked()
		}
	}
	b.hist[job] = append(b.hist[job], terminal)
	b.mu.Unlock()
	for s := range sh {
		s.noteLag(1)
		s.enqueue(terminal)
	}
}

// Subscribe returns a channel of the job's events: the retained history
// replayed first, then live events. The channel is closed after the
// terminal event, or when cancel is called. cancel is idempotent and safe
// after close. A subscriber that stops draining never stalls the bus:
// its non-terminal events are coalesced away (announced in-stream with an
// EvLagged marker) while the terminal event is always preserved, so a
// slow watcher still learns its job's outcome.
func (b *Bus) Subscribe(job uint64) (<-chan JobEvent, func()) {
	s := newBusSub(jobRingCap, JobEvent{Job: job, Origin: b.origin}, true, false)
	s.obsCoalesced, s.obsEvicted = b.obsCoalesced, b.obsEvicted
	b.mu.Lock()
	h := b.hist[job]
	for _, e := range h {
		s.enqueue(e) // cannot overflow: ring cap > maxEventsPerJob
	}
	ended := len(h) > 0 && h[len(h)-1].Terminal()
	switch {
	case ended:
	case len(h) == 0 && b.shadows[job] != nil:
		// Re-homed job with no local stream yet: park on the shadow. The
		// subscriber resumes (with one EvLagged marker) when the stream is
		// promoted or discharged.
		b.shadows[job][s] = struct{}{}
	default:
		set := b.subs[job]
		if set == nil {
			set = make(map[*busSub]struct{})
			b.subs[job] = set
		}
		set[s] = struct{}{}
	}
	b.mu.Unlock()
	cancel := func() {
		b.mu.Lock()
		if set := b.subs[job]; set != nil {
			delete(set, s)
			if len(set) == 0 {
				delete(b.subs, job)
			}
		}
		if sh := b.shadows[job]; sh != nil {
			delete(sh, s)
		}
		b.mu.Unlock()
		s.stop()
	}
	return s.out, cancel
}

// SubscribeAll returns a firehose of every event published to this bus
// from now on (no history replay), whatever its job — the feed behind
// cluster-wide WatchAll. The stream never ends on its own; cancel closes
// it. Backpressure contract: a slow consumer's non-terminal events are
// coalesced (EvLagged markers announce the count), terminal events are
// never silently dropped — a consumer too slow to keep even terminal
// events is evicted, observed as the channel closing without cancel.
func (b *Bus) SubscribeAll() (<-chan JobEvent, func()) {
	s := newBusSub(fanRingCap, JobEvent{Origin: b.origin}, false, true)
	s.obsCoalesced, s.obsEvicted = b.obsCoalesced, b.obsEvicted
	b.mu.Lock()
	b.all[s] = struct{}{}
	b.mu.Unlock()
	cancel := func() {
		b.mu.Lock()
		delete(b.all, s)
		b.mu.Unlock()
		s.stop()
	}
	return s.out, cancel
}

// EventFan is a standalone many-to-many event fan-out with the same
// backpressure contract as Bus firehoses (bounded rings, coalescing with
// EvLagged markers, eviction before a terminal event would be lost) but
// no history, sequence numbering, or origin stamping: events pass
// through verbatim. The daemon's cluster-wide WatchAll hub uses one to
// merge the local bus firehose and every peer tap into any number of
// client streams.
type EventFan struct {
	mu   sync.Mutex
	subs map[*busSub]struct{}
}

// NewEventFan returns an empty fan.
func NewEventFan() *EventFan {
	return &EventFan{subs: make(map[*busSub]struct{})}
}

// Publish fans e out to every subscriber without blocking.
func (f *EventFan) Publish(e JobEvent) {
	f.mu.Lock()
	for s := range f.subs {
		if !s.enqueue(e) {
			delete(f.subs, s)
		}
	}
	f.mu.Unlock()
}

// Subscribe adds a consumer; cancel detaches it (idempotent). The channel
// also closes on eviction or fan Close.
func (f *EventFan) Subscribe() (<-chan JobEvent, func()) {
	s := newBusSub(fanRingCap, JobEvent{}, false, true)
	f.mu.Lock()
	f.subs[s] = struct{}{}
	f.mu.Unlock()
	cancel := func() {
		f.mu.Lock()
		delete(f.subs, s)
		f.mu.Unlock()
		s.stop()
	}
	return s.out, cancel
}

// Empty reports whether the fan currently has no subscribers.
func (f *EventFan) Empty() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.subs) == 0
}

// Close ends every subscription.
func (f *EventFan) Close() {
	f.mu.Lock()
	subs := make([]*busSub, 0, len(f.subs))
	for s := range f.subs {
		subs = append(subs, s)
	}
	f.subs = make(map[*busSub]struct{})
	f.mu.Unlock()
	for _, s := range subs {
		s.stop()
	}
}

// --- manager integration ---

// Events returns the node's job-event bus. Subscribe with the job id
// Submit returned on this node.
func (m *Manager) Events() *Bus { return m.bus }

// publishEvent routes a lifecycle event to the bus of the job's origin
// node: locally when this node is the origin, otherwise forwarded over
// KindJobEvent. Forwarding is best effort — the event stream is
// telemetry; a dropped notice must never affect the job itself.
func (m *Manager) publishEvent(origin int, e JobEvent) {
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	if origin == m.node.ID {
		m.bus.Publish(e)
		return
	}
	e.Origin = origin
	m.node.EP.Send(origin, netsim.KindJobEvent, EncodeJobEvent(e)) //nolint:errcheck // best effort
}

// publishEventSync routes like publishEvent but delivers to a remote
// origin over a blocking round trip. It exists for the one spot where
// best-effort ordering is not enough: a chain link about to start
// running publishes its segment-forwarded notice, and the link can run,
// complete and flush home so fast that a one-way notice loses the
// scheduling race and arrives after the terminal event — where the bus
// rightly drops it. The round trip guarantees the notice is home before
// the link's consequences are. Delivery failure still only costs the
// event (telemetry, never load-bearing).
func (m *Manager) publishEventSync(origin int, e JobEvent) {
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	if origin == m.node.ID {
		m.bus.Publish(e)
		return
	}
	e.Origin = origin
	_, _ = m.node.EP.Call(origin, netsim.KindJobEvent, EncodeJobEvent(e))
}

// handleJobEvent receives a forwarded event for a job that originated
// here and publishes it into the local bus.
func (m *Manager) handleJobEvent(from int, payload []byte) ([]byte, error) {
	e, err := DecodeJobEvent(payload)
	if err != nil {
		return nil, err
	}
	m.bus.Publish(e)
	return nil, nil
}
