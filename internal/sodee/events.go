package sodee

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/netsim"
	"repro/internal/wire"
)

// Job lifecycle events: the client-visible trace of what the runtime does
// to a job — where it started, every migration it took (and why), its
// result coming home, and its completion. Events are published into the
// *origin* node's Bus, keyed by the job id Submit returned there, so one
// subscription sees the whole life of a job however many hops it takes:
// a node acting on a migrated-in job forwards the event to the origin
// over KindJobEvent (one-way, best effort — an event is telemetry, never
// load-bearing state).

// EventKind discriminates job lifecycle events.
type EventKind uint8

const (
	// EvStarted: the job's thread began executing at its origin node.
	EvStarted EventKind = 1 + iota
	// EvMigrated: the job's stack moved From → To (Reason says who
	// initiated it; Hops is the job's lifetime migration count after the
	// move).
	EvMigrated
	// EvResultFlushed: the job's final result arrived at its origin over
	// the wire from the node that finished executing it.
	EvResultFlushed
	// EvCompleted: the job finished; Result/Err carry the outcome. Always
	// the final event of a stream.
	EvCompleted
	// EvMigrationFailed: a migration's transfer failed after EvMigrated
	// was announced (the destination crashed mid-flight) and the job was
	// recovered on the source node — the crash-fallback path, visible.
	EvMigrationFailed
	// EvSegmentPlanted: a chain plan placed one residual segment ahead of
	// execution — the link's frames are restored and parked on node To,
	// waiting for the value of the segment above. Seg/SegOf give the
	// link's position in the plan (0 = the executing top segment).
	EvSegmentPlanted
	// EvSegmentForwarded: control reached a planted link — the value of
	// the segment above arrived from node From and the link's frames
	// resumed on node To. A link whose planted node died recovers on the
	// chain's origin; the event's To then names the origin.
	EvSegmentForwarded
)

func (k EventKind) String() string {
	switch k {
	case EvStarted:
		return "started"
	case EvMigrated:
		return "migrated"
	case EvResultFlushed:
		return "result-flushed"
	case EvCompleted:
		return "completed"
	case EvMigrationFailed:
		return "migration-failed"
	case EvSegmentPlanted:
		return "segment-planted"
	case EvSegmentForwarded:
		return "segment-forwarded"
	}
	return "unknown"
}

// MigrateReason says which side of the elasticity engine moved a job.
type MigrateReason uint8

const (
	// ReasonManual: an explicit MigrateSOD call (the hand-driven API).
	ReasonManual MigrateReason = iota
	// ReasonPushed: the balancer shed a home-grown job.
	ReasonPushed
	// ReasonStolen: an idle peer pulled the job via the steal protocol.
	ReasonStolen
	// ReasonRebalanced: the balancer moved a migrated-in job onward.
	ReasonRebalanced
	// ReasonChained: the chain planner split the job's stack into a
	// multi-segment FlowForward pipeline.
	ReasonChained
)

func (r MigrateReason) String() string {
	switch r {
	case ReasonPushed:
		return "pushed"
	case ReasonStolen:
		return "stolen"
	case ReasonRebalanced:
		return "rebalanced"
	case ReasonChained:
		return "chained"
	}
	return "manual"
}

// JobEvent is one entry of a job's lifecycle stream.
type JobEvent struct {
	// Job is the id Submit returned at the job's origin node.
	Job uint64
	// Seq orders events within one bus (assigned at publish).
	Seq uint64
	// Time is when the event happened, on the clock of the node where it
	// happened.
	Time time.Time
	// Kind discriminates the event; the remaining fields are per kind.
	Kind EventKind
	// From and To are the nodes involved: source → destination for
	// EvMigrated and EvResultFlushed, the hosting node (From == To) for
	// EvStarted and EvCompleted.
	From, To int
	// Reason and Hops describe an EvMigrated move.
	Reason MigrateReason
	Hops   int
	// Seg and SegOf locate a chain link within its plan: segment Seg of
	// SegOf, counted from the top of the stack (0 = the segment that
	// executes first). SegOf is zero for non-chain events.
	Seg   int
	SegOf int
	// Result (integer results only) and Err carry an EvCompleted outcome.
	Result int64
	Err    string
}

// Terminal reports whether the event ends its job's stream.
func (e JobEvent) Terminal() bool { return e.Kind == EvCompleted }

// String renders the event as the one-line narration sodctl and the
// examples print — one formatter so every surface tells the same story.
func (e JobEvent) String() string {
	switch e.Kind {
	case EvStarted:
		return fmt.Sprintf("job %d started on node %d", e.Job, e.From)
	case EvMigrated:
		if e.SegOf > 0 {
			return fmt.Sprintf("job %d migrated node %d → node %d (%s, hop %d, segment %d/%d)",
				e.Job, e.From, e.To, e.Reason, e.Hops, e.Seg+1, e.SegOf)
		}
		return fmt.Sprintf("job %d migrated node %d → node %d (%s, hop %d)",
			e.Job, e.From, e.To, e.Reason, e.Hops)
	case EvSegmentPlanted:
		return fmt.Sprintf("job %d segment %d/%d planted on node %d (chain from node %d)",
			e.Job, e.Seg+1, e.SegOf, e.To, e.From)
	case EvSegmentForwarded:
		return fmt.Sprintf("job %d segment %d/%d resumed on node %d (value forwarded from node %d)",
			e.Job, e.Seg+1, e.SegOf, e.To, e.From)
	case EvResultFlushed:
		return fmt.Sprintf("job %d result flushed node %d → node %d", e.Job, e.From, e.To)
	case EvMigrationFailed:
		return fmt.Sprintf("job %d migration to node %d failed; recovered on node %d",
			e.Job, e.To, e.From)
	case EvCompleted:
		if e.Err != "" {
			return fmt.Sprintf("job %d failed: %s", e.Job, e.Err)
		}
		return fmt.Sprintf("job %d completed: %d", e.Job, e.Result)
	}
	return fmt.Sprintf("job %d: %s", e.Job, e.Kind)
}

// EncodeJobEvent serializes an event for the wire (node-to-origin
// forwarding and the daemon's control-plane streaming share the format).
func EncodeJobEvent(e JobEvent) []byte {
	w := wire.NewWriter(64)
	w.Uvarint(e.Job)
	w.Uvarint(e.Seq)
	w.Fixed64(uint64(e.Time.UnixNano()))
	w.Byte(byte(e.Kind))
	w.Varint(int64(e.From))
	w.Varint(int64(e.To))
	w.Byte(byte(e.Reason))
	w.Varint(int64(e.Hops))
	w.Varint(int64(e.Seg))
	w.Varint(int64(e.SegOf))
	w.Varint(e.Result)
	w.Blob([]byte(e.Err))
	return w.Bytes()
}

// DecodeJobEvent parses a wire-format event. The Seq survives for
// display consumers (sodctl); a bus republishing a forwarded event
// assigns its own publish order regardless.
func DecodeJobEvent(payload []byte) (JobEvent, error) {
	r := wire.NewReader(payload)
	e := JobEvent{
		Job:    r.Uvarint(),
		Seq:    r.Uvarint(),
		Time:   time.Unix(0, int64(r.Fixed64())),
		Kind:   EventKind(r.Byte()),
		From:   int(r.Varint()),
		To:     int(r.Varint()),
		Reason: MigrateReason(r.Byte()),
		Hops:   int(r.Varint()),
		Seg:    int(r.Varint()),
		SegOf:  int(r.Varint()),
		Result: r.Varint(),
	}
	e.Err = string(r.Blob())
	return e, r.Err()
}

// Bus bounds: how many events one job may accumulate (a job's stream is
// naturally short — start, a hop-budget's worth of migrations, flush,
// completion — so the cap only guards against pathological loops), and
// how many jobs' histories stay replayable before the oldest is evicted
// (mirrors the daemon's completed-job retention).
const (
	maxEventsPerJob  = 64
	maxTrackedJobs   = 512
	subChannelBuffer = maxEventsPerJob * 2
)

// Bus is one node's job-event hub: publish appends to the per-job history
// and fans out to live subscribers; subscribing replays the history first
// so a watcher attached after submission still sees the whole stream.
type Bus struct {
	mu   sync.Mutex
	seq  uint64
	hist map[uint64][]JobEvent
	// order is the first-seen order of jobs in hist, for eviction.
	order []uint64
	subs  map[uint64]map[*busSub]struct{}
}

type busSub struct {
	ch     chan JobEvent
	closed bool
}

// NewBus returns an empty bus.
func NewBus() *Bus {
	return &Bus{
		hist: make(map[uint64][]JobEvent),
		subs: make(map[uint64]map[*busSub]struct{}),
	}
}

// Publish appends e to its job's history and delivers it to subscribers.
// A terminal event closes every subscription on the job; events arriving
// after the terminal one (a late-forwarded migration notice) are dropped.
func (b *Bus) Publish(e JobEvent) {
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	h, known := b.hist[e.Job]
	if len(h) > 0 && h[len(h)-1].Terminal() {
		return
	}
	b.seq++
	e.Seq = b.seq
	if !known {
		b.order = append(b.order, e.Job)
		for len(b.order) > maxTrackedJobs {
			delete(b.hist, b.order[0])
			b.order = b.order[1:]
		}
	}
	if len(h) < maxEventsPerJob || e.Terminal() {
		b.hist[e.Job] = append(h, e)
	}
	for s := range b.subs[e.Job] {
		select {
		case s.ch <- e:
		default:
			// Slow subscriber: drop rather than stall the runtime — except
			// a terminal event, which carries the job's outcome; evict the
			// oldest queued event to make room for it.
			if e.Terminal() {
				select {
				case <-s.ch:
				default:
				}
				select {
				case s.ch <- e:
				default:
				}
			}
		}
	}
	if e.Terminal() {
		for s := range b.subs[e.Job] {
			s.closed = true
			close(s.ch)
		}
		delete(b.subs, e.Job)
	}
}

// Known reports whether the bus has seen any event for the job (i.e., the
// job was submitted at this node and its history is still retained).
func (b *Bus) Known(job uint64) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	_, ok := b.hist[job]
	return ok
}

// Subscribe returns a channel of the job's events: the retained history
// replayed first, then live events. The channel is closed after the
// terminal event, or when cancel is called. cancel is idempotent and safe
// after close.
func (b *Bus) Subscribe(job uint64) (<-chan JobEvent, func()) {
	ch := make(chan JobEvent, subChannelBuffer)
	b.mu.Lock()
	h := b.hist[job]
	for _, e := range h {
		ch <- e // cannot block: buffer > maxEventsPerJob
	}
	if len(h) > 0 && h[len(h)-1].Terminal() {
		b.mu.Unlock()
		close(ch)
		return ch, func() {}
	}
	s := &busSub{ch: ch}
	set := b.subs[job]
	if set == nil {
		set = make(map[*busSub]struct{})
		b.subs[job] = set
	}
	set[s] = struct{}{}
	b.mu.Unlock()
	cancel := func() {
		b.mu.Lock()
		defer b.mu.Unlock()
		if s.closed {
			return
		}
		s.closed = true
		close(s.ch)
		if set := b.subs[job]; set != nil {
			delete(set, s)
			if len(set) == 0 {
				delete(b.subs, job)
			}
		}
	}
	return ch, cancel
}

// --- manager integration ---

// Events returns the node's job-event bus. Subscribe with the job id
// Submit returned on this node.
func (m *Manager) Events() *Bus { return m.bus }

// publishEvent routes a lifecycle event to the bus of the job's origin
// node: locally when this node is the origin, otherwise forwarded over
// KindJobEvent. Forwarding is best effort — the event stream is
// telemetry; a dropped notice must never affect the job itself.
func (m *Manager) publishEvent(origin int, e JobEvent) {
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	if origin == m.node.ID {
		m.bus.Publish(e)
		return
	}
	m.node.EP.Send(origin, netsim.KindJobEvent, EncodeJobEvent(e)) //nolint:errcheck // best effort
}

// publishEventSync routes like publishEvent but delivers to a remote
// origin over a blocking round trip. It exists for the one spot where
// best-effort ordering is not enough: a chain link about to start
// running publishes its segment-forwarded notice, and the link can run,
// complete and flush home so fast that a one-way notice loses the
// scheduling race and arrives after the terminal event — where the bus
// rightly drops it. The round trip guarantees the notice is home before
// the link's consequences are. Delivery failure still only costs the
// event (telemetry, never load-bearing).
func (m *Manager) publishEventSync(origin int, e JobEvent) {
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	if origin == m.node.ID {
		m.bus.Publish(e)
		return
	}
	_, _ = m.node.EP.Call(origin, netsim.KindJobEvent, EncodeJobEvent(e))
}

// handleJobEvent receives a forwarded event for a job that originated
// here and publishes it into the local bus.
func (m *Manager) handleJobEvent(from int, payload []byte) ([]byte, error) {
	e, err := DecodeJobEvent(payload)
	if err != nil {
		return nil, err
	}
	m.bus.Publish(e)
	return nil, nil
}
