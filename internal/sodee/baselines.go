package sodee

import (
	"fmt"
	"time"

	"repro/internal/netsim"
	"repro/internal/serial"
	"repro/internal/value"
	"repro/internal/vm"
	"repro/internal/wire"
)

// Short aliases used throughout this file.
const (
	vmThreadParked  = vm.ThreadParked
	vmThreadRunning = vm.ThreadRunning
)

type vmObject = vm.Object

// This file implements the three comparison systems of §IV: G-JavaMPI
// eager-copy process migration, JESSICA2 in-VM thread migration and
// Xen-style pre-copy live VM migration. They share the Manager's job and
// flush plumbing so the evaluation harness treats all systems uniformly.

// --- G-JavaMPI: eager-copy process migration ---

// MigrateProcess moves the *entire* process — full stack, full heap, all
// statics — to dest, with every object exported through Java
// serialization, exactly the cost profile §IV.A attributes to G-JavaMPI.
func (m *Manager) MigrateProcess(job *Job, dest int) (*MigrationMetrics, error) {
	th := job.Thread()
	n := m.node
	if th == nil || n.Agent == nil {
		return nil, fmt.Errorf("sodee: process migration unavailable on %v", n.System)
	}
	t0 := time.Now()
	parked, err := n.Agent.SuspendAtSafePoint(th)
	if err != nil {
		return nil, err
	}
	if !parked {
		return nil, fmt.Errorf("sodee: thread finished before suspension")
	}
	depth := th.Depth()

	// Full-stack capture through the debugger interface.
	cs, err := CaptureSegment(n.Agent, th, 0, depth, n.ID)
	if err != nil {
		_ = th.Resume()
		return nil, err
	}
	// Eager copy: statics of every loaded class...
	cs.Statics = cs.Statics[:0]
	for cid := range n.VM.Statics {
		if n.VM.ClassLoaded(int32(cid)) && len(n.VM.Statics[cid]) > 0 {
			cs.Statics = append(cs.Statics, serial.ClassStatics{
				ClassID: int32(cid), Values: append([]value.Value(nil), n.VM.Statics[cid]...),
			})
		}
	}
	// ...and the whole heap, serialized object by object.
	var heap []serial.WireObject
	n.VM.Heap.ForEach(func(ref value.Ref, o *vmObject) bool {
		heap = append(heap, serial.SnapshotObject(ref, o))
		return true
	})
	captureDone := time.Now()

	job.mu.Lock()
	job.th = nil
	job.mu.Unlock()
	if err := th.Kill(); err != nil {
		return nil, err
	}

	w := wire.NewWriter(1 << 16)
	w.Varint(int64(n.ID))
	w.Uvarint(job.ID)
	w.Blob(serial.EncodeCapturedState(cs, n.Prog, n.Codec))
	w.Uvarint(uint64(len(heap)))
	for i := range heap {
		w.Blob(serial.EncodeObject(&heap[i], n.Prog, n.Codec))
	}
	// All classes ship with the process image.
	var classBytes int64
	w.Uvarint(uint64(len(n.Prog.Classes)))
	for cid := range n.Prog.Classes {
		cb := serial.EncodeClass(n.Prog, int32(cid))
		classBytes += int64(len(cb))
		w.Blob(cb)
	}
	payload := w.Bytes()

	sendStart := time.Now()
	reply, err := n.EP.Call(dest, netsim.KindProcMigrate, payload)
	if err != nil {
		return nil, err
	}
	arrival, restoreDur, rerr := decodeMigrateReply(reply)
	if rerr != nil {
		return nil, rerr
	}
	mm := MigrationMetrics{
		System:     n.System,
		Capture:    captureDone.Sub(t0),
		Transfer:   arrival.Sub(sendStart),
		Restore:    restoreDur,
		StateBytes: int64(len(payload)),
		HeapBytes:  n.VM.Heap.Bytes(),
		ClassBytes: classBytes,
	}
	mm.Latency = mm.Capture + mm.Transfer + mm.Restore
	mm.Freeze = mm.Latency
	m.record(mm)
	m.observeWireLatency(dest, mm.Transfer)
	return &mm, nil
}

func (m *Manager) handleProcMigrate(from int, payload []byte) ([]byte, error) {
	arrival := time.Now()
	n := m.node
	r := wire.NewReader(payload)
	homeNode := int(r.Varint())
	jobToken := r.Uvarint()
	csBuf := r.BlobView()
	if err := r.Err(); err != nil {
		return nil, err
	}
	cs, err := serial.DecodeCapturedState(csBuf, n.Prog, n.Codec)
	if err != nil {
		return nil, err
	}
	var heap []serial.WireObject
	for i, nh := 0, int(r.Uvarint()); i < nh && r.Err() == nil; i++ {
		wo, derr := serial.DecodeObject(r.BlobView(), n.Prog, n.Codec)
		if derr != nil {
			return nil, derr
		}
		heap = append(heap, wo)
	}
	for i, nc := 0, int(r.Uvarint()); i < nc && r.Err() == nil; i++ {
		bundle, derr := serial.DecodeClass(r.BlobView())
		if derr != nil {
			return nil, derr
		}
		if err := bundle.VerifyAgainst(n.Prog); err != nil {
			return nil, err
		}
		n.VM.MarkLoaded(bundle.Class.ID)
	}
	if err := r.Err(); err != nil {
		return nil, err
	}

	restoreStart := time.Now()
	// Re-home the entire heap: allocate local twins, then rewrite every
	// reference (objects, locals, statics) through the remap — after this
	// the process is fully local, no faulting needed.
	remap := make(map[value.Ref]value.Ref, len(heap))
	for i := range heap {
		o := heap[i].Materialize()
		o.Home = value.NullRef
		local, aerr := n.VM.Heap.Adopt(o)
		if aerr != nil {
			return nil, aerr
		}
		remap[heap[i].Ref] = local
	}
	translate := func(v value.Value) value.Value {
		if v.Kind == value.KindRef {
			if nr, ok := remap[v.R]; ok {
				return value.RefVal(nr)
			}
		}
		return v
	}
	for _, old := range heap {
		o := n.VM.Heap.MustGet(remap[old.Ref])
		for j := range o.Fields {
			o.Fields[j] = translate(o.Fields[j])
		}
		for j := range o.AR {
			o.AR[j] = translate(value.RefVal(o.AR[j])).R
		}
	}
	for fi := range cs.Frames {
		for j := range cs.Frames[fi].Locals {
			cs.Frames[fi].Locals[j] = translate(cs.Frames[fi].Locals[j])
		}
	}
	for si := range cs.Statics {
		for j := range cs.Statics[si].Values {
			cs.Statics[si].Values[j] = translate(cs.Statics[si].Values[j])
		}
	}

	// G-JavaMPI restores through the same debugger interface + injected
	// handlers as SODEE.
	th, rc, err := RestoreByBreakpoints(n, cs)
	if err != nil {
		return nil, err
	}
	dst := completion{node: homeNode, token: jobToken}
	expect := n.Prog.Methods[cs.Frames[0].MethodID].ReturnsValue
	go func() {
		th.Run()
		m.routeResult(th, expect, dst, completion{})
	}()
	var restoreDur time.Duration
	select {
	case <-rc.done:
		restoreDur = rc.restoredAt.Sub(restoreStart)
	case <-time.After(10 * time.Second):
		return nil, fmt.Errorf("sodee: process restoration timed out")
	}

	w := wire.NewWriter(24)
	w.Fixed64(uint64(arrival.UnixNano()))
	w.Uvarint(uint64(restoreDur))
	return w.Bytes(), nil
}

// --- JESSICA2: in-VM thread migration ---

// MigrateThread performs JESSICA2-style thread migration: capture and
// restore are direct structure copies inside the VM (no tool-interface
// costs), the heap stays home behind the status-check DSM, and the
// destination eagerly allocates static arrays at class-load time.
func (m *Manager) MigrateThread(job *Job, dest int) (*MigrationMetrics, error) {
	th := job.Thread()
	n := m.node
	if th == nil {
		return nil, fmt.Errorf("sodee: job has no local thread")
	}
	t0 := time.Now()
	ack, err := th.RequestSuspend()
	if err != nil {
		return nil, err
	}
	<-ack
	if th.State() != vmThreadParked {
		return nil, fmt.Errorf("sodee: thread finished before suspension")
	}
	depth := th.Depth()
	cs, err := CaptureDirect(n.VM, th, depth, n.ID, true)
	if err != nil {
		_ = th.Resume()
		return nil, err
	}
	cs.AllocHints = staticAllocHints(n.VM, cs)
	captureDone := time.Now()

	job.mu.Lock()
	job.th = nil
	job.mu.Unlock()
	if err := th.Kill(); err != nil {
		return nil, err
	}

	w := wire.NewWriter(4096)
	w.Varint(int64(n.ID))
	w.Uvarint(job.ID)
	w.Blob(serial.EncodeCapturedState(cs, n.Prog, n.Codec))
	payload := w.Bytes()
	sendStart := time.Now()
	reply, err := n.EP.Call(dest, netsim.KindThreadMigrate, payload)
	if err != nil {
		return nil, err
	}
	arrival, restoreDur, rerr := decodeMigrateReply(reply)
	if rerr != nil {
		return nil, rerr
	}
	mm := MigrationMetrics{
		System:     n.System,
		Capture:    captureDone.Sub(t0),
		Transfer:   arrival.Sub(sendStart),
		Restore:    restoreDur,
		StateBytes: int64(len(payload)),
	}
	mm.Latency = mm.Capture + mm.Transfer + mm.Restore
	mm.Freeze = mm.Latency
	m.record(mm)
	m.observeWireLatency(dest, mm.Transfer)
	return &mm, nil
}

func (m *Manager) handleThreadMigrate(from int, payload []byte) ([]byte, error) {
	arrival := time.Now()
	n := m.node
	r := wire.NewReader(payload)
	homeNode := int(r.Varint())
	jobToken := r.Uvarint()
	csBuf := r.BlobView()
	if err := r.Err(); err != nil {
		return nil, err
	}
	cs, err := serial.DecodeCapturedState(csBuf, n.Prog, n.Codec)
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	m.classSource = homeNode
	m.mu.Unlock()

	restoreStart := time.Now()
	th, err := RestoreDirect(n, cs)
	if err != nil {
		return nil, err
	}
	restoreDur := time.Since(restoreStart)
	expect := n.Prog.Methods[cs.Frames[0].MethodID].ReturnsValue
	go m.runWorker(th, expect, completion{node: homeNode, token: jobToken}, completion{})

	w := wire.NewWriter(24)
	w.Fixed64(uint64(arrival.UnixNano()))
	w.Uvarint(uint64(restoreDur))
	return w.Bytes(), nil
}

// --- Xen: pre-copy live VM migration ---

// VMMigrateOptions tunes the pre-copy loop.
type VMMigrateOptions struct {
	Dest int
	// MaxRounds bounds the iterative pre-copy phase.
	MaxRounds int
	// StopFraction: freeze when the dirty set falls below this fraction of
	// the image.
	StopFraction float64
}

// MigrateVM performs live migration of the node's guest image: iterative
// pre-copy rounds transfer (re-)dirtied pages while the workload keeps
// running; the final stop-and-copy round freezes the guest briefly. The
// execution then "runs at" the destination (Location is updated), which
// is what changes data locality for the §IV.C experiment.
func (m *Manager) MigrateVM(job *Job, opts VMMigrateOptions) (*MigrationMetrics, error) {
	n := m.node
	if n.Image == nil {
		return nil, fmt.Errorf("sodee: node %d has no guest image (not a Xen node)", n.ID)
	}
	if opts.MaxRounds <= 0 {
		opts.MaxRounds = 5
	}
	if opts.StopFraction <= 0 {
		opts.StopFraction = 0.02
	}
	t0 := time.Now()
	mm := MigrationMetrics{System: n.System}

	// Iterative pre-copy: the guest (workload thread) keeps executing.
	for round := 0; round < opts.MaxRounds; round++ {
		pages := n.Image.DrainDirty()
		if pages == 0 {
			break
		}
		mm.Rounds++
		if err := m.sendPages(opts.Dest, pages); err != nil {
			return nil, err
		}
		if float64(n.Image.DirtyCount()) < opts.StopFraction*float64(n.Image.NumPages()) {
			break
		}
	}

	// Stop-and-copy: freeze the guest, transfer the remaining dirty set.
	freezeStart := time.Now()
	th := job.Thread()
	var resumeNeeded bool
	if th != nil && th.State() == vmThreadRunning {
		if ack, err := th.RequestSuspend(); err == nil {
			<-ack
			resumeNeeded = th.State() == vmThreadParked
		}
	}
	final := n.Image.DrainDirty()
	if err := m.sendPages(opts.Dest, final); err != nil {
		return nil, err
	}
	n.SetLocation(opts.Dest) // handover: the guest now runs "at" dest
	if resumeNeeded {
		_ = th.Resume()
	}
	mm.Freeze = time.Since(freezeStart)
	mm.Latency = time.Since(t0)
	mm.Capture = mm.Latency - mm.Freeze // pre-copy phase
	mm.Transfer = mm.Latency
	mm.Restore = 0
	mm.StateBytes = int64(final+1) * 4096
	mm.HeapBytes = n.Image.SizeBytes()
	m.record(mm)
	return &mm, nil
}

// sendPages transfers a batch of guest pages, paying real wire time.
func (m *Manager) sendPages(dest int, pages int) error {
	const batch = 256 // pages per message (1 MiB)
	buf := make([]byte, batch*4096)
	for pages > 0 {
		nb := pages
		if nb > batch {
			nb = batch
		}
		if _, err := m.node.EP.Call(dest, netsim.KindPage, buf[:nb*4096]); err != nil {
			return err
		}
		pages -= nb
	}
	return nil
}

func (m *Manager) handlePage(from int, payload []byte) ([]byte, error) {
	// The destination hypervisor just accepts the pages.
	return nil, nil
}
