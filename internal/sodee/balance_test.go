package sodee_test

import (
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/policy"
	"repro/internal/preprocess"
	"repro/internal/sodee"
	"repro/internal/value"
	"repro/internal/workloads"
)

// crunchExpected mirrors the shared cruncher workload in Go.
func crunchExpected(seed, iters int64) int64 {
	return workloads.CruncherExpected(seed, iters)
}

// cruncherCluster builds a preprocessed cruncher cluster from configs.
func cruncherCluster(t *testing.T, cfgs ...sodee.NodeConfig) *sodee.Cluster {
	t.Helper()
	prog := preprocess.MustPreprocess(workloads.Cruncher(),
		preprocess.Options{Mode: preprocess.ModeFaulting, Restore: true})
	c, err := sodee.NewCluster(prog, netsim.Gigabit, cfgs...)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

const crunchIters = 150_000

// waitAll waits for every job with a deadline, checking results.
func waitAll(t *testing.T, jobs []*sodee.Job, seeds []int64) {
	t.Helper()
	deadline := time.After(30 * time.Second)
	for i, j := range jobs {
		ch := make(chan struct{})
		go func() { j.Wait(); close(ch) }() //nolint:errcheck // re-read below
		select {
		case <-ch:
		case <-deadline:
			t.Fatalf("job %d wedged", i)
		}
		res, err := j.Wait()
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		if want := crunchExpected(seeds[i], crunchIters); res.I != want {
			t.Errorf("job %d: result %d, want %d", i, res.I, want)
		}
	}
}

// TestAutoBalanceSpillsBurst is the core elastic scenario: a burst of
// jobs on a one-core node spills onto idle peers under the threshold
// policy, and every job still computes the right answer.
func TestAutoBalanceSpillsBurst(t *testing.T) {
	// The home node is weak — one core, throttled CPU — so the burst
	// stacks up long enough for the balancer to observe and spill it.
	c := cruncherCluster(t,
		sodee.NodeConfig{ID: 1, Preloaded: true, Cores: 1, Slow: 16},
		sodee.NodeConfig{ID: 2, Preloaded: true, Cores: 1},
		sodee.NodeConfig{ID: 3, Preloaded: true, Cores: 1},
	)
	home := c.Nodes[1]

	b := c.AutoBalance(policy.Threshold{}, sodee.BalanceOptions{Interval: 500 * time.Microsecond})
	defer b.Stop()

	const njobs = 6
	jobs := make([]*sodee.Job, njobs)
	seeds := make([]int64, njobs)
	for i := range jobs {
		seeds[i] = int64(100 + i)
		j, err := home.Mgr.StartJob("main", value.Int(seeds[i]), value.Int(crunchIters))
		if err != nil {
			t.Fatal(err)
		}
		jobs[i] = j
	}
	waitAll(t, jobs, seeds)
	b.Stop()

	st := b.Stats()
	if st.Migrations == 0 {
		t.Fatalf("burst never spilled: %+v", st)
	}
	// Since multi-hop re-balancing, a job may legitimately *return* to
	// node 1 once the burst has drained it (the home node stops being
	// overloaded). But any such return is a re-balance of a migrated-in
	// job — a fresh push must never target the overloaded home.
	if st.MigrationsTo[1] > st.Rebalanced {
		t.Errorf("fresh pushes landed on the overloaded home node: %+v (rebalanced %d)",
			st.MigrationsTo, st.Rebalanced)
	}
	if st.MigrationsTo[2]+st.MigrationsTo[3] == 0 {
		t.Errorf("burst never spilled outward: %+v", st.MigrationsTo)
	}
	// Spilled segments must actually have executed remotely.
	remoteInstr := c.Nodes[2].VM.LiveInstructions() + c.Nodes[3].VM.LiveInstructions()
	if remoteInstr == 0 {
		t.Error("peers executed nothing despite migrations")
	}
}

// TestAutoBalanceLeavesLightLoadAlone: a single job on an idle cluster
// must never migrate under the threshold policy.
func TestAutoBalanceLeavesLightLoadAlone(t *testing.T) {
	c := cruncherCluster(t,
		sodee.NodeConfig{ID: 1, Preloaded: true, Cores: 1},
		sodee.NodeConfig{ID: 2, Preloaded: true, Cores: 1},
	)
	b := c.AutoBalance(policy.Threshold{}, sodee.BalanceOptions{Interval: 500 * time.Microsecond})
	defer b.Stop()

	j, err := c.Nodes[1].Mgr.StartJob("main", value.Int(5), value.Int(crunchIters))
	if err != nil {
		t.Fatal(err)
	}
	waitAll(t, []*sodee.Job{j}, []int64{5})
	b.Stop()
	if st := b.Stats(); st.Migrations != 0 {
		t.Errorf("a lone job migrated: %+v", st)
	}
}

// TestGossipUpdatesPeerView: a publish round lands this node's signals in
// every peer's view, with the signal fields intact.
func TestGossipUpdatesPeerView(t *testing.T) {
	c := cruncherCluster(t,
		sodee.NodeConfig{ID: 1, Preloaded: true, Cores: 2},
		sodee.NodeConfig{ID: 2, Preloaded: true},
	)
	sig, errs := c.Nodes[1].Mgr.PublishLoad()
	if len(errs) != 0 {
		t.Fatalf("publish errors: %v", errs)
	}
	if sig.Node != 1 || sig.Cores != 2 || sig.Speed != 1.0 {
		t.Fatalf("local signals malformed: %+v", sig)
	}
	// Gossip sends are asynchronous one-ways; poll briefly.
	deadline := time.Now().Add(2 * time.Second)
	for {
		peers := c.Nodes[2].Mgr.PeerSignals()
		if len(peers) == 1 && peers[0].Node == 1 && peers[0].Cores == 2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("peer view never updated: %+v", peers)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestWholeStackMigration: NFrames == WholeStack exports the full stack
// whatever its depth when the thread parks.
func TestWholeStackMigration(t *testing.T) {
	c, g := sodCluster(t, []int{1, 2}, true)
	home := c.Nodes[1]
	d := makeData(t, home)
	job, err := home.Mgr.StartJob("main", value.RefVal(d), value.Int(testIters))
	if err != nil {
		t.Fatal(err)
	}
	migrateWhileRunning(t, g, func() (*sodee.MigrationMetrics, error) {
		return home.Mgr.MigrateSOD(job, sodee.SODOptions{
			NFrames: sodee.WholeStack, Dest: 2, Flow: sodee.FlowReturnHome,
		})
	})
	res, err := job.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res.I != expectedResult(testIters) {
		t.Errorf("result = %d, want %d", res.I, expectedResult(testIters))
	}
	if th := job.Thread(); th != nil {
		t.Error("whole-stack export should leave no home thread")
	}
}

// TestRoundRobinBalancerSpreads: the baseline policy scatters a burst
// over all peers without consulting load.
func TestRoundRobinBalancerSpreads(t *testing.T) {
	c := cruncherCluster(t,
		sodee.NodeConfig{ID: 1, Preloaded: true, Cores: 1, Slow: 16},
		sodee.NodeConfig{ID: 2, Preloaded: true},
		sodee.NodeConfig{ID: 3, Preloaded: true},
	)
	b := c.AutoBalance(&policy.RoundRobin{}, sodee.BalanceOptions{Interval: 200 * time.Microsecond})
	defer b.Stop()

	const njobs = 4
	jobs := make([]*sodee.Job, njobs)
	seeds := make([]int64, njobs)
	for i := range jobs {
		seeds[i] = int64(i + 1)
		j, err := c.Nodes[1].Mgr.StartJob("main", value.Int(seeds[i]), value.Int(crunchIters))
		if err != nil {
			t.Fatal(err)
		}
		jobs[i] = j
	}
	waitAll(t, jobs, seeds)
	b.Stop()
	if st := b.Stats(); st.Migrations == 0 {
		t.Errorf("round-robin never migrated: %+v", st)
	}
}
