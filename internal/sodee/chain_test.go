package sodee_test

import (
	"errors"
	"strconv"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/policy"
	"repro/internal/preprocess"
	"repro/internal/sodee"
	"repro/internal/value"
	"repro/internal/workloads"
)

// Tests for the chain executor: policy-driven multi-segment FlowForward
// pipelines, their event stream, and their failure degradations. The
// workflow workload (main → stage1 → stage2) is the canonical chain prey;
// its Go mirror keeps every assertion exact.

// newWorkflowCluster builds an n-node simulated cluster running the
// workflow program (with the chaos marker bound on every node).
func newWorkflowCluster(t *testing.T, marker *chaosMarker, configs ...sodee.NodeConfig) *sodee.Cluster {
	t.Helper()
	prog := preprocess.MustPreprocess(workloads.WorkflowWithMarker("chaos_done"),
		preprocess.Options{Mode: preprocess.ModeFaulting, Restore: true})
	c, err := sodee.NewCluster(prog, netsim.Gigabit, configs...)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range c.Nodes {
		n.VM.BindNative("chaos_done", marker.native)
	}
	return c
}

// twoLinkPlan plans [stage2]@d1 → [stage1, main]@d2 once the full
// three-frame stack is parked; shallower suspensions decline so the
// caller retries.
func twoLinkPlan(d1, d2, origin int) sodee.ChainPlanFunc {
	return func(frames []policy.FrameSignal) (policy.ChainPlan, error) {
		if len(frames) != 3 {
			return policy.ChainPlan{}, sodee.ErrChainNotPlanned
		}
		return policy.ChainPlan{Segments: []policy.ChainSegment{
			{Frames: 1, Dest: d1, ForwardTo: d2},
			{Frames: 2, Dest: d2, ForwardTo: origin},
		}}, nil
	}
}

// chainUntilPlanned retries MigrateChain while the thread has not yet
// reached the planned stack depth.
func chainUntilPlanned(t *testing.T, m *sodee.Manager, job *sodee.Job, plan sodee.ChainPlanFunc) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for {
		_, err := m.MigrateChain(job, plan, sodee.ReasonChained)
		if err == nil {
			return
		}
		if !errors.Is(err, sodee.ErrChainNotPlanned) {
			t.Fatalf("MigrateChain: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("stack never reached chainable depth")
		}
		time.Sleep(time.Millisecond)
	}
}

// drainEvents collects a job's full event stream (subscribed before the
// chain executes, so nothing is missed).
func drainEvents(t *testing.T, ch <-chan sodee.JobEvent) []sodee.JobEvent {
	t.Helper()
	var events []sodee.JobEvent
	deadline := time.After(60 * time.Second)
	for {
		select {
		case ev, ok := <-ch:
			if !ok {
				return events
			}
			events = append(events, ev)
			if ev.Terminal() {
				return events
			}
		case <-deadline:
			t.Fatalf("event stream never terminated; got %+v", events)
		}
	}
}

func kindCount(events []sodee.JobEvent, kind sodee.EventKind) int {
	n := 0
	for _, ev := range events {
		if ev.Kind == kind {
			n++
		}
	}
	return n
}

// TestMigrateChainThreeStagePipeline is the happy path: a three-frame
// workflow splits into [stage2]@2 → [stage1,main]@3, the result flushes
// to the origin, and the event stream narrates every link.
func TestMigrateChainThreeStagePipeline(t *testing.T) {
	marker := newChaosMarker()
	c := newWorkflowCluster(t, marker,
		sodee.NodeConfig{ID: 1, Preloaded: true},
		sodee.NodeConfig{ID: 2, Preloaded: true},
		sodee.NodeConfig{ID: 3, Preloaded: true})

	const seed, iters = 42, 600_000
	origin := c.Nodes[1]
	job, err := origin.Mgr.StartJob("main", value.Int(seed), value.Int(iters))
	if err != nil {
		t.Fatal(err)
	}
	ch, cancel := origin.Mgr.Events().Subscribe(job.ID)
	defer cancel()

	chainUntilPlanned(t, origin.Mgr, job, twoLinkPlan(2, 3, 1))

	res, err := job.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if want := workloads.WorkflowExpected(seed, iters); res.I != want {
		t.Errorf("result = %d, want %d", res.I, want)
	}
	if n := marker.count(seed); n != 1 {
		t.Errorf("terminal marker ran %d times, want exactly 1", n)
	}

	events := drainEvents(t, ch)
	var planted, forwarded *sodee.JobEvent
	for i := range events {
		switch events[i].Kind {
		case sodee.EvSegmentPlanted:
			planted = &events[i]
		case sodee.EvSegmentForwarded:
			forwarded = &events[i]
		}
	}
	if planted == nil || planted.To != 3 || planted.Seg != 1 || planted.SegOf != 2 {
		t.Errorf("segment-planted event wrong: %+v", planted)
	}
	if forwarded == nil || forwarded.From != 2 || forwarded.To != 3 {
		t.Errorf("segment-forwarded event wrong: %+v", forwarded)
	}
	sawChainMigrate := false
	for _, ev := range events {
		if ev.Kind == sodee.EvMigrated && ev.To == 2 && ev.Seg == 0 && ev.SegOf == 2 {
			sawChainMigrate = true
		}
	}
	if !sawChainMigrate {
		t.Errorf("no chain-position EvMigrated for the top segment: %+v", events)
	}
	if events[len(events)-1].Kind != sodee.EvCompleted {
		t.Errorf("stream did not end with completion: %+v", events)
	}
}

// TestChainLocalTailKeepsPinnedFramesHome: a plan whose tail names the
// origin leaves those frames parked in place; the forwarded value comes
// home and the job's own thread finishes the work (the photoshare shape,
// where the bottom frame holds the client socket).
func TestChainLocalTailKeepsPinnedFramesHome(t *testing.T) {
	marker := newChaosMarker()
	c := newWorkflowCluster(t, marker,
		sodee.NodeConfig{ID: 1, Preloaded: true},
		sodee.NodeConfig{ID: 2, Preloaded: true})

	const seed, iters = 7, 400_000
	origin := c.Nodes[1]
	job, err := origin.Mgr.StartJob("main", value.Int(seed), value.Int(iters))
	if err != nil {
		t.Fatal(err)
	}
	ch, cancel := origin.Mgr.Events().Subscribe(job.ID)
	defer cancel()

	chainUntilPlanned(t, origin.Mgr, job, func(frames []policy.FrameSignal) (policy.ChainPlan, error) {
		if len(frames) != 3 {
			return policy.ChainPlan{}, sodee.ErrChainNotPlanned
		}
		return policy.ChainPlan{Segments: []policy.ChainSegment{
			{Frames: 1, Dest: 2, ForwardTo: 1},
			{Frames: 2, Dest: 1, ForwardTo: 1}, // tail stays home
		}}, nil
	})

	res, err := job.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if want := workloads.WorkflowExpected(seed, iters); res.I != want {
		t.Errorf("result = %d, want %d", res.I, want)
	}
	if n := marker.count(seed); n != 1 {
		t.Errorf("terminal marker ran %d times, want exactly 1", n)
	}
	events := drainEvents(t, ch)
	tailForwarded := false
	for _, ev := range events {
		if ev.Kind == sodee.EvSegmentForwarded && ev.To == 1 && ev.From == 2 {
			tailForwarded = true
		}
	}
	if !tailForwarded {
		t.Errorf("no segment-forwarded back to the local tail: %+v", events)
	}
}

// TestChainPlantDegradesToLocal: the middle link's node is already dead
// at plant time — the link degrades to a local plant and the chain still
// completes exactly once.
func TestChainPlantDegradesToLocal(t *testing.T) {
	marker := newChaosMarker()
	c := newWorkflowCluster(t, marker,
		sodee.NodeConfig{ID: 1, Preloaded: true},
		sodee.NodeConfig{ID: 2, Preloaded: true},
		sodee.NodeConfig{ID: 3, Preloaded: true})
	c.Net.SetNodeDown(3, true) // the planned forward node is gone

	const seed, iters = 9, 400_000
	origin := c.Nodes[1]
	job, err := origin.Mgr.StartJob("main", value.Int(seed), value.Int(iters))
	if err != nil {
		t.Fatal(err)
	}
	ch, cancel := origin.Mgr.Events().Subscribe(job.ID)
	defer cancel()

	chainUntilPlanned(t, origin.Mgr, job, twoLinkPlan(2, 3, 1))

	res, err := job.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if want := workloads.WorkflowExpected(seed, iters); res.I != want {
		t.Errorf("result = %d, want %d", res.I, want)
	}
	if n := marker.count(seed); n != 1 {
		t.Errorf("terminal marker ran %d times, want exactly 1", n)
	}
	events := drainEvents(t, ch)
	degraded := false
	for _, ev := range events {
		if ev.Kind == sodee.EvSegmentPlanted && ev.To == 1 && ev.Seg == 1 {
			degraded = true
		}
	}
	if !degraded {
		t.Errorf("no degraded-to-local plant event: %+v", events)
	}
}

// TestChainPlannerDrivenBalancer: the full policy path — a chained job
// submitted to a loaded weak node, the balancer's planner splitting it
// across two idle strong peers with no manual placement anywhere.
func TestChainPlannerDrivenBalancer(t *testing.T) {
	marker := newChaosMarker()
	c := newWorkflowCluster(t, marker,
		sodee.NodeConfig{ID: 1, Preloaded: true, Cores: 1, Slow: 16},
		sodee.NodeConfig{ID: 2, Preloaded: true},
		sodee.NodeConfig{ID: 3, Preloaded: true})

	b := c.AutoBalance(policy.Never{}, sodee.BalanceOptions{
		Interval: time.Millisecond,
		Chain:    true,
	})
	defer b.Stop()

	const seed, iters = 21, 400_000
	origin := c.Nodes[1]
	job, err := origin.Mgr.StartJobChained("main", value.Int(seed), value.Int(iters))
	if err != nil {
		t.Fatal(err)
	}
	ch, cancel := origin.Mgr.Events().Subscribe(job.ID)
	defer cancel()

	res, err := job.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if want := workloads.WorkflowExpected(seed, iters); res.I != want {
		t.Errorf("result = %d, want %d", res.I, want)
	}
	if n := marker.count(seed); n != 1 {
		t.Errorf("terminal marker ran %d times, want exactly 1", n)
	}

	events := drainEvents(t, ch)
	st := b.Stats()
	if st.Chained < 1 {
		t.Errorf("balancer chained %d jobs, want >= 1 (events: %+v)", st.Chained, events)
	}
	if st.Migrations != st.Pushed+st.Stolen+st.Rebalanced+st.Chained {
		t.Errorf("direction split %d+%d+%d+%d does not sum to %d migrations",
			st.Pushed, st.Stolen, st.Rebalanced, st.Chained, st.Migrations)
	}
	if kindCount(events, sodee.EvSegmentPlanted) < 1 {
		t.Errorf("no segment-planted events in planner-driven chain: %+v", events)
	}
	chained := false
	for _, ev := range events {
		if ev.Kind == sodee.EvMigrated && ev.Reason == sodee.ReasonChained {
			chained = true
		}
	}
	if !chained {
		t.Errorf("no chained-reason migration event: %+v", events)
	}
}

// TestWaitingTailRefusesManualMigration: a chain's parked local tail is
// owned by its resume route; a manual MigrateSOD on the job must refuse
// to capture it (shipping those frames would orphan the route and
// resume a killed thread when the value arrives).
func TestWaitingTailRefusesManualMigration(t *testing.T) {
	marker := newChaosMarker()
	c := newWorkflowCluster(t, marker,
		sodee.NodeConfig{ID: 1, Preloaded: true},
		sodee.NodeConfig{ID: 2, Preloaded: true})

	const seed, iters = 13, 900_000
	origin := c.Nodes[1]
	job, err := origin.Mgr.StartJob("main", value.Int(seed), value.Int(iters))
	if err != nil {
		t.Fatal(err)
	}
	chainUntilPlanned(t, origin.Mgr, job, func(frames []policy.FrameSignal) (policy.ChainPlan, error) {
		if len(frames) != 3 {
			return policy.ChainPlan{}, sodee.ErrChainNotPlanned
		}
		return policy.ChainPlan{Segments: []policy.ChainSegment{
			{Frames: 1, Dest: 2, ForwardTo: 1},
			{Frames: 2, Dest: 1, ForwardTo: 1},
		}}, nil
	})
	// The tail [stage1, main] is parked locally, waiting. While the top
	// segment is still crunching on node 2, a manual whole-stack push of
	// the job must be refused, not capture the parked tail.
	if _, merr := origin.Mgr.MigrateSOD(job, sodee.SODOptions{
		NFrames: sodee.WholeStack, Dest: 2,
	}); merr == nil {
		t.Fatal("manual migration captured a waiting chain tail")
	}
	res, err := job.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if want := workloads.WorkflowExpected(seed, iters); res.I != want {
		t.Errorf("result = %d, want %d", res.I, want)
	}
	if n := marker.count(seed); n != 1 {
		t.Errorf("terminal marker ran %d times, want exactly 1", n)
	}
}

// TestChainedOwnershipSurvivesMigration: a chain-owned job whole-stack
// migrated before its planner fires (a steal, or a manual push) stays
// planner-owned at its new host — SubmitChain semantics travel with the
// stack.
func TestChainedOwnershipSurvivesMigration(t *testing.T) {
	marker := newChaosMarker()
	c := newWorkflowCluster(t, marker,
		sodee.NodeConfig{ID: 1, Preloaded: true},
		sodee.NodeConfig{ID: 2, Preloaded: true})

	const seed, iters = 17, 900_000
	origin := c.Nodes[1]
	job, err := origin.Mgr.StartJobChained("main", value.Int(seed), value.Int(iters))
	if err != nil {
		t.Fatal(err)
	}
	if !job.Chained() {
		t.Fatal("StartJobChained did not mark the job")
	}
	if _, err := origin.Mgr.MigrateSOD(job, sodee.SODOptions{
		NFrames: sodee.WholeStack, Dest: 2,
	}); err != nil {
		t.Fatal(err)
	}
	// The wrapper hosting the stack on node 2 must still be chain-owned.
	deadline := time.Now().Add(10 * time.Second)
	for {
		var wrapper *sodee.Job
		for _, j := range c.Nodes[2].Mgr.RunningJobs() {
			if j.Remote() {
				wrapper = j
			}
		}
		if wrapper != nil {
			if !wrapper.Chained() {
				t.Fatal("chained mark lost in whole-stack migration")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("migrated wrapper never appeared on node 2")
		}
		time.Sleep(time.Millisecond)
	}
	res, err := job.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if want := workloads.WorkflowExpected(seed, iters); res.I != want {
		t.Errorf("result = %d, want %d", res.I, want)
	}
}

// TestChainChaosMidChainCrash is the chain chaos scenario (`make chaos`
// runs it under -race across the seed matrix): the mid-chain node is
// killed *between* plant and forward — the planted link dies holding its
// frames while the top segment is still executing elsewhere. The chain's
// recovery route must rebuild the link at the origin, complete the job
// with the right answer, run the terminal statement exactly once, and
// flush the result at the origin — the crash degrades the chain, it
// never wedges or doubles it.
func TestChainChaosMidChainCrash(t *testing.T) {
	for _, seed := range chaosSeeds(t) {
		seed := seed
		t.Run("seed"+strconv.FormatInt(seed, 10), func(t *testing.T) {
			marker := newChaosMarker()
			c := newWorkflowCluster(t, marker,
				sodee.NodeConfig{ID: 1, Preloaded: true},
				sodee.NodeConfig{ID: 2, Preloaded: true},
				sodee.NodeConfig{ID: 3, Preloaded: true})

			jobSeed := seed*100_000 + 1
			const iters = 900_000 // stage2 grinds long enough to out-live the kill
			origin := c.Nodes[1]
			job, err := origin.Mgr.StartJob("main", value.Int(jobSeed), value.Int(iters))
			if err != nil {
				t.Fatal(err)
			}
			ch, cancel := origin.Mgr.Events().Subscribe(job.ID)
			defer cancel()

			// Plant [stage1,main] on node 3, ship [stage2] to node 2...
			chainUntilPlanned(t, origin.Mgr, job, twoLinkPlan(2, 3, 1))
			// ...and kill node 3 while stage2 is still crunching on node 2:
			// after the plant, before the forward. It stays dead — only the
			// recovery path can finish the job.
			c.Net.SetNodeDown(3, true)

			res, err := job.Wait()
			if err != nil {
				t.Fatalf("job lost to mid-chain crash: %v", err)
			}
			if want := workloads.WorkflowExpected(jobSeed, iters); res.I != want {
				t.Errorf("result = %d, want %d", res.I, want)
			}
			// Exactly once, wherever the final frame ended up running.
			if n := marker.count(jobSeed); n != 1 {
				t.Errorf("terminal marker ran %d times, want exactly 1", n)
			}

			events := drainEvents(t, ch)
			recovered := false
			for _, ev := range events {
				if ev.Kind == sodee.EvSegmentForwarded && ev.To == 1 {
					recovered = true // the link rebuilt at the origin
				}
			}
			if !recovered {
				t.Errorf("crashed link never recovered at the origin: %+v", events)
			}
			// The result landed at the origin: the terminal event fires on
			// node 1 with the right answer (the recovered link delivered
			// locally — no wire flush, but the flush-home guarantee holds).
			last := events[len(events)-1]
			if last.Kind != sodee.EvCompleted || last.To != 1 || last.Result != res.I || last.Err != "" {
				t.Errorf("terminal event wrong: %+v", last)
			}
		})
	}
}
