// Package sodee is the SOD Execution Engine: the distributed runtime of
// §III that ties the SVM, the tool interface, the class preprocessor, the
// object manager and the network into migration-capable nodes. It
// implements the paper's SOD migration manager plus the three comparison
// systems — G-JavaMPI-style eager process migration, JESSICA2-style in-VM
// thread migration, and Xen-style pre-copy live migration — behind one
// Node abstraction so the evaluation harness can swap systems per run.
package sodee

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bytecode"
	"repro/internal/membership"
	"repro/internal/netsim"
	"repro/internal/objman"
	"repro/internal/obs"
	"repro/internal/osimage"
	"repro/internal/serial"
	"repro/internal/toolif"
	"repro/internal/value"
	"repro/internal/vm"
)

// System identifies which runtime substrate a node models.
type System int

const (
	// SysSODEE: the paper's system — JVMTI agent, object faulting,
	// breakpoint-driven restoration, fast codec. The zero value, so node
	// configurations default to it.
	SysSODEE System = iota
	// SysJDK: plain reference JVM; no agent, no migration support.
	SysJDK
	// SysGJavaMPI: eager-copy process migration over the debugger
	// interface with Java serialization.
	SysGJavaMPI
	// SysJessica2: in-VM thread migration; direct capture/restore, slower
	// engine (old Kaffe JIT), status-check DSM, eager static allocation.
	SysJessica2
	// SysXen: OS live migration with iterative pre-copy; virtualization
	// overhead on execution.
	SysXen
	// SysDevice: SODEE on a JamVM-class handset (§IV.D) — no tool
	// interface (direct restore at "Java level"), Java serialization,
	// slow CPU.
	SysDevice
)

func (s System) String() string {
	switch s {
	case SysJDK:
		return "JDK"
	case SysSODEE:
		return "SODEE"
	case SysGJavaMPI:
		return "G-JavaMPI"
	case SysJessica2:
		return "JESSICA2"
	case SysXen:
		return "Xen"
	case SysDevice:
		return "Device"
	}
	return "unknown"
}

// Tunables for the execution-profile hooks. Values are chosen so the
// relative slowdowns land in the paper's observed ranges (JESSICA2 ~4-20×
// JDK depending on workload; Xen ~1.5-2×; the iPhone's 412 MHz ARM ~15×).
const (
	jessicaSpinPerInstr = 14
	xenSpinPerExit      = 12000
	xenInstrPerExit     = 4096
	deviceSpinPerInstr  = 40
)

// hookSink defeats dead-code elimination; atomic because execution-profile
// hooks run on every interpreter thread concurrently.
var hookSink atomic.Uint64

func hookSpin(n int) {
	s := hookSink.Load()
	for i := 0; i < n; i++ {
		s = s*6364136223846793005 + 1442695040888963407
	}
	hookSink.Store(s)
}

func profileFor(sys System) vm.Profile {
	switch sys {
	case SysSODEE, SysGJavaMPI:
		return vm.Profile{Name: sys.String(), AgentLoaded: true}
	case SysJessica2:
		return vm.Profile{
			Name:        "jessica2",
			AgentLoaded: true, // in-VM support; suspension uses the same safepoints
			InstrHook: func(t *vm.Thread, f *vm.Frame, ins bytecode.Instr) *vm.Raised {
				hookSpin(jessicaSpinPerInstr)
				return nil
			},
		}
	case SysXen:
		var ctr int
		return vm.Profile{
			Name:        "xen",
			AgentLoaded: true, // the hypervisor can always pause the guest
			InstrHook: func(t *vm.Thread, f *vm.Frame, ins bytecode.Instr) *vm.Raised {
				ctr++
				if ctr >= xenInstrPerExit {
					ctr = 0
					hookSpin(xenSpinPerExit)
				}
				return nil
			},
		}
	case SysDevice:
		return vm.Profile{
			Name:        "device",
			AgentLoaded: true,
			InstrHook: func(t *vm.Thread, f *vm.Frame, ins bytecode.Instr) *vm.Raised {
				hookSpin(deviceSpinPerInstr)
				return nil
			},
		}
	default:
		return vm.Profile{Name: "jdk"}
	}
}

// NodeConfig configures one node of a cluster.
type NodeConfig struct {
	ID     int
	System System
	// HeapLimit bounds the node's heap (0 = unlimited) — resource-poor
	// devices and the exception-driven offload scenario use it.
	HeapLimit int64
	// Preloaded controls whether all classes are resident at startup.
	// Destination workers start cold and fetch classes on demand.
	Preloaded bool
	// ImageBytes sizes the guest OS image (Xen nodes only).
	ImageBytes int64
	// Cores models the node's CPU width: at most Cores threads execute
	// bytecode at once, the rest queue (0 = unlimited). The elastic
	// experiments give the weak node one core so a job burst visibly
	// stacks up.
	Cores int
	// Slow throttles the node's per-instruction speed with a busy-wait of
	// this many spin iterations (0 = full speed) — a weak-device CPU knob
	// orthogonal to System, so a slow node can still run the full SODEE
	// migration stack (unlike SysDevice, which models a JVMTI-less
	// handset).
	Slow int
	// Membership tunes the node's failure detector (zero = defaults).
	Membership membership.Options
}

// Node is one machine of the cluster. EP is the node's attachment to
// whatever fabric the cluster runs over — the simulated network or real
// TCP sockets; everything above speaks the Transport interface only.
type Node struct {
	ID     int
	System System
	Prog   *bytecode.Program
	VM     *vm.VM
	Agent  *toolif.Agent
	EP     netsim.Transport
	ObjMan *objman.Manager
	Codec  serial.Codec
	Image  *osimage.Image

	// Members is the node's liveness view of its peers: heartbeats
	// piggybacked on load gossip keep peers Alive, silence and send
	// failures escalate them to Suspect then Dead. The balancer feeds
	// these verdicts into the failure-aware scheduler.
	Members *membership.Tracker

	// Obs is the node's metrics registry; Trace collects span timelines
	// for jobs whose origin is this node. Both are always on — the hot
	// paths pay striped atomic adds only.
	Obs   *obs.Registry
	Trace *obs.TraceStore

	// Cores and Speed echo the capacity configuration for load signals:
	// Cores is the modeled CPU width (0 = unlimited), Speed the relative
	// per-core execution speed (1.0 = full speed; throttled nodes less).
	Cores int
	Speed float64

	// location is the node this node's execution "is at" — it differs from
	// ID only after a whole-VM (Xen) migration relocates the guest. NFS
	// locality decisions consult it.
	mu       sync.Mutex
	location int

	// Cluster back-pointer (set by AddNode) for peer metadata lookups.
	Cluster *Cluster

	Mgr *Manager
}

// Location returns where this node's execution currently runs (== ID
// except after a live VM migration).
func (n *Node) Location() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.location
}

// SetLocation relocates the node's execution (Xen handover).
func (n *Node) SetLocation(loc int) {
	n.mu.Lock()
	n.location = loc
	n.mu.Unlock()
}

// Cluster is a set of nodes sharing one program and one fabric. Net is
// the simulated network when the cluster was built with NewCluster; a
// transport cluster (real TCP daemons, one local node per process)
// leaves it nil, and everything in the runtime must go through each
// node's Transport instead.
type Cluster struct {
	Net   *netsim.Network
	Prog  *bytecode.Program
	Nodes map[int]*Node
}

// NewCluster builds a cluster of nodes running prog (already preprocessed
// as appropriate for the systems under test) over a simulated fabric.
func NewCluster(prog *bytecode.Program, link netsim.LinkSpec, configs ...NodeConfig) (*Cluster, error) {
	c := &Cluster{
		Net:   netsim.NewNetwork(link),
		Prog:  prog,
		Nodes: make(map[int]*Node, len(configs)),
	}
	for _, cfg := range configs {
		n, err := c.AddNode(cfg)
		if err != nil {
			return nil, err
		}
		c.Nodes[cfg.ID] = n
	}
	return c, nil
}

// NewTransportCluster builds a cluster shell with no simulated fabric;
// nodes are attached to explicit transports with AddNodeOn. This is the
// construction the TCP daemons use: each process holds one local node,
// and the peer set lives in the node's membership tracker rather than in
// Nodes.
func NewTransportCluster(prog *bytecode.Program) *Cluster {
	return &Cluster{Prog: prog, Nodes: make(map[int]*Node)}
}

// AddNode creates one node attached to the cluster's simulated fabric.
func (c *Cluster) AddNode(cfg NodeConfig) (*Node, error) {
	if c.Net == nil {
		return nil, fmt.Errorf("sodee: cluster has no simulated fabric; use AddNodeOn")
	}
	n, err := c.AddNodeOn(cfg, c.Net.Node(cfg.ID))
	if err != nil {
		return nil, err
	}
	// In-process clusters know the full roster up front: register every
	// pair in each other's membership view.
	now := time.Now()
	for id, o := range c.Nodes {
		if id == n.ID {
			continue
		}
		o.Members.Join(n.ID, now)
		n.Members.Join(id, now)
	}
	return n, nil
}

// AddNodeOn creates and wires one node speaking tr.
func (c *Cluster) AddNodeOn(cfg NodeConfig, tr netsim.Transport) (*Node, error) {
	if _, dup := c.Nodes[cfg.ID]; dup {
		return nil, fmt.Errorf("sodee: duplicate node id %d", cfg.ID)
	}
	if tr.NodeID() != cfg.ID {
		return nil, fmt.Errorf("sodee: node id %d does not match transport id %d", cfg.ID, tr.NodeID())
	}
	v := vm.New(c.Prog, cfg.ID, cfg.Preloaded)
	v.Profile = profileFor(cfg.System)
	if cfg.HeapLimit > 0 {
		v.Heap.SetLimit(cfg.HeapLimit)
	}
	if cfg.Cores > 0 {
		v.CPU = vm.NewCPUGate(cfg.Cores)
	}
	speed := 1.0
	if cfg.Slow > 0 {
		// Chain the throttle under any profile hook. The speed hint is a
		// rough conversion of spin iterations to instruction-cost
		// multiples; policies use it ordinally, not quantitatively.
		base := v.Profile.InstrHook
		slow := cfg.Slow
		v.Profile.InstrHook = func(t *vm.Thread, f *vm.Frame, ins bytecode.Instr) *vm.Raised {
			hookSpin(slow)
			if base != nil {
				return base(t, f, ins)
			}
			return nil
		}
		speed = 1 / (1 + float64(slow)/6)
	}
	ep := tr
	codec := serial.Fast
	switch cfg.System {
	case SysGJavaMPI, SysDevice:
		codec = serial.JavaSer
	}
	n := &Node{
		ID:       cfg.ID,
		System:   cfg.System,
		Prog:     c.Prog,
		VM:       v,
		EP:       ep,
		Codec:    codec,
		Cores:    cfg.Cores,
		Speed:    speed,
		location: cfg.ID,
		Cluster:  c,
		Members:  membership.New(cfg.ID, cfg.Membership),
		Obs:      obs.NewRegistry(),
		Trace:    obs.NewTraceStore(),
	}
	n.Members.OnChange(func(ev membership.Event) {
		n.Obs.Counter(obs.Label("sod_member_transitions_total", "state", ev.State.String())).Inc()
	})
	if cfg.System != SysJDK && cfg.System != SysDevice {
		n.Agent = toolif.Attach(v)
	}
	if cfg.System == SysDevice {
		// JamVM has no JVMTI; suspension still works (the retrofitted pure-
		// Java migration manager of §IV.D), but capture/restore bypass the
		// tool interface.
		v.Profile.AgentLoaded = true
	}
	if cfg.System == SysXen {
		size := cfg.ImageBytes
		if size == 0 {
			size = 64 << 20
		}
		n.Image = osimage.New(size)
		img := n.Image
		v.Heap.WriteHook = func(ref value.Ref, o *vm.Object) {
			img.Touch(ref, o.ByteSize())
		}
	}
	n.ObjMan = objman.New(v, c.Prog, ep, codec)
	n.ObjMan.BindNatives(v)
	bindRestoreNatives(v)
	n.Mgr = newManager(n)

	// Class-shipping hook: cold classes are fetched from the job's home
	// node (recorded per-node when a migration arrives).
	v.LoadHook = n.Mgr.classLoadHook

	c.Nodes[cfg.ID] = n
	return n, nil
}

// Reset clears per-job node state (caches, heap) so a cluster can be
// reused across benchmark iterations.
func (n *Node) Reset() {
	n.ObjMan.ResetCache()
	n.Mgr.reset()
}
