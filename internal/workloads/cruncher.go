package workloads

import (
	"repro/internal/asm"
	"repro/internal/bytecode"
)

// Cruncher is the elastic-offload workload: main(seed, iters) →
// crunch(seed, iters) folding a masked linear recurrence. Pure CPU, no
// shared objects, two frames deep — jobs can run concurrently on one
// node and migrate whole at any safe point. The balancer tests and the
// elastic experiment share this single definition so the program and its
// Go mirror cannot drift apart.
func Cruncher() *bytecode.Program {
	return cruncherProgram("")
}

// CruncherWithMarker is Cruncher with a terminal probe: crunch's last
// statement before returning calls the named native (declared with one
// argument, the seed) exactly once per execution. The chaos harness uses
// it as an exactly-once marker — a lost flush completes it zero times, a
// double-executed segment twice. CruncherExpected is still the mirror.
func CruncherWithMarker(native string) *bytecode.Program {
	return cruncherProgram(native)
}

func cruncherProgram(marker string) *bytecode.Program {
	pb := asm.NewProgram()
	if marker != "" {
		pb.Native(marker, 1, false)
	}
	cr := pb.Func("crunch", true, "seed", "iters")
	cr.Line().Load("seed").Store("acc")
	cr.Line().Int(0).Store("i")
	cr.Label("loop")
	cr.Line().Load("i").Load("iters").Ge().Jnz("done")
	cr.Line().Load("acc").Int(31).Mul().Load("i").Add().Int(0xFFFF).And().Store("acc")
	cr.Line().Load("i").Int(1).Add().Store("i")
	cr.Line().Jmp("loop")
	cr.Label("done")
	if marker != "" {
		cr.Line().Load("seed").CallNat(marker, 1)
	}
	cr.Line().Load("acc").RetV()
	mn := pb.Func("main", true, "seed", "iters")
	mn.Line().Load("seed").Load("iters").Call("crunch", 2).Int(7).Add().RetV()
	return pb.MustBuild()
}

// CruncherExpected mirrors Cruncher's main in Go.
func CruncherExpected(seed, iters int64) int64 {
	acc := seed
	for i := int64(0); i < iters; i++ {
		acc = (acc*31 + i) & 0xFFFF
	}
	return acc + 7
}
