package workloads

import (
	"bytes"
	"strings"
	"time"

	"repro/internal/asm"
	"repro/internal/bytecode"
	"repro/internal/nfs"
	"repro/internal/value"
	"repro/internal/vm"
)

// TextSearch builds the full-text document search application of §IV.C:
// read a file in chunks (local or over NFS depending on where the
// execution currently runs), scan each chunk for a needle string, return
// the absolute offset of the first hit or -1.
//
//	searchFile(name, needle) — one file;
//	searchMain(names, needle) — a corpus (ref array of file-name strings),
//	  returns the count of files containing the needle.
//
// The §IV.C roaming experiment migrates the searchFile frame to each
// file's hosting node in turn.
func TextSearch() *Workload {
	pb := asm.NewProgram()
	declareCommon(pb)
	pb.Native("nfs_size", 1, true)
	pb.Native("nfs_read", 3, true) // (name, off, buf) -> bytes read
	pb.Native("str_find", 3, true) // (buf, len, needle) -> idx | -1

	sf := pb.Func("searchFile", true, "name", "needle")
	sf.Line().CallNat(CheckpointNative, 0)
	sf.Line().Int(nfs.ChunkSize).NewArr(bytecode.ArrKindByte).Store("buf")
	sf.Line().Int(0).Store("off")
	sf.Label("loop")
	sf.Line().Load("name").Load("off").Load("buf").CallNat("nfs_read", 3).Store("n")
	sf.Line().Load("n").Int(0).Le().Jnz("notfound")
	sf.Line().Load("buf").Load("n").Load("needle").CallNat("str_find", 3).Store("idx")
	sf.Line().Load("idx").Int(0).Ge().Jnz("found")
	sf.Line().Load("off").Load("n").Add().Store("off")
	sf.Line().Jmp("loop")
	sf.Label("found")
	sf.Line().Load("off").Load("idx").Add().RetV()
	sf.Label("notfound")
	sf.Line().Int(-1).RetV()

	mn := pb.Func("searchMain", true, "names", "needle")
	mn.Line().Int(0).Store("hits")
	mn.Line().Int(0).Store("i")
	mn.Label("loop")
	mn.Line().Load("i").Load("names").ArrLen().Ge().Jnz("done")
	mn.Line().Load("names").Load("i").ALoad().Load("needle").Call("searchFile", 2).Store("r")
	mn.Line().Load("r").Int(0).Lt().Jnz("miss")
	mn.Line().Load("hits").Int(1).Add().Store("hits")
	mn.Label("miss")
	mn.Line().Load("i").Int(1).Add().Store("i")
	mn.Line().Jmp("loop")
	mn.Label("done")
	mn.Line().Load("hits").RetV()

	return &Workload{
		Name:          "TextSearch",
		Descr:         "Full-text document search over NFS-hosted files",
		Prog:          pb.MustBuild(),
		Entry:         "searchMain",
		MigrateFrames: 1,
	}
}

// SearchEnv binds the search natives against an NFS server, resolving the
// reader's position through location() so live VM migration relocates I/O
// (the Xen row of Table VI).
type SearchEnv struct {
	FS       *nfs.Server
	Location func() int
	// ChunkPenalty adds a fixed per-chunk CPU cost to every read —
	// modelling the I/O-library bottleneck the paper suspects in JESSICA2
	// ("even if the file data are available locally, it does not help
	// speed up the file reading", §IV.C).
	ChunkPenalty time.Duration
}

// Bind installs the search natives on v.
func (e *SearchEnv) Bind(v *vm.VM) {
	v.BindNativeIfDeclared("nfs_size", func(t *vm.Thread, a []value.Value) (value.Value, *vm.Raised) {
		name, ok := v.GoString(a[0].R)
		if !ok {
			return value.Value{}, v.FaultOrNPE(a[0])
		}
		f, ok := e.FS.Lookup(name)
		if !ok {
			return value.Value{}, &vm.Raised{ExClass: bytecode.ExIllegalState, Message: "no such file " + name}
		}
		return value.Int(f.Size), nil
	})
	v.BindNativeIfDeclared("nfs_read", func(t *vm.Thread, a []value.Value) (value.Value, *vm.Raised) {
		name, ok := v.GoString(a[0].R)
		if !ok {
			return value.Value{}, v.FaultOrNPE(a[0])
		}
		buf := v.Heap.Get(a[2].R)
		if buf == nil || buf.AKind != bytecode.ArrKindByte {
			return value.Value{}, v.FaultOrNPE(a[2])
		}
		n, err := e.FS.Read(e.Location(), name, a[1].AsInt(), buf.AB)
		if err != nil {
			return value.Value{}, &vm.Raised{ExClass: bytecode.ExIllegalState, Message: err.Error()}
		}
		if e.ChunkPenalty > 0 && n > 0 {
			time.Sleep(e.ChunkPenalty)
		}
		return value.Int(int64(n)), nil
	})
	v.BindNativeIfDeclared("str_find", func(t *vm.Thread, a []value.Value) (value.Value, *vm.Raised) {
		buf := v.Heap.Get(a[0].R)
		if buf == nil || buf.AKind != bytecode.ArrKindByte {
			return value.Value{}, v.FaultOrNPE(a[0])
		}
		needle, ok := v.GoString(a[2].R)
		if !ok {
			return value.Value{}, v.FaultOrNPE(a[2])
		}
		n := int(a[1].AsInt())
		if n > len(buf.AB) {
			n = len(buf.AB)
		}
		return value.Int(int64(bytes.Index(buf.AB[:n], []byte(needle)))), nil
	})
}

// MakeNameArray allocates a ref array of interned file-name strings.
func MakeNameArray(v *vm.VM, names []string) (value.Ref, error) {
	arr, err := v.Heap.AllocArray(v.BuiltinClass(bytecode.ClassObject), bytecode.ArrKindRef, len(names))
	if err != nil {
		return value.NullRef, err
	}
	o := v.Heap.MustGet(arr)
	for i, n := range names {
		o.AR[i] = v.Intern(n)
	}
	return arr, nil
}

// --- photo share (§IV.D) ---

// PhotoShare builds the photo-sharing web-server workload: the server
// searches a device-hosted directory for photos matching a keyword and
// fetches one photo's bytes. The listPhotos and fetchPhoto frames are the
// ones SOD pushes to the handset; serveRequest stays pinned at the server
// (it "holds the socket").
func PhotoShare() *Workload {
	pb := asm.NewProgram()
	declareCommon(pb)
	pb.Native("fs_count", 1, true) // (dir) -> number of photos in dir
	pb.Native("fs_name", 2, true)  // (dir, i) -> photo name string
	pb.Native("nfs_size", 1, true)
	pb.Native("nfs_read", 3, true)
	pb.Native("str_has", 2, true) // (s, keyword) -> 0/1
	pb.Native("http_reply", 1, false)

	app := pb.Class("PhotoApp", "")

	// listPhotos(dir, keyword) -> count of matches (migrated to device;
	// being a class method, its class file ships with the migration — the
	// t3 component of Table VII).
	lp := app.StaticMethod("listPhotos", true, "dir", "kw")
	lp.Line().CallNat(CheckpointNative, 0)
	lp.Line().Int(0).Store("hits")
	lp.Line().Int(0).Store("i")
	lp.Line().Load("dir").CallNat("fs_count", 1).Store("n")
	lp.Label("loop")
	lp.Line().Load("i").Load("n").Ge().Jnz("done")
	lp.Line().Load("dir").Load("i").CallNat("fs_name", 2).Store("name")
	lp.Line().Load("name").Load("kw").CallNat("str_has", 2).Jz("next")
	lp.Line().Load("hits").Int(1).Add().Store("hits")
	lp.Label("next")
	lp.Line().Load("i").Int(1).Add().Store("i")
	lp.Line().Jmp("loop")
	lp.Label("done")
	lp.Line().Load("hits").RetV()

	// fetchPhoto(name) -> total bytes read (migrated to device; the photo
	// data returns with the frame).
	fp := app.StaticMethod("fetchPhoto", true, "name")
	fp.Line().CallNat(CheckpointNative, 0)
	fp.Line().Load("name").CallNat("nfs_size", 1).Store("size")
	fp.Line().Int(nfs.ChunkSize).NewArr(bytecode.ArrKindByte).Store("buf")
	fp.Line().Int(0).Store("off")
	fp.Label("loop")
	fp.Line().Load("name").Load("off").Load("buf").CallNat("nfs_read", 3).Store("n")
	fp.Line().Load("n").Int(0).Le().Jnz("done")
	fp.Line().Load("off").Load("n").Add().Store("off")
	fp.Line().Jmp("loop")
	fp.Label("done")
	fp.Line().Load("off").RetV()

	// serveRequest(dir, keyword): the server loop body — pinned.
	sr := app.StaticMethod("serveRequest", true, "dir", "kw")
	sr.Pragma("pin")
	sr.Line().Load("dir").Load("kw").Call("PhotoApp.listPhotos", 2).Store("found")
	sr.Line().Load("found").CallNat("http_reply", 1)
	sr.Line().Load("found").RetV()

	return &Workload{
		Name:          "PhotoShare",
		Descr:         "Photo-sharing web server with device-hosted photos",
		Prog:          pb.MustBuild(),
		Entry:         "PhotoApp.serveRequest",
		MigrateFrames: 1,
	}
}

// PhotoEnv binds the photo natives: the photo "directory" is the set of
// NFS files whose names start with dir + "/".
type PhotoEnv struct {
	FS       *nfs.Server
	Location func() int
	Replies  []int64 // http_reply log
}

// Bind installs the photo natives on v.
func (e *PhotoEnv) Bind(v *vm.VM) {
	se := &SearchEnv{FS: e.FS, Location: e.Location}
	se.Bind(v)
	list := func(dir string) []string {
		var out []string
		for _, n := range e.FS.Files() {
			if strings.HasPrefix(n, dir+"/") {
				out = append(out, n)
			}
		}
		// Deterministic order.
		for i := 0; i < len(out); i++ {
			for j := i + 1; j < len(out); j++ {
				if out[j] < out[i] {
					out[i], out[j] = out[j], out[i]
				}
			}
		}
		return out
	}
	v.BindNativeIfDeclared("fs_count", func(t *vm.Thread, a []value.Value) (value.Value, *vm.Raised) {
		dir, ok := v.GoString(a[0].R)
		if !ok {
			return value.Value{}, v.FaultOrNPE(a[0])
		}
		return value.Int(int64(len(list(dir)))), nil
	})
	v.BindNativeIfDeclared("fs_name", func(t *vm.Thread, a []value.Value) (value.Value, *vm.Raised) {
		dir, ok := v.GoString(a[0].R)
		if !ok {
			return value.Value{}, v.FaultOrNPE(a[0])
		}
		names := list(dir)
		i := int(a[1].AsInt())
		if i < 0 || i >= len(names) {
			return value.Value{}, &vm.Raised{ExClass: bytecode.ExIndexOutOfBounds}
		}
		return value.RefVal(v.Intern(names[i])), nil
	})
	v.BindNativeIfDeclared("str_has", func(t *vm.Thread, a []value.Value) (value.Value, *vm.Raised) {
		s, ok1 := v.GoString(a[0].R)
		if !ok1 {
			return value.Value{}, v.FaultOrNPE(a[0])
		}
		kw, ok2 := v.GoString(a[1].R)
		if !ok2 {
			return value.Value{}, v.FaultOrNPE(a[1])
		}
		return value.Bool(strings.Contains(s, kw)), nil
	})
	v.BindNativeIfDeclared("http_reply", func(t *vm.Thread, a []value.Value) (value.Value, *vm.Raised) {
		e.Replies = append(e.Replies, a[0].AsInt())
		return value.Value{}, nil
	})
}

// --- Table V microbenchmark ---

// FieldBench builds the field-access microbenchmark: four loops measuring
// instance-field read/write and static-field read/write, each returning a
// checksum so the work cannot be elided.
func FieldBench() *Workload {
	pb := asm.NewProgram()
	declareCommon(pb)
	c := pb.Class("Bench", "")
	c.Field("f", value.KindInt)
	c.Static("s", value.KindInt)

	fr := pb.Func("fieldRead", true, "obj", "iters")
	fr.Line().Int(0).Store("acc")
	fr.Line().Int(0).Store("i")
	fr.Label("loop")
	fr.Line().Load("i").Load("iters").Ge().Jnz("done")
	fr.Line().Load("acc").Load("obj").GetF("Bench", "f").Add().Store("acc")
	fr.Line().Load("i").Int(1).Add().Store("i")
	fr.Line().Jmp("loop")
	fr.Label("done")
	fr.Line().Load("acc").RetV()

	fw := pb.Func("fieldWrite", true, "obj", "iters")
	fw.Line().Int(0).Store("i")
	fw.Label("loop")
	fw.Line().Load("i").Load("iters").Ge().Jnz("done")
	fw.Line().Load("obj").Load("i").PutF("Bench", "f")
	fw.Line().Load("i").Int(1).Add().Store("i")
	fw.Line().Jmp("loop")
	fw.Label("done")
	fw.Line().Load("obj").GetF("Bench", "f").RetV()

	sr := pb.Func("staticRead", true, "iters")
	sr.Line().Int(0).Store("acc")
	sr.Line().Int(0).Store("i")
	sr.Label("loop")
	sr.Line().Load("i").Load("iters").Ge().Jnz("done")
	sr.Line().Load("acc").GetS("Bench", "s").Add().Store("acc")
	sr.Line().Load("i").Int(1).Add().Store("i")
	sr.Line().Jmp("loop")
	sr.Label("done")
	sr.Line().Load("acc").RetV()

	sw := pb.Func("staticWrite", true, "iters")
	sw.Line().Int(0).Store("i")
	sw.Label("loop")
	sw.Line().Load("i").Load("iters").Ge().Jnz("done")
	sw.Line().Load("i").PutS("Bench", "s")
	sw.Line().Load("i").Int(1).Add().Store("i")
	sw.Line().Jmp("loop")
	sw.Label("done")
	sw.Line().GetS("Bench", "s").RetV()

	return &Workload{
		Name:  "FieldBench",
		Descr: "Field/static access microbenchmark (Table V)",
		Prog:  pb.MustBuild(),
		Entry: "fieldRead",
	}
}
