package workloads_test

import (
	"testing"

	"repro/internal/netsim"
	"repro/internal/nfs"
	"repro/internal/preprocess"
	"repro/internal/value"
	"repro/internal/vm"
	"repro/internal/workloads"
)

// run executes a workload locally (no migration) under a given preprocess
// mode and returns the result.
func run(t *testing.T, w *workloads.Workload, mode preprocess.Mode, args ...value.Value) value.Value {
	t.Helper()
	prog := w.Prog
	if mode != preprocess.Mode(-1) {
		prog = preprocess.MustPreprocess(prog, preprocess.Options{Mode: mode, Restore: true})
	}
	v := vm.New(prog, 1, true)
	workloads.BindCommon(v)
	res, err := v.RunMain(prog.MethodByName(w.Entry), args...)
	if err != nil {
		t.Fatalf("%s: %v", w.Name, err)
	}
	return res
}

func TestFibCorrect(t *testing.T) {
	w := workloads.Fib()
	res := run(t, w, preprocess.Mode(-1), value.Int(20))
	if res.I != 6765 {
		t.Errorf("fib(20) = %d, want 6765", res.I)
	}
}

func TestNQueensCorrect(t *testing.T) {
	w := workloads.NQueens()
	for _, tc := range []struct{ n, want int64 }{{4, 2}, {5, 10}, {6, 4}, {8, 92}} {
		res := run(t, w, preprocess.Mode(-1), value.Int(tc.n))
		if res.I != tc.want {
			t.Errorf("nqueens(%d) = %d, want %d", tc.n, res.I, tc.want)
		}
	}
}

func TestTSPFindsOptimalTour(t *testing.T) {
	w := workloads.TSP()
	// Brute-force check for n=6 using the same deterministic city layout.
	res := run(t, w, preprocess.Mode(-1), value.Int(6))
	if res.I <= 0 {
		t.Errorf("tsp(6) = %d, want positive tour length", res.I)
	}
	// Determinism across runs and modes.
	res2 := run(t, w, preprocess.ModeFaulting, value.Int(6))
	if res.I != res2.I {
		t.Errorf("tsp result differs across modes: %d vs %d", res.I, res2.I)
	}
}

func TestFFTChecksumStableAcrossModes(t *testing.T) {
	if testing.Short() {
		t.Skip("FFT is slow in -short mode")
	}
	w := workloads.FFT()
	a := run(t, w, preprocess.Mode(-1), value.Int(16))
	b := run(t, w, preprocess.ModeFaulting, value.Int(16))
	c := run(t, w, preprocess.ModeStatusCheck, value.Int(16))
	if !a.Equal(b) || !a.Equal(c) {
		t.Errorf("FFT results differ across modes: %v %v %v", a, b, c)
	}
}

func TestAllKernelsSurvivePreprocessing(t *testing.T) {
	for _, w := range workloads.All() {
		for _, mode := range []preprocess.Mode{preprocess.ModeNone, preprocess.ModeFaulting, preprocess.ModeStatusCheck} {
			if _, rep, err := preprocess.Preprocess(w.Prog, preprocess.Options{Mode: mode, Restore: true}); err != nil {
				t.Errorf("%s mode %v: %v", w.Name, mode, err)
			} else {
				for _, mr := range rep.Methods {
					if !mr.Lifted && mr.Reason != "pragma nopreprocess" {
						t.Errorf("%s mode %v: method %s not lifted: %s", w.Name, mode, mr.Name, mr.Reason)
					}
				}
			}
		}
	}
}

func TestKernelResultsInvariantUnderPreprocessing(t *testing.T) {
	sizes := map[string]int64{"Fib": 18, "NQ": 6, "FFT": 12, "TSP": 7}
	for _, w := range workloads.All() {
		n := sizes[w.Name]
		want := run(t, w, preprocess.Mode(-1), value.Int(n))
		for _, mode := range []preprocess.Mode{preprocess.ModeNone, preprocess.ModeFaulting, preprocess.ModeStatusCheck} {
			got := run(t, w, mode, value.Int(n))
			if !got.Equal(want) {
				t.Errorf("%s(%d) under mode %v = %v, want %v", w.Name, n, mode, got, want)
			}
		}
	}
}

func TestTextSearchFindsPlantedNeedle(t *testing.T) {
	net := netsim.NewNetwork(netsim.Unlimited)
	fs := nfs.NewServer(net)
	fs.Host(nfs.File{Name: "docs/a.txt", Host: 1, Size: 300_000, Seed: 7,
		Needle: "thequickbrownfox", NeedleOff: 250_000})
	fs.Host(nfs.File{Name: "docs/b.txt", Host: 1, Size: 100_000, Seed: 9})

	w := workloads.TextSearch()
	prog := preprocess.MustPreprocess(w.Prog, preprocess.Options{Mode: preprocess.ModeFaulting, Restore: true})
	v := vm.New(prog, 1, true)
	workloads.BindCommon(v)
	env := &workloads.SearchEnv{FS: fs, Location: func() int { return 1 }}
	env.Bind(v)

	names, err := workloads.MakeNameArray(v, []string{"docs/a.txt", "docs/b.txt"})
	if err != nil {
		t.Fatal(err)
	}
	res, rerr := v.RunMain(prog.MethodByName("searchMain"),
		value.RefVal(names), value.RefVal(v.Intern("thequickbrownfox")))
	if rerr != nil {
		t.Fatal(rerr)
	}
	if res.I != 1 {
		t.Errorf("hits = %d, want 1 (needle planted in one file)", res.I)
	}
}

func TestTextSearchRemoteReadsPayBandwidth(t *testing.T) {
	net := netsim.NewNetwork(netsim.LinkSpec{BandwidthBps: 200_000_000, Latency: 0})
	fs := nfs.NewServer(net)
	fs.Host(nfs.File{Name: "f", Host: 2, Size: 1 << 20, Seed: 3})

	w := workloads.TextSearch()
	v := vm.New(w.Prog, 1, true)
	workloads.BindCommon(v)
	env := &workloads.SearchEnv{FS: fs, Location: func() int { return 1 }}
	env.Bind(v)
	names, _ := workloads.MakeNameArray(v, []string{"f"})
	if _, err := v.RunMain(w.Prog.MethodByName("searchMain"),
		value.RefVal(names), value.RefVal(v.Intern("zzzzneverthere"))); err != nil {
		t.Fatal(err)
	}
	if fs.RemoteReads == 0 {
		t.Error("reading a remote file should count remote chunk reads")
	}
	if fs.LocalReads != 0 {
		t.Error("no local reads expected")
	}
}

func TestPhotoShareLocalRun(t *testing.T) {
	net := netsim.NewNetwork(netsim.Unlimited)
	fs := nfs.NewServer(net)
	for _, n := range []string{"dcim/beach1.jpg", "dcim/city.jpg", "dcim/beach2.jpg"} {
		fs.Host(nfs.File{Name: n, Host: 1, Size: 4096, Seed: 11})
	}
	w := workloads.PhotoShare()
	v := vm.New(w.Prog, 1, true)
	workloads.BindCommon(v)
	env := &workloads.PhotoEnv{FS: fs, Location: func() int { return 1 }}
	env.Bind(v)
	res, err := v.RunMain(w.Prog.MethodByName("PhotoApp.serveRequest"),
		value.RefVal(v.Intern("dcim")), value.RefVal(v.Intern("beach")))
	if err != nil {
		t.Fatal(err)
	}
	if res.I != 2 {
		t.Errorf("found %d beach photos, want 2", res.I)
	}
	if len(env.Replies) != 1 || env.Replies[0] != 2 {
		t.Errorf("http_reply log = %v", env.Replies)
	}
}

func TestFieldBenchAllLoops(t *testing.T) {
	w := workloads.FieldBench()
	v := vm.New(w.Prog, 1, true)
	workloads.BindCommon(v)
	cid := w.Prog.ClassByName("Bench")
	obj, _ := v.Heap.Alloc(cid, w.Prog.NumInstanceFields(cid))
	v.Heap.MustGet(obj).Fields[0] = value.Int(3)

	if res, err := v.RunMain(w.Prog.MethodByName("fieldRead"), value.RefVal(obj), value.Int(100)); err != nil || res.I != 300 {
		t.Errorf("fieldRead: %v %v", res, err)
	}
	if res, err := v.RunMain(w.Prog.MethodByName("fieldWrite"), value.RefVal(obj), value.Int(100)); err != nil || res.I != 99 {
		t.Errorf("fieldWrite: %v %v", res, err)
	}
	if res, err := v.RunMain(w.Prog.MethodByName("staticRead"), value.Int(100)); err != nil || res.I != 0 {
		t.Errorf("staticRead: %v %v", res, err)
	}
	if res, err := v.RunMain(w.Prog.MethodByName("staticWrite"), value.Int(100)); err != nil || res.I != 99 {
		t.Errorf("staticWrite: %v %v", res, err)
	}
}
