// Package workloads implements the paper's benchmark programs in SVM
// bytecode: the four compute kernels of Table I (Fib, NQueens, FFT, TSP),
// the NFS text-search application of §IV.C/Table VI, the photo-sharing
// web workload of §IV.D and the field-access microbenchmark of Table V.
//
// Problem sizes are scaled relative to the paper (our engine is an
// interpreter, the paper's a JIT); each Workload records both the paper's
// parameters and the scaled defaults, and EXPERIMENTS.md documents the
// mapping. The structural characteristics that drive migration costs —
// stack heights, static footprints, which methods touch the big data —
// follow the paper.
package workloads

import (
	"math"

	"repro/internal/asm"
	"repro/internal/bytecode"
	"repro/internal/value"
	"repro/internal/vm"
)

// Workload bundles a program with its entry point and metadata.
type Workload struct {
	Name  string
	Descr string
	// Prog is the raw (unpreprocessed) program.
	Prog *bytecode.Program
	// Entry is the qualified main method; it takes the workload's scaled
	// parameter(s).
	Entry string
	// Args produces entry arguments for a given problem size.
	Args func(n int64) []value.Value
	// DefaultN is the scaled default size; PaperN the paper's.
	DefaultN int64
	PaperN   int64
	// MigrateFrames is the SOD segment size the evaluation uses.
	MigrateFrames int
}

// CheckpointNative is the native each workload calls once when it enters
// its compute phase; the evaluation harness binds it to synchronize
// migration triggers. The default binding is a no-op.
const CheckpointNative = "wl_checkpoint"

// declareCommon adds the natives every kernel may use.
func declareCommon(pb *asm.ProgramBuilder) {
	pb.Native(CheckpointNative, 0, false)
	pb.Native("math_sin", 1, true)
	pb.Native("math_cos", 1, true)
	pb.Native("math_sqrt", 1, true)
}

// BindCommon installs default implementations of the common natives.
func BindCommon(v *vm.VM) {
	v.BindNativeIfDeclared(CheckpointNative, func(t *vm.Thread, a []value.Value) (value.Value, *vm.Raised) {
		return value.Value{}, nil
	})
	v.BindNativeIfDeclared("math_sin", func(t *vm.Thread, a []value.Value) (value.Value, *vm.Raised) {
		return value.Float(math.Sin(a[0].AsFloat())), nil
	})
	v.BindNativeIfDeclared("math_cos", func(t *vm.Thread, a []value.Value) (value.Value, *vm.Raised) {
		return value.Float(math.Cos(a[0].AsFloat())), nil
	})
	v.BindNativeIfDeclared("math_sqrt", func(t *vm.Thread, a []value.Value) (value.Value, *vm.Raised) {
		return value.Float(math.Sqrt(a[0].AsFloat())), nil
	})
}

// intArgs is the common one-int-arg adapter.
func intArgs(n int64) []value.Value { return []value.Value{value.Int(n)} }

// --- Fib: the n-th Fibonacci number, naive recursion (Table I row 1) ---

// Fib builds the Fib workload. The checkpoint fires on the first descent
// to the recursion floor, so migration happens mid-recursion with a deep
// stack — the G-JavaMPI worst case ("around 46 stack frames").
func Fib() *Workload {
	pb := asm.NewProgram()
	declareCommon(pb)
	c := pb.Class("Fib", "")
	c.Static("signalled", value.KindInt)

	fib := c.StaticMethod("fib", true, "n")
	fib.Line().Load("n").Int(2).Lt().Jnz("base")
	fib.Line().Load("n").Int(1).Sub().Call("Fib.fib", 1).Store("a")
	fib.Line().Load("n").Int(2).Sub().Call("Fib.fib", 1).Store("b")
	fib.Line().Load("a").Load("b").Add().RetV()
	fib.Label("base")
	fib.Line().GetS("Fib", "signalled").Jnz("skip")
	fib.Line().Int(1).PutS("Fib", "signalled")
	fib.Line().CallNat(CheckpointNative, 0)
	fib.Label("skip")
	fib.Line().Load("n").RetV()

	mn := pb.Func("fibMain", true, "n")
	mn.Line().Load("n").Call("Fib.fib", 1).RetV()

	return &Workload{
		Name:          "Fib",
		Descr:         "Calculate the n-th Fibonacci number recursively",
		Prog:          pb.MustBuild(),
		Entry:         "fibMain",
		Args:          intArgs,
		DefaultN:      27,
		PaperN:        46,
		MigrateFrames: 1,
	}
}

// --- NQ: n-queens, recursive backtracking (Table I row 2) ---

// NQueens builds the NQ workload: count solutions with column/diagonal
// occupancy arrays.
func NQueens() *Workload {
	pb := asm.NewProgram()
	declareCommon(pb)
	c := pb.Class("NQ", "")
	c.Static("signalled", value.KindInt)
	c.Static("cols", value.KindRef) // int[n]
	c.Static("d1", value.KindRef)   // int[2n]
	c.Static("d2", value.KindRef)   // int[2n]

	solve := c.StaticMethod("solve", true, "row", "n")
	solve.Line().Load("row").Load("n").Ge().Jnz("leaf")
	solve.Line().Int(0).Store("count")
	solve.Line().Int(0).Store("col")
	solve.Label("loop")
	solve.Line().Load("col").Load("n").Ge().Jnz("done")
	// occupied = cols[col] | d1[row+col] | d2[row-col+n]
	solve.Line().GetS("NQ", "cols").Load("col").ALoad().Store("occ")
	solve.Line().Load("occ").GetS("NQ", "d1").Load("row").Load("col").Add().ALoad().Or().Store("occ")
	solve.Line().Load("occ").GetS("NQ", "d2").Load("row").Load("col").Sub().Load("n").Add().ALoad().Or().Store("occ")
	solve.Line().Load("occ").Jnz("next")
	// place
	solve.Line().GetS("NQ", "cols").Load("col").Int(1).AStore()
	solve.Line().GetS("NQ", "d1").Load("row").Load("col").Add().Int(1).AStore()
	solve.Line().GetS("NQ", "d2").Load("row").Load("col").Sub().Load("n").Add().Int(1).AStore()
	solve.Line().Load("count").Load("row").Int(1).Add().Load("n").Call("NQ.solve", 2).Add().Store("count")
	// unplace
	solve.Line().GetS("NQ", "cols").Load("col").Int(0).AStore()
	solve.Line().GetS("NQ", "d1").Load("row").Load("col").Add().Int(0).AStore()
	solve.Line().GetS("NQ", "d2").Load("row").Load("col").Sub().Load("n").Add().Int(0).AStore()
	solve.Label("next")
	solve.Line().Load("col").Int(1).Add().Store("col")
	solve.Line().Jmp("loop")
	solve.Label("done")
	solve.Line().Load("count").RetV()
	solve.Label("leaf")
	solve.Line().GetS("NQ", "signalled").Jnz("skipcp")
	solve.Line().Int(1).PutS("NQ", "signalled")
	solve.Line().CallNat(CheckpointNative, 0)
	solve.Label("skipcp")
	solve.Line().Int(1).RetV()

	mn := pb.Func("nqMain", true, "n")
	mn.Line().Load("n").NewArr(bytecode.ArrKindInt).PutS("NQ", "cols")
	mn.Line().Load("n").Int(2).Mul().NewArr(bytecode.ArrKindInt).PutS("NQ", "d1")
	mn.Line().Load("n").Int(2).Mul().NewArr(bytecode.ArrKindInt).PutS("NQ", "d2")
	mn.Line().Int(0).Load("n").Call("NQ.solve", 2).RetV()

	return &Workload{
		Name:          "NQ",
		Descr:         "Solve the n-queens problem recursively",
		Prog:          pb.MustBuild(),
		Entry:         "nqMain",
		Args:          intArgs,
		DefaultN:      9,
		PaperN:        14,
		MigrateFrames: 1,
	}
}

// --- FFT: n-point 2-D Fourier transform over big static arrays ---

// FFTExtraStaticFloats sizes the extra static workspace array: the paper's
// FFT carries a >64 MB static footprint which dominates eager-copy and
// eager-allocation systems; we scale it to 4M floats (32 MB).
const FFTExtraStaticFloats = 4 << 20

// FFT builds the FFT workload: a 2-D transform computed row-by-row then
// column-by-column over static re/im arrays, plus a large static
// workspace. The transform kernel is a direct DFT (the O(n²) summation) —
// the workload's role in the evaluation is its memory shape, which is
// preserved. The SOD migration point is the finish() method, which does
// NOT touch the arrays — the placement §IV.A highlights.
func FFT() *Workload {
	pb := asm.NewProgram()
	declareCommon(pb)
	c := pb.Class("FFT", "")
	c.Static("re", value.KindRef)
	c.Static("im", value.KindRef)
	c.Static("work", value.KindRef) // the big array
	c.Static("n", value.KindInt)

	// dft1d(off, stride, n): in-place direct DFT of one row/column.
	dft := c.StaticMethod("dft1d", false, "off", "stride", "n")
	dft.Line().Load("n").NewArr(bytecode.ArrKindFloat).Store("tr")
	dft.Line().Load("n").NewArr(bytecode.ArrKindFloat).Store("ti")
	dft.Line().Int(0).Store("k")
	dft.Label("kloop")
	dft.Line().Load("k").Load("n").Ge().Jnz("kdone")
	dft.Line().Float(0).Store("sr")
	dft.Line().Float(0).Store("si")
	dft.Line().Int(0).Store("t")
	dft.Label("tloop")
	dft.Line().Load("t").Load("n").Ge().Jnz("tdone")
	// ang = -2*pi*k*t/n
	dft.Line().Float(-2 * math.Pi).Load("k").I2F().Mul().Load("t").I2F().Mul().Load("n").I2F().Div().Store("ang")
	dft.Line().Load("ang").CallNat("math_cos", 1).Store("cw")
	dft.Line().Load("ang").CallNat("math_sin", 1).Store("sw")
	// idx = off + t*stride
	dft.Line().Load("off").Load("t").Load("stride").Mul().Add().Store("idx")
	dft.Line().GetS("FFT", "re").Load("idx").ALoad().Store("xr")
	dft.Line().GetS("FFT", "im").Load("idx").ALoad().Store("xi")
	// sr += xr*cw - xi*sw ; si += xr*sw + xi*cw
	dft.Line().Load("sr").Load("xr").Load("cw").Mul().Load("xi").Load("sw").Mul().Sub().Add().Store("sr")
	dft.Line().Load("si").Load("xr").Load("sw").Mul().Load("xi").Load("cw").Mul().Add().Add().Store("si")
	dft.Line().Load("t").Int(1).Add().Store("t")
	dft.Line().Jmp("tloop")
	dft.Label("tdone")
	dft.Line().Load("tr").Load("k").Load("sr").AStore()
	dft.Line().Load("ti").Load("k").Load("si").AStore()
	dft.Line().Load("k").Int(1).Add().Store("k")
	dft.Line().Jmp("kloop")
	dft.Label("kdone")
	// write back
	dft.Line().Int(0).Store("k")
	dft.Label("wb")
	dft.Line().Load("k").Load("n").Ge().Jnz("wbdone")
	dft.Line().Load("off").Load("k").Load("stride").Mul().Add().Store("idx")
	dft.Line().GetS("FFT", "re").Load("idx").Load("tr").Load("k").ALoad().AStore()
	dft.Line().GetS("FFT", "im").Load("idx").Load("ti").Load("k").ALoad().AStore()
	dft.Line().Load("k").Int(1).Add().Store("k")
	dft.Line().Jmp("wb")
	dft.Label("wbdone")
	dft.Line().Ret()

	// transform(n): rows then columns.
	tr := c.StaticMethod("transform", false, "n")
	tr.Line().Int(0).Store("i")
	tr.Label("rows")
	tr.Line().Load("i").Load("n").Ge().Jnz("rowsdone")
	tr.Line().Load("i").Load("n").Mul().Int(1).Load("n").Call("FFT.dft1d", 3)
	tr.Line().Load("i").Int(1).Add().Store("i")
	tr.Line().Jmp("rows")
	tr.Label("rowsdone")
	tr.Line().Int(0).Store("i")
	tr.Label("cols")
	tr.Line().Load("i").Load("n").Ge().Jnz("colsdone")
	tr.Line().Load("i").Load("n").Load("n").Call("FFT.dft1d", 3)
	tr.Line().Load("i").Int(1).Add().Store("i")
	tr.Line().Jmp("cols")
	tr.Label("colsdone")
	tr.Line().Ret()

	// finish(n): scalar post-processing that does not touch the arrays —
	// the method SODEE migrates.
	fin := c.StaticMethod("finish", true, "acc")
	fin.Line().CallNat(CheckpointNative, 0)
	fin.Line().Int(0).Store("i")
	fin.Label("floop")
	fin.Line().Load("i").Int(400000).Ge().Jnz("fdone")
	fin.Line().Load("acc").Load("i").Load("i").Mul().Int(2654435761).Xor().Add().Store("acc")
	fin.Line().Load("i").Int(1).Add().Store("i")
	fin.Line().Jmp("floop")
	fin.Label("fdone")
	fin.Line().Load("acc").RetV()

	// checksum(n): reads back a few array cells (touches the arrays).
	ck := c.StaticMethod("checksum", true, "n")
	ck.Line().Float(0).Store("s")
	ck.Line().Int(0).Store("i")
	ck.Label("cloop")
	ck.Line().Load("i").Load("n").Ge().Jnz("cdone")
	ck.Line().Load("s").GetS("FFT", "re").Load("i").Load("n").Mul().Load("i").Add().ALoad().Add().Store("s")
	ck.Line().Load("i").Int(1).Add().Store("i")
	ck.Line().Jmp("cloop")
	ck.Label("cdone")
	ck.Line().Load("s").F2I().RetV()

	mn := pb.Func("fftMain", true, "n")
	mn.Line().Load("n").PutS("FFT", "n")
	mn.Line().Load("n").Load("n").Mul().NewArr(bytecode.ArrKindFloat).PutS("FFT", "re")
	mn.Line().Load("n").Load("n").Mul().NewArr(bytecode.ArrKindFloat).PutS("FFT", "im")
	mn.Line().Int(FFTExtraStaticFloats).NewArr(bytecode.ArrKindFloat).PutS("FFT", "work")
	// Seed re with a deterministic pattern; touch the workspace lightly.
	mn.Line().Int(0).Store("i")
	mn.Label("seed")
	mn.Line().Load("i").Load("n").Load("n").Mul().Ge().Jnz("seeded")
	mn.Line().GetS("FFT", "re").Load("i").Load("i").Int(7).Mod().I2F().AStore()
	mn.Line().Load("i").Int(1).Add().Store("i")
	mn.Line().Jmp("seed")
	mn.Label("seeded")
	mn.Line().GetS("FFT", "work").Int(0).Float(1).AStore()
	mn.Line().Load("n").Call("FFT.transform", 1)
	mn.Line().Load("n").Call("FFT.checksum", 1).Store("acc")
	mn.Line().Load("acc").Call("FFT.finish", 1).RetV()

	return &Workload{
		Name:          "FFT",
		Descr:         "Compute an n-point 2D Fourier transform",
		Prog:          pb.MustBuild(),
		Entry:         "fftMain",
		Args:          intArgs,
		DefaultN:      48,
		PaperN:        256,
		MigrateFrames: 1,
	}
}

// --- TSP: traveling salesman, branch-and-bound DFS (Table I row 4) ---

// TSP builds the TSP workload: n cities with deterministic coordinates as
// heap objects, DFS with partial-cost pruning. Distances are computed on
// the fly from the City objects, so every city and the bookkeeping arrays
// are touched frequently — the case where SOD's deferred heap transfer
// has nothing to win over eager copy (§IV.A: "almost all object fields
// need be used frequently. There is no benefit for SODEE to reap").
func TSP() *Workload {
	pb := asm.NewProgram()
	declareCommon(pb)
	c := pb.Class("TSP", "")
	c.Static("signalled", value.KindInt)
	c.Static("cities", value.KindRef)  // City[n]
	c.Static("visited", value.KindRef) // int[n]
	c.Static("best", value.KindRef)    // float[1]
	c.Static("n", value.KindInt)

	city := pb.Class("City", "")
	city.Field("x", value.KindFloat)
	city.Field("y", value.KindFloat)

	// dist(a, b): euclidean distance between cities a and b, from the
	// City objects themselves.
	d := c.StaticMethod("dist", true, "a", "b")
	d.Line().GetS("TSP", "cities").Load("a").ALoad().Store("ca")
	d.Line().GetS("TSP", "cities").Load("b").ALoad().Store("cb")
	d.Line().Load("ca").GetF("City", "x").Load("cb").GetF("City", "x").Sub().Store("dx")
	d.Line().Load("ca").GetF("City", "y").Load("cb").GetF("City", "y").Sub().Store("dy")
	d.Line().Load("dx").Load("dx").Mul().Load("dy").Load("dy").Mul().Add().CallNat("math_sqrt", 1).RetV()

	// search(at, count, cost): DFS over remaining cities.
	s := c.StaticMethod("search", false, "at", "count", "cost")
	s.Line().Load("cost").GetS("TSP", "best").Int(0).ALoad().Ge().Jnz("prune")
	s.Line().Load("count").GetS("TSP", "n").Ge().Jnz("complete")
	s.Line().Int(0).Store("next")
	s.Label("loop")
	s.Line().Load("next").GetS("TSP", "n").Ge().Jnz("done")
	s.Line().GetS("TSP", "visited").Load("next").ALoad().Jnz("skip")
	s.Line().GetS("TSP", "visited").Load("next").Int(1).AStore()
	s.Line().Load("at").Load("next").Call("TSP.dist", 2).Store("leg")
	s.Line().Load("next").Load("count").Int(1).Add().Load("cost").Load("leg").Add().Call("TSP.search", 3)
	s.Line().GetS("TSP", "visited").Load("next").Int(0).AStore()
	s.Label("skip")
	s.Line().Load("next").Int(1).Add().Store("next")
	s.Line().Jmp("loop")
	s.Label("done")
	s.Line().Ret()
	s.Label("complete")
	// close the tour: cost += dist(at, 0)
	s.Line().Load("at").Int(0).Call("TSP.dist", 2).Store("leg")
	s.Line().Load("cost").Load("leg").Add().Store("total")
	s.Line().GetS("TSP", "signalled").Jnz("nosig")
	s.Line().Int(1).PutS("TSP", "signalled")
	s.Line().CallNat(CheckpointNative, 0)
	s.Label("nosig")
	s.Line().Load("total").GetS("TSP", "best").Int(0).ALoad().Ge().Jnz("prune")
	s.Line().GetS("TSP", "best").Int(0).Load("total").AStore()
	s.Line().Ret()
	s.Label("prune")
	s.Line().Ret()

	mn := pb.Func("tspMain", true, "n")
	mn.Line().Load("n").PutS("TSP", "n")
	mn.Line().Load("n").NewArr(bytecode.ArrKindRef).PutS("TSP", "cities")
	mn.Line().Load("n").NewArr(bytecode.ArrKindInt).PutS("TSP", "visited")
	mn.Line().Int(1).NewArr(bytecode.ArrKindFloat).PutS("TSP", "best")
	mn.Line().GetS("TSP", "best").Int(0).Float(1e18).AStore()
	// cities[i] at deterministic pseudo-random coordinates
	mn.Line().Int(0).Store("i")
	mn.Label("mkcities")
	mn.Line().Load("i").Load("n").Ge().Jnz("mkdone")
	mn.Line().New("City").Store("ct")
	mn.Line().Load("ct").Load("i").Int(37).Mul().Int(101).Add().Int(97).Mod().I2F().PutF("City", "x")
	mn.Line().Load("ct").Load("i").Int(73).Mul().Int(59).Add().Int(89).Mod().I2F().PutF("City", "y")
	mn.Line().GetS("TSP", "cities").Load("i").Load("ct").AStore()
	mn.Line().Load("i").Int(1).Add().Store("i")
	mn.Line().Jmp("mkcities")
	mn.Label("mkdone")
	mn.Line().GetS("TSP", "visited").Int(0).Int(1).AStore()
	mn.Line().Int(0).Int(1).Float(0).Call("TSP.search", 3)
	mn.Line().GetS("TSP", "best").Int(0).ALoad().Float(1000).Mul().F2I().RetV()

	return &Workload{
		Name:          "TSP",
		Descr:         "Solve the traveling salesman problem of n cities",
		Prog:          pb.MustBuild(),
		Entry:         "tspMain",
		Args:          intArgs,
		DefaultN:      10,
		PaperN:        12,
		MigrateFrames: 1,
	}
}

// All returns the four Table I kernels.
func All() []*Workload {
	return []*Workload{Fib(), NQueens(), FFT(), TSP()}
}
