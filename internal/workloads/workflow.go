package workloads

import (
	"repro/internal/asm"
	"repro/internal/bytecode"
)

// Workflow is the multi-domain pipeline workload: main(seed, iters) →
// stage1 → stage2, three frames of pure CPU with the heavy crunch on
// top. It is the chain planner's canonical prey — while stage2 grinds,
// the stack shape (hot top frame, cool residuals beneath) begs to be
// split into a Fig 1c forward pipeline — and the workflow experiments,
// the chain chaos scenario and the conformance suite all share this one
// definition with its Go mirror so program and expectation cannot drift.
func Workflow() *bytecode.Program {
	return workflowProgram("")
}

// WorkflowWithMarker is Workflow with a terminal probe: main's last
// statement before returning calls the named native (declared with one
// argument, the seed) exactly once per execution — the chaos harness's
// exactly-once marker, in whatever domain the final frame ends up.
func WorkflowWithMarker(native string) *bytecode.Program {
	return workflowProgram(native)
}

func workflowProgram(marker string) *bytecode.Program {
	pb := asm.NewProgram()
	if marker != "" {
		pb.Native(marker, 1, false)
	}

	// stage2: the hot top frame — the full crunch loop.
	s2 := pb.Func("stage2", true, "seed", "iters")
	s2.Line().Load("seed").Store("acc")
	s2.Line().Int(0).Store("i")
	s2.Label("loop")
	s2.Line().Load("i").Load("iters").Ge().Jnz("done")
	s2.Line().Load("acc").Int(31).Mul().Load("i").Add().Int(0xFFFF).And().Store("acc")
	s2.Line().Load("i").Int(1).Add().Store("i")
	s2.Line().Jmp("loop")
	s2.Label("done")
	s2.Line().Load("acc").RetV()

	// stage1: post-processes stage2's result with half the work.
	s1 := pb.Func("stage1", true, "seed", "iters")
	s1.Line().Load("seed").Load("iters").Call("stage2", 2).Store("r")
	s1.Line().Load("iters").Int(2).Div().Store("half")
	s1.Line().Int(0).Store("i")
	s1.Label("loop")
	s1.Line().Load("i").Load("half").Ge().Jnz("done")
	s1.Line().Load("r").Int(17).Mul().Load("i").Add().Int(0xFFFF).And().Store("r")
	s1.Line().Load("i").Int(1).Add().Store("i")
	s1.Line().Jmp("loop")
	s1.Label("done")
	s1.Line().Load("r").RetV()

	// main: the pipeline's bottom frame.
	mn := pb.Func("main", true, "seed", "iters")
	mn.Line().Load("seed").Load("iters").Call("stage1", 2).Store("r")
	if marker != "" {
		mn.Line().Load("seed").CallNat(marker, 1)
	}
	mn.Line().Load("r").Int(7).Add().RetV()

	return pb.MustBuild()
}

// WorkflowExpected mirrors Workflow's main in Go.
func WorkflowExpected(seed, iters int64) int64 {
	acc := seed
	for i := int64(0); i < iters; i++ {
		acc = (acc*31 + i) & 0xFFFF
	}
	for i := int64(0); i < iters/2; i++ {
		acc = (acc*17 + i) & 0xFFFF
	}
	return acc + 7
}
