package workloads

import (
	"fmt"

	"repro/internal/asm"
	"repro/internal/bytecode"
	"repro/internal/value"
	"repro/internal/vm"
)

// HotClass is the migration wire-format workload: a single class Hot
// whose crunch loop folds a static into every iteration. The class
// carries a block of int statics (so every whole-stack migration ships a
// statics payload — the streaming wire format needs one) and a set of
// padding methods that bulk its code bundle (so the unchanged portion of
// a repeat migration dominates the wire cost, which is what the delta
// snapshot cache exists to elide). Entry point: Hot.crunch(seed, iters).
func HotClass() *bytecode.Program {
	return hotClassProgram("")
}

// HotClassWithMarker is HotClass with an entry probe: crunch's first
// statement calls the named native (declared with no arguments) before
// the loop begins. Tests use it as an execution gate to align a
// migration with a known stack shape.
func HotClassWithMarker(native string) *bytecode.Program {
	return hotClassProgram(native)
}

func hotClassProgram(marker string) *bytecode.Program {
	pb := asm.NewProgram()
	if marker != "" {
		pb.Native(marker, 0, false)
	}

	hot := pb.Class("Hot", "")
	hot.Static("bias", value.KindInt)
	for i := 0; i < 15; i++ {
		hot.Static(fmt.Sprintf("pad%d", i), value.KindInt)
	}
	for p := 0; p < 6; p++ {
		mb := hot.StaticMethod(fmt.Sprintf("fill%d", p), true, "x")
		mb.Line().Load("x").Store("y")
		for k := 0; k < 48; k++ {
			mb.Line().Load("y").Int(int64(k)).Add().Store("y")
		}
		mb.Line().Load("y").RetV()
	}

	cr := hot.StaticMethod("crunch", true, "seed", "iters")
	if marker != "" {
		cr.Line().CallNat(marker, 0)
	}
	cr.Line().Int(0).Store("sum")
	cr.Line().Int(0).Store("i")
	cr.Label("loop")
	cr.Line().Load("i").Load("iters").Ge().Jnz("done")
	cr.Line().Load("sum").Load("seed").Add().GetS("Hot", "bias").Add().Store("sum")
	cr.Line().Load("i").Int(1).Add().Store("i")
	cr.Line().Jmp("loop")
	cr.Label("done")
	cr.Line().Load("sum").RetV()

	return pb.MustBuild()
}

// HotClassBias is the value SeedHotClass stores in Hot.bias.
const HotClassBias = int64(9)

// SeedHotClass initializes Hot's statics on the node that will start
// jobs; bias is declared first, so it is static slot 0.
func SeedHotClass(v *vm.VM, prog *bytecode.Program) {
	cid := prog.ClassByName("Hot")
	v.Statics[cid][0] = value.Int(HotClassBias)
}

// HotClassExpected mirrors Hot.crunch in Go.
func HotClassExpected(seed, iters int64) int64 {
	return iters * (seed + HotClassBias)
}
