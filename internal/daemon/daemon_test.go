package daemon

import (
	"testing"
	"time"

	"repro/internal/membership"
	"repro/internal/sodee"
	"repro/internal/workloads"
)

// The integration tests boot real daemons in-process: every node has its
// own TCP transport on a loopback ephemeral port, its own cluster shell,
// its own balancer — exactly what cmd/sodd runs, minus the process
// boundary. Nothing here touches netsim.Network: there is no SetNodeDown
// to call even if a test wanted to; crashes are transport closures that
// the heartbeat detectors must notice on their own.

const (
	testIters   = 150_000
	testTimeout = 60 * time.Second
)

// bootTrio starts a weak node 1 and strong nodes 2, 3 and joins them
// into one cluster.
func bootTrio(t *testing.T) (d1, d2, d3 *Daemon) {
	t.Helper()
	mk := func(id, cores, slow int) *Daemon {
		d, err := New(Config{
			ID: id, Cores: cores, Slow: slow,
			Policy:   "threshold",
			Interval: 2 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("boot daemon %d: %v", id, err)
		}
		t.Cleanup(d.Stop)
		return d
	}
	d1 = mk(1, 1, 16) // weak: one core, throttled
	d2 = mk(2, 0, 0)
	d3 = mk(3, 0, 0)
	if err := d2.Join(d1.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := d3.Join(d1.Addr()); err != nil {
		t.Fatal(err)
	}
	return d1, d2, d3
}

// waitMembers polls until d's tracker reports every want peer alive.
func waitMembers(t *testing.T, d *Daemon, want ...int) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for {
		ok := true
		for _, id := range want {
			if d.Node().Members.State(id) != membership.Alive {
				ok = false
			}
		}
		if ok {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon %d never saw %v alive: %+v", d.ID(), want, d.Node().Members.Snapshot())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestThreeNodeClusterFormsAndBalances boots three TCP daemons, checks
// that the join protocol plus heartbeats give every node a full live
// membership view, then drives a burst through the control plane and
// checks that AutoBalance spilled it over real sockets.
func TestThreeNodeClusterFormsAndBalances(t *testing.T) {
	d1, d2, d3 := bootTrio(t)

	// Discovery: d3 never dialed d2 directly — the roster walk and the
	// seed's member gossip must connect them, and heartbeats must keep
	// all pairs alive.
	waitMembers(t, d1, 2, 3)
	waitMembers(t, d2, 1, 3)
	waitMembers(t, d3, 1, 2)

	ctl, err := Dial(d1.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()
	if self, members, err := ctl.Members(); err != nil || self != 1 || len(members) != 2 {
		t.Fatalf("ctl members: self=%d members=%+v err=%v", self, members, err)
	}

	const njobs = 5
	jobIDs := make([]uint64, njobs)
	seeds := make([]int64, njobs)
	for i := range jobIDs {
		seeds[i] = int64(300 + i)
		id, err := ctl.Submit("main", seeds[i], testIters)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		jobIDs[i] = id
	}
	for i, id := range jobIDs {
		res, done, errMsg, err := ctl.Wait(id, testTimeout)
		if err != nil || !done || errMsg != "" {
			t.Fatalf("job %d: done=%v errMsg=%q err=%v", i, done, errMsg, err)
		}
		if want := workloads.CruncherExpected(seeds[i], testIters); res != want {
			t.Errorf("job %d: result %d, want %d", i, res, want)
		}
	}

	st, _, err := ctl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Migrations == 0 {
		t.Fatalf("burst never spilled over TCP: %+v", st)
	}
	if st.MigrationsTo[1] != 0 {
		t.Errorf("balancer migrated onto the overloaded home node: %+v", st.MigrationsTo)
	}
	// The spilled segments must actually have executed remotely.
	if d2.Node().VM.LiveInstructions()+d3.Node().VM.LiveInstructions() == 0 {
		t.Error("strong nodes executed nothing despite migrations")
	}
	// Migration transfers calibrated at least one link estimate.
	load, err := ctl.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(load.WireLatency) == 0 {
		t.Error("no wire-latency observations after real migrations")
	}
}

// TestKillNodeMidRunDetectedByHeartbeats is the crash acceptance
// scenario: a destination daemon dies mid-run with jobs in flight. The
// survivors' failure detectors must notice on their own (no SetNodeDown
// exists here), a migration aimed at the corpse must fall back to local
// execution, every job must still complete, and a rejoin must heal the
// view.
func TestKillNodeMidRunDetectedByHeartbeats(t *testing.T) {
	d1, d2, d3 := bootTrio(t)
	waitMembers(t, d1, 2, 3)
	waitMembers(t, d2, 1, 3)

	// Let a couple of gossip rounds land so node 1 holds fresh reports
	// advertising node 3 as an idle destination.
	deadline := time.Now().Add(10 * time.Second)
	for len(d1.Node().Mgr.PeerSignals()) < 2 {
		if time.Now().After(deadline) {
			t.Fatal("gossip reports never arrived at node 1")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Crash node 3 — transport torn down, no goodbye — and immediately
	// throw a burst at the weak node while the survivors still hold
	// node 3's stale "idle" report.
	d3.Stop()

	const njobs = 4
	jobs := make([]*sodee.Job, njobs)
	seeds := make([]int64, njobs)
	for i := range jobs {
		seeds[i] = int64(500 + i)
		j, err := d1.Submit("main", seeds[i], testIters)
		if err != nil {
			t.Fatal(err)
		}
		jobs[i] = j
	}

	// Deterministic crash fallback over sockets: aim one migration
	// straight at the corpse. The transfer must fail, the job must not.
	fb, err := d1.Submit("main", 999, 600_000)
	if err != nil {
		t.Fatal(err)
	}
	if _, merr := d1.Node().Mgr.MigrateSOD(fb, sodee.SODOptions{
		NFrames: sodee.WholeStack, Dest: 3, Flow: sodee.FlowReturnHome,
	}); merr == nil {
		t.Fatal("migration to a crashed daemon should fail")
	}

	// Heartbeat detection: both survivors declare node 3 dead without
	// being told anything.
	deadline = time.Now().Add(20 * time.Second)
	for d1.Node().Members.State(3) != membership.Dead ||
		d2.Node().Members.State(3) != membership.Dead {
		if time.Now().After(deadline) {
			t.Fatalf("survivors never detected the crash: d1=%v d2=%v",
				d1.Node().Members.State(3), d2.Node().Members.State(3))
		}
		time.Sleep(5 * time.Millisecond)
	}
	// And each other stays alive: the corpse's silence is not contagious.
	if d1.Node().Members.State(2) == membership.Dead {
		t.Error("node 1 wrongly declared node 2 dead")
	}

	// Every job completes with the right answer — via node 2 or locally.
	waitJob := func(j *sodee.Job, want int64) {
		done := make(chan struct{})
		go func() { j.Wait(); close(done) }() //nolint:errcheck // re-read below
		select {
		case <-done:
		case <-time.After(testTimeout):
			t.Fatal("job wedged after crash")
		}
		res, err := j.Wait()
		if err != nil {
			t.Fatalf("job failed after crash: %v", err)
		}
		if res.I != want {
			t.Errorf("result = %d, want %d", res.I, want)
		}
	}
	for i, j := range jobs {
		waitJob(j, workloads.CruncherExpected(seeds[i], testIters))
	}
	waitJob(fb, workloads.CruncherExpected(999, 600_000))

	// Rejoin heals: a fresh daemon reclaims id 3 on a new port and joins;
	// the survivors' detectors flip it back to alive.
	d3b, err := New(Config{ID: 3, Policy: "threshold", Interval: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer d3b.Stop()
	if err := d3b.Join(d1.Addr()); err != nil {
		t.Fatal(err)
	}
	waitMembers(t, d1, 2, 3)
	waitMembers(t, d2, 1, 3)
}

// TestControlPlaneAcrossDaemons: submissions land on whichever daemon
// the client dialed, and a workload mismatch in method names surfaces as
// a clean error, not a wedge.
func TestControlPlaneAcrossDaemons(t *testing.T) {
	d1, _, _ := bootTrio(t)
	ctl, err := Dial(d1.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()

	if _, err := ctl.Submit("no_such_method", 1); err == nil {
		t.Fatal("submitting an unknown method should fail")
	}
	res, err := ctl.Run("main", testTimeout, 7, 20_000)
	if err != nil {
		t.Fatal(err)
	}
	if want := workloads.CruncherExpected(7, 20_000); res != want {
		t.Errorf("run result = %d, want %d", res, want)
	}
}

// TestJoinSkipsDeadRosterMember: a cluster that has lost a member must
// still accept newcomers — the seed's join reply excludes members its
// detector has declared dead, and an unreachable roster address is
// skipped rather than fatal.
func TestJoinSkipsDeadRosterMember(t *testing.T) {
	d1, d2, d3 := bootTrio(t)
	waitMembers(t, d1, 2, 3)
	d3.Stop()
	// Both survivors must have declared node 3 dead: the joiner walks
	// every member's roster, so any survivor still advertising the corpse
	// would hand its address out.
	deadline := time.Now().Add(20 * time.Second)
	for d1.Node().Members.State(3) != membership.Dead ||
		d2.Node().Members.State(3) != membership.Dead {
		if time.Now().After(deadline) {
			t.Fatal("survivors never detected the dead member")
		}
		time.Sleep(5 * time.Millisecond)
	}

	d4, err := New(Config{ID: 4, Policy: "threshold", Interval: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d4.Stop)
	start := time.Now()
	if err := d4.Join(d1.Addr()); err != nil {
		t.Fatalf("join with a dead roster member should succeed: %v", err)
	}
	// The dead member was filtered from the roster, so the join must not
	// have burned a dial-retry budget on it.
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Errorf("join took %v; dead member likely dialed", elapsed)
	}
	waitMembers(t, d4, 1, 2)
	waitMembers(t, d2, 1, 4)
	_ = d3
}

// TestStealOnlyClusterSplitsStatsByDirection boots a steal-only cluster
// (push policy "none", Steal armed): the idle strong daemons must pull
// the weak node's burst entirely by stealing, and the control plane must
// report the migration split per direction — stolen counted, pushed
// zero — instead of one aggregate.
func TestStealOnlyClusterSplitsStatsByDirection(t *testing.T) {
	mk := func(id, cores, slow int) *Daemon {
		d, err := New(Config{
			ID: id, Cores: cores, Slow: slow,
			Policy: "none", Steal: true,
			// A long cooldown pins the test's direction asserts: once
			// drained, the victim is idle and could otherwise steal a job
			// back after the default 250ms quarantine on a slow host.
			Cooldown: time.Minute,
			Interval: 2 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("boot daemon %d: %v", id, err)
		}
		t.Cleanup(d.Stop)
		return d
	}
	d1 := mk(1, 1, 16) // weak victim
	d2 := mk(2, 0, 0)
	d3 := mk(3, 0, 0)
	if err := d2.Join(d1.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := d3.Join(d1.Addr()); err != nil {
		t.Fatal(err)
	}
	waitMembers(t, d1, 2, 3)
	waitMembers(t, d2, 1, 3)
	waitMembers(t, d3, 1, 2)

	ctl, err := Dial(d1.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()

	// Heavier jobs than the push test: on a starved 1-CPU host the
	// balancer reacts at ~10-20ms granularity, and a steal needs a full
	// gossip round before the thief even sees a victim — short jobs can
	// drain serially before the first request lands.
	const njobs = 6
	const stealIters = 4 * testIters
	jobIDs := make([]uint64, njobs)
	seeds := make([]int64, njobs)
	for i := range jobIDs {
		seeds[i] = int64(700 + i)
		id, err := ctl.Submit("main", seeds[i], stealIters)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		jobIDs[i] = id
	}
	for i, id := range jobIDs {
		res, done, errMsg, err := ctl.Wait(id, testTimeout)
		if err != nil || !done || errMsg != "" {
			t.Fatalf("job %d: done=%v errMsg=%q err=%v", i, done, errMsg, err)
		}
		if want := workloads.CruncherExpected(seeds[i], stealIters); res != want {
			t.Errorf("job %d: result %d, want %d", i, res, want)
		}
	}

	// The victim's view: it pushed nothing (policy none) and stole
	// nothing (it was the loaded one), but it granted steals.
	vicBal, vicSteal, err := ctl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if vicBal.Pushed != 0 || vicBal.Stolen != 0 {
		t.Errorf("victim should neither push nor steal: %+v", vicBal)
	}
	if vicSteal.Granted == 0 {
		t.Errorf("victim granted no steals: %+v", vicSteal)
	}

	// The thieves' view: stolen > 0, pushed == 0, and the split sums.
	totalStolen := 0
	for _, d := range []*Daemon{d2, d3} {
		ctl2, err := Dial(d.Addr())
		if err != nil {
			t.Fatal(err)
		}
		bal, steal, err := ctl2.Stats()
		ctl2.Close()
		if err != nil {
			t.Fatal(err)
		}
		if bal.Pushed != 0 {
			t.Errorf("daemon %d pushed %d jobs under policy none", d.ID(), bal.Pushed)
		}
		if bal.Migrations != bal.Pushed+bal.Stolen+bal.Rebalanced {
			t.Errorf("daemon %d split %d+%d+%d does not sum to %d",
				d.ID(), bal.Pushed, bal.Stolen, bal.Rebalanced, bal.Migrations)
		}
		if steal.Won != bal.Stolen {
			t.Errorf("daemon %d wire stats disagree: won %d vs stolen %d", d.ID(), steal.Won, bal.Stolen)
		}
		totalStolen += bal.Stolen
	}
	if totalStolen == 0 {
		t.Error("no daemon stole anything; the burst must have run serially")
	}
	if d2.Node().VM.LiveInstructions()+d3.Node().VM.LiveInstructions() == 0 {
		t.Error("thieves executed nothing")
	}
}
