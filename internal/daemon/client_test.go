package daemon

import (
	"context"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/sodee"
	"repro/internal/wire"
	"repro/internal/workloads"
)

// Error-path coverage for the control client: dead daemons, daemons
// dying mid-operation, watch stream termination, and control-protocol
// version skew.

func bootOne(t *testing.T, id int) *Daemon {
	t.Helper()
	d, err := New(Config{ID: id, Policy: "threshold", Interval: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Stop)
	return d
}

// TestDialDeadDaemonFailsFast: dialing an address nothing listens on
// must fail within the configured window, not the default ~5s retry.
func TestDialDeadDaemonFailsFast(t *testing.T) {
	start := time.Now()
	_, err := DialTimeout("127.0.0.1:1", 300*time.Millisecond)
	if err == nil {
		t.Fatal("dial to a dead address should fail")
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Errorf("dead dial took %v; the window was not honored", elapsed)
	}
}

// TestDaemonDiesMidWait: a daemon stopping with a client blocked in
// WaitContext must fail the wait promptly with a transport error — not
// leave it hanging and not fabricate a result.
func TestDaemonDiesMidWait(t *testing.T) {
	d := bootOne(t, 1)
	ctl, err := Dial(d.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()
	job, err := ctl.Submit("main", 5, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	type outcome struct {
		errMsg string
		err    error
	}
	got := make(chan outcome, 1)
	go func() {
		_, errMsg, err := ctl.WaitContext(context.Background(), job)
		got <- outcome{errMsg, err}
	}()
	time.Sleep(100 * time.Millisecond)
	d.Stop()
	select {
	case o := <-got:
		if o.err == nil {
			t.Fatalf("wait across a daemon death returned success (errMsg=%q)", o.errMsg)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("wait never returned after the daemon died")
	}
}

// TestWatchStreamEndsOnCompletion: a watched job's stream carries
// started → completed and then closes on its own.
func TestWatchStreamEndsOnCompletion(t *testing.T) {
	d := bootOne(t, 1)
	ctl, err := Dial(d.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()
	job, err := ctl.Submit("main", 3, 20_000)
	if err != nil {
		t.Fatal(err)
	}
	ch, cancel, err := ctl.Watch(job)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	var events []sodee.JobEvent
	deadline := time.After(30 * time.Second)
	for {
		select {
		case ev, ok := <-ch:
			if !ok {
				goto closed
			}
			events = append(events, ev)
		case <-deadline:
			t.Fatalf("stream never closed; got %+v", events)
		}
	}
closed:
	if len(events) < 2 {
		t.Fatalf("stream had %d events: %+v", len(events), events)
	}
	if events[0].Kind != sodee.EvStarted {
		t.Errorf("first event %v, want started", events[0].Kind)
	}
	last := events[len(events)-1]
	if last.Kind != sodee.EvCompleted {
		t.Fatalf("last event %v, want completed", last.Kind)
	}
	if want := workloads.CruncherExpected(3, 20_000); last.Result != want {
		t.Errorf("completion result %d, want %d", last.Result, want)
	}
	// Watching an unknown job errors instead of streaming nothing.
	if _, _, err := ctl.Watch(1 << 40); err == nil {
		t.Error("watch of an unknown job should fail")
	}
}

// TestWatchStreamEndsOnDisconnect: a daemon dying mid-watch must close
// the stream rather than leave the consumer blocked forever.
func TestWatchStreamEndsOnDisconnect(t *testing.T) {
	d := bootOne(t, 1)
	ctl, err := Dial(d.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()
	job, err := ctl.Submit("main", 4, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	ch, cancel, err := ctl.Watch(job)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	// Drain the replayed start, then kill the daemon.
	select {
	case ev := <-ch:
		if ev.Kind != sodee.EvStarted {
			t.Fatalf("first event %v, want started", ev.Kind)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("no replayed event")
	}
	d.Stop()
	deadline := time.After(30 * time.Second)
	for {
		select {
		case ev, ok := <-ch:
			if !ok {
				return // closed: the disconnect ended the stream
			}
			if ev.Kind == sodee.EvCompleted {
				t.Fatalf("stream claimed completion after daemon death: %+v", ev)
			}
		case <-deadline:
			t.Fatal("stream never closed after the daemon died")
		}
	}
}

// TestCancelThenRewatchSameJob: cancelling a watch and immediately
// re-watching must give the new stream the full story — the old
// stream's trailing opEventEnd (or stray events) carry its generation
// and must not close or pollute the successor.
func TestCancelThenRewatchSameJob(t *testing.T) {
	d := bootOne(t, 1)
	ctl, err := Dial(d.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()
	job, err := ctl.Submit("main", 6, 2_000_000)
	if err != nil {
		t.Fatal(err)
	}
	ch1, cancel1, err := ctl.Watch(job)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-ch1:
	case <-time.After(30 * time.Second):
		t.Fatal("no replayed event on first watch")
	}
	cancel1()
	ch2, cancel2, err := ctl.Watch(job)
	if err != nil {
		t.Fatalf("re-watch after cancel: %v", err)
	}
	defer cancel2()
	var events []sodee.JobEvent
	deadline := time.After(30 * time.Second)
	for {
		select {
		case ev, ok := <-ch2:
			if !ok {
				if len(events) < 2 || events[0].Kind != sodee.EvStarted ||
					events[len(events)-1].Kind != sodee.EvCompleted {
					t.Fatalf("re-watched stream malformed: %+v", events)
				}
				return
			}
			events = append(events, ev)
		case <-deadline:
			t.Fatalf("re-watched stream never terminated; got %+v", events)
		}
	}
}

// TestControlProtocolVersionSkew: both skew shapes fail with an error
// that names the protocol problem — a wrong version in the hello, and a
// pre-versioning join with no version at all.
func TestControlProtocolVersionSkew(t *testing.T) {
	d := bootOne(t, 1)
	tr, err := netsim.NewTCPTransport(-999_001, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close() //nolint:errcheck
	peer, err := tr.Connect(d.Addr())
	if err != nil {
		t.Fatal(err)
	}

	hello := wire.NewWriter(4)
	hello.Byte(opHello)
	hello.Uvarint(ProtocolVersion + 41)
	if _, err := tr.Call(peer, netsim.KindControl, hello.Bytes()); err == nil ||
		!strings.Contains(err.Error(), "protocol mismatch") {
		t.Errorf("future-version hello: err = %v, want protocol mismatch", err)
	}

	oldJoin := wire.NewWriter(32)
	oldJoin.Byte(opJoin)
	oldJoin.Varint(9)
	oldJoin.Blob([]byte("127.0.0.1:9"))
	// No trailing version: the shape a pre-versioning daemon sends.
	if _, err := tr.Call(peer, netsim.KindControl, oldJoin.Bytes()); err == nil ||
		!strings.Contains(err.Error(), "protocol mismatch") {
		t.Errorf("versionless join: err = %v, want protocol mismatch", err)
	}
}

// TestWatcherChurnReleasesGoroutines: a thousand watch streams opened by
// clients that vanish without unwatching must not accumulate daemon-side
// pump goroutines or ring buffers. Each abruptly closed connection fires
// the transport's peer-down hook, which cancels that peer's streams; this
// pins the goroutine count back to (near) the pre-churn baseline. Before
// the hook existed, every dead stream parked a goroutine on a send to a
// dead ring until the watched job terminated — and a WatchAll stream has
// no terminal at all, so those leaked until daemon shutdown.
func TestWatcherChurnReleasesGoroutines(t *testing.T) {
	d := bootOne(t, 1)
	ctl, err := Dial(d.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()
	// Touch WatchAll once so the daemon's event hub (a fixed goroutine
	// cost, alive until Stop) exists before the baseline is taken.
	_, cancelAll, err := ctl.WatchAll()
	if err != nil {
		t.Fatal(err)
	}
	cancelAll()
	time.Sleep(200 * time.Millisecond)
	baseline := runtime.NumGoroutine()

	// Phase one: a thousand WatchAll streams — live until cancelled, so
	// any missed cleanup is a permanent leak — abandoned by abruptly
	// closed connections. (The daemon is idle here on purpose: a spinning
	// interpreter job would fight the control plane for the CPU and tell
	// us nothing extra about stream cleanup.)
	const conns, perConn = 20, 50 // 1000 streams total
	for i := 0; i < conns; i++ {
		c, err := Dial(d.Addr())
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < perConn; j++ {
			if _, _, err := c.WatchAll(); err != nil {
				t.Fatalf("conn %d stream %d: %v", i, j, err)
			}
		}
		// Abrupt: no cancels, no unwatch frames. The daemon must notice
		// the dead connection and release all 50 streams itself.
		c.Close()
	}

	// Phase two: per-job streams on a job that is still running when the
	// connection dies, so the streams are mid-fanout, not replay-and-done.
	job, err := ctl.Submit("main", 9, 40_000_000)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(d.Addr())
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 10; j++ {
		if _, _, err := c.Watch(job); err != nil {
			t.Fatalf("live watch %d: %v", j, err)
		}
	}
	c.Close()
	if _, errMsg, err := ctl.WaitContext(context.Background(), job); err != nil || errMsg != "" {
		t.Fatalf("wait: %v %q", err, errMsg)
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= baseline+10 {
			t.Logf("goroutines: baseline %d, settled at %d after the watcher churn", baseline, n)
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutines never settled: baseline %d, still %d\n%s", baseline, n, buf)
		}
		time.Sleep(50 * time.Millisecond)
	}
}
