// Package daemon is the deployable node runtime behind cmd/sodd and
// cmd/sodctl: one SOD node riding a real TCP transport, plus the small
// control plane a distributed deployment needs — a join protocol that
// spreads the member roster, heartbeat-driven membership, remote job
// submission and status queries. The same Daemon type powers the sodd
// binary, the examples/distributed walkthrough and the in-process
// integration tests, so the code path that ships is the code path that
// is tested.
//
// Wire protocol: everything rides netsim.KindControl frames whose first
// byte selects the operation (hello/version, join, member gossip,
// members, submit, wait, stats, load, watch/unwatch plus the streamed
// event frames). The hello exchange pins ProtocolVersion so mismatched
// sodctl/sodd builds fail with a clear error up front. Data-plane
// traffic — migrations, flushes, class shipping, load gossip, job-event
// forwarding — is the ordinary sodee protocol, unchanged from the
// simulated fabric.
package daemon

import (
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/bytecode"
	"repro/internal/membership"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/preprocess"
	"repro/internal/shard"
	"repro/internal/sodee"
	"repro/internal/value"
	"repro/internal/wire"
	"repro/internal/workloads"
)

// ProtocolVersion is the control-protocol generation this build speaks.
// Dial and Join verify it up front (opHello, and a trailing version on
// opJoin), so a version skew between sodctl/sodd binaries fails with a
// clear "protocol mismatch" error instead of a decode failure deep in
// some later exchange.
//
// v2: chained submission (opSubmitChain) and chain-position fields on
// streamed job events (segment-planted / segment-forwarded).
//
// v3: cluster-wide watch (opWatchAll) fed by daemon-to-daemon event taps
// (opTap / opTapEvent), and an Origin field on every streamed JobEvent so
// consumers key streams by (Origin, Job) across the whole cluster.
//
// v4: observability plane — opMetrics (node metrics-registry snapshot)
// and opTrace (a job's causally-ordered migration span timeline).
const ProtocolVersion = 4

// Control operations (first byte of a KindControl payload).
const (
	opJoin        byte = 1  // {id, addr, version} → full roster; broadcast if new
	opNewMember   byte = 2  // one-way roster gossip {id, addr}
	opMembers     byte = 3  // → membership snapshot
	opSubmit      byte = 4  // {method, args...} → job id
	opWait        byte = 5  // {job, timeout} → result
	opStats       byte = 6  // → balancer stats
	opLoad        byte = 7  // → local+peer signals, wire latencies
	opHello       byte = 8  // {version} → {version}: protocol handshake
	opWatch       byte = 9  // {job, gen} → ack; events stream as opEvent frames
	opUnwatch     byte = 10 // {gen}: cancel one watch stream (acked)
	opEvent       byte = 11 // daemon → client, one-way: {gen, seq, JobEvent}
	opEventEnd    byte = 12 // daemon → client, one-way: {gen} stream over
	opSubmitChain byte = 13 // {method, args...} → job id, chain-planned placement
	opWatchAll    byte = 14 // {gen} → ack; every cluster event streams as opEvent frames
	opTap         byte = 15 // daemon ↔ daemon: {on} start/stop forwarding my bus firehose to you
	opTapEvent    byte = 16 // daemon → daemon, one-way: {seq, JobEvent} tap traffic
	opMetrics     byte = 17 // → metrics-registry snapshot (obs.EncodeSnapshot)
	opTrace       byte = 18 // {job} → span timeline (obs.EncodeSpans); error if no trace
)

// Config configures one daemon.
type Config struct {
	// ID is the node's cluster-unique id (must be positive; control
	// clients use negative ids).
	ID int
	// Listen is the TCP listen address (default "127.0.0.1:0").
	Listen string
	// Workload names the program this node runs (default "cruncher");
	// every daemon in a cluster must run the same one. Prog overrides it
	// with a pre-compiled program.
	Workload string
	Prog     *bytecode.Program
	// Cores / Slow model the node's capacity (see sodee.NodeConfig).
	Cores int
	Slow  int
	// Policy selects the offload policy: "threshold" (default), "cost",
	// "rr", or "none" (no automatic pushing; with Steal unset that means
	// heartbeats only, with Steal set the node still pulls and serves
	// steal requests).
	Policy string
	// Steal arms the pull half: this daemon issues steal requests while
	// idle and answers peers' requests while loaded.
	Steal bool
	// HopBudget caps lifetime migrations per job (0 = policy default);
	// Cooldown quarantines a job from nodes it recently left.
	HopBudget int
	Cooldown  time.Duration
	// Chain arms the workflow chain planner: jobs submitted chained
	// (sodctl submit -chain, Client.SubmitChain) have their stacks split
	// into multi-segment FlowForward pipelines across the cluster.
	Chain bool
	// Interval paces the balance/heartbeat loop (default 10ms).
	Interval time.Duration
	// Membership tunes the failure detector (zero = defaults).
	Membership membership.Options
	// Logf, when set, receives progress lines (membership changes,
	// submissions).
	Logf func(format string, args ...any)
}

// BuildWorkload compiles a named workload for SOD execution. The
// registry covers the programs whose natives need no per-host setup.
func BuildWorkload(name string) (*bytecode.Program, error) {
	var raw *bytecode.Program
	switch name {
	case "", "cruncher":
		raw = workloads.Cruncher()
	case "fib":
		raw = workloads.Fib().Prog
	case "nq":
		raw = workloads.NQueens().Prog
	case "tsp":
		raw = workloads.TSP().Prog
	case "workflow":
		raw = workloads.Workflow()
	default:
		return nil, fmt.Errorf("daemon: unknown workload %q (have cruncher, fib, nq, tsp, workflow)", name)
	}
	return preprocess.MustPreprocess(raw,
		preprocess.Options{Mode: preprocess.ModeFaulting, Restore: true}), nil
}

func policyByName(name string) (policy.Policy, error) {
	switch name {
	case "", "threshold":
		return policy.Threshold{}, nil
	case "cost":
		return policy.CostModel{}, nil
	case "rr":
		return &policy.RoundRobin{}, nil
	case "none":
		return nil, nil
	default:
		return nil, fmt.Errorf("daemon: unknown policy %q (have threshold, cost, rr, none)", name)
	}
}

// Daemon is one running node.
type Daemon struct {
	cfg     Config
	tr      *netsim.TCPTransport
	cluster *sodee.Cluster
	node    *sodee.Node
	bal     *sodee.Balancer

	mu    sync.Mutex
	addrs map[int]string // member id → listen address
	// doneJobs is the completion order of retained finished jobs; the
	// jobs themselves live in the sharded table below.
	doneJobs []uint64

	// jobs holds running jobs plus the last maxRetainedJobs completed
	// ones, so results stay queryable without the table growing forever
	// on a long-lived daemon. Sharded: thousands of concurrent
	// submit/wait clients touch disjoint jobs without queueing on d.mu.
	jobs *shard.Map[*sodee.Job]

	// watches tracks live event subscriptions so opUnwatch can cancel
	// them and Stop can end them. Streams are keyed by the client-chosen
	// generation, so several watches of one job coexist and a stale
	// stream's frames can never be mistaken for a successor's.
	watchMu sync.Mutex
	watches map[watchKey]*watchEntry

	// Cluster-wide watch plumbing. The hub fans the merged event stream
	// (local bus firehose + one tap per peer daemon) out to every
	// opWatchAll client; it spins up lazily on the first WatchAll and
	// lives until Stop. tapsOut are the streams *we* serve to peers whose
	// hubs tapped us; tapsIn reorder each peer's one-way opTapEvent
	// frames back into publish order before they enter the hub.
	hubMu   sync.Mutex
	hub     *sodee.EventFan
	hubStop func()
	tapsIn  map[int]*tapReorder
	tapsOut map[int]func()

	// obsSrv is the opt-in observability HTTP listener (StartObs);
	// guarded by d.mu, closed by Stop.
	obsSrv *http.Server

	stopOnce sync.Once
	stopCh   chan struct{}
	wg       sync.WaitGroup
}

type watchKey struct {
	peer int
	gen  uint64
}

type watchEntry struct {
	job    uint64
	cancel func()
}

// tapReorder re-imposes one tap's publish order: opTapEvent frames are
// one-way and handled concurrently at the receiver, so events carry a
// per-tap sequence number and buffer here until their turn.
type tapReorder struct {
	mu      sync.Mutex
	next    uint64
	pending map[uint64]sodee.JobEvent
}

// New boots a daemon: listen, build the node, start the heartbeat (and,
// unless Policy is "none", the AutoBalance engine). Join connects it to
// an existing cluster afterwards.
func New(cfg Config) (*Daemon, error) {
	if cfg.ID <= 0 {
		return nil, fmt.Errorf("daemon: node id must be positive, got %d", cfg.ID)
	}
	if cfg.Listen == "" {
		cfg.Listen = "127.0.0.1:0"
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 10 * time.Millisecond
	}
	// The detector's timeouts must comfortably exceed the heartbeat
	// period, or its stalled-sweeper forgiveness fires every round and
	// timeout-based detection never triggers. Scale unset options with
	// the interval so a slow -interval cannot silently disable detection.
	if cfg.Membership.SuspectAfter <= 0 {
		if sa := 6 * cfg.Interval; sa > 150*time.Millisecond {
			cfg.Membership.SuspectAfter = sa
		}
	}
	if cfg.Membership.DeadAfter <= 0 {
		if da := 20 * cfg.Interval; da > 500*time.Millisecond {
			cfg.Membership.DeadAfter = da
		}
	}
	pol, err := policyByName(cfg.Policy)
	if err != nil {
		return nil, err
	}
	prog := cfg.Prog
	if prog == nil {
		prog, err = BuildWorkload(cfg.Workload)
		if err != nil {
			return nil, err
		}
	}
	tr, err := netsim.NewTCPTransport(cfg.ID, cfg.Listen)
	if err != nil {
		return nil, err
	}
	// A zombie peer (socket open, process stopped) must not wedge the
	// balance loop on an unanswered RPC: bound every daemon-originated
	// Call. Control clients set their own bounds; 30s is far above any
	// healthy migration round trip.
	tr.CallTimeout = 30 * time.Second
	c := sodee.NewTransportCluster(prog)
	n, err := c.AddNodeOn(sodee.NodeConfig{
		ID: cfg.ID, Preloaded: true, Cores: cfg.Cores, Slow: cfg.Slow,
		Membership: cfg.Membership,
	}, tr)
	if err != nil {
		tr.Close() //nolint:errcheck
		return nil, err
	}
	workloads.BindCommon(n.VM)

	d := &Daemon{
		cfg:     cfg,
		tr:      tr,
		cluster: c,
		node:    n,
		addrs:   make(map[int]string),
		jobs:    shard.NewMap[*sodee.Job](),
		watches: make(map[watchKey]*watchEntry),
		tapsIn:  make(map[int]*tapReorder),
		tapsOut: make(map[int]func()),
		stopCh:  make(chan struct{}),
	}
	tr.Handle(netsim.KindControl, d.handleControl)
	// A peer's connection dying must promptly release everything streaming
	// toward it — watch streams, WatchAll streams, and tap feeds — or every
	// client churn leaks a parked goroutine plus its ring buffers.
	tr.SetPeerDownHook(d.peerDown)
	if cfg.Logf != nil {
		n.Members.OnChange(func(ev membership.Event) {
			cfg.Logf("sodd[%d]: member %d is %v", cfg.ID, ev.Node, ev.State)
		})
	}
	if pol == nil && cfg.Steal {
		// Steal-only: the balance loop still runs (gossip, steals) but the
		// push policy never fires.
		pol = policy.Never{}
	}
	if pol == nil && cfg.Chain {
		// Chain-only: the planner owns chained jobs; nothing pushes.
		pol = policy.Never{}
	}
	if pol != nil {
		d.bal = c.AutoBalance(pol, sodee.BalanceOptions{
			Interval: cfg.Interval, Steal: cfg.Steal,
			HopBudget: cfg.HopBudget, Cooldown: cfg.Cooldown,
			Chain: cfg.Chain,
		})
	} else {
		// No balancer: run the heartbeat loop alone so membership still
		// detects crashes and rejoins.
		d.wg.Add(1)
		go func() {
			defer d.wg.Done()
			ticker := time.NewTicker(cfg.Interval)
			defer ticker.Stop()
			for {
				select {
				case <-d.stopCh:
					return
				case <-ticker.C:
					d.node.Mgr.GossipTick()
				}
			}
		}()
	}
	return d, nil
}

// Addr returns the daemon's listen address.
func (d *Daemon) Addr() string { return d.tr.Addr() }

// ID returns the daemon's node id.
func (d *Daemon) ID() int { return d.cfg.ID }

// Node exposes the underlying runtime node (tests, examples).
func (d *Daemon) Node() *sodee.Node { return d.node }

// Stats returns the balancer's counters (zero if Policy was "none").
func (d *Daemon) Stats() sodee.BalanceStats {
	if d.bal == nil {
		return sodee.BalanceStats{}
	}
	return d.bal.Stats()
}

// StealStats returns the node-level steal counters (requests sent and
// served, grants, denials, failed transfers).
func (d *Daemon) StealStats() sodee.StealStats {
	return d.node.Mgr.StealStats()
}

// Stop halts balancing and heartbeats and tears the transport down —
// from the peers' point of view this is a crash: no goodbye is sent,
// and their failure detectors must notice on their own.
func (d *Daemon) Stop() {
	d.stopOnce.Do(func() {
		close(d.stopCh)
		d.mu.Lock()
		obsSrv := d.obsSrv
		d.obsSrv = nil
		d.mu.Unlock()
		if obsSrv != nil {
			obsSrv.Close() //nolint:errcheck // teardown; the Serve goroutine exits via wg
		}
		if d.bal != nil {
			d.bal.Stop()
		}
		d.wg.Wait()
		// End every live watch stream; the forwarding goroutines see their
		// channels close and exit.
		d.watchMu.Lock()
		entries := make([]*watchEntry, 0, len(d.watches))
		for _, e := range d.watches {
			entries = append(entries, e)
		}
		d.watches = make(map[watchKey]*watchEntry)
		d.watchMu.Unlock()
		for _, e := range entries {
			e.cancel()
		}
		// Tear the WatchAll hub down: close client streams, stop the local
		// firehose, and end every tap feed we were serving to peers.
		d.hubMu.Lock()
		hub, hubStop := d.hub, d.hubStop
		d.hub, d.hubStop = nil, nil
		taps := make([]func(), 0, len(d.tapsOut))
		for _, cancel := range d.tapsOut {
			taps = append(taps, cancel)
		}
		d.tapsOut = make(map[int]func())
		d.tapsIn = make(map[int]*tapReorder)
		d.hubMu.Unlock()
		if hubStop != nil {
			hubStop()
		}
		if hub != nil {
			hub.Close()
		}
		for _, cancel := range taps {
			cancel()
		}
		d.tr.Close() //nolint:errcheck
	})
}

// logf emits a progress line when configured.
func (d *Daemon) logf(format string, args ...any) {
	if d.cfg.Logf != nil {
		d.cfg.Logf(format, args...)
	}
}

// addMember records a member's address and marks it alive.
func (d *Daemon) addMember(id int, addr string) (isNew bool) {
	if id == d.cfg.ID {
		return false
	}
	d.mu.Lock()
	_, known := d.addrs[id]
	d.addrs[id] = addr
	d.mu.Unlock()
	d.node.Members.Join(id, time.Now())
	if !known {
		d.logf("sodd[%d]: member %d joined at %s", d.cfg.ID, id, addr)
	}
	// A live hub taps every member it has no feed from — covering both
	// newcomers and rejoining peers whose old tap died with their
	// connection.
	d.hubMu.Lock()
	needTap := d.hub != nil && d.tapsIn[id] == nil
	d.hubMu.Unlock()
	if needTap {
		d.requestTap(id)
	}
	return !known
}

// roster snapshots the member table including this daemon itself. With
// includeDead false, members the failure detector has declared dead are
// left out — a joiner should not burn its dial budget on corpses (if one
// rejoins, it announces itself anyway).
func (d *Daemon) roster(includeDead bool) map[int]string {
	d.mu.Lock()
	addrs := make(map[int]string, len(d.addrs))
	for id, addr := range d.addrs {
		addrs[id] = addr
	}
	d.mu.Unlock()
	out := make(map[int]string, len(addrs)+1)
	for id, addr := range addrs {
		if !includeDead && d.node.Members.State(id) == membership.Dead {
			continue
		}
		out[id] = addr
	}
	out[d.cfg.ID] = d.tr.Addr()
	return out
}

// MemberAddr returns the recorded address of a member.
func (d *Daemon) MemberAddr(id int) (string, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	addr, ok := d.addrs[id]
	return addr, ok
}

// Join connects this daemon into the cluster reachable at seedAddr: it
// dials the seed, announces itself, and walks the returned roster until
// it is connected to every member. An unreachable seed is an error; an
// unreachable *roster* member is not — it may have died since the seed
// last heard from it, and the failure detectors own that question. Safe
// to call with several seeds.
func (d *Daemon) Join(seedAddr string) error {
	type target struct {
		addr string
		seed bool
	}
	pending := []target{{addr: seedAddr, seed: true}}
	seen := map[string]bool{d.tr.Addr(): true}
	for len(pending) > 0 {
		tg := pending[0]
		pending = pending[1:]
		if seen[tg.addr] {
			continue
		}
		seen[tg.addr] = true
		peerID, err := d.tr.Connect(tg.addr)
		if err != nil {
			if tg.seed {
				return fmt.Errorf("daemon %d join %s: %w", d.cfg.ID, tg.addr, err)
			}
			d.logf("sodd[%d]: roster member at %s unreachable (%v); skipping", d.cfg.ID, tg.addr, err)
			continue
		}
		if tg.seed {
			// Version-check the seed before announcing: a protocol skew
			// must fail loudly here, not as a decode error later.
			if err := helloCheck(d.tr, peerID); err != nil {
				return fmt.Errorf("daemon %d join %s: %w", d.cfg.ID, tg.addr, err)
			}
		}
		d.addMember(peerID, tg.addr)
		w := wire.NewWriter(64)
		w.Byte(opJoin)
		w.Varint(int64(d.cfg.ID))
		w.Blob([]byte(d.tr.Addr()))
		w.Uvarint(ProtocolVersion)
		reply, err := d.tr.Call(peerID, netsim.KindControl, w.Bytes())
		if err != nil {
			if tg.seed {
				return fmt.Errorf("daemon %d announce to %d: %w", d.cfg.ID, peerID, err)
			}
			d.logf("sodd[%d]: announce to member %d failed (%v); skipping", d.cfg.ID, peerID, err)
			continue
		}
		roster, err := decodeRoster(reply)
		if err != nil {
			return err
		}
		for id, maddr := range roster {
			if id == d.cfg.ID {
				continue
			}
			d.mu.Lock()
			_, known := d.addrs[id]
			d.mu.Unlock()
			if !known && !seen[maddr] {
				pending = append(pending, target{addr: maddr})
			}
		}
	}
	return nil
}

// maxRetainedJobs bounds how many *completed* jobs stay queryable; the
// oldest results are evicted first. Running jobs are never evicted.
const maxRetainedJobs = 256

// Submit starts a job on this node (local API; the remote path is
// opSubmit). The job participates in AutoBalance like any other.
func (d *Daemon) Submit(method string, args ...int64) (*sodee.Job, error) {
	return d.submit(method, false, args...)
}

// SubmitChain starts a chain-owned job: the balancer's chain planner
// places its stack as a forward pipeline (the daemon must run with
// Config.Chain; without it the mark has no effect and the job balances
// like any ordinary submission).
func (d *Daemon) SubmitChain(method string, args ...int64) (*sodee.Job, error) {
	return d.submit(method, true, args...)
}

func (d *Daemon) submit(method string, chained bool, args ...int64) (*sodee.Job, error) {
	vals := make([]value.Value, len(args))
	for i, a := range args {
		vals[i] = value.Int(a)
	}
	start := d.node.Mgr.StartJob
	if chained {
		start = d.node.Mgr.StartJobChained
	}
	job, err := start(method, vals...)
	if err != nil {
		return nil, err
	}
	d.jobs.Set(job.ID, job)
	go func() {
		job.Wait() //nolint:errcheck // retention bookkeeping only
		d.mu.Lock()
		d.doneJobs = append(d.doneJobs, job.ID)
		var evict []uint64
		for len(d.doneJobs) > maxRetainedJobs {
			evict = append(evict, d.doneJobs[0])
			d.doneJobs = d.doneJobs[1:]
		}
		d.mu.Unlock()
		for _, id := range evict {
			d.jobs.Delete(id)
		}
	}()
	d.logf("sodd[%d]: job %d started (%s)", d.cfg.ID, job.ID, method)
	return job, nil
}

// --- control-plane handler ---

func (d *Daemon) handleControl(from int, payload []byte) ([]byte, error) {
	if len(payload) == 0 {
		return nil, fmt.Errorf("daemon: empty control frame")
	}
	r := wire.NewReader(payload[1:])
	switch payload[0] {
	case opJoin:
		return d.handleJoin(r)
	case opNewMember:
		return nil, d.handleNewMember(r)
	case opMembers:
		return d.handleMembers()
	case opSubmit:
		return d.handleSubmit(r, false)
	case opSubmitChain:
		return d.handleSubmit(r, true)
	case opWait:
		return d.handleWait(r)
	case opStats:
		return d.handleStats()
	case opLoad:
		return d.handleLoad()
	case opHello:
		return d.handleHello(r)
	case opWatch:
		return d.handleWatch(from, r)
	case opUnwatch:
		return d.handleUnwatch(from, r)
	case opWatchAll:
		return d.handleWatchAll(from, r)
	case opTap:
		return d.handleTap(from, r)
	case opTapEvent:
		return nil, d.handleTapEvent(from, payload[1:])
	case opMetrics:
		return d.handleMetrics()
	case opTrace:
		return d.handleTrace(r)
	default:
		return nil, fmt.Errorf("daemon: unknown control op %d", payload[0])
	}
}

// helloCheck runs the opHello version exchange against peer and turns any
// skew into a descriptive error. A peer that rejects the op outright is a
// pre-versioning build.
func helloCheck(tr *netsim.TCPTransport, peer int) error {
	w := wire.NewWriter(4)
	w.Byte(opHello)
	w.Uvarint(ProtocolVersion)
	reply, err := tr.Call(peer, netsim.KindControl, w.Bytes())
	if err != nil {
		if strings.Contains(err.Error(), "unknown control op") {
			return fmt.Errorf("daemon: peer %d speaks a pre-versioning control protocol; this build needs v%d", peer, ProtocolVersion)
		}
		return err
	}
	r := wire.NewReader(reply)
	v := r.Uvarint()
	if err := r.Err(); err != nil {
		return err
	}
	if v != ProtocolVersion {
		return fmt.Errorf("daemon: control protocol mismatch: peer %d speaks v%d, this build v%d", peer, v, ProtocolVersion)
	}
	return nil
}

func (d *Daemon) handleHello(r *wire.Reader) ([]byte, error) {
	peerVersion := r.Uvarint()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if peerVersion != ProtocolVersion {
		return nil, fmt.Errorf("daemon: control protocol mismatch: you speak v%d, this daemon v%d", peerVersion, ProtocolVersion)
	}
	w := wire.NewWriter(4)
	w.Uvarint(ProtocolVersion)
	return w.Bytes(), nil
}

func encodeRoster(roster map[int]string) []byte {
	w := wire.NewWriter(64)
	w.Uvarint(uint64(len(roster)))
	for id, addr := range roster {
		w.Varint(int64(id))
		w.Blob([]byte(addr))
	}
	return w.Bytes()
}

func decodeRoster(payload []byte) (map[int]string, error) {
	r := wire.NewReader(payload)
	n := int(r.Uvarint())
	out := make(map[int]string, n)
	for i := 0; i < n && r.Err() == nil; i++ {
		id := int(r.Varint())
		out[id] = string(r.Blob())
	}
	return out, r.Err()
}

func (d *Daemon) handleJoin(r *wire.Reader) ([]byte, error) {
	id := int(r.Varint())
	addr := string(r.Blob())
	if err := r.Err(); err != nil {
		return nil, err
	}
	// Pre-versioning daemons sent no trailing version; treat them as v0.
	var joinerVersion uint64
	if r.Remaining() > 0 {
		joinerVersion = r.Uvarint()
		if err := r.Err(); err != nil {
			return nil, err
		}
	}
	if joinerVersion != ProtocolVersion {
		return nil, fmt.Errorf("daemon: control protocol mismatch: joining daemon %d speaks v%d, this daemon v%d", id, joinerVersion, ProtocolVersion)
	}
	isNew := d.addMember(id, addr)
	if isNew {
		// Spread the news so every member dials the newcomer.
		w := wire.NewWriter(64)
		w.Byte(opNewMember)
		w.Varint(int64(id))
		w.Blob([]byte(addr))
		gossip := w.Bytes()
		d.mu.Lock()
		others := make([]int, 0, len(d.addrs))
		for mid := range d.addrs {
			if mid != id {
				others = append(others, mid)
			}
		}
		d.mu.Unlock()
		for _, mid := range others {
			d.tr.Send(mid, netsim.KindControl, gossip) //nolint:errcheck // best effort; detector handles the dead
		}
	}
	return encodeRoster(d.roster(false)), nil
}

func (d *Daemon) handleNewMember(r *wire.Reader) error {
	id := int(r.Varint())
	addr := string(r.Blob())
	if err := r.Err(); err != nil {
		return err
	}
	if id == d.cfg.ID {
		return nil
	}
	d.mu.Lock()
	_, known := d.addrs[id]
	d.mu.Unlock()
	if known {
		return nil
	}
	got, err := d.tr.Connect(addr)
	if err != nil {
		return err
	}
	if got != id {
		return fmt.Errorf("daemon: member %d gossiped at %s but %d answered", id, addr, got)
	}
	d.addMember(id, addr)
	return nil
}

func (d *Daemon) handleMembers() ([]byte, error) {
	snap := d.node.Members.Snapshot()
	roster := d.roster(true)
	now := time.Now()
	w := wire.NewWriter(128)
	w.Varint(int64(d.cfg.ID))
	w.Uvarint(uint64(len(snap)))
	for _, m := range snap {
		w.Varint(int64(m.Node))
		w.Byte(byte(m.State))
		w.Uvarint(uint64(now.Sub(m.LastHeard) / time.Millisecond))
		w.Blob([]byte(roster[m.Node]))
	}
	return w.Bytes(), nil
}

func (d *Daemon) handleSubmit(r *wire.Reader, chained bool) ([]byte, error) {
	method := string(r.Blob())
	n := int(r.Uvarint())
	args := make([]int64, n)
	for i := 0; i < n && r.Err() == nil; i++ {
		args[i] = r.Varint()
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	job, err := d.submit(method, chained, args...)
	if err != nil {
		return nil, err
	}
	w := wire.NewWriter(16)
	w.Uvarint(job.ID)
	return w.Bytes(), nil
}

func (d *Daemon) handleWait(r *wire.Reader) ([]byte, error) {
	jobID := r.Uvarint()
	timeoutMs := r.Uvarint()
	if err := r.Err(); err != nil {
		return nil, err
	}
	job, ok := d.jobs.Get(jobID)
	if !ok {
		// Not submitted through this daemon — but this node may hold the
		// job's re-homing shadow (it is the successor of the job's origin).
		// A client whose origin died re-issues its Wait here, and the
		// shadow completes with the redirected result.
		job, ok = d.node.Mgr.Job(jobID)
	}
	if !ok {
		return nil, fmt.Errorf("daemon: no job %d", jobID)
	}
	w := wire.NewWriter(32)
	finished := job.Done()
	if !finished && timeoutMs > 0 {
		done := make(chan struct{})
		go func() {
			job.Wait() //nolint:errcheck // result re-read below
			close(done)
		}()
		select {
		case <-done:
			finished = true
		case <-time.After(time.Duration(timeoutMs) * time.Millisecond):
		}
	}
	if finished {
		// A zero timeout is the "is it done?" probe: it must answer from
		// the job's state, never lose a race against an already-expired
		// timer.
		res, err := job.Wait()
		w.Byte(1)
		w.Varint(res.I)
		if err != nil {
			w.Blob([]byte(err.Error()))
		} else {
			w.Blob(nil)
		}
	} else {
		w.Byte(0)
		w.Varint(0)
		w.Blob(nil)
	}
	return w.Bytes(), nil
}

func (d *Daemon) handleStats() ([]byte, error) {
	st := d.Stats()
	ss := d.StealStats()
	w := wire.NewWriter(96)
	w.Uvarint(uint64(st.Ticks))
	w.Uvarint(uint64(st.Decisions))
	w.Uvarint(uint64(st.Migrations))
	w.Uvarint(uint64(st.FailedMigrations))
	// Per-direction split: pushed / stolen / rebalanced / chained.
	w.Uvarint(uint64(st.Pushed))
	w.Uvarint(uint64(st.Stolen))
	w.Uvarint(uint64(st.Rebalanced))
	w.Uvarint(uint64(st.Chained))
	w.Uvarint(uint64(st.ChainSegments))
	// Node-level steal counters.
	w.Uvarint(uint64(ss.RequestsSent))
	w.Uvarint(uint64(ss.Won))
	w.Uvarint(uint64(ss.RequestsServed))
	w.Uvarint(uint64(ss.Granted))
	w.Uvarint(uint64(ss.Denied))
	w.Uvarint(uint64(ss.FailedTransfers))
	w.Uvarint(uint64(len(st.MigrationsTo)))
	for dest, cnt := range st.MigrationsTo {
		w.Varint(int64(dest))
		w.Uvarint(uint64(cnt))
	}
	return w.Bytes(), nil
}

// handleMetrics snapshots the node's metrics registry for opMetrics. The
// reply is the obs wire encoding; clients merge snapshots across daemons
// for a cluster view.
func (d *Daemon) handleMetrics() ([]byte, error) {
	return obs.EncodeSnapshot(d.node.Obs.Snapshot()), nil
}

// handleTrace returns a job's span timeline for opTrace. Spans accumulate
// at the job's *origin* node (remote hops forward theirs home), so the
// client asks the daemon that started the job; an unknown job — or one
// whose trace has been evicted — is an error, not an empty reply.
func (d *Daemon) handleTrace(r *wire.Reader) ([]byte, error) {
	jobID := r.Uvarint()
	if err := r.Err(); err != nil {
		return nil, err
	}
	spans := d.node.Trace.Get(jobID)
	if len(spans) == 0 {
		return nil, fmt.Errorf("daemon: no trace for job %d (wrong origin node, or evicted)", jobID)
	}
	return obs.EncodeSpans(spans), nil
}

// handleWatch subscribes the requesting client to a job's event stream.
// The ack reply is empty; events follow as one-way opEvent frames on the
// same connection, each tagged with the watch's generation, ending with
// the job's terminal event or an opEventEnd marker. Generations are
// chosen by the client, so several watches of one job run side by side
// and frames from a cancelled stream cannot leak into a successor.
func (d *Daemon) handleWatch(from int, r *wire.Reader) ([]byte, error) {
	jobID := r.Uvarint()
	gen := r.Uvarint()
	if err := r.Err(); err != nil {
		return nil, err
	}
	bus := d.node.Mgr.Events()
	if !bus.Known(jobID) {
		return nil, fmt.Errorf("daemon: no job %d", jobID)
	}
	select {
	case <-d.stopCh:
		return nil, fmt.Errorf("daemon: shutting down")
	default:
	}
	ch, cancel := bus.Subscribe(jobID)
	key := watchKey{peer: from, gen: gen}
	entry := &watchEntry{job: jobID, cancel: cancel}
	d.watchMu.Lock()
	if old := d.watches[key]; old != nil {
		old.cancel() // client reused a generation; end the orphan
	}
	d.watches[key] = entry
	d.watchMu.Unlock()
	go d.streamEvents(key, entry, ch, true)
	return nil, nil
}

// handleWatchAll subscribes the requesting client to the cluster-wide
// event hub: every job event from every node, streamed over the same
// opEvent/opEventEnd frames as a per-job watch. The stream never ends on
// a terminal event — it ends on opUnwatch, daemon shutdown, or eviction
// (the hub's backpressure contract: a client too slow to keep even job
// outcomes is cut off, observed as opEventEnd without a prior unwatch).
func (d *Daemon) handleWatchAll(from int, r *wire.Reader) ([]byte, error) {
	gen := r.Uvarint()
	if err := r.Err(); err != nil {
		return nil, err
	}
	select {
	case <-d.stopCh:
		return nil, fmt.Errorf("daemon: shutting down")
	default:
	}
	hub := d.ensureHub()
	if hub == nil {
		return nil, fmt.Errorf("daemon: shutting down")
	}
	ch, cancel := hub.Subscribe()
	key := watchKey{peer: from, gen: gen}
	entry := &watchEntry{cancel: cancel}
	d.watchMu.Lock()
	if old := d.watches[key]; old != nil {
		old.cancel()
	}
	d.watches[key] = entry
	d.watchMu.Unlock()
	go d.streamEvents(key, entry, ch, false)
	return nil, nil
}

// ensureHub lazily spins up the cluster-wide event hub: one EventFan fed
// by the local bus firehose plus a tap on every peer daemon. Once up it
// lives until Stop; peers joining later are tapped as they join.
func (d *Daemon) ensureHub() *sodee.EventFan {
	d.hubMu.Lock()
	if d.hub != nil {
		hub := d.hub
		d.hubMu.Unlock()
		return hub
	}
	select {
	case <-d.stopCh:
		d.hubMu.Unlock()
		return nil
	default:
	}
	hub := sodee.NewEventFan()
	ch, cancel := d.node.Mgr.Events().SubscribeAll()
	d.hub, d.hubStop = hub, cancel
	d.hubMu.Unlock()
	go func() {
		for ev := range ch {
			hub.Publish(ev)
		}
	}()
	d.mu.Lock()
	peers := make([]int, 0, len(d.addrs))
	for id := range d.addrs {
		peers = append(peers, id)
	}
	d.mu.Unlock()
	for _, id := range peers {
		d.requestTap(id)
	}
	return hub
}

// requestTap asks peer to forward its bus firehose here (best effort —
// an unreachable peer's events are simply absent until it rejoins and is
// re-tapped). The reorder state resets: a fresh tap numbers from zero.
func (d *Daemon) requestTap(peer int) {
	d.hubMu.Lock()
	if d.hub == nil {
		d.hubMu.Unlock()
		return
	}
	d.tapsIn[peer] = &tapReorder{pending: make(map[uint64]sodee.JobEvent)}
	d.hubMu.Unlock()
	w := wire.NewWriter(4)
	w.Byte(opTap)
	w.Byte(1)
	d.tr.Send(peer, netsim.KindControl, w.Bytes()) //nolint:errcheck // telemetry, never load-bearing
}

// handleTap starts (on=1) or stops (on=0) forwarding this daemon's bus
// firehose to the requesting peer as opTapEvent frames.
func (d *Daemon) handleTap(from int, r *wire.Reader) ([]byte, error) {
	on := r.Byte()
	if err := r.Err(); err != nil {
		return nil, err
	}
	d.hubMu.Lock()
	if old := d.tapsOut[from]; old != nil {
		old()
		delete(d.tapsOut, from)
	}
	if on == 0 {
		d.hubMu.Unlock()
		return nil, nil
	}
	select {
	case <-d.stopCh:
		d.hubMu.Unlock()
		return nil, fmt.Errorf("daemon: shutting down")
	default:
	}
	ch, cancel := d.node.Mgr.Events().SubscribeAll()
	d.tapsOut[from] = cancel
	d.hubMu.Unlock()
	go func() {
		defer cancel()
		var seq uint64
		for {
			select {
			case ev, ok := <-ch:
				if !ok {
					return
				}
				w := wire.NewWriter(96)
				w.Byte(opTapEvent)
				w.Uvarint(seq)
				seq++
				w.Raw(sodee.EncodeJobEvent(ev))
				if err := d.tr.Send(from, netsim.KindControl, w.Bytes()); err != nil {
					return
				}
			case <-d.stopCh:
				return
			}
		}
	}()
	return nil, nil
}

// handleTapEvent receives one frame of a peer's tap stream, re-imposes
// the tap's publish order, and feeds the hub. Frames from a tap we no
// longer expect (peer re-tapped, hub gone) are dropped.
func (d *Daemon) handleTapEvent(from int, payload []byte) error {
	r := wire.NewReader(payload)
	seq := r.Uvarint()
	if err := r.Err(); err != nil {
		return err
	}
	ev, err := sodee.DecodeJobEvent(payload[r.Pos():])
	if err != nil {
		return err
	}
	d.hubMu.Lock()
	hub, ro := d.hub, d.tapsIn[from]
	d.hubMu.Unlock()
	if hub == nil || ro == nil {
		return nil
	}
	ro.mu.Lock()
	ro.pending[seq] = ev
	var ready []sodee.JobEvent
	for {
		next, ok := ro.pending[ro.next]
		if !ok {
			break
		}
		delete(ro.pending, ro.next)
		ro.next++
		ready = append(ready, next)
	}
	ro.mu.Unlock()
	for _, e := range ready {
		hub.Publish(e)
	}
	return nil
}

// peerDown reacts to a connection dying: every stream pointed at the
// peer is cancelled so its goroutine and ring buffers release promptly
// (a dead sodctl must not park a stream until shutdown), and tap state
// for the peer is dropped — a rejoining peer is re-tapped from scratch.
func (d *Daemon) peerDown(peer int) {
	d.watchMu.Lock()
	var entries []*watchEntry
	for key, e := range d.watches {
		if key.peer == peer {
			entries = append(entries, e)
			delete(d.watches, key)
		}
	}
	d.watchMu.Unlock()
	for _, e := range entries {
		e.cancel()
	}
	d.hubMu.Lock()
	tapOut := d.tapsOut[peer]
	delete(d.tapsOut, peer)
	delete(d.tapsIn, peer)
	d.hubMu.Unlock()
	if tapOut != nil {
		tapOut()
	}
}

func (d *Daemon) handleUnwatch(from int, r *wire.Reader) ([]byte, error) {
	gen := r.Uvarint()
	if err := r.Err(); err != nil {
		return nil, err
	}
	key := watchKey{peer: from, gen: gen}
	d.watchMu.Lock()
	entry := d.watches[key]
	delete(d.watches, key)
	d.watchMu.Unlock()
	if entry != nil {
		entry.cancel()
	}
	return nil, nil
}

// streamEvents forwards one subscription's events to its client until the
// stream ends (terminal event or cancellation), the client stops
// accepting frames, or the daemon shuts down. With endOnTerminal false
// (WatchAll) the stream outlives any one job's terminal event and only
// ends on cancellation or eviction. If the stream ends without a
// terminal event having been sent, an opEventEnd marker tells the client
// to close its channel rather than wait for a completion that will never
// come.
func (d *Daemon) streamEvents(key watchKey, entry *watchEntry, ch <-chan sodee.JobEvent, endOnTerminal bool) {
	sentTerminal := false
	defer func() {
		entry.cancel()
		d.watchMu.Lock()
		if d.watches[key] == entry {
			delete(d.watches, key)
		}
		d.watchMu.Unlock()
		if !sentTerminal {
			w := wire.NewWriter(12)
			w.Byte(opEventEnd)
			w.Uvarint(key.gen)
			d.tr.Send(key.peer, netsim.KindControl, w.Bytes()) //nolint:errcheck // stream is over either way
		}
	}()
	// Frames carry a per-stream sequence number: one-way transport frames
	// are handled concurrently at the receiver, so the client re-imposes
	// this order before delivering events.
	var streamSeq uint64
	for {
		select {
		case ev, ok := <-ch:
			if !ok {
				return
			}
			w := wire.NewWriter(96)
			w.Byte(opEvent)
			w.Uvarint(key.gen)
			w.Uvarint(streamSeq)
			streamSeq++
			w.Raw(sodee.EncodeJobEvent(ev))
			if err := d.tr.Send(key.peer, netsim.KindControl, w.Bytes()); err != nil {
				return
			}
			if ev.Terminal() && endOnTerminal {
				sentTerminal = true
				return
			}
		case <-d.stopCh:
			return
		}
	}
}

func (d *Daemon) handleLoad() ([]byte, error) {
	local := d.node.Mgr.LocalSignals()
	peers := d.node.Mgr.PeerSignals()
	lats := d.node.Mgr.WireLatencies()
	w := wire.NewWriter(256)
	w.Blob(sodee.EncodeSignals(local))
	w.Uvarint(uint64(len(peers)))
	for _, p := range peers {
		w.Blob(sodee.EncodeSignals(p))
	}
	w.Uvarint(uint64(len(lats)))
	for dest, lat := range lats {
		w.Varint(int64(dest))
		w.Uvarint(uint64(lat))
	}
	return w.Bytes(), nil
}
